file(REMOVE_RECURSE
  "CMakeFiles/table4_sim_overhead.dir/table4_sim_overhead.cpp.o"
  "CMakeFiles/table4_sim_overhead.dir/table4_sim_overhead.cpp.o.d"
  "table4_sim_overhead"
  "table4_sim_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_sim_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
