# Empty dependencies file for scalesim_layout.
# This may be replaced when dependencies are built.
