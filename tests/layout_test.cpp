/**
 * @file
 * Unit tests for on-chip data layout modeling: the line/col/bank index
 * equations, layout constructors, and the bank-conflict evaluator's
 * slowdown properties (>= 1, fewer conflicts with more banks/ports,
 * layout sensitivity).
 */

#include <gtest/gtest.h>

#include "common/log.hpp"
#include "layout/layout.hpp"
#include "systolic/demand.hpp"

using namespace scalesim;
using namespace scalesim::layout;
using namespace scalesim::systolic;

namespace
{

OperandMap
makeOperands(const GemmDims& gemm)
{
    MemoryConfig mem;
    return OperandMap(gemm, mem);
}

LayoutModelConfig
layoutCfg(std::uint32_t banks, std::uint32_t ports,
          std::uint32_t bandwidth)
{
    LayoutModelConfig cfg;
    cfg.enabled = true;
    cfg.banks = banks;
    cfg.portsPerBank = ports;
    cfg.onChipBandwidth = bandwidth;
    return cfg;
}

double
evaluate(const GemmDims& gemm, Dataflow df, std::uint32_t array,
         const LayoutModelConfig& cfg, LayoutScheme scheme)
{
    const OperandMap operands = makeOperands(gemm);
    DemandGenerator gen(gemm, df, array, array, operands);
    BankConflictEvaluator eval(cfg,
                               OperandLayouts::forGemm(gemm, cfg,
                                                       scheme));
    gen.run(eval);
    return eval.slowdown();
}

} // namespace

TEST(Layout2D, IndexEquations)
{
    // 8x8 operand, 2x4 line tiles.
    Layout2D l{8, 8, 2, 4};
    EXPECT_EQ(l.wordsPerLine(), 8u);
    EXPECT_EQ(l.lineTiles(), 8u);
    EXPECT_EQ(l.lineId(0, 0), 0u);
    EXPECT_EQ(l.lineId(0, 4), 1u);
    EXPECT_EQ(l.lineId(2, 0), 2u);
    EXPECT_EQ(l.lineId(7, 7), 7u);
    EXPECT_EQ(l.colId(0, 0), 0u);
    EXPECT_EQ(l.colId(0, 3), 3u);
    EXPECT_EQ(l.colId(1, 0), 4u);
    EXPECT_EQ(l.colId(1, 3), 7u);
}

TEST(Layout2D, Constructors)
{
    const auto rm = Layout2D::rowMajor(16, 64, 32);
    EXPECT_EQ(rm.rowStep, 1u);
    EXPECT_EQ(rm.colStep, 32u);
    const auto cm = Layout2D::colMajor(16, 64, 32);
    EXPECT_EQ(cm.rowStep, 16u); // clamped to rows
    EXPECT_EQ(cm.colStep, 1u);
    const auto tl = Layout2D::tiled(64, 64, 16);
    EXPECT_EQ(tl.rowStep * tl.colStep, 16u);
}

TEST(Layout2D, ClampsToOperandDims)
{
    const auto rm = Layout2D::rowMajor(4, 8, 128);
    EXPECT_EQ(rm.colStep, 8u);
}

TEST(Evaluator, SlowdownAtLeastOne)
{
    const GemmDims gemm{32, 24, 40};
    for (auto df : {Dataflow::OutputStationary,
                    Dataflow::WeightStationary,
                    Dataflow::InputStationary}) {
        const double s = evaluate(gemm, df, 8,
                                  layoutCfg(16, 2, 64),
                                  LayoutScheme::RowMajor);
        EXPECT_GE(s, 1.0) << toString(df);
    }
}

TEST(Evaluator, MoreBanksNeverWorse)
{
    // Paper §VI: at fixed total bandwidth, more banks reduce the
    // slowdown.
    const GemmDims gemm{64, 48, 80};
    const double few = evaluate(gemm, Dataflow::OutputStationary, 16,
                                layoutCfg(2, 1, 64),
                                LayoutScheme::RowMajor);
    const double many = evaluate(gemm, Dataflow::OutputStationary, 16,
                                 layoutCfg(32, 1, 64),
                                 LayoutScheme::RowMajor);
    EXPECT_LE(many, few);
    EXPECT_GT(few, 1.0);
}

TEST(Evaluator, MorePortsNeverWorse)
{
    const GemmDims gemm{64, 48, 80};
    const double one = evaluate(gemm, Dataflow::OutputStationary, 16,
                                layoutCfg(4, 1, 64),
                                LayoutScheme::RowMajor);
    const double four = evaluate(gemm, Dataflow::OutputStationary, 16,
                                 layoutCfg(4, 4, 64),
                                 LayoutScheme::RowMajor);
    EXPECT_LE(four, one);
}

TEST(Evaluator, LayoutMatters)
{
    // A column of an operand requested in one cycle: row-major lines
    // put every element in a different line of the same bank (8-way
    // conflict); column-major packs them into one line (no conflict).
    const GemmDims gemm{64, 64, 64};
    const OperandMap operands = makeOperands(gemm);
    const LayoutModelConfig cfg = layoutCfg(4, 1, 32);
    const systolic::FoldGrid grid(gemm, Dataflow::OutputStationary, 8,
                                  8);
    std::vector<Addr> column;
    for (std::uint64_t r = 0; r < 8; ++r)
        column.push_back(operands.ifmapAddr(r, 5)); // fixed k column

    OperandLayouts rm = OperandLayouts::forGemm(
        gemm, cfg, LayoutScheme::RowMajor);
    BankConflictEvaluator rm_eval(cfg, rm);
    rm_eval.beginLayer(grid, operands);
    rm_eval.cycle(0, column, {}, {}, {});

    OperandLayouts cm = OperandLayouts::forGemm(
        gemm, cfg, LayoutScheme::ColMajor);
    BankConflictEvaluator cm_eval(cfg, cm);
    cm_eval.beginLayer(grid, operands);
    cm_eval.cycle(0, column, {}, {}, {});

    EXPECT_EQ(cm_eval.slowedCycles(), 1u);
    EXPECT_GT(rm_eval.slowedCycles(), cm_eval.slowedCycles());
}

TEST(Evaluator, IdleCyclesCostOne)
{
    // A layer's slowed cycles can never be less than its ideal cycles.
    const GemmDims gemm{16, 16, 16};
    const OperandMap operands = makeOperands(gemm);
    DemandGenerator gen(gemm, Dataflow::WeightStationary, 8, 8,
                        operands);
    const LayoutModelConfig cfg = layoutCfg(64, 4, 256);
    BankConflictEvaluator eval(
        cfg, OperandLayouts::forGemm(gemm, cfg, LayoutScheme::RowMajor));
    gen.run(eval);
    EXPECT_GE(eval.slowedCycles(), eval.idealCycles());
    EXPECT_EQ(eval.idealCycles(), gen.grid().totalCycles());
}

TEST(Evaluator, ConflictCyclesBounded)
{
    const GemmDims gemm{32, 32, 32};
    const OperandMap operands = makeOperands(gemm);
    DemandGenerator gen(gemm, Dataflow::OutputStationary, 16, 16,
                        operands);
    const LayoutModelConfig cfg = layoutCfg(2, 1, 16);
    BankConflictEvaluator eval(
        cfg, OperandLayouts::forGemm(gemm, cfg, LayoutScheme::RowMajor));
    gen.run(eval);
    EXPECT_LE(eval.conflictCycles(), gen.grid().totalCycles());
    EXPECT_GT(eval.conflictCycles(), 0u);
}

class BankSweep : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(BankSweep, MonotoneImprovementTrend)
{
    const GemmDims gemm{48, 48, 48};
    const double s = evaluate(gemm, Dataflow::OutputStationary, 16,
                              layoutCfg(GetParam(), 1, 64),
                              LayoutScheme::RowMajor);
    EXPECT_GE(s, 1.0);
    // With max banks (= bandwidth) conflicts all but vanish.
    if (GetParam() >= 64) {
        EXPECT_LT(s, 1.6);
    }
}

INSTANTIATE_TEST_SUITE_P(Banks, BankSweep,
                         ::testing::Values(1u, 2u, 4u, 8u, 16u, 32u,
                                           64u),
                         [](const auto& tpi) {
                             return format("b%u", tpi.param);
                         });
