#include "systolic/simd.hpp"

#include "common/log.hpp"

#if defined(__x86_64__) || defined(__i386__)
#define SCALESIM_SIMD_X86 1
#include <immintrin.h>
#else
#define SCALESIM_SIMD_X86 0
#endif

namespace scalesim::systolic::simd
{

namespace
{

void
addConstantScalar(const Addr* src, Addr* dst, std::size_t n,
                  Addr delta)
{
    for (std::size_t i = 0; i < n; ++i)
        dst[i] = src[i] + delta;
}

#if SCALESIM_SIMD_X86

__attribute__((target("avx2"))) void
addConstantAvx2(const Addr* src, Addr* dst, std::size_t n, Addr delta)
{
    const __m256i vdelta = _mm256_set1_epi64x(
        static_cast<long long>(delta));
    std::size_t i = 0;
    // Two vectors per iteration keeps both load ports busy.
    for (; i + 8 <= n; i += 8) {
        const __m256i a = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(src + i));
        const __m256i b = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(src + i + 4));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                            _mm256_add_epi64(a, vdelta));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i + 4),
                            _mm256_add_epi64(b, vdelta));
    }
    for (; i + 4 <= n; i += 4) {
        const __m256i a = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(src + i));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                            _mm256_add_epi64(a, vdelta));
    }
    for (; i < n; ++i)
        dst[i] = src[i] + delta;
}

#endif // SCALESIM_SIMD_X86

using Kernel = void (*)(const Addr*, Addr*, std::size_t, Addr);

Backend
detectBackend()
{
#if SCALESIM_SIMD_X86
    if (__builtin_cpu_supports("avx2"))
        return Backend::Avx2;
#endif
    return Backend::Scalar;
}

Kernel
kernelFor(Backend backend)
{
#if SCALESIM_SIMD_X86
    if (backend == Backend::Avx2)
        return addConstantAvx2;
#else
    (void)backend;
#endif
    return addConstantScalar;
}

Backend g_backend = detectBackend();
Kernel g_kernel = kernelFor(g_backend);

} // namespace

Backend
activeBackend()
{
    return g_backend;
}

const char*
backendName()
{
    return g_backend == Backend::Avx2 ? "avx2" : "scalar";
}

bool
backendSupported(Backend backend)
{
    if (backend == Backend::Scalar)
        return true;
#if SCALESIM_SIMD_X86
    return __builtin_cpu_supports("avx2") != 0;
#else
    return false;
#endif
}

void
setBackend(Backend backend)
{
    if (!backendSupported(backend))
        fatal("SIMD backend not supported on this machine");
    g_backend = backend;
    g_kernel = kernelFor(backend);
}

void
resetBackend()
{
    g_backend = detectBackend();
    g_kernel = kernelFor(g_backend);
}

void
addConstant(const Addr* src, Addr* dst, std::size_t n, Addr delta)
{
    g_kernel(src, dst, n, delta);
}

} // namespace scalesim::systolic::simd
