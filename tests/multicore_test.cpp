/**
 * @file
 * Unit tests for the multi-core module: partition runtime equations
 * (Eqs. 1-3), footprint and L2-dedup accounting, partition search,
 * SIMD/vector units, heterogeneous cores, and non-uniform (NoP-aware)
 * workload partitioning.
 */

#include <gtest/gtest.h>

#include "common/log.hpp"
#include "multicore/nop.hpp"
#include "multicore/system.hpp"
#include "multicore/trace_sim.hpp"

using namespace scalesim;
using namespace scalesim::multicore;

TEST(Partition, EquationOneSpatial)
{
    // OS mapping: Sr = M, Sc = N, T = K.
    const GemmDims gemm{1000, 5000, 2000};
    const std::uint32_t r = 16, c = 16;
    const auto eval = evaluatePartition(gemm,
                                        Dataflow::OutputStationary, r,
                                        c, 4, 8,
                                        PartitionScheme::Spatial);
    const Cycle expect = (2ull * r + c + 2000 - 2)
        * ceilDiv(1000, 4ull * r) * ceilDiv(5000, 8ull * c);
    EXPECT_EQ(eval.cycles, expect);
}

TEST(Partition, EquationTwoSpatioTemporal1)
{
    const GemmDims gemm{1000, 5000, 2000};
    const std::uint32_t r = 16, c = 16;
    const auto eval = evaluatePartition(
        gemm, Dataflow::OutputStationary, r, c, 4, 8,
        PartitionScheme::SpatioTemporal1);
    const Cycle expect = (2ull * r + c + ceilDiv(2000, 8) - 2)
        * ceilDiv(1000, 4ull * r) * ceilDiv(5000, c);
    EXPECT_EQ(eval.cycles, expect);
}

TEST(Partition, EquationThreeSpatioTemporal2)
{
    const GemmDims gemm{1000, 5000, 2000};
    const std::uint32_t r = 16, c = 16;
    const auto eval = evaluatePartition(
        gemm, Dataflow::OutputStationary, r, c, 4, 8,
        PartitionScheme::SpatioTemporal2);
    const Cycle expect = (2ull * r + c + ceilDiv(2000, 4) - 2)
        * ceilDiv(1000, static_cast<std::uint64_t>(r))
        * ceilDiv(5000, 8ull * c);
    EXPECT_EQ(eval.cycles, expect);
}

TEST(Partition, SingleCoreMatchesFoldGrid)
{
    const GemmDims gemm{300, 200, 100};
    const systolic::FoldGrid grid(gemm, Dataflow::WeightStationary, 32,
                                  32);
    const auto eval = evaluatePartition(gemm,
                                        Dataflow::WeightStationary, 32,
                                        32, 1, 1,
                                        PartitionScheme::Spatial);
    EXPECT_EQ(eval.cycles, grid.totalCycles());
}

TEST(Partition, MoreCoresNeverSlower)
{
    const GemmDims gemm{4096, 4096, 1024};
    Cycle prev = ~static_cast<Cycle>(0);
    for (std::uint64_t cores : {1ull, 4ull, 16ull, 64ull}) {
        const auto evals = enumeratePartitions(
            gemm, Dataflow::OutputStationary, 16, 16, cores,
            PartitionScheme::Spatial);
        const Cycle best = bestByCycles(evals).cycles;
        EXPECT_LE(best, prev);
        prev = best;
    }
}

TEST(Partition, L2DedupSavesForSpatial)
{
    const GemmDims gemm{1024, 1024, 1024};
    const auto eval = evaluatePartition(gemm,
                                        Dataflow::OutputStationary, 16,
                                        16, 4, 4,
                                        PartitionScheme::Spatial);
    EXPECT_LT(eval.l2FootprintWords, eval.footprintWords);
}

TEST(Partition, SpatioTemporalTradesFootprintForCycles)
{
    // Paper Fig. 3a: among compute-optimal choices, spatio-temporal
    // partitioning sometimes achieves a smaller memory footprint at
    // competitive cycles (it stores Sr x T once instead of Pc copies);
    // Fig. 3b: among footprint-optimal choices, spatial usually wins.
    bool st_smaller_when_compute_optimal = false;
    bool spatial_wins_somewhere = false;
    for (std::uint64_t m : {1000ull, 5000ull, 10000ull}) {
        for (std::uint64_t k : {1000ull, 5000ull, 10000ull}) {
            const GemmDims gemm{m, 5000, k};
            for (std::uint64_t cores : {16ull, 64ull}) {
                const auto spatial = bestByCycles(enumeratePartitions(
                    gemm, Dataflow::OutputStationary, 16, 16, cores,
                    PartitionScheme::Spatial));
                const auto st1 = bestByCycles(enumeratePartitions(
                    gemm, Dataflow::OutputStationary, 16, 16, cores,
                    PartitionScheme::SpatioTemporal1));
                if (st1.cycles <= spatial.cycles * 105 / 100
                    && st1.footprintWords < spatial.footprintWords) {
                    st_smaller_when_compute_optimal = true;
                }
                if (spatial.footprintWords <= st1.footprintWords
                    && spatial.cycles <= st1.cycles) {
                    spatial_wins_somewhere = true;
                }
            }
        }
    }
    EXPECT_TRUE(st_smaller_when_compute_optimal);
    EXPECT_TRUE(spatial_wins_somewhere);
}

TEST(Partition, EnumerateCoversAllFactorizations)
{
    const GemmDims gemm{128, 128, 128};
    const auto evals = enumeratePartitions(gemm,
                                           Dataflow::OutputStationary,
                                           8, 8, 12,
                                           PartitionScheme::Spatial);
    // 12 = 1x12, 2x6, 3x4, 4x3, 6x2, 12x1.
    EXPECT_EQ(evals.size(), 6u);
    for (const auto& e : evals)
        EXPECT_EQ(e.cores(), 12u);
}

TEST(Partition, BestSelectorsDiffer)
{
    const GemmDims gemm{10000, 1000, 1000};
    const auto evals = enumeratePartitions(gemm,
                                           Dataflow::OutputStationary,
                                           16, 16, 16,
                                           PartitionScheme::Spatial);
    const auto by_cycles = bestByCycles(evals);
    const auto by_footprint = bestByFootprint(evals);
    EXPECT_LE(by_cycles.cycles, by_footprint.cycles);
    EXPECT_LE(by_footprint.footprintWords, by_cycles.footprintWords);
}

TEST(Simd, CyclesScaleWithLanesAndLatency)
{
    SimdConfig simd;
    simd.lanes = 16;
    simd.latencyPerOp = 1;
    EXPECT_EQ(simdCycles(simd, VectorOp::Activation, 256), 16u);
    EXPECT_EQ(simdCycles(simd, VectorOp::Activation, 257), 17u);
    EXPECT_EQ(simdCycles(simd, VectorOp::Softmax, 256), 48u);
    EXPECT_EQ(simdCycles(simd, VectorOp::None, 256), 0u);
    simd.latencyPerOp = 4; // customizable latency (§III-C)
    EXPECT_EQ(simdCycles(simd, VectorOp::Activation, 256), 64u);
    simd.lanes = 64;
    simd.latencyPerOp = 1;
    EXPECT_EQ(simdCycles(simd, VectorOp::Activation, 256), 4u);
}

TEST(TensorCore, GemmPlusTail)
{
    TensorCoreConfig core;
    core.arrayRows = 16;
    core.arrayCols = 16;
    const GemmDims gemm{64, 64, 64};
    const Cycle plain = tensorCoreCycles(core, gemm,
                                         Dataflow::OutputStationary);
    const Cycle with_tail = tensorCoreCycles(
        core, gemm, Dataflow::OutputStationary, VectorOp::Softmax);
    EXPECT_GT(with_tail, plain);
    const systolic::FoldGrid grid(gemm, Dataflow::OutputStationary, 16,
                                  16);
    EXPECT_EQ(plain, grid.totalCycles());
}

TEST(System, HomogeneousGridRuns)
{
    TensorCoreConfig core;
    core.arrayRows = 16;
    core.arrayCols = 16;
    const auto cfg = MultiCoreConfig::homogeneous(core, 2, 2);
    MultiCoreSimulator sim(cfg);
    const GemmDims gemm{512, 512, 256};
    const auto result = sim.runGemm(gemm, Dataflow::OutputStationary);
    EXPECT_GT(result.makespan, 0u);
    EXPECT_EQ(result.perCore.size(), 4u);
    EXPECT_GE(result.imbalance, 1.0);
    EXPECT_LT(result.l2FootprintWords, result.l1FootprintWords);
}

TEST(System, MulticoreFasterThanSingle)
{
    TensorCoreConfig core;
    core.arrayRows = 32;
    core.arrayCols = 32;
    const GemmDims gemm{2048, 2048, 512};
    MultiCoreSimulator one(MultiCoreConfig::homogeneous(core, 1, 1));
    MultiCoreSimulator sixteen(
        MultiCoreConfig::homogeneous(core, 4, 4));
    EXPECT_LT(sixteen.runGemm(gemm, Dataflow::WeightStationary).makespan,
              one.runGemm(gemm, Dataflow::WeightStationary).makespan);
}

TEST(System, HeterogeneousCoresImbalance)
{
    // One big core next to three small ones: the small cores lag.
    TensorCoreConfig small;
    small.arrayRows = small.arrayCols = 8;
    TensorCoreConfig big;
    big.arrayRows = big.arrayCols = 32;
    MultiCoreConfig cfg;
    cfg.pr = 2;
    cfg.pc = 2;
    cfg.cores = {big, small, small, small};
    MultiCoreSimulator sim(cfg);
    const auto result = sim.runGemm({1024, 1024, 256},
                                    Dataflow::OutputStationary);
    EXPECT_GT(result.imbalance, 1.05);
}

TEST(System, NonUniformPartitioningHelpsSkewedNop)
{
    TensorCoreConfig core;
    core.arrayRows = core.arrayCols = 16;
    MultiCoreConfig cfg = MultiCoreConfig::homogeneous(core, 4, 1);
    cfg.nop.latencyPerHop = 50;
    cfg.nop.wordsPerCycle = 1.0;
    cfg.nop.hops = {1, 2, 6, 12}; // Simba-style distance profile
    MultiCoreSimulator uniform(cfg);
    cfg.nonUniform = true;
    MultiCoreSimulator nonuniform(cfg);
    const GemmDims gemm{4096, 256, 256};
    const auto u = uniform.runGemm(gemm, Dataflow::OutputStationary);
    const auto n = nonuniform.runGemm(gemm, Dataflow::OutputStationary);
    EXPECT_LE(n.makespan, u.makespan);
    // The far core should have received less work.
    EXPECT_LT(n.perCore[3].rowShare, u.perCore[3].rowShare);
}

TEST(System, ConfigValidation)
{
    MultiCoreConfig cfg;
    cfg.pr = 2;
    cfg.pc = 2;
    cfg.cores.resize(3); // wrong
    EXPECT_THROW(MultiCoreSimulator sim(cfg), FatalError);
}

TEST(System, LayerEntryPoint)
{
    TensorCoreConfig core;
    core.arrayRows = core.arrayCols = 16;
    MultiCoreSimulator sim(MultiCoreConfig::homogeneous(core, 2, 2));
    const LayerSpec layer = LayerSpec::conv("c", 28, 28, 3, 3, 64, 128,
                                            1);
    const auto result = sim.runLayer(layer, Dataflow::WeightStationary);
    EXPECT_GT(result.makespan, 0u);
}

TEST(SharedL2, HitsOnRepeatedLines)
{
    systolic::BandwidthMemory dram(4.0);
    SharedL2Config cfg;
    cfg.capacityWords = 4096;
    cfg.lineWords = 64;
    SharedL2 l2(cfg, dram);
    // First read misses and fills from DRAM.
    const Cycle first = l2.issueRead(0, 64, 0);
    // Second read of the same line hits at L2 latency.
    const Cycle second = l2.issueRead(0, 64, 1000);
    EXPECT_GT(first, cfg.hitLatency);
    EXPECT_LE(second - 1000, cfg.hitLatency + 1);
    EXPECT_EQ(l2.l2Stats().hits, 1u);
    EXPECT_EQ(l2.l2Stats().lookups, 2u);
    // Only the miss reached DRAM.
    EXPECT_EQ(dram.stats().readWords, 64u);
}

TEST(SharedL2, LruEviction)
{
    systolic::BandwidthMemory dram(1e9);
    SharedL2Config cfg;
    cfg.capacityWords = 128; // two 64-word lines
    cfg.lineWords = 64;
    SharedL2 l2(cfg, dram);
    l2.issueRead(0, 64, 0);    // line 0
    l2.issueRead(64, 64, 0);   // line 1
    l2.issueRead(128, 64, 0);  // line 2 evicts line 0
    l2.issueRead(0, 64, 0);    // line 0 misses again
    EXPECT_EQ(l2.l2Stats().hits, 0u);
    EXPECT_EQ(l2.l2Stats().lookups, 4u);
}

TEST(SharedL2, WriteThroughAllocates)
{
    systolic::BandwidthMemory dram(1e9);
    SharedL2Config cfg;
    SharedL2 l2(cfg, dram);
    l2.issueWrite(0, 256, 0);
    EXPECT_EQ(dram.stats().writeWords, 256u);
    // Subsequent read of written lines hits.
    l2.issueRead(0, 256, 10);
    EXPECT_EQ(l2.l2Stats().hits, 1u); // 256 words = 1 line (default)
}

TEST(TraceSim, SharedL2DeduplicatesPartitions)
{
    // WS 2x2 grid: cores in the same row share the ifmap k-slice,
    // cores in the same column share the filter slice; with the L2 on,
    // DRAM traffic should drop well below the sum of core requests.
    const LayerSpec layer = LayerSpec::gemm("g", 256, 128, 128);
    MultiCoreTraceConfig cfg;
    cfg.pr = cfg.pc = 2;
    cfg.arrayRows = cfg.arrayCols = 16;
    cfg.dataflow = Dataflow::WeightStationary;
    cfg.l1.ifmapWords = 4096; // small L1s -> cores re-request
    cfg.l1.filterWords = 4096;

    MultiCoreTraceConfig no_l2 = cfg;
    no_l2.useL2 = false;
    MultiCoreTraceSimulator with(cfg);
    MultiCoreTraceSimulator without(no_l2);
    const auto w = with.runLayer(layer);
    const auto wo = without.runLayer(layer);
    ASSERT_EQ(w.perCore.size(), 4u);
    EXPECT_GT(w.l2.hitRate(), 0.2);
    EXPECT_LT(w.dramReadWords, wo.dramReadWords);
    EXPECT_LT(w.dramReadWords, w.l1FillWords);
}

TEST(TraceSim, PartitionsCoverTheWholeProblem)
{
    // Every core writes its own output share exactly once: summed
    // write traffic equals M x N.
    const LayerSpec layer = LayerSpec::gemm("g", 96, 64, 48);
    MultiCoreTraceConfig cfg;
    cfg.pr = 2;
    cfg.pc = 2;
    cfg.arrayRows = cfg.arrayCols = 16;
    cfg.dataflow = Dataflow::OutputStationary;
    cfg.useL2 = false;
    MultiCoreTraceSimulator sim(cfg);
    const auto result = sim.runLayer(layer);
    std::uint64_t writes = 0;
    for (const auto& core : result.perCore)
        writes += core.dramWriteWords;
    EXPECT_EQ(writes, 96u * 64u);
}

TEST(TraceSim, MakespanBelowSingleCore)
{
    const LayerSpec layer = LayerSpec::gemm("g", 512, 512, 128);
    MultiCoreTraceConfig multi;
    multi.pr = multi.pc = 2;
    multi.arrayRows = multi.arrayCols = 16;
    multi.dramWordsPerCycle = 1024.0; // compute-bound regime
    MultiCoreTraceConfig single = multi;
    single.pr = single.pc = 1;
    MultiCoreTraceSimulator m(multi);
    MultiCoreTraceSimulator s(single);
    EXPECT_LT(m.runLayer(layer).makespan, s.runLayer(layer).makespan);
}

TEST(MeshNop, HopGeometry)
{
    const auto mesh = MeshNop::cornerAttached(4, 4);
    EXPECT_EQ(mesh.hops(0, 0), 1u);
    EXPECT_EQ(mesh.hops(0, 3), 4u);
    EXPECT_EQ(mesh.hops(3, 0), 4u);
    EXPECT_EQ(mesh.hops(3, 3), 7u);
    EXPECT_EQ(mesh.maxHops(), 7u);
    EXPECT_EQ(mesh.hopVector().size(), 16u);

    const auto edge = MeshNop::edgeCenterAttached(2, 4);
    EXPECT_EQ(edge.hops(0, 2), 1u);
    EXPECT_EQ(edge.hops(1, 0), 4u);
    // Edge-center attach shrinks the worst-case distance.
    EXPECT_LT(edge.maxHops(), MeshNop::cornerAttached(2, 4).maxHops());
}

TEST(MeshNop, RejectsInvalidPositions)
{
    EXPECT_THROW(MeshNop(2, 2, 2, 0), FatalError);
    EXPECT_THROW(MeshNop(0, 2, 0, 0), FatalError);
}

TEST(MeshNop, DrivesNonUniformPartitioning)
{
    TensorCoreConfig core;
    core.arrayRows = core.arrayCols = 16;
    const auto mesh = MeshNop::cornerAttached(4, 1);
    MultiCoreConfig cfg = MultiCoreConfig::homogeneous(core, 4, 1);
    cfg.nop = mesh.toNopConfig(50, 1.0);
    MultiCoreSimulator uniform(cfg);
    cfg.nonUniform = true;
    MultiCoreSimulator skewed(cfg);
    const GemmDims gemm{4096, 256, 256};
    EXPECT_LE(skewed.runGemm(gemm, Dataflow::OutputStationary).makespan,
              uniform.runGemm(gemm, Dataflow::OutputStationary)
                  .makespan);
}
