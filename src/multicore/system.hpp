/**
 * @file
 * Multi-core system model (paper §III): a Pr x Pc grid of (possibly
 * heterogeneous) tensor cores behind a shared L2 scratchpad, with an
 * NoP (network-on-package) latency profile per core and optional
 * non-uniform workload partitioning that gives slower-to-reach cores
 * less work (§III-D, Simba-style).
 */

#ifndef SCALESIM_MULTICORE_SYSTEM_HH
#define SCALESIM_MULTICORE_SYSTEM_HH

#include <string>
#include <vector>

#include "multicore/partition.hpp"
#include "multicore/tensor_core.hpp"
#include "obs/stats.hpp"

namespace scalesim::multicore
{

/** Network-on-package model (§III-D). */
struct NopConfig
{
    /** Latency per hop, core cycles. */
    Cycle latencyPerHop = 20;
    /** NoP link bandwidth in words per cycle. */
    double wordsPerCycle = 16.0;
    /**
     * Hop count from main memory per core, row-major over the
     * (Pr, Pc) grid. Empty means one hop everywhere (uniform); a
     * non-empty vector must have exactly pr*pc entries
     * (MultiCoreSimulator validates at construction).
     */
    std::vector<std::uint32_t> hops;

    std::uint32_t
    hopsFor(std::uint64_t core_index) const
    {
        if (hops.empty())
            return 1;
        return hops[core_index];
    }
};

/** Whole-system configuration. */
struct MultiCoreConfig
{
    /** Core configs, row-major over the grid; size must be pr*pc. */
    std::vector<TensorCoreConfig> cores;
    std::uint64_t pr = 1;
    std::uint64_t pc = 1;
    PartitionScheme scheme = PartitionScheme::Spatial;
    NopConfig nop;
    /** Rebalance row shares against per-core latency (§III-D). */
    bool nonUniform = false;

    /** Pr x Pc copies of one core type. */
    static MultiCoreConfig homogeneous(const TensorCoreConfig& core,
                                       std::uint64_t pr,
                                       std::uint64_t pc,
                                       PartitionScheme scheme
                                       = PartitionScheme::Spatial);
};

/** Per-core outcome of one layer. */
struct CoreResult
{
    Cycle computeCycles = 0;
    Cycle simdCycles = 0;
    Cycle nopCycles = 0;
    Cycle total() const { return computeCycles + simdCycles + nopCycles; }
    /** Rows of the partitioned dimension assigned to this core. */
    std::uint64_t rowShare = 0;
    std::uint64_t colShare = 0;
};

/** System-level outcome of one layer. */
struct MultiCoreResult
{
    /** Slowest core's total = the layer latency. */
    Cycle makespan = 0;
    std::vector<CoreResult> perCore;

    /** Sum of per-core partitions if each core kept a private copy. */
    std::uint64_t l1FootprintWords = 0;
    /** Shared-L2 footprint after deduplication (§III-B). */
    std::uint64_t l2FootprintWords = 0;
    /** Words saved by the shared L2. */
    std::uint64_t
    dedupSavedWords() const
    {
        return l1FootprintWords > l2FootprintWords
            ? l1FootprintWords - l2FootprintWords : 0;
    }
    /** max(core total) / mean(core total): 1.0 = perfectly balanced. */
    double imbalance = 1.0;

    /**
     * Register this layer's system-level stats under `prefix` (e.g.
     * "mc"): makespan, imbalance, footprints, and per-core cycle
     * vectors (compute/simd/nop). Create-or-accumulate semantics let
     * callers fold many layers into one registry.
     */
    void registerStats(obs::StatsRegistry& reg,
                       const std::string& prefix) const;
};

/** Analytical multi-core simulator. */
class MultiCoreSimulator
{
  public:
    explicit MultiCoreSimulator(const MultiCoreConfig& cfg);

    const MultiCoreConfig& config() const { return cfg_; }

    /** Run one GEMM with an optional vector-unit tail. */
    MultiCoreResult runGemm(const GemmDims& gemm, Dataflow df,
                            VectorOp tail = VectorOp::None) const;

    /** Run one layer (lowered to GEMM). */
    MultiCoreResult runLayer(const LayerSpec& layer, Dataflow df,
                             VectorOp tail = VectorOp::None) const;

  private:
    /** Analytical time of one core given its partition shares. */
    Cycle coreTime(std::uint64_t core_index, std::uint64_t sr_part,
                   std::uint64_t sc_part, std::uint64_t t_part,
                   std::uint64_t tail_elements, VectorOp tail,
                   CoreResult* detail = nullptr) const;

    MultiCoreConfig cfg_;
};

} // namespace scalesim::multicore

#endif // SCALESIM_MULTICORE_SYSTEM_HH
