/**
 * @file
 * Multi-core contention-model tests: golden pinning of the sequential
 * static-split mode, determinism and enumeration-order independence of
 * the cycle-interleaved shared mode, the static-vs-shared divergence
 * on a bandwidth-starved configuration, the l1FillWords == L2 service
 * invariant, and spatial-partition operand-view coverage for all three
 * dataflows.
 */

#include <set>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "common/log.hpp"
#include "multicore/trace_sim.hpp"
#include "obs/stats.hpp"

using namespace scalesim;
using namespace scalesim::multicore;

namespace
{

/** Config A of the golden set: WS 2x2 grid behind the shared L2. */
MultiCoreTraceConfig
configA()
{
    MultiCoreTraceConfig cfg;
    cfg.pr = cfg.pc = 2;
    cfg.arrayRows = cfg.arrayCols = 16;
    cfg.dataflow = Dataflow::WeightStationary;
    cfg.l1.ifmapWords = 4096;
    cfg.l1.filterWords = 4096;
    return cfg;
}

/** Config B: OS 2x2, no L2, bandwidth-starved DRAM. */
MultiCoreTraceConfig
configB()
{
    MultiCoreTraceConfig cfg;
    cfg.pr = cfg.pc = 2;
    cfg.arrayRows = cfg.arrayCols = 16;
    cfg.dataflow = Dataflow::OutputStationary;
    cfg.useL2 = false;
    cfg.dramWordsPerCycle = 4.0;
    return cfg;
}

/** Config C: IS 1x4 on a conv layer, with L2. */
MultiCoreTraceConfig
configC()
{
    MultiCoreTraceConfig cfg;
    cfg.pr = 1;
    cfg.pc = 4;
    cfg.arrayRows = cfg.arrayCols = 8;
    cfg.dataflow = Dataflow::InputStationary;
    cfg.l1.ifmapWords = 2048;
    cfg.l1.filterWords = 2048;
    cfg.dramWordsPerCycle = 8.0;
    return cfg;
}

const LayerSpec&
layerA()
{
    static const LayerSpec layer = LayerSpec::gemm("g", 256, 128, 128);
    return layer;
}

const LayerSpec&
layerB()
{
    static const LayerSpec layer = LayerSpec::gemm("g", 96, 64, 48);
    return layer;
}

const LayerSpec&
layerC()
{
    static const LayerSpec layer = LayerSpec::conv("c", 14, 14, 3, 3,
                                                   32, 64, 1);
    return layer;
}

MultiCoreTraceResult
run(MultiCoreTraceConfig cfg, const LayerSpec& layer,
    ContentionModel model, bool scan_reverse = false)
{
    cfg.contention = model;
    cfg.arbScanReverse = scan_reverse;
    MultiCoreTraceSimulator sim(cfg);
    return sim.runLayer(layer);
}

/** Byte-exact stats dump of one result. */
std::string
statsDump(const MultiCoreTraceResult& result)
{
    obs::StatsRegistry reg;
    result.registerStats(reg);
    std::ostringstream out;
    reg.dump(out);
    return out.str();
}

} // namespace

// ---------------------------------------------------------------------
// Golden pinning: ContentionModel::Static must reproduce the historical
// sequential/rewind results bit-for-bit.

TEST(Contention, StaticModeMatchesGoldenA)
{
    const auto r = run(configA(), layerA(), ContentionModel::Static);
    EXPECT_EQ(r.makespan, 9467u);
    EXPECT_EQ(r.dramReadWords, 49408u);
    EXPECT_EQ(r.dramWriteWords, 65536u);
    EXPECT_EQ(r.l1FillWords, 278528u);
    EXPECT_EQ(r.l2.lookups, 17408u);
    EXPECT_EQ(r.l2.hits, 17215u);
    EXPECT_EQ(r.l2.writeWords, 65536u);
    ASSERT_EQ(r.perCore.size(), 4u);
    const Cycle golden_total[] = {9467, 5338, 5340, 5338};
    const Cycle golden_stall[] = {4635, 506, 508, 506};
    for (int i = 0; i < 4; ++i) {
        EXPECT_EQ(r.perCore[i].totalCycles, golden_total[i]) << i;
        EXPECT_EQ(r.perCore[i].stallCycles, golden_stall[i]) << i;
        EXPECT_EQ(r.perCore[i].computeCycles, 4832u) << i;
        EXPECT_EQ(r.perCore[i].dramReadWords, 69632u) << i;
        EXPECT_EQ(r.perCore[i].dramWriteWords, 16384u) << i;
    }
    // Sequential simulation leaves no arbitration trace.
    EXPECT_EQ(r.arb.grants, 0u);
    EXPECT_EQ(r.arb.arbConflicts, 0u);
}

TEST(Contention, StaticModeMatchesGoldenB)
{
    const auto r = run(configB(), layerB(), ContentionModel::Static);
    EXPECT_EQ(r.makespan, 4796u);
    EXPECT_EQ(r.dramReadWords, 15360u);
    EXPECT_EQ(r.dramWriteWords, 6144u);
    EXPECT_EQ(r.l1FillWords, 15360u);
    ASSERT_EQ(r.perCore.size(), 4u);
    for (const auto& core : r.perCore) {
        EXPECT_EQ(core.totalCycles, 4796u);
        EXPECT_EQ(core.computeCycles, 564u);
        EXPECT_EQ(core.stallCycles, 4232u);
        EXPECT_EQ(core.dramReadWords, 3840u);
        EXPECT_EQ(core.dramWriteWords, 1536u);
    }
}

TEST(Contention, StaticModeMatchesGoldenC)
{
    const auto r = run(configC(), layerC(), ContentionModel::Static);
    EXPECT_EQ(r.makespan, 26825u);
    EXPECT_EQ(r.dramReadWords, 60160u);
    EXPECT_EQ(r.dramWriteWords, 9216u);
    EXPECT_EQ(r.l1FillWords, 115200u);
    EXPECT_EQ(r.l2.lookups, 6336u);
    EXPECT_EQ(r.l2.hits, 6101u);
    ASSERT_EQ(r.perCore.size(), 4u);
    const Cycle golden_total[] = {26825, 19922, 20065, 19922};
    const Cycle golden_stall[] = {11345, 4442, 4585, 4442};
    for (int i = 0; i < 4; ++i) {
        EXPECT_EQ(r.perCore[i].totalCycles, golden_total[i]) << i;
        EXPECT_EQ(r.perCore[i].stallCycles, golden_stall[i]) << i;
        EXPECT_EQ(r.perCore[i].computeCycles, 15480u) << i;
    }
}

// ---------------------------------------------------------------------
// Shared-mode semantics.

TEST(Contention, SharedModeIsDeterministic)
{
    // Two independent runs of the interleaved co-simulation produce
    // byte-identical stats dumps.
    const std::string first = statsDump(
        run(configA(), layerA(), ContentionModel::Shared));
    const std::string second = statsDump(
        run(configA(), layerA(), ContentionModel::Shared));
    EXPECT_EQ(first, second);
    EXPECT_FALSE(first.empty());
}

TEST(Contention, SharedModeIndependentOfEnumerationOrder)
{
    // The arbiter grant is an argmin over (cycle, round-robin
    // distance), so scanning ports in reverse order must not change a
    // single byte of the outcome.
    for (const auto& [cfg, layer] :
         {std::pair<MultiCoreTraceConfig, const LayerSpec*>{configA(),
                                                            &layerA()},
          {configB(), &layerB()},
          {configC(), &layerC()}}) {
        const std::string forward = statsDump(
            run(cfg, *layer, ContentionModel::Shared, false));
        const std::string reverse = statsDump(
            run(cfg, *layer, ContentionModel::Shared, true));
        EXPECT_EQ(forward, reverse);
    }
}

TEST(Contention, SharedSlowerThanStaticWhenStarved)
{
    // On a bandwidth-starved config real same-cycle collisions make
    // the shared model strictly slower than the optimistic static
    // 1/N split, with a nonzero conflict count to show why.
    const auto st = run(configB(), layerB(), ContentionModel::Static);
    const auto sh = run(configB(), layerB(), ContentionModel::Shared);
    EXPECT_GT(sh.makespan, st.makespan);
    EXPECT_GT(sh.arb.arbConflicts, 0u);
    EXPECT_GT(sh.arb.grants, 0u);
    // Traffic is identical — only the timing moves.
    EXPECT_EQ(sh.dramReadWords, st.dramReadWords);
    EXPECT_EQ(sh.dramWriteWords, st.dramWriteWords);
    EXPECT_EQ(sh.l1FillWords, st.l1FillWords);
}

TEST(Contention, SharedModeChargesWaitToCores)
{
    const auto r = run(configB(), layerB(), ContentionModel::Shared);
    ASSERT_EQ(r.ports.size(), 4u);
    std::uint64_t total_wait = 0;
    for (const auto& port : r.ports) {
        EXPECT_EQ(port.readWords, 3840u);
        EXPECT_EQ(port.writeWords, 1536u);
        total_wait += port.waitCycles;
    }
    EXPECT_GT(total_wait, 0u);
}

TEST(Contention, FillWordsEqualL2Service)
{
    // l1FillWords counts words the cores pulled from their backing
    // view; with the L2 on, every such word is served by the L2 as
    // either a hit or a miss — the sums must match exactly, in both
    // contention models.
    for (ContentionModel model :
         {ContentionModel::Shared, ContentionModel::Static}) {
        const auto a = run(configA(), layerA(), model);
        EXPECT_EQ(a.l1FillWords, a.l2.hitWords + a.l2.missWords)
            << toString(model);
        const auto c = run(configC(), layerC(), model);
        EXPECT_EQ(c.l1FillWords, c.l2.hitWords + c.l2.missWords)
            << toString(model);
    }
}

TEST(Contention, ModelKnobParses)
{
    EXPECT_EQ(contentionModelFromString("shared"),
              ContentionModel::Shared);
    EXPECT_EQ(contentionModelFromString("Static"),
              ContentionModel::Static);
    EXPECT_EQ(contentionModelFromString("SHARED"),
              ContentionModel::Shared);
    EXPECT_THROW(contentionModelFromString("fair"), FatalError);
    EXPECT_STREQ(toString(ContentionModel::Shared), "shared");
    EXPECT_STREQ(toString(ContentionModel::Static), "static");
}

// ---------------------------------------------------------------------
// Spatial-partition operand views: per-core ofmap tiles exactly
// partition the global ofmap, and replicated ifmap/filter tiles land on
// identical global addresses (the shared-L2 dedup invariant, §III-B).

namespace
{

struct PartitionGeometry
{
    GemmDims gemm;
    systolic::OperandMap global;
    std::vector<std::uint64_t> srStarts;
    std::vector<std::uint64_t> scStarts;
};

PartitionGeometry
geometry(Dataflow df, const GemmDims& gemm, std::uint64_t pr,
         std::uint64_t pc)
{
    const MappedDims mapped = systolic::mapGemmConventional(gemm, df);
    MemoryConfig mem;
    return {gemm, systolic::OperandMap(gemm, mem),
            MultiCoreTraceSimulator::shareStarts(mapped.sr, pr),
            MultiCoreTraceSimulator::shareStarts(mapped.sc, pc)};
}

MultiCoreTraceSimulator::CorePartition
partitionOf(Dataflow df, const PartitionGeometry& geo, std::uint64_t i,
            std::uint64_t j)
{
    return MultiCoreTraceSimulator::corePartition(
        df, geo.gemm, geo.global, geo.srStarts[i],
        geo.srStarts[i + 1] - geo.srStarts[i], geo.scStarts[j],
        geo.scStarts[j + 1] - geo.scStarts[j]);
}

std::set<Addr>
ofmapAddrs(const MultiCoreTraceSimulator::CorePartition& part)
{
    std::set<Addr> addrs;
    for (std::uint64_t m = 0; m < part.share.m; ++m)
        for (std::uint64_t n = 0; n < part.share.n; ++n)
            addrs.insert(part.view.ofmapAddr(m, n));
    return addrs;
}

std::set<Addr>
ifmapAddrs(const MultiCoreTraceSimulator::CorePartition& part)
{
    std::set<Addr> addrs;
    for (std::uint64_t m = 0; m < part.share.m; ++m)
        for (std::uint64_t k = 0; k < part.share.k; ++k)
            addrs.insert(part.view.ifmapAddr(m, k));
    return addrs;
}

std::set<Addr>
filterAddrs(const MultiCoreTraceSimulator::CorePartition& part)
{
    std::set<Addr> addrs;
    for (std::uint64_t k = 0; k < part.share.k; ++k)
        for (std::uint64_t n = 0; n < part.share.n; ++n)
            addrs.insert(part.view.filterAddr(k, n));
    return addrs;
}

/**
 * Assert that the tiles of the cores in `owners` exactly cover
 * [base, base + count) with no overlap and no gap.
 */
void
expectExactCover(const std::vector<std::set<Addr>>& owners, Addr base,
                 std::uint64_t count)
{
    std::set<Addr> seen;
    std::uint64_t total = 0;
    for (const auto& tile : owners) {
        total += tile.size();
        seen.insert(tile.begin(), tile.end());
    }
    EXPECT_EQ(total, count) << "tiles overlap";
    ASSERT_EQ(seen.size(), count) << "tiles leave gaps";
    EXPECT_EQ(*seen.begin(), base);
    EXPECT_EQ(*seen.rbegin(), base + count - 1);
}

} // namespace

TEST(PartitionViews, OutputStationaryTilesOfmapExactly)
{
    // Ragged dims: shares are uneven on purpose.
    const GemmDims gemm{37, 19, 23};
    const std::uint64_t pr = 2, pc = 3;
    const auto geo = geometry(Dataflow::OutputStationary, gemm, pr, pc);

    // OS partitions the ofmap in 2D: every core owns a distinct tile.
    std::vector<std::set<Addr>> tiles;
    for (std::uint64_t i = 0; i < pr; ++i)
        for (std::uint64_t j = 0; j < pc; ++j)
            tiles.push_back(ofmapAddrs(
                partitionOf(Dataflow::OutputStationary, geo, i, j)));
    expectExactCover(tiles, geo.global.ofmapBase, gemm.m * gemm.n);

    // Ifmap replicates along grid columns, filter along grid rows.
    for (std::uint64_t i = 0; i < pr; ++i) {
        const auto base = ifmapAddrs(
            partitionOf(Dataflow::OutputStationary, geo, i, 0));
        for (std::uint64_t j = 1; j < pc; ++j)
            EXPECT_EQ(base,
                      ifmapAddrs(partitionOf(
                          Dataflow::OutputStationary, geo, i, j)));
    }
    for (std::uint64_t j = 0; j < pc; ++j) {
        const auto base = filterAddrs(
            partitionOf(Dataflow::OutputStationary, geo, 0, j));
        for (std::uint64_t i = 1; i < pr; ++i)
            EXPECT_EQ(base,
                      filterAddrs(partitionOf(
                          Dataflow::OutputStationary, geo, i, j)));
    }
}

TEST(PartitionViews, WeightStationaryTilesOfmapExactly)
{
    const GemmDims gemm{37, 19, 23};
    const std::uint64_t pr = 2, pc = 3;
    const auto geo = geometry(Dataflow::WeightStationary, gemm, pr, pc);

    // WS partitions K across grid rows: within one row the column
    // shares tile the ofmap; the other rows replicate those tiles
    // (partial-sum accumulation hits the same addresses).
    std::vector<std::set<Addr>> tiles;
    for (std::uint64_t j = 0; j < pc; ++j)
        tiles.push_back(ofmapAddrs(
            partitionOf(Dataflow::WeightStationary, geo, 0, j)));
    expectExactCover(tiles, geo.global.ofmapBase, gemm.m * gemm.n);
    for (std::uint64_t i = 1; i < pr; ++i)
        for (std::uint64_t j = 0; j < pc; ++j)
            EXPECT_EQ(tiles[j],
                      ofmapAddrs(partitionOf(
                          Dataflow::WeightStationary, geo, i, j)));

    // Ifmap replicates along grid columns; filter tiles partition the
    // whole filter space in 2D.
    for (std::uint64_t i = 0; i < pr; ++i) {
        const auto base = ifmapAddrs(
            partitionOf(Dataflow::WeightStationary, geo, i, 0));
        for (std::uint64_t j = 1; j < pc; ++j)
            EXPECT_EQ(base,
                      ifmapAddrs(partitionOf(
                          Dataflow::WeightStationary, geo, i, j)));
    }
    std::vector<std::set<Addr>> filter_tiles;
    for (std::uint64_t i = 0; i < pr; ++i)
        for (std::uint64_t j = 0; j < pc; ++j)
            filter_tiles.push_back(filterAddrs(
                partitionOf(Dataflow::WeightStationary, geo, i, j)));
    expectExactCover(filter_tiles, geo.global.filterBase,
                     gemm.k * gemm.n);
}

TEST(PartitionViews, InputStationaryTilesOfmapExactly)
{
    const GemmDims gemm{37, 19, 23};
    const std::uint64_t pr = 2, pc = 3;
    const auto geo = geometry(Dataflow::InputStationary, gemm, pr, pc);

    // IS partitions K across grid rows and M across grid columns: one
    // grid row's column shares tile the ofmap, other rows replicate.
    std::vector<std::set<Addr>> tiles;
    for (std::uint64_t j = 0; j < pc; ++j)
        tiles.push_back(ofmapAddrs(
            partitionOf(Dataflow::InputStationary, geo, 0, j)));
    expectExactCover(tiles, geo.global.ofmapBase, gemm.m * gemm.n);
    for (std::uint64_t i = 1; i < pr; ++i)
        for (std::uint64_t j = 0; j < pc; ++j)
            EXPECT_EQ(tiles[j],
                      ofmapAddrs(partitionOf(
                          Dataflow::InputStationary, geo, i, j)));

    // Ifmap tiles partition the whole ifmap in 2D; filter replicates
    // along grid columns.
    std::vector<std::set<Addr>> ifmap_tiles;
    for (std::uint64_t i = 0; i < pr; ++i)
        for (std::uint64_t j = 0; j < pc; ++j)
            ifmap_tiles.push_back(ifmapAddrs(
                partitionOf(Dataflow::InputStationary, geo, i, j)));
    expectExactCover(ifmap_tiles, geo.global.ifmapBase,
                     gemm.m * gemm.k);
    for (std::uint64_t i = 0; i < pr; ++i) {
        const auto base = filterAddrs(
            partitionOf(Dataflow::InputStationary, geo, i, 0));
        for (std::uint64_t j = 1; j < pc; ++j)
            EXPECT_EQ(base,
                      filterAddrs(partitionOf(
                          Dataflow::InputStationary, geo, i, j)));
    }
}

TEST(PartitionViews, ReplicatedTilesDeduplicateInL2)
{
    // End-to-end: with the shared L2 on, the replicated partitions
    // must be served once from DRAM — DRAM read traffic falls well
    // below the sum of core fills, for every dataflow.
    for (Dataflow df : {Dataflow::OutputStationary,
                        Dataflow::WeightStationary,
                        Dataflow::InputStationary}) {
        MultiCoreTraceConfig cfg;
        cfg.pr = cfg.pc = 2;
        cfg.arrayRows = cfg.arrayCols = 16;
        cfg.dataflow = df;
        cfg.l1.ifmapWords = 4096;
        cfg.l1.filterWords = 4096;
        MultiCoreTraceSimulator sim(cfg);
        const auto r = sim.runLayer(LayerSpec::gemm("g", 128, 96, 64));
        EXPECT_LT(r.dramReadWords, r.l1FillWords) << toString(df);
        EXPECT_GT(r.l2.hits, 0u) << toString(df);
    }
}
