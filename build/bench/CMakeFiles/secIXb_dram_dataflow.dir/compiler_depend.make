# Empty compiler generated dependencies file for secIXb_dram_dataflow.
# This may be replaced when dependencies are built.
