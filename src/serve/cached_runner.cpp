#include "serve/cached_runner.hpp"

#include <algorithm>

#include "common/hash.hpp"
#include "common/log.hpp"
#include "common/parallel.hpp"
#include "common/serialize.hpp"

namespace scalesim::serve
{

namespace
{

/** Bump on any change to the key schema or payload encoding. */
constexpr std::uint64_t kCacheSchemaVersion = 1;

void
mixLayer(Fnv1a& h, const LayerSpec& layer)
{
    // Canonical shape only: `name` is a display label and
    // `repetitions` scales results outside the per-instance numbers,
    // so neither may split cache entries.
    h.mix(static_cast<std::uint8_t>(layer.type));
    h.mix(layer.ifmapH);
    h.mix(layer.ifmapW);
    h.mix(layer.filterH);
    h.mix(layer.filterW);
    h.mix(layer.channels);
    h.mix(layer.numFilters);
    h.mix(layer.stride);
    h.mix(layer.gemmDims.m);
    h.mix(layer.gemmDims.n);
    h.mix(layer.gemmDims.k);
    h.mix(layer.batch);
    h.mix(layer.sparseN);
    h.mix(layer.sparseM);
    h.mix(static_cast<std::uint8_t>(layer.tail));
}

} // namespace

std::uint64_t
layerCacheKey(const SimConfig& cfg, const LayerSpec& layer,
              std::uint64_t layer_index)
{
    Fnv1a h;
    h.mix(kCacheSchemaVersion);

    // Config slice that affects one layer's timing/energy. runName,
    // audit, intervalCycles, and the multicore engine selection are
    // deliberately absent: none of them change an instance's numbers.
    h.mix(cfg.arrayRows);
    h.mix(cfg.arrayCols);
    h.mix(static_cast<std::uint8_t>(cfg.dataflow));
    h.mix(static_cast<std::uint8_t>(cfg.mode));
    h.mix(static_cast<std::uint8_t>(cfg.foldCache));
    h.mix(cfg.simdLanes);
    h.mix(cfg.simdLatencyPerOp);

    h.mix(cfg.memory.ifmapSramKb);
    h.mix(cfg.memory.filterSramKb);
    h.mix(cfg.memory.ofmapSramKb);
    h.mix(cfg.memory.ifmapOffset);
    h.mix(cfg.memory.filterOffset);
    h.mix(cfg.memory.ofmapOffset);
    h.mix(cfg.memory.wordBytes);
    h.mix(cfg.memory.bandwidthWordsPerCycle);
    h.mix(cfg.memory.burstWords);
    h.mix(cfg.memory.issuePerCycle);
    h.mix(cfg.memory.prefetchDepth);
    h.mix(static_cast<std::uint8_t>(cfg.memory.im2colAddressing));

    h.mix(static_cast<std::uint8_t>(cfg.sparsity.enabled));
    h.mix(static_cast<std::uint8_t>(cfg.sparsity.optimizedMapping));
    h.mix(static_cast<std::uint8_t>(cfg.sparsity.rep));
    h.mix(cfg.sparsity.blockSize);
    h.mix(cfg.sparsity.seed);

    h.mix(static_cast<std::uint8_t>(cfg.dram.enabled));
    h.mixString(cfg.dram.tech);
    h.mixString(cfg.dram.engine);
    h.mix(cfg.dram.channels);
    h.mix(cfg.dram.ranksPerChannel);
    h.mix(cfg.dram.readQueueSize);
    h.mix(cfg.dram.writeQueueSize);
    h.mix(cfg.dram.coreClockMhz);

    h.mix(static_cast<std::uint8_t>(cfg.layout.enabled));
    h.mix(cfg.layout.banks);
    h.mix(cfg.layout.portsPerBank);
    h.mix(cfg.layout.onChipBandwidth);

    h.mix(static_cast<std::uint8_t>(cfg.energy.enabled));
    h.mix(cfg.energy.rowSize);
    h.mix(cfg.energy.bankSize);
    h.mix(cfg.energy.frequencyGhz);
    h.mixString(cfg.energy.node);

    mixLayer(h, layer);

    // SparseLayerModel seeds its per-row N:M pattern with the layer
    // position, so under sparsity identical shapes at different
    // indices are genuinely different evaluations.
    if (cfg.sparsity.enabled || cfg.sparsity.optimizedMapping)
        h.mix(layer_index);

    return h.digest();
}

namespace
{

void
putCpi(ByteWriter& out, const obs::CpiStack& cpi)
{
    out.put(cpi.compute);
    out.put(cpi.vectorUnit);
    out.put(cpi.drain);
    out.put(cpi.bandwidth);
    out.put(cpi.prefetchMiss);
    out.put(cpi.l2Wait);
    out.put(cpi.dramQueue);
    out.put(cpi.dramService);
    out.put(cpi.refresh);
}

void
getCpi(ByteReader& in, obs::CpiStack& cpi)
{
    cpi.compute = in.get<std::uint64_t>();
    cpi.vectorUnit = in.get<std::uint64_t>();
    cpi.drain = in.get<std::uint64_t>();
    cpi.bandwidth = in.get<std::uint64_t>();
    cpi.prefetchMiss = in.get<std::uint64_t>();
    cpi.l2Wait = in.get<std::uint64_t>();
    cpi.dramQueue = in.get<std::uint64_t>();
    cpi.dramService = in.get<std::uint64_t>();
    cpi.refresh = in.get<std::uint64_t>();
}

void
putSram(ByteWriter& out, const energy::SramActionCounts& s)
{
    out.put(s.readRandom);
    out.put(s.readRepeat);
    out.put(s.writeRandom);
    out.put(s.writeRepeat);
    out.put(s.idle);
}

void
getSram(ByteReader& in, energy::SramActionCounts& s)
{
    s.readRandom = in.get<Count>();
    s.readRepeat = in.get<Count>();
    s.writeRandom = in.get<Count>();
    s.writeRepeat = in.get<Count>();
    s.idle = in.get<Count>();
}

/**
 * Encode one layer's isolated evaluation: the LayerResult (minus its
 * display name/repetitions, patched at hit time), the DRAM stats of
 * the isolated run, and the component stats registry snapshot.
 * Doubles are stored as bit patterns — the round trip is lossless, so
 * cached and freshly simulated results are bit-identical.
 */
std::string
encodeLayerPayload(const core::LayerResult& r,
                   const dram::DramStats& ds,
                   const obs::StatsRegistry& comp)
{
    ByteWriter out;
    out.put(r.denseGemm.m);
    out.put(r.denseGemm.n);
    out.put(r.denseGemm.k);
    out.put(r.effectiveGemm.m);
    out.put(r.effectiveGemm.n);
    out.put(r.effectiveGemm.k);
    out.put(r.computeCycles);
    out.put(r.simdCycles);
    out.put(r.totalCycles);
    out.put(r.stallCycles);
    out.put(r.utilization);
    out.put(r.speedup);
    out.put(r.mappingEfficiency);
    out.put(r.layoutSlowdown);
    putCpi(out, r.cpi);

    const systolic::LayerTiming& t = r.timing;
    out.put(t.computeCycles);
    out.put(t.totalCycles);
    out.put(t.stallCycles);
    out.put(t.prefetchStallCycles);
    out.put(t.drainStallCycles);
    out.put(t.bandwidthStallCycles);
    putCpi(out, t.cpi);
    out.put(t.folds);
    out.put(t.dramReadWords);
    out.put(t.dramWriteWords);
    out.put(t.dramReadRequests);
    out.put(t.dramWriteRequests);
    out.put(t.avgReadLatency);
    out.put(t.readQueueStalls);
    out.put(t.writeQueueStalls);

    out.put(static_cast<std::uint8_t>(r.sparse.has_value()));
    if (r.sparse) {
        const sparse::SparseLayerReport& s = *r.sparse;
        out.putString(s.representation);
        out.put(s.ratioN);
        out.put(s.ratioM);
        out.put(s.denseK);
        out.put(s.compressedK);
        out.put(s.originalFilterBits);
        out.put(s.newFilterBits);
        out.put(s.metadataBits);
    }

    const energy::ActionCounts& a = r.actions;
    out.put(a.macRandom);
    out.put(a.macConstant);
    out.put(a.macGated);
    out.put(a.ifmapSpadRead);
    out.put(a.ifmapSpadWrite);
    out.put(a.weightSpadRead);
    out.put(a.weightSpadWrite);
    out.put(a.psumSpadRead);
    out.put(a.psumSpadWrite);
    putSram(out, a.ifmapSram);
    putSram(out, a.filterSram);
    putSram(out, a.ofmapSram);
    out.put(a.vectorOps);
    out.put(a.dramReadWords);
    out.put(a.dramWriteWords);
    out.put(a.nocWords);
    out.put(a.cycles);

    out.put(r.energyBreakdown.peArray);
    out.put(r.energyBreakdown.glb);
    out.put(r.energyBreakdown.noc);
    out.put(r.energyBreakdown.dram);
    out.put(r.energyBreakdown.staticE);
    out.put(r.powerW);

    out.put(ds.reads);
    out.put(ds.writes);
    out.put(ds.rowHits);
    out.put(ds.rowMisses);
    out.put(ds.rowConflicts);
    out.put(ds.refreshes);
    out.put(ds.readBytes);
    out.put(ds.writeBytes);
    out.put(ds.totalReadLatency);
    out.put(ds.readQueueWait);
    out.put(ds.readRefreshWait);
    out.put(ds.readServiceTime);
    out.put(ds.firstArrival);
    out.put(ds.lastCompletion);

    comp.serialize(out);
    return out.take();
}

bool
decodeLayerPayload(const std::string& payload, core::LayerResult& r,
                   dram::DramStats& ds, obs::StatsRegistry& comp)
{
    ByteReader in(payload);
    r.denseGemm.m = in.get<std::uint64_t>();
    r.denseGemm.n = in.get<std::uint64_t>();
    r.denseGemm.k = in.get<std::uint64_t>();
    r.effectiveGemm.m = in.get<std::uint64_t>();
    r.effectiveGemm.n = in.get<std::uint64_t>();
    r.effectiveGemm.k = in.get<std::uint64_t>();
    r.computeCycles = in.get<Cycle>();
    r.simdCycles = in.get<Cycle>();
    r.totalCycles = in.get<Cycle>();
    r.stallCycles = in.get<Cycle>();
    r.utilization = in.get<double>();
    r.speedup = in.get<double>();
    r.mappingEfficiency = in.get<double>();
    r.layoutSlowdown = in.get<double>();
    getCpi(in, r.cpi);

    systolic::LayerTiming& t = r.timing;
    t.computeCycles = in.get<Cycle>();
    t.totalCycles = in.get<Cycle>();
    t.stallCycles = in.get<Cycle>();
    t.prefetchStallCycles = in.get<Cycle>();
    t.drainStallCycles = in.get<Cycle>();
    t.bandwidthStallCycles = in.get<Cycle>();
    getCpi(in, t.cpi);
    t.folds = in.get<Count>();
    t.dramReadWords = in.get<std::uint64_t>();
    t.dramWriteWords = in.get<std::uint64_t>();
    t.dramReadRequests = in.get<Count>();
    t.dramWriteRequests = in.get<Count>();
    t.avgReadLatency = in.get<double>();
    t.readQueueStalls = in.get<Cycle>();
    t.writeQueueStalls = in.get<Cycle>();

    if (in.get<std::uint8_t>() != 0) {
        sparse::SparseLayerReport s;
        s.representation = in.getString();
        s.ratioN = in.get<std::uint32_t>();
        s.ratioM = in.get<std::uint32_t>();
        s.denseK = in.get<std::uint64_t>();
        s.compressedK = in.get<std::uint64_t>();
        s.originalFilterBits = in.get<std::uint64_t>();
        s.newFilterBits = in.get<std::uint64_t>();
        s.metadataBits = in.get<std::uint64_t>();
        r.sparse = std::move(s);
    }

    energy::ActionCounts& a = r.actions;
    a.macRandom = in.get<Count>();
    a.macConstant = in.get<Count>();
    a.macGated = in.get<Count>();
    a.ifmapSpadRead = in.get<Count>();
    a.ifmapSpadWrite = in.get<Count>();
    a.weightSpadRead = in.get<Count>();
    a.weightSpadWrite = in.get<Count>();
    a.psumSpadRead = in.get<Count>();
    a.psumSpadWrite = in.get<Count>();
    getSram(in, a.ifmapSram);
    getSram(in, a.filterSram);
    getSram(in, a.ofmapSram);
    a.vectorOps = in.get<Count>();
    a.dramReadWords = in.get<Count>();
    a.dramWriteWords = in.get<Count>();
    a.nocWords = in.get<Count>();
    a.cycles = in.get<Cycle>();

    r.energyBreakdown.peArray = in.get<double>();
    r.energyBreakdown.glb = in.get<double>();
    r.energyBreakdown.noc = in.get<double>();
    r.energyBreakdown.dram = in.get<double>();
    r.energyBreakdown.staticE = in.get<double>();
    r.powerW = in.get<double>();

    ds.reads = in.get<Count>();
    ds.writes = in.get<Count>();
    ds.rowHits = in.get<Count>();
    ds.rowMisses = in.get<Count>();
    ds.rowConflicts = in.get<Count>();
    ds.refreshes = in.get<Count>();
    ds.readBytes = in.get<std::uint64_t>();
    ds.writeBytes = in.get<std::uint64_t>();
    ds.totalReadLatency = in.get<Cycle>();
    ds.readQueueWait = in.get<Cycle>();
    ds.readRefreshWait = in.get<Cycle>();
    ds.readServiceTime = in.get<Cycle>();
    ds.firstArrival = in.get<Cycle>();
    ds.lastCompletion = in.get<Cycle>();

    if (!comp.deserialize(in))
        return false;
    return in.atEnd();
}

constexpr Cycle kNoArrival = ~static_cast<Cycle>(0);

/**
 * Fold one isolated layer's DRAM stats into a run-level aggregate:
 * counts and byte totals sum; the arrival/completion envelope takes
 * the min/max of the per-layer (layer-local-time) envelopes, which is
 * indicative only under isolated semantics.
 */
void
accumulateDramStats(dram::DramStats& total, const dram::DramStats& ds)
{
    total.reads += ds.reads;
    total.writes += ds.writes;
    total.rowHits += ds.rowHits;
    total.rowMisses += ds.rowMisses;
    total.rowConflicts += ds.rowConflicts;
    total.refreshes += ds.refreshes;
    total.readBytes += ds.readBytes;
    total.writeBytes += ds.writeBytes;
    total.totalReadLatency += ds.totalReadLatency;
    total.readQueueWait += ds.readQueueWait;
    total.readRefreshWait += ds.readRefreshWait;
    total.readServiceTime += ds.readServiceTime;
    if (ds.firstArrival != kNoArrival) {
        total.firstArrival = total.firstArrival == kNoArrival
            ? ds.firstArrival
            : std::min(total.firstArrival, ds.firstArrival);
    }
    total.lastCompletion =
        std::max(total.lastCompletion, ds.lastCompletion);
}

} // namespace

core::RunResult
runTopologyCached(const SimConfig& cfg, const Topology& topology,
                  LayerResultCache* cache)
{
    // Audit, interval sampling, and fold spans need a live simulation
    // of every layer (and, for run-level audits, the coupled run());
    // serving them from cache would silently drop their outputs.
    // Those configs take the standard Simulator::run path untouched.
    const bool cacheable = !cfg.audit && cfg.intervalCycles == 0
        && !cfg.memory.recordFoldSpans;
    if (!cacheable) {
        core::Simulator coupled(cfg);
        return coupled.run(topology);
    }
    LayerResultCache* use = cache;

    core::RunResult run;
    run.runName = cfg.runName;
    run.workload = topology.name;
    run.layers.reserve(topology.layers.size());

    core::Simulator sim(cfg);
    bool sim_used = false;
    obs::StatsRegistry comp_accum;

    for (std::size_t i = 0; i < topology.layers.size(); ++i) {
        const LayerSpec& spec = topology.layers[i];
        const std::uint64_t key = layerCacheKey(cfg, spec, i);

        core::LayerResult layer;
        dram::DramStats layer_dram;
        obs::StatsRegistry comp;
        bool decoded = false;
        std::string payload;
        if (use && use->lookup(key, payload)) {
            decoded =
                decodeLayerPayload(payload, layer, layer_dram, comp);
            if (!decoded) {
                // A payload that decodes badly (stale schema, bit rot
                // that beat the checksum) degrades to a miss.
                warn("cache payload for key %016llx undecodable, "
                     "re-simulating",
                     static_cast<unsigned long long>(key));
                layer = core::LayerResult{};
                layer_dram = dram::DramStats{};
                comp.clear();
            }
        }
        if (!decoded) {
            // Isolated evaluation: reset before (not after) each
            // simulated layer, so results are position-independent and
            // the cache key needs no run-history component.
            if (sim_used)
                sim.reset();
            sim_used = true;
            layer = sim.runLayer(spec, i);
            if (sim.dramMemory())
                layer_dram = sim.dramMemory()->system().totalStats();
            sim.registerStats(comp);
            if (use)
                use->insert(key,
                            encodeLayerPayload(layer, layer_dram, comp));
        }
        // Display name and repetition count are excluded from the
        // cache key; patch them from the request's layer spec.
        layer.name = spec.name;
        layer.repetitions = spec.repetitions;
        if (layer.sparse)
            layer.sparse->layerName = spec.name;

        const std::uint64_t reps = layer.repetitions;
        run.totalCycles += layer.totalCycles * reps;
        run.computeCycles += layer.computeCycles * reps;
        run.stallCycles += layer.stallCycles * reps;
        run.dramReadWords += layer.timing.dramReadWords * reps;
        run.dramWriteWords += layer.timing.dramWriteWords * reps;
        run.cpiTotals.accumulate(layer.cpi, reps);
        if (cfg.energy.enabled) {
            energy::EnergyBreakdown scaled = layer.energyBreakdown;
            scaled.peArray *= static_cast<double>(reps);
            scaled.glb *= static_cast<double>(reps);
            scaled.noc *= static_cast<double>(reps);
            scaled.dram *= static_cast<double>(reps);
            scaled.staticE *= static_cast<double>(reps);
            run.totalEnergy.merge(scaled);
            for (std::uint64_t rep = 0; rep < reps; ++rep) {
                run.powerTrace.push_back(
                    {layer.name, layer.totalCycles, layer.powerW});
            }
        }
        if (cfg.dram.enabled)
            accumulateDramStats(run.dramStats, layer_dram);
        comp_accum.merge(comp);
        run.layers.push_back(std::move(layer));
    }

    if (cfg.energy.enabled) {
        const double sram_kb = static_cast<double>(
            cfg.memory.ifmapSramKb + cfg.memory.filterSramKb
            + cfg.memory.ofmapSramKb);
        const energy::EnergyModel model(
            energy::Ert::forNode(cfg.energy.node), cfg.energy,
            cfg.numPes(), sram_kb);
        run.avgPowerW = model.averagePowerW(run.totalEnergy,
                                            run.totalCycles);
        run.edp = model.edp(run.totalEnergy, run.totalCycles);
    }
    if (sim_used)
        run.profile = sim.profile();
    run.registerStats(run.stats);
    // The merged per-layer component snapshots stand in for the
    // coupled run's Simulator::registerStats call; the name spaces
    // (dram.*, spad.*, mem.*, sim.foldCache.*) are disjoint from the
    // run-derived stats, and merging in layer order keeps dumps
    // byte-identical however each layer was obtained.
    run.stats.merge(comp_accum);
    return run;
}

std::vector<core::DseDetailedPoint>
runSweepCachedDetailed(const core::DseSweep& sweep,
                       const Topology& topology, LayerResultCache* cache)
{
    if (sweep.arraySizes.empty() || sweep.dataflows.empty()
        || sweep.sramKbTotals.empty()) {
        fatal("DSE sweep has an empty axis");
    }
    struct Candidate
    {
        std::uint32_t array;
        Dataflow dataflow;
        std::uint64_t sramKb;
    };
    std::vector<Candidate> candidates;
    candidates.reserve(sweep.arraySizes.size() * sweep.dataflows.size()
                       * sweep.sramKbTotals.size());
    for (std::uint32_t array : sweep.arraySizes)
        for (Dataflow df : sweep.dataflows)
            for (std::uint64_t sram_kb : sweep.sramKbTotals)
                candidates.push_back({array, df, sram_kb});

    std::vector<core::DseDetailedPoint> points(candidates.size());
    // Worker-shared state is exactly {candidates (read-only), points
    // (written by-index, pre-sized), cache (internally locked — its
    // methods are SIM_EXCLUDES-annotated, see cache.hpp)}; everything
    // else below is constructed per-iteration, which is what makes the
    // parallel sweep bit-identical to the sequential one.
    parallelFor(candidates.size(), sweep.jobs, [&](std::uint64_t i) {
        const Candidate& cand = candidates[i];
        SimConfig cfg = sweep.base;
        cfg.arrayRows = cfg.arrayCols = cand.array;
        cfg.dataflow = cand.dataflow;
        cfg.energy.enabled = true;
        const core::SramSplit split = core::splitSramKb(cand.sramKb);
        cfg.memory.ifmapSramKb = split.ifmapKb;
        cfg.memory.filterSramKb = split.filterKb;
        cfg.memory.ofmapSramKb = split.ofmapKb;
        core::RunResult run = runTopologyCached(cfg, topology, cache);
        core::DsePoint point;
        point.array = cand.array;
        point.dataflow = cand.dataflow;
        point.sramKb = cand.sramKb;
        point.cycles = run.totalCycles;
        point.energyMj = run.totalEnergy.totalMj();
        point.edp = run.edp;
        points[i].point = point;
        points[i].stats = std::move(run.stats);
    });
    return points;
}

std::vector<core::DsePoint>
runSweepCached(const core::DseSweep& sweep, const Topology& topology,
               LayerResultCache* cache)
{
    std::vector<core::DseDetailedPoint> detailed =
        runSweepCachedDetailed(sweep, topology, cache);
    std::vector<core::DsePoint> points;
    points.reserve(detailed.size());
    for (const auto& d : detailed)
        points.push_back(d.point);
    return points;
}

} // namespace scalesim::serve
