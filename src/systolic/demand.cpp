#include "systolic/demand.hpp"

#include <vector>

#include "check/contract.hpp"
#include "common/log.hpp"
#include "systolic/fold_cache.hpp"

namespace scalesim::systolic
{

namespace
{

GemmDims
effectiveGemm(const GemmDims& dense, const KGatherMap* gather)
{
    GemmDims eff = dense;
    if (gather) {
        eff.k = gather->compressedK();
        if (eff.k == 0 || eff.k > dense.k)
            fatal("sparse gather map has invalid compressed K %llu",
                  static_cast<unsigned long long>(eff.k));
    }
    return eff;
}

constexpr std::uint64_t kNoClass = ~static_cast<std::uint64_t>(0);

/**
 * Conv ifmap m-window equivalence class of output pixels
 * [m_lo, m_lo + span). Two windows are shift-equivalent iff both sit
 * inside a single image and their in-image offsets agree modulo one
 * output row (same ow column, oh shifted uniformly). Windows spanning
 * an image boundary shift non-uniformly, so they get no class.
 */
std::uint64_t
convMClass(const OperandMap& op, std::uint64_t m_lo, std::uint64_t span)
{
    const std::uint64_t pixels = op.dims.m / op.batch;
    if (pixels == 0 || op.ofmapW == 0 || span == 0)
        return kNoClass;
    if (m_lo / pixels != (m_lo + span - 1) / pixels)
        return kNoClass;
    return (m_lo % pixels) % op.ofmapW;
}

/**
 * Conv ifmap k-window class: reduction ranges [k_lo, k_lo + span)
 * shift affinely iff their bases agree modulo one filter row
 * (filterW * channels words), which keeps (kw, c) fixed and moves kh
 * uniformly.
 */
std::uint64_t
convKClass(const OperandMap& op, std::uint64_t k_lo)
{
    const std::uint64_t row = op.filterW * op.channels;
    return row == 0 ? kNoClass : k_lo % row;
}

/** Ifmap address shift between two same-class m-bases. */
std::int64_t
ifmapShiftM(const OperandMap& op, std::uint64_t m_from,
            std::uint64_t m_to)
{
    if (!op.conv) {
        return (static_cast<std::int64_t>(m_to)
                - static_cast<std::int64_t>(m_from))
            * static_cast<std::int64_t>(op.dims.k);
    }
    const std::uint64_t pixels = op.dims.m / op.batch;
    const std::int64_t dimg = static_cast<std::int64_t>(m_to / pixels)
        - static_cast<std::int64_t>(m_from / pixels);
    // Same class => the in-image offsets differ by whole output rows.
    const std::int64_t drow =
        (static_cast<std::int64_t>(m_to % pixels)
         - static_cast<std::int64_t>(m_from % pixels))
        / static_cast<std::int64_t>(op.ofmapW);
    return dimg
        * static_cast<std::int64_t>(op.ifmapH * op.ifmapW * op.channels)
        + drow
        * static_cast<std::int64_t>(op.stride * op.ifmapW * op.channels);
}

/** Ifmap address shift between two same-class k-bases. */
std::int64_t
ifmapShiftK(const OperandMap& op, std::uint64_t k_from,
            std::uint64_t k_to)
{
    if (!op.conv) {
        return static_cast<std::int64_t>(k_to)
            - static_cast<std::int64_t>(k_from);
    }
    // Same class => the bases differ by whole filter rows, each of
    // which moves the window one ifmap row down.
    const std::int64_t drows =
        (static_cast<std::int64_t>(k_to)
         - static_cast<std::int64_t>(k_from))
        / static_cast<std::int64_t>(op.filterW * op.channels);
    return drows
        * static_cast<std::int64_t>(op.ifmapW * op.channels);
}

} // namespace

DemandGenerator::DemandGenerator(const GemmDims& gemm, Dataflow df,
                                 std::uint32_t array_rows,
                                 std::uint32_t array_cols,
                                 const OperandMap& operands,
                                 const KGatherMap* gather)
    : denseGemm_(gemm), effectiveGemm_(effectiveGemm(gemm, gather)),
      grid_(effectiveGemm_, df, array_rows, array_cols),
      operands_(operands), gather_(gather)
{
    if (gather_ && df != Dataflow::WeightStationary) {
        fatal("sparse trace simulation supports weight-stationary only "
              "(as in the paper's evaluations)");
    }
    // Operand addressing always uses the dense dimensions so gathered
    // ifmap reads land on real dense addresses.
    operands_.dims = denseGemm_;
}

void
DemandGenerator::run(DemandVisitor& visitor) const
{
    cacheStats_ = {};
    if (foldCache_ && grid_.numFolds() > 1) {
        runCached(visitor);
        return;
    }
    visitor.beginLayer(grid_, operands_);
    Cycle fold_start = 0;
    const Cycle fold_len = grid_.foldCycles();
    for (std::uint64_t rf = 0; rf < grid_.rowFolds(); ++rf) {
        for (std::uint64_t cf = 0; cf < grid_.colFolds(); ++cf) {
            visitor.beginFold(rf, cf, fold_start);
            runFold(visitor, rf, cf, fold_start);
            ++cacheStats_.foldsTotal;
            ++cacheStats_.foldsLive;
            fold_start += fold_len;
            visitor.endFold(rf, cf, fold_start);
        }
    }
    visitor.endLayer(fold_start);
}

void
DemandGenerator::runFold(DemandVisitor& visitor, std::uint64_t rf,
                         std::uint64_t cf, Cycle fold_start) const
{
    switch (grid_.dataflow()) {
      case Dataflow::OutputStationary:
        runFoldOs(visitor, rf, cf, fold_start);
        break;
      case Dataflow::WeightStationary:
        runFoldWs(visitor, rf, cf, fold_start);
        break;
      case Dataflow::InputStationary:
        runFoldIs(visitor, rf, cf, fold_start);
        break;
    }
}

bool
DemandGenerator::replayKey(std::uint64_t rf, std::uint64_t cf,
                           std::uint64_t& key) const
{
    // The filter (K x N row-major) and ofmap (M x N row-major) streams
    // are affine in both fold bases for every dataflow, so only the
    // ifmap mapping decides the equivalence class.
    switch (grid_.dataflow()) {
      case Dataflow::OutputStationary: {
        if (!operands_.conv) {
            key = 0;
            return true;
        }
        const std::uint64_t mcls = convMClass(
            operands_, rf * grid_.arrayRows(), grid_.tileRows(rf));
        if (mcls == kNoClass)
            return false;
        key = 1 + mcls;
        return true;
      }
      case Dataflow::WeightStationary: {
        if (gather_) {
            // origK() breaks the affine k mapping: row folds are
            // incomparable, but the column folds of one row fold all
            // stream the same gathered ifmap rows (delta 0).
            key = (1ull << 32) + rf;
            return true;
        }
        if (!operands_.conv) {
            key = 0;
            return true;
        }
        const std::uint64_t kcls = convKClass(
            operands_, rf * grid_.arrayRows());
        if (kcls == kNoClass)
            return false;
        key = 1 + kcls;
        return true;
      }
      case Dataflow::InputStationary: {
        if (!operands_.conv) {
            key = 0;
            return true;
        }
        const std::uint64_t mcls = convMClass(
            operands_, cf * grid_.arrayCols(), grid_.tileCols(cf));
        const std::uint64_t kcls = convKClass(
            operands_, rf * grid_.arrayRows());
        if (mcls == kNoClass || kcls == kNoClass)
            return false;
        key = 1 + mcls * (operands_.filterW * operands_.channels)
            + kcls;
        return true;
      }
    }
    return false;
}

ReplayDeltas
DemandGenerator::replayDeltas(const FoldCacheEntry& entry,
                              std::uint64_t rf, std::uint64_t cf) const
{
    const std::uint64_t rows = grid_.arrayRows();
    const std::uint64_t cols = grid_.arrayCols();
    const std::int64_t dsr =
        (static_cast<std::int64_t>(rf)
         - static_cast<std::int64_t>(entry.rf))
        * static_cast<std::int64_t>(rows);
    const std::int64_t dsc =
        (static_cast<std::int64_t>(cf)
         - static_cast<std::int64_t>(entry.cf))
        * static_cast<std::int64_t>(cols);
    const std::int64_t n = static_cast<std::int64_t>(operands_.dims.n);
    ReplayDeltas d;
    switch (grid_.dataflow()) {
      case Dataflow::OutputStationary:
        // ifmap A[m, t], filter B[t, n], ofmap O[m, n].
        d.ifmap = ifmapShiftM(operands_, entry.rf * rows, rf * rows);
        d.filter = dsc;
        d.ofmap = dsr * n + dsc;
        break;
      case Dataflow::WeightStationary:
        // ifmap A[t, k] (gathered k repeats across column folds),
        // filter B[k, n] stationary, ofmap O[t, n].
        d.ifmap = gather_
            ? 0 : ifmapShiftK(operands_, entry.rf * rows, rf * rows);
        d.filter = dsr * n + dsc;
        d.ofmap = dsc;
        break;
      case Dataflow::InputStationary:
        // ifmap A[m, k] stationary, filter B[k, t], ofmap O[m, t].
        d.ifmap = ifmapShiftM(operands_, entry.cf * cols, cf * cols)
            + ifmapShiftK(operands_, entry.rf * rows, rf * rows);
        d.filter = dsr * n;
        d.ofmap = dsc * n;
        break;
    }
    return d;
}

void
DemandGenerator::runCached(DemandVisitor& visitor) const
{
    visitor.beginLayer(grid_, operands_);
    const Cycle fold_len = grid_.foldCycles();
    // Replay requires the candidate fold to have the canonical (first
    // fold's) tile shape; ragged edge folds fall back to live.
    const std::uint64_t ctr = grid_.tileRows(0);
    const std::uint64_t ctc = grid_.tileCols(0);
    const bool os = grid_.dataflow() == Dataflow::OutputStationary;
    FoldReplayCache cache;
    FoldReplayScratch scratch;
    Cycle fold_start = 0;
    for (std::uint64_t rf = 0; rf < grid_.rowFolds(); ++rf) {
        for (std::uint64_t cf = 0; cf < grid_.colFolds(); ++cf) {
            visitor.beginFold(rf, cf, fold_start);
            ++cacheStats_.foldsTotal;
            bool handled = false;
            std::uint64_t key = 0;
            if (grid_.tileRows(rf) == ctr && grid_.tileCols(cf) == ctc
                && replayKey(rf, cf, key)) {
                if (FoldCacheEntry* entry = cache.find(key)) {
                    const bool accumulate = !os && rf > 0;
                    entry->replay(visitor, fold_start,
                                  replayDeltas(*entry, rf, cf),
                                  accumulate, scratch);
                    ++cacheStats_.foldsReplayed;
                    cacheStats_.addrsReplayed +=
                        entry->addrCount(accumulate);
                    handled = true;
                } else {
                    FoldCacheEntry& fresh = cache.insert(key, rf, cf);
                    FoldCaptureVisitor capture(visitor, fresh);
                    runFold(capture, rf, cf, fold_start);
                    ++cacheStats_.foldsLive;
                    handled = true;
                }
            }
            if (!handled) {
                runFold(visitor, rf, cf, fold_start);
                ++cacheStats_.foldsLive;
            }
            fold_start += fold_len;
            visitor.endFold(rf, cf, fold_start);
        }
    }
    SIM_CHECK_EQ(cacheStats_.foldsReplayed + cacheStats_.foldsLive,
                 cacheStats_.foldsTotal,
                 "every fold is either replayed or generated live");
    visitor.endLayer(fold_start);
}

void
DemandGenerator::runFoldOs(DemandVisitor& visitor, std::uint64_t rf,
                           std::uint64_t cf, Cycle fold_start) const
{
    const std::uint64_t tr = grid_.tileRows(rf);
    const std::uint64_t tc = grid_.tileCols(cf);
    const std::uint64_t rbase = rf * grid_.arrayRows();
    const std::uint64_t cbase = cf * grid_.arrayCols();
    const std::uint64_t t_extent = grid_.mapped().t; // == K
    const std::uint32_t rows = grid_.arrayRows();
    const Cycle fold_len = grid_.foldCycles();

    std::vector<Addr> ifmap, filter, writes;
    ifmap.reserve(tr);
    filter.reserve(tc);
    writes.reserve(std::min(tr, tc));

    for (Cycle clk = 0; clk < fold_len; ++clk) {
        ifmap.clear();
        filter.clear();
        writes.clear();
        // Skewed A stream: row r consumes A[rbase+r][clk - r].
        for (std::uint64_t r = 0; r < tr && r <= clk; ++r) {
            const std::uint64_t t = clk - r;
            if (t < t_extent)
                ifmap.push_back(operands_.ifmapAddr(rbase + r, t));
        }
        // Skewed B stream: column c consumes B[clk - c][cbase+c].
        for (std::uint64_t c = 0; c < tc && c <= clk; ++c) {
            const std::uint64_t t = clk - c;
            if (t < t_extent)
                filter.push_back(operands_.filterAddr(t, cbase + c));
        }
        // Diagonal drain after fill + stream: diagonal d = r + c leaves
        // at cycle (R + T - 1) + d.
        if (clk + 1 >= rows + t_extent) {
            const std::uint64_t d = clk - (rows + t_extent - 1);
            if (d <= tr + tc - 2) {
                const std::uint64_t r_lo = d >= tc ? d - (tc - 1) : 0;
                const std::uint64_t r_hi = std::min<std::uint64_t>(
                    tr - 1, d);
                for (std::uint64_t r = r_lo; r <= r_hi; ++r) {
                    writes.push_back(operands_.ofmapAddr(
                        rbase + r, cbase + (d - r)));
                }
            }
        }
        visitor.cycle(fold_start + clk, ifmap, filter, {}, writes);
    }
}

void
DemandGenerator::runFoldWs(DemandVisitor& visitor, std::uint64_t rf,
                           std::uint64_t cf, Cycle fold_start) const
{
    const std::uint64_t tr = grid_.tileRows(rf); // K-range (compressed)
    const std::uint64_t tc = grid_.tileCols(cf); // N-range
    const std::uint64_t kbase = rf * grid_.arrayRows();
    const std::uint64_t cbase = cf * grid_.arrayCols();
    const std::uint64_t t_extent = grid_.mapped().t; // == M
    const std::uint32_t rows = grid_.arrayRows();
    const Cycle fold_len = grid_.foldCycles();
    const bool accumulate = rf > 0;

    std::vector<Addr> ifmap, filter, oreads, writes;
    ifmap.reserve(tr);
    filter.reserve(tc);
    writes.reserve(tc);
    oreads.reserve(tc);

    for (Cycle clk = 0; clk < fold_len; ++clk) {
        ifmap.clear();
        filter.clear();
        oreads.clear();
        writes.clear();
        if (clk < rows) {
            // Weight preload, bottom row first so the tile settles as
            // values shift down the array.
            if (clk < tr) {
                const std::uint64_t k = kbase + (tr - 1 - clk);
                for (std::uint64_t c = 0; c < tc; ++c)
                    filter.push_back(operands_.filterAddr(k, cbase + c));
            }
        }
        // Skewed ifmap stream: row r consumes A[t][k(r)] at
        // clk = R + t + r; sparse runs gather the original K row.
        if (clk >= rows) {
            const Cycle s = clk - rows;
            for (std::uint64_t r = 0; r < tr && r <= s; ++r) {
                const std::uint64_t t = s - r;
                if (t < t_extent) {
                    const std::uint64_t k = gather_
                        ? gather_->origK(kbase + r) : kbase + r;
                    ifmap.push_back(operands_.ifmapAddr(t, k));
                }
            }
        }
        // Output drain: O[t][cbase+c] leaves column c at
        // clk = 2R - 1 + t + c.
        if (clk + 1 >= 2ull * rows) {
            const Cycle s = clk - (2ull * rows - 1);
            for (std::uint64_t c = 0; c < tc && c <= s; ++c) {
                const std::uint64_t t = s - c;
                if (t < t_extent) {
                    const Addr addr = operands_.ofmapAddr(t, cbase + c);
                    writes.push_back(addr);
                    if (accumulate)
                        oreads.push_back(addr);
                }
            }
        }
        visitor.cycle(fold_start + clk, ifmap, filter, oreads, writes);
    }
}

void
DemandGenerator::runFoldIs(DemandVisitor& visitor, std::uint64_t rf,
                           std::uint64_t cf, Cycle fold_start) const
{
    const std::uint64_t tr = grid_.tileRows(rf); // K-range
    const std::uint64_t tc = grid_.tileCols(cf); // M-range
    const std::uint64_t kbase = rf * grid_.arrayRows();
    const std::uint64_t mbase = cf * grid_.arrayCols();
    const std::uint64_t t_extent = grid_.mapped().t; // == N
    const std::uint32_t rows = grid_.arrayRows();
    const Cycle fold_len = grid_.foldCycles();
    const bool accumulate = rf > 0;

    std::vector<Addr> ifmap, filter, oreads, writes;
    ifmap.reserve(tc);
    filter.reserve(tr);
    writes.reserve(tc);
    oreads.reserve(tc);

    for (Cycle clk = 0; clk < fold_len; ++clk) {
        ifmap.clear();
        filter.clear();
        oreads.clear();
        writes.clear();
        if (clk < rows && clk < tr) {
            // Ifmap preload: stationary tile element (k, m) = A[m][k].
            const std::uint64_t k = kbase + (tr - 1 - clk);
            for (std::uint64_t c = 0; c < tc; ++c)
                ifmap.push_back(operands_.ifmapAddr(mbase + c, k));
        }
        if (clk >= rows) {
            // Skewed filter stream: row r consumes B[k(r)][t].
            const Cycle s = clk - rows;
            for (std::uint64_t r = 0; r < tr && r <= s; ++r) {
                const std::uint64_t t = s - r;
                if (t < t_extent)
                    filter.push_back(operands_.filterAddr(kbase + r, t));
            }
        }
        if (clk + 1 >= 2ull * rows) {
            // Output drain: O[mbase+c][t] at clk = 2R - 1 + t + c.
            const Cycle s = clk - (2ull * rows - 1);
            for (std::uint64_t c = 0; c < tc && c <= s; ++c) {
                const std::uint64_t t = s - c;
                if (t < t_extent) {
                    const Addr addr = operands_.ofmapAddr(mbase + c, t);
                    writes.push_back(addr);
                    if (accumulate)
                        oreads.push_back(addr);
                }
            }
        }
        visitor.cycle(fold_start + clk, ifmap, filter, oreads, writes);
    }
}

void
CountingVisitor::cycle(Cycle clk, std::span<const Addr> ifmap_reads,
                       std::span<const Addr> filter_reads,
                       std::span<const Addr> ofmap_reads,
                       std::span<const Addr> ofmap_writes)
{
    ifmapReads += ifmap_reads.size();
    filterReads += filter_reads.size();
    ofmapReads += ofmap_reads.size();
    ofmapWrites += ofmap_writes.size();
    lastCycle = clk;
    if (!ifmap_reads.empty() || !filter_reads.empty()
        || !ofmap_reads.empty() || !ofmap_writes.empty()) {
        ++activeCycles;
    }
}

} // namespace scalesim::systolic
