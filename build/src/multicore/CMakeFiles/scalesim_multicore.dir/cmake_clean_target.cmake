file(REMOVE_RECURSE
  "libscalesim_multicore.a"
)
