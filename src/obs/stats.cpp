#include "obs/stats.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>

#include "check/contract.hpp"
#include "common/log.hpp"
#include "common/serialize.hpp"
#include "obs/json.hpp"

namespace scalesim::obs
{

void
Histogram::sample(double value)
{
    // The bucket layout only covers [0, inf); a negative sample is a
    // caller bug (cycle counts and latencies cannot go backwards).
    SIM_CHECK_LE(0.0, value, "negative histogram sample");
    if (value < 0.0)
        value = 0.0;
    if (count == 0) {
        minSample = maxSample = value;
    } else {
        minSample = std::min(minSample, value);
        maxSample = std::max(maxSample, value);
    }
    ++count;
    sum += value;
    sumSq += value * value;
    unsigned bucket = 0;
    if (value >= 1.0) {
        const double log2v = std::log2(value);
        bucket = 1 + static_cast<unsigned>(log2v);
        if (bucket >= kBuckets)
            bucket = kBuckets - 1;
    }
    ++buckets[bucket];
}

void
Histogram::merge(const Histogram& other)
{
    if (other.count == 0)
        return;
    if (count == 0) {
        minSample = other.minSample;
        maxSample = other.maxSample;
    } else {
        minSample = std::min(minSample, other.minSample);
        maxSample = std::max(maxSample, other.maxSample);
    }
    count += other.count;
    sum += other.sum;
    sumSq += other.sumSq;
    for (unsigned i = 0; i < kBuckets; ++i)
        buckets[i] += other.buckets[i];
}

double
Histogram::stdev() const
{
    if (count < 2)
        return 0.0;
    const double n = static_cast<double>(count);
    const double var = (sumSq - sum * sum / n) / (n - 1.0);
    return var > 0.0 ? std::sqrt(var) : 0.0;
}

std::pair<double, double>
Histogram::bucketRange(unsigned i)
{
    if (i == 0)
        return {0.0, 1.0};
    return {std::ldexp(1.0, static_cast<int>(i) - 1),
            std::ldexp(1.0, static_cast<int>(i))};
}

double
Histogram::quantile(double q) const
{
    if (count == 0)
        return 0.0;
    if (q <= 0.0)
        return minSample;
    if (q >= 1.0)
        return maxSample;
    // Rank of the requested quantile within the cumulative counts.
    const double target = q * static_cast<double>(count);
    double cum = 0.0;
    for (unsigned i = 0; i < kBuckets; ++i) {
        if (buckets[i] == 0)
            continue;
        const double in_bucket = static_cast<double>(buckets[i]);
        if (cum + in_bucket >= target) {
            auto [lo, hi] = bucketRange(i);
            // The observed envelope is tighter than the power-of-two
            // bucket bounds (the overflow bucket has no upper bound at
            // all), so clamp before interpolating.
            lo = std::max(lo, minSample);
            hi = std::min(hi, maxSample);
            if (hi <= lo)
                return lo;
            const double frac = (target - cum) / in_bucket;
            return lo + frac * (hi - lo);
        }
        cum += in_bucket;
    }
    return maxSample;
}

void
StatsRegistry::addScalar(std::string_view name, std::string_view desc,
                         double value)
{
    auto it = stats_.find(name);
    if (it == stats_.end()) {
        stats_.emplace(std::string(name),
                       Entry{std::string(desc), value});
        return;
    }
    if (auto* scalar = std::get_if<double>(&it->second.data)) {
        *scalar += value;
    } else {
        panic("stat '%s' re-registered with a different type",
              std::string(name).c_str());
    }
}

void
StatsRegistry::addVectorElem(std::string_view name,
                             std::string_view elem,
                             std::string_view desc, double value)
{
    auto it = stats_.find(name);
    if (it == stats_.end()) {
        VectorData vec;
        vec.elems.emplace_back(std::string(elem), value);
        it = stats_.emplace(std::string(name),
                            Entry{std::string(desc), std::move(vec)})
                 .first;
        return;
    }
    auto* vec = std::get_if<VectorData>(&it->second.data);
    if (!vec) {
        panic("stat '%s' re-registered with a different type",
              std::string(name).c_str());
    }
    for (auto& [e, v] : vec->elems) {
        if (e == elem) {
            v += value;
            return;
        }
    }
    vec->elems.emplace_back(std::string(elem), value);
}

void
StatsRegistry::addDistribution(std::string_view name,
                               std::string_view desc,
                               const Histogram& data)
{
    auto it = stats_.find(name);
    if (it == stats_.end()) {
        stats_.emplace(std::string(name),
                       Entry{std::string(desc), data});
        return;
    }
    auto* hist = std::get_if<Histogram>(&it->second.data);
    if (!hist) {
        panic("stat '%s' re-registered with a different type",
              std::string(name).c_str());
    }
    hist->merge(data);
}

void
StatsRegistry::addFormula(std::string_view name, std::string_view desc,
                          FormulaSpec spec)
{
    if (stats_.find(name) != stats_.end())
        return; // formulas are idempotent; first definition wins
    stats_.emplace(std::string(name),
                   Entry{std::string(desc), std::move(spec)});
}

double
StatsRegistry::scalarValue(std::string_view name) const
{
    auto it = stats_.find(name);
    if (it == stats_.end())
        return 0.0;
    if (const auto* scalar = std::get_if<double>(&it->second.data))
        return *scalar;
    return 0.0;
}

double
StatsRegistry::evaluate(std::string_view name) const
{
    auto it = stats_.find(name);
    if (it == stats_.end())
        return 0.0;
    const auto& data = it->second.data;
    if (const auto* scalar = std::get_if<double>(&data))
        return *scalar;
    if (const auto* vec = std::get_if<VectorData>(&data)) {
        double total = 0.0;
        for (const auto& [e, v] : vec->elems)
            total += v;
        return total;
    }
    if (const auto* hist = std::get_if<Histogram>(&data))
        return static_cast<double>(hist->count);
    return evaluateFormula(std::get<FormulaSpec>(data));
}

double
StatsRegistry::evaluateFormula(const FormulaSpec& spec) const
{
    double numer = 0.0;
    for (const auto& [name, coeff] : spec.numerator)
        numer += coeff * evaluate(name);
    double denom = 1.0;
    if (!spec.denominator.empty()) {
        denom = 0.0;
        for (const auto& [name, coeff] : spec.denominator)
            denom += coeff * evaluate(name);
    }
    if (denom == 0.0)
        return 0.0;
    const double value = spec.scale * numer / denom;
    return std::isfinite(value) ? value : 0.0;
}

bool
StatsRegistry::has(std::string_view name) const
{
    return stats_.find(name) != stats_.end();
}

void
StatsRegistry::merge(const StatsRegistry& other)
{
    for (const auto& [name, entry] : other.stats_) {
        if (const auto* scalar = std::get_if<double>(&entry.data)) {
            addScalar(name, entry.desc, *scalar);
        } else if (const auto* vec =
                       std::get_if<VectorData>(&entry.data)) {
            for (const auto& [elem, value] : vec->elems)
                addVectorElem(name, elem, entry.desc, value);
        } else if (const auto* hist =
                       std::get_if<Histogram>(&entry.data)) {
            addDistribution(name, entry.desc, *hist);
        } else {
            addFormula(name, entry.desc,
                       std::get<FormulaSpec>(entry.data));
        }
    }
}

namespace
{

/** gem5 prints integral values without a fraction. */
std::string
fmtStatValue(double value)
{
    if (std::floor(value) == value && std::abs(value) < 1e15)
        return format("%.0f", value);
    return format("%.6f", value);
}

void
statLine(std::ostream& out, const std::string& name, double value,
         const std::string& desc)
{
    out << format("%-44s %18s  # %s\n", name.c_str(),
                  fmtStatValue(value).c_str(), desc.c_str());
}

} // namespace

void
StatsRegistry::dump(std::ostream& out) const
{
    out << "---------- Begin Simulation Statistics ----------\n";
    for (const auto& [name, entry] : stats_) {
        const auto& data = entry.data;
        if (const auto* scalar = std::get_if<double>(&data)) {
            statLine(out, name, *scalar, entry.desc);
        } else if (const auto* vec = std::get_if<VectorData>(&data)) {
            double total = 0.0;
            for (const auto& [elem, value] : vec->elems) {
                statLine(out, name + "::" + elem, value, entry.desc);
                total += value;
            }
            statLine(out, name + "::total", total, entry.desc);
        } else if (const auto* hist = std::get_if<Histogram>(&data)) {
            statLine(out, name + "::samples",
                     static_cast<double>(hist->count), entry.desc);
            statLine(out, name + "::mean", hist->mean(), entry.desc);
            statLine(out, name + "::stdev", hist->stdev(), entry.desc);
            statLine(out, name + "::min", hist->minSample, entry.desc);
            statLine(out, name + "::max", hist->maxSample, entry.desc);
            statLine(out, name + "::p50", hist->quantile(0.50),
                     entry.desc);
            statLine(out, name + "::p90", hist->quantile(0.90),
                     entry.desc);
            statLine(out, name + "::p99", hist->quantile(0.99),
                     entry.desc);
            for (unsigned i = 0; i < Histogram::kBuckets; ++i) {
                if (hist->buckets[i] == 0)
                    continue;
                const auto [lo, hi] = Histogram::bucketRange(i);
                statLine(out,
                         name + format("::%.0f-%.0f", lo, hi - 1),
                         static_cast<double>(hist->buckets[i]),
                         entry.desc);
            }
        } else {
            statLine(out,
                     name,
                     evaluateFormula(std::get<FormulaSpec>(data)),
                     entry.desc);
        }
    }
    out << "---------- End Simulation Statistics   ----------\n";
}

std::vector<std::pair<std::string, double>>
StatsRegistry::flatten() const
{
    std::vector<std::pair<std::string, double>> out;
    out.reserve(stats_.size());
    for (const auto& [name, entry] : stats_) {
        const auto& data = entry.data;
        if (const auto* scalar = std::get_if<double>(&data)) {
            out.emplace_back(name, *scalar);
        } else if (const auto* vec = std::get_if<VectorData>(&data)) {
            for (const auto& [elem, value] : vec->elems)
                out.emplace_back(name + "::" + elem, value);
        } else if (const auto* hist = std::get_if<Histogram>(&data)) {
            out.emplace_back(name + "::samples",
                             static_cast<double>(hist->count));
            out.emplace_back(name + "::sum", hist->sum);
        }
        // Formulas are derived ratios: deltas of them are meaningless.
    }
    // stats_ is name-sorted but vector elements follow registration
    // order; sort the flat view so snapshots align positionally.
    std::sort(out.begin(), out.end());
    return out;
}

namespace
{

// Variant tags of Entry::data in the binary encoding.
constexpr std::uint8_t kTagScalar = 0;
constexpr std::uint8_t kTagVector = 1;
constexpr std::uint8_t kTagHistogram = 2;
constexpr std::uint8_t kTagFormula = 3;

void
serializeTerms(
    ByteWriter& out,
    const std::vector<std::pair<std::string, double>>& terms)
{
    out.put(static_cast<std::uint64_t>(terms.size()));
    for (const auto& [name, coeff] : terms) {
        out.putString(name);
        out.put(coeff);
    }
}

bool
deserializeTerms(ByteReader& in,
                 std::vector<std::pair<std::string, double>>& terms)
{
    const std::uint64_t n = in.get<std::uint64_t>();
    if (!in.ok() || n > in.remaining())
        return false; // each term needs >= 1 byte; reject absurd sizes
    terms.clear();
    terms.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n && in.ok(); ++i) {
        std::string name = in.getString();
        const double coeff = in.get<double>();
        terms.emplace_back(std::move(name), coeff);
    }
    return in.ok();
}

void
serializeHistogram(ByteWriter& out, const Histogram& hist)
{
    for (unsigned i = 0; i < Histogram::kBuckets; ++i)
        out.put(hist.buckets[i]);
    out.put(hist.count);
    out.put(hist.sum);
    out.put(hist.sumSq);
    out.put(hist.minSample);
    out.put(hist.maxSample);
}

bool
deserializeHistogram(ByteReader& in, Histogram& hist)
{
    for (unsigned i = 0; i < Histogram::kBuckets; ++i)
        hist.buckets[i] = in.get<std::uint64_t>();
    hist.count = in.get<std::uint64_t>();
    hist.sum = in.get<double>();
    hist.sumSq = in.get<double>();
    hist.minSample = in.get<double>();
    hist.maxSample = in.get<double>();
    return in.ok();
}

} // namespace

void
StatsRegistry::serialize(ByteWriter& out) const
{
    out.put(static_cast<std::uint64_t>(stats_.size()));
    for (const auto& [name, entry] : stats_) {
        out.putString(name);
        out.putString(entry.desc);
        const auto& data = entry.data;
        if (const auto* scalar = std::get_if<double>(&data)) {
            out.put(kTagScalar);
            out.put(*scalar);
        } else if (const auto* vec = std::get_if<VectorData>(&data)) {
            out.put(kTagVector);
            serializeTerms(out, vec->elems);
        } else if (const auto* hist = std::get_if<Histogram>(&data)) {
            out.put(kTagHistogram);
            serializeHistogram(out, *hist);
        } else {
            const auto& spec = std::get<FormulaSpec>(data);
            out.put(kTagFormula);
            serializeTerms(out, spec.numerator);
            serializeTerms(out, spec.denominator);
            out.put(spec.scale);
        }
    }
}

bool
StatsRegistry::deserialize(ByteReader& in)
{
    stats_.clear();
    const std::uint64_t n = in.get<std::uint64_t>();
    if (!in.ok() || n > in.remaining()) {
        stats_.clear();
        return false;
    }
    for (std::uint64_t i = 0; i < n; ++i) {
        std::string name = in.getString();
        std::string desc = in.getString();
        const std::uint8_t tag = in.get<std::uint8_t>();
        if (!in.ok())
            break;
        Entry entry;
        entry.desc = std::move(desc);
        switch (tag) {
          case kTagScalar:
            entry.data = in.get<double>();
            break;
          case kTagVector: {
            VectorData vec;
            if (!deserializeTerms(in, vec.elems)) {
                stats_.clear();
                return false;
            }
            entry.data = std::move(vec);
            break;
          }
          case kTagHistogram: {
            Histogram hist;
            if (!deserializeHistogram(in, hist)) {
                stats_.clear();
                return false;
            }
            entry.data = hist;
            break;
          }
          case kTagFormula: {
            FormulaSpec spec;
            if (!deserializeTerms(in, spec.numerator)
                || !deserializeTerms(in, spec.denominator)) {
                stats_.clear();
                return false;
            }
            spec.scale = in.get<double>();
            entry.data = std::move(spec);
            break;
          }
          default:
            stats_.clear();
            return false;
        }
        if (!in.ok()) {
            stats_.clear();
            return false;
        }
        stats_.emplace(std::move(name), std::move(entry));
    }
    if (!in.ok()) {
        stats_.clear();
        return false;
    }
    return true;
}

void
StatsRegistry::dumpJson(std::ostream& out) const
{
    JsonWriter json(out);
    json.beginObject();
    for (const auto& [name, entry] : stats_) {
        json.key(name).beginObject();
        const auto& data = entry.data;
        if (const auto* scalar = std::get_if<double>(&data)) {
            json.field("kind", "scalar");
            json.field("value", *scalar);
        } else if (const auto* vec = std::get_if<VectorData>(&data)) {
            json.field("kind", "vector");
            double total = 0.0;
            json.key("values").beginObject();
            for (const auto& [elem, value] : vec->elems) {
                json.field(elem, value);
                total += value;
            }
            json.endObject();
            json.field("total", total);
        } else if (const auto* hist = std::get_if<Histogram>(&data)) {
            json.field("kind", "distribution");
            json.field("samples", hist->count);
            json.field("mean", hist->mean());
            json.field("stdev", hist->stdev());
            json.field("min", hist->minSample);
            json.field("max", hist->maxSample);
            json.field("p50", hist->quantile(0.50));
            json.field("p90", hist->quantile(0.90));
            json.field("p99", hist->quantile(0.99));
            json.key("buckets").beginArray();
            for (unsigned i = 0; i < Histogram::kBuckets; ++i) {
                if (hist->buckets[i] == 0)
                    continue;
                const auto [lo, hi] = Histogram::bucketRange(i);
                json.beginObject();
                json.field("lo", lo);
                json.field("hi", hi);
                json.field("count", hist->buckets[i]);
                json.endObject();
            }
            json.endArray();
        } else {
            json.field("kind", "formula");
            json.field("value",
                       evaluateFormula(std::get<FormulaSpec>(data)));
        }
        json.field("desc", entry.desc);
        json.endObject();
    }
    json.endObject();
    out << '\n';
}

} // namespace scalesim::obs
