file(REMOVE_RECURSE
  "CMakeFiles/ablation_prefetch_depth.dir/ablation_prefetch_depth.cpp.o"
  "CMakeFiles/ablation_prefetch_depth.dir/ablation_prefetch_depth.cpp.o.d"
  "ablation_prefetch_depth"
  "ablation_prefetch_depth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_prefetch_depth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
