/**
 * @file
 * Reproduces Table IV: simulation-time overhead of each v3 feature
 * relative to the v2-equivalent baseline on a TPU-v2-like
 * configuration, for AlexNet, ResNet-18, ViT-L and ViT-S.
 *
 * Baseline = trace-driven demand generation + scratchpad/bandwidth
 * timing (what SCALE-Sim v2 does). Features measured: multi-core
 * partition exploration, 2:4 and 1:4 sparsity, energy (Accelergy
 * substitute), detailed DRAM (Ramulator substitute), and layout.
 * Expected shape: sparsity < 1x (compressed runs are faster),
 * DRAM/multi-core/energy >= ~1x, layout the largest.
 */

#include "bench_util.hpp"
#include "common/log.hpp"
#include "common/workloads.hpp"
#include "core/simulator.hpp"
#include "multicore/system.hpp"
#include "systolic/demand.hpp"

using namespace scalesim;

namespace
{

SimConfig
tpuConfig()
{
    SimConfig cfg = SimConfig::tpuV2Like();
    cfg.mode = SimMode::Trace;
    return cfg;
}

/** v2-equivalent baseline: demand generation + timing, no features. */
double
baselineSeconds(const Topology& topo)
{
    benchutil::Timer timer;
    const SimConfig cfg = tpuConfig();
    core::Simulator sim(cfg);
    // The plain simulator skips the demand pass without consumers;
    // drive it explicitly to mirror v2's trace generation.
    for (const auto& layer : topo.layers) {
        const GemmDims gemm = layer.toGemm();
        const systolic::OperandMap operands(gemm, cfg.memory);
        systolic::DemandGenerator gen(gemm, cfg.dataflow, cfg.arrayRows,
                                      cfg.arrayCols, operands);
        systolic::CountingVisitor counter;
        gen.run(counter);
    }
    core::Simulator timing_sim(cfg);
    timing_sim.run(topo);
    return timer.seconds();
}

double
featureSeconds(const Topology& topo, const char* feature)
{
    benchutil::Timer timer;
    const std::string what(feature);
    if (what == "multicore") {
        multicore::TensorCoreConfig core;
        core.arrayRows = core.arrayCols = 32;
        for (auto scheme : {multicore::PartitionScheme::Spatial,
                            multicore::PartitionScheme::SpatioTemporal1,
                            multicore::PartitionScheme::SpatioTemporal2
                           }) {
            auto cfg = multicore::MultiCoreConfig::homogeneous(
                core, 4, 4, scheme);
            multicore::MultiCoreSimulator sim(cfg);
            for (const auto& layer : topo.layers) {
                const GemmDims gemm = layer.toGemm();
                multicore::enumeratePartitions(gemm,
                                               Dataflow::
                                                   WeightStationary,
                                               32, 32, 16, scheme);
                sim.runGemm(gemm, Dataflow::WeightStationary);
            }
        }
        // Plus the baseline timing pass the run still performs.
        core::Simulator sim(tpuConfig());
        sim.run(topo);
        return timer.seconds();
    }
    SimConfig cfg = tpuConfig();
    if (what == "sparse24" || what == "sparse14") {
        cfg.sparsity.enabled = true;
        Topology annotated = workloads::withUniformSparsity(
            topo, what == "sparse24" ? 2 : 1, 4);
        core::Simulator sim(cfg);
        for (const auto& layer : annotated.layers) {
            sparse::SparseLayerModel model(layer, cfg.sparsity);
            const GemmDims gemm = model.effectiveGemm();
            const systolic::OperandMap operands(layer.toGemm(),
                                                cfg.memory);
            systolic::DemandGenerator gen(
                layer.toGemm(), cfg.dataflow, cfg.arrayRows,
                cfg.arrayCols, operands,
                model.active() ? &model.pattern() : nullptr);
            systolic::CountingVisitor counter;
            gen.run(counter);
            (void)gemm;
        }
        sim.run(annotated);
        return timer.seconds();
    }
    if (what == "energy") {
        cfg.energy.enabled = true;
    } else if (what == "dram") {
        cfg.dram.enabled = true;
        // DRAM runs atop the baseline's demand generation.
        for (const auto& layer : topo.layers) {
            const GemmDims gemm = layer.toGemm();
            const systolic::OperandMap operands(gemm, cfg.memory);
            systolic::DemandGenerator gen(gemm, cfg.dataflow,
                                          cfg.arrayRows, cfg.arrayCols,
                                          operands);
            systolic::CountingVisitor counter;
            gen.run(counter);
        }
    } else if (what == "layout") {
        cfg.layout.enabled = true;
        cfg.layout.banks = 32;
        cfg.layout.onChipBandwidth = 256;
    }
    core::Simulator sim(cfg);
    sim.run(topo);
    return timer.seconds();
}

} // namespace

int
main()
{
    setQuiet(true);
    std::printf("=== Table IV: simulation-time overhead vs v2-style "
                "baseline (TPU-v2-like config) ===\n");
    const char* workload_names[] = {"alexnet", "resnet18", "vit_large",
                                    "vit_small"};
    const char* features[] = {"multicore", "sparse24", "sparse14",
                              "energy", "dram", "layout"};
    const char* feature_labels[] = {"Multi-core", "Sparsity 2:4",
                                    "Sparsity 1:4", "Accelergy",
                                    "Ramulator", "Layout"};

    benchutil::Table table({10, 11, 13, 13, 11, 11, 8});
    table.row({"Workload", "Multi-core", "Sparse 2:4", "Sparse 1:4",
               "Energy", "DRAM", "Layout"});
    table.rule();
    double mean[6] = {};
    for (const char* name : workload_names) {
        const Topology topo = workloads::byName(name);
        const double base = baselineSeconds(topo);
        std::vector<std::string> row = {name};
        for (int f = 0; f < 6; ++f) {
            const double secs = featureSeconds(topo, features[f]);
            const double overhead = secs / std::max(base, 1e-9);
            mean[f] += overhead;
            row.push_back(benchutil::fmt("%.2fx", overhead));
        }
        table.row(row);
    }
    std::vector<std::string> mean_row = {"Mean"};
    for (int f = 0; f < 6; ++f)
        mean_row.push_back(benchutil::fmt("%.2fx", mean[f] / 4.0));
    table.rule();
    table.row(mean_row);
    std::printf("(paper means: multi-core 2.29x, 2:4 0.42x, 1:4 "
                "0.29x, Accelergy 1.19x, Ramulator 2.13x, Layout "
                "16.03x; %s)\n",
                "shape target: sparsity < 1x, layout largest");
    (void)feature_labels;
    return 0;
}
