/**
 * @file
 * Unit tests for the systolic compute substrate: fold geometry, the
 * analytical runtime formula, SRAM access-count closed forms, the
 * bandwidth memory, request queues, and the double-buffered scratchpad
 * timing model.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/csv.hpp"
#include "common/log.hpp"
#include "systolic/mapping.hpp"
#include "systolic/memory.hpp"
#include "systolic/scratchpad.hpp"
#include "systolic/trace_io.hpp"

using namespace scalesim;
using namespace scalesim::systolic;

namespace
{

OperandMap
makeOperands(const GemmDims& gemm)
{
    MemoryConfig mem;
    return OperandMap(gemm, mem);
}

} // namespace

TEST(FoldGrid, RuntimeFormulaMatchesPaper)
{
    // (2R + C + T - 2) * ceil(Sr/R) * ceil(Sc/C), Eq. 1 with Pr=Pc=1.
    const GemmDims gemm{100, 60, 40};
    const std::uint32_t r = 16;
    const std::uint32_t c = 8;
    {
        FoldGrid grid(gemm, Dataflow::OutputStationary, r, c);
        const Cycle expect = (2ull * r + c + gemm.k - 2)
            * ceilDiv(gemm.m, r) * ceilDiv(gemm.n, c);
        EXPECT_EQ(grid.totalCycles(), expect);
    }
    {
        FoldGrid grid(gemm, Dataflow::WeightStationary, r, c);
        const Cycle expect = (2ull * r + c + gemm.m - 2)
            * ceilDiv(gemm.k, r) * ceilDiv(gemm.n, c);
        EXPECT_EQ(grid.totalCycles(), expect);
    }
    {
        FoldGrid grid(gemm, Dataflow::InputStationary, r, c);
        const Cycle expect = (2ull * r + c + gemm.n - 2)
            * ceilDiv(gemm.k, r) * ceilDiv(gemm.m, c);
        EXPECT_EQ(grid.totalCycles(), expect);
    }
}

TEST(FoldGrid, EdgeFoldTiles)
{
    const GemmDims gemm{33, 17, 100};
    FoldGrid grid(gemm, Dataflow::OutputStationary, 16, 8);
    EXPECT_EQ(grid.rowFolds(), 3u);
    EXPECT_EQ(grid.colFolds(), 3u);
    EXPECT_EQ(grid.tileRows(0), 16u);
    EXPECT_EQ(grid.tileRows(2), 1u);
    EXPECT_EQ(grid.tileCols(2), 1u);
}

TEST(FoldGrid, UtilizationBounds)
{
    for (auto df : {Dataflow::OutputStationary,
                    Dataflow::WeightStationary,
                    Dataflow::InputStationary}) {
        FoldGrid grid({64, 64, 64}, df, 8, 8);
        EXPECT_GT(grid.utilization(), 0.0);
        EXPECT_LE(grid.utilization(), 1.0);
        EXPECT_GT(grid.mappingEfficiency(), 0.0);
        EXPECT_LE(grid.mappingEfficiency(), 1.0);
    }
}

TEST(FoldGrid, PerfectFitMappingEfficiencyIsOne)
{
    FoldGrid grid({32, 32, 77}, Dataflow::OutputStationary, 16, 16);
    EXPECT_DOUBLE_EQ(grid.mappingEfficiency(), 1.0);
}

TEST(FoldGrid, FoldTrafficConservation)
{
    // Summed over folds, stationary-operand traffic covers each element
    // exactly once.
    const GemmDims gemm{50, 30, 70};
    {
        FoldGrid grid(gemm, Dataflow::WeightStationary, 16, 8);
        std::uint64_t filter_words = 0;
        for (std::uint64_t rf = 0; rf < grid.rowFolds(); ++rf)
            for (std::uint64_t cf = 0; cf < grid.colFolds(); ++cf)
                filter_words += grid.foldTraffic(rf, cf).filterWords;
        EXPECT_EQ(filter_words, gemm.k * gemm.n);
    }
    {
        FoldGrid grid(gemm, Dataflow::InputStationary, 16, 8);
        std::uint64_t ifmap_words = 0;
        for (std::uint64_t rf = 0; rf < grid.rowFolds(); ++rf)
            for (std::uint64_t cf = 0; cf < grid.colFolds(); ++cf)
                ifmap_words += grid.foldTraffic(rf, cf).ifmapWords;
        EXPECT_EQ(ifmap_words, gemm.k * gemm.m);
    }
    {
        FoldGrid grid(gemm, Dataflow::OutputStationary, 16, 8);
        std::uint64_t ofmap_words = 0;
        for (std::uint64_t rf = 0; rf < grid.rowFolds(); ++rf)
            for (std::uint64_t cf = 0; cf < grid.colFolds(); ++cf)
                ofmap_words += grid.foldTraffic(rf, cf).ofmapWriteWords;
        EXPECT_EQ(ofmap_words, gemm.m * gemm.n);
    }
}

TEST(FoldGrid, SramAccessClosedForms)
{
    const GemmDims gemm{40, 24, 56};
    {
        FoldGrid grid(gemm, Dataflow::OutputStationary, 16, 8);
        const auto counts = grid.sramAccessCounts();
        EXPECT_EQ(counts.ifmapReads,
                  gemm.m * gemm.k * grid.colFolds());
        EXPECT_EQ(counts.filterReads,
                  gemm.n * gemm.k * grid.rowFolds());
        EXPECT_EQ(counts.ofmapWrites, gemm.m * gemm.n);
        EXPECT_EQ(counts.ofmapReads, 0u);
    }
    {
        FoldGrid grid(gemm, Dataflow::WeightStationary, 16, 8);
        const auto counts = grid.sramAccessCounts();
        EXPECT_EQ(counts.filterReads, gemm.k * gemm.n);
        EXPECT_EQ(counts.ifmapReads,
                  gemm.k * gemm.m * grid.colFolds());
        EXPECT_EQ(counts.ofmapWrites,
                  gemm.n * gemm.m * grid.rowFolds());
        EXPECT_EQ(counts.ofmapReads,
                  gemm.n * gemm.m * (grid.rowFolds() - 1));
    }
}

TEST(BandwidthMemory, SerializesOnTheBus)
{
    BandwidthMemory mem(2.0); // 2 words per cycle
    const Cycle first = mem.issueRead(0, 100, 0);
    EXPECT_EQ(first, 50u);
    // Second request can only start after the first drains.
    const Cycle second = mem.issueRead(1000, 100, 0);
    EXPECT_EQ(second, 100u);
    // A later-issued request starts at its own time when the bus idles.
    const Cycle third = mem.issueRead(2000, 10, 500);
    EXPECT_EQ(third, 505u);
    EXPECT_EQ(mem.stats().readRequests, 3u);
    EXPECT_EQ(mem.stats().readWords, 210u);
}

TEST(BandwidthMemory, BaseLatencyAdds)
{
    BandwidthMemory mem(1.0, 40);
    EXPECT_EQ(mem.issueRead(0, 10, 0), 50u);
    BandwidthMemory mem2(1.0);
    EXPECT_EQ(mem2.issueWrite(0, 10, 0), 10u);
}

TEST(BandwidthMemory, RejectsNonPositiveBandwidth)
{
    EXPECT_THROW(BandwidthMemory(0.0), FatalError);
}

TEST(RequestQueue, BlocksWhenFull)
{
    RequestQueue queue(2);
    EXPECT_EQ(queue.slotAvailable(0), 0u);
    queue.push(100);
    queue.push(200);
    // Full: next slot opens when the earliest entry retires.
    EXPECT_EQ(queue.slotAvailable(10), 100u);
    // After 100, one slot is free.
    EXPECT_EQ(queue.slotAvailable(150), 150u);
    EXPECT_EQ(queue.occupancy(), 1u);
}

TEST(RequestQueue, PollingDoesNotAccumulateStalls)
{
    // Regression: slotAvailable() used to charge fullStalls_ on every
    // poll, so repeated availability probes for one stalled request
    // multiplied the recorded stall cycles.
    RequestQueue queue(2);
    queue.push(100);
    queue.push(200);
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(queue.slotAvailable(10), 100u);
    EXPECT_EQ(queue.fullStallCycles(), 0u);
    // reserve() charges the delayed issue exactly once.
    EXPECT_EQ(queue.reserve(10), 100u);
    EXPECT_EQ(queue.fullStallCycles(), 90u);
    // Further polls after the reservation still add nothing.
    queue.slotAvailable(10);
    EXPECT_EQ(queue.fullStallCycles(), 90u);
    // A reserve with a free slot costs nothing.
    EXPECT_EQ(queue.reserve(260), 260u);
    EXPECT_EQ(queue.fullStallCycles(), 90u);
}

TEST(RequestQueue, DrainRetiresCompleted)
{
    RequestQueue queue(4);
    queue.push(10);
    queue.push(20);
    queue.push(30);
    queue.drain(25);
    EXPECT_EQ(queue.occupancy(), 1u);
}

TEST(Scratchpad, NoStallsWithAbundantBandwidth)
{
    const GemmDims gemm{64, 64, 64};
    BandwidthMemory mem(1e9);
    DoubleBufferedScratchpad spad(ScratchpadConfig{}, mem);
    FoldGrid grid(gemm, Dataflow::OutputStationary, 16, 16);
    const LayerTiming timing = spad.runLayer(grid, makeOperands(gemm));
    EXPECT_EQ(timing.computeCycles, grid.totalCycles());
    // Only the first fold's fill is exposed.
    EXPECT_LT(timing.stallCycles, grid.foldCycles());
}

TEST(Scratchpad, TinyBandwidthStalls)
{
    const GemmDims gemm{64, 64, 64};
    BandwidthMemory fast(100.0);
    BandwidthMemory slow(0.1);
    FoldGrid grid(gemm, Dataflow::OutputStationary, 16, 16);
    DoubleBufferedScratchpad spad_fast(ScratchpadConfig{}, fast);
    DoubleBufferedScratchpad spad_slow(ScratchpadConfig{}, slow);
    const auto t_fast = spad_fast.runLayer(grid, makeOperands(gemm));
    const auto t_slow = spad_slow.runLayer(grid, makeOperands(gemm));
    EXPECT_GT(t_slow.stallCycles, t_fast.stallCycles);
    EXPECT_GT(t_slow.totalCycles, t_fast.totalCycles);
    EXPECT_EQ(t_slow.computeCycles, t_fast.computeCycles);
}

TEST(Scratchpad, LargerSramReducesTraffic)
{
    // WS re-streams the ifmap for every column fold; a big enough
    // ifmap SRAM keeps it resident.
    const GemmDims gemm{256, 64, 128};
    BandwidthMemory mem_a(10.0), mem_b(10.0);
    ScratchpadConfig small;
    small.ifmapWords = 1024; // far below M*K
    ScratchpadConfig big;
    big.ifmapWords = 1024 * 1024;
    FoldGrid grid(gemm, Dataflow::WeightStationary, 16, 16);
    DoubleBufferedScratchpad spad_small(small, mem_a);
    DoubleBufferedScratchpad spad_big(big, mem_b);
    const auto t_small = spad_small.runLayer(grid, makeOperands(gemm));
    const auto t_big = spad_big.runLayer(grid, makeOperands(gemm));
    EXPECT_GT(t_small.dramReadWords, t_big.dramReadWords);
}

TEST(Scratchpad, ComputeScaleStretchesFolds)
{
    const GemmDims gemm{32, 32, 32};
    BandwidthMemory mem(1e9);
    DoubleBufferedScratchpad spad(ScratchpadConfig{}, mem);
    FoldGrid grid(gemm, Dataflow::OutputStationary, 16, 16);
    const auto base = spad.runLayer(grid, makeOperands(gemm), 0, 1.0);
    spad.reset();
    const auto scaled = spad.runLayer(grid, makeOperands(gemm), 0, 2.0);
    EXPECT_NEAR(static_cast<double>(scaled.computeCycles),
                2.0 * static_cast<double>(base.computeCycles),
                static_cast<double>(grid.numFolds()));
}

TEST(Scratchpad, QueueStallsShrinkWithBiggerQueues)
{
    const GemmDims gemm{256, 128, 256};
    BandwidthMemory mem_a(4.0, 200), mem_b(4.0, 200);
    ScratchpadConfig small_q;
    small_q.readQueueSize = 4;
    ScratchpadConfig big_q;
    big_q.readQueueSize = 512;
    FoldGrid grid(gemm, Dataflow::OutputStationary, 32, 32);
    DoubleBufferedScratchpad spad_a(small_q, mem_a);
    DoubleBufferedScratchpad spad_b(big_q, mem_b);
    const auto t_small = spad_a.runLayer(grid, makeOperands(gemm));
    const auto t_big = spad_b.runLayer(grid, makeOperands(gemm));
    EXPECT_GT(t_small.readQueueStalls, t_big.readQueueStalls);
    EXPECT_GE(t_small.totalCycles, t_big.totalCycles);
}

TEST(Scratchpad, WriteTrafficMatchesOutputs)
{
    const GemmDims gemm{64, 48, 32};
    BandwidthMemory mem(1e6);
    DoubleBufferedScratchpad spad(ScratchpadConfig{}, mem);
    FoldGrid grid(gemm, Dataflow::OutputStationary, 16, 16);
    const auto timing = spad.runLayer(grid, makeOperands(gemm));
    EXPECT_EQ(timing.dramWriteWords, gemm.m * gemm.n);
}

struct DataflowCase
{
    Dataflow df;
};

class ScratchpadAllDataflows
    : public ::testing::TestWithParam<Dataflow>
{
};

TEST_P(ScratchpadAllDataflows, TotalAtLeastCompute)
{
    const GemmDims gemm{120, 72, 96};
    BandwidthMemory mem(8.0);
    DoubleBufferedScratchpad spad(ScratchpadConfig{}, mem);
    FoldGrid grid(gemm, GetParam(), 16, 8);
    const auto timing = spad.runLayer(grid, makeOperands(gemm));
    EXPECT_GE(timing.totalCycles, timing.computeCycles);
    EXPECT_EQ(timing.totalCycles,
              timing.computeCycles + timing.stallCycles);
    EXPECT_GT(timing.dramReadWords, 0u);
    EXPECT_GT(timing.dramWriteWords, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllDataflows, ScratchpadAllDataflows,
    ::testing::Values(Dataflow::OutputStationary,
                      Dataflow::WeightStationary,
                      Dataflow::InputStationary),
    [](const auto& tpi) { return toString(tpi.param); });

TEST(Scratchpad, ConvFootprintBelowIm2col)
{
    // With im2col addressing the DRAM ifmap traffic of a stride-1
    // conv is bounded by the real tensor footprint per fetch, far
    // below the expanded M*K words.
    const LayerSpec layer = LayerSpec::conv("c", 28, 28, 3, 3, 32, 64,
                                            1);
    const GemmDims gemm = layer.toGemm();
    MemoryConfig mem;
    const OperandMap conv_ops = OperandMap::forLayer(layer, mem);
    const OperandMap gemm_ops(gemm, mem);

    BandwidthMemory mem_a(1e6), mem_b(1e6);
    ScratchpadConfig tiny;
    tiny.ifmapWords = 2048; // force streaming fetches
    FoldGrid grid(gemm, Dataflow::WeightStationary, 16, 16);
    DoubleBufferedScratchpad spad_conv(tiny, mem_a);
    DoubleBufferedScratchpad spad_gemm(tiny, mem_b);
    const auto conv_t = spad_conv.runLayer(grid, conv_ops);
    const auto gemm_t = spad_gemm.runLayer(grid, gemm_ops);
    EXPECT_LT(conv_t.dramReadWords, gemm_t.dramReadWords);
    // The conv fetch can never exceed the whole tensor per k-fold.
    EXPECT_LE(conv_t.dramReadWords,
              conv_ops.ifmapWords() * grid.rowFolds()
                  + gemm.k * gemm.n + gemm.m * gemm.n);
}

TEST(Scratchpad, ConvOneByOneMatchesGemmTraffic)
{
    const LayerSpec layer = LayerSpec::conv("c", 14, 14, 1, 1, 64, 32,
                                            1);
    const GemmDims gemm = layer.toGemm();
    MemoryConfig mem;
    const OperandMap conv_ops = OperandMap::forLayer(layer, mem);
    const OperandMap gemm_ops(gemm, mem);
    BandwidthMemory mem_a(1e6), mem_b(1e6);
    FoldGrid grid(gemm, Dataflow::OutputStationary, 16, 16);
    DoubleBufferedScratchpad spad_conv(ScratchpadConfig{}, mem_a);
    DoubleBufferedScratchpad spad_gemm(ScratchpadConfig{}, mem_b);
    const auto conv_t = spad_conv.runLayer(grid, conv_ops);
    const auto gemm_t = spad_gemm.runLayer(grid, gemm_ops);
    EXPECT_EQ(conv_t.dramReadWords, gemm_t.dramReadWords);
    EXPECT_EQ(conv_t.totalCycles, gemm_t.totalCycles);
}

TEST(TraceIo, SramTraceRowsMatchActiveCycles)
{
    const GemmDims gemm{24, 16, 20};
    std::ostringstream ifmap, filter, ofmap;
    DemandGenerator gen(gemm, Dataflow::OutputStationary, 8, 8,
                        makeOperands(gemm));
    SramTraceWriter writer(&ifmap, &filter, &ofmap);
    gen.run(writer);
    EXPECT_GT(writer.rowsWritten(), 0u);
    // Every line is "cycle, addr[, addr...]" with increasing cycles.
    std::istringstream in(ifmap.str());
    std::string line;
    Cycle prev = 0;
    std::size_t lines = 0;
    while (std::getline(in, line)) {
        const auto cells = splitCsvLine(line);
        ASSERT_GE(cells.size(), 2u);
        const Cycle clk = std::stoull(cells[0]);
        EXPECT_GE(clk, prev);
        prev = clk;
        ++lines;
    }
    EXPECT_GT(lines, 0u);
}

TEST(TraceIo, OfmapAccumulateReadsAreEmitted)
{
    // Regression: ofmap_reads (WS partial-sum fetches at rf > 0) were
    // silently dropped from the SRAM traces. K=20 on 8 array rows
    // gives 3 row folds, so folds rf=1,2 re-read their outputs.
    const GemmDims gemm{12, 10, 20};
    std::ostringstream ifmap, filter, ofmap, oread;
    DemandGenerator gen(gemm, Dataflow::WeightStationary, 8, 8,
                        makeOperands(gemm));
    SramTraceWriter writer(&ifmap, &filter, &ofmap, &oread);
    gen.run(writer);
    EXPECT_GT(writer.ofmapReadRows(), 0u);

    // Address count in the read stream matches the demand totals:
    // 2 of 3 row folds accumulate, M*N addresses each.
    std::istringstream in(oread.str());
    std::string line;
    std::size_t read_addrs = 0;
    while (std::getline(in, line))
        read_addrs += splitCsvLine(line).size() - 1;
    EXPECT_EQ(read_addrs, 2u * gemm.m * gemm.n);

    CountingVisitor counts;
    gen.run(counts);
    EXPECT_EQ(read_addrs, counts.ofmapReads);

    // A writer without the fourth stream still works (and counts no
    // read rows).
    std::ostringstream i2, f2, o2;
    SramTraceWriter three(&i2, &f2, &o2);
    gen.run(three);
    EXPECT_EQ(three.ofmapReadRows(), 0u);
    EXPECT_EQ(o2.str(), ofmap.str());
}

TEST(TraceIo, PatchFastPathMatchesPlainFormatting)
{
    // The writer's constant-delta patch path edits the previous row's
    // digit text in place. Walk it through every edge — digit-count
    // rollovers, long carry ripples, zero and oversized deltas,
    // negative (descending) deltas, row-length changes, fields longer
    // than the fixed-width copy — and demand byte-identity with plain
    // per-value formatting.
    std::ostringstream got;
    SramTraceWriter writer(&got, nullptr, nullptr);
    std::ostringstream want;
    Cycle clk = 0;
    auto row = [&](const std::vector<Addr>& addrs) {
        writer.cycle(clk, addrs, {}, {}, {});
        want << clk;
        for (const Addr a : addrs)
            want << ", " << a;
        want << '\n';
        ++clk;
    };
    auto run = [&](std::vector<Addr> addrs, std::int64_t delta,
                   int rows) {
        for (int i = 0; i < rows; ++i) {
            row(addrs);
            for (Addr& a : addrs)
                a += static_cast<Addr>(delta);
        }
    };
    run({100, 200, 300}, 1, 5);          // plain +1 patch run
    run({995, 1995, 9995}, 1, 10);       // 999->1000, 9999->10000
    run({999'999}, 1, 3);                // long carry ripple
    run({99'999'998, 123}, 1, 4);        // ripple in field 0 only
    run({500, 600}, 0, 3);               // zero delta (repeat rows)
    run({10, 20, 30}, 512, 6);           // multi-digit delta
    row({7, 8});                         // row length change: slow path
    run({5'000, 4'000}, -250, 8);        // descending: slow path each
    run({1'000}, 2'000'000'000, 3);      // above patch cap: slow path
    row({3, 1, 4, 1, 5});                // non-constant spacing
    row({4, 2, 5, 2, 6});                // +1 after irregular base
    // Fields longer than the fixed-width copy window (20 digits).
    run({10'000'000'000'000'000'000ull, 42}, 1, 5);
    writer.flush();
    EXPECT_EQ(got.str(), want.str());
    EXPECT_GT(writer.rowsWritten(), 0u);
}

TEST(TraceIo, PatchStateSurvivesBufferFlushes)
{
    // A staging-buffer flush invalidates the previous row's text, so a
    // long patched run must transparently re-prime and stay correct
    // across many flush boundaries (64 KiB each).
    std::ostringstream got;
    SramTraceWriter writer(&got, nullptr, nullptr);
    std::ostringstream want;
    std::vector<Addr> addrs = {1'000, 2'000, 3'000, 4'000};
    for (Cycle clk = 0; clk < 6'000; ++clk) {
        writer.cycle(clk, addrs, {}, {}, {});
        want << clk;
        for (const Addr a : addrs)
            want << ", " << a;
        want << '\n';
        for (Addr& a : addrs)
            a += 3;
    }
    writer.flush();
    EXPECT_EQ(got.str(), want.str());
}

TEST(TraceIo, TracingMemoryRecordsEverything)
{
    BandwidthMemory inner(8.0);
    TracingMemory tracer(inner, 2); // 2-byte words
    tracer.issueRead(100, 32, 5);
    tracer.issueWrite(200, 16, 9);
    ASSERT_EQ(tracer.records().size(), 2u);
    EXPECT_EQ(tracer.records()[0].byteAddr, 200u); // 100 * 2 bytes
    EXPECT_EQ(tracer.records()[0].bytes, 64u);
    EXPECT_FALSE(tracer.records()[0].write);
    EXPECT_TRUE(tracer.records()[1].write);
    EXPECT_EQ(tracer.stats().readWords, 32u);
    // The inner memory saw the traffic too.
    EXPECT_EQ(inner.stats().readWords, 32u);
}

TEST(TraceIo, MemTraceFileRoundTrip)
{
    std::vector<MemTraceRecord> records = {
        {0, 0, 64, false},
        {10, 4096, 64, true},
        {27, 123456, 128, false},
    };
    std::ostringstream out;
    writeMemTrace(out, records);
    std::istringstream in(out.str());
    const auto parsed = readMemTrace(in);
    EXPECT_EQ(parsed, records);
}

TEST(TraceIo, MalformedTraceIsFatal)
{
    std::istringstream bad("1, 2\n");
    EXPECT_THROW(readMemTrace(bad), FatalError);
    std::istringstream bad_type("1, 2, 3, X\n");
    EXPECT_THROW(readMemTrace(bad_type), FatalError);
}

TEST(TraceIo, ScratchpadTraceReplaysInDramSimulator)
{
    // End-to-end §V-B flow: record the scratchpad's memory trace, then
    // replay it through the trace-driven DRAM API.
    const GemmDims gemm{64, 32, 48};
    BandwidthMemory inner(16.0);
    TracingMemory tracer(inner, 1);
    DoubleBufferedScratchpad spad(ScratchpadConfig{}, tracer);
    FoldGrid grid(gemm, Dataflow::WeightStationary, 16, 16);
    spad.runLayer(grid, makeOperands(gemm));
    ASSERT_FALSE(tracer.records().empty());
    // Monotone non-decreasing request cycles (§V-B step 1 property).
    for (std::size_t i = 1; i < tracer.records().size(); ++i) {
        // Reads within a fold are monotone; writebacks may rewind to
        // the fold tail, so only check the global span is sane.
        EXPECT_LE(tracer.records()[i].cycle, 1u << 30);
    }
}

/** Scratchpad conservation sweep: dataflow x SRAM budget. */
class ScratchpadConservation
    : public ::testing::TestWithParam<
          std::tuple<Dataflow, std::uint64_t>>
{
};

TEST_P(ScratchpadConservation, WritesCoverOutputsOnce)
{
    // With partial sums kept on-chip (big ofmap SRAM), total DRAM
    // write traffic equals exactly M x N for every dataflow.
    const auto [df, sram_words] = GetParam();
    const GemmDims gemm{96, 48, 80};
    BandwidthMemory mem(1e6);
    ScratchpadConfig cfg;
    cfg.ifmapWords = sram_words;
    cfg.filterWords = sram_words;
    cfg.ofmapWords = 1 << 20; // partials never spill
    DoubleBufferedScratchpad spad(cfg, mem);
    FoldGrid grid(gemm, df, 16, 16);
    const auto timing = spad.runLayer(grid, makeOperands(gemm));
    EXPECT_EQ(timing.dramWriteWords, gemm.m * gemm.n);
    // Reads are bounded below by the unique operand footprints.
    EXPECT_GE(timing.dramReadWords, gemm.m * gemm.k);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ScratchpadConservation,
    ::testing::Combine(
        ::testing::Values(Dataflow::OutputStationary,
                          Dataflow::WeightStationary,
                          Dataflow::InputStationary),
        ::testing::Values(4096ull, 65536ull, 1048576ull)),
    [](const auto& tpi) {
        return toString(std::get<0>(tpi.param))
            + format("_s%llu",
                     static_cast<unsigned long long>(std::get<1>(tpi.param)));
    });

TEST(Scratchpad, HugeSramFetchesUniqueFootprintOnly)
{
    // When everything fits, total reads equal the unique operand
    // words (plus nothing else), independent of dataflow.
    const GemmDims gemm{60, 44, 52};
    for (auto df : {Dataflow::OutputStationary,
                    Dataflow::WeightStationary,
                    Dataflow::InputStationary}) {
        BandwidthMemory mem(1e6);
        ScratchpadConfig cfg;
        cfg.ifmapWords = 1 << 22;
        cfg.filterWords = 1 << 22;
        cfg.ofmapWords = 1 << 22;
        DoubleBufferedScratchpad spad(cfg, mem);
        FoldGrid grid(gemm, df, 16, 16);
        const auto timing = spad.runLayer(grid, makeOperands(gemm));
        EXPECT_EQ(timing.dramReadWords, gemm.m * gemm.k
                  + gemm.k * gemm.n) << toString(df);
    }
}

TEST(Scratchpad, PrefetchDepthZeroRejected)
{
    BandwidthMemory mem(1.0);
    ScratchpadConfig cfg;
    cfg.prefetchDepth = 0;
    EXPECT_THROW(DoubleBufferedScratchpad(cfg, mem), FatalError);
}
