/**
 * @file
 * Multi-channel DRAM system: address decoding across channels, the
 * coupled request API used by the scratchpad, a Ramulator-style
 * trace-driven API, and the MainMemory adapter that bridges core and
 * memory clock domains.
 */

#ifndef SCALESIM_DRAM_SYSTEM_HH
#define SCALESIM_DRAM_SYSTEM_HH

#include <memory>
#include <vector>

#include "common/config.hpp"
#include "dram/controller.hpp"
#include "systolic/memory.hpp"

namespace scalesim::dram
{

/** Physical address bit interleaving order (lowest bits first). */
enum class AddressMapping
{
    /** ch : col : rank : bank : row — bursts interleave channels. */
    RoBaRaCoCh,
    /** ch : bank : col : rank : row — banks interleave first. */
    RoRaCoBaCh,
    /** col : ch : bank : rank : row — rows stay channel-local. */
    RoRaBaChCo,
};

AddressMapping addressMappingFromString(std::string_view text);

/** Full memory-system configuration. */
struct DramSystemConfig
{
    DramTiming timing;
    std::uint32_t channels = 1;
    std::uint32_t ranks = 1;
    AddressMapping mapping = AddressMapping::RoBaRaCoCh;
    std::uint32_t reorderWindow = 32;
    std::uint32_t hitStreakCap = 16;
    PagePolicy pagePolicy = PagePolicy::Open;
    DramEngine engine = DramEngine::EventSkip;
};

/** One entry of an externally supplied demand trace (§V-B Step 1). */
struct TraceEntry
{
    Cycle arrival = 0; ///< memory clocks
    Addr byteAddr = 0;
    bool write = false;
};

/** Result of a trace-driven simulation (§V-B Step 2). */
struct TraceResult
{
    /** Round-trip latency of each entry, in memory clocks. */
    std::vector<Cycle> latency;
    DramStats stats;
    /** Last data completion, in memory clocks. */
    Cycle makespan = 0;

    /** Achieved read+write bandwidth in bytes per memory clock. */
    double bytesPerClock() const;
};

/** The multi-channel memory system. */
class DramSystem
{
  public:
    explicit DramSystem(const DramSystemConfig& cfg);

    const DramSystemConfig& config() const { return cfg_; }

    /** Decode a byte address; channel index returned separately. */
    DecodedAddr decode(Addr byte_addr, std::uint32_t& channel) const;

    /**
     * Coupled request: `bytes` are split into bursts on consecutive
     * addresses; returns the completion of the last burst, in memory
     * clocks.
     */
    Cycle request(Addr byte_addr, std::uint64_t bytes, bool write,
                  Cycle arrival);

    /** Ramulator-style batch simulation with FR-FCFS reordering. */
    TraceResult runTrace(const std::vector<TraceEntry>& trace);

    /** Earliest pending arrival across channels (Channel::kNoEvent
     *  when all queues are empty). */
    Cycle nextEventCycle() const;

    /** Statistics summed across channels. */
    DramStats totalStats() const;
    const DramStats& channelStats(std::uint32_t ch) const;
    std::uint32_t channels() const { return cfg_.channels; }

    /** Per-bank stats of one channel (rank-major). */
    const std::vector<BankStats>&
    channelBankStats(std::uint32_t ch) const;

    /**
     * Register aggregate stats under `prefix` (e.g. "dram") and each
     * channel's stats under `prefix.chN` — per-bank row outcome
     * vectors, queue-occupancy distributions, bus utilization.
     */
    void registerStats(obs::StatsRegistry& reg,
                       const std::string& prefix) const;

  private:
    DramSystemConfig cfg_;
    std::vector<Channel> channels_;
};

/**
 * systolic::MainMemory adapter: word addresses and core-clock cycles on
 * the outside, byte addresses and memory clocks on the inside.
 */
class DramMemory : public systolic::MainMemory
{
  public:
    /**
     * @param cfg         parsed [memory] section (tech, channels,
     *                    ranks, core clock)
     * @param word_bytes  element size of the accelerator's words
     */
    DramMemory(const DramConfig& cfg, std::uint32_t word_bytes);

    Cycle issueRead(Addr addr, Count words, Cycle now) override;
    Cycle issueWrite(Addr addr, Count words, Cycle now) override;

    DramSystem& system() { return system_; }
    const DramSystem& system() const { return system_; }

    /** core cycles -> memory clocks. */
    Cycle toMem(Cycle core) const;
    /** memory clocks -> core cycles (rounded up). */
    Cycle toCore(Cycle mem) const;

  private:
    DramSystem system_;
    std::uint32_t wordBytes_;
    double coreToMem_;
};

} // namespace scalesim::dram

#endif // SCALESIM_DRAM_SYSTEM_HH
