file(REMOVE_RECURSE
  "CMakeFiles/multicore_test.dir/multicore_test.cpp.o"
  "CMakeFiles/multicore_test.dir/multicore_test.cpp.o.d"
  "multicore_test"
  "multicore_test.pdb"
  "multicore_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multicore_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
