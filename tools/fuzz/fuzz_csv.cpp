/**
 * @file
 * libFuzzer harness for the generic CSV reader plus the small cell
 * parsers layered on it (sparsity ratios, vector-tail names). Any
 * outcome other than parsed cells or a clean FatalError is a finding.
 */

#include <cstddef>
#include <cstdint>
#include <sstream>
#include <string>

#include "common/csv.hpp"
#include "common/log.hpp"
#include "common/topology.hpp"

extern "C" int
LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size)
{
    scalesim::setQuiet(true);
    std::istringstream in(
        std::string(reinterpret_cast<const char*>(data), size));
    try {
        const scalesim::CsvTable table = scalesim::CsvTable::parse(in);
        for (std::size_t r = 0; r < table.numRows(); ++r) {
            for (const std::string& cell : table.row(r)) {
                try {
                    (void)scalesim::parseSparsityRatio(cell);
                } catch (const scalesim::FatalError&) {
                    // Cell is not a valid N:M ratio: expected.
                }
            }
        }
        (void)table.findColumn("IFMAP Height");
        (void)table.cell(0, "Layer name");
    } catch (const scalesim::FatalError&) {
        // Malformed input rejected with a clean diagnostic: expected.
    }
    return 0;
}
