# Empty compiler generated dependencies file for ablation_layout_search.
# This may be replaced when dependencies are built.
