/**
 * @file
 * Deterministic pseudo-random number generation for reproducible
 * simulations (sparsity pattern synthesis, workload randomization).
 * xoshiro256** — fast, high quality, and stable across platforms, unlike
 * std::default_random_engine.
 */

#ifndef SCALESIM_COMMON_RNG_HH
#define SCALESIM_COMMON_RNG_HH

#include <cstdint>

namespace scalesim
{

/** Seedable xoshiro256** generator. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x5ca1e51Dull) { reseed(seed); }

    /** Reset the stream from a 64-bit seed (SplitMix64 expansion). */
    void
    reseed(std::uint64_t seed)
    {
        std::uint64_t x = seed;
        for (auto& word : state_) {
            x += 0x9e3779b97f4a7c15ull;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound); bound must be non-zero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Rejection sampling to avoid modulo bias.
        const std::uint64_t threshold = (~bound + 1) % bound;
        for (;;) {
            const std::uint64_t r = next();
            if (r >= threshold)
                return r % bound;
        }
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4] = {};
};

} // namespace scalesim

#endif // SCALESIM_COMMON_RNG_HH
