# Empty dependencies file for scalesim_dram.
# This may be replaced when dependencies are built.
