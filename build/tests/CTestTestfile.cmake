# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/systolic_test[1]_include.cmake")
include("/root/repo/build/tests/demand_test[1]_include.cmake")
include("/root/repo/build/tests/dram_test[1]_include.cmake")
include("/root/repo/build/tests/sparse_test[1]_include.cmake")
include("/root/repo/build/tests/layout_test[1]_include.cmake")
include("/root/repo/build/tests/multicore_test[1]_include.cmake")
include("/root/repo/build/tests/energy_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
