# Empty dependencies file for table3_energy_states.
# This may be replaced when dependencies are built.
