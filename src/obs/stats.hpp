/**
 * @file
 * gem5-style hierarchical statistics registry (the observability
 * substrate of every run): components register Scalar / Vector /
 * Distribution / Formula stats under dotted group names
 * ("dram.ch0.bank3.rowHits"), and the registry renders them as a
 * gem5-format stats.txt or a machine-readable stats.json.
 *
 * The registry is a plain value type: every stat — including formulas,
 * which reference other stats *by name* and are evaluated at dump time
 * — is data, so registries can be copied, stored in results, and
 * merged across parallel sweep workers without aliasing hazards. Each
 * worker owns its registry; merge() folds them deterministically.
 */

#ifndef SCALESIM_OBS_STATS_HH
#define SCALESIM_OBS_STATS_HH

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace scalesim
{
class ByteWriter;
class ByteReader;
} // namespace scalesim

namespace scalesim::obs
{

/**
 * Power-of-two-bucketed sample accumulator backing Distribution stats.
 * Samples must be non-negative (enforced by a SIM_CHECK contract;
 * negative values are clamped to 0 when contracts are compiled out).
 * Bucket 0 counts samples in [0, 1) — not just exact zeros — and
 * bucket i (i >= 1) counts samples in [2^(i-1), 2^i); the last bucket
 * is the overflow. Cheap enough to live inside hot components (one
 * clz + increment).
 */
struct Histogram
{
    static constexpr unsigned kBuckets = 16;

    std::uint64_t buckets[kBuckets] = {};
    std::uint64_t count = 0;
    double sum = 0.0;
    double sumSq = 0.0;
    double minSample = 0.0;
    double maxSample = 0.0;

    void sample(double value);
    void merge(const Histogram& other);

    double mean() const { return count ? sum / count : 0.0; }
    double stdev() const;

    /**
     * Bucket-interpolated quantile estimate for q in [0, 1]: walks the
     * cumulative bucket counts and interpolates linearly inside the
     * bucket containing the target rank, clamped to the observed
     * [minSample, maxSample] envelope. Exact when a bucket holds one
     * distinct value; a power-of-two-bounded estimate otherwise.
     */
    double quantile(double q) const;

    /** Inclusive-exclusive [lo, hi) value range of bucket `i`. */
    static std::pair<double, double> bucketRange(unsigned i);
};

/**
 * Derived stat: scale * (sum of coeff*stat) / (sum of coeff*stat),
 * resolved against the owning registry at evaluation time. An empty
 * denominator means "divide by 1"; a zero denominator evaluates to 0
 * (never nan/inf). Signed coefficients allow differences, e.g. bus
 * utilization = busBusy / (lastCompletion - firstArrival).
 */
struct FormulaSpec
{
    std::vector<std::pair<std::string, double>> numerator;
    std::vector<std::pair<std::string, double>> denominator;
    double scale = 1.0;
};

/** Hierarchical stats container; see file comment. */
class StatsRegistry
{
  public:
    /** Create-or-accumulate a scalar stat. */
    void addScalar(std::string_view name, std::string_view desc,
                   double value);

    /** Create-or-accumulate one named element of a vector stat. */
    void addVectorElem(std::string_view name, std::string_view elem,
                       std::string_view desc, double value);

    /** Create-or-merge a distribution stat from a histogram. */
    void addDistribution(std::string_view name, std::string_view desc,
                         const Histogram& data);

    /** Register a formula (first registration wins on re-adds). */
    void addFormula(std::string_view name, std::string_view desc,
                    FormulaSpec spec);

    /** Scalar value by full name (0 if absent or not a scalar). */
    double scalarValue(std::string_view name) const;

    /** Evaluate a stat: scalar value, vector total, distribution
     *  sample count, or formula result; 0 if absent. */
    double evaluate(std::string_view name) const;

    bool has(std::string_view name) const;
    std::size_t size() const { return stats_.size(); }
    bool empty() const { return stats_.empty(); }
    void clear() { stats_.clear(); }

    /**
     * Fold another registry into this one: scalars and vector elements
     * add, distributions merge, formulas are kept from whichever
     * registry defined them first. Deterministic for any merge order of
     * identical-schema registries.
     */
    void merge(const StatsRegistry& other);

    /** gem5-format text dump (sorted by name). */
    void dump(std::ostream& out) const;

    /** Machine-readable dump: one JSON object keyed by stat name. */
    void dumpJson(std::ostream& out) const;

    /**
     * Flatten the additive stats into sorted (name, value) pairs for
     * interval snapshot/delta use: scalars as-is, vector elements as
     * "name::elem", distributions as "name::samples" / "name::sum".
     * Formulas are derived, not additive, and are skipped — a delta of
     * a ratio is meaningless.
     */
    std::vector<std::pair<std::string, double>> flatten() const;

    /**
     * Lossless binary encoding for the layer-result cache: doubles are
     * stored as bit patterns, so a serialize/deserialize round trip
     * reproduces dump()/dumpJson() byte-for-byte.
     */
    void serialize(ByteWriter& out) const;

    /**
     * Decode a registry previously written by serialize, replacing the
     * current contents. Returns false (leaving the registry cleared)
     * on a truncated or structurally invalid buffer — never crashes.
     */
    bool deserialize(ByteReader& in);

  private:
    struct VectorData
    {
        /** Element order is registration order (stable dumps). */
        std::vector<std::pair<std::string, double>> elems;
    };

    struct Entry
    {
        std::string desc;
        std::variant<double, VectorData, Histogram, FormulaSpec> data;
    };

    double evaluateFormula(const FormulaSpec& spec) const;

    /** Sorted by name: dumps are deterministic byte-for-byte. */
    std::map<std::string, Entry, std::less<>> stats_;
};

} // namespace scalesim::obs

#endif // SCALESIM_OBS_STATS_HH
