/**
 * @file
 * Regression tests for the repo's determinism invariant at the two
 * places hash-table order could plausibly leak into bytes the project
 * promises are identical across runs:
 *
 *  - LayerResultCache persistence: entries_ is an unordered_map, but
 *    save() walks the lru_ list — so two caches with the same logical
 *    content must persist byte-identically even when their internal
 *    hash-table history differs wildly (here: one cache is warmed
 *    through a churn of budget-evicted dummy entries first).
 *  - StatsRegistry dumps: stats live in a sorted std::map, so
 *    registration order must never show in stats.txt/stats.json, and
 *    merge() must commute for identical-schema registries.
 *
 * These pin the claims written next to every unordered_map member in
 * the tree (serve/cache.hpp, systolic/scratchpad.hpp,
 * multicore/shared_l2.hpp, dram/controller.hpp); the scalesim_lint
 * `unordered-iteration-to-output` check guards the other direction
 * (no new iteration over those maps in output paths).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/stats.hpp"
#include "serve/cache.hpp"

namespace
{

using scalesim::obs::Histogram;
using scalesim::obs::StatsRegistry;
using scalesim::serve::LayerResultCache;

std::string
tempPath(const std::string& name)
{
    return testing::TempDir() + name;
}

std::string
fileBytes(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    std::stringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

/** One real payload per key, all the same size so budgets are exact. */
std::string
payloadFor(std::uint64_t key)
{
    std::string payload(64, 'a' + static_cast<char>(key % 26));
    payload[0] = static_cast<char>(key);
    return payload;
}

TEST(DeterminismTest, CachePersistenceIgnoresHashTableHistory)
{
    const std::vector<std::uint64_t> keys = {11, 7, 42, 3, 99, 18, 5, 64};
    const std::uint64_t budget = 64 * keys.size();

    // Pristine cache: just the real entries, in order.
    LayerResultCache pristine(budget);
    for (std::uint64_t key : keys)
        pristine.insert(key, payloadFor(key));

    // Churned cache: same logical end state, but the unordered_map has
    // lived through 64 dummy insertions and their evictions first, so
    // its bucket layout and element history differ from pristine's.
    LayerResultCache churned(budget);
    for (std::uint64_t dummy = 1000; dummy < 1064; ++dummy)
        churned.insert(dummy, payloadFor(dummy));
    for (std::uint64_t key : keys)
        churned.insert(key, payloadFor(key));

    // Identical LRU refreshes on both (lookup moves to front).
    std::string payload;
    for (std::uint64_t key : {42ull, 3ull, 42ull}) {
        ASSERT_TRUE(pristine.lookup(key, payload));
        ASSERT_TRUE(churned.lookup(key, payload));
    }

    ASSERT_EQ(pristine.stats().entries, keys.size());
    ASSERT_EQ(churned.stats().entries, keys.size());

    const std::string pathA = tempPath("determinism_pristine.bin");
    const std::string pathB = tempPath("determinism_churned.bin");
    ASSERT_TRUE(pristine.save(pathA));
    ASSERT_TRUE(churned.save(pathB));
    EXPECT_EQ(fileBytes(pathA), fileBytes(pathB));
    std::remove(pathA.c_str());
    std::remove(pathB.c_str());
}

TEST(DeterminismTest, CacheSaveLoadSaveIsByteStable)
{
    LayerResultCache cache;
    for (std::uint64_t key : {9ull, 2ull, 77ull, 31ull})
        cache.insert(key, payloadFor(key));

    const std::string first = tempPath("determinism_first.bin");
    const std::string second = tempPath("determinism_second.bin");
    ASSERT_TRUE(cache.save(first));

    LayerResultCache reloaded;
    ASSERT_TRUE(reloaded.load(first));
    ASSERT_EQ(reloaded.stats().entries, 4u);
    ASSERT_TRUE(reloaded.save(second));

    EXPECT_EQ(fileBytes(first), fileBytes(second));
    std::remove(first.c_str());
    std::remove(second.c_str());
}

/** The same stats, registered in the order `names` dictates. */
StatsRegistry
buildRegistry(const std::vector<int>& order)
{
    // Index-addressable registration steps so tests can permute them.
    StatsRegistry reg;
    Histogram latency;
    for (double sample : {1.0, 3.0, 17.0, 250.0})
        latency.sample(sample);
    for (int step : order) {
        switch (step) {
        case 0:
            reg.addScalar("dram.reads", "read requests", 1200);
            break;
        case 1:
            reg.addScalar("array.macs", "mac operations", 65536);
            break;
        case 2:
            // Vector elements keep their own registration order by
            // design (ch0 before ch1 always) — only the order of
            // whole stats is permuted here.
            reg.addVectorElem("dram.bank", "ch0", "per-channel", 7);
            reg.addVectorElem("dram.bank", "ch1", "per-channel", 9);
            break;
        case 3:
            reg.addDistribution("dram.latency", "cycles", latency);
            break;
        case 4:
            reg.addFormula("dram.readShare", "reads per mac",
                           {{{"dram.reads", 1.0}},
                            {{"array.macs", 1.0}},
                            1.0});
            break;
        default:
            ADD_FAILURE() << "bad step " << step;
        }
    }
    return reg;
}

TEST(DeterminismTest, StatsDumpIgnoresRegistrationOrder)
{
    const StatsRegistry forward = buildRegistry({0, 1, 2, 3, 4});
    const StatsRegistry shuffled = buildRegistry({4, 2, 0, 3, 1});

    std::ostringstream textA, textB, jsonA, jsonB;
    forward.dump(textA);
    shuffled.dump(textB);
    EXPECT_EQ(textA.str(), textB.str());

    forward.dumpJson(jsonA);
    shuffled.dumpJson(jsonB);
    EXPECT_EQ(jsonA.str(), jsonB.str());
}

TEST(DeterminismTest, StatsMergeCommutesForIdenticalSchemas)
{
    const StatsRegistry a = buildRegistry({0, 1, 2, 3, 4});
    const StatsRegistry b = buildRegistry({4, 3, 2, 1, 0});

    StatsRegistry ab = a;
    ab.merge(b);
    StatsRegistry ba = b;
    ba.merge(a);

    std::ostringstream dumpAB, dumpBA;
    ab.dump(dumpAB);
    ba.dump(dumpBA);
    EXPECT_EQ(dumpAB.str(), dumpBA.str());
}

} // namespace
