/**
 * @file
 * Workload topology front-end: parses SCALE-Sim style CSV topology files
 * (convolution format and GEMM format) into LayerSpec lists, including
 * the v3 `SparsitySupport` column ("N:M" ratios per layer).
 */

#ifndef SCALESIM_COMMON_TOPOLOGY_HH
#define SCALESIM_COMMON_TOPOLOGY_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace scalesim
{

/** A named list of layers. */
struct Topology
{
    std::string name;
    std::vector<LayerSpec> layers;

    /** Dense MAC count across all layers (incl. repetitions). */
    std::uint64_t totalMacs() const;

    /** Sum of per-layer max operand footprints in words. */
    std::uint64_t totalWeightWords() const;

    /**
     * Parse a SCALE-Sim topology CSV. Convolution files have columns
     * Layer name, IFMAP Height/Width, Filter Height/Width, Channels,
     * Num Filter, Strides [, SparsitySupport]. GEMM files have columns
     * Layer, M, N, K [, SparsitySupport]. The format is auto-detected
     * from the header.
     */
    static Topology parseCsv(std::istream& in, std::string name);

    /** Load a topology CSV from disk; fatal() on errors. */
    static Topology load(const std::string& path);
};

/**
 * Parse an "N:M" sparsity annotation. Returns {0, 0} for empty/dense
 * cells; fatal() on malformed text.
 */
std::pair<std::uint32_t, std::uint32_t>
parseSparsityRatio(const std::string& text);

} // namespace scalesim

#endif // SCALESIM_COMMON_TOPOLOGY_HH
