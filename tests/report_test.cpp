/**
 * @file
 * Golden/smoke tests for the run reports and machine-readable outputs:
 * text report rendering, the stats registry populated by a real run
 * (including the DRAM row-outcome and scratchpad stall-breakdown sum
 * invariants), writeJson round-trips, Chrome-trace structure, and
 * degenerate runs (empty topology, DRAM off) never printing nan/inf.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "common/workloads.hpp"
#include "core/simulator.hpp"

#include "json_check.hpp"

using namespace scalesim;

namespace
{

Topology
tinyTopology()
{
    Topology topo;
    topo.name = "tiny";
    topo.layers.push_back(LayerSpec::conv("conv", 14, 14, 3, 3, 8, 16,
                                          1));
    topo.layers.push_back(LayerSpec::gemm("fc", 4, 32, 64));
    return topo;
}

SimConfig
fullConfig()
{
    SimConfig cfg;
    cfg.arrayRows = cfg.arrayCols = 8;
    cfg.memory.ifmapSramKb = 16;
    cfg.memory.filterSramKb = 16;
    cfg.memory.ofmapSramKb = 8;
    cfg.dram.enabled = true;
    cfg.energy.enabled = true;
    cfg.sparsity.enabled = true;
    return cfg;
}

core::RunResult
runFull(bool fold_spans = false)
{
    SimConfig cfg = fullConfig();
    cfg.memory.recordFoldSpans = fold_spans;
    core::Simulator sim(cfg);
    return sim.run(tinyTopology());
}

std::string
render(const core::RunResult& run,
       void (core::RunResult::*writer)(std::ostream&) const)
{
    std::ostringstream out;
    (run.*writer)(out);
    return out.str();
}

void
expectNoNanInf(const std::string& text, const char* what)
{
    EXPECT_EQ(text.find("nan"), std::string::npos) << what;
    EXPECT_EQ(text.find("-nan"), std::string::npos) << what;
    EXPECT_EQ(text.find("inf"), std::string::npos) << what;
}

} // namespace

TEST(Reports, SummaryContainsHeadlineStats)
{
    const core::RunResult run = runFull();
    const std::string text = render(run,
                                    &core::RunResult::writeSummary);
    EXPECT_NE(text.find("sim.totalCycles"), std::string::npos);
    EXPECT_NE(text.find("sim.stallFraction"), std::string::npos);
    EXPECT_NE(text.find("mem.dramReadWords"), std::string::npos);
    EXPECT_NE(text.find("dram.rowHitRate"), std::string::npos);
    EXPECT_NE(text.find("energy.total_mJ"), std::string::npos);
    EXPECT_NE(text.find(std::to_string(run.totalCycles)),
              std::string::npos);
}

TEST(Reports, ComputeReportHasOneRowPerLayer)
{
    const core::RunResult run = runFull();
    const std::string text = render(
        run, &core::RunResult::writeComputeReport);
    EXPECT_EQ(text.rfind("LayerID,LayerName,", 0), 0u);
    std::size_t lines = 0;
    for (char c : text)
        lines += c == '\n';
    EXPECT_EQ(lines, run.layers.size() + 1); // header + one per layer
    EXPECT_NE(text.find("conv"), std::string::npos);
    EXPECT_NE(text.find("fc"), std::string::npos);
}

TEST(Reports, StatsDumpHasGem5FramingAndParsesAsJson)
{
    const core::RunResult run = runFull();
    const std::string text = render(run, &core::RunResult::writeStats);
    EXPECT_NE(text.find("Begin Simulation Statistics"),
              std::string::npos);
    EXPECT_NE(text.find("End Simulation Statistics"),
              std::string::npos);
    EXPECT_NE(text.find("sim.totalCycles"), std::string::npos);
    EXPECT_NE(text.find("dram.ch0."), std::string::npos);
    EXPECT_NE(text.find("spad.stallBreakdown::drain"),
              std::string::npos);
    expectNoNanInf(text, "stats.txt");

    const std::string json_text = render(
        run, &core::RunResult::writeStatsJson);
    jsoncheck::Value doc;
    ASSERT_TRUE(jsoncheck::valid(json_text, doc));
    const jsoncheck::Value* cycles = doc.find("sim.totalCycles");
    ASSERT_NE(cycles, nullptr);
    EXPECT_DOUBLE_EQ(cycles->find("value")->number,
                     static_cast<double>(run.totalCycles));
}

TEST(Reports, DramRowOutcomesSumToRequests)
{
    const core::RunResult run = runFull();
    const auto& reg = run.stats;
    const double outcomes = reg.scalarValue("dram.rowHits")
        + reg.scalarValue("dram.rowMisses")
        + reg.scalarValue("dram.rowConflicts");
    const double requests = reg.scalarValue("dram.reads")
        + reg.scalarValue("dram.writes");
    EXPECT_GT(requests, 0.0);
    EXPECT_DOUBLE_EQ(outcomes, requests);
    // Per-channel bank vectors agree with the channel totals.
    EXPECT_DOUBLE_EQ(reg.evaluate("dram.ch0.bank.rowHits"),
                     reg.scalarValue("dram.ch0.rowHits"));
}

TEST(Reports, ScratchpadStallBreakdownSumsToStallCycles)
{
    const core::RunResult run = runFull();
    const auto& reg = run.stats;
    EXPECT_DOUBLE_EQ(reg.evaluate("spad.stallBreakdown"),
                     reg.scalarValue("spad.stallCycles"));
    // The same invariant holds per layer.
    for (const auto& l : run.layers) {
        EXPECT_EQ(l.timing.prefetchStallCycles
                      + l.timing.drainStallCycles
                      + l.timing.bandwidthStallCycles,
                  l.stallCycles)
            << l.name;
    }
}

TEST(Reports, WriteJsonParsesAndRoundTripsTotals)
{
    const core::RunResult run = runFull();
    const std::string text = render(run, &core::RunResult::writeJson);
    jsoncheck::Value doc;
    ASSERT_TRUE(jsoncheck::valid(text, doc));

    const jsoncheck::Value* totals = doc.find("totals");
    ASSERT_NE(totals, nullptr);
    EXPECT_DOUBLE_EQ(totals->find("totalCycles")->number,
                     static_cast<double>(run.totalCycles));
    EXPECT_DOUBLE_EQ(totals->find("stallCycles")->number,
                     static_cast<double>(run.stallCycles));
    EXPECT_DOUBLE_EQ(totals->find("dramReadWords")->number,
                     static_cast<double>(run.dramReadWords));

    const jsoncheck::Value* layers = doc.find("layers");
    ASSERT_NE(layers, nullptr);
    ASSERT_EQ(layers->items.size(), run.layers.size());
    EXPECT_EQ(layers->items[0].find("name")->text,
              run.layers[0].name);
    EXPECT_DOUBLE_EQ(
        layers->items[0].find("totalCycles")->number,
        static_cast<double>(run.layers[0].totalCycles));

    ASSERT_NE(doc.find("dram"), nullptr);
    EXPECT_TRUE(doc.find("dram")->find("modeled")->boolean);
    ASSERT_NE(doc.find("energy"), nullptr);
    ASSERT_NE(doc.find("profile"), nullptr);
}

TEST(Reports, ChromeTraceHasSpansPerLayerAndCounterTrack)
{
    const core::RunResult run = runFull(/*fold_spans=*/true);
    const std::string text = render(
        run, &core::RunResult::writeChromeTrace);
    jsoncheck::Value doc;
    ASSERT_TRUE(jsoncheck::valid(text, doc));

    const jsoncheck::Value* events = doc.find("traceEvents");
    ASSERT_NE(events, nullptr);
    std::size_t layer_spans = 0, fold_spans = 0, counters = 0;
    for (const auto& ev : events->items) {
        const jsoncheck::Value* ph = ev.find("ph");
        ASSERT_NE(ph, nullptr);
        if (ph->text == "X") {
            const jsoncheck::Value* cat = ev.find("cat");
            ASSERT_NE(cat, nullptr);
            layer_spans += cat->text == "layer";
            fold_spans += cat->text == "fold";
            EXPECT_GE(ev.find("dur")->number, 1.0);
        } else if (ph->text == "C") {
            ++counters;
        }
    }
    EXPECT_EQ(layer_spans, run.layers.size());
    EXPECT_GT(fold_spans, 0u);
    EXPECT_GT(counters, 0u);
}

TEST(Reports, DegenerateEmptyTopologyPrintsNoNan)
{
    SimConfig cfg;
    cfg.energy.enabled = true;
    core::Simulator sim(cfg);
    Topology empty;
    empty.name = "empty";
    const core::RunResult run = sim.run(empty);
    EXPECT_EQ(run.totalCycles, 0u);

    expectNoNanInf(render(run, &core::RunResult::writeSummary),
                   "summary");
    expectNoNanInf(render(run, &core::RunResult::writePowerReport),
                   "power");
    expectNoNanInf(render(run, &core::RunResult::writeBandwidthReport),
                   "bandwidth");
    expectNoNanInf(render(run, &core::RunResult::writeStats), "stats");

    const std::string json_text = render(run,
                                         &core::RunResult::writeJson);
    expectNoNanInf(json_text, "json");
    jsoncheck::Value doc;
    ASSERT_TRUE(jsoncheck::valid(json_text, doc));
    EXPECT_DOUBLE_EQ(doc.find("totals")->find("stallFraction")->number,
                     0.0);

    const std::string trace_text = render(
        run, &core::RunResult::writeChromeTrace);
    jsoncheck::Value trace_doc;
    ASSERT_TRUE(jsoncheck::valid(trace_text, trace_doc));
}

TEST(Reports, DegenerateTinyLayerNoDramPrintsNoNan)
{
    SimConfig cfg;
    cfg.mode = SimMode::Analytical;
    Topology topo;
    topo.name = "one";
    topo.layers.push_back(LayerSpec::gemm("g1", 1, 1, 1));
    core::Simulator sim(cfg);
    const core::RunResult run = sim.run(topo);
    expectNoNanInf(render(run, &core::RunResult::writeSummary),
                   "summary");
    expectNoNanInf(render(run, &core::RunResult::writeComputeReport),
                   "compute");
    const std::string json_text = render(run,
                                         &core::RunResult::writeJson);
    expectNoNanInf(json_text, "json");
    jsoncheck::Value doc;
    ASSERT_TRUE(jsoncheck::valid(json_text, doc));
}
