/**
 * @file
 * Trace-level multi-core timing (paper §III-B's hierarchical memory in
 * action): each core runs its spatial partition through its own
 * double-buffered L1 scratchpad, all stacked on one shared L2 that
 * deduplicates the row/column-replicated operand partitions, backed by
 * a common main memory. Complements the analytical MultiCoreSimulator:
 * this path surfaces L2 hit rates, the DRAM traffic the L2 saves, and
 * bandwidth-contention effects between cores.
 *
 * Two contention models (ContentionModel):
 *  - `Shared` (default): all cores' L1 engines are stepped against one
 *    shared timeline, a round-robin arbiter granting one memory
 *    transaction at a time; L2 port and DRAM bus contention emerge
 *    from real per-cycle collisions (the paper's concurrent-cores
 *    model). Deterministic and independent of core enumeration order.
 *  - `Static`: the historical approximation — cores simulated one
 *    after another with rewound time cursors and a fixed 1/numCores
 *    bandwidth share each; bursty collisions are invisible and shared
 *    L2 hit/miss numbers depend on core iteration order. Kept for A/B
 *    comparison against the shared model.
 */

#ifndef SCALESIM_MULTICORE_TRACE_SIM_HH
#define SCALESIM_MULTICORE_TRACE_SIM_HH

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/config.hpp"
#include "common/parallel.hpp"
#include "multicore/arbiter.hpp"
#include "multicore/shared_l2.hpp"
#include "systolic/scratchpad.hpp"

namespace scalesim::multicore
{

/** How shared-L2/DRAM contention between cores is modeled. */
enum class ContentionModel
{
    /** Cycle-interleaved co-simulation on one shared timeline. */
    Shared,
    /** Sequential per-core runs with a static 1/N bandwidth share. */
    Static,
};

/** Parse "shared" | "static" (case-insensitive). */
ContentionModel contentionModelFromString(std::string_view text);
const char* toString(ContentionModel model);

/** Co-step engine driving the Shared contention model's timeline. */
enum class MultiCoreEngine
{
    /** Single-threaded reference: grant and execute one transaction
        at a time. */
    Serial,
    /**
     * Epoch-parallel: the serial arbiter still resolves every shared
     * L2/DRAM transaction in exactly serial order, but each engine's
     * post-issue bookkeeping (fold wrap-up, next-fold planning) runs
     * on ThreadPool workers while the coordinator keeps granting
     * transactions that provably precede every in-flight engine's
     * advertised-event floor (the epoch-rendezvous invariant, see
     * DESIGN.md). Bit-identical to Serial for every worker count —
     * enforced by golden A/B tests.
     */
    Epoch,
};

/** Parse "serial" | "epoch" (case-insensitive). */
MultiCoreEngine multiCoreEngineFromString(std::string_view text);
const char* toString(MultiCoreEngine engine);

/** Configuration of the trace-level multi-core system. */
struct MultiCoreTraceConfig
{
    std::uint64_t pr = 2;
    std::uint64_t pc = 2;
    std::uint32_t arrayRows = 32;
    std::uint32_t arrayCols = 32;
    Dataflow dataflow = Dataflow::OutputStationary;
    systolic::ScratchpadConfig l1;
    SharedL2Config l2;
    bool useL2 = true;
    /** Backing main-memory bandwidth (words/cycle). */
    double dramWordsPerCycle = 32.0;
    /** Contention model (see file comment). */
    ContentionModel contention = ContentionModel::Shared;
    /** Co-step engine for the Shared model (Serial is the
        reference; Epoch is bit-identical and parallel). */
    MultiCoreEngine engine = MultiCoreEngine::Serial;
    /** Worker threads for the Epoch engine (0 = auto via
        resolveJobs(); <= 1 resolved runs the epoch loop inline). */
    unsigned jobs = 0;
    /**
     * Scan arbiter ports in reverse enumeration order. The grant is an
     * argmin over a total-order key, so results must not change; the
     * knob exists for tests to prove enumeration-order independence.
     */
    bool arbScanReverse = false;
};

/** Outcome of one layer on the multi-core system. */
struct MultiCoreTraceResult
{
    /** Slowest core's wall-clock cycles. */
    Cycle makespan = 0;
    std::vector<systolic::LayerTiming> perCore;
    SharedL2Stats l2;
    /** Words the backing main memory actually served. */
    std::uint64_t dramReadWords = 0;
    std::uint64_t dramWriteWords = 0;
    /**
     * Words the per-core L1s pulled from their backing view (the
     * shared L2 when enabled, else DRAM) — L1 *fill* traffic before
     * deduplication, not L1-internal reads. With the L2 enabled this
     * equals l2.hitWords + l2.missWords.
     */
    std::uint64_t l1FillWords = 0;
    /** Arbiter grant stats (ContentionModel::Shared only). */
    ArbiterStats arb;
    /** Per-core port stats, core-indexed (Shared only; empty cores
     *  keep default entries). */
    std::vector<MemoryPortStats> ports;

    /**
     * Register this layer's stats under `prefix` (default "mc"):
     * makespan and traffic scalars, `<prefix>.l2.*` hit/miss stats,
     * `<prefix>.l2.arbConflicts` + `<prefix>.arb.*` grant stats with
     * the waiting-cores occupancy distribution, and per-core
     * `<prefix>.core<i>.*` cycles including `stallOnL2`.
     */
    void registerStats(obs::StatsRegistry& reg,
                       const std::string& prefix = "mc") const;
};

/** The trace-level multi-core simulator. */
class MultiCoreTraceSimulator
{
  public:
    explicit MultiCoreTraceSimulator(const MultiCoreTraceConfig& cfg);
    ~MultiCoreTraceSimulator();

    /**
     * Run one layer, spatially partitioned Pr x Pc over the mapped
     * (Sr, Sc) dimensions; each core's partition keeps its global
     * operand addresses so shared partitions deduplicate in the L2.
     */
    MultiCoreTraceResult runLayer(const LayerSpec& layer);

    /** A core's partition: share dims + global-address operand view. */
    struct CorePartition
    {
        GemmDims share;
        systolic::OperandMap view;
    };

    /**
     * Partition geometry of one core (exposed for tests): offsets the
     * global operand view's bases so that per-core ofmap tiles exactly
     * tile the global ofmap and replicated ifmap/filter partitions
     * land on identical addresses (the L2 dedup invariant).
     */
    static CorePartition corePartition(
        Dataflow df, const GemmDims& gemm,
        const systolic::OperandMap& global, std::uint64_t sr_off,
        std::uint64_t sr_share, std::uint64_t sc_off,
        std::uint64_t sc_share);

    /**
     * Balanced split of `total` into `parts`: entry i is share i's
     * start offset, entry `parts` the total.
     */
    static std::vector<std::uint64_t> shareStarts(std::uint64_t total,
                                                  std::uint64_t parts);

  private:
    MultiCoreTraceResult runLayerStatic(const LayerSpec& layer);
    MultiCoreTraceResult runLayerShared(const LayerSpec& layer);

    MultiCoreTraceConfig cfg_;
    std::unique_ptr<systolic::BandwidthMemory> dram_;
    std::unique_ptr<SharedL2> l2_;
    systolic::MainMemory* coreView_; // L2 if enabled, else DRAM
    /** Lazily-created worker pool for the Epoch engine; persists
        across layers so pool spin-up is paid once per run. */
    std::unique_ptr<ThreadPool> pool_;
};

} // namespace scalesim::multicore

#endif // SCALESIM_MULTICORE_TRACE_SIM_HH
