/**
 * @file
 * Energy and power estimation (paper §VII): multiplies action counts by
 * the ERT, adds static energy for PEs and SRAMs, and reports the
 * breakdown (PE array / GLB / NoC / DRAM / static), average and
 * instantaneous power, and energy-delay product.
 */

#ifndef SCALESIM_ENERGY_MODEL_HH
#define SCALESIM_ENERGY_MODEL_HH

#include <string>
#include <vector>

#include "common/config.hpp"
#include "energy/action_counts.hpp"
#include "energy/ert.hpp"

namespace scalesim::energy
{

/** Energy breakdown of one layer or run, in picojoules. */
struct EnergyBreakdown
{
    double peArray = 0.0; ///< MACs + PE scratchpads
    double glb = 0.0;     ///< smart-buffer SRAM dynamic energy
    double noc = 0.0;     ///< array-edge interconnect
    double dram = 0.0;    ///< main-memory access energy
    double staticE = 0.0; ///< leakage over the run's cycles

    double
    totalPj() const
    {
        return peArray + glb + noc + dram + staticE;
    }
    /** Total excluding main memory (the chip's own energy). */
    double onChipPj() const { return peArray + glb + noc + staticE; }
    double onChipMj() const { return onChipPj() * 1e-9; }
    double totalUj() const { return totalPj() * 1e-6; }
    double totalMj() const { return totalPj() * 1e-9; }

    void
    merge(const EnergyBreakdown& o)
    {
        peArray += o.peArray;
        glb += o.glb;
        noc += o.noc;
        dram += o.dram;
        staticE += o.staticE;
    }
};

/** One sample of the instantaneous power trace. */
struct PowerSample
{
    std::string label;   ///< layer name
    Cycle cycles = 0;    ///< duration of the epoch
    double powerW = 0.0; ///< energy / time over the epoch
};

/**
 * The energy model: ERT plus the hardware quantities static energy
 * depends on (PE count, total SRAM capacity).
 */
class EnergyModel
{
  public:
    EnergyModel(const Ert& ert, const EnergyConfig& cfg,
                std::uint64_t num_pes, double sram_total_kb);

    const Ert& ert() const { return ert_; }

    /** Dynamic + static energy of a set of action counts. */
    EnergyBreakdown energy(const ActionCounts& counts) const;

    /** Average power in watts over `cycles` at the configured clock. */
    double averagePowerW(const EnergyBreakdown& breakdown,
                         Cycle cycles) const;

    /** Runtime of `cycles` in seconds at the configured clock. */
    double seconds(Cycle cycles) const;

    /**
     * Command-granular main-memory energy (pJ) from detailed DRAM
     * statistics: row misses/conflicts pay activations, every burst
     * pays array + IO energy, refreshes pay tRFC energy. Replaces the
     * flat per-word estimate when the DRAM model ran.
     */
    double dramCommandEnergyPj(Count activates, Count read_bursts,
                               Count write_bursts,
                               Count refreshes) const;

    /** Energy-delay product in cycles x mJ. */
    double
    edp(const EnergyBreakdown& breakdown, Cycle cycles) const
    {
        return breakdown.totalMj() * static_cast<double>(cycles);
    }

  private:
    Ert ert_;
    EnergyConfig cfg_;
    std::uint64_t numPes_;
    double sramTotalKb_;
};

} // namespace scalesim::energy

#endif // SCALESIM_ENERGY_MODEL_HH
