/**
 * @file
 * Zero-cost-in-Release contract macros. SIM_CHECK and friends are
 * hot-path assertions over simulator invariants (conservation laws,
 * monotonic clocks, queue accounting): they compile to nothing unless
 * the build opted in, so instrumented engines pay nothing in the
 * Release binaries the sweeps and benchmarks use.
 *
 * Enabled when either
 *  - the build configured with -DSCALESIM_CHECKS=ON (which defines
 *    SCALESIM_ENABLE_CHECKS for every target), or
 *  - NDEBUG is not defined (plain Debug builds).
 *
 * A failed check is an internal invariant violation — the simulated
 * numbers can no longer be trusted — so it panic()s (aborts) rather
 * than throwing the user-error FatalError. For post-hoc, non-aborting
 * auditing of whole runs, see check::InvariantAuditor in audit.hpp.
 */

#ifndef SCALESIM_CHECK_CONTRACT_HH
#define SCALESIM_CHECK_CONTRACT_HH

#include <cstdarg>
#include <sstream>
#include <string>

#include "common/log.hpp"

#if defined(SCALESIM_ENABLE_CHECKS) || !defined(NDEBUG)
#define SIM_CHECKS_ENABLED 1
#else
#define SIM_CHECKS_ENABLED 0
#endif

namespace scalesim::check::detail
{

/** Render a checked operand for the failure message. */
template <typename T>
std::string
renderValue(const T& value)
{
    std::ostringstream out;
    out << value;
    return out.str();
}

/**
 * Build the optional failure message. The no-argument overload keeps
 * SIM_CHECK(cond) from expanding into format("") — a zero-length
 * format string gcc warns about under -Wformat.
 */
inline std::string
checkMessage()
{
    return {};
}

__attribute__((format(printf, 1, 2))) inline std::string
checkMessage(const char* fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string out = vformat(fmt, args);
    va_end(args);
    return out;
}

[[noreturn]] inline void
checkFail(const char* file, int line, const char* expr,
          const std::string& message)
{
    panic("%s:%d: SIM_CHECK(%s) failed%s%s", file, line, expr,
          message.empty() ? "" : ": ", message.c_str());
}

template <typename A, typename B>
[[noreturn]] void
checkRelFail(const char* file, int line, const char* macro,
             const char* a_expr, const char* b_expr, const A& a,
             const B& b, const std::string& message)
{
    panic("%s:%d: %s(%s, %s) failed: %s vs %s%s%s", file, line, macro,
          a_expr, b_expr, renderValue(a).c_str(),
          renderValue(b).c_str(), message.empty() ? "" : ": ",
          message.c_str());
}

} // namespace scalesim::check::detail

#if SIM_CHECKS_ENABLED

/** Assert `cond`; optional printf-style message after the condition. */
#define SIM_CHECK(cond, ...)                                            \
    do {                                                                \
        if (!(cond)) {                                                  \
            ::scalesim::check::detail::checkFail(                       \
                __FILE__, __LINE__, #cond,                              \
                ::scalesim::check::detail::checkMessage(__VA_ARGS__));  \
        }                                                               \
    } while (false)

#define SIM_CHECK_REL_(macro, op, a, b, ...)                            \
    do {                                                                \
        const auto& sim_check_a_ = (a);                                 \
        const auto& sim_check_b_ = (b);                                 \
        if (!(sim_check_a_ op sim_check_b_)) {                          \
            ::scalesim::check::detail::checkRelFail(                    \
                __FILE__, __LINE__, macro, #a, #b, sim_check_a_,        \
                sim_check_b_,                                           \
                ::scalesim::check::detail::checkMessage(__VA_ARGS__));  \
        }                                                               \
    } while (false)

/** Assert a == b, printing both values on failure. */
#define SIM_CHECK_EQ(a, b, ...)                                         \
    SIM_CHECK_REL_("SIM_CHECK_EQ", ==, a, b, __VA_ARGS__)
/** Assert a != b. */
#define SIM_CHECK_NE(a, b, ...)                                         \
    SIM_CHECK_REL_("SIM_CHECK_NE", !=, a, b, __VA_ARGS__)
/** Assert a <= b. */
#define SIM_CHECK_LE(a, b, ...)                                         \
    SIM_CHECK_REL_("SIM_CHECK_LE", <=, a, b, __VA_ARGS__)
/** Assert a < b. */
#define SIM_CHECK_LT(a, b, ...)                                         \
    SIM_CHECK_REL_("SIM_CHECK_LT", <, a, b, __VA_ARGS__)

#else // !SIM_CHECKS_ENABLED — compiled out entirely.

#define SIM_CHECK(cond, ...) do {} while (false)
#define SIM_CHECK_EQ(a, b, ...) do {} while (false)
#define SIM_CHECK_NE(a, b, ...) do {} while (false)
#define SIM_CHECK_LE(a, b, ...) do {} while (false)
#define SIM_CHECK_LT(a, b, ...) do {} while (false)

#endif // SIM_CHECKS_ENABLED

#endif // SCALESIM_CHECK_CONTRACT_HH
