#include "sparse/model.hpp"

#include "common/log.hpp"

namespace scalesim::sparse
{

namespace
{

SparsityPattern
resolvePattern(const LayerSpec& layer, const SparsityConfig& cfg,
               const GemmDims& gemm, std::uint64_t layer_index,
               bool& active, std::uint32_t& n_out, std::uint32_t& m_out)
{
    active = false;
    n_out = 0;
    m_out = 0;
    // Row-wise mapping only applies to layers the topology marks as
    // sparse (SparsitySupport column, sparseN/M != 0) and only when
    // sparsity is enabled — never silently to dense layers.
    if (cfg.enabled && cfg.optimizedMapping && layer.sparseN != 0
        && layer.sparseM != 0) {
        // Row-wise N:M with randomized N <= M/2 per block.
        Rng rng(cfg.seed ^ (layer_index * 0x9e3779b97f4a7c15ull));
        auto pattern = SparsityPattern::rowWise(gemm.k, cfg.blockSize,
                                                rng);
        active = pattern.compressedK() < gemm.k;
        m_out = cfg.blockSize;
        return pattern;
    }
    if (cfg.enabled && layer.sparseM != 0 && layer.sparseN != 0) {
        auto pattern = SparsityPattern::layerWise(gemm.k, layer.sparseN,
                                                  layer.sparseM);
        active = pattern.compressedK() < gemm.k;
        n_out = layer.sparseN;
        m_out = layer.sparseM;
        return pattern;
    }
    return SparsityPattern::dense(gemm.k);
}

} // namespace

SparseLayerModel::SparseLayerModel(const LayerSpec& layer,
                                   const SparsityConfig& cfg,
                                   std::uint64_t layer_index)
    : layer_(layer), cfg_(cfg), denseGemm_(layer.toGemm()),
      pattern_(resolvePattern(layer, cfg, denseGemm_, layer_index,
                              active_, appliedN_, appliedM_))
{
}

GemmDims
SparseLayerModel::effectiveGemm() const
{
    GemmDims eff = denseGemm_;
    eff.k = pattern_.compressedK();
    return eff;
}

StorageReport
SparseLayerModel::storage(std::uint32_t word_bits) const
{
    const SparseRep rep = active_ ? cfg_.rep : SparseRep::Dense;
    return storageFor(rep, pattern_, denseGemm_.n, word_bits);
}

SparseLayerReport
SparseLayerModel::report(std::uint32_t word_bits) const
{
    SparseLayerReport rep;
    rep.layerName = layer_.name;
    rep.representation = toString(active_ ? cfg_.rep : SparseRep::Dense);
    rep.ratioN = appliedN_;
    rep.ratioM = appliedM_;
    rep.denseK = denseGemm_.k;
    rep.compressedK = pattern_.compressedK();
    const StorageReport storage_report = storage(word_bits);
    rep.originalFilterBits = storage_report.originalBits;
    rep.newFilterBits = storage_report.totalBits();
    rep.metadataBits = storage_report.metadataBits;
    return rep;
}

} // namespace scalesim::sparse
