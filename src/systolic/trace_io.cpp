#include "systolic/trace_io.hpp"

#include <charconv>
#include <cstdlib>
#include <cstring>
#include <istream>
#include <ostream>

#include "common/csv.hpp"
#include "common/log.hpp"

namespace scalesim::systolic
{

namespace
{

/** Staging-buffer granularity; rows needing more grow the buffer. */
constexpr std::size_t kSinkBufBytes = std::size_t{1} << 16;

/** Digits of a 64-bit decimal plus one ", " separator. */
constexpr std::size_t kMaxField = 22;

/** Number texts up to this long take the fixed-width patch copy. */
constexpr std::size_t kPatchCopy = 16;

/** Row deltas above this (or negative) skip the patch fast path. */
constexpr Addr kMaxPatchDelta = 999'999'999;

} // namespace

SramTraceWriter::SramTraceWriter(std::ostream* ifmap_reads,
                                 std::ostream* filter_reads,
                                 std::ostream* ofmap_writes,
                                 std::ostream* ofmap_reads)
{
    ifmap_.out = ifmap_reads;
    filter_.out = filter_reads;
    ofmap_.out = ofmap_writes;
    oread_.out = ofmap_reads;
}

SramTraceWriter::~SramTraceWriter()
{
    flush();
}

void
SramTraceWriter::flushSink(Sink& sink)
{
    if (sink.used > 0 && sink.out != nullptr) {
        sink.out->write(sink.buf.data(),
                        static_cast<std::streamsize>(sink.used));
    }
    sink.used = 0;
    // prevOff indexes into the drained region; the next row must
    // re-derive its digits from scratch.
    sink.havePrev = false;
}

void
SramTraceWriter::flush()
{
    flushSink(ifmap_);
    flushSink(filter_);
    flushSink(oread_);
    flushSink(ofmap_);
}

void
SramTraceWriter::endLayer(Cycle /*total_cycles*/)
{
    flush();
}

/**
 * Constant-delta fast path: every number of the previous row is still
 * in the staging buffer as text, so the new row is that text copied
 * forward with `delta` decimal-added in place (low digit first,
 * rippling carries). A number whose digit count would change falls
 * back to std::to_chars for that field only. Caller guarantees the
 * row fits and the previous row's offsets are valid.
 */
void
SramTraceWriter::patchRow(Sink& sink, char*& p,
                          std::span<const Addr> addrs, Addr delta)
{
    // Decimal digits of the delta, least significant first.
    unsigned ddig[10];
    int nd = 0;
    for (Addr t = delta; t != 0; t /= 10)
        ddig[nd++] = static_cast<unsigned>(t % 10);

    // Everything the loop touches lives in locals: `p` arrives by
    // reference and char stores alias freely, so leaving these as
    // member/vector accesses would force reloads on every store.
    char* const base = sink.buf.data();
    std::uint32_t* const off = sink.prevOff.data();
    std::uint8_t* const lens = sink.prevLen.data();
    const Addr* const vals = addrs.data();
    const std::size_t n = addrs.size();
    char* q = p;
    for (std::size_t i = 0; i < n; ++i) {
        q[0] = ',';
        q[1] = ' ';
        q += 2;
        const char* src = base + off[i];
        std::size_t len = lens[i];
        bool redo = len > kPatchCopy;
        if (!redo) {
            // Fixed-width copy through a temp: src and q can be
            // within kPatchCopy bytes of each other on short rows,
            // and the tail bytes beyond `len` are don't-cares.
            char tmp[kPatchCopy];
            std::memcpy(tmp, src, kPatchCopy);
            std::memcpy(q, tmp, kPatchCopy);
            char* const last = q + len - 1;
            for (int k = 0; k < nd; ++k) {
                char* d = last - k;
                if (d < q) {
                    redo = true;
                    break;
                }
                unsigned v = static_cast<unsigned>(*d - '0') + ddig[k];
                if (v >= 10) {
                    v -= 10;
                    char* c = d - 1;
                    for (;;) {
                        if (c < q) {
                            redo = true;
                            break;
                        }
                        if (*c == '9') {
                            *c = '0';
                            --c;
                        } else {
                            ++*c;
                            break;
                        }
                    }
                    if (redo)
                        break;
                }
                *d = static_cast<char>('0' + v);
            }
        }
        if (redo) {
            // Digit count changed (or the text is unusually long):
            // the patched bytes are garbage, overwrite them whole.
            len = static_cast<std::size_t>(
                std::to_chars(q, q + kMaxField, vals[i]).ptr - q);
        }
        off[i] = static_cast<std::uint32_t>(q - base);
        lens[i] = static_cast<std::uint8_t>(len);
        q += len;
    }
    p = q;
}

void
SramTraceWriter::writeRow(Sink& sink, Cycle clk,
                          std::span<const Addr> addrs)
{
    // Worst case: every field at full width plus the newline.
    const std::size_t need = (addrs.size() + 1) * kMaxField + 1;
    if (sink.used + need > sink.buf.size()) {
        flushSink(sink);
        if (need > sink.buf.size())
            sink.buf.resize(std::max(need, kSinkBufBytes));
    }
    char* p = sink.buf.data() + sink.used;
    p = std::to_chars(p, p + kMaxField, clk).ptr;

    // Probe for the constant-delta pattern. Comparing against the
    // last slow-path row plus the accumulated delta (instead of the
    // immediately preceding row) means a run of patched rows never
    // copies values back — only `accum` advances. The OR-reduction
    // has no early exit so it vectorizes; failed probes are rare and
    // short. Unsigned subtraction sends negative deltas above the
    // cap, so they share the slow path with irregular rows.
    Addr delta = 0;
    bool patch = sink.havePrev && !addrs.empty()
        && addrs.size() == sink.baseVals.size();
    if (patch) {
        const Addr* base_vals = sink.baseVals.data();
        const Addr want = addrs[0] - base_vals[0];
        Addr diff = 0;
        for (std::size_t i = 1; i < addrs.size(); ++i)
            diff |= (addrs[i] - base_vals[i]) ^ want;
        delta = want - sink.accum;
        patch = diff == 0 && delta <= kMaxPatchDelta;
        if (patch)
            sink.accum = want;
    }

    if (patch) {
        patchRow(sink, p, addrs, delta);
    } else {
        char* const base = sink.buf.data();
        sink.baseVals.assign(addrs.begin(), addrs.end());
        sink.accum = 0;
        sink.prevOff.resize(addrs.size());
        sink.prevLen.resize(addrs.size());
        for (std::size_t i = 0; i < addrs.size(); ++i) {
            *p++ = ',';
            *p++ = ' ';
            char* const q =
                std::to_chars(p, p + kMaxField, addrs[i]).ptr;
            sink.prevOff[i] = static_cast<std::uint32_t>(p - base);
            sink.prevLen[i] = static_cast<std::uint8_t>(q - p);
            p = q;
        }
        sink.havePrev = !addrs.empty();
    }
    *p++ = '\n';
    sink.used = static_cast<std::size_t>(p - sink.buf.data());
}

void
SramTraceWriter::cycle(Cycle clk, std::span<const Addr> ifmap_reads,
                       std::span<const Addr> filter_reads,
                       std::span<const Addr> ofmap_reads,
                       std::span<const Addr> ofmap_writes)
{
    if (ifmap_.out && !ifmap_reads.empty()) {
        writeRow(ifmap_, clk, ifmap_reads);
        ++rows_;
    }
    if (filter_.out && !filter_reads.empty()) {
        writeRow(filter_, clk, filter_reads);
        ++rows_;
    }
    if (oread_.out && !ofmap_reads.empty()) {
        writeRow(oread_, clk, ofmap_reads);
        ++rows_;
        ++oreadRows_;
    }
    if (ofmap_.out && !ofmap_writes.empty()) {
        writeRow(ofmap_, clk, ofmap_writes);
        ++rows_;
    }
}

TracingMemory::TracingMemory(MainMemory& inner, std::uint32_t word_bytes)
    : inner_(inner), wordBytes_(word_bytes == 0 ? 1 : word_bytes)
{
}

Cycle
TracingMemory::issueRead(Addr addr, Count words, Cycle now)
{
    records_.push_back({now, addr * wordBytes_, words * wordBytes_,
                        false});
    const Cycle done = inner_.issueRead(addr, words, now);
    ++stats_.readRequests;
    stats_.readWords += words;
    stats_.totalReadLatency += done - now;
    return done;
}

Cycle
TracingMemory::issueWrite(Addr addr, Count words, Cycle now)
{
    records_.push_back({now, addr * wordBytes_, words * wordBytes_,
                        true});
    const Cycle done = inner_.issueWrite(addr, words, now);
    ++stats_.writeRequests;
    stats_.writeWords += words;
    stats_.totalWriteLatency += done - now;
    return done;
}

void
writeMemTrace(std::ostream& out,
              const std::vector<MemTraceRecord>& records)
{
    out << "# cycle, address, bytes, type\n";
    for (const auto& rec : records) {
        out << rec.cycle << ", " << rec.byteAddr << ", " << rec.bytes
            << ", " << (rec.write ? 'W' : 'R') << "\n";
    }
}

std::vector<MemTraceRecord>
readMemTrace(std::istream& in)
{
    std::vector<MemTraceRecord> records;
    std::string line;
    int line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        const std::string trimmed = trim(line);
        if (trimmed.empty() || trimmed[0] == '#')
            continue;
        const auto cells = splitCsvLine(trimmed);
        if (cells.size() < 4)
            fatal("memory trace line %d: expected 4 fields", line_no);
        MemTraceRecord rec;
        char* end = nullptr;
        rec.cycle = std::strtoull(cells[0].c_str(), &end, 0);
        if (*end != '\0')
            fatal("memory trace line %d: bad cycle '%s'", line_no,
                  cells[0].c_str());
        rec.byteAddr = std::strtoull(cells[1].c_str(), &end, 0);
        if (*end != '\0')
            fatal("memory trace line %d: bad address '%s'", line_no,
                  cells[1].c_str());
        rec.bytes = std::strtoull(cells[2].c_str(), &end, 0);
        if (*end != '\0')
            fatal("memory trace line %d: bad size '%s'", line_no,
                  cells[2].c_str());
        if (cells[3] == "W" || cells[3] == "w") {
            rec.write = true;
        } else if (cells[3] == "R" || cells[3] == "r") {
            rec.write = false;
        } else {
            fatal("memory trace line %d: bad type '%s'", line_no,
                  cells[3].c_str());
        }
        records.push_back(rec);
    }
    return records;
}

} // namespace scalesim::systolic
