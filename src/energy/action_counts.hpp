/**
 * @file
 * Action-count generation (paper §VII-C/D/E): the trace-driven counter
 * distinguishes repeated from random SRAM accesses using the 'row
 * size' / 'bank size' lookup, and the analytical estimator produces
 * the same structure from closed-form access counts for fast sweeps.
 */

#ifndef SCALESIM_ENERGY_ACTION_COUNTS_HH
#define SCALESIM_ENERGY_ACTION_COUNTS_HH

#include <vector>

#include "common/config.hpp"
#include "systolic/demand.hpp"

namespace scalesim::energy
{

/** Random/repeat/idle split for one smart-buffer SRAM. */
struct SramActionCounts
{
    Count readRandom = 0;
    Count readRepeat = 0;
    Count writeRandom = 0;
    Count writeRepeat = 0;
    Count idle = 0;

    Count reads() const { return readRandom + readRepeat; }
    Count writes() const { return writeRandom + writeRepeat; }

    void
    merge(const SramActionCounts& o)
    {
        readRandom += o.readRandom;
        readRepeat += o.readRepeat;
        writeRandom += o.writeRandom;
        writeRepeat += o.writeRepeat;
        idle += o.idle;
    }
};

/** Complete action-count summary for one layer (or accumulated run). */
struct ActionCounts
{
    // MAC action types (§VII-E).
    Count macRandom = 0;
    Count macConstant = 0; ///< clocked, no new data
    Count macGated = 0;    ///< clock-gated idle PEs

    // PE scratchpads (§VII-E).
    Count ifmapSpadRead = 0;
    Count ifmapSpadWrite = 0;
    Count weightSpadRead = 0;
    Count weightSpadWrite = 0;
    Count psumSpadRead = 0;
    Count psumSpadWrite = 0;

    // Smart-buffer SRAMs (§VII-C/D).
    SramActionCounts ifmapSram;
    SramActionCounts filterSram;
    SramActionCounts ofmapSram;

    // Vector/SIMD unit lane-operations (§III-C tails).
    Count vectorOps = 0;

    // Main memory and interconnect.
    Count dramReadWords = 0;
    Count dramWriteWords = 0;
    Count nocWords = 0;

    Cycle cycles = 0;

    void merge(const ActionCounts& other);
};

/**
 * Trace-driven action counter. Repeated-access lookup (§VII-C): each
 * SRAM keeps `bankSize` most-recently-used row buffers of `rowSize`
 * words; an access falling in a live row buffer is a repeat.
 */
class ActionCountVisitor : public systolic::DemandVisitor
{
  public:
    ActionCountVisitor(const EnergyConfig& cfg, bool clock_gating = true);

    void beginLayer(const systolic::FoldGrid& grid,
                    const systolic::OperandMap& operands) override;
    void cycle(Cycle clk, std::span<const Addr> ifmap_reads,
               std::span<const Addr> filter_reads,
               std::span<const Addr> ofmap_reads,
               std::span<const Addr> ofmap_writes) override;
    void endLayer(Cycle total_cycles) override;

    const ActionCounts& counts() const { return counts_; }

  private:
    /**
     * Banked MRU row-buffer trackers for the repeat lookup, stored as
     * one flat `banks * capacity` array (MRU first within each bank)
     * so the per-address hot path is a single indexed load instead of
     * a pointer chase through per-bank vectors.
     */
    struct RowTrackerSet
    {
        std::vector<std::uint64_t> rows; ///< banks * capacity, MRU 1st
        std::vector<std::uint32_t> sizes; ///< live rows per bank
        std::uint32_t capacity = 4;
        void reset(std::uint32_t banks, std::uint32_t cap);
        /** Classic MRU lookup+update; true when `row` was live. */
        bool access(std::uint64_t bank, std::uint64_t row);
    };

    void countAccesses(RowTrackerSet& trackers,
                       std::span<const Addr> addrs, Count& random,
                       Count& repeat);

    /** rowShift_ sentinel: row size is not a power of two, divide. */
    static constexpr std::uint32_t kNoRowShift = ~0u;

    EnergyConfig cfg_;
    bool clockGating_;
    /** log2(rowSize) when rowSize is a power of two, else sentinel. */
    std::uint32_t rowShift_ = kNoRowShift;
    ActionCounts counts_;
    /** counts_ snapshot taken at beginLayer, for per-layer deltas. */
    ActionCounts layerStart_;
    // One tracker bank set per SRAM stream (rows hash across banks),
    // each bank holding `bankSize` open row buffers.
    RowTrackerSet ifmapRows_;
    RowTrackerSet filterRows_;
    RowTrackerSet ofmapReadRows_;
    RowTrackerSet ofmapWriteRows_;
    double utilization_ = 0.0;
    std::uint64_t numPes_ = 0;
    std::uint32_t arrayRows_ = 1;
    std::uint32_t arrayCols_ = 1;
};

/**
 * Closed-form action counts for the analytical path. Streaming-operand
 * accesses are mostly sequential, so their repeat fraction is
 * (rowSize - 1) / rowSize; stationary-tile loads stride across the
 * operand and count as random.
 */
ActionCounts analyticalActionCounts(const systolic::FoldGrid& grid,
                                    const EnergyConfig& cfg,
                                    bool clock_gating = true);

} // namespace scalesim::energy

#endif // SCALESIM_ENERGY_ACTION_COUNTS_HH
