/**
 * @file
 * Trace-level multi-core timing (paper §III-B's hierarchical memory in
 * action): each core runs its spatial partition through its own
 * double-buffered L1 scratchpad, all stacked on one shared L2 that
 * deduplicates the row/column-replicated operand partitions, backed by
 * a common main memory. Complements the analytical MultiCoreSimulator:
 * this path surfaces L2 hit rates, the DRAM traffic the L2 saves, and
 * bandwidth-contention effects between cores.
 */

#ifndef SCALESIM_MULTICORE_TRACE_SIM_HH
#define SCALESIM_MULTICORE_TRACE_SIM_HH

#include <memory>
#include <vector>

#include "common/config.hpp"
#include "multicore/shared_l2.hpp"
#include "systolic/scratchpad.hpp"

namespace scalesim::multicore
{

/** Configuration of the trace-level multi-core system. */
struct MultiCoreTraceConfig
{
    std::uint64_t pr = 2;
    std::uint64_t pc = 2;
    std::uint32_t arrayRows = 32;
    std::uint32_t arrayCols = 32;
    Dataflow dataflow = Dataflow::OutputStationary;
    systolic::ScratchpadConfig l1;
    SharedL2Config l2;
    bool useL2 = true;
    /** Backing main-memory bandwidth (words/cycle). */
    double dramWordsPerCycle = 32.0;
};

/** Outcome of one layer on the multi-core system. */
struct MultiCoreTraceResult
{
    /** Slowest core's wall-clock cycles. */
    Cycle makespan = 0;
    std::vector<systolic::LayerTiming> perCore;
    SharedL2Stats l2;
    /** Words the backing main memory actually served. */
    std::uint64_t dramReadWords = 0;
    std::uint64_t dramWriteWords = 0;
    /** Sum of words the cores requested (pre-dedup). */
    std::uint64_t l1ReadWords = 0;
};

/** The trace-level multi-core simulator. */
class MultiCoreTraceSimulator
{
  public:
    explicit MultiCoreTraceSimulator(const MultiCoreTraceConfig& cfg);
    ~MultiCoreTraceSimulator();

    /**
     * Run one layer, spatially partitioned Pr x Pc over the mapped
     * (Sr, Sc) dimensions; each core's partition keeps its global
     * operand addresses so shared partitions deduplicate in the L2.
     */
    MultiCoreTraceResult runLayer(const LayerSpec& layer);

  private:
    MultiCoreTraceConfig cfg_;
    std::unique_ptr<systolic::BandwidthMemory> dram_;
    std::unique_ptr<SharedL2> l2_;
    systolic::MainMemory* coreView_; // L2 if enabled, else DRAM
};

} // namespace scalesim::multicore

#endif // SCALESIM_MULTICORE_TRACE_SIM_HH
