# Empty compiler generated dependencies file for scalesim_energy.
# This may be replaced when dependencies are built.
