/**
 * @file
 * Shared helpers for the paper-reproduction bench binaries: aligned
 * table printing and simple timers. Each bench regenerates one table
 * or figure of the SCALE-Sim v3 paper and prints the rows/series the
 * paper reports; EXPERIMENTS.md records paper-vs-measured shape.
 */

#ifndef SCALESIM_BENCH_UTIL_HH
#define SCALESIM_BENCH_UTIL_HH

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "common/parallel.hpp"

namespace benchutil
{

/** Fixed-width row printer: pass pre-formatted cells. */
class Table
{
  public:
    explicit Table(std::vector<int> widths) : widths_(std::move(widths))
    {}

    void
    row(const std::vector<std::string>& cells) const
    {
        std::string line;
        for (std::size_t i = 0; i < cells.size(); ++i) {
            std::string cell = cells[i];
            const int width = i < widths_.size()
                ? widths_[i] : 12;
            if (static_cast<int>(cell.size()) < width)
                cell.resize(static_cast<std::size_t>(width), ' ');
            line += cell;
            line += "  ";
        }
        std::printf("%s\n", line.c_str());
    }

    void
    rule() const
    {
        int total = 0;
        for (int w : widths_)
            total += w + 2;
        std::printf("%s\n", std::string(
            static_cast<std::size_t>(total), '-').c_str());
    }

  private:
    std::vector<int> widths_;
};

inline std::string
fmt(const char* pattern, double value)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), pattern, value);
    return buf;
}

inline std::string
num(std::uint64_t value)
{
    return std::to_string(value);
}

/** Wall-clock timer in seconds. */
class Timer
{
  public:
    Timer() : start_(clock::now()) {}
    double
    seconds() const
    {
        return std::chrono::duration<double>(clock::now() - start_)
            .count();
    }
    void reset() { start_ = clock::now(); }

  private:
    using clock = std::chrono::steady_clock;
    clock::time_point start_;
};

/**
 * Worker threads for the bench's config points, from `--jobs N` (or
 * `-j N`) on the command line; `fallback` when absent. N = 0 means
 * auto (SCALESIM_JOBS env var, then hardware concurrency).
 */
inline unsigned
jobsFromArgs(int argc, char** argv, unsigned fallback = 1)
{
    for (int i = 1; i + 1 < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--jobs" || arg == "-j") {
            const long parsed = std::strtol(argv[i + 1], nullptr, 10);
            return parsed >= 0 ? static_cast<unsigned>(parsed)
                               : fallback;
        }
    }
    return fallback;
}

/**
 * Evaluate `n` independent config points on up to `jobs` threads.
 * Each point must own its simulator state and store results by index;
 * with that discipline the output is identical for every jobs value.
 */
inline void
forEachPoint(std::uint64_t n, unsigned jobs,
             const std::function<void(std::uint64_t)>& body)
{
    scalesim::parallelFor(n, jobs, body);
}

} // namespace benchutil

#endif // SCALESIM_BENCH_UTIL_HH
