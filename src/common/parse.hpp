/**
 * @file
 * Locale-independent number parsing. std::strtod honors LC_NUMERIC, so
 * a process running under a comma-decimal locale (de_DE, fr_FR, ...)
 * silently mis-parses "0.5" — the front-ends (INI configs, JSON
 * requests) must behave identically regardless of the host locale.
 * parseDouble is std::from_chars-based (locale-free by specification),
 * with a locale-pinned strtod fallback only for the out-of-range
 * saturation value.
 */

#ifndef SCALESIM_COMMON_PARSE_HH
#define SCALESIM_COMMON_PARSE_HH

#include <cstdint>
#include <string_view>

namespace scalesim
{

/** Outcome of parseDouble. */
enum class NumberParse
{
    Ok,         ///< the whole text parsed; `value` is exact
    Bad,        ///< not a number, or trailing garbage
    OutOfRange, ///< magnitude over/underflows; `value` is saturated
};

/**
 * Parse `text` as a decimal floating-point number ("0.5", "-1e9",
 * "inf", "nan"; an optional leading '+' is accepted for strtod
 * compatibility). The entire text must be consumed — trailing garbage
 * is Bad. Never influenced by the global locale: "0.5" is always one
 * half and "0,5" is always rejected. On OutOfRange, `value` holds the
 * saturated result (±inf on overflow, ±0 on underflow).
 */
NumberParse parseDouble(std::string_view text, double& value);

/**
 * Parse `text` as a base-10 signed integer. Same contract as
 * parseDouble: the whole text must be consumed, an optional leading
 * '+' is accepted, and the global locale is never consulted. On
 * OutOfRange, `value` saturates to the nearest representable bound.
 */
NumberParse parseInt64(std::string_view text, std::int64_t& value);

/**
 * Parse `text` as a base-10 unsigned integer. A leading '-' is Bad
 * (never the strtoul-style wraparound). Otherwise as parseInt64.
 */
NumberParse parseUint64(std::string_view text, std::uint64_t& value);

} // namespace scalesim

#endif // SCALESIM_COMMON_PARSE_HH
