# Empty dependencies file for scalesim_cli.
# This may be replaced when dependencies are built.
