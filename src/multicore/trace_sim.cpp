#include "multicore/trace_sim.hpp"

#include "common/log.hpp"

namespace scalesim::multicore
{

MultiCoreTraceSimulator::MultiCoreTraceSimulator(
    const MultiCoreTraceConfig& cfg)
    : cfg_(cfg)
{
    if (cfg_.pr == 0 || cfg_.pc == 0)
        fatal("multi-core grid must be non-zero");
    // Cores execute concurrently but are simulated one after the
    // other; shared-resource contention is approximated by giving
    // every core a static 1/numCores share of the L2 port and DRAM
    // bandwidth, with the time cursors rewound between cores.
    const double cores = static_cast<double>(cfg_.pr * cfg_.pc);
    dram_ = std::make_unique<systolic::BandwidthMemory>(
        cfg_.dramWordsPerCycle / cores);
    if (cfg_.useL2) {
        SharedL2Config l2_cfg = cfg_.l2;
        l2_cfg.wordsPerCycle = std::max(1.0,
                                        l2_cfg.wordsPerCycle / cores);
        l2_ = std::make_unique<SharedL2>(l2_cfg, *dram_);
        coreView_ = l2_.get();
    } else {
        coreView_ = dram_.get();
    }
}

MultiCoreTraceSimulator::~MultiCoreTraceSimulator() = default;

namespace
{

std::vector<std::uint64_t>
shareStarts(std::uint64_t total, std::uint64_t parts)
{
    // Balanced split; entry i holds the start offset, entry parts the
    // total (so share i spans [starts[i], starts[i+1])).
    std::vector<std::uint64_t> starts(parts + 1, 0);
    const std::uint64_t base = total / parts;
    std::uint64_t rem = total % parts;
    for (std::uint64_t i = 0; i < parts; ++i) {
        starts[i + 1] = starts[i] + base + (i < rem ? 1 : 0);
    }
    return starts;
}

} // namespace

MultiCoreTraceResult
MultiCoreTraceSimulator::runLayer(const LayerSpec& layer)
{
    const GemmDims gemm = layer.toGemm();
    const MappedDims mapped = systolic::mapGemmConventional(
        gemm, cfg_.dataflow);
    const auto sr_starts = shareStarts(mapped.sr, cfg_.pr);
    const auto sc_starts = shareStarts(mapped.sc, cfg_.pc);

    MemoryConfig mem;
    const systolic::OperandMap global(gemm, mem);

    const systolic::MemoryStats dram_before = dram_->stats();
    const SharedL2Stats l2_before = l2_ ? l2_->l2Stats()
                                        : SharedL2Stats{};
    if (l2_)
        l2_->invalidate();

    MultiCoreTraceResult result;
    result.perCore.reserve(cfg_.pr * cfg_.pc);

    for (std::uint64_t i = 0; i < cfg_.pr; ++i) {
        for (std::uint64_t j = 0; j < cfg_.pc; ++j) {
            const std::uint64_t sr_off = sr_starts[i];
            const std::uint64_t sr_share = sr_starts[i + 1] - sr_off;
            const std::uint64_t sc_off = sc_starts[j];
            const std::uint64_t sc_share = sc_starts[j + 1] - sc_off;
            if (sr_share == 0 || sc_share == 0) {
                result.perCore.emplace_back();
                continue;
            }

            // Share dims + global-address operand view (bases offset,
            // pitches global) so replicated partitions deduplicate.
            GemmDims share = gemm;
            systolic::OperandMap view = global;
            switch (cfg_.dataflow) {
              case Dataflow::OutputStationary:
                share.m = sr_share;
                share.n = sc_share;
                view.ifmapBase += sr_off * gemm.k;
                view.filterBase += sc_off;
                view.ofmapBase += sr_off * gemm.n + sc_off;
                break;
              case Dataflow::WeightStationary:
                share.k = sr_share;
                share.n = sc_share;
                view.ifmapBase += sr_off;
                view.filterBase += sr_off * gemm.n + sc_off;
                view.ofmapBase += sc_off;
                break;
              case Dataflow::InputStationary:
                share.k = sr_share;
                share.m = sc_share;
                view.ifmapBase += sc_off * gemm.k + sr_off;
                view.filterBase += sr_off * gemm.n;
                view.ofmapBase += sc_off * gemm.n;
                break;
            }
            const systolic::FoldGrid grid(share, cfg_.dataflow,
                                          cfg_.arrayRows,
                                          cfg_.arrayCols);
            dram_->resetTimeline();
            if (l2_)
                l2_->resetTimeline();
            systolic::DoubleBufferedScratchpad l1(cfg_.l1, *coreView_);
            const auto timing = l1.runLayer(grid, view);
            result.makespan = std::max(result.makespan,
                                       timing.totalCycles);
            result.l1ReadWords += timing.dramReadWords;
            result.perCore.push_back(timing);
        }
    }

    const systolic::MemoryStats& dram_after = dram_->stats();
    result.dramReadWords = dram_after.readWords
        - dram_before.readWords;
    result.dramWriteWords = dram_after.writeWords
        - dram_before.writeWords;
    if (l2_) {
        result.l2 = l2_->l2Stats();
        result.l2.lookups -= l2_before.lookups;
        result.l2.hits -= l2_before.hits;
        result.l2.hitWords -= l2_before.hitWords;
        result.l2.missWords -= l2_before.missWords;
        result.l2.writeWords -= l2_before.writeWords;
    }
    return result;
}

} // namespace scalesim::multicore
