# Empty dependencies file for table6_multicore_dataflow.
# This may be replaced when dependencies are built.
