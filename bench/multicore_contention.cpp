/**
 * @file
 * Static-vs-shared contention divergence benchmark: runs the trace-mode
 * multi-core simulator on a sweep of grid/bandwidth/dataflow points in
 * both contention models and records, per point, the two makespans,
 * their divergence, the shared model's arbitration conflict count and
 * wall-clock cost into BENCH_multicore.json.
 *
 *   multicore_contention [output.json] [--jobs N] [--mc-jobs N]
 *
 * Points are independent (each owns both simulators), so `--jobs N`
 * sweeps them on N threads — results are identical for every N; the
 * TSan CI job runs this with --jobs 4 to race-check the interleaved
 * engine.
 *
 * Each point's shared run is repeated on the epoch-parallel engine
 * (`--mc-jobs N` workers, default 4); the bench fails unless the epoch
 * stats dump is byte-identical to serial, and records the measured
 * parallel-vs-serial wall-clock speedup per point. The speedup is
 * meaningful only when hardwareThreads >= mcJobs — the JSON records
 * both so gates can skip enforcement on small CI boxes.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "common/log.hpp"
#include "multicore/trace_sim.hpp"
#include "obs/stats.hpp"

using namespace scalesim;
using namespace scalesim::multicore;

namespace
{

struct Point
{
    const char* name;
    std::uint64_t pr, pc;
    Dataflow dataflow;
    bool useL2;
    double dramWordsPerCycle;
    LayerSpec layer;
};

struct Outcome
{
    Cycle staticMakespan = 0;
    Cycle sharedMakespan = 0;
    std::uint64_t arbConflicts = 0;
    std::uint64_t grants = 0;
    std::uint64_t stallOnL2 = 0;
    Cycle epochMakespan = 0;
    bool epochBitIdentical = false;
    double staticSeconds = 0.0;
    double sharedSeconds = 0.0;
    double epochSeconds = 0.0;

    double
    parallelSpeedup() const
    {
        return epochSeconds > 0.0 ? sharedSeconds / epochSeconds : 0.0;
    }

    double
    divergencePct() const
    {
        return staticMakespan
            ? 100.0
                * (static_cast<double>(sharedMakespan)
                       / static_cast<double>(staticMakespan)
                   - 1.0)
            : 0.0;
    }
};

MultiCoreTraceConfig
configFor(const Point& p, ContentionModel model)
{
    MultiCoreTraceConfig cfg;
    cfg.pr = p.pr;
    cfg.pc = p.pc;
    cfg.arrayRows = cfg.arrayCols = 16;
    cfg.dataflow = p.dataflow;
    cfg.useL2 = p.useL2;
    cfg.dramWordsPerCycle = p.dramWordsPerCycle;
    cfg.l1.ifmapWords = 4096;
    cfg.l1.filterWords = 4096;
    cfg.contention = model;
    return cfg;
}

std::string
statsDump(const MultiCoreTraceResult& result)
{
    scalesim::obs::StatsRegistry reg;
    result.registerStats(reg);
    std::ostringstream out;
    reg.dump(out);
    return out.str();
}

Outcome
runPoint(const Point& p, unsigned mc_jobs)
{
    Outcome out;
    benchutil::Timer t;
    MultiCoreTraceSimulator st(configFor(p, ContentionModel::Static));
    out.staticMakespan = st.runLayer(p.layer).makespan;
    out.staticSeconds = t.seconds();
    t.reset();
    MultiCoreTraceSimulator sh(configFor(p, ContentionModel::Shared));
    const auto shared = sh.runLayer(p.layer);
    out.sharedSeconds = t.seconds();
    out.sharedMakespan = shared.makespan;
    out.arbConflicts = shared.arb.arbConflicts;
    out.grants = shared.arb.grants;
    for (const auto& port : shared.ports)
        out.stallOnL2 += port.waitCycles;
    // Epoch-parallel leg: same shared timeline, worker pool attached.
    MultiCoreTraceConfig epoch_cfg = configFor(p,
                                               ContentionModel::Shared);
    epoch_cfg.engine = MultiCoreEngine::Epoch;
    epoch_cfg.jobs = mc_jobs;
    t.reset();
    MultiCoreTraceSimulator ep(epoch_cfg);
    const auto epoch = ep.runLayer(p.layer);
    out.epochSeconds = t.seconds();
    out.epochMakespan = epoch.makespan;
    out.epochBitIdentical = statsDump(epoch) == statsDump(shared);
    return out;
}

} // namespace

int
main(int argc, char** argv)
{
    std::string out_path = "BENCH_multicore.json";
    if (argc > 1 && argv[1][0] != '-')
        out_path = argv[1];
    const unsigned jobs = benchutil::jobsFromArgs(argc, argv, 1);
    unsigned mc_jobs = 4;
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], "--mc-jobs") == 0)
            mc_jobs = static_cast<unsigned>(
                std::strtoul(argv[i + 1], nullptr, 10));
    }
    if (mc_jobs == 0)
        mc_jobs = 1;
    const unsigned hw_threads = std::thread::hardware_concurrency();

    const std::vector<Point> points = {
        {"ws_l2_ample", 2, 2, Dataflow::WeightStationary, true, 32.0,
         LayerSpec::gemm("g", 256, 128, 128)},
        {"ws_l2_starved", 2, 2, Dataflow::WeightStationary, true, 4.0,
         LayerSpec::gemm("g", 256, 128, 128)},
        {"os_nol2_starved", 2, 2, Dataflow::OutputStationary, false,
         4.0, LayerSpec::gemm("g", 96, 64, 48)},
        {"os_nol2_ample", 2, 2, Dataflow::OutputStationary, false,
         64.0, LayerSpec::gemm("g", 96, 64, 48)},
        {"is_conv_l2", 1, 4, Dataflow::InputStationary, true, 8.0,
         LayerSpec::conv("c", 14, 14, 3, 3, 32, 64, 1)},
        {"ws_wide_grid", 4, 4, Dataflow::WeightStationary, true, 16.0,
         LayerSpec::gemm("g", 512, 256, 256)},
    };

    std::vector<Outcome> outcomes(points.size());
    benchutil::Timer total;
    benchutil::forEachPoint(points.size(), jobs,
                            [&](std::uint64_t i) {
                                outcomes[i] = runPoint(points[i],
                                                       mc_jobs);
                            });
    const double total_s = total.seconds();

    benchutil::Table table({16, 12, 12, 10, 12, 10, 10});
    table.row({"point", "static", "shared", "diverge", "arbConf",
               "wall(s)", "par(x)"});
    table.rule();
    for (std::size_t i = 0; i < points.size(); ++i) {
        const auto& o = outcomes[i];
        table.row({points[i].name, benchutil::num(o.staticMakespan),
                   benchutil::num(o.sharedMakespan),
                   benchutil::fmt("%+.1f%%", o.divergencePct()),
                   benchutil::num(o.arbConflicts),
                   benchutil::fmt("%.3f",
                                  o.staticSeconds + o.sharedSeconds),
                   benchutil::fmt("%.2f", o.parallelSpeedup())});
    }

    std::ofstream out(out_path);
    if (!out)
        fatal("cannot write %s", out_path.c_str());
    bool all_identical = true;
    for (const auto& o : outcomes)
        all_identical = all_identical && o.epochBitIdentical;
    out << "{\n"
        << "  \"benchmark\": \"multicore_contention\",\n"
        << "  \"jobs\": " << jobs << ",\n"
        << "  \"mcJobs\": " << mc_jobs << ",\n"
        << "  \"hardwareThreads\": " << hw_threads << ",\n"
        << "  \"epochBitIdentical\": "
        << (all_identical ? "true" : "false") << ",\n"
        << "  \"totalWallSeconds\": "
        << benchutil::fmt("%.6f", total_s) << ",\n"
        << "  \"points\": [\n";
    for (std::size_t i = 0; i < points.size(); ++i) {
        const auto& p = points[i];
        const auto& o = outcomes[i];
        out << "    {\n"
            << "      \"name\": \"" << p.name << "\",\n"
            << "      \"grid\": \"" << p.pr << "x" << p.pc << "\",\n"
            << "      \"dataflow\": \"" << toString(p.dataflow)
            << "\",\n"
            << "      \"useL2\": " << (p.useL2 ? "true" : "false")
            << ",\n"
            << "      \"dramWordsPerCycle\": "
            << benchutil::fmt("%.1f", p.dramWordsPerCycle) << ",\n"
            << "      \"staticMakespan\": " << o.staticMakespan
            << ",\n"
            << "      \"sharedMakespan\": " << o.sharedMakespan
            << ",\n"
            << "      \"divergencePct\": "
            << benchutil::fmt("%.3f", o.divergencePct()) << ",\n"
            << "      \"arbConflicts\": " << o.arbConflicts << ",\n"
            << "      \"arbGrants\": " << o.grants << ",\n"
            << "      \"stallOnL2\": " << o.stallOnL2 << ",\n"
            << "      \"epochMakespan\": " << o.epochMakespan << ",\n"
            << "      \"epochBitIdentical\": "
            << (o.epochBitIdentical ? "true" : "false") << ",\n"
            << "      \"staticSeconds\": "
            << benchutil::fmt("%.6f", o.staticSeconds) << ",\n"
            << "      \"sharedSeconds\": "
            << benchutil::fmt("%.6f", o.sharedSeconds) << ",\n"
            << "      \"epochSeconds\": "
            << benchutil::fmt("%.6f", o.epochSeconds) << ",\n"
            << "      \"parallelSpeedup\": "
            << benchutil::fmt("%.3f", o.parallelSpeedup()) << "\n"
            << "    }" << (i + 1 < points.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    std::printf("wrote %s (%u jobs, %.3f s)\n", out_path.c_str(), jobs,
                total_s);

    // The starved no-L2 point is the acceptance check: real collisions
    // must make the shared model strictly slower than the 1/N split.
    const Outcome& starved = outcomes[2];
    if (starved.sharedMakespan <= starved.staticMakespan
        || starved.arbConflicts == 0) {
        std::fprintf(stderr,
                     "FAIL: starved point shows no contention "
                     "divergence\n");
        return 1;
    }
    // The epoch engine must be bit-identical to serial on every point,
    // regardless of worker count or host thread count.
    if (!all_identical) {
        for (std::size_t i = 0; i < points.size(); ++i)
            if (!outcomes[i].epochBitIdentical)
                std::fprintf(stderr,
                             "FAIL: epoch engine diverged from serial "
                             "on point %s\n",
                             points[i].name);
        return 1;
    }
    return 0;
}
