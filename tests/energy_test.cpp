/**
 * @file
 * Unit tests for the energy module: ERT node scaling, MAC/scratchpad/
 * SRAM action-count rules (§VII), trace-vs-analytical consistency,
 * repeated-access lookup behavior, and the energy/power model.
 */

#include <gtest/gtest.h>

#include "common/log.hpp"
#include "energy/action_counts.hpp"
#include "energy/model.hpp"
#include "systolic/demand.hpp"

using namespace scalesim;
using namespace scalesim::energy;
using namespace scalesim::systolic;

namespace
{

OperandMap
makeOperands(const GemmDims& gemm)
{
    MemoryConfig mem;
    return OperandMap(gemm, mem);
}

ActionCounts
traceCounts(const GemmDims& gemm, Dataflow df, std::uint32_t array,
            const EnergyConfig& cfg)
{
    DemandGenerator gen(gemm, df, array, array, makeOperands(gemm));
    ActionCountVisitor visitor(cfg);
    gen.run(visitor);
    return visitor.counts();
}

} // namespace

TEST(Ert, NodeScalingMonotone)
{
    const Ert n65 = Ert::forNode("65nm");
    const Ert n28 = Ert::forNode("28nm");
    EXPECT_LT(n28.macRandom, n65.macRandom);
    EXPECT_LT(n28.sramReadRandom, n65.sramReadRandom);
    EXPECT_LT(n28.dramPerWord, n65.dramPerWord);
    EXPECT_THROW(Ert::forNode("3nm"), FatalError);
}

TEST(Ert, ActionOrdering)
{
    const Ert ert = Ert::node65nm();
    // Gated < constant < random (the §VII-E clock-gating premise).
    EXPECT_LT(ert.macGated, ert.macConstant);
    EXPECT_LT(ert.macConstant, ert.macRandom);
    // Repeated accesses cost less than random ones (§VII-C: "differ by
    // more than double").
    EXPECT_LT(ert.sramReadRepeat * 2, ert.sramReadRandom * 1.001);
    EXPECT_LT(ert.sramWriteRepeat, ert.sramWriteRandom);
    // DRAM is far more expensive than SRAM.
    EXPECT_GT(ert.dramPerWord, 10 * ert.sramReadRandom);
}

TEST(ActionCounts, MacCountsMatchFormula)
{
    // MAC_random = #PEs x cycles x utilization = exact MAC count.
    const GemmDims gemm{32, 24, 40};
    EnergyConfig cfg;
    const ActionCounts counts = traceCounts(
        gemm, Dataflow::OutputStationary, 8, cfg);
    const systolic::FoldGrid grid(gemm, Dataflow::OutputStationary, 8,
                                  8);
    const Count pe_cycles = 64ull * grid.totalCycles();
    EXPECT_NEAR(static_cast<double>(counts.macRandom),
                static_cast<double>(gemm.macs()),
                static_cast<double>(gemm.macs()) * 0.01);
    EXPECT_EQ(counts.macRandom + counts.macGated, pe_cycles);
    EXPECT_EQ(counts.macConstant, 0u); // gating on by default
}

TEST(ActionCounts, GatingOffUsesConstant)
{
    const GemmDims gemm{16, 16, 16};
    EnergyConfig cfg;
    DemandGenerator gen(gemm, Dataflow::OutputStationary, 8, 8,
                        makeOperands(gemm));
    ActionCountVisitor visitor(cfg, /*clock_gating=*/false);
    gen.run(visitor);
    EXPECT_EQ(visitor.counts().macGated, 0u);
    EXPECT_GT(visitor.counts().macConstant, 0u);
}

TEST(ActionCounts, SpadRulesFollowSramReads)
{
    // §VII-E: spad writes = corresponding SRAM reads; spad reads = MACs.
    const GemmDims gemm{24, 16, 32};
    EnergyConfig cfg;
    const ActionCounts c = traceCounts(gemm,
                                       Dataflow::WeightStationary, 8,
                                       cfg);
    EXPECT_EQ(c.ifmapSpadWrite, c.ifmapSram.reads());
    EXPECT_EQ(c.weightSpadWrite, c.filterSram.reads());
    EXPECT_EQ(c.ifmapSpadRead, c.macRandom);
    EXPECT_EQ(c.psumSpadRead, c.macRandom);
    EXPECT_EQ(c.psumSpadWrite, c.macRandom);
}

TEST(ActionCounts, WeightStationaryMinimizesWeightSpadWrites)
{
    // The defining property of WS (§VII-E): far fewer weight-spad
    // writes than OS/IS on the same layer.
    const GemmDims gemm{64, 48, 56};
    EnergyConfig cfg;
    const auto ws = traceCounts(gemm, Dataflow::WeightStationary, 8,
                                cfg);
    const auto os = traceCounts(gemm, Dataflow::OutputStationary, 8,
                                cfg);
    const auto is = traceCounts(gemm, Dataflow::InputStationary, 8,
                                cfg);
    EXPECT_LT(ws.weightSpadWrite, os.weightSpadWrite);
    EXPECT_LT(ws.weightSpadWrite, is.weightSpadWrite);
    // And IS minimizes ifmap-spad writes.
    EXPECT_LT(is.ifmapSpadWrite, ws.ifmapSpadWrite);
}

TEST(ActionCounts, SequentialStreamsRepeat)
{
    // OS ifmap feeders walk stride-1 addresses: with rowSize 32 the
    // repeat fraction should approach 31/32.
    const GemmDims gemm{16, 16, 256};
    EnergyConfig cfg;
    cfg.rowSize = 32;
    const auto c = traceCounts(gemm, Dataflow::OutputStationary, 16,
                               cfg);
    const double repeat_fraction =
        static_cast<double>(c.ifmapSram.readRepeat)
        / static_cast<double>(c.ifmapSram.reads());
    EXPECT_GT(repeat_fraction, 0.85);
}

TEST(ActionCounts, UnitRowSizeMakesEverythingRandom)
{
    // With a one-word row buffer there is nothing to repeat from: a
    // repeat would require re-reading the exact same address while it
    // is still tracked, which streaming passes don't do.
    const GemmDims gemm{16, 128, 64};
    EnergyConfig cfg;
    cfg.rowSize = 1;
    const auto c = traceCounts(gemm, Dataflow::OutputStationary, 16,
                               cfg);
    const double random_fraction =
        static_cast<double>(c.filterSram.readRandom)
        / static_cast<double>(c.filterSram.reads());
    EXPECT_GT(random_fraction, 0.99);
}

TEST(ActionCounts, BiggerRowSizeMoreRepeats)
{
    // The 'row size' knob (§VII-C) directly controls how much repeated
    //-access energy saving is available.
    const GemmDims gemm{32, 32, 64};
    EnergyConfig small_cfg;
    small_cfg.rowSize = 2;
    EnergyConfig big_cfg;
    big_cfg.rowSize = 64;
    const auto small_rows = traceCounts(
        gemm, Dataflow::OutputStationary, 16, small_cfg);
    const auto big_rows = traceCounts(
        gemm, Dataflow::OutputStationary, 16, big_cfg);
    EXPECT_GT(big_rows.ifmapSram.readRepeat,
              small_rows.ifmapSram.readRepeat);
}

TEST(ActionCounts, IdleFormula)
{
    // idle = cycles x ports - used (§VII-D).
    const GemmDims gemm{16, 16, 16};
    EnergyConfig cfg;
    DemandGenerator gen(gemm, Dataflow::OutputStationary, 8, 8,
                        makeOperands(gemm));
    ActionCountVisitor visitor(cfg);
    gen.run(visitor);
    const auto& c = visitor.counts();
    const Count ports = 8ull * c.cycles;
    EXPECT_EQ(c.ifmapSram.idle, ports - c.ifmapSram.reads());
}

TEST(ActionCounts, TraceAndAnalyticalAgreeOnStructure)
{
    const GemmDims gemm{48, 32, 40};
    EnergyConfig cfg;
    for (auto df : {Dataflow::OutputStationary,
                    Dataflow::WeightStationary,
                    Dataflow::InputStationary}) {
        const systolic::FoldGrid grid(gemm, df, 8, 8);
        const ActionCounts analytical = analyticalActionCounts(grid,
                                                               cfg);
        const ActionCounts trace = traceCounts(gemm, df, 8, cfg);
        EXPECT_EQ(analytical.cycles, trace.cycles) << toString(df);
        EXPECT_EQ(analytical.macRandom, trace.macRandom)
            << toString(df);
        // Total SRAM access counts (random + repeat) are exact in both
        // paths; only the split is estimated analytically.
        EXPECT_EQ(analytical.ifmapSram.reads(),
                  trace.ifmapSram.reads()) << toString(df);
        EXPECT_EQ(analytical.filterSram.reads(),
                  trace.filterSram.reads()) << toString(df);
        EXPECT_EQ(analytical.ofmapSram.writes(),
                  trace.ofmapSram.writes()) << toString(df);
        EXPECT_EQ(analytical.nocWords, trace.nocWords) << toString(df);
    }
}

TEST(ActionCounts, MergeAccumulates)
{
    ActionCounts a, b;
    a.macRandom = 10;
    a.ifmapSram.readRandom = 5;
    b.macRandom = 7;
    b.ifmapSram.readRepeat = 3;
    b.cycles = 11;
    a.merge(b);
    EXPECT_EQ(a.macRandom, 17u);
    EXPECT_EQ(a.ifmapSram.readRandom, 5u);
    EXPECT_EQ(a.ifmapSram.readRepeat, 3u);
    EXPECT_EQ(a.cycles, 11u);
}

TEST(Model, EnergyPositiveAndDecomposed)
{
    const GemmDims gemm{32, 32, 32};
    const systolic::FoldGrid grid(gemm, Dataflow::OutputStationary, 8,
                                  8);
    EnergyConfig cfg;
    ActionCounts counts = analyticalActionCounts(grid, cfg);
    counts.dramReadWords = 1000;
    counts.dramWriteWords = 500;
    EnergyModel model(Ert::node65nm(), cfg, 64, 640.0);
    const EnergyBreakdown e = model.energy(counts);
    EXPECT_GT(e.peArray, 0.0);
    EXPECT_GT(e.glb, 0.0);
    EXPECT_GT(e.noc, 0.0);
    EXPECT_GT(e.dram, 0.0);
    EXPECT_GT(e.staticE, 0.0);
    EXPECT_NEAR(e.totalPj(),
                e.peArray + e.glb + e.noc + e.dram + e.staticE, 1e-6);
    EXPECT_GT(model.averagePowerW(e, grid.totalCycles()), 0.0);
    EXPECT_GT(model.edp(e, grid.totalCycles()), 0.0);
}

TEST(Model, GatingSavesEnergy)
{
    const GemmDims gemm{8, 8, 64};
    const systolic::FoldGrid grid(gemm, Dataflow::OutputStationary, 32,
                                  32); // badly underutilized
    EnergyConfig cfg;
    const ActionCounts gated = analyticalActionCounts(grid, cfg, true);
    const ActionCounts clocked = analyticalActionCounts(grid, cfg,
                                                        false);
    EnergyModel model(Ert::node65nm(), cfg, 1024, 640.0);
    EXPECT_LT(model.energy(gated).totalPj(),
              model.energy(clocked).totalPj());
}

TEST(Model, BiggerArrayCostsMoreOnSmallWork)
{
    // The paper's headline: oversized arrays waste energy on
    // under-utilized PEs and leakage.
    const GemmDims gemm{64, 64, 64};
    EnergyConfig cfg;
    auto energy_for = [&](std::uint32_t array) {
        const systolic::FoldGrid grid(gemm,
                                      Dataflow::OutputStationary,
                                      array, array);
        const ActionCounts counts = analyticalActionCounts(grid, cfg);
        EnergyModel model(Ert::node65nm(), cfg,
                          static_cast<std::uint64_t>(array) * array,
                          640.0);
        return model.energy(counts).totalPj();
    };
    EXPECT_LT(energy_for(64), energy_for(256));
}

TEST(Model, SecondsAndPowerConsistent)
{
    EnergyConfig cfg;
    cfg.frequencyGhz = 2.0;
    EnergyModel model(Ert::node65nm(), cfg, 16, 64.0);
    EXPECT_DOUBLE_EQ(model.seconds(2'000'000'000ull), 1.0);
    EnergyBreakdown e;
    e.peArray = 1e12; // 1 J
    EXPECT_NEAR(model.averagePowerW(e, 2'000'000'000ull), 1.0, 1e-9);
}

TEST(Model, DramCommandEnergyTracksRowLocality)
{
    EnergyConfig cfg;
    EnergyModel model(Ert::node65nm(), cfg, 64, 64.0);
    // Same burst count, different activation counts: the row-thrashing
    // pattern costs more.
    const double streaming = model.dramCommandEnergyPj(10, 1000, 0, 2);
    const double thrashing = model.dramCommandEnergyPj(1000, 1000, 0,
                                                       2);
    EXPECT_GT(thrashing, streaming);
    EXPECT_GT(streaming, 0.0);
}

TEST(Model, DramCommandEnergyComponents)
{
    EnergyConfig cfg;
    const Ert ert = Ert::node65nm();
    EnergyModel model(ert, cfg, 64, 64.0);
    EXPECT_DOUBLE_EQ(model.dramCommandEnergyPj(1, 0, 0, 0),
                     ert.dramActPj);
    EXPECT_DOUBLE_EQ(model.dramCommandEnergyPj(0, 2, 3, 0),
                     2 * ert.dramReadBurstPj + 3 * ert.dramWriteBurstPj);
    EXPECT_DOUBLE_EQ(model.dramCommandEnergyPj(0, 0, 0, 5),
                     5 * ert.dramRefreshPj);
}
