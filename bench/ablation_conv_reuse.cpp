/**
 * @file
 * Ablation: convolution ifmap addressing. SCALE-Sim v2 accounts conv
 * traffic over the im2col-expanded M x K operand (every window element
 * a distinct address); this reproduction defaults to real (H, W, C)
 * tensor addressing where overlapping windows reuse addresses. The
 * difference is large for stride-1 3x3 layers (up to ~9x less ifmap
 * traffic) and zero for 1x1 convolutions — quantified here per
 * ResNet-18 layer.
 */

#include "bench_util.hpp"
#include "common/log.hpp"
#include "common/workloads.hpp"
#include "core/simulator.hpp"

using namespace scalesim;

namespace
{

core::RunResult
run(const Topology& topo, bool im2col_reuse)
{
    SimConfig cfg;
    cfg.arrayRows = cfg.arrayCols = 32;
    cfg.dataflow = Dataflow::WeightStationary;
    cfg.mode = SimMode::Analytical;
    cfg.memory.bandwidthWordsPerCycle = 32.0;
    cfg.memory.ifmapSramKb = 128; // small, so refetches happen
    cfg.memory.im2colAddressing = im2col_reuse;
    core::Simulator sim(cfg);
    return sim.run(topo);
}

} // namespace

int
main()
{
    setQuiet(true);
    std::printf("=== Ablation: window-reuse vs im2col-expanded conv "
                "traffic ===\n");
    const Topology topo = workloads::resnet18Prefix(12);
    const auto reuse = run(topo, true);
    const auto expanded = run(topo, false);

    benchutil::Table table({10, 8, 14, 14, 10});
    table.row({"layer", "filter", "rd(expanded)", "rd(reuse)",
               "ratio"});
    table.rule();
    bool one_by_one_equal = true;
    bool three_by_three_saves = true;
    for (std::size_t i = 0; i < topo.layers.size(); ++i) {
        const auto& layer = topo.layers[i];
        const std::uint64_t e = expanded.layers[i].timing.dramReadWords;
        const std::uint64_t r = reuse.layers[i].timing.dramReadWords;
        const double ratio = static_cast<double>(e)
            / std::max<std::uint64_t>(1, r);
        table.row({layer.name,
                   format("%llux%llu/%llu",
                          static_cast<unsigned long long>(layer.filterH),
                          static_cast<unsigned long long>(layer.filterW),
                          static_cast<unsigned long long>(layer.stride)),
                   benchutil::num(e), benchutil::num(r),
                   benchutil::fmt("%.2fx", ratio)});
        if (layer.type == LayerType::Conv) {
            if (layer.filterH == 1 && layer.filterW == 1
                && layer.stride == 1 && ratio > 1.05) {
                one_by_one_equal = false;
            }
            if (layer.filterH == 3 && layer.stride == 1
                && ratio < 1.25) {
                three_by_three_saves = false;
            }
        }
    }
    table.rule();
    std::printf("1x1/stride-1 convs identical under both models: %s\n",
                one_by_one_equal ? "yes" : "NO");
    std::printf("3x3/stride-1 convs save >1.25x traffic with window "
                "reuse: %s\n",
                three_by_three_saves ? "yes" : "NO");
    std::printf("whole-prefix totals: %llu -> %llu read words "
                "(%.2fx), %llu -> %llu cycles\n",
                static_cast<unsigned long long>(expanded.dramReadWords),
                static_cast<unsigned long long>(reuse.dramReadWords),
                static_cast<double>(expanded.dramReadWords)
                    / reuse.dramReadWords,
                static_cast<unsigned long long>(expanded.totalCycles),
                static_cast<unsigned long long>(reuse.totalCycles));
    return 0;
}
