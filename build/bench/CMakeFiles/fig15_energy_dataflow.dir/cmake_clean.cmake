file(REMOVE_RECURSE
  "CMakeFiles/fig15_energy_dataflow.dir/fig15_energy_dataflow.cpp.o"
  "CMakeFiles/fig15_energy_dataflow.dir/fig15_energy_dataflow.cpp.o.d"
  "fig15_energy_dataflow"
  "fig15_energy_dataflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_energy_dataflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
