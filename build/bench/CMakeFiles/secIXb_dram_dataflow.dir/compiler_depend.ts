# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for secIXb_dram_dataflow.
