# Empty dependencies file for fig09_dram_channels.
# This may be replaced when dependencies are built.
