file(REMOVE_RECURSE
  "libscalesim_layout.a"
)
