file(REMOVE_RECURSE
  "CMakeFiles/scalesim_dram.dir/controller.cpp.o"
  "CMakeFiles/scalesim_dram.dir/controller.cpp.o.d"
  "CMakeFiles/scalesim_dram.dir/system.cpp.o"
  "CMakeFiles/scalesim_dram.dir/system.cpp.o.d"
  "CMakeFiles/scalesim_dram.dir/timing.cpp.o"
  "CMakeFiles/scalesim_dram.dir/timing.cpp.o.d"
  "libscalesim_dram.a"
  "libscalesim_dram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scalesim_dram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
