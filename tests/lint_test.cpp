/**
 * @file
 * Self-tests for tools/lint/scalesim_lint: every check must fire on
 * its fixture at the pinned lines, every `scalesim-lint: allow(...)`
 * in the fixtures must suppress, the exit-code contract (0 clean,
 * 1 findings, 2 usage error) must hold, and the real source tree must
 * stay lint-clean. The linter binary path comes from the build system
 * (SCALESIM_LINT_BIN); fixtures live under tools/lint/fixtures and
 * are excluded from tree scans by the tool's default excludes.
 */

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <string>
#include <vector>

namespace
{

struct LintRun
{
    int exitCode = -1;
    std::string output; // stdout: "file:line: [check] message" lines
};

LintRun
runLint(const std::string& arguments)
{
    // Findings go to stdout; the summary goes to stderr and is not
    // part of the parsed contract, so drop it.
    const std::string command = std::string(SCALESIM_LINT_BIN) + " "
        + arguments + " 2>/dev/null";
    LintRun run;
    FILE* pipe = popen(command.c_str(), "r");
    EXPECT_NE(pipe, nullptr) << command;
    if (pipe == nullptr)
        return run;
    std::array<char, 4096> buffer{};
    std::size_t got = 0;
    while ((got = fread(buffer.data(), 1, buffer.size(), pipe)) > 0)
        run.output.append(buffer.data(), got);
    const int status = pclose(pipe);
    run.exitCode = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    return run;
}

std::string
fixture(const std::string& name)
{
    return std::string(SCALESIM_SOURCE_DIR) + "/tools/lint/fixtures/"
        + name;
}

/** Lines of `output` that contain `needle`. */
std::size_t
countContaining(const std::string& output, const std::string& needle)
{
    std::size_t count = 0, pos = 0;
    while ((pos = output.find(needle, pos)) != std::string::npos) {
        ++count;
        pos += needle.size();
    }
    return count;
}

TEST(LintTest, CleanFixtureExitsZero)
{
    const LintRun run = runLint(fixture("clean.cpp"));
    EXPECT_EQ(run.exitCode, 0);
    EXPECT_EQ(run.output, "");
}

TEST(LintTest, LocaleParseFiresOnEachApiAndSuppresses)
{
    const LintRun run = runLint(fixture("locale_parse.cpp"));
    EXPECT_EQ(run.exitCode, 1);
    EXPECT_EQ(countContaining(run.output, "[locale-parse]"), 5u);
    EXPECT_EQ(countContaining(run.output, ":18:"), 1u); // atoi
    EXPECT_EQ(countContaining(run.output, ":24:"), 1u); // strtod
    EXPECT_EQ(countContaining(run.output, ":30:"), 1u); // std::stoi
    EXPECT_EQ(countContaining(run.output, ":36:"), 1u); // sscanf
    EXPECT_EQ(countContaining(run.output, ":43:"), 1u); // >> double
    // The two allow()ed atoi calls (above-line and trailing forms).
    EXPECT_EQ(countContaining(run.output, ":51:"), 0u);
    EXPECT_EQ(countContaining(run.output, ":57:"), 0u);
}

TEST(LintTest, UnorderedIterationFiresInOutputFileAndSuppresses)
{
    const LintRun run = runLint(fixture("unordered_iteration.cpp"));
    EXPECT_EQ(run.exitCode, 1);
    EXPECT_EQ(
        countContaining(run.output, "[unordered-iteration-to-output]"),
        2u);
    EXPECT_EQ(countContaining(run.output, ":21:"), 1u); // range-for
    EXPECT_EQ(countContaining(run.output, ":23:"), 1u); // .begin()
    EXPECT_EQ(countContaining(run.output, ":32:"), 0u); // allow()ed
}

TEST(LintTest, RawTimeOrRandFiresAndSuppresses)
{
    const LintRun run = runLint(fixture("raw_time_rand.cpp"));
    EXPECT_EQ(run.exitCode, 1);
    EXPECT_EQ(countContaining(run.output, "[raw-time-or-rand]"), 4u);
    EXPECT_EQ(countContaining(run.output, ":15:"), 1u); // rand
    EXPECT_EQ(countContaining(run.output, ":21:"), 1u); // srand
    EXPECT_EQ(countContaining(run.output, ":27:"), 1u); // time(nullptr)
    EXPECT_EQ(countContaining(run.output, ":33:"), 1u); // random_device
    EXPECT_EQ(countContaining(run.output, ":39:"), 0u); // allow()ed
}

TEST(LintTest, PointerOrderFiresAndSuppresses)
{
    const LintRun run = runLint(fixture("pointer_order.cpp"));
    EXPECT_EQ(run.exitCode, 1);
    EXPECT_EQ(countContaining(run.output, "[pointer-order]"), 4u);
    EXPECT_EQ(countContaining(run.output, ":19:"), 1u); // map<T*>
    EXPECT_EQ(countContaining(run.output, ":21:"), 1u); // set<T*>
    EXPECT_EQ(countContaining(run.output, ":26:"), 1u); // uintptr cast
    EXPECT_EQ(countContaining(run.output, ":32:"), 1u); // less<T*>
    EXPECT_EQ(countContaining(run.output, ":36:"), 0u); // allow()ed
}

TEST(LintTest, NakedMutexFiresOnlyOnUnannotatedMember)
{
    const LintRun run = runLint(fixture("naked_mutex.cpp"));
    EXPECT_EQ(run.exitCode, 1);
    EXPECT_EQ(countContaining(run.output, "[naked-mutex]"), 1u);
    EXPECT_EQ(countContaining(run.output, ":15:"), 1u); // naked mutex
    EXPECT_EQ(countContaining(run.output, "mutex_"), 0u); // annotated
    EXPECT_EQ(countContaining(run.output, "external_"), 0u); // allowed
}

TEST(LintTest, CheckFilterRestrictsToNamedCheck)
{
    // locale_parse.cpp contains only locale findings, so filtering on
    // a different check must come back clean; filtering on its own
    // check reproduces all five.
    const LintRun other = runLint("--check raw-time-or-rand "
                                  + fixture("locale_parse.cpp"));
    EXPECT_EQ(other.exitCode, 0);
    EXPECT_EQ(other.output, "");
    const LintRun same = runLint("--check locale-parse "
                                 + fixture("locale_parse.cpp"));
    EXPECT_EQ(same.exitCode, 1);
    EXPECT_EQ(countContaining(same.output, "[locale-parse]"), 5u);
}

TEST(LintTest, UsageErrorsExitTwo)
{
    EXPECT_EQ(runLint("").exitCode, 2);           // no paths
    EXPECT_EQ(runLint("--check bogus-name").exitCode, 2);
    EXPECT_EQ(runLint("--frobnicate x").exitCode, 2);
    EXPECT_EQ(runLint("/no/such/path/anywhere").exitCode, 2);
}

TEST(LintTest, ListChecksNamesAllFive)
{
    const LintRun run = runLint("--list-checks");
    EXPECT_EQ(run.exitCode, 0);
    EXPECT_EQ(run.output,
              "locale-parse\n"
              "unordered-iteration-to-output\n"
              "raw-time-or-rand\n"
              "pointer-order\n"
              "naked-mutex\n");
}

TEST(LintTest, RealSourceTreeIsClean)
{
    // The acceptance bar for the whole repo: zero findings over every
    // scanned root. (The scalesim_lint_tree ctest enforces the same
    // thing from CMake; this keeps the bar inside the unit suite too.)
    const std::string source = SCALESIM_SOURCE_DIR;
    const LintRun run = runLint(source + "/src " + source + "/tools "
                                + source + "/examples " + source
                                + "/bench");
    EXPECT_EQ(run.exitCode, 0) << run.output;
    EXPECT_EQ(run.output, "") << run.output;
}

TEST(LintTest, FixturesExcludedWhenRecursingButScannedWhenNamed)
{
    // Recursing tools/ must skip fixtures/ (default excludes)...
    const LintRun tree =
        runLint(std::string(SCALESIM_SOURCE_DIR) + "/tools");
    EXPECT_EQ(tree.exitCode, 0) << tree.output;
    // ...while naming a fixture file directly always scans it.
    const LintRun direct = runLint(fixture("raw_time_rand.cpp"));
    EXPECT_EQ(direct.exitCode, 1);
}

} // namespace
