# Empty compiler generated dependencies file for fig07_sparse_storage.
# This may be replaced when dependencies are built.
