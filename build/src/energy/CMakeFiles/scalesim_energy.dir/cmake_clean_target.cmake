file(REMOVE_RECURSE
  "libscalesim_energy.a"
)
