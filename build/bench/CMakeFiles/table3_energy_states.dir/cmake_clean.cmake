file(REMOVE_RECURSE
  "CMakeFiles/table3_energy_states.dir/table3_energy_states.cpp.o"
  "CMakeFiles/table3_energy_states.dir/table3_energy_states.cpp.o.d"
  "table3_energy_states"
  "table3_energy_states.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_energy_states.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
