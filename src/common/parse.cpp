#include "common/parse.hpp"

#include <charconv>
#include <limits>
#include <string>
#include <system_error>

#if defined(__GLIBC__) || defined(__APPLE__)
#include <cstdlib>
#include <locale.h>
#define SCALESIM_HAVE_STRTOD_L 1
#endif

namespace scalesim
{

namespace
{

/**
 * Saturated value for an out-of-range literal, computed with strtod
 * pinned to the "C" locale so the global LC_NUMERIC cannot interfere.
 * Only reached for extreme exponents; the hot path never allocates.
 */
double
saturatedValue(std::string_view text)
{
#ifdef SCALESIM_HAVE_STRTOD_L
    static const locale_t c_locale =
        newlocale(LC_ALL_MASK, "C", static_cast<locale_t>(nullptr));
    if (c_locale) {
        const std::string copy(text);
        return strtod_l(copy.c_str(), nullptr, c_locale);
    }
#endif
    // Portable fallback: sign the overflow by the leading character.
    // (Underflow saturates toward zero, which HUGE_VAL*0-free callers
    // treat the same as a hard range error anyway.)
    return text.starts_with('-') ? -__builtin_huge_val()
                                 : __builtin_huge_val();
}

} // namespace

namespace
{

/** Shared whole-text from_chars driver for the integer parsers. */
template <typename Integer>
NumberParse
parseInteger(std::string_view text, Integer& value)
{
    // std::from_chars does not accept the leading '+' strtol allowed.
    if (text.starts_with('+')) {
        if (text.size() < 2 || text[1] == '+' || text[1] == '-')
            return NumberParse::Bad;
        text.remove_prefix(1);
    }
    if (text.empty())
        return NumberParse::Bad;
    const char* first = text.data();
    const char* last = text.data() + text.size();
    Integer parsed = 0;
    const auto [ptr, ec] = std::from_chars(first, last, parsed, 10);
    if (ec == std::errc::invalid_argument || ptr != last)
        return NumberParse::Bad;
    if (ec == std::errc::result_out_of_range) {
        value = text.starts_with('-')
                    ? std::numeric_limits<Integer>::min()
                    : std::numeric_limits<Integer>::max();
        return NumberParse::OutOfRange;
    }
    value = parsed;
    return NumberParse::Ok;
}

} // namespace

NumberParse
parseInt64(std::string_view text, std::int64_t& value)
{
    return parseInteger(text, value);
}

NumberParse
parseUint64(std::string_view text, std::uint64_t& value)
{
    return parseInteger(text, value);
}

NumberParse
parseDouble(std::string_view text, double& value)
{
    // std::from_chars does not accept the leading '+' strtod allowed.
    if (text.starts_with('+')) {
        if (text.size() < 2 || text[1] == '+' || text[1] == '-')
            return NumberParse::Bad;
        text.remove_prefix(1);
    }
    if (text.empty())
        return NumberParse::Bad;
    const char* first = text.data();
    const char* last = text.data() + text.size();
    double parsed = 0.0;
    const auto [ptr, ec] =
        std::from_chars(first, last, parsed, std::chars_format::general);
    if (ec == std::errc::invalid_argument || ptr != last)
        return NumberParse::Bad;
    if (ec == std::errc::result_out_of_range) {
        value = saturatedValue(text);
        return NumberParse::OutOfRange;
    }
    value = parsed;
    return NumberParse::Ok;
}

} // namespace scalesim
