/**
 * @file
 * Ablation: inference batch size. Batching grows the streamed (M)
 * dimension, amortizing stationary-operand loads and array fill/drain
 * across more useful work — the classic reason weight-stationary
 * accelerators batch. Reports cycles/image and energy/image across
 * batch sizes and dataflows for ViT-base.
 */

#include "bench_util.hpp"
#include "common/log.hpp"
#include "common/workloads.hpp"
#include "core/simulator.hpp"

using namespace scalesim;

namespace
{

struct PerImage
{
    double cycles;
    double energyMj;
};

PerImage
evaluate(Dataflow df, std::uint64_t batch)
{
    SimConfig cfg;
    cfg.arrayRows = cfg.arrayCols = 64;
    cfg.dataflow = df;
    cfg.mode = SimMode::Analytical;
    cfg.energy.enabled = true;
    cfg.memory.ifmapSramKb = 2048;
    cfg.memory.filterSramKb = 2048;
    cfg.memory.ofmapSramKb = 1024;
    cfg.memory.bandwidthWordsPerCycle = 64.0;
    core::Simulator sim(cfg);
    const auto run = sim.run(workloads::withBatch(
        workloads::vit(workloads::VitVariant::Base), batch));
    return {static_cast<double>(run.totalCycles) / batch,
            run.totalEnergy.onChipMj() / batch};
}

} // namespace

int
main()
{
    setQuiet(true);
    std::printf("=== Ablation: batch size vs per-image cost, "
                "ViT-base, 64x64 ===\n");
    benchutil::Table table({6, 16, 14, 16, 14});
    table.row({"batch", "ws cyc/img", "ws mJ/img", "os cyc/img",
               "os mJ/img"});
    table.rule();
    double ws_first = 0.0;
    double ws_last = 0.0;
    for (std::uint64_t batch : {1ull, 2ull, 4ull, 8ull}) {
        const PerImage ws = evaluate(Dataflow::WeightStationary,
                                     batch);
        const PerImage os = evaluate(Dataflow::OutputStationary,
                                     batch);
        if (batch == 1)
            ws_first = ws.cycles;
        ws_last = ws.cycles;
        table.row({benchutil::num(batch),
                   benchutil::fmt("%.0f", ws.cycles),
                   benchutil::fmt("%.2f", ws.energyMj),
                   benchutil::fmt("%.0f", os.cycles),
                   benchutil::fmt("%.2f", os.energyMj)});
    }
    table.rule();
    std::printf("WS per-image cycles shrink %.1f%% from batch 1 to 8 "
                "(weight loads and fill/drain amortize): %s\n",
                100.0 * (1.0 - ws_last / ws_first),
                ws_last < ws_first ? "yes" : "NO");
    return 0;
}
