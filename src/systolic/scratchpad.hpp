/**
 * @file
 * Double-buffered scratchpad timing model. Schedules per-fold operand
 * prefetches against a MainMemory through finite request queues,
 * overlapping fold f's prefetch with fold f-1's compute, and accounts
 * the resulting stall cycles — the v3 "memory delay modeling" of §V-A.
 *
 * Reuse is modeled at tile granularity: each operand SRAM keeps an LRU
 * set of resident tiles sized to half its capacity (the other half is
 * the shadow buffer being filled). Partial-sum (ofmap) traffic stays
 * on-chip when a fold's output working set fits the ofmap SRAM,
 * otherwise it spills and re-loads per fold.
 */

#ifndef SCALESIM_SYSTOLIC_SCRATCHPAD_HH
#define SCALESIM_SYSTOLIC_SCRATCHPAD_HH

#include <list>
#include <memory>
#include <string>
#include <vector>
#include <unordered_map>

#include "obs/cpi.hpp"
#include "obs/stats.hpp"
#include "systolic/mapping.hpp"
#include "systolic/memory.hpp"

namespace scalesim::systolic
{

/** Scratchpad and memory-datapath configuration. */
struct ScratchpadConfig
{
    std::uint64_t ifmapWords = 256 * 1024;
    std::uint64_t filterWords = 256 * 1024;
    std::uint64_t ofmapWords = 128 * 1024;
    /** Words per DRAM transaction (burst). */
    std::uint32_t burstWords = 64;
    /** Finite request queues (§V-A.2). */
    std::uint32_t readQueueSize = 128;
    std::uint32_t writeQueueSize = 128;
    /** Max demand requests the front-end can issue per cycle. */
    std::uint32_t issuePerCycle = 1;

    /**
     * How many folds the prefetcher may run ahead of compute (1 =
     * classic double buffering). Deeper prefetch hides longer memory
     * latencies at the cost of more shadow-buffer capacity: the
     * resident share of each SRAM shrinks to 1/(depth+1).
     */
    std::uint32_t prefetchDepth = 1;

    /**
     * Record per-fold compute spans into LayerTiming::foldSpans (for
     * timeline/trace export). Off by default: large layers have many
     * folds and sweeps don't need them.
     */
    bool recordFoldSpans = false;
};

/** One fold's compute interval, relative to the layer's start cycle. */
struct FoldSpan
{
    Cycle start = 0;
    Cycle end = 0;
    std::uint32_t rowFold = 0;
    std::uint32_t colFold = 0;
};

/** Timing and traffic results of one layer run. */
struct LayerTiming
{
    /** Ideal compute cycles (no memory stalls). */
    Cycle computeCycles = 0;
    /** Wall-clock cycles including stalls. */
    Cycle totalCycles = 0;
    /** totalCycles - computeCycles. */
    Cycle stallCycles = 0;

    /**
     * Stall breakdown by cause; the three buckets sum exactly to
     * stallCycles. `prefetchStallCycles` is compute waiting on operand
     * prefetch data, `bandwidthStallCycles` is the share of that wait
     * attributable to a full read request queue, and
     * `drainStallCycles` is ofmap-writeback back-pressure extending
     * the layer past the last fold's compute.
     */
    Cycle prefetchStallCycles = 0;
    Cycle drainStallCycles = 0;
    Cycle bandwidthStallCycles = 0;

    /**
     * CPI stack of this layer: every wall-clock cycle in exactly one
     * bucket (cpi.total() == totalCycles). Computed in finishLayer():
     * compute/drain/bandwidth copy the buckets above; the prefetch
     * stall is apportioned across the backend components (L2-arbiter
     * wait, DRAM queue wait, DRAM service, refresh shadow) pro-rata to
     * the read-latency components the memory model reported for this
     * layer, with the remainder staying prefetchMiss.
     */
    obs::CpiStack cpi;

    /**
     * Per-fold compute spans (only when
     * ScratchpadConfig::recordFoldSpans is set; capped at
     * kMaxRecordedFoldSpans per layer).
     */
    std::vector<FoldSpan> foldSpans;
    static constexpr std::size_t kMaxRecordedFoldSpans = 8192;

    /** Folds the systolic engine executed (rowFolds x colFolds). */
    Count folds = 0;

    std::uint64_t dramReadWords = 0;
    std::uint64_t dramWriteWords = 0;
    Count dramReadRequests = 0;
    Count dramWriteRequests = 0;
    /** Mean round-trip read latency in core cycles. */
    double avgReadLatency = 0.0;
    /** Cycles lost to a full read/write queue. */
    Cycle readQueueStalls = 0;
    Cycle writeQueueStalls = 0;

    /** Average DRAM read bandwidth in words per cycle. */
    double
    readBandwidth() const
    {
        return totalCycles
            ? static_cast<double>(dramReadWords) / totalCycles : 0.0;
    }
    double
    writeBandwidth() const
    {
        return totalCycles
            ? static_cast<double>(dramWriteWords) / totalCycles : 0.0;
    }

    void
    accumulate(const LayerTiming& other)
    {
        computeCycles += other.computeCycles;
        totalCycles += other.totalCycles;
        stallCycles += other.stallCycles;
        prefetchStallCycles += other.prefetchStallCycles;
        drainStallCycles += other.drainStallCycles;
        bandwidthStallCycles += other.bandwidthStallCycles;
        cpi.accumulate(other.cpi);
        folds += other.folds;
        dramReadWords += other.dramReadWords;
        dramWriteWords += other.dramWriteWords;
        dramReadRequests += other.dramReadRequests;
        dramWriteRequests += other.dramWriteRequests;
        readQueueStalls += other.readQueueStalls;
        writeQueueStalls += other.writeQueueStalls;
        // Weighted by requests.
        if (dramReadRequests) {
            avgReadLatency = (avgReadLatency
                * (dramReadRequests - other.dramReadRequests)
                + other.avgReadLatency * other.dramReadRequests)
                / dramReadRequests;
        }
    }
};

/**
 * LRU tile cache standing in for one operand SRAM's active half.
 */
class TileCache
{
  public:
    explicit TileCache(std::uint64_t capacity_words);

    /**
     * Touch tile `key` of `words` words. Returns the words that must be
     * fetched from DRAM (0 on a resident hit; `words` on a miss).
     * Oversized tiles bypass the cache entirely.
     */
    std::uint64_t access(std::uint64_t key, std::uint64_t words);

    void clear();

  private:
    std::uint64_t capacity_;
    std::uint64_t used_ = 0;
    std::list<std::pair<std::uint64_t, std::uint64_t>> lru_;
    // Keyed access only: eviction and every stat walk lru_, so hash
    // order never reaches timing or outputs (scalesim_lint
    // unordered-iteration-to-output keeps it that way).
    std::unordered_map<std::uint64_t, decltype(lru_)::iterator> index_;
};

/**
 * The fold-level memory-system scheduler. One instance per core; reuse
 * state persists across layers until reset().
 *
 * Two ways to drive it: runLayer() executes a whole layer at once
 * (single-core use), or the incremental stepping interface
 * (beginLayer / nextEventCycle / step / finishLayer) advances the
 * layer one memory transaction at a time so several engines can be
 * co-simulated against one shared memory timeline. runLayer() is
 * implemented on top of the stepping interface, so both paths are
 * bit-identical.
 */
class DoubleBufferedScratchpad
{
  public:
    DoubleBufferedScratchpad(const ScratchpadConfig& cfg,
                             MainMemory& memory);
    ~DoubleBufferedScratchpad();

    /**
     * Run one layer.
     *
     * @param grid         fold geometry (possibly sparsity-compressed)
     * @param operands     operand address map (dense dims)
     * @param start_cycle  timeline origin (end of previous layer)
     * @param compute_scale multiplies each fold's compute time (layout
     *                     slowdown, SIMD serialization, ...)
     */
    LayerTiming runLayer(const FoldGrid& grid, const OperandMap& operands,
                         Cycle start_cycle = 0,
                         double compute_scale = 1.0);

    /** nextEventCycle() value when the layer has no further events. */
    static constexpr Cycle kNoEvent = ~static_cast<Cycle>(0);

    /**
     * Start a layer in stepping mode (parameters as runLayer). The
     * engine positions itself at its first memory transaction; drive
     * it with step() until nextEventCycle() == kNoEvent, then call
     * finishLayer(). `grid` and `operands` are copied.
     */
    void beginLayer(const FoldGrid& grid, const OperandMap& operands,
                    Cycle start_cycle = 0, double compute_scale = 1.0);

    /**
     * Cycle at which this engine issues its next memory transaction
     * (run-until-blocked horizon for a co-simulation scheduler), or
     * kNoEvent when the layer is complete. Depends only on this
     * engine's own state — never on other engines sharing the memory —
     * so a scheduler may interleave engines in any time-honoring order.
     */
    Cycle nextEventCycle() const;

    /**
     * Issue the pending memory transaction and advance (through any
     * amount of pure fold bookkeeping) to the next one. Only valid
     * while nextEventCycle() != kNoEvent.
     */
    void step();

    /**
     * Split-phase step() for epoch-parallel co-simulation.
     *
     * stepIssue() performs the shared-memory transaction — the only
     * part of a step that touches state outside this engine — and
     * returns a *horizon*: a sound lower bound on every event cycle
     * this engine can advertise once the deferred bookkeeping has run.
     * stepAdvance() performs that bookkeeping (burst positioning, fold
     * wrap-up, next-fold planning); it touches exclusively
     * engine-local state, so a co-simulation scheduler may run it on a
     * worker thread while continuing to grant other engines any
     * transaction strictly below `floorCycle` (the epoch-rendezvous
     * invariant — see DESIGN.md). step() == stepIssue() + stepAdvance()
     * exactly, so the serial path is unchanged.
     *
     * Between stepIssue() and stepAdvance() the engine's
     * nextEventCycle() is stale; a scheduler must treat the engine as
     * pending (no advertised event) until stepAdvance() returns.
     */
    struct StepIssue
    {
        /** No event this engine advertises after the deferred
            stepAdvance() precedes this cycle. */
        Cycle floorCycle = 0;
        /** The deferred advance crosses a fold boundary (stall
            attribution + next-fold planning) — the expensive case,
            worth offloading to a worker thread. When false the
            advance is O(1); run it inline. */
        bool heavy = false;
    };
    StepIssue stepIssue();

    /** Complete a stepIssue(): advance to the next transaction. */
    void stepAdvance();

    /** Finalize the stepped layer and return its timing. */
    LayerTiming finishLayer();

    /** Drop residency state (new workload / new core). */
    void reset();

    /** Timing totals accumulated across every runLayer call. */
    const LayerTiming& totals() const { return totals_; }

    /**
     * Register cumulative scratchpad stats under `prefix` (e.g.
     * "spad"): cycle totals, the stall-reason breakdown, DRAM traffic
     * and queue-stall counters, plus derived fractions.
     */
    void registerStats(obs::StatsRegistry& reg,
                       const std::string& prefix) const;

    /** Strided address range of one operand tile in DRAM. */
    struct TileSpan
    {
        Addr base = 0;
        std::uint64_t segments = 0;
        std::uint64_t segWords = 0;
        std::uint64_t stride = 0;
        std::uint64_t words() const { return segments * segWords; }
    };

  private:
    /** Resumable per-layer state of the stepping engine. */
    struct LayerRun;

    /** Plan row-granular ifmap fetches for a convolution fold. */
    void planConvIfmap(const OperandMap& operands, std::uint64_t m_lo,
                       std::uint64_t m_hi, std::uint64_t k_lo,
                       std::uint64_t k_hi, std::uint64_t effective_k,
                       std::vector<TileSpan>& reads);

    /** Plan fold (rf, cf)'s fetches/writeback into run_->plan. */
    void planFold();
    /** Pure bookkeeping from one burst to the next issue point. */
    void advance();
    /** Close fold (rf, cf): stall attribution, move to the next. */
    void foldWrapup();

    ScratchpadConfig cfg_;
    MainMemory& memory_;
    TileCache ifmapCache_;
    TileCache filterCache_;
    /** Cumulative timing across layers (observability). */
    LayerTiming totals_;
    /** Live between beginLayer() and finishLayer(). */
    std::unique_ptr<LayerRun> run_;
};

} // namespace scalesim::systolic

#endif // SCALESIM_SYSTOLIC_SCRATCHPAD_HH
