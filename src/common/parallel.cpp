#include "common/parallel.hpp"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <utility>

namespace scalesim
{

unsigned
resolveJobs(unsigned requested)
{
    if (requested != 0)
        return requested;
    // Read-only env lookup before any pool thread exists; nothing in
    // the simulator calls setenv, so this cannot race.
    // NOLINTNEXTLINE(concurrency-mt-unsafe)
    if (const char* env = std::getenv("SCALESIM_JOBS")) {
        const long parsed = std::strtol(env, nullptr, 10);
        if (parsed > 0)
            return static_cast<unsigned>(parsed);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

ThreadPool::ThreadPool(unsigned threads)
    : threadCount_(resolveJobs(threads))
{
    workers_.reserve(threadCount_);
    for (unsigned i = 0; i < threadCount_; ++i) {
        workers_.emplace_back(
            [this](std::stop_token stop) { workerLoop(stop); });
    }
}

ThreadPool::~ThreadPool()
{
    wait();
    for (auto& worker : workers_)
        worker.request_stop();
    taskReady_.notify_all();
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        MutexLock lock(mutex_);
        tasks_.push_back(std::move(task));
        ++inFlight_;
    }
    taskReady_.notify_one();
}

void
ThreadPool::wait()
{
    MutexLock lock(mutex_);
    allDone_.wait(lock, [this] {
        mutex_.assertHeld(); // the wait predicate runs locked
        return inFlight_ == 0;
    });
}

void
ThreadPool::workerLoop(std::stop_token stop)
{
    for (;;) {
        std::function<void()> task;
        {
            MutexLock lock(mutex_);
            taskReady_.wait(lock, stop, [this] {
                mutex_.assertHeld();
                return !tasks_.empty();
            });
            if (tasks_.empty())
                return; // stop requested and queue drained
            task = std::move(tasks_.front());
            tasks_.pop_front();
        }
        task();
        {
            MutexLock lock(mutex_);
            if (--inFlight_ == 0)
                allDone_.notify_all();
        }
    }
}

void
CompletionQueue::finish(std::size_t index, std::exception_ptr error)
{
    {
        MutexLock lock(mutex_);
        done_.push_back(index);
        if (error && !error_)
            error_ = error;
    }
    ready_.notify_one();
}

std::vector<std::size_t>
CompletionQueue::poll()
{
    MutexLock lock(mutex_);
    std::vector<std::size_t> out;
    out.swap(done_);
    return out;
}

std::vector<std::size_t>
CompletionQueue::waitAny()
{
    MutexLock lock(mutex_);
    ready_.wait(lock, [this] {
        mutex_.assertHeld();
        return !done_.empty();
    });
    std::vector<std::size_t> out;
    out.swap(done_);
    return out;
}

std::exception_ptr
CompletionQueue::error()
{
    MutexLock lock(mutex_);
    return error_;
}

void
parallelFor(std::uint64_t n, unsigned jobs,
            const std::function<void(std::uint64_t)>& body)
{
    if (n == 0)
        return;
    const unsigned workers = std::min<std::uint64_t>(
        jobs == 1 ? 1 : resolveJobs(jobs), n);
    if (workers <= 1) {
        for (std::uint64_t i = 0; i < n; ++i)
            body(i);
        return;
    }

    std::atomic<std::uint64_t> next{0};
    std::atomic<bool> failed{false};
    /** First exception across workers, with an annotated lock. */
    struct ErrorSlot
    {
        CheckedMutex mutex;
        std::exception_ptr first SIM_GUARDED_BY(mutex);

        void
        store(std::exception_ptr error) SIM_EXCLUDES(mutex)
        {
            MutexLock lock(mutex);
            if (!first)
                first = error;
        }

        std::exception_ptr
        take() SIM_EXCLUDES(mutex)
        {
            MutexLock lock(mutex);
            return first;
        }
    } slot;
    auto drain = [&] {
        for (;;) {
            const std::uint64_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= n || failed.load(std::memory_order_relaxed))
                return;
            try {
                body(i);
            } catch (...) {
                slot.store(std::current_exception());
                failed.store(true, std::memory_order_relaxed);
                return;
            }
        }
    };
    {
        std::vector<std::jthread> threads;
        threads.reserve(workers);
        for (unsigned w = 0; w < workers; ++w)
            threads.emplace_back(drain);
    }
    if (auto error = slot.take())
        std::rethrow_exception(error);
}

} // namespace scalesim
