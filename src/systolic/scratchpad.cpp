#include "systolic/scratchpad.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/log.hpp"

namespace scalesim::systolic
{

TileCache::TileCache(std::uint64_t capacity_words)
    : capacity_(capacity_words)
{
}

std::uint64_t
TileCache::access(std::uint64_t key, std::uint64_t words)
{
    auto hit = index_.find(key);
    if (hit != index_.end()) {
        // Move to MRU position.
        lru_.splice(lru_.begin(), lru_, hit->second);
        return 0;
    }
    if (words > capacity_) {
        // Streaming tile: cannot be kept resident, fetched every use.
        return words;
    }
    while (used_ + words > capacity_ && !lru_.empty()) {
        auto& victim = lru_.back();
        used_ -= victim.second;
        index_.erase(victim.first);
        lru_.pop_back();
    }
    lru_.emplace_front(key, words);
    index_[key] = lru_.begin();
    used_ += words;
    return words;
}

void
TileCache::clear()
{
    lru_.clear();
    index_.clear();
    used_ = 0;
}

namespace
{

/**
 * Reject bad configs before any member is sized from them: a zero
 * prefetchDepth must fail cleanly, not silently size the tile caches
 * for depth 1 and then throw with half-constructed members.
 */
const ScratchpadConfig&
validated(const ScratchpadConfig& cfg)
{
    if (cfg.burstWords == 0)
        fatal("burstWords must be non-zero");
    if (cfg.issuePerCycle == 0)
        fatal("issuePerCycle must be non-zero");
    if (cfg.prefetchDepth == 0)
        fatal("prefetchDepth must be non-zero");
    return cfg;
}

} // namespace

DoubleBufferedScratchpad::DoubleBufferedScratchpad(
    const ScratchpadConfig& cfg, MainMemory& memory)
    : cfg_(validated(cfg)), memory_(memory),
      // One shadow buffer per prefetch-depth step; the rest of each
      // SRAM holds resident data.
      ifmapCache_(cfg_.ifmapWords / (1 + cfg_.prefetchDepth)),
      filterCache_(cfg_.filterWords / (1 + cfg_.prefetchDepth))
{
}

void
DoubleBufferedScratchpad::reset()
{
    ifmapCache_.clear();
    filterCache_.clear();
}

namespace
{

/** Per-fold fetch/writeback description. */
struct FoldPlan
{
    std::vector<DoubleBufferedScratchpad::TileSpan> reads;
    DoubleBufferedScratchpad::TileSpan writeback;
    bool hasWriteback = false;
};

/** DRAM transactions a span splits into. */
std::uint64_t
spanRequests(const DoubleBufferedScratchpad::TileSpan& span,
             std::uint32_t burst_words)
{
    return span.segments * ceilDiv(span.segWords, burst_words);
}

/**
 * Ifmap rows a convolution fold touches: output pixels [m_lo, m_hi]
 * under reduction range [k_lo, k_hi] (indices in the fold grid's —
 * possibly sparsity-compressed — K domain, rescaled to the dense K
 * the tensor is addressed with). Returns the inclusive [h_lo, h_hi]
 * feature-map row range.
 */
std::pair<std::uint64_t, std::uint64_t>
convIfmapRows(const OperandMap& op, std::uint64_t m_lo,
              std::uint64_t m_hi, std::uint64_t k_lo,
              std::uint64_t k_hi, std::uint64_t effective_k)
{
    std::uint64_t k_lo_dense = k_lo;
    std::uint64_t k_hi_dense = k_hi;
    if (effective_k != op.dims.k && effective_k > 0) {
        // Sparse run: compressed K rows scatter across the dense
        // range; scale the bounds conservatively.
        k_lo_dense = k_lo * op.dims.k / effective_k;
        k_hi_dense = std::min(op.dims.k - 1,
                              (k_hi + 1) * op.dims.k / effective_k);
    }
    return op.ifmapRowRange(m_lo, m_hi, k_lo_dense, k_hi_dense);
}

} // namespace

void
DoubleBufferedScratchpad::planConvIfmap(
    const OperandMap& operands, std::uint64_t m_lo, std::uint64_t m_hi,
    std::uint64_t k_lo, std::uint64_t k_hi, std::uint64_t effective_k,
    std::vector<TileSpan>& reads)
{
    // Row-slice-granular residency: overlapping windows and adjacent
    // folds share ifmap rows, which must not be refetched. A fold
    // covering only part of the reduction (a (kw, c) slice of each
    // window row) fetches the corresponding fraction of each row;
    // slices are distinguished by an aligned bucket in the cache key.
    const auto [h_lo, h_hi] = convIfmapRows(operands, m_lo, m_hi, k_lo,
                                            k_hi, effective_k);
    const std::uint64_t row_width = operands.ifmapRowWidth();
    const std::uint64_t kfc = std::max<std::uint64_t>(
        1, operands.filterW * operands.channels);
    std::uint64_t k_span = k_hi - k_lo + 1;
    if (effective_k != operands.dims.k && effective_k > 0)
        k_span = k_span * operands.dims.k / effective_k;
    std::uint64_t slice_words = row_width;
    std::uint64_t bucket = 0;
    if (k_span < kfc) {
        slice_words = std::max<std::uint64_t>(
            1, row_width * k_span / kfc);
        bucket = 1 + (k_lo % kfc) / std::max<std::uint64_t>(1, k_span);
    }
    std::uint64_t run_start = ~static_cast<std::uint64_t>(0);
    auto flush = [&](std::uint64_t end_h) {
        if (run_start == ~static_cast<std::uint64_t>(0))
            return;
        reads.push_back({operands.ifmapBase + run_start * row_width, 1,
                         (end_h - run_start) * slice_words, 0});
        run_start = ~static_cast<std::uint64_t>(0);
    };
    for (std::uint64_t h = h_lo; h <= h_hi; ++h) {
        const std::uint64_t key = h * 65536 + bucket;
        const bool miss = ifmapCache_.access(key, slice_words) > 0;
        if (miss && run_start == ~static_cast<std::uint64_t>(0))
            run_start = h;
        if (!miss)
            flush(h);
    }
    flush(h_hi + 1);
}

Cycle
DoubleBufferedScratchpad::issueReads(const TileSpan& span,
                                     Cycle issue_base,
                                     LayerTiming& timing)
{
    RequestQueue& queue = *readQueue_;
    Cycle ready = issue_base;
    double next_issue = static_cast<double>(issue_base);
    const double pace = 1.0 / cfg_.issuePerCycle;
    for (std::uint64_t seg = 0; seg < span.segments; ++seg) {
        const Addr seg_base = span.base + seg * span.stride;
        std::uint64_t remaining = span.segWords;
        Addr addr = seg_base;
        while (remaining > 0) {
            const Count words = std::min<std::uint64_t>(
                remaining, cfg_.burstWords);
            const Cycle want = static_cast<Cycle>(
                std::ceil(next_issue));
            const Cycle slot = queue.reserve(want);
            const Cycle at = std::max(slot, want);
            const Cycle done = memory_.issueRead(addr, words, at);
            queue.push(done);
            ready = std::max(ready, done);
            next_issue = static_cast<double>(at) + pace;
            ++timing.dramReadRequests;
            timing.dramReadWords += words;
            addr += words;
            remaining -= words;
        }
    }
    return ready;
}

Cycle
DoubleBufferedScratchpad::issueWrites(const TileSpan& span,
                                      Cycle issue_base,
                                      LayerTiming& timing)
{
    RequestQueue& queue = *writeQueue_;
    Cycle last_issue = issue_base;
    double next_issue = static_cast<double>(issue_base);
    const double pace = 1.0 / cfg_.issuePerCycle;
    for (std::uint64_t seg = 0; seg < span.segments; ++seg) {
        const Addr seg_base = span.base + seg * span.stride;
        std::uint64_t remaining = span.segWords;
        Addr addr = seg_base;
        while (remaining > 0) {
            const Count words = std::min<std::uint64_t>(
                remaining, cfg_.burstWords);
            const Cycle want = static_cast<Cycle>(
                std::ceil(next_issue));
            const Cycle slot = queue.reserve(want);
            const Cycle at = std::max(slot, want);
            const Cycle accepted = memory_.issueWrite(addr, words, at);
            queue.push(accepted);
            last_issue = std::max(last_issue, at);
            next_issue = static_cast<double>(at) + pace;
            ++timing.dramWriteRequests;
            timing.dramWriteWords += words;
            addr += words;
            remaining -= words;
        }
    }
    return last_issue;
}

LayerTiming
DoubleBufferedScratchpad::runLayer(const FoldGrid& grid,
                                   const OperandMap& operands,
                                   Cycle start_cycle,
                                   double compute_scale)
{
    LayerTiming timing;
    RequestQueue read_queue(cfg_.readQueueSize);
    RequestQueue write_queue(cfg_.writeQueueSize);
    readQueue_ = &read_queue;
    writeQueue_ = &write_queue;

    const Cycle fold_len = static_cast<Cycle>(std::llround(
        static_cast<double>(grid.foldCycles()) * compute_scale));
    timing.computeCycles = fold_len * grid.numFolds();
    timing.folds = grid.numFolds();

    const MemoryStats stats_before = memory_.stats();

    const std::uint64_t k_dim = grid.gemm().k;
    const std::uint64_t m_dim = grid.gemm().m;
    const std::uint64_t n_dim = grid.gemm().n;
    // Address-space row pitches (global operand layout; differs from
    // the grid dims for partitioned or sparsity-compressed runs).
    const std::uint64_t n_pitch = operands.dims.n;

    Cycle compute_end = start_cycle;
    Cycle prev_compute_start = start_cycle;
    Cycle prev_prefetch_done = start_cycle;
    bool first_fold = true;
    // Compute-start history for depth-d prefetch: the buffer for fold
    // f frees up when fold f-depth starts computing.
    std::vector<Cycle> start_history;
    std::uint64_t fold_index = 0;
    const std::uint32_t depth = cfg_.prefetchDepth;
    // Writeback of fold f is issued after fold f+1's prefetch so call
    // order matches time order (prefetch overlaps the previous fold's
    // compute; the writeback happens at that fold's drain).
    bool pending_writeback = false;
    TileSpan pending_span;

    for (std::uint64_t rf = 0; rf < grid.rowFolds(); ++rf) {
        for (std::uint64_t cf = 0; cf < grid.colFolds(); ++cf) {
            const std::uint64_t tr = grid.tileRows(rf);
            const std::uint64_t tc = grid.tileCols(cf);
            const std::uint64_t rbase = rf * grid.arrayRows();
            const std::uint64_t cbase = cf * grid.arrayCols();

            FoldPlan plan;
            switch (grid.dataflow()) {
              case Dataflow::OutputStationary: {
                if (operands.conv) {
                    planConvIfmap(operands, rbase, rbase + tr - 1, 0,
                                  k_dim - 1, k_dim, plan.reads);
                } else if (ifmapCache_.access(rf, tr * k_dim)) {
                    plan.reads.push_back({operands.ifmapAddr(rbase, 0),
                                          1, tr * k_dim, 0});
                }
                if (filterCache_.access(cf, k_dim * tc)) {
                    plan.reads.push_back({operands.filterAddr(0, cbase),
                                          k_dim, tc, n_pitch});
                }
                plan.writeback = {operands.ofmapAddr(rbase, cbase), tr,
                                  tc, n_pitch};
                plan.hasWriteback = true;
                break;
              }
              case Dataflow::WeightStationary: {
                const std::uint64_t filter_key =
                    rf * grid.colFolds() + cf;
                if (filterCache_.access(filter_key, tr * tc)) {
                    plan.reads.push_back({operands.filterAddr(rbase,
                                                              cbase),
                                          tr, tc, n_pitch});
                }
                if (operands.conv) {
                    planConvIfmap(operands, 0, m_dim - 1, rbase,
                                  rbase + tr - 1, k_dim, plan.reads);
                } else if (ifmapCache_.access(rf, m_dim * tr)) {
                    plan.reads.push_back({operands.ifmapAddr(0, rbase),
                                          m_dim, tr,
                                          operands.dims.k});
                }
                const std::uint64_t ofmap_fold_words = m_dim * tc;
                const bool spills = ofmap_fold_words > cfg_.ofmapWords;
                const bool last_rf = rf + 1 == grid.rowFolds();
                if (spills && rf > 0) {
                    // Partial sums re-loaded from DRAM.
                    plan.reads.push_back({operands.ofmapAddr(0, cbase),
                                          m_dim, tc, n_pitch});
                }
                if (spills || last_rf) {
                    plan.writeback = {operands.ofmapAddr(0, cbase),
                                      m_dim, tc, n_pitch};
                    plan.hasWriteback = true;
                }
                break;
              }
              case Dataflow::InputStationary: {
                const std::uint64_t ifmap_key =
                    rf * grid.colFolds() + cf;
                if (operands.conv) {
                    planConvIfmap(operands, cbase, cbase + tc - 1,
                                  rbase, rbase + tr - 1, k_dim,
                                  plan.reads);
                } else if (ifmapCache_.access(ifmap_key, tr * tc)) {
                    plan.reads.push_back({operands.ifmapAddr(cbase,
                                                             rbase),
                                          tc, tr, operands.dims.k});
                }
                if (filterCache_.access(rf, n_dim * tr)) {
                    plan.reads.push_back({operands.filterAddr(rbase, 0),
                                          1, tr * n_dim, 0});
                }
                const std::uint64_t ofmap_fold_words = tc * n_dim;
                const bool spills = ofmap_fold_words > cfg_.ofmapWords;
                const bool last_rf = rf + 1 == grid.rowFolds();
                if (spills && rf > 0) {
                    plan.reads.push_back({operands.ofmapAddr(cbase, 0),
                                          1, tc * n_dim, 0});
                }
                if (spills || last_rf) {
                    plan.writeback = {operands.ofmapAddr(cbase, 0), 1,
                                      tc * n_dim, 0};
                    plan.hasWriteback = true;
                }
                break;
              }
            }

            // Prefetch may start once the previous fold's prefetch
            // has finished and a buffer is free — i.e. fold
            // f-depth has started computing (depth = 1 is classic
            // double buffering).
            Cycle buffer_free = start_cycle;
            if (fold_index >= depth)
                buffer_free = start_history[fold_index - depth];
            const Cycle issue_base = first_fold
                ? start_cycle
                : std::max(prev_prefetch_done, buffer_free);
            const Cycle read_stalls_before =
                read_queue.fullStallCycles();
            Cycle ready = issue_base;
            for (const auto& span : plan.reads)
                ready = std::max(ready, issueReads(span, issue_base,
                                                   timing));

            // Retire the previous fold's writeback now that this
            // fold's (earlier-in-time) prefetch has been issued. The
            // drain overlaps the tail of the producing fold; only
            // back-pressure extends the timeline.
            if (pending_writeback) {
                const std::uint64_t reqs = spanRequests(
                    pending_span, cfg_.burstWords);
                Cycle writes_base = compute_end > reqs
                    ? compute_end - reqs : 0;
                writes_base = std::max(writes_base, prev_compute_start);
                const Cycle last_issue = issueWrites(pending_span,
                                                     writes_base,
                                                     timing);
                if (last_issue > compute_end) {
                    timing.drainStallCycles += last_issue - compute_end;
                    compute_end = last_issue;
                }
                pending_writeback = false;
            }

            const Cycle compute_start = std::max(compute_end, ready);
            // Stall attribution: the wait for prefetch data splits
            // into the share caused by a full read queue (bandwidth)
            // and the genuine prefetch miss latency; writeback
            // extensions were charged to drain above. The three
            // buckets sum exactly to stallCycles.
            const Cycle gap = compute_start - compute_end;
            const Cycle queue_delay = read_queue.fullStallCycles()
                - read_stalls_before;
            const Cycle bandwidth_part = std::min(gap, queue_delay);
            timing.bandwidthStallCycles += bandwidth_part;
            timing.prefetchStallCycles += gap - bandwidth_part;
            const Cycle fold_end = compute_start + fold_len;
            if (cfg_.recordFoldSpans
                && timing.foldSpans.size()
                    < LayerTiming::kMaxRecordedFoldSpans) {
                timing.foldSpans.push_back(
                    {compute_start - start_cycle,
                     fold_end - start_cycle,
                     static_cast<std::uint32_t>(rf),
                     static_cast<std::uint32_t>(cf)});
            }

            if (plan.hasWriteback) {
                pending_writeback = true;
                pending_span = plan.writeback;
            }

            prev_prefetch_done = ready;
            prev_compute_start = compute_start;
            start_history.push_back(compute_start);
            ++fold_index;
            compute_end = fold_end;
            first_fold = false;
        }
    }
    if (pending_writeback) {
        const std::uint64_t reqs = spanRequests(pending_span,
                                                cfg_.burstWords);
        Cycle writes_base = compute_end > reqs ? compute_end - reqs : 0;
        writes_base = std::max(writes_base, prev_compute_start);
        const Cycle last_issue = issueWrites(pending_span, writes_base,
                                             timing);
        if (last_issue > compute_end) {
            timing.drainStallCycles += last_issue - compute_end;
            compute_end = last_issue;
        }
    }

    timing.totalCycles = compute_end - start_cycle;
    timing.stallCycles = timing.totalCycles > timing.computeCycles
        ? timing.totalCycles - timing.computeCycles : 0;
    timing.readQueueStalls = read_queue.fullStallCycles();
    timing.writeQueueStalls = write_queue.fullStallCycles();

    const MemoryStats& stats_after = memory_.stats();
    const Count reads = stats_after.readRequests
        - stats_before.readRequests;
    if (reads) {
        timing.avgReadLatency = static_cast<double>(
            stats_after.totalReadLatency - stats_before.totalReadLatency)
            / reads;
    }
    readQueue_ = nullptr;
    writeQueue_ = nullptr;
    totals_.accumulate(timing);
    return timing;
}

void
DoubleBufferedScratchpad::registerStats(obs::StatsRegistry& reg,
                                        const std::string& prefix) const
{
    auto name = [&](const char* leaf) { return prefix + "." + leaf; };
    reg.addScalar(name("computeCycles"),
                  "ideal compute cycles across layers",
                  static_cast<double>(totals_.computeCycles));
    reg.addScalar(name("totalCycles"),
                  "wall-clock cycles incl. stalls across layers",
                  static_cast<double>(totals_.totalCycles));
    reg.addScalar(name("stallCycles"), "memory stall cycles",
                  static_cast<double>(totals_.stallCycles));
    reg.addScalar(name("folds"), "systolic folds executed",
                  static_cast<double>(totals_.folds));
    reg.addVectorElem(name("stallBreakdown"), "prefetchMiss",
                      "stall cycles by cause (sums to stallCycles)",
                      static_cast<double>(totals_.prefetchStallCycles));
    reg.addVectorElem(name("stallBreakdown"), "drain",
                      "stall cycles by cause (sums to stallCycles)",
                      static_cast<double>(totals_.drainStallCycles));
    reg.addVectorElem(
        name("stallBreakdown"), "bandwidth",
        "stall cycles by cause (sums to stallCycles)",
        static_cast<double>(totals_.bandwidthStallCycles));
    reg.addScalar(name("dramReadWords"), "main-memory words read",
                  static_cast<double>(totals_.dramReadWords));
    reg.addScalar(name("dramWriteWords"), "main-memory words written",
                  static_cast<double>(totals_.dramWriteWords));
    reg.addScalar(name("dramReadRequests"),
                  "main-memory read transactions",
                  static_cast<double>(totals_.dramReadRequests));
    reg.addScalar(name("dramWriteRequests"),
                  "main-memory write transactions",
                  static_cast<double>(totals_.dramWriteRequests));
    reg.addScalar(name("readQueueStalls"),
                  "cycles lost to a full read queue",
                  static_cast<double>(totals_.readQueueStalls));
    reg.addScalar(name("writeQueueStalls"),
                  "cycles lost to a full write queue",
                  static_cast<double>(totals_.writeQueueStalls));
    reg.addFormula(name("stallFraction"), "stallCycles / totalCycles",
                   {{{name("stallCycles"), 1.0}},
                    {{name("totalCycles"), 1.0}},
                    1.0});
}

} // namespace scalesim::systolic
