/**
 * @file
 * Reproduces Fig. 7: per-layer memory storage of ResNet-18 filters for
 * dense, 1:4, 2:4 and 3:4 sparsity under Blocked ELLPACK (values +
 * metadata), as written to SPARSE_REPORT.csv.
 */

#include "bench_util.hpp"
#include "common/log.hpp"
#include "common/workloads.hpp"
#include "sparse/formats.hpp"

using namespace scalesim;
using namespace scalesim::sparse;

int
main()
{
    setQuiet(true);
    std::printf("=== Fig. 7: ResNet-18 filter storage (MB), Blocked "
                "ELLPACK, data+metadata ===\n");
    const Topology topo = workloads::resnet18();
    benchutil::Table table({10, 10, 12, 12, 12, 12});
    table.row({"layer", "K", "dense", "1:4", "2:4", "3:4"});
    table.rule();
    double totals[4] = {};
    for (const auto& layer : topo.layers) {
        const GemmDims gemm = layer.toGemm();
        double mb[4];
        const auto dense_pattern = SparsityPattern::dense(gemm.k);
        mb[0] = storageFor(SparseRep::Dense, dense_pattern, gemm.n, 8)
                    .totalMB();
        for (std::uint32_t n = 1; n <= 3; ++n) {
            const auto pattern = SparsityPattern::layerWise(gemm.k, n,
                                                            4);
            mb[n] = storageFor(SparseRep::EllpackBlock, pattern, gemm.n,
                               8).totalMB()
                * layer.repetitions;
        }
        mb[0] *= layer.repetitions;
        for (int i = 0; i < 4; ++i)
            totals[i] += mb[i];
        table.row({layer.name, benchutil::num(gemm.k),
                   benchutil::fmt("%.3f", mb[0]),
                   benchutil::fmt("%.3f", mb[1]),
                   benchutil::fmt("%.3f", mb[2]),
                   benchutil::fmt("%.3f", mb[3])});
    }
    table.rule();
    table.row({"TOTAL", "", benchutil::fmt("%.3f", totals[0]),
               benchutil::fmt("%.3f", totals[1]),
               benchutil::fmt("%.3f", totals[2]),
               benchutil::fmt("%.3f", totals[3])});
    std::printf("shape check (storage grows with N of N:4, all < "
                "dense): %s\n",
                (totals[1] < totals[2] && totals[2] < totals[3]
                 && totals[3] < totals[0])
                    ? "yes" : "NO");
    return 0;
}
