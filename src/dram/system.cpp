#include "dram/system.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>

#include "common/log.hpp"

namespace scalesim::dram
{

AddressMapping
addressMappingFromString(std::string_view text)
{
    std::string c;
    for (char ch : text) {
        if (ch == '-' || ch == '_')
            continue;
        c.push_back(static_cast<char>(
            std::tolower(static_cast<unsigned char>(ch))));
    }
    if (c == "robaracoch")
        return AddressMapping::RoBaRaCoCh;
    if (c == "roracobach")
        return AddressMapping::RoRaCoBaCh;
    if (c == "rorabachco")
        return AddressMapping::RoRaBaChCo;
    fatal("unknown address mapping '%.*s'",
          static_cast<int>(text.size()), text.data());
}

double
TraceResult::bytesPerClock() const
{
    const Cycle span = makespan > stats.firstArrival
        ? makespan - stats.firstArrival : 1;
    return static_cast<double>(stats.readBytes + stats.writeBytes)
        / static_cast<double>(span);
}

DramSystem::DramSystem(const DramSystemConfig& cfg)
    : cfg_(cfg)
{
    if (cfg_.channels == 0)
        fatal("DRAM system needs at least one channel");
    channels_.reserve(cfg_.channels);
    for (std::uint32_t i = 0; i < cfg_.channels; ++i) {
        channels_.emplace_back(cfg_.timing, cfg_.ranks,
                               cfg_.reorderWindow, cfg_.hitStreakCap,
                               cfg_.pagePolicy, cfg_.engine);
    }
}

namespace
{

/**
 * XOR-hashed channel selection: folding higher transaction bits into
 * the channel index keeps strided tile fetches (whose strides would
 * otherwise alias onto one channel) spread across all channels, as
 * real memory controllers do with bit-permutation schemes. Consecutive
 * transactions still rotate channels.
 */
std::uint64_t
channelHash(std::uint64_t tx)
{
    return tx ^ (tx >> 6) ^ (tx >> 12) ^ (tx >> 20);
}

} // namespace

DecodedAddr
DramSystem::decode(Addr byte_addr, std::uint32_t& channel) const
{
    const std::uint64_t tx = byte_addr / cfg_.timing.burstBytes;
    const std::uint64_t cols = cfg_.timing.colsPerRow();
    const std::uint64_t banks = cfg_.timing.banksPerRank;
    const std::uint64_t ranks = cfg_.ranks;
    const std::uint64_t nch = cfg_.channels;

    DecodedAddr out;
    std::uint64_t rest = tx;
    switch (cfg_.mapping) {
      case AddressMapping::RoBaRaCoCh:
        channel = static_cast<std::uint32_t>(channelHash(rest) % nch);
        rest /= nch;
        out.col = rest % cols;
        rest /= cols;
        out.rank = static_cast<std::uint32_t>(rest % ranks);
        rest /= ranks;
        out.bank = static_cast<std::uint32_t>(rest % banks);
        rest /= banks;
        out.row = rest % cfg_.timing.rowsPerBank;
        break;
      case AddressMapping::RoRaCoBaCh:
        channel = static_cast<std::uint32_t>(channelHash(rest) % nch);
        rest /= nch;
        out.bank = static_cast<std::uint32_t>(rest % banks);
        rest /= banks;
        out.col = rest % cols;
        rest /= cols;
        out.rank = static_cast<std::uint32_t>(rest % ranks);
        rest /= ranks;
        out.row = rest % cfg_.timing.rowsPerBank;
        break;
      case AddressMapping::RoRaBaChCo:
        out.col = rest % cols;
        rest /= cols;
        channel = static_cast<std::uint32_t>(channelHash(rest) % nch);
        rest /= nch;
        out.bank = static_cast<std::uint32_t>(rest % banks);
        rest /= banks;
        out.rank = static_cast<std::uint32_t>(rest % ranks);
        rest /= ranks;
        out.row = rest % cfg_.timing.rowsPerBank;
        break;
      default:
        channel = 0;
        break;
    }
    return out;
}

Cycle
DramSystem::request(Addr byte_addr, std::uint64_t bytes, bool write,
                    Cycle arrival)
{
    Cycle completion = arrival;
    Addr addr = byte_addr;
    std::uint64_t remaining = std::max<std::uint64_t>(bytes, 1);
    while (remaining > 0) {
        std::uint32_t ch = 0;
        const DecodedAddr decoded = decode(addr, ch);
        const std::uint64_t seq = channels_[ch].enqueue(decoded, write,
                                                        arrival);
        completion = std::max(completion,
                              channels_[ch].serviceUntil(seq));
        const std::uint64_t chunk = std::min<std::uint64_t>(
            remaining, cfg_.timing.burstBytes);
        addr += chunk;
        remaining -= chunk;
    }
    return completion;
}

TraceResult
DramSystem::runTrace(const std::vector<TraceEntry>& trace)
{
    TraceResult result;
    result.latency.resize(trace.size());
    struct Handle
    {
        std::uint32_t channel;
        std::uint64_t seq;
    };
    std::vector<Handle> handles(trace.size());
    for (std::size_t i = 0; i < trace.size(); ++i) {
        std::uint32_t ch = 0;
        const DecodedAddr decoded = decode(trace[i].byteAddr, ch);
        handles[i] = {ch, channels_[ch].enqueue(decoded, trace[i].write,
                                                trace[i].arrival)};
    }
    for (std::size_t i = 0; i < trace.size(); ++i) {
        const Cycle done = channels_[handles[i].channel].serviceUntil(
            handles[i].seq);
        result.latency[i] = done > trace[i].arrival
            ? done - trace[i].arrival : 0;
    }
    result.stats = totalStats();
    result.makespan = result.stats.lastCompletion;
    return result;
}

Cycle
DramSystem::nextEventCycle() const
{
    Cycle next = Channel::kNoEvent;
    for (const auto& ch : channels_)
        next = std::min(next, ch.nextEventCycle());
    return next;
}

DramStats
DramSystem::totalStats() const
{
    DramStats total;
    for (const auto& ch : channels_)
        total.merge(ch.stats());
    return total;
}

const DramStats&
DramSystem::channelStats(std::uint32_t ch) const
{
    if (ch >= channels_.size())
        fatal("channel %u out of range", ch);
    return channels_[ch].stats();
}

const std::vector<BankStats>&
DramSystem::channelBankStats(std::uint32_t ch) const
{
    if (ch >= channels_.size())
        fatal("channel %u out of range", ch);
    return channels_[ch].bankStats();
}

void
DramSystem::registerStats(obs::StatsRegistry& reg,
                          const std::string& prefix) const
{
    auto name = [&](const char* leaf) { return prefix + "." + leaf; };
    const DramStats total = totalStats();
    reg.addScalar(name("channels"), "DRAM channels",
                  static_cast<double>(channels_.size()));
    reg.addScalar(name("reads"), "read bursts serviced (all channels)",
                  static_cast<double>(total.reads));
    reg.addScalar(name("writes"),
                  "write bursts serviced (all channels)",
                  static_cast<double>(total.writes));
    reg.addScalar(name("rowHits"), "row-buffer hits (all channels)",
                  static_cast<double>(total.rowHits));
    reg.addScalar(name("rowMisses"),
                  "row-buffer misses (all channels)",
                  static_cast<double>(total.rowMisses));
    reg.addScalar(name("rowConflicts"),
                  "row-buffer conflicts (all channels)",
                  static_cast<double>(total.rowConflicts));
    reg.addScalar(name("refreshes"),
                  "all-bank refreshes (all channels)",
                  static_cast<double>(total.refreshes));
    reg.addScalar(name("readBytes"), "bytes read (all channels)",
                  static_cast<double>(total.readBytes));
    reg.addScalar(name("writeBytes"), "bytes written (all channels)",
                  static_cast<double>(total.writeBytes));
    reg.addScalar(name("totalReadLatency"),
                  "summed read latency (memory clocks, all channels)",
                  static_cast<double>(total.totalReadLatency));
    reg.addScalar(name("readQueueWait"),
                  "read latency queued (memory clocks, all channels)",
                  static_cast<double>(total.readQueueWait));
    reg.addScalar(name("readRefreshWait"),
                  "read latency in refresh shadow (memory clocks, "
                  "all channels)",
                  static_cast<double>(total.readRefreshWait));
    reg.addScalar(name("readServiceTime"),
                  "read latency in bank access + transfer (memory "
                  "clocks, all channels)",
                  static_cast<double>(total.readServiceTime));
    reg.addFormula(name("rowHitRate"),
                   "rowHits / (rowHits + rowMisses + rowConflicts)",
                   {{{name("rowHits"), 1.0}},
                    {{name("rowHits"), 1.0},
                     {name("rowMisses"), 1.0},
                     {name("rowConflicts"), 1.0}},
                    1.0});
    reg.addFormula(name("avgReadLatency"),
                   "mean read round-trip latency (memory clocks)",
                   {{{name("totalReadLatency"), 1.0}},
                    {{name("reads"), 1.0}},
                    1.0});
    for (std::size_t i = 0; i < channels_.size(); ++i)
        channels_[i].registerStats(reg, prefix + format(".ch%zu", i));
}

DramMemory::DramMemory(const DramConfig& cfg, std::uint32_t word_bytes)
    : system_([&] {
          DramSystemConfig sys;
          sys.timing = timingPreset(cfg.tech);
          sys.channels = cfg.channels;
          sys.ranks = cfg.ranksPerChannel;
          sys.engine = dramEngineFromString(cfg.engine);
          return sys;
      }()),
      wordBytes_(word_bytes == 0 ? 1 : word_bytes),
      coreToMem_(system_.config().timing.clockMhz
                 / (cfg.coreClockMhz > 0 ? cfg.coreClockMhz : 1000.0))
{
}

Cycle
DramMemory::toMem(Cycle core) const
{
    return static_cast<Cycle>(std::llround(
        static_cast<double>(core) * coreToMem_));
}

Cycle
DramMemory::toCore(Cycle mem) const
{
    return static_cast<Cycle>(std::ceil(
        static_cast<double>(mem) / coreToMem_));
}

Cycle
DramMemory::issueRead(Addr addr, Count words, Cycle now)
{
    // In the coupled flow each channel queue holds only this request's
    // bursts, so the delta of the system-wide component sums across
    // the call is exactly this request's decomposition. The components
    // stay in memory clocks: the CPI-stack layer uses them as
    // apportionment weights, where only the ratios matter.
    const DramStats before = system_.totalStats();
    const Cycle done_mem = system_.request(
        addr * wordBytes_, words * wordBytes_, false, toMem(now));
    const Cycle done = std::max(now + 1, toCore(done_mem));
    const DramStats after = system_.totalStats();
    ++stats_.readRequests;
    stats_.readWords += words;
    stats_.totalReadLatency += done - now;
    stats_.readQueueWait += after.readQueueWait - before.readQueueWait;
    stats_.readRefresh +=
        after.readRefreshWait - before.readRefreshWait;
    stats_.readService +=
        after.readServiceTime - before.readServiceTime;
    return done;
}

Cycle
DramMemory::issueWrite(Addr addr, Count words, Cycle now)
{
    const Cycle done_mem = system_.request(
        addr * wordBytes_, words * wordBytes_, true, toMem(now));
    const Cycle done = std::max(now + 1, toCore(done_mem));
    ++stats_.writeRequests;
    stats_.writeWords += words;
    stats_.totalWriteLatency += done - now;
    return done;
}

} // namespace scalesim::dram
