/**
 * @file
 * Per-layer sparsity model: resolves the [sparsity] config and the
 * layer's SparsitySupport annotation into a SparsityPattern, exposes
 * the compressed GEMM dimensions for the compute models, and produces
 * SPARSE_REPORT rows (§IV-B Step 3).
 */

#ifndef SCALESIM_SPARSE_MODEL_HH
#define SCALESIM_SPARSE_MODEL_HH

#include <optional>
#include <string>

#include "common/config.hpp"
#include "common/types.hpp"
#include "sparse/formats.hpp"
#include "sparse/pattern.hpp"

namespace scalesim::sparse
{

/** One row of SPARSE_REPORT.csv. */
struct SparseLayerReport
{
    std::string layerName;
    std::string representation;
    std::uint32_t ratioN = 0;
    std::uint32_t ratioM = 0;
    std::uint64_t denseK = 0;
    std::uint64_t compressedK = 0;
    /** Dense filter storage, bits. */
    std::uint64_t originalFilterBits = 0;
    /** Compressed values + metadata, bits. */
    std::uint64_t newFilterBits = 0;
    std::uint64_t metadataBits = 0;
};

/**
 * Resolves sparsity for one layer.
 *
 * Row-wise mode (OptimizedMapping = true) randomizes N per M-block
 * with N <= M/2, seeded deterministically from the config seed and the
 * layer's position. Layer-wise mode (SparsitySupport = true) applies
 * the layer's own N:M annotation uniformly. Otherwise dense.
 */
class SparseLayerModel
{
  public:
    SparseLayerModel(const LayerSpec& layer, const SparsityConfig& cfg,
                     std::uint64_t layer_index = 0);

    /** True when compression actually happens (compressedK < K). */
    bool active() const { return active_; }

    const SparsityPattern& pattern() const { return pattern_; }

    /** GEMM dims with K replaced by the compressed K. */
    GemmDims effectiveGemm() const;

    /** Storage accounting under the configured representation. */
    StorageReport storage(std::uint32_t word_bits = 8) const;

    /** SPARSE_REPORT row. */
    SparseLayerReport report(std::uint32_t word_bits = 8) const;

  private:
    LayerSpec layer_;
    SparsityConfig cfg_;
    GemmDims denseGemm_;
    // NOTE: these three are written by resolvePattern() while pattern_
    // is constructed, so they must be declared (and thus initialized)
    // before pattern_.
    bool active_ = false;
    std::uint32_t appliedN_ = 0;
    std::uint32_t appliedM_ = 0;
    SparsityPattern pattern_;
};

} // namespace scalesim::sparse

#endif // SCALESIM_SPARSE_MODEL_HH
