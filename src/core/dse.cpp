#include "core/dse.hpp"

#include <algorithm>
#include <limits>
#include <ostream>

#include "common/csv.hpp"
#include "common/log.hpp"

namespace scalesim::core
{

std::vector<DsePoint>
runSweep(const DseSweep& sweep, const Topology& topology)
{
    if (sweep.arraySizes.empty() || sweep.dataflows.empty()
        || sweep.sramKbTotals.empty()) {
        fatal("DSE sweep has an empty axis");
    }
    std::vector<DsePoint> points;
    points.reserve(sweep.arraySizes.size() * sweep.dataflows.size()
                   * sweep.sramKbTotals.size());
    for (std::uint32_t array : sweep.arraySizes) {
        for (Dataflow df : sweep.dataflows) {
            for (std::uint64_t sram_kb : sweep.sramKbTotals) {
                SimConfig cfg = sweep.base;
                cfg.arrayRows = cfg.arrayCols = array;
                cfg.dataflow = df;
                cfg.energy.enabled = true;
                cfg.memory.ifmapSramKb = sram_kb / 2;
                cfg.memory.filterSramKb = sram_kb / 4;
                cfg.memory.ofmapSramKb = sram_kb / 4;
                Simulator sim(cfg);
                const RunResult run = sim.run(topology);
                DsePoint point;
                point.array = array;
                point.dataflow = df;
                point.sramKb = sram_kb;
                point.cycles = run.totalCycles;
                point.energyMj = run.totalEnergy.totalMj();
                point.edp = run.edp;
                points.push_back(point);
            }
        }
    }
    return points;
}

namespace
{

template <typename Key>
DsePoint
bestBy(const std::vector<DsePoint>& points, Key key)
{
    if (points.empty())
        fatal("no DSE points to rank");
    return *std::min_element(points.begin(), points.end(),
                             [&](const DsePoint& a, const DsePoint& b) {
                                 return key(a) < key(b);
                             });
}

} // namespace

DsePoint
bestByLatency(const std::vector<DsePoint>& points)
{
    return bestBy(points, [](const DsePoint& p) {
        return static_cast<double>(p.cycles);
    });
}

DsePoint
bestByEnergy(const std::vector<DsePoint>& points)
{
    return bestBy(points, [](const DsePoint& p) { return p.energyMj; });
}

DsePoint
bestByEdp(const std::vector<DsePoint>& points)
{
    return bestBy(points, [](const DsePoint& p) { return p.edp; });
}

std::vector<DsePoint>
paretoFrontier(std::vector<DsePoint> points)
{
    // Sort by cycles, then sweep keeping strictly improving energy.
    std::sort(points.begin(), points.end(),
              [](const DsePoint& a, const DsePoint& b) {
                  if (a.cycles != b.cycles)
                      return a.cycles < b.cycles;
                  return a.energyMj < b.energyMj;
              });
    std::vector<DsePoint> frontier;
    double best_energy = std::numeric_limits<double>::max();
    for (const auto& point : points) {
        if (point.energyMj < best_energy) {
            frontier.push_back(point);
            best_energy = point.energyMj;
        }
    }
    return frontier;
}

void
writeDseReport(std::ostream& out, const std::vector<DsePoint>& points)
{
    const auto frontier = paretoFrontier(points);
    auto on_frontier = [&](const DsePoint& p) {
        for (const auto& f : frontier) {
            if (f.array == p.array && f.dataflow == p.dataflow
                && f.sramKb == p.sramKb) {
                return true;
            }
        }
        return false;
    };
    CsvWriter csv(out);
    csv.writeRow({"Array", "Dataflow", "SramKB", "Cycles", "Energy_mJ",
                  "EdP", "Pareto"});
    for (const auto& p : points) {
        csv.writeRow({std::to_string(p.array), toString(p.dataflow),
                      std::to_string(p.sramKb),
                      std::to_string(p.cycles),
                      format("%.4f", p.energyMj),
                      format("%.4g", p.edp),
                      on_frontier(p) ? "yes" : "no"});
    }
}

} // namespace scalesim::core
