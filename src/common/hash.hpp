/**
 * @file
 * FNV-1a content hashing for the content-addressed layer-result cache
 * (and anything else that needs a stable, fast, dependency-free digest
 * of canonical byte strings). 64-bit, byte-at-a-time — the same
 * parameters the InvariantAuditor's replay-fidelity checksum uses.
 */

#ifndef SCALESIM_COMMON_HASH_HH
#define SCALESIM_COMMON_HASH_HH

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string_view>

namespace scalesim
{

/** Incremental 64-bit FNV-1a hasher. */
class Fnv1a
{
  public:
    static constexpr std::uint64_t kOffsetBasis =
        1469598103934665603ull;
    static constexpr std::uint64_t kPrime = 1099511628211ull;

    /** Digest of one contiguous buffer. */
    static std::uint64_t
    of(const void* data, std::size_t size)
    {
        Fnv1a h;
        h.update(data, size);
        return h.digest();
    }

    void
    update(const void* data, std::size_t size)
    {
        const auto* bytes = static_cast<const unsigned char*>(data);
        for (std::size_t i = 0; i < size; ++i) {
            hash_ ^= bytes[i];
            hash_ *= kPrime;
        }
    }

    /** Feed an integral value as its little-endian byte image. */
    template <typename T>
    void
    mix(T value)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        unsigned char bytes[sizeof(T)];
        std::memcpy(bytes, &value, sizeof(T));
        update(bytes, sizeof(T));
    }

    /** Feed a length-prefixed string (self-delimiting: "ab","c" and
     *  "a","bc" hash differently). */
    void
    mixString(std::string_view text)
    {
        mix(static_cast<std::uint64_t>(text.size()));
        update(text.data(), text.size());
    }

    std::uint64_t digest() const { return hash_; }

  private:
    std::uint64_t hash_ = kOffsetBasis;
};

} // namespace scalesim

#endif // SCALESIM_COMMON_HASH_HH
