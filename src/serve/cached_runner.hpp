/**
 * @file
 * Cache-backed topology/sweep evaluation for the sweep server.
 *
 * The cached runner evaluates every layer **in isolation**: the
 * Simulator is reset before each layer, so a layer's result depends
 * only on (layer shape, config) — not on its position in the topology
 * or on DRAM state carried over from earlier layers. That position
 * independence is exactly what makes a per-layer content-addressed
 * cache sound. It is a deliberately different (and documented)
 * semantic from Simulator::run's coupled timeline, where row-buffer
 * and refresh state flows across layer boundaries; sweeps compare
 * design points, and layer-isolated evaluation ranks them identically
 * while letting warm sweeps skip simulation entirely.
 *
 * The cache key is a 64-bit FNV-1a digest over a version tag, the
 * config slice that affects per-layer timing/energy (array geometry,
 * dataflow, mode, fold cache, SIMD, all [memory]/[sparsity]/[dram]/
 * [layout]/[energy] knobs), and the canonical layer shape. runName,
 * audit, interval sampling, multicore engine choice, the layer's
 * display name, and its repetition count are deliberately excluded —
 * they never change one instance's numbers (name/repetitions are
 * patched onto the cached result at hit time). The layer index joins
 * the key only when sparsity is enabled, because SparseLayerModel
 * seeds its per-row pattern with the layer position.
 *
 * Byte-identity contract: for a fixed config and topology, the runner
 * produces bit-identical RunResults (stats dumps included) whether
 * every layer was simulated, decoded from cache, or any mix — the
 * cache payload stores doubles as bit patterns and the per-layer
 * component stats registry verbatim.
 */

#ifndef SCALESIM_SERVE_CACHED_RUNNER_HH
#define SCALESIM_SERVE_CACHED_RUNNER_HH

#include "core/dse.hpp"
#include "serve/cache.hpp"

namespace scalesim::serve
{

/** Content-address of one layer evaluation; see file comment. */
std::uint64_t layerCacheKey(const SimConfig& cfg, const LayerSpec& layer,
                            std::uint64_t layer_index);

/**
 * Evaluate a topology with layer-isolated semantics, consulting (and
 * filling) `cache` when non-null. Audit, interval sampling, and
 * fold-span recording are incompatible with cached evaluation; those
 * configs fall back to the standard coupled Simulator::run (cache
 * neither consulted nor filled) so their outputs stay complete.
 */
core::RunResult runTopologyCached(const SimConfig& cfg,
                                  const Topology& topology,
                                  LayerResultCache* cache);

/**
 * runSweepDetailed with layer-isolated semantics and a shared cache:
 * candidates run on `sweep.jobs` workers, results land at their
 * sequential-order index, and every worker consults the same
 * thread-safe cache. Output is byte-identical for any jobs value and
 * for any cache state (cold, warm, partial).
 */
std::vector<core::DseDetailedPoint>
runSweepCachedDetailed(const core::DseSweep& sweep,
                       const Topology& topology,
                       LayerResultCache* cache);

/** Point-only variant of runSweepCachedDetailed. */
std::vector<core::DsePoint> runSweepCached(const core::DseSweep& sweep,
                                           const Topology& topology,
                                           LayerResultCache* cache);

} // namespace scalesim::serve

#endif // SCALESIM_SERVE_CACHED_RUNNER_HH
