/**
 * @file
 * Simulator reentrancy regression tests. Calling run() twice on one
 * Simulator used to leak state from the first run into the second:
 * DRAM stats kept accumulating, the scratchpad and fold cache carried
 * warm state, and component stats double-registered. A second run must
 * now be bit-identical to a run on a freshly constructed object, with
 * the stats dump as the byte-level witness.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "common/workloads.hpp"
#include "core/simulator.hpp"

using namespace scalesim;
using namespace scalesim::core;

namespace
{

Topology
smallTopology()
{
    Topology topo;
    topo.name = "rerun";
    topo.layers.push_back(
        LayerSpec::conv("conv", 14, 14, 3, 3, 16, 32, 1));
    topo.layers.push_back(LayerSpec::gemm("fc", 4, 64, 128));
    return topo;
}

SimConfig
fullConfig()
{
    SimConfig cfg;
    cfg.arrayRows = 16;
    cfg.arrayCols = 16;
    cfg.dataflow = Dataflow::WeightStationary;
    cfg.mode = SimMode::Trace;
    cfg.dram.enabled = true;
    cfg.energy.enabled = true;
    return cfg;
}

std::string
statsDump(const RunResult& run)
{
    std::ostringstream out;
    run.writeStats(out);
    return out.str();
}

} // namespace

TEST(Rerun, SecondRunMatchesFreshObject)
{
    const SimConfig cfg = fullConfig();
    const Topology topo = smallTopology();

    Simulator reused(cfg);
    const RunResult first = reused.run(topo);
    const RunResult second = reused.run(topo);

    Simulator fresh(cfg);
    const RunResult reference = fresh.run(topo);

    // Pre-fix: DRAM words doubled on the second run and the stats
    // dump diverged (cumulative dram.* counters, warm fold cache).
    EXPECT_EQ(second.totalCycles, reference.totalCycles);
    EXPECT_EQ(second.computeCycles, reference.computeCycles);
    EXPECT_EQ(second.stallCycles, reference.stallCycles);
    EXPECT_EQ(second.dramReadWords, reference.dramReadWords);
    EXPECT_EQ(second.dramWriteWords, reference.dramWriteWords);
    EXPECT_EQ(second.dramStats.reads, reference.dramStats.reads);
    EXPECT_EQ(second.dramStats.writes, reference.dramStats.writes);
    EXPECT_EQ(second.dramStats.refreshes,
              reference.dramStats.refreshes);
    EXPECT_EQ(statsDump(second), statsDump(reference));
    EXPECT_EQ(statsDump(first), statsDump(reference));
}

TEST(Rerun, ExplicitResetMatchesFreshObject)
{
    const SimConfig cfg = fullConfig();
    const Topology topo = smallTopology();

    Simulator reused(cfg);
    (void)reused.run(topo);
    reused.reset();
    const RunResult after_reset = reused.run(topo);

    Simulator fresh(cfg);
    EXPECT_EQ(statsDump(after_reset), statsDump(fresh.run(topo)));
}

TEST(Rerun, SparseRunsStayIdentical)
{
    SimConfig cfg = fullConfig();
    cfg.sparsity.enabled = true;
    Topology topo = smallTopology();
    topo.layers[0].sparseN = 2;
    topo.layers[0].sparseM = 4;

    Simulator reused(cfg);
    (void)reused.run(topo);
    const RunResult second = reused.run(topo);

    Simulator fresh(cfg);
    EXPECT_EQ(statsDump(second), statsDump(fresh.run(topo)));
}

TEST(Rerun, AuditStaysCleanOnSecondRun)
{
    SimConfig cfg = fullConfig();
    cfg.audit = true;
    const Topology topo = smallTopology();

    Simulator sim(cfg);
    const RunResult first = sim.run(topo);
    ASSERT_TRUE(first.audited);
    EXPECT_TRUE(first.audit.clean());

    // Pre-fix: stale per-run baselines made the conservation laws
    // fire on the second run even though the simulation was correct.
    const RunResult second = sim.run(topo);
    ASSERT_TRUE(second.audited);
    EXPECT_TRUE(second.audit.clean())
        << [&] {
               std::ostringstream out;
               second.audit.writeReport(out);
               return out.str();
           }();
    EXPECT_EQ(second.audit.checks(), first.audit.checks());
}
