
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dram/controller.cpp" "src/dram/CMakeFiles/scalesim_dram.dir/controller.cpp.o" "gcc" "src/dram/CMakeFiles/scalesim_dram.dir/controller.cpp.o.d"
  "/root/repo/src/dram/system.cpp" "src/dram/CMakeFiles/scalesim_dram.dir/system.cpp.o" "gcc" "src/dram/CMakeFiles/scalesim_dram.dir/system.cpp.o.d"
  "/root/repo/src/dram/timing.cpp" "src/dram/CMakeFiles/scalesim_dram.dir/timing.cpp.o" "gcc" "src/dram/CMakeFiles/scalesim_dram.dir/timing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/scalesim_common.dir/DependInfo.cmake"
  "/root/repo/build/src/systolic/CMakeFiles/scalesim_systolic.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
