/**
 * @file
 * Contention arbitration for the cycle-interleaved multi-core
 * co-simulation: a round-robin grant arbiter that picks which core's
 * pending memory transaction executes next on the shared timeline, and
 * a per-core MemoryPort decorator that attributes shared-resource wait
 * cycles and traffic to the requesting core.
 */

#ifndef SCALESIM_MULTICORE_ARBITER_HH
#define SCALESIM_MULTICORE_ARBITER_HH

#include <cstddef>
#include <vector>

#include "obs/stats.hpp"
#include "systolic/memory.hpp"

namespace scalesim::multicore
{

/** Grant statistics of the shared-memory arbiter. */
struct ArbiterStats
{
    /** Transactions granted. */
    Count grants = 0;
    /**
     * Grants where at least one other core wanted the same cycle:
     * each such grant adds (contenders - 1). Zero means the cores
     * never collided and the static 1/N split would have been exact.
     */
    Count arbConflicts = 0;
    /** Contenders left waiting at each grant (occupancy of the
     *  arbitration queue; bucket 0 = uncontended grants). */
    obs::Histogram waiters;
};

/**
 * Round-robin arbiter over N requester ports. Each port advertises the
 * cycle of its next pending transaction (or `none` when idle/done);
 * grant() picks the earliest, breaking same-cycle ties round-robin
 * from the port after the previous grantee.
 *
 * Selection is an argmin over the total-order key (cycle, cyclic
 * distance from the round-robin pointer), so the result is independent
 * of the order ports are scanned in — grant(scanReverse) exists purely
 * to let tests prove that.
 */
class RoundRobinArbiter
{
  public:
    explicit RoundRobinArbiter(std::size_t ports,
                               bool scan_reverse = false);

    /** Returned by grant() when every port is idle. */
    static constexpr std::size_t kNone = ~static_cast<std::size_t>(0);

    /**
     * Pick the next port to serve. `next[i]` is port i's pending
     * transaction cycle, `none` marking idle ports. Returns kNone when
     * nothing is pending.
     */
    std::size_t grant(const std::vector<Cycle>& next, Cycle none);

    const ArbiterStats& stats() const { return stats_; }

  private:
    std::size_t ports_;
    bool scanReverse_;
    /** Port after the previous grantee gets top tie-break priority. */
    std::size_t nextPriority_ = 0;
    ArbiterStats stats_;
};

/** Per-core traffic/wait statistics of one MemoryPort. */
struct MemoryPortStats
{
    Count readRequests = 0;
    Count writeRequests = 0;
    std::uint64_t readWords = 0;
    std::uint64_t writeWords = 0;
    /**
     * Aggregate queueing delay at the shared serialization point (the
     * L2 port, or the DRAM bus when no L2 is configured): the sum over
     * this core's transactions of the cycles each spent queued before
     * service. The backlog a transaction queues behind mixes other
     * cores' traffic with this core's own earlier bursts — use the
     * arbiter's arbConflicts/waiters stats for the pure cross-core
     * collision count. `stallOnL2` in the stats output.
     */
    Cycle waitCycles = 0;
    /**
     * Port-level read-latency split, mirroring what the port's L1
     * engine sees through MainMemory::stats(). Conservation law
     * (audited under `cpi.conservation`):
     *   readPortWait + readQueueWait + readRefresh + readService
     *     == totalReadLatency
     * holds exactly for every shared model — the residual a backend
     * leaves unattributed (e.g. SharedL2 hit/transfer time, which the
     * L2 does not decompose) is folded into readService.
     */
    Cycle totalReadLatency = 0;
    Cycle readPortWait = 0;
    Cycle readQueueWait = 0;
    Cycle readRefresh = 0;
    Cycle readService = 0;
};

/**
 * Per-core view of the shared memory: forwards every transaction and
 * charges the shared resource's issue wait to this core. One instance
 * per core sits between its L1 engine and the shared L2/DRAM.
 */
class MemoryPort : public systolic::MainMemory
{
  public:
    explicit MemoryPort(systolic::MainMemory& shared)
        : shared_(shared)
    {
    }

    Cycle issueRead(Addr addr, Count words, Cycle now) override;
    Cycle issueWrite(Addr addr, Count words, Cycle now) override;
    Cycle lastIssueWait() const override
    {
        return shared_.lastIssueWait();
    }

    const MemoryPortStats& portStats() const { return portStats_; }

  private:
    systolic::MainMemory& shared_;
    MemoryPortStats portStats_;
};

} // namespace scalesim::multicore

#endif // SCALESIM_MULTICORE_ARBITER_HH
