/**
 * @file
 * Reproduces Fig. 9: impact of DDR4 channel count (1..8) on per-layer
 * memory throughput for ResNet-18 on a TPU-like configuration (§V-C:
 * DDR4-2400, 128-entry read/write queues). Early, memory-heavy layers
 * scale with channels; late 1x1/FC layers saturate around 2 channels.
 */

#include "bench_util.hpp"
#include "common/log.hpp"
#include "common/workloads.hpp"
#include "core/simulator.hpp"

using namespace scalesim;

namespace
{

struct LayerThroughput
{
    std::string name;
    double mbps[4]; // channels 1, 2, 4, 8
};

} // namespace

int
main(int argc, char** argv)
{
    setQuiet(true);
    const unsigned jobs = benchutil::jobsFromArgs(argc, argv, 1);
    std::printf("=== Fig. 9: memory throughput (MB/s) vs DRAM "
                "channels, ResNet-18, TPU config ===\n");
    const std::uint32_t channel_counts[] = {1, 2, 4, 8};
    const Topology topo = workloads::resnet18();
    std::vector<LayerThroughput> rows(topo.layers.size());
    for (std::size_t i = 0; i < topo.layers.size(); ++i)
        rows[i].name = topo.layers[i].name;

    // One config point per channel count; each point owns its
    // Simulator and writes a distinct mbps column, so the table is
    // identical for every --jobs value.
    benchutil::forEachPoint(4, jobs, [&](std::uint64_t ci) {
        SimConfig cfg = SimConfig::tpuMemoryStudy();
        cfg.mode = SimMode::Analytical;
        cfg.dram.channels = channel_counts[ci];
        // The paper's Fig. 9 uses SCALE-Sim's im2col-expanded traffic
        // accounting; our window-reuse addressing (the default) evens
        // out per-layer memory intensity (see ablation_conv_reuse).
        cfg.memory.im2colAddressing = false;
        core::Simulator sim(cfg);
        const core::RunResult run = sim.run(topo);
        for (std::size_t i = 0; i < run.layers.size(); ++i) {
            const auto& l = run.layers[i];
            const double seconds = static_cast<double>(l.totalCycles)
                / (cfg.dram.coreClockMhz * 1e6);
            const double bytes = static_cast<double>(
                l.timing.dramReadWords + l.timing.dramWriteWords)
                * cfg.memory.wordBytes;
            rows[i].mbps[ci] = bytes / seconds / 1e6;
        }
    });

    benchutil::Table table({10, 12, 12, 12, 12, 10});
    table.row({"layer", "1ch", "2ch", "4ch", "8ch", "8ch/1ch"});
    table.rule();
    double early_gain = 0.0;
    double late_gain = 0.0;
    int early_n = 0, late_n = 0;
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const double gain = rows[i].mbps[3]
            / std::max(1e-9, rows[i].mbps[0]);
        table.row({rows[i].name, benchutil::fmt("%.0f", rows[i].mbps[0]),
                   benchutil::fmt("%.0f", rows[i].mbps[1]),
                   benchutil::fmt("%.0f", rows[i].mbps[2]),
                   benchutil::fmt("%.0f", rows[i].mbps[3]),
                   benchutil::fmt("%.2fx", gain)});
        if (i < 6) {
            early_gain += gain;
            ++early_n;
        } else if (i >= rows.size() - 6) {
            late_gain += gain;
            ++late_n;
        }
    }
    table.rule();
    early_gain /= early_n;
    late_gain /= late_n;
    std::printf("mean 8ch/1ch throughput gain: early layers %.2fx, "
                "late layers %.2fx (paper: early layers scale with "
                "channels, late layers saturate ~2ch)\n",
                early_gain, late_gain);
    return 0;
}
