#include "multicore/partition.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "common/parallel.hpp"

namespace scalesim::multicore
{

std::string
toString(PartitionScheme scheme)
{
    switch (scheme) {
      case PartitionScheme::Spatial: return "spatial";
      case PartitionScheme::SpatioTemporal1: return "spatio_temporal_1";
      case PartitionScheme::SpatioTemporal2: return "spatio_temporal_2";
    }
    return "spatial";
}

PartitionEval
evaluatePartition(const GemmDims& gemm, Dataflow df,
                  std::uint32_t array_rows, std::uint32_t array_cols,
                  std::uint64_t pr, std::uint64_t pc,
                  PartitionScheme scheme)
{
    if (pr == 0 || pc == 0)
        fatal("partition grid must be non-zero");
    const MappedDims mapped = systolic::mapGemmConventional(gemm, df);
    const std::uint64_t sr = mapped.sr;
    const std::uint64_t sc = mapped.sc;
    const std::uint64_t t = mapped.t;
    const std::uint64_t rows = array_rows;
    const std::uint64_t cols = array_cols;

    PartitionEval eval;
    eval.scheme = scheme;
    eval.pr = pr;
    eval.pc = pc;

    std::uint64_t sr_share = sr;
    std::uint64_t sc_share = sc;
    std::uint64_t t_share = t;
    Cycle fold_cycles = 0;
    std::uint64_t folds = 0;
    switch (scheme) {
      case PartitionScheme::Spatial:
        sr_share = ceilDiv(sr, pr);
        sc_share = ceilDiv(sc, pc);
        fold_cycles = 2 * rows + cols + t - 2;
        folds = ceilDiv(sr, pr * rows) * ceilDiv(sc, pc * cols);
        break;
      case PartitionScheme::SpatioTemporal1:
        sr_share = ceilDiv(sr, pr);
        t_share = ceilDiv(t, pc);
        fold_cycles = 2 * rows + cols + t_share - 2;
        folds = ceilDiv(sr, pr * rows) * ceilDiv(sc, cols);
        break;
      case PartitionScheme::SpatioTemporal2:
        sc_share = ceilDiv(sc, pc);
        t_share = ceilDiv(t, pr);
        fold_cycles = 2 * rows + cols + t_share - 2;
        folds = ceilDiv(sr, rows) * ceilDiv(sc, pc * cols);
        break;
    }
    eval.cycles = fold_cycles * folds;

    // Per-core operand partitions (Fig. 4): input Sr-share x T-share,
    // weight Sc-share x T-share, plus the (possibly partial) output.
    const std::uint64_t input_part = sr_share * t_share;
    const std::uint64_t weight_part = sc_share * t_share;
    const std::uint64_t output_part = sr_share * sc_share;
    eval.footprintWords = pr * pc
        * (input_part + weight_part + output_part);

    // Shared-L2 deduplication: only distinct partitions are stored.
    std::uint64_t unique_input = 0;
    std::uint64_t unique_weight = 0;
    std::uint64_t outputs = 0;
    switch (scheme) {
      case PartitionScheme::Spatial:
        // Cores in a row share the input partition, cores in a column
        // share the weight partition.
        unique_input = pr * input_part;
        unique_weight = pc * weight_part;
        outputs = pr * pc * output_part;
        break;
      case PartitionScheme::SpatioTemporal1:
        unique_input = pr * pc * input_part; // all distinct
        unique_weight = pc * weight_part;    // shared along Pr
        outputs = pr * pc * output_part;     // Pc partial copies
        break;
      case PartitionScheme::SpatioTemporal2:
        unique_input = pr * input_part;      // shared along Pc
        unique_weight = pr * pc * weight_part;
        outputs = pr * pc * output_part;
        break;
    }
    eval.l2FootprintWords = unique_input + unique_weight + outputs;
    return eval;
}

std::vector<PartitionEval>
enumeratePartitions(const GemmDims& gemm, Dataflow df,
                    std::uint32_t array_rows, std::uint32_t array_cols,
                    std::uint64_t cores, PartitionScheme scheme,
                    unsigned jobs)
{
    if (cores == 0)
        fatal("need at least one core");
    std::vector<std::uint64_t> pr_values;
    for (std::uint64_t pr = 1; pr <= cores; ++pr) {
        if (cores % pr == 0)
            pr_values.push_back(pr);
    }
    std::vector<PartitionEval> evals(pr_values.size());
    parallelFor(pr_values.size(), jobs, [&](std::uint64_t i) {
        evals[i] = evaluatePartition(gemm, df, array_rows, array_cols,
                                     pr_values[i], cores / pr_values[i],
                                     scheme);
    });
    return evals;
}

PartitionEval
bestByCycles(const std::vector<PartitionEval>& evals)
{
    if (evals.empty())
        fatal("bestByCycles: no candidates");
    return *std::min_element(
        evals.begin(), evals.end(),
        [](const PartitionEval& a, const PartitionEval& b) {
            if (a.cycles != b.cycles)
                return a.cycles < b.cycles;
            return a.footprintWords < b.footprintWords;
        });
}

PartitionEval
bestByFootprint(const std::vector<PartitionEval>& evals)
{
    if (evals.empty())
        fatal("bestByFootprint: no candidates");
    return *std::min_element(
        evals.begin(), evals.end(),
        [](const PartitionEval& a, const PartitionEval& b) {
            if (a.footprintWords != b.footprintWords)
                return a.footprintWords < b.footprintWords;
            return a.cycles < b.cycles;
        });
}

} // namespace scalesim::multicore
