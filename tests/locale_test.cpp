/**
 * @file
 * Locale-independence regression tests. IniFile::getDouble and the
 * JSON reader used to parse numbers with std::strtod, which honors
 * LC_NUMERIC: under a comma-decimal locale (de_DE and friends),
 * "0.125" silently truncated to 0 and sweep configs went wrong
 * without any error. Both now route through scalesim::parseDouble
 * (std::from_chars, locale-free by specification); these tests pin
 * the parser's contract and re-run the original failure under a
 * comma-decimal locale when the container has one installed.
 */

#include <clocale>
#include <cmath>
#include <string>

#include <gtest/gtest.h>

#include "common/config.hpp"
#include "common/log.hpp"
#include "common/parse.hpp"
#include "obs/json_read.hpp"

using namespace scalesim;

namespace
{

double
parsed(const std::string& text)
{
    double value = 0.0;
    EXPECT_EQ(parseDouble(text, value), NumberParse::Ok) << text;
    return value;
}

/**
 * Switch LC_NUMERIC to a comma-decimal locale for the test's scope.
 * installed() is false when the container has none of the candidates
 * (minimal images often ship only C/POSIX) — callers GTEST_SKIP then.
 */
class CommaLocale
{
  public:
    CommaLocale()
    {
        const char* saved = std::setlocale(LC_NUMERIC, nullptr);
        saved_ = saved ? saved : "C";
        for (const char* name :
             {"de_DE.UTF-8", "de_DE.utf8", "de_DE", "fr_FR.UTF-8",
              "fr_FR.utf8", "it_IT.UTF-8", "nl_NL.UTF-8"}) {
            if (std::setlocale(LC_NUMERIC, name) != nullptr
                && std::string(std::localeconv()->decimal_point)
                       == ",") {
                installed_ = true;
                return;
            }
        }
        std::setlocale(LC_NUMERIC, saved_.c_str());
    }

    ~CommaLocale() { std::setlocale(LC_NUMERIC, saved_.c_str()); }

    bool installed() const { return installed_; }

  private:
    std::string saved_;
    bool installed_ = false;
};

} // namespace

TEST(ParseDouble, AcceptsPlainNumbers)
{
    EXPECT_DOUBLE_EQ(parsed("1.5"), 1.5);
    EXPECT_DOUBLE_EQ(parsed("-2e3"), -2000.0);
    EXPECT_DOUBLE_EQ(parsed("0.125"), 0.125);
    EXPECT_DOUBLE_EQ(parsed(".5"), 0.5);
    EXPECT_DOUBLE_EQ(parsed("42"), 42.0);
    // JSON-style leading '+' (strtod accepted it; keep accepting).
    EXPECT_DOUBLE_EQ(parsed("+1.5"), 1.5);
}

TEST(ParseDouble, RejectsGarbage)
{
    double value = 0.0;
    EXPECT_EQ(parseDouble("", value), NumberParse::Bad);
    EXPECT_EQ(parseDouble("abc", value), NumberParse::Bad);
    EXPECT_EQ(parseDouble("1.5x", value), NumberParse::Bad);
    EXPECT_EQ(parseDouble("1.5 ", value), NumberParse::Bad);
    EXPECT_EQ(parseDouble("++1", value), NumberParse::Bad);
    EXPECT_EQ(parseDouble("+-1", value), NumberParse::Bad);
    // Comma is never a decimal separator, in any locale.
    EXPECT_EQ(parseDouble("0,5", value), NumberParse::Bad);
}

TEST(ParseDouble, SaturatesOutOfRange)
{
    double value = 0.0;
    EXPECT_EQ(parseDouble("1e999", value), NumberParse::OutOfRange);
    EXPECT_TRUE(std::isinf(value) && value > 0.0);
    EXPECT_EQ(parseDouble("-1e999", value), NumberParse::OutOfRange);
    EXPECT_TRUE(std::isinf(value) && value < 0.0);
}

TEST(LocaleRegression, IniDoubleUnderCommaLocale)
{
    CommaLocale locale;
    if (!locale.installed())
        GTEST_SKIP() << "no comma-decimal locale installed";
    const IniFile ini = IniFile::parseString(
        "[energy]\nfrequency_ghz = 0.125\n[memory]\nscale = -2.5e-1\n");
    // strtod would have stopped at the '.' here and returned 0 / -2.
    EXPECT_DOUBLE_EQ(ini.getDouble("energy", "frequency_ghz"), 0.125);
    EXPECT_DOUBLE_EQ(ini.getDouble("memory", "scale"), -0.25);
}

TEST(LocaleRegression, IniDoubleStillRejectsCommaValue)
{
    CommaLocale locale;
    if (!locale.installed())
        GTEST_SKIP() << "no comma-decimal locale installed";
    // Under de_DE strtod would happily parse "0,125" as 0.125 — a
    // config that only works on one machine. It must stay an error.
    const IniFile ini =
        IniFile::parseString("[energy]\nfrequency_ghz = 0,125\n");
    EXPECT_THROW(ini.getDouble("energy", "frequency_ghz"), FatalError);
}

TEST(LocaleRegression, JsonNumbersUnderCommaLocale)
{
    CommaLocale locale;
    if (!locale.installed())
        GTEST_SKIP() << "no comma-decimal locale installed";
    obs::JsonValue doc;
    ASSERT_TRUE(obs::parseJson(
        R"({"x": 0.125, "y": -3.5e-1, "z": 2})", doc));
    EXPECT_DOUBLE_EQ(doc.numberAt("x"), 0.125);
    EXPECT_DOUBLE_EQ(doc.numberAt("y"), -0.35);
    EXPECT_DOUBLE_EQ(doc.numberAt("z"), 2.0);
}
