file(REMOVE_RECURSE
  "CMakeFiles/scalesim_common.dir/config.cpp.o"
  "CMakeFiles/scalesim_common.dir/config.cpp.o.d"
  "CMakeFiles/scalesim_common.dir/csv.cpp.o"
  "CMakeFiles/scalesim_common.dir/csv.cpp.o.d"
  "CMakeFiles/scalesim_common.dir/log.cpp.o"
  "CMakeFiles/scalesim_common.dir/log.cpp.o.d"
  "CMakeFiles/scalesim_common.dir/topology.cpp.o"
  "CMakeFiles/scalesim_common.dir/topology.cpp.o.d"
  "CMakeFiles/scalesim_common.dir/types.cpp.o"
  "CMakeFiles/scalesim_common.dir/types.cpp.o.d"
  "CMakeFiles/scalesim_common.dir/workloads.cpp.o"
  "CMakeFiles/scalesim_common.dir/workloads.cpp.o.d"
  "libscalesim_common.a"
  "libscalesim_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scalesim_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
