/**
 * @file
 * Simulator self-profiling: per-phase wall-clock accumulators plus a
 * peak-RSS probe, threaded through core::Simulator::runLayer so the
 * run report can state what the *simulation itself* cost (the paper's
 * Table IV treats simulation overhead as a first-class result). One
 * SimProfiler per Simulator instance — workers in a parallel sweep
 * each profile their own run, so no synchronization is needed.
 */

#ifndef SCALESIM_COMMON_PROFILER_HH
#define SCALESIM_COMMON_PROFILER_HH

#include <array>
#include <chrono>
#include <cstdint>
#include <iosfwd>

namespace scalesim
{

/** Simulation phases instrumented inside Simulator::runLayer. */
enum class SimPhase : unsigned
{
    Sparsity,   ///< N:M pattern resolution + compression (§IV)
    DemandGen,  ///< per-cycle demand streaming (layout/energy taps)
    Scratchpad, ///< fold-level prefetch scheduling, bandwidth memory
    Dram,       ///< detailed DRAM model inside the timing pass (§V)
    Energy,     ///< action counting + energy/power estimation (§VII)
};

constexpr unsigned kNumSimPhases = 5;

const char* toString(SimPhase phase);

/** Wall-clock + memory self-measurement of one simulator run. */
struct SimProfile
{
    /** Accumulated wall-clock seconds per phase. */
    std::array<double, kNumSimPhases> phaseSeconds{};
    /** Wall-clock seconds spent inside runLayer overall. */
    double totalSeconds = 0.0;
    /** Layers profiled (repetitions are simulated once). */
    std::uint64_t layersProfiled = 0;
    /** Process peak resident-set size sampled at the end, in KiB. */
    std::uint64_t peakRssKb = 0;

    double
    seconds(SimPhase phase) const
    {
        return phaseSeconds[static_cast<unsigned>(phase)];
    }

    /** totalSeconds not attributed to any instrumented phase. */
    double
    otherSeconds() const
    {
        double attributed = 0.0;
        for (double s : phaseSeconds)
            attributed += s;
        return totalSeconds > attributed ? totalSeconds - attributed
                                         : 0.0;
    }

    void
    merge(const SimProfile& other)
    {
        for (unsigned p = 0; p < kNumSimPhases; ++p)
            phaseSeconds[p] += other.phaseSeconds[p];
        totalSeconds += other.totalSeconds;
        layersProfiled += other.layersProfiled;
        if (other.peakRssKb > peakRssKb)
            peakRssKb = other.peakRssKb;
    }

    /** The SIM_OVERHEAD stats block of the run report. */
    void writeReport(std::ostream& out) const;
};

/** Process peak RSS in KiB (getrusage; 0 if unavailable). */
std::uint64_t peakRssKb();

/** Accumulates a SimProfile; cheap enough to leave always-on. */
class SimProfiler
{
  public:
    using clock = std::chrono::steady_clock;

    /** RAII phase timer; charges the elapsed time on destruction. */
    class Scope
    {
      public:
        Scope(SimProfiler& profiler, SimPhase phase)
            : profiler_(profiler), phase_(phase), start_(clock::now())
        {}
        ~Scope()
        {
            profiler_.charge(phase_, std::chrono::duration<double>(
                                         clock::now() - start_)
                                         .count());
        }
        Scope(const Scope&) = delete;
        Scope& operator=(const Scope&) = delete;

      private:
        SimProfiler& profiler_;
        SimPhase phase_;
        clock::time_point start_;
    };

    Scope scope(SimPhase phase) { return Scope(*this, phase); }

    void
    charge(SimPhase phase, double seconds)
    {
        profile_.phaseSeconds[static_cast<unsigned>(phase)] += seconds;
    }

    void
    chargeLayer(double seconds)
    {
        profile_.totalSeconds += seconds;
        ++profile_.layersProfiled;
    }

    /**
     * Charge work performed outside Simulator::runLayer (e.g. a
     * bench's standalone demand-generation pass) to a phase *and* the
     * total, so bench overhead ratios come from one instrument.
     */
    void
    chargeExternal(SimPhase phase, double seconds)
    {
        charge(phase, seconds);
        profile_.totalSeconds += seconds;
    }

    /** Charge unattributed external work to the total only. */
    void chargeOther(double seconds)
    {
        profile_.totalSeconds += seconds;
    }

    /** Fold another profile (e.g. a RunResult's) into this one. */
    void merge(const SimProfile& other) { profile_.merge(other); }

    /** Profile so far, with the peak-RSS probe refreshed. */
    SimProfile
    snapshot() const
    {
        SimProfile copy = profile_;
        copy.peakRssKb = peakRssKb();
        return copy;
    }

    void reset() { profile_ = SimProfile{}; }

  private:
    SimProfile profile_;
};

} // namespace scalesim

#endif // SCALESIM_COMMON_PROFILER_HH
