/**
 * @file
 * On-chip data layout modeling (paper §VI). The multi-bank SRAM is
 * abstracted as a 2D array: each "line" aggregates the same row index
 * from all banks, and a nested-loop layout assigns every tensor element
 * a (line_id, col_id) position; bank_id = col_id / bandwidth_per_bank.
 * Per cycle, the bank with the most distinct lines requested divided by
 * its port count sets the slowdown:
 *
 *   slowdown = max_i ceil(total_rows_bank_i / num_ports_bank_i)
 *
 * The evaluator taps the demand stream and integrates the slowdown over
 * a whole layer, yielding the normalized slowdown of Figs. 12/13.
 */

#ifndef SCALESIM_LAYOUT_LAYOUT_HH
#define SCALESIM_LAYOUT_LAYOUT_HH

#include <array>
#include <vector>

#include "common/config.hpp"
#include "systolic/demand.hpp"

namespace scalesim::layout
{

/**
 * Nested-loop layout of a 2D operand (rows x cols). Intra-line steps
 * (rowStep, colStep) define the tile of elements sharing one line;
 * lines enumerate the tiles in row-major order (the inter-line
 * dimension order).
 */
struct Layout2D
{
    std::uint64_t rows = 1;
    std::uint64_t cols = 1;
    std::uint64_t rowStep = 1;
    std::uint64_t colStep = 1;

    std::uint64_t lineTiles() const
    {
        return ceilDiv(rows, rowStep) * ceilDiv(cols, colStep);
    }
    std::uint64_t wordsPerLine() const { return rowStep * colStep; }

    std::uint64_t
    lineId(std::uint64_t r, std::uint64_t c) const
    {
        return (r / rowStep) * ceilDiv(cols, colStep) + c / colStep;
    }
    std::uint64_t
    colId(std::uint64_t r, std::uint64_t c) const
    {
        return (r % rowStep) * colStep + c % colStep;
    }

    /** Row-major lines of `line_words` consecutive elements. */
    static Layout2D rowMajor(std::uint64_t rows, std::uint64_t cols,
                             std::uint64_t line_words);
    /** Column-major lines (line spans `line_words` rows of a column). */
    static Layout2D colMajor(std::uint64_t rows, std::uint64_t cols,
                             std::uint64_t line_words);
    /** Square-ish tiles of roughly line_words elements. */
    static Layout2D tiled(std::uint64_t rows, std::uint64_t cols,
                          std::uint64_t line_words);
};

/** How each operand's elements are arranged in its SRAM. */
enum class LayoutScheme
{
    RowMajor,
    ColMajor,
    Tiled,
};

/** Per-operand layouts for one layer. */
struct OperandLayouts
{
    Layout2D ifmap;  // M x K
    Layout2D filter; // K x N
    Layout2D ofmap;  // M x N

    /**
     * Build layouts for a GEMM where each line holds
     * `banks * bandwidth_per_bank` words.
     */
    static OperandLayouts forGemm(const GemmDims& gemm,
                                  const LayoutModelConfig& cfg,
                                  LayoutScheme scheme);

    /**
     * Build layouts for an operand map; convolution ifmaps lay out
     * the real (H, W*C) tensor, matching the paper's C x H x W
     * nested-loop example.
     */
    static OperandLayouts forOperands(const systolic::OperandMap& map,
                                      const LayoutModelConfig& cfg,
                                      LayoutScheme scheme);
};

/**
 * Demand visitor that evaluates bank conflicts cycle by cycle.
 * slowdown() is total slowed cycles / ideal cycles (>= 1).
 */
class BankConflictEvaluator : public systolic::DemandVisitor
{
  public:
    BankConflictEvaluator(const LayoutModelConfig& cfg,
                          const OperandLayouts& layouts);

    void beginLayer(const systolic::FoldGrid& grid,
                    const systolic::OperandMap& operands) override;
    void cycle(Cycle clk, std::span<const Addr> ifmap_reads,
               std::span<const Addr> filter_reads,
               std::span<const Addr> ofmap_reads,
               std::span<const Addr> ofmap_writes) override;
    void endLayer(Cycle total_cycles) override;

    /** Cycles the layer takes with bank conflicts applied. */
    Cycle slowedCycles() const { return slowedCycles_; }
    /** Ideal (conflict-free) cycles. */
    Cycle idealCycles() const { return idealCycles_; }
    /** slowedCycles / idealCycles, >= 1. */
    double slowdown() const;
    /** Cycles in which at least one bank exceeded its ports. */
    Count conflictCycles() const { return conflictCycles_; }

  private:
    /** Distinct lines per bank for one operand's accesses. */
    std::uint64_t operandSlowdown(const Layout2D& layout,
                                  std::span<const Addr> reads,
                                  std::span<const Addr> extra,
                                  Addr base, std::uint64_t row_width);

    LayoutModelConfig cfg_;
    OperandLayouts layouts_;
    systolic::OperandMap operands_;
    std::uint64_t bandwidthPerBank_ = 1;
    Cycle slowedCycles_ = 0;
    Cycle idealCycles_ = 0;
    Count conflictCycles_ = 0;
    // Scratch: (bank, line) pairs of the cycle under evaluation.
    std::vector<std::pair<std::uint32_t, std::uint64_t>> scratch_;
};

} // namespace scalesim::layout

#endif // SCALESIM_LAYOUT_LAYOUT_HH
