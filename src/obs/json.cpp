#include "obs/json.hpp"

#include <cmath>
#include <ostream>

#include "common/log.hpp"

namespace scalesim::obs
{

std::string
jsonEscape(std::string_view text)
{
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                out += format("\\u%04x", c);
            } else {
                out += c;
            }
        }
    }
    return out;
}

JsonWriter::JsonWriter(std::ostream& out, bool pretty)
    : out_(out), pretty_(pretty)
{
}

void
JsonWriter::indent()
{
    if (!pretty_)
        return;
    out_ << '\n';
    for (std::size_t i = 0; i < containers_.size(); ++i)
        out_ << "  ";
}

void
JsonWriter::beforeValue()
{
    if (pendingKey_) {
        pendingKey_ = false;
        return;
    }
    if (containers_.empty())
        return;
    if (containers_.back())
        panic("JSON object member emitted without a key");
    if (hasElement_.back())
        out_ << ',';
    hasElement_.back() = true;
    indent();
}

JsonWriter&
JsonWriter::beginObject()
{
    beforeValue();
    out_ << '{';
    containers_.push_back(true);
    hasElement_.push_back(false);
    return *this;
}

JsonWriter&
JsonWriter::endObject()
{
    if (containers_.empty() || !containers_.back())
        panic("endObject() without a matching beginObject()");
    const bool had = hasElement_.back();
    containers_.pop_back();
    hasElement_.pop_back();
    if (had)
        indent();
    out_ << '}';
    return *this;
}

JsonWriter&
JsonWriter::beginArray()
{
    beforeValue();
    out_ << '[';
    containers_.push_back(false);
    hasElement_.push_back(false);
    return *this;
}

JsonWriter&
JsonWriter::endArray()
{
    if (containers_.empty() || containers_.back())
        panic("endArray() without a matching beginArray()");
    const bool had = hasElement_.back();
    containers_.pop_back();
    hasElement_.pop_back();
    if (had)
        indent();
    out_ << ']';
    return *this;
}

JsonWriter&
JsonWriter::key(std::string_view name)
{
    if (containers_.empty() || !containers_.back())
        panic("JSON key outside an object");
    if (hasElement_.back())
        out_ << ',';
    hasElement_.back() = true;
    indent();
    out_ << '"' << jsonEscape(name) << "\":";
    if (pretty_)
        out_ << ' ';
    pendingKey_ = true;
    return *this;
}

JsonWriter&
JsonWriter::value(std::string_view text)
{
    beforeValue();
    out_ << '"' << jsonEscape(text) << '"';
    return *this;
}

JsonWriter&
JsonWriter::value(const char* text)
{
    return value(std::string_view(text));
}

JsonWriter&
JsonWriter::value(double number)
{
    beforeValue();
    if (!std::isfinite(number)) {
        // nan/inf are not JSON; null keeps the document parseable.
        out_ << "null";
        return *this;
    }
    // %.17g round-trips doubles exactly; trim to a stable short form.
    std::string text = format("%.10g", number);
    out_ << text;
    return *this;
}

JsonWriter&
JsonWriter::value(std::uint64_t number)
{
    beforeValue();
    out_ << number;
    return *this;
}

JsonWriter&
JsonWriter::value(std::int64_t number)
{
    beforeValue();
    out_ << number;
    return *this;
}

JsonWriter&
JsonWriter::value(std::uint32_t number)
{
    return value(static_cast<std::uint64_t>(number));
}

JsonWriter&
JsonWriter::value(int number)
{
    return value(static_cast<std::int64_t>(number));
}

JsonWriter&
JsonWriter::value(bool flag)
{
    beforeValue();
    out_ << (flag ? "true" : "false");
    return *this;
}

JsonWriter&
JsonWriter::null()
{
    beforeValue();
    out_ << "null";
    return *this;
}

} // namespace scalesim::obs
