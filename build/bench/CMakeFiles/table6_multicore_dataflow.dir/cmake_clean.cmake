file(REMOVE_RECURSE
  "CMakeFiles/table6_multicore_dataflow.dir/table6_multicore_dataflow.cpp.o"
  "CMakeFiles/table6_multicore_dataflow.dir/table6_multicore_dataflow.cpp.o.d"
  "table6_multicore_dataflow"
  "table6_multicore_dataflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_multicore_dataflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
