#include "energy/model.hpp"

#include <cmath>

#include "common/log.hpp"

namespace scalesim::energy
{

EnergyModel::EnergyModel(const Ert& ert, const EnergyConfig& cfg,
                         std::uint64_t num_pes, double sram_total_kb)
    : ert_(ert), cfg_(cfg), numPes_(num_pes), sramTotalKb_(sram_total_kb)
{
    if (cfg_.frequencyGhz <= 0.0)
        fatal("energy model needs a positive clock frequency");
}

EnergyBreakdown
EnergyModel::energy(const ActionCounts& counts) const
{
    EnergyBreakdown out;

    const double macs = static_cast<double>(counts.macRandom)
        * ert_.macRandom
        + static_cast<double>(counts.macConstant) * ert_.macConstant
        + static_cast<double>(counts.macGated) * ert_.macGated;
    const double spads = static_cast<double>(counts.ifmapSpadRead
            + counts.weightSpadRead + counts.psumSpadRead)
        * ert_.spadRead
        + static_cast<double>(counts.ifmapSpadWrite
            + counts.weightSpadWrite + counts.psumSpadWrite)
        * ert_.spadWrite;
    out.peArray = macs + spads
        + static_cast<double>(counts.vectorOps) * ert_.vectorOpPj;

    auto sram_energy = [&](const SramActionCounts& s) {
        return static_cast<double>(s.readRandom) * ert_.sramReadRandom
            + static_cast<double>(s.readRepeat) * ert_.sramReadRepeat
            + static_cast<double>(s.writeRandom) * ert_.sramWriteRandom
            + static_cast<double>(s.writeRepeat) * ert_.sramWriteRepeat
            + static_cast<double>(s.idle) * ert_.sramIdle;
    };
    out.glb = sram_energy(counts.ifmapSram)
        + sram_energy(counts.filterSram)
        + sram_energy(counts.ofmapSram);

    // Word delivery distance grows with the array dimension.
    const double dim_scale = std::sqrt(static_cast<double>(numPes_))
        / 8.0;
    out.noc = static_cast<double>(counts.nocWords)
        * ert_.nocPerWordPerDim8 * dim_scale;
    out.dram = static_cast<double>(counts.dramReadWords
                                   + counts.dramWriteWords)
        * ert_.dramPerWord;

    out.staticE = static_cast<double>(counts.cycles)
        * (static_cast<double>(numPes_)
               * (ert_.peClockPerCycle + ert_.peLeakPerCycle)
           + sramTotalKb_ * ert_.sramStaticPerKbCycle);
    return out;
}

double
EnergyModel::dramCommandEnergyPj(Count activates, Count read_bursts,
                                 Count write_bursts,
                                 Count refreshes) const
{
    return static_cast<double>(activates) * ert_.dramActPj
        + static_cast<double>(read_bursts) * ert_.dramReadBurstPj
        + static_cast<double>(write_bursts) * ert_.dramWriteBurstPj
        + static_cast<double>(refreshes) * ert_.dramRefreshPj;
}

double
EnergyModel::seconds(Cycle cycles) const
{
    return static_cast<double>(cycles) / (cfg_.frequencyGhz * 1e9);
}

double
EnergyModel::averagePowerW(const EnergyBreakdown& breakdown,
                           Cycle cycles) const
{
    if (cycles == 0)
        return 0.0;
    return breakdown.totalPj() * 1e-12 / seconds(cycles);
}

} // namespace scalesim::energy
