file(REMOVE_RECURSE
  "libscalesim_dram.a"
)
