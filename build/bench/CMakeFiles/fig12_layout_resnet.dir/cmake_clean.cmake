file(REMOVE_RECURSE
  "CMakeFiles/fig12_layout_resnet.dir/fig12_layout_resnet.cpp.o"
  "CMakeFiles/fig12_layout_resnet.dir/fig12_layout_resnet.cpp.o.d"
  "fig12_layout_resnet"
  "fig12_layout_resnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_layout_resnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
