/**
 * @file
 * Design-space exploration: sweep array size and dataflow for
 * ResNet-18 and rank the designs by latency, energy and EdP — the
 * workflow the paper's §IX-B motivates (a latency-optimal design is
 * rarely the energy- or EdP-optimal one).
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/log.hpp"
#include "common/parallel.hpp"
#include "common/workloads.hpp"
#include "core/dse.hpp"
#include "core/simulator.hpp"

using namespace scalesim;

namespace
{

struct Design
{
    std::uint32_t array;
    Dataflow dataflow;
    Cycle cycles;
    double energyUj;
    double edp;
};

} // namespace

int
main(int argc, char** argv)
{
    setQuiet(true);
    // --jobs N spreads the sweep's design points over N threads
    // (0 = auto); the evaluation order and output are unchanged.
    unsigned jobs = 1;
    for (int i = 1; i + 1 < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--jobs" || arg == "-j")
            jobs = static_cast<unsigned>(
                std::strtoul(argv[i + 1], nullptr, 10));
    }
    const Topology topo = workloads::resnet18();

    const std::vector<std::uint32_t> arrays = {16, 32, 64, 128};
    const std::vector<Dataflow> dataflows = {
        Dataflow::OutputStationary, Dataflow::WeightStationary,
        Dataflow::InputStationary};
    std::vector<Design> designs(arrays.size() * dataflows.size());
    parallelFor(designs.size(), jobs, [&](std::uint64_t i) {
        const std::uint32_t array = arrays[i / dataflows.size()];
        const Dataflow df = dataflows[i % dataflows.size()];
        SimConfig cfg;
        cfg.arrayRows = cfg.arrayCols = array;
        cfg.dataflow = df;
        cfg.mode = SimMode::Analytical;
        cfg.energy.enabled = true;
        cfg.memory.ifmapSramKb = 1024;
        cfg.memory.filterSramKb = 1024;
        cfg.memory.ofmapSramKb = 512;
        cfg.memory.bandwidthWordsPerCycle = 64.0;
        core::Simulator sim(cfg);
        const core::RunResult run = sim.run(topo);
        designs[i] = {array, df, run.totalCycles,
                      run.totalEnergy.totalUj(), run.edp};
    });

    std::printf("%-10s %-4s %14s %14s %16s\n", "array", "df", "cycles",
                "energy(uJ)", "EdP");
    for (const auto& d : designs) {
        std::printf("%3ux%-6u %-4s %14llu %14.1f %16.3g\n", d.array,
                    d.array, toString(d.dataflow).c_str(),
                    static_cast<unsigned long long>(d.cycles),
                    d.energyUj, d.edp);
    }

    auto best = [&](auto key, const char* what) {
        const auto it = std::min_element(
            designs.begin(), designs.end(),
            [&](const Design& a, const Design& b) {
                return key(a) < key(b);
            });
        std::printf("best by %-7s: %ux%u %s\n", what, it->array,
                    it->array, toString(it->dataflow).c_str());
    };
    std::printf("\n");
    best([](const Design& d) { return static_cast<double>(d.cycles); },
         "latency");
    best([](const Design& d) { return d.energyUj; }, "energy");
    best([](const Design& d) { return d.edp; }, "EdP");

    // The same exploration through the DSE driver, with the
    // latency-energy Pareto frontier extracted.
    core::DseSweep sweep;
    sweep.arraySizes = {16, 32, 64, 128};
    sweep.sramKbTotals = {1024, 4096};
    sweep.base.mode = SimMode::Analytical;
    sweep.base.memory.bandwidthWordsPerCycle = 64.0;
    sweep.jobs = jobs;
    const auto points = core::runSweep(sweep, topo);
    const auto frontier = core::paretoFrontier(points);
    std::printf("\nPareto frontier (latency vs energy), %zu of %zu "
                "designs:\n", frontier.size(), points.size());
    for (const auto& p : frontier) {
        std::printf("  %3ux%-3u %s %5llu kB: %12llu cycles, %8.2f mJ, "
                    "EdP %.3g\n", p.array, p.array,
                    toString(p.dataflow).c_str(),
                    static_cast<unsigned long long>(p.sramKb),
                    static_cast<unsigned long long>(p.cycles), p.energyMj, p.edp);
    }
    return 0;
}
