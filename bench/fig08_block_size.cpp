/**
 * @file
 * Reproduces Fig. 8: compute-cycle variation of the ViT feed-forward
 * layers across systolic array sizes, sparsity ratios and block sizes.
 *
 * Set 1: array sizes 4x4..32x32 with block size M equal to the array
 * dimension, sparsity ratios 1:M .. M:M.
 * Set 2: fixed 32x32 array, block size M in {4, 8, 16, 32} — larger
 * blocks give finer-grained control, and the low-N end of the N:M
 * spectrum performs best.
 */

#include "bench_util.hpp"
#include "common/log.hpp"
#include "common/workloads.hpp"
#include "sparse/pattern.hpp"
#include "systolic/mapping.hpp"

using namespace scalesim;

namespace
{

/** Compute cycles of the ViT-base FF layers at N:M sparsity (WS). */
Cycle
ffCycles(std::uint32_t array, std::uint32_t n, std::uint32_t m)
{
    const Topology ff = workloads::vitFeedForward(
        workloads::VitVariant::Base);
    Cycle total = 0;
    for (const auto& layer : ff.layers) {
        GemmDims gemm = layer.toGemm();
        if (n < m) {
            const auto pattern = sparse::SparsityPattern::layerWise(
                gemm.k, n, m);
            gemm.k = pattern.compressedK();
        }
        const systolic::FoldGrid grid(
            gemm, Dataflow::WeightStationary, array, array);
        total += grid.totalCycles() * layer.repetitions;
    }
    return total;
}

} // namespace

int
main()
{
    setQuiet(true);
    std::printf("=== Fig. 8: ViT-base FF compute cycles vs array size, "
                "sparsity ratio, block size ===\n");

    std::printf("--- set 1: block size = array dimension ---\n");
    benchutil::Table t1({10, 8, 14});
    t1.row({"array", "N:M", "cycles"});
    t1.rule();
    for (std::uint32_t arr : {4u, 8u, 16u, 32u}) {
        for (std::uint32_t n = 1; n <= arr; n *= 2) {
            t1.row({format("%ux%u", arr, arr), format("%u:%u", n, arr),
                    benchutil::num(ffCycles(arr, n, arr))});
        }
    }

    std::printf("--- set 2: fixed 32x32 array, block size sweep ---\n");
    benchutil::Table t2({8, 8, 14, 18});
    t2.row({"M", "N", "cycles", "vs dense"});
    t2.rule();
    const Cycle dense = ffCycles(32, 4, 4); // N == M -> dense
    bool finer_helps = true;
    Cycle prev_best = ~static_cast<Cycle>(0);
    for (std::uint32_t m : {4u, 8u, 16u, 32u}) {
        Cycle best = ~static_cast<Cycle>(0);
        for (std::uint32_t n = 1; n <= m; n *= 2) {
            const Cycle c = ffCycles(32, n, m);
            best = std::min(best, c);
            t2.row({benchutil::num(m), benchutil::num(n),
                    benchutil::num(c),
                    benchutil::fmt("%.2fx", static_cast<double>(dense)
                                                / c)});
        }
        // Larger M exposes lower N:M ratios, so the best achievable
        // cycles should not get worse.
        if (best > prev_best)
            finer_helps = false;
        prev_best = best;
    }
    t2.rule();
    std::printf("larger block size -> finer control, best cycles never "
                "worse: %s (paper: 'utilizing the lower spectrum of "
                "N:M leads to better performance')\n",
                finer_helps ? "yes" : "NO");
    return 0;
}
