/**
 * @file
 * Lint fixture for [raw-time-or-rand]. Never compiled — scanned by
 * tests/lint_test.cpp: four firing lines (rand, srand, time(nullptr),
 * std::random_device) and one suppressed rand.
 */

#include <cstdlib>
#include <ctime>
#include <random>

int
fixture_rand()
{
    return rand(); // finding: unseeded global state
}

void
fixture_srand()
{
    std::srand(42); // finding: unseeded global state
}

long
fixture_time()
{
    return time(nullptr); // finding: wall clock in a simulation path
}

unsigned
fixture_entropy()
{
    std::random_device device; // finding: hardware entropy
    return device();
}

int
fixture_allowed()
{
    return rand(); // scalesim-lint: allow(raw-time-or-rand)
}
