file(REMOVE_RECURSE
  "CMakeFiles/scalesim_sparse.dir/formats.cpp.o"
  "CMakeFiles/scalesim_sparse.dir/formats.cpp.o.d"
  "CMakeFiles/scalesim_sparse.dir/model.cpp.o"
  "CMakeFiles/scalesim_sparse.dir/model.cpp.o.d"
  "CMakeFiles/scalesim_sparse.dir/pattern.cpp.o"
  "CMakeFiles/scalesim_sparse.dir/pattern.cpp.o.d"
  "libscalesim_sparse.a"
  "libscalesim_sparse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scalesim_sparse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
