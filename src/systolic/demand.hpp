/**
 * @file
 * Cycle-accurate demand generation. The generator walks a layer fold by
 * fold and emits, for every cycle, the SRAM addresses requested at the
 * array edge (ifmap/filter reads, ofmap reads/writes). Consumers
 * implement DemandVisitor; nothing is materialized, so memory stays
 * bounded by one cycle's worth of addresses (<= R + 2C entries).
 *
 * This is the v3 equivalent of SCALE-Sim's demand-matrix generation,
 * reorganized as a streaming producer so that the layout model, the
 * energy action counter, and trace writers can all tap the same pass.
 */

#ifndef SCALESIM_SYSTOLIC_DEMAND_HH
#define SCALESIM_SYSTOLIC_DEMAND_HH

#include <span>
#include <vector>

#include "systolic/mapping.hpp"

namespace scalesim::systolic
{

/**
 * Maps compressed (post-sparsity) K indices back to original K indices
 * for gathered streaming reads. Implemented by the sparse module; dense
 * runs pass nullptr.
 */
class KGatherMap
{
  public:
    virtual ~KGatherMap() = default;
    /** Number of compressed K rows (<= dense K). */
    virtual std::uint64_t compressedK() const = 0;
    /** Original K index backing compressed row `comp_k`. */
    virtual std::uint64_t origK(std::uint64_t comp_k) const = 0;
};

/** Counters of one generation pass through the fold-replay cache. */
struct FoldCacheStats
{
    /** Folds walked (replayed + live). */
    Count foldsTotal = 0;
    /** Folds served by shifting a cached canonical fold. */
    Count foldsReplayed = 0;
    /** Folds generated live (class captures plus ragged/non-affine
     *  fallbacks, or everything when the cache is disabled). */
    Count foldsLive = 0;
    /** Addresses emitted from cache arenas instead of live math. */
    Count addrsReplayed = 0;

    /** Address bytes that skipped live generation. */
    Count bytesSaved() const { return addrsReplayed * sizeof(Addr); }

    void
    merge(const FoldCacheStats& other)
    {
        foldsTotal += other.foldsTotal;
        foldsReplayed += other.foldsReplayed;
        foldsLive += other.foldsLive;
        addrsReplayed += other.addrsReplayed;
    }
};

struct FoldCacheEntry;
struct ReplayDeltas;

/** Per-cycle demand observer. Spans are only valid during the call. */
class DemandVisitor
{
  public:
    virtual ~DemandVisitor() = default;

    virtual void beginLayer(const FoldGrid&, const OperandMap&) {}
    virtual void beginFold(std::uint64_t /*rf*/, std::uint64_t /*cf*/,
                           Cycle /*fold_start*/) {}

    /**
     * One array cycle. `clk` is absolute within the layer. The spans
     * hold the valid addresses requested this cycle (no sentinels).
     */
    virtual void cycle(Cycle clk, std::span<const Addr> ifmap_reads,
                       std::span<const Addr> filter_reads,
                       std::span<const Addr> ofmap_reads,
                       std::span<const Addr> ofmap_writes) = 0;

    virtual void endFold(std::uint64_t /*rf*/, std::uint64_t /*cf*/,
                         Cycle /*fold_end*/) {}
    virtual void endLayer(Cycle /*total_cycles*/) {}
};

/**
 * Streaming demand generator for one layer under one dataflow.
 *
 * With a KGatherMap (weight-stationary only, as in the paper's sparse
 * evaluations), the stationary filter tile addresses index the
 * compressed filter storage while ifmap streaming reads gather the
 * original K rows.
 */
class DemandGenerator
{
  public:
    DemandGenerator(const GemmDims& gemm, Dataflow df,
                    std::uint32_t array_rows, std::uint32_t array_cols,
                    const OperandMap& operands,
                    const KGatherMap* gather = nullptr);

    /** Fold grid after sparsity compression (if any). */
    const FoldGrid& grid() const { return grid_; }

    /** Total cycles the generated schedule spans. */
    Cycle totalCycles() const { return grid_.totalCycles(); }

    /** Run the full layer through the visitor. */
    void run(DemandVisitor& visitor) const;

    /** Enable/disable the fold-replay demand cache (default on). */
    void setFoldCache(bool enabled) { foldCache_ = enabled; }
    bool foldCacheEnabled() const { return foldCache_; }

    /** Fold-cache counters of the most recent run(). */
    const FoldCacheStats& foldCacheStats() const { return cacheStats_; }

  private:
    void runFold(DemandVisitor& visitor, std::uint64_t rf,
                 std::uint64_t cf, Cycle fold_start) const;
    void runFoldOs(DemandVisitor& visitor, std::uint64_t rf,
                   std::uint64_t cf, Cycle fold_start) const;
    void runFoldWs(DemandVisitor& visitor, std::uint64_t rf,
                   std::uint64_t cf, Cycle fold_start) const;
    void runFoldIs(DemandVisitor& visitor, std::uint64_t rf,
                   std::uint64_t cf, Cycle fold_start) const;

    void runCached(DemandVisitor& visitor) const;
    /**
     * Fold-equivalence class of (rf, cf): two full folds with the same
     * key emit shift-identical streams. False when the ifmap mapping
     * is not shift-replayable for this fold (conv window spanning an
     * image boundary).
     */
    bool replayKey(std::uint64_t rf, std::uint64_t cf,
                   std::uint64_t& key) const;
    ReplayDeltas replayDeltas(const FoldCacheEntry& entry,
                              std::uint64_t rf, std::uint64_t cf) const;

    GemmDims denseGemm_;
    GemmDims effectiveGemm_;
    FoldGrid grid_;
    OperandMap operands_;
    const KGatherMap* gather_;
    bool foldCache_ = true;
    mutable FoldCacheStats cacheStats_;
};

/** Fans one demand stream out to several visitors. */
class TeeVisitor : public DemandVisitor
{
  public:
    explicit TeeVisitor(std::vector<DemandVisitor*> sinks)
        : sinks_(std::move(sinks))
    {}

    void
    beginLayer(const FoldGrid& grid, const OperandMap& operands) override
    {
        for (auto* sink : sinks_)
            sink->beginLayer(grid, operands);
    }
    void
    beginFold(std::uint64_t rf, std::uint64_t cf, Cycle start) override
    {
        for (auto* sink : sinks_)
            sink->beginFold(rf, cf, start);
    }
    void
    cycle(Cycle clk, std::span<const Addr> ifmap_reads,
          std::span<const Addr> filter_reads,
          std::span<const Addr> ofmap_reads,
          std::span<const Addr> ofmap_writes) override
    {
        for (auto* sink : sinks_)
            sink->cycle(clk, ifmap_reads, filter_reads, ofmap_reads,
                        ofmap_writes);
    }
    void
    endFold(std::uint64_t rf, std::uint64_t cf, Cycle end) override
    {
        for (auto* sink : sinks_)
            sink->endFold(rf, cf, end);
    }
    void
    endLayer(Cycle total) override
    {
        for (auto* sink : sinks_)
            sink->endLayer(total);
    }

  private:
    std::vector<DemandVisitor*> sinks_;
};

/** Demand visitor that counts accesses (handy for tests). */
class CountingVisitor : public DemandVisitor
{
  public:
    void cycle(Cycle clk, std::span<const Addr> ifmap_reads,
               std::span<const Addr> filter_reads,
               std::span<const Addr> ofmap_reads,
               std::span<const Addr> ofmap_writes) override;

    Count ifmapReads = 0;
    Count filterReads = 0;
    Count ofmapReads = 0;
    Count ofmapWrites = 0;
    Cycle lastCycle = 0;
    Count activeCycles = 0;
};

} // namespace scalesim::systolic

#endif // SCALESIM_SYSTOLIC_DEMAND_HH
