#include "dram/controller.hpp"

#include <algorithm>

#include "check/contract.hpp"
#include "common/log.hpp"

namespace scalesim::dram
{

void
DramStats::merge(const DramStats& other)
{
    reads += other.reads;
    writes += other.writes;
    rowHits += other.rowHits;
    refreshes += other.refreshes;
    rowMisses += other.rowMisses;
    rowConflicts += other.rowConflicts;
    readBytes += other.readBytes;
    writeBytes += other.writeBytes;
    totalReadLatency += other.totalReadLatency;
    firstArrival = std::min(firstArrival, other.firstArrival);
    lastCompletion = std::max(lastCompletion, other.lastCompletion);
}

Channel::Channel(const DramTiming& timing, std::uint32_t ranks,
                 std::uint32_t reorder_window,
                 std::uint32_t hit_streak_cap, PagePolicy policy)
    : timing_(timing), reorderWindow_(reorder_window),
      hitStreakCap_(hit_streak_cap), policy_(policy),
      banks_(static_cast<std::size_t>(ranks) * timing.banksPerRank),
      bankStats_(banks_.size()), nextRefresh_(ranks, timing.tREFI)
{
    if (ranks == 0)
        fatal("channel must have at least one rank");
    if (reorderWindow_ == 0)
        reorderWindow_ = 1;
}

std::uint64_t
Channel::enqueue(const DecodedAddr& addr, bool write, Cycle arrival)
{
    const std::size_t gbank = static_cast<std::size_t>(addr.rank)
        * timing_.banksPerRank + addr.bank;
    if (gbank >= banks_.size())
        fatal("decoded bank %zu out of range (%zu banks)", gbank,
              banks_.size());
    if (!pending_.empty() && arrival < pending_.back().arrival)
        arrival = pending_.back().arrival; // enforce monotone arrivals
    Pending req;
    req.addr = addr;
    req.write = write;
    req.arrival = arrival;
    req.seq = nextSeq_++;
    pending_.push_back(req);
    queueOccupancy_.sample(static_cast<double>(pending_.size()));
    stats_.firstArrival = std::min(stats_.firstArrival, arrival);
    return req.seq;
}

std::size_t
Channel::pickNext(Cycle decision_time)
{
    // FR-FCFS over the reorder window: oldest row-hit first, bounded by
    // the hit-streak cap to prevent starvation; otherwise the oldest.
    const std::size_t window = std::min<std::size_t>(pending_.size(),
                                                     reorderWindow_);
    std::size_t oldest_arrived = pending_.size();
    for (std::size_t i = 0; i < window; ++i) {
        const Pending& req = pending_[i];
        if (req.arrival > decision_time)
            break;
        if (oldest_arrived == pending_.size())
            oldest_arrived = i;
        const std::size_t gbank = static_cast<std::size_t>(req.addr.rank)
            * timing_.banksPerRank + req.addr.bank;
        const Bank& bank = banks_[gbank];
        const bool hit = bank.open && bank.row == req.addr.row;
        if (hit) {
            const bool capped = hitStreak_ >= hitStreakCap_
                && streakBank_ == gbank && streakRow_ == req.addr.row;
            if (!capped)
                return i;
        }
    }
    // No hit available (or streak capped): oldest arrived request, or
    // the overall oldest if nothing has arrived yet.
    return oldest_arrived < pending_.size() ? oldest_arrived : 0;
}

Cycle
Channel::serviceOne(const Pending& req)
{
    const std::size_t gbank = static_cast<std::size_t>(req.addr.rank)
        * timing_.banksPerRank + req.addr.bank;
    Bank& bank = banks_[gbank];
    Cycle dt = std::max(req.arrival, lastColCmd_);

    // All-bank refresh, per rank: every tREFI the rank precharges and
    // refreshes for tRFC; requests to it during the window wait, and
    // its row buffers come back closed. Other ranks keep their open
    // rows — tREFI/tRFC are rank-local timings.
    if (timing_.tREFI > 0) {
        Cycle& next = nextRefresh_[req.addr.rank];
        const std::size_t first =
            static_cast<std::size_t>(req.addr.rank)
            * timing_.banksPerRank;
        auto refreshRank = [&](Cycle end) {
            for (std::size_t b = first;
                 b < first + timing_.banksPerRank; ++b) {
                banks_[b].open = false;
                banks_[b].preReady = std::max(banks_[b].preReady, end);
            }
            ++stats_.refreshes;
            next += timing_.tREFI;
        };
        // Refreshes whose window already closed before this request:
        // exactly one count per elapsed tREFI, each leaving the rank's
        // rows closed as of its end.
        while (next + timing_.tRFC <= dt)
            refreshRank(next + timing_.tRFC);
        // Refresh in progress (or due) at dt: the request waits it out.
        if (dt >= next) {
            const Cycle end = next + timing_.tRFC;
            refreshRank(end);
            dt = end;
        }
    }

    Cycle col_ready;
    RowOutcome outcome;
    if (bank.open && bank.row == req.addr.row) {
        outcome = RowOutcome::Hit;
        col_ready = std::max(dt, bank.rcdDone);
    } else {
        Cycle act_start;
        if (bank.open) {
            outcome = RowOutcome::Conflict;
            const Cycle pre = std::max(dt, bank.preReady);
            act_start = pre + timing_.tRP;
        } else {
            outcome = RowOutcome::Miss;
            act_start = std::max(dt, bank.preReady);
        }
        act_start = std::max(act_start, lastActAny_ + timing_.tRRD);
        act_start = std::max(act_start, bank.lastAct + timing_.tRC);
        if (actWindow_.size() >= 4) {
            act_start = std::max(act_start,
                                 actWindow_.front() + timing_.tFAW);
        }
        bank.lastAct = act_start;
        lastActAny_ = act_start;
        actWindow_.push_back(act_start);
        if (actWindow_.size() > 4)
            actWindow_.pop_front();
        bank.rcdDone = act_start + timing_.tRCD;
        bank.open = true;
        bank.row = req.addr.row;
        col_ready = bank.rcdDone;
    }

    Cycle col_cmd = std::max(col_ready, lastColCmd_ + timing_.tCCD);
    if (!req.write && lastWasWrite_) {
        // Write-to-read turnaround on the shared bus.
        col_cmd = std::max(col_cmd, lastWriteDataEnd_ + timing_.tWTR);
    }
    const Cycle access_lat = req.write ? timing_.tCWL : timing_.tCL;
    Cycle data_start = col_cmd + access_lat;
    if (data_start < busFree_) {
        col_cmd += busFree_ - data_start;
        data_start = busFree_;
    }
    const Cycle data_end = data_start + timing_.tBurst;
    busFree_ = data_end;
    lastColCmd_ = col_cmd;
    lastWasWrite_ = req.write;
    if (req.write)
        lastWriteDataEnd_ = data_end;

    bank.preReady = std::max(bank.lastAct + timing_.tRAS,
                             req.write ? data_end + timing_.tWR
                                       : col_cmd + timing_.tRTP);
    if (policy_ == PagePolicy::Closed) {
        // Auto-precharge: the row closes as soon as it legally can;
        // the next access to this bank is a plain miss.
        bank.open = false;
        bank.preReady += timing_.tRP;
    }

    // Row-hit streak bookkeeping.
    if (outcome == RowOutcome::Hit && streakBank_ == gbank
        && streakRow_ == req.addr.row) {
        ++hitStreak_;
    } else {
        hitStreak_ = outcome == RowOutcome::Hit ? 1 : 0;
        streakBank_ = static_cast<std::uint32_t>(gbank);
        streakRow_ = req.addr.row;
    }

    switch (outcome) {
      case RowOutcome::Hit:
        ++stats_.rowHits;
        ++bankStats_[gbank].rowHits;
        break;
      case RowOutcome::Miss:
        ++stats_.rowMisses;
        ++bankStats_[gbank].rowMisses;
        break;
      case RowOutcome::Conflict:
        ++stats_.rowConflicts;
        ++bankStats_[gbank].rowConflicts;
        break;
    }
    busBusyCycles_ += timing_.tBurst;
    Cycle completion;
    if (req.write) {
        ++stats_.writes;
        stats_.writeBytes += timing_.burstBytes;
        completion = col_cmd; // posted: accepted at column command
    } else {
        ++stats_.reads;
        stats_.readBytes += timing_.burstBytes;
        completion = data_end;
        stats_.totalReadLatency += data_end - req.arrival;
    }
    stats_.lastCompletion = std::max(stats_.lastCompletion, data_end);
    SIM_CHECK_EQ(stats_.rowHits + stats_.rowMisses
                     + stats_.rowConflicts,
                 stats_.reads + stats_.writes,
                 "every access resolves to exactly one row outcome");
    return completion;
}

Cycle
Channel::serviceUntil(std::uint64_t seq)
{
    for (;;) {
        auto done = completed_.find(seq);
        if (done != completed_.end()) {
            const Cycle completion = done->second;
            completed_.erase(done);
            return completion;
        }
        if (pending_.empty())
            panic("serviceUntil(%llu): request not pending",
                  static_cast<unsigned long long>(seq));
        const Cycle decision_time = std::max(pending_.front().arrival,
                                             lastColCmd_);
        const std::size_t idx = pickNext(decision_time);
        const Pending req = pending_[idx];
        pending_.erase(pending_.begin()
                       + static_cast<std::ptrdiff_t>(idx));
        completed_[req.seq] = serviceOne(req);
    }
}

void
Channel::registerStats(obs::StatsRegistry& reg,
                       const std::string& prefix) const
{
    auto name = [&](const char* leaf) { return prefix + "." + leaf; };
    reg.addScalar(name("reads"), "read bursts serviced",
                  static_cast<double>(stats_.reads));
    reg.addScalar(name("writes"), "write bursts serviced",
                  static_cast<double>(stats_.writes));
    reg.addScalar(name("rowHits"), "row-buffer hits",
                  static_cast<double>(stats_.rowHits));
    reg.addScalar(name("rowMisses"), "row-buffer misses (bank closed)",
                  static_cast<double>(stats_.rowMisses));
    reg.addScalar(name("rowConflicts"),
                  "row-buffer conflicts (wrong row open)",
                  static_cast<double>(stats_.rowConflicts));
    reg.addScalar(name("refreshes"), "per-rank all-bank refreshes",
                  static_cast<double>(stats_.refreshes));
    reg.addScalar(name("readBytes"), "bytes read from DRAM",
                  static_cast<double>(stats_.readBytes));
    reg.addScalar(name("writeBytes"), "bytes written to DRAM",
                  static_cast<double>(stats_.writeBytes));
    reg.addScalar(name("totalReadLatency"),
                  "sum of read round-trip latencies (memory clocks)",
                  static_cast<double>(stats_.totalReadLatency));
    reg.addScalar(name("busBusyCycles"),
                  "memory clocks the data bus carried bursts",
                  static_cast<double>(busBusyCycles_));
    const bool any = stats_.reads + stats_.writes > 0;
    reg.addScalar(name("firstArrival"),
                  "arrival of the first request (memory clocks)",
                  any ? static_cast<double>(stats_.firstArrival) : 0.0);
    reg.addScalar(name("lastCompletion"),
                  "completion of the last burst (memory clocks)",
                  static_cast<double>(stats_.lastCompletion));
    for (std::size_t b = 0; b < bankStats_.size(); ++b) {
        const std::string elem = format("bank%zu", b);
        reg.addVectorElem(name("bank.rowHits"), elem,
                          "per-bank row-buffer hits",
                          static_cast<double>(bankStats_[b].rowHits));
        reg.addVectorElem(name("bank.rowMisses"), elem,
                          "per-bank row-buffer misses",
                          static_cast<double>(bankStats_[b].rowMisses));
        reg.addVectorElem(
            name("bank.rowConflicts"), elem,
            "per-bank row-buffer conflicts",
            static_cast<double>(bankStats_[b].rowConflicts));
    }
    reg.addDistribution(name("queueOccupancy"),
                        "request-queue depth at enqueue",
                        queueOccupancy_);
    reg.addFormula(name("rowHitRate"),
                   "rowHits / (rowHits + rowMisses + rowConflicts)",
                   {{{name("rowHits"), 1.0}},
                    {{name("rowHits"), 1.0},
                     {name("rowMisses"), 1.0},
                     {name("rowConflicts"), 1.0}},
                    1.0});
    reg.addFormula(name("avgReadLatency"),
                   "mean read round-trip latency (memory clocks)",
                   {{{name("totalReadLatency"), 1.0}},
                    {{name("reads"), 1.0}},
                    1.0});
    reg.addFormula(name("busUtilization"),
                   "busBusyCycles / (lastCompletion - firstArrival)",
                   {{{name("busBusyCycles"), 1.0}},
                    {{name("lastCompletion"), 1.0},
                     {name("firstArrival"), -1.0}},
                    1.0});
}

void
Channel::drainAll()
{
    while (!pending_.empty()) {
        const Cycle decision_time = std::max(pending_.front().arrival,
                                             lastColCmd_);
        const std::size_t idx = pickNext(decision_time);
        const Pending req = pending_[idx];
        pending_.erase(pending_.begin()
                       + static_cast<std::ptrdiff_t>(idx));
        completed_[req.seq] = serviceOne(req);
    }
}

} // namespace scalesim::dram
