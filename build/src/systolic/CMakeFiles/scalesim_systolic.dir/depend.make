# Empty dependencies file for scalesim_systolic.
# This may be replaced when dependencies are built.
