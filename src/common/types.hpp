/**
 * @file
 * Fundamental types shared across every SCALE-Sim v3 module: integer
 * aliases, the dataflow enumeration, GEMM dimensions, the Table-II
 * dataflow-to-(Sr, Sc, T) mapping, and layer specifications.
 */

#ifndef SCALESIM_COMMON_TYPES_HH
#define SCALESIM_COMMON_TYPES_HH

#include <cstdint>
#include <string>
#include <string_view>

namespace scalesim
{

/** Simulation cycle count (compute or memory clock, per context). */
using Cycle = std::uint64_t;

/** Word-granular address within a linear operand address space. */
using Addr = std::uint64_t;

/** Generic event/access counter. */
using Count = std::uint64_t;

/** Sentinel for "no request this cycle" entries in demand streams. */
constexpr Addr kNoAddr = ~static_cast<Addr>(0);

/** Integer ceiling division; b must be non-zero. */
constexpr std::uint64_t
ceilDiv(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

/**
 * Classic systolic dataflows (Eyeriss taxonomy) supported by the
 * simulator, matching SCALE-Sim's `os` / `ws` / `is` settings.
 */
enum class Dataflow
{
    OutputStationary,
    WeightStationary,
    InputStationary,
};

/** Short lowercase tag for a dataflow ("os", "ws", "is"). */
std::string toString(Dataflow df);

/**
 * Parse a dataflow tag; accepts "os"/"ws"/"is" case-insensitively.
 * Throws std::invalid_argument on anything else.
 */
Dataflow dataflowFromString(std::string_view text);

/**
 * GEMM problem dimensions for an (M x K) * (K x N) product. Convolutions
 * are lowered to GEMM via im2col before simulation, exactly as SCALE-Sim
 * does internally.
 */
struct GemmDims
{
    std::uint64_t m = 0;
    std::uint64_t n = 0;
    std::uint64_t k = 0;

    /** Total multiply-accumulate operations of the dense problem. */
    std::uint64_t macs() const { return m * n * k; }

    bool operator==(const GemmDims&) const = default;
};

/**
 * Spatial/temporal mapping dimensions per the paper's Table II. `sr` and
 * `sc` fold over the array's rows and columns; `t` streams in time.
 *
 *   dataflow | Sr | Sc | T
 *   ---------+----+----+---
 *   IS       | K  | N  | M
 *   WS       | K  | M  | N
 *   OS       | M  | N  | K
 */
struct MappedDims
{
    std::uint64_t sr = 0;
    std::uint64_t sc = 0;
    std::uint64_t t = 0;

    bool operator==(const MappedDims&) const = default;
};

/** Apply the Table-II mapping to a GEMM under a given dataflow. */
MappedDims mapGemm(const GemmDims& gemm, Dataflow df);

/** Kind of workload layer in a topology file. */
enum class LayerType
{
    Conv,
    Gemm,
};

/**
 * Element-wise tail executed on the tensor core's vector/SIMD unit
 * after a layer's matrix part (paper §III-C: activations, softmax,
 * (de)quantization run on the SIMD unit, not the array).
 */
enum class VectorTail
{
    None,
    Activation, ///< ReLU/GELU-style, one pass over the outputs
    Softmax,    ///< three passes (max, exp-sum, normalize)
    Quantize,   ///< LUT-based (de)quantization, one pass
};

std::string toString(VectorTail tail);
VectorTail vectorTailFromString(std::string_view text);

/**
 * One layer of a workload topology. Convolution layers carry the
 * SCALE-Sim CSV fields (ifmap/filter geometry, channels, filter count,
 * stride); GEMM layers carry explicit M/N/K. `repetitions` lets a single
 * spec stand for several identical layers (e.g. the per-head attention
 * GEMMs of a transformer block).
 */
struct LayerSpec
{
    std::string name;
    LayerType type = LayerType::Conv;

    // Convolution parameters (valid when type == Conv).
    std::uint64_t ifmapH = 0;
    std::uint64_t ifmapW = 0;
    std::uint64_t filterH = 0;
    std::uint64_t filterW = 0;
    std::uint64_t channels = 0;
    std::uint64_t numFilters = 0;
    std::uint64_t stride = 1;

    // Explicit dimensions (valid when type == Gemm).
    GemmDims gemmDims;

    /** How many identical instances of this layer the network runs. */
    std::uint32_t repetitions = 1;

    /**
     * Inference batch size: the GEMM's M dimension scales by this
     * (batching amortizes stationary-operand loads, classically
     * helping weight-stationary dataflows).
     */
    std::uint64_t batch = 1;

    /** Set the batch size (chainable). */
    LayerSpec&
    withBatch(std::uint64_t b)
    {
        batch = b;
        return *this;
    }

    /**
     * Per-layer N:M sparsity from the topology `SparsitySupport`
     * column. sparseN == 0 (or sparseN == sparseM) means dense.
     */
    std::uint32_t sparseN = 0;
    std::uint32_t sparseM = 0;

    /** Element-wise tail on the vector unit (§III-C). */
    VectorTail tail = VectorTail::None;

    /** Set the vector tail (chainable). */
    LayerSpec&
    withTail(VectorTail t)
    {
        tail = t;
        return *this;
    }

    /** Output feature-map height after the convolution. */
    std::uint64_t ofmapH() const;
    /** Output feature-map width after the convolution. */
    std::uint64_t ofmapW() const;

    /** True when the layer carries a real N:M sparsity annotation. */
    bool isSparse() const { return sparseM != 0 && sparseN < sparseM; }

    /**
     * Lower the layer to GEMM dimensions. Convolutions use im2col:
     * M = ofmapH*ofmapW, K = filterH*filterW*channels, N = numFilters.
     */
    GemmDims toGemm() const;

    /** Dense MAC count of one instance of the layer. */
    std::uint64_t macs() const { return toGemm().macs(); }

    /** Make a convolution layer spec. */
    static LayerSpec conv(std::string name, std::uint64_t ifmap_h,
                          std::uint64_t ifmap_w, std::uint64_t filter_h,
                          std::uint64_t filter_w, std::uint64_t channels,
                          std::uint64_t num_filters, std::uint64_t stride,
                          std::uint32_t repetitions = 1);

    /** Make a GEMM layer spec. */
    static LayerSpec gemm(std::string name, std::uint64_t m,
                          std::uint64_t n, std::uint64_t k,
                          std::uint32_t repetitions = 1);
};

} // namespace scalesim

#endif // SCALESIM_COMMON_TYPES_HH
