#include "multicore/trace_sim.hpp"

#include <algorithm>
#include <cctype>
#include <exception>

#include "check/contract.hpp"
#include "common/log.hpp"

namespace scalesim::multicore
{

ContentionModel
contentionModelFromString(std::string_view text)
{
    std::string lower(text);
    std::transform(lower.begin(), lower.end(), lower.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    if (lower == "shared")
        return ContentionModel::Shared;
    if (lower == "static")
        return ContentionModel::Static;
    fatal("unknown contention model '%.*s' (shared|static)",
          static_cast<int>(text.size()), text.data());
}

const char*
toString(ContentionModel model)
{
    return model == ContentionModel::Shared ? "shared" : "static";
}

MultiCoreEngine
multiCoreEngineFromString(std::string_view text)
{
    std::string lower(text);
    std::transform(lower.begin(), lower.end(), lower.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    if (lower == "serial")
        return MultiCoreEngine::Serial;
    if (lower == "epoch")
        return MultiCoreEngine::Epoch;
    fatal("unknown multicore engine '%.*s' (serial|epoch)",
          static_cast<int>(text.size()), text.data());
}

const char*
toString(MultiCoreEngine engine)
{
    return engine == MultiCoreEngine::Serial ? "serial" : "epoch";
}

MultiCoreTraceSimulator::MultiCoreTraceSimulator(
    const MultiCoreTraceConfig& cfg)
    : cfg_(cfg)
{
    if (cfg_.pr == 0 || cfg_.pc == 0)
        fatal("multi-core grid must be non-zero");
    if (cfg_.contention == ContentionModel::Static) {
        // Cores execute concurrently but are simulated one after the
        // other; shared-resource contention is approximated by giving
        // every core a static 1/numCores share of the L2 port and DRAM
        // bandwidth, with the time cursors rewound between cores.
        const double cores = static_cast<double>(cfg_.pr * cfg_.pc);
        dram_ = std::make_unique<systolic::BandwidthMemory>(
            cfg_.dramWordsPerCycle / cores);
        if (cfg_.useL2) {
            SharedL2Config l2_cfg = cfg_.l2;
            // The share may be fractional: clamping it up to a full
            // word per cycle would let a grid wider than the L2 port
            // model more aggregate bandwidth than the port has (the
            // DRAM share above is not clamped either).
            l2_cfg.wordsPerCycle = l2_cfg.wordsPerCycle / cores;
            if (l2_cfg.wordsPerCycle < 1.0) {
                warn("static contention model: %.0f cores on a "
                     "%.0f-words/cycle L2 port leave each core a "
                     "fractional %.3f words/cycle share",
                     cores, cfg_.l2.wordsPerCycle,
                     l2_cfg.wordsPerCycle);
            }
            l2_ = std::make_unique<SharedL2>(l2_cfg, *dram_);
            coreView_ = l2_.get();
        } else {
            coreView_ = dram_.get();
        }
    } else {
        // Shared timeline: every core sees the full L2 port and DRAM
        // bandwidth; contention emerges from real collisions on the
        // shared bus cursors as the engines are co-stepped.
        dram_ = std::make_unique<systolic::BandwidthMemory>(
            cfg_.dramWordsPerCycle);
        if (cfg_.useL2) {
            l2_ = std::make_unique<SharedL2>(cfg_.l2, *dram_);
            coreView_ = l2_.get();
        } else {
            coreView_ = dram_.get();
        }
    }
}

MultiCoreTraceSimulator::~MultiCoreTraceSimulator() = default;

std::vector<std::uint64_t>
MultiCoreTraceSimulator::shareStarts(std::uint64_t total,
                                     std::uint64_t parts)
{
    // Balanced split; entry i holds the start offset, entry parts the
    // total (so share i spans [starts[i], starts[i+1])).
    std::vector<std::uint64_t> starts(parts + 1, 0);
    const std::uint64_t base = total / parts;
    std::uint64_t rem = total % parts;
    for (std::uint64_t i = 0; i < parts; ++i) {
        starts[i + 1] = starts[i] + base + (i < rem ? 1 : 0);
    }
    return starts;
}

MultiCoreTraceSimulator::CorePartition
MultiCoreTraceSimulator::corePartition(
    Dataflow df, const GemmDims& gemm,
    const systolic::OperandMap& global, std::uint64_t sr_off,
    std::uint64_t sr_share, std::uint64_t sc_off,
    std::uint64_t sc_share)
{
    // Share dims + global-address operand view (bases offset, pitches
    // global) so replicated partitions deduplicate.
    GemmDims share = gemm;
    systolic::OperandMap view = global;
    switch (df) {
      case Dataflow::OutputStationary:
        share.m = sr_share;
        share.n = sc_share;
        view.ifmapBase += sr_off * gemm.k;
        view.filterBase += sc_off;
        view.ofmapBase += sr_off * gemm.n + sc_off;
        break;
      case Dataflow::WeightStationary:
        share.k = sr_share;
        share.n = sc_share;
        view.ifmapBase += sr_off;
        view.filterBase += sr_off * gemm.n + sc_off;
        view.ofmapBase += sc_off;
        break;
      case Dataflow::InputStationary:
        share.k = sr_share;
        share.m = sc_share;
        view.ifmapBase += sc_off * gemm.k + sr_off;
        view.filterBase += sr_off * gemm.n;
        view.ofmapBase += sc_off * gemm.n;
        break;
    }
    return {share, view};
}

MultiCoreTraceResult
MultiCoreTraceSimulator::runLayer(const LayerSpec& layer)
{
    return cfg_.contention == ContentionModel::Static
        ? runLayerStatic(layer) : runLayerShared(layer);
}

MultiCoreTraceResult
MultiCoreTraceSimulator::runLayerStatic(const LayerSpec& layer)
{
    const GemmDims gemm = layer.toGemm();
    const MappedDims mapped = systolic::mapGemmConventional(
        gemm, cfg_.dataflow);
    const auto sr_starts = shareStarts(mapped.sr, cfg_.pr);
    const auto sc_starts = shareStarts(mapped.sc, cfg_.pc);

    MemoryConfig mem;
    const systolic::OperandMap global(gemm, mem);

    const systolic::MemoryStats dram_before = dram_->stats();
    const SharedL2Stats l2_before = l2_ ? l2_->l2Stats()
                                        : SharedL2Stats{};
    if (l2_)
        l2_->invalidate();

    MultiCoreTraceResult result;
    result.perCore.reserve(cfg_.pr * cfg_.pc);

    for (std::uint64_t i = 0; i < cfg_.pr; ++i) {
        for (std::uint64_t j = 0; j < cfg_.pc; ++j) {
            const std::uint64_t sr_off = sr_starts[i];
            const std::uint64_t sr_share = sr_starts[i + 1] - sr_off;
            const std::uint64_t sc_off = sc_starts[j];
            const std::uint64_t sc_share = sc_starts[j + 1] - sc_off;
            if (sr_share == 0 || sc_share == 0) {
                result.perCore.emplace_back();
                continue;
            }

            const CorePartition part = corePartition(
                cfg_.dataflow, gemm, global, sr_off, sr_share, sc_off,
                sc_share);
            const systolic::FoldGrid grid(part.share, cfg_.dataflow,
                                          cfg_.arrayRows,
                                          cfg_.arrayCols);
            dram_->resetTimeline();
            if (l2_)
                l2_->resetTimeline();
            systolic::DoubleBufferedScratchpad l1(cfg_.l1, *coreView_);
            const auto timing = l1.runLayer(grid, part.view);
            result.makespan = std::max(result.makespan,
                                       timing.totalCycles);
            result.l1FillWords += timing.dramReadWords;
            result.perCore.push_back(timing);
        }
    }

    const systolic::MemoryStats& dram_after = dram_->stats();
    result.dramReadWords = dram_after.readWords
        - dram_before.readWords;
    result.dramWriteWords = dram_after.writeWords
        - dram_before.writeWords;
    if (l2_) {
        result.l2 = l2_->l2Stats();
        result.l2.lookups -= l2_before.lookups;
        result.l2.hits -= l2_before.hits;
        result.l2.hitWords -= l2_before.hitWords;
        result.l2.missWords -= l2_before.missWords;
        result.l2.writeWords -= l2_before.writeWords;
    }
    return result;
}

namespace
{

using Spad = systolic::DoubleBufferedScratchpad;

/**
 * Epoch-parallel co-step loop, bit-identical to the serial loop for
 * every worker count.
 *
 * Every event an engine advertises *is* a shared-memory transaction,
 * so the transactions themselves must execute serially in grant order
 * (each one moves the shared bus cursors the next one depends on).
 * What can run concurrently is the engine-local bookkeeping *between*
 * an engine's transactions: after its issue executes, an engine
 * repositions its burst cursor and — at fold boundaries — attributes
 * stalls and plans the next fold's fetches, none of which touches the
 * shared memory. stepIssue() therefore returns a floor: a sound lower
 * bound on every event the engine can advertise once that deferred
 * bookkeeping completes.
 *
 * The coordinator keeps a rolling epoch whose horizon is the minimum
 * floor over all in-flight engines. Any advertised transaction
 * strictly below the horizon is granted exactly as the serial arbiter
 * would grant it — an in-flight engine's true next event is >= its
 * floor, so it can neither precede nor tie the grant (ties would
 * perturb the round-robin pointer and the arbConflicts/waiters stats).
 * When nothing is grantable the coordinator rendezvouses: it blocks
 * until a worker completes, refreshes that engine's advertised event,
 * and re-evaluates. This is the epoch-rendezvous invariant (see
 * DESIGN.md): grants depend only on advertised events and floors,
 * never on worker scheduling, so the grant sequence — and with it
 * every stat — is reproducible independent of the worker count.
 *
 * Thread-safety: the only state shared with the workers is the
 * CompletionQueue (internally locked; its methods carry SIM_EXCLUDES
 * annotations, see common/parallel.hpp) and the engine handed to each
 * task — which the coordinator masks out of next[] until the
 * completion is harvested, so exactly one thread touches an engine at
 * a time. No other state here needs a mutex, and scalesim_lint's
 * `naked-mutex` check would flag an unannotated one.
 */
ArbiterStats
coStepEpoch(const std::vector<Spad*>& engines, bool scan_reverse,
            ThreadPool* pool)
{
    constexpr Cycle none = Spad::kNoEvent;
    RoundRobinArbiter arb(engines.size(), scan_reverse);
    std::vector<Cycle> next(engines.size());
    for (std::size_t k = 0; k < engines.size(); ++k)
        next[k] = engines[k]->nextEventCycle();
    // Engines whose stepAdvance() is running on a worker are masked
    // out of next[] and represented by their floor instead.
    std::vector<Cycle> floorOf(engines.size(), none);
    std::vector<char> inFlight(engines.size(), 0);
    std::size_t inFlightCount = 0;
    CompletionQueue completions;

    auto harvest = [&](const std::vector<std::size_t>& done) {
        for (std::size_t idx : done) {
            inFlight[idx] = 0;
            --inFlightCount;
            floorOf[idx] = none;
            // The worker's writes are visible here (CompletionQueue's
            // memory-visibility contract), so the refreshed event is
            // the engine's post-advance truth.
            next[idx] = engines[idx]->nextEventCycle();
        }
    };

    try {
        for (;;) {
            if (inFlightCount) {
                harvest(completions.poll());
                if (auto error = completions.error())
                    std::rethrow_exception(error);
            }
            Cycle min_next = none;
            for (const Cycle c : next)
                min_next = std::min(min_next, c);
            Cycle horizon = none;
            for (std::size_t k = 0; k < engines.size(); ++k) {
                if (inFlight[k])
                    horizon = std::min(horizon, floorOf[k]);
            }
            if (min_next == none) {
                if (!inFlightCount)
                    break; // every engine is done
                harvest(completions.waitAny());
                continue;
            }
            if (inFlightCount && min_next >= horizon) {
                // Rendezvous: an in-flight engine could still
                // advertise an event at or before min_next.
                harvest(completions.waitAny());
                continue;
            }
            const std::size_t g = arb.grant(next, none);
            SIM_CHECK(g != RoundRobinArbiter::kNone,
                      "advertised event must yield a grant");
            SIM_CHECK(inFlightCount == 0 || next[g] < horizon,
                      "epoch-rendezvous invariant: grants must stay "
                      "strictly below every in-flight engine's floor");
            const Spad::StepIssue issue = engines[g]->stepIssue();
            if (pool != nullptr && issue.heavy) {
                inFlight[g] = 1;
                ++inFlightCount;
                floorOf[g] = issue.floorCycle;
                next[g] = none;
                Spad* const eng = engines[g];
                pool->submit([eng, g, &completions] {
                    std::exception_ptr error;
                    try {
                        eng->stepAdvance();
                    } catch (...) {
                        error = std::current_exception();
                    }
                    completions.finish(g, error);
                });
            } else {
                engines[g]->stepAdvance();
                next[g] = engines[g]->nextEventCycle();
            }
        }
    } catch (...) {
        // Never leave workers touching the engines we are about to
        // unwind past: every submitted task finishes exactly once.
        while (inFlightCount) {
            for (std::size_t idx : completions.waitAny()) {
                inFlight[idx] = 0;
                --inFlightCount;
            }
        }
        throw;
    }
    return arb.stats();
}

} // namespace

MultiCoreTraceResult
MultiCoreTraceSimulator::runLayerShared(const LayerSpec& layer)
{
    const GemmDims gemm = layer.toGemm();
    const MappedDims mapped = systolic::mapGemmConventional(
        gemm, cfg_.dataflow);
    const auto sr_starts = shareStarts(mapped.sr, cfg_.pr);
    const auto sc_starts = shareStarts(mapped.sc, cfg_.pc);

    MemoryConfig mem;
    const systolic::OperandMap global(gemm, mem);

    const systolic::MemoryStats dram_before = dram_->stats();
    const SharedL2Stats l2_before = l2_ ? l2_->l2Stats()
                                        : SharedL2Stats{};
    if (l2_)
        l2_->invalidate();
    // Layer barrier: all cores start this layer at cycle 0 together.
    dram_->resetTimeline();
    if (l2_)
        l2_->resetTimeline();

    const std::uint64_t num_cores = cfg_.pr * cfg_.pc;
    MultiCoreTraceResult result;
    result.perCore.resize(num_cores);
    result.ports.resize(num_cores);

    /** One live core: its port into the shared memory + L1 engine. */
    struct CoreRun
    {
        std::uint64_t coreIdx;
        std::unique_ptr<MemoryPort> port;
        std::unique_ptr<systolic::DoubleBufferedScratchpad> l1;
    };
    std::vector<CoreRun> runs;
    runs.reserve(num_cores);

    for (std::uint64_t i = 0; i < cfg_.pr; ++i) {
        for (std::uint64_t j = 0; j < cfg_.pc; ++j) {
            const std::uint64_t sr_off = sr_starts[i];
            const std::uint64_t sr_share = sr_starts[i + 1] - sr_off;
            const std::uint64_t sc_off = sc_starts[j];
            const std::uint64_t sc_share = sc_starts[j + 1] - sc_off;
            if (sr_share == 0 || sc_share == 0)
                continue;
            const CorePartition part = corePartition(
                cfg_.dataflow, gemm, global, sr_off, sr_share, sc_off,
                sc_share);
            const systolic::FoldGrid grid(part.share, cfg_.dataflow,
                                          cfg_.arrayRows,
                                          cfg_.arrayCols);
            CoreRun run;
            run.coreIdx = i * cfg_.pc + j;
            run.port = std::make_unique<MemoryPort>(*coreView_);
            run.l1 = std::make_unique<
                systolic::DoubleBufferedScratchpad>(cfg_.l1,
                                                    *run.port);
            run.l1->beginLayer(grid, part.view);
            runs.push_back(std::move(run));
        }
    }

    // Co-step all engines in time order: always grant the earliest
    // pending transaction (round-robin on ties), so the shared bus
    // cursors advance in nondecreasing time and contention is FCFS in
    // simulated time rather than in core-enumeration order.
    if (!runs.empty() && cfg_.engine == MultiCoreEngine::Epoch) {
        const unsigned jobs = resolveJobs(cfg_.jobs);
        if (jobs > 1 && !pool_)
            pool_ = std::make_unique<ThreadPool>(jobs);
        std::vector<Spad*> engines;
        engines.reserve(runs.size());
        for (const auto& run : runs)
            engines.push_back(run.l1.get());
        result.arb = coStepEpoch(engines, cfg_.arbScanReverse,
                                 jobs > 1 ? pool_.get() : nullptr);
    } else if (!runs.empty()) {
        RoundRobinArbiter arb(runs.size(), cfg_.arbScanReverse);
        // nextEventCycle() depends only on the engine's own state (see
        // its contract), so stepping the granted engine can only move
        // that one entry — maintain next[] incrementally instead of
        // re-polling every engine per grant.
        std::vector<Cycle> next(runs.size());
        for (std::size_t k = 0; k < runs.size(); ++k)
            next[k] = runs[k].l1->nextEventCycle();
        for (;;) {
            const std::size_t g = arb.grant(
                next, systolic::DoubleBufferedScratchpad::kNoEvent);
            if (g == RoundRobinArbiter::kNone)
                break;
            runs[g].l1->step();
            next[g] = runs[g].l1->nextEventCycle();
        }
        result.arb = arb.stats();
    }

    for (auto& run : runs) {
        const auto timing = run.l1->finishLayer();
        result.makespan = std::max(result.makespan,
                                   timing.totalCycles);
        result.l1FillWords += timing.dramReadWords;
        result.perCore[run.coreIdx] = timing;
        result.ports[run.coreIdx] = run.port->portStats();
    }

    const systolic::MemoryStats& dram_after = dram_->stats();
    result.dramReadWords = dram_after.readWords
        - dram_before.readWords;
    result.dramWriteWords = dram_after.writeWords
        - dram_before.writeWords;
    if (l2_) {
        result.l2 = l2_->l2Stats();
        result.l2.lookups -= l2_before.lookups;
        result.l2.hits -= l2_before.hits;
        result.l2.hitWords -= l2_before.hitWords;
        result.l2.missWords -= l2_before.missWords;
        result.l2.writeWords -= l2_before.writeWords;
    }
    return result;
}

void
MultiCoreTraceResult::registerStats(obs::StatsRegistry& reg,
                                    const std::string& prefix) const
{
    auto name = [&](const char* leaf) { return prefix + "." + leaf; };
    reg.addScalar(name("makespan"), "slowest core's cycles",
                  static_cast<double>(makespan));
    reg.addScalar(name("dramReadWords"),
                  "words the backing memory served",
                  static_cast<double>(dramReadWords));
    reg.addScalar(name("dramWriteWords"),
                  "words written to the backing memory",
                  static_cast<double>(dramWriteWords));
    reg.addScalar(name("l1FillWords"),
                  "L1 fill words pulled from L2/DRAM (pre-dedup)",
                  static_cast<double>(l1FillWords));

    reg.addScalar(name("l2.lookups"), "L2 line lookups",
                  static_cast<double>(l2.lookups));
    reg.addScalar(name("l2.hits"), "L2 line hits",
                  static_cast<double>(l2.hits));
    reg.addScalar(name("l2.hitWords"),
                  "request words served from resident lines",
                  static_cast<double>(l2.hitWords));
    reg.addScalar(name("l2.missWords"),
                  "request words that missed in the L2",
                  static_cast<double>(l2.missWords));
    reg.addScalar(name("l2.writeWords"), "words written through the L2",
                  static_cast<double>(l2.writeWords));
    reg.addFormula(name("l2.hitRate"), "l2.hits / l2.lookups",
                   {{{name("l2.hits"), 1.0}},
                    {{name("l2.lookups"), 1.0}},
                    1.0});
    reg.addScalar(name("l2.arbConflicts"),
                  "same-cycle shared L2/DRAM port collisions",
                  static_cast<double>(arb.arbConflicts));
    reg.addScalar(name("arb.grants"), "arbiter grants",
                  static_cast<double>(arb.grants));
    reg.addDistribution(name("arb.waiters"),
                        "cores left waiting at each grant",
                        arb.waiters);

    for (std::size_t i = 0; i < perCore.size(); ++i) {
        const std::string core = prefix + ".core" + std::to_string(i);
        const auto& t = perCore[i];
        reg.addScalar(core + ".totalCycles", "core wall-clock cycles",
                      static_cast<double>(t.totalCycles));
        reg.addScalar(core + ".computeCycles", "core compute cycles",
                      static_cast<double>(t.computeCycles));
        reg.addScalar(core + ".stallCycles", "core stall cycles",
                      static_cast<double>(t.stallCycles));
        t.cpi.registerStats(reg, core + ".cpistack",
                            "per-cause cycle attribution (sums to "
                            "totalCycles)");
        if (i < ports.size()) {
            reg.addScalar(core + ".stallOnL2",
                          "cycles this core's requests spent queued "
                          "at the shared L2/DRAM port",
                          static_cast<double>(ports[i].waitCycles));
            reg.addScalar(core + ".fillWords",
                          "words this core pulled through its port",
                          static_cast<double>(ports[i].readWords));
        }
    }
}

} // namespace scalesim::multicore
