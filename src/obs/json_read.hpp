/**
 * @file
 * Minimal recursive-descent JSON parser with a small DOM, the reading
 * counterpart of JsonWriter. It exists so in-tree tools (trace_report)
 * and tests can consume the simulator's own machine-readable outputs
 * without external dependencies — it is not a general-purpose parser
 * (\uXXXX escapes decode to a placeholder, numbers are doubles).
 */

#ifndef SCALESIM_OBS_JSON_READ_HH
#define SCALESIM_OBS_JSON_READ_HH

#include <map>
#include <string>
#include <vector>

namespace scalesim::obs
{

/** One parsed JSON value; containers own their children by value. */
struct JsonValue
{
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object
    };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string text;
    std::vector<JsonValue> items;
    std::map<std::string, JsonValue> members;

    /** Object member by key; nullptr when absent or not an object. */
    const JsonValue* find(const std::string& key) const;

    /** `find` chained through a dotted path ("totals.cycles"). */
    const JsonValue* findPath(const std::string& path) const;

    /** Member's number value, or `fallback` when absent/non-numeric. */
    double numberAt(const std::string& key, double fallback = 0.0) const;

    /** Member's string value, or `fallback` when absent/non-string. */
    std::string stringAt(const std::string& key,
                         const std::string& fallback = {}) const;
};

/** Parse a whole document; false on any syntax error. */
bool parseJson(const std::string& text, JsonValue& out);

/** Load and parse a file; false on unreadable file or bad JSON. */
bool parseJsonFile(const std::string& path, JsonValue& out);

} // namespace scalesim::obs

#endif // SCALESIM_OBS_JSON_READ_HH
