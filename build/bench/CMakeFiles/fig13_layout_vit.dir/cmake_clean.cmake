file(REMOVE_RECURSE
  "CMakeFiles/fig13_layout_vit.dir/fig13_layout_vit.cpp.o"
  "CMakeFiles/fig13_layout_vit.dir/fig13_layout_vit.cpp.o.d"
  "fig13_layout_vit"
  "fig13_layout_vit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_layout_vit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
