#include "systolic/scratchpad.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "check/contract.hpp"
#include "common/log.hpp"

namespace scalesim::systolic
{

TileCache::TileCache(std::uint64_t capacity_words)
    : capacity_(capacity_words)
{
}

std::uint64_t
TileCache::access(std::uint64_t key, std::uint64_t words)
{
    auto hit = index_.find(key);
    if (hit != index_.end()) {
        // Move to MRU position.
        lru_.splice(lru_.begin(), lru_, hit->second);
        return 0;
    }
    if (words > capacity_) {
        // Streaming tile: cannot be kept resident, fetched every use.
        return words;
    }
    while (used_ + words > capacity_ && !lru_.empty()) {
        auto& victim = lru_.back();
        used_ -= victim.second;
        index_.erase(victim.first);
        lru_.pop_back();
    }
    lru_.emplace_front(key, words);
    index_[key] = lru_.begin();
    used_ += words;
    return words;
}

void
TileCache::clear()
{
    lru_.clear();
    index_.clear();
    used_ = 0;
}

namespace
{

/**
 * Reject bad configs before any member is sized from them: a zero
 * prefetchDepth must fail cleanly, not silently size the tile caches
 * for depth 1 and then throw with half-constructed members.
 */
const ScratchpadConfig&
validated(const ScratchpadConfig& cfg)
{
    if (cfg.burstWords == 0)
        fatal("burstWords must be non-zero");
    if (cfg.issuePerCycle == 0)
        fatal("issuePerCycle must be non-zero");
    if (cfg.prefetchDepth == 0)
        fatal("prefetchDepth must be non-zero");
    return cfg;
}

/** Per-fold fetch/writeback description. */
struct FoldPlanData
{
    std::vector<DoubleBufferedScratchpad::TileSpan> reads;
    DoubleBufferedScratchpad::TileSpan writeback;
    bool hasWriteback = false;
};

/** DRAM transactions a span splits into. */
std::uint64_t
spanRequests(const DoubleBufferedScratchpad::TileSpan& span,
             std::uint32_t burst_words)
{
    return span.segments * ceilDiv(span.segWords, burst_words);
}

/**
 * Ifmap rows a convolution fold touches: output pixels [m_lo, m_hi]
 * under reduction range [k_lo, k_hi] (indices in the fold grid's —
 * possibly sparsity-compressed — K domain, rescaled to the dense K
 * the tensor is addressed with). Returns the inclusive [h_lo, h_hi]
 * feature-map row range.
 */
std::pair<std::uint64_t, std::uint64_t>
convIfmapRows(const OperandMap& op, std::uint64_t m_lo,
              std::uint64_t m_hi, std::uint64_t k_lo,
              std::uint64_t k_hi, std::uint64_t effective_k)
{
    std::uint64_t k_lo_dense = k_lo;
    std::uint64_t k_hi_dense = k_hi;
    if (effective_k != op.dims.k && effective_k > 0) {
        // Sparse run: compressed K rows scatter across the dense
        // range; scale the bounds conservatively.
        k_lo_dense = k_lo * op.dims.k / effective_k;
        k_hi_dense = std::min(op.dims.k - 1,
                              (k_hi + 1) * op.dims.k / effective_k);
    }
    return op.ifmapRowRange(m_lo, m_hi, k_lo_dense, k_hi_dense);
}

} // namespace

/**
 * Resumable layer state: everything the old monolithic fold loop kept
 * in locals, plus a burst cursor that remembers which transaction of
 * which span of which phase comes next. One transaction per step()
 * keeps the engine interleavable at memory-request granularity.
 */
struct DoubleBufferedScratchpad::LayerRun
{
    LayerRun(const ScratchpadConfig& cfg, const FoldGrid& g,
             const OperandMap& ops, Cycle start, double scale)
        : grid(g), operands(ops), startCycle(start),
          readQueue(cfg.readQueueSize), writeQueue(cfg.writeQueueSize),
          pace(1.0 / cfg.issuePerCycle), computeEnd(start),
          prevComputeStart(start), prevPrefetchDone(start)
    {
        foldLen = static_cast<Cycle>(std::llround(
            static_cast<double>(grid.foldCycles()) * scale));
        timing.computeCycles = foldLen * grid.numFolds();
        timing.folds = grid.numFolds();
    }

    FoldGrid grid;
    OperandMap operands;
    Cycle startCycle;
    RequestQueue readQueue;
    RequestQueue writeQueue;
    double pace;
    Cycle foldLen = 0;
    LayerTiming timing;
    MemoryStats statsBefore;

    // Fold-loop state (mirrors the original monolithic loop).
    std::uint64_t rf = 0;
    std::uint64_t cf = 0;
    std::uint64_t foldIndex = 0;
    bool firstFold = true;
    Cycle computeEnd;
    Cycle prevComputeStart;
    Cycle prevPrefetchDone;
    // Compute-start history for depth-d prefetch: the buffer for fold
    // f frees up when fold f-depth starts computing.
    std::vector<Cycle> startHistory;
    bool pendingWriteback = false;
    TileSpan pendingSpan;

    // Current fold.
    FoldPlanData plan;
    Cycle issueBase = 0;
    Cycle ready = 0;
    Cycle readStallsBefore = 0;

    /**
     * Where the burst cursor stands: fetching the current fold's
     * operands, draining the previous fold's writeback (issued after
     * this fold's prefetch so call order matches time order), draining
     * the last fold's writeback, or complete.
     */
    enum class Phase { FoldReads, PrevWrites, FinalWrites, Done };
    Phase phase = Phase::Done;
    std::size_t spanIdx = 0;
    std::uint64_t seg = 0;
    std::uint64_t segRemaining = 0;
    Addr burstAddr = 0;
    double nextIssue = 0.0;
    Cycle lastWriteIssue = 0;

    // The positioned (pending) transaction.
    Count burstWords = 0;
    Cycle burstWant = 0;
    Cycle burstAt = kNoEvent;
    /** A stepIssue() happened whose stepAdvance() has not run yet
        (split-phase stepping; burstAt is stale until it does). */
    bool advancePending = false;

    /** Point the cursor at the start of `span`. */
    void
    startSpanCursor(const TileSpan& span, Cycle issue_start)
    {
        seg = 0;
        segRemaining = span.segWords;
        burstAddr = span.base;
        nextIssue = static_cast<double>(issue_start);
    }

    /**
     * Advance the cursor to the next burst of the current phase and
     * precompute its issue time. Returns false when the phase has no
     * more bursts. Pure with respect to the shared memory: only this
     * engine's own queue is queried, so the result is a valid
     * co-simulation horizon.
     */
    bool
    positionBurst(std::uint32_t burst_limit)
    {
        for (;;) {
            const bool reads = phase == Phase::FoldReads;
            const TileSpan* span = nullptr;
            if (reads) {
                if (spanIdx >= plan.reads.size())
                    return false;
                span = &plan.reads[spanIdx];
            } else {
                if (spanIdx >= 1)
                    return false;
                span = &pendingSpan;
            }
            if (seg < span->segments && segRemaining > 0) {
                burstWords = std::min<std::uint64_t>(segRemaining,
                                                     burst_limit);
                burstWant = static_cast<Cycle>(std::ceil(nextIssue));
                RequestQueue& queue = reads ? readQueue : writeQueue;
                burstAt = std::max(queue.slotAvailable(burstWant),
                                   burstWant);
                return true;
            }
            if (seg + 1 < span->segments) {
                ++seg;
                segRemaining = span->segWords;
                burstAddr = span->base + seg * span->stride;
            } else if (reads) {
                ++spanIdx;
                if (spanIdx < plan.reads.size()) {
                    // Pacing restarts at the fold's issue base for
                    // every span (as the original per-span loop did).
                    startSpanCursor(plan.reads[spanIdx], issueBase);
                }
            } else {
                ++spanIdx;
            }
        }
    }

    /** Enter a writeback phase for pendingSpan. */
    void
    beginWrites(Phase p, std::uint32_t burst_words)
    {
        const std::uint64_t reqs = spanRequests(pendingSpan,
                                                burst_words);
        Cycle writes_base = computeEnd > reqs ? computeEnd - reqs : 0;
        writes_base = std::max(writes_base, prevComputeStart);
        phase = p;
        spanIdx = 0;
        startSpanCursor(pendingSpan, writes_base);
        lastWriteIssue = writes_base;
    }

    /**
     * Retire a finished writeback phase: the drain overlaps the tail
     * of the producing fold; only back-pressure extends the timeline.
     */
    void
    closeWrites()
    {
        if (lastWriteIssue > computeEnd) {
            timing.drainStallCycles += lastWriteIssue - computeEnd;
            computeEnd = lastWriteIssue;
        }
        pendingWriteback = false;
    }

    void
    complete()
    {
        phase = Phase::Done;
        burstAt = kNoEvent;
    }
};

DoubleBufferedScratchpad::DoubleBufferedScratchpad(
    const ScratchpadConfig& cfg, MainMemory& memory)
    : cfg_(validated(cfg)), memory_(memory),
      // One shadow buffer per prefetch-depth step; the rest of each
      // SRAM holds resident data.
      ifmapCache_(cfg_.ifmapWords / (1 + cfg_.prefetchDepth)),
      filterCache_(cfg_.filterWords / (1 + cfg_.prefetchDepth))
{
}

DoubleBufferedScratchpad::~DoubleBufferedScratchpad() = default;

void
DoubleBufferedScratchpad::reset()
{
    ifmapCache_.clear();
    filterCache_.clear();
}

void
DoubleBufferedScratchpad::planConvIfmap(
    const OperandMap& operands, std::uint64_t m_lo, std::uint64_t m_hi,
    std::uint64_t k_lo, std::uint64_t k_hi, std::uint64_t effective_k,
    std::vector<TileSpan>& reads)
{
    // Row-slice-granular residency: overlapping windows and adjacent
    // folds share ifmap rows, which must not be refetched. A fold
    // covering only part of the reduction (a (kw, c) slice of each
    // window row) fetches the corresponding fraction of each row;
    // slices are distinguished by an aligned bucket in the cache key.
    const auto [h_lo, h_hi] = convIfmapRows(operands, m_lo, m_hi, k_lo,
                                            k_hi, effective_k);
    const std::uint64_t row_width = operands.ifmapRowWidth();
    const std::uint64_t kfc = std::max<std::uint64_t>(
        1, operands.filterW * operands.channels);
    std::uint64_t k_span = k_hi - k_lo + 1;
    if (effective_k != operands.dims.k && effective_k > 0)
        k_span = k_span * operands.dims.k / effective_k;
    std::uint64_t slice_words = row_width;
    std::uint64_t bucket = 0;
    if (k_span < kfc) {
        slice_words = std::max<std::uint64_t>(
            1, row_width * k_span / kfc);
        bucket = 1 + (k_lo % kfc) / std::max<std::uint64_t>(1, k_span);
    }
    std::uint64_t run_start = ~static_cast<std::uint64_t>(0);
    auto flush = [&](std::uint64_t end_h) {
        if (run_start == ~static_cast<std::uint64_t>(0))
            return;
        reads.push_back({operands.ifmapBase + run_start * row_width, 1,
                         (end_h - run_start) * slice_words, 0});
        run_start = ~static_cast<std::uint64_t>(0);
    };
    for (std::uint64_t h = h_lo; h <= h_hi; ++h) {
        const std::uint64_t key = h * 65536 + bucket;
        const bool miss = ifmapCache_.access(key, slice_words) > 0;
        if (miss && run_start == ~static_cast<std::uint64_t>(0))
            run_start = h;
        if (!miss)
            flush(h);
    }
    flush(h_hi + 1);
}

void
DoubleBufferedScratchpad::planFold()
{
    LayerRun& r = *run_;
    const FoldGrid& grid = r.grid;
    const OperandMap& operands = r.operands;
    const std::uint64_t k_dim = grid.gemm().k;
    const std::uint64_t m_dim = grid.gemm().m;
    const std::uint64_t n_dim = grid.gemm().n;
    // Address-space row pitch (global operand layout; differs from
    // the grid dims for partitioned or sparsity-compressed runs).
    const std::uint64_t n_pitch = operands.dims.n;
    const std::uint64_t rf = r.rf;
    const std::uint64_t cf = r.cf;
    const std::uint64_t tr = grid.tileRows(rf);
    const std::uint64_t tc = grid.tileCols(cf);
    const std::uint64_t rbase = rf * grid.arrayRows();
    const std::uint64_t cbase = cf * grid.arrayCols();

    r.plan = FoldPlanData{};
    FoldPlanData& plan = r.plan;
    switch (grid.dataflow()) {
      case Dataflow::OutputStationary: {
        if (operands.conv) {
            planConvIfmap(operands, rbase, rbase + tr - 1, 0,
                          k_dim - 1, k_dim, plan.reads);
        } else if (ifmapCache_.access(rf, tr * k_dim)) {
            plan.reads.push_back({operands.ifmapAddr(rbase, 0),
                                  1, tr * k_dim, 0});
        }
        if (filterCache_.access(cf, k_dim * tc)) {
            plan.reads.push_back({operands.filterAddr(0, cbase),
                                  k_dim, tc, n_pitch});
        }
        plan.writeback = {operands.ofmapAddr(rbase, cbase), tr,
                          tc, n_pitch};
        plan.hasWriteback = true;
        break;
      }
      case Dataflow::WeightStationary: {
        const std::uint64_t filter_key = rf * grid.colFolds() + cf;
        if (filterCache_.access(filter_key, tr * tc)) {
            plan.reads.push_back({operands.filterAddr(rbase, cbase),
                                  tr, tc, n_pitch});
        }
        if (operands.conv) {
            planConvIfmap(operands, 0, m_dim - 1, rbase,
                          rbase + tr - 1, k_dim, plan.reads);
        } else if (ifmapCache_.access(rf, m_dim * tr)) {
            plan.reads.push_back({operands.ifmapAddr(0, rbase),
                                  m_dim, tr, operands.dims.k});
        }
        const std::uint64_t ofmap_fold_words = m_dim * tc;
        const bool spills = ofmap_fold_words > cfg_.ofmapWords;
        const bool last_rf = rf + 1 == grid.rowFolds();
        if (spills && rf > 0) {
            // Partial sums re-loaded from DRAM.
            plan.reads.push_back({operands.ofmapAddr(0, cbase),
                                  m_dim, tc, n_pitch});
        }
        if (spills || last_rf) {
            plan.writeback = {operands.ofmapAddr(0, cbase),
                              m_dim, tc, n_pitch};
            plan.hasWriteback = true;
        }
        break;
      }
      case Dataflow::InputStationary: {
        const std::uint64_t ifmap_key = rf * grid.colFolds() + cf;
        if (operands.conv) {
            planConvIfmap(operands, cbase, cbase + tc - 1,
                          rbase, rbase + tr - 1, k_dim, plan.reads);
        } else if (ifmapCache_.access(ifmap_key, tr * tc)) {
            plan.reads.push_back({operands.ifmapAddr(cbase, rbase),
                                  tc, tr, operands.dims.k});
        }
        if (filterCache_.access(rf, n_dim * tr)) {
            plan.reads.push_back({operands.filterAddr(rbase, 0),
                                  1, tr * n_dim, 0});
        }
        const std::uint64_t ofmap_fold_words = tc * n_dim;
        const bool spills = ofmap_fold_words > cfg_.ofmapWords;
        const bool last_rf = rf + 1 == grid.rowFolds();
        if (spills && rf > 0) {
            plan.reads.push_back({operands.ofmapAddr(cbase, 0),
                                  1, tc * n_dim, 0});
        }
        if (spills || last_rf) {
            plan.writeback = {operands.ofmapAddr(cbase, 0), 1,
                              tc * n_dim, 0};
            plan.hasWriteback = true;
        }
        break;
      }
    }

    // Prefetch may start once the previous fold's prefetch has
    // finished and a buffer is free — i.e. fold f-depth has started
    // computing (depth = 1 is classic double buffering).
    Cycle buffer_free = r.startCycle;
    if (r.foldIndex >= cfg_.prefetchDepth)
        buffer_free = r.startHistory[r.foldIndex - cfg_.prefetchDepth];
    r.issueBase = r.firstFold
        ? r.startCycle
        : std::max(r.prevPrefetchDone, buffer_free);
    r.readStallsBefore = r.readQueue.fullStallCycles();
    r.ready = r.issueBase;
    r.phase = LayerRun::Phase::FoldReads;
    r.spanIdx = 0;
    if (!plan.reads.empty())
        r.startSpanCursor(plan.reads[0], r.issueBase);
}

void
DoubleBufferedScratchpad::foldWrapup()
{
    LayerRun& r = *run_;
    const Cycle compute_start = std::max(r.computeEnd, r.ready);
    // Stall attribution: the wait for prefetch data splits into the
    // share caused by a full read queue (bandwidth) and the genuine
    // prefetch miss latency; writeback extensions were charged to
    // drain in closeWrites(). The three buckets sum exactly to
    // stallCycles.
    const Cycle gap = compute_start - r.computeEnd;
    const Cycle queue_delay = r.readQueue.fullStallCycles()
        - r.readStallsBefore;
    const Cycle bandwidth_part = std::min(gap, queue_delay);
    r.timing.bandwidthStallCycles += bandwidth_part;
    r.timing.prefetchStallCycles += gap - bandwidth_part;
    const Cycle fold_end = compute_start + r.foldLen;
    if (cfg_.recordFoldSpans
        && r.timing.foldSpans.size()
            < LayerTiming::kMaxRecordedFoldSpans) {
        r.timing.foldSpans.push_back(
            {compute_start - r.startCycle,
             fold_end - r.startCycle,
             static_cast<std::uint32_t>(r.rf),
             static_cast<std::uint32_t>(r.cf)});
    }

    if (r.plan.hasWriteback) {
        r.pendingWriteback = true;
        r.pendingSpan = r.plan.writeback;
    }

    r.prevPrefetchDone = r.ready;
    r.prevComputeStart = compute_start;
    r.startHistory.push_back(compute_start);
    ++r.foldIndex;
    r.computeEnd = fold_end;
    r.firstFold = false;

    ++r.cf;
    if (r.cf == r.grid.colFolds()) {
        r.cf = 0;
        ++r.rf;
    }
    if (r.rf == r.grid.rowFolds()) {
        if (r.pendingWriteback)
            r.beginWrites(LayerRun::Phase::FinalWrites,
                          cfg_.burstWords);
        else
            r.complete();
    } else {
        planFold();
    }
}

void
DoubleBufferedScratchpad::advance()
{
    LayerRun& r = *run_;
    for (;;) {
        switch (r.phase) {
          case LayerRun::Phase::FoldReads:
            if (r.positionBurst(cfg_.burstWords))
                return;
            // This fold's prefetch is fully issued; retire the
            // previous fold's writeback (earlier in time) next.
            if (r.pendingWriteback) {
                r.beginWrites(LayerRun::Phase::PrevWrites,
                              cfg_.burstWords);
                break;
            }
            foldWrapup();
            break;
          case LayerRun::Phase::PrevWrites:
            if (r.positionBurst(cfg_.burstWords))
                return;
            r.closeWrites();
            foldWrapup();
            break;
          case LayerRun::Phase::FinalWrites:
            if (r.positionBurst(cfg_.burstWords))
                return;
            r.closeWrites();
            r.complete();
            return;
          case LayerRun::Phase::Done:
            return;
        }
    }
}

void
DoubleBufferedScratchpad::beginLayer(const FoldGrid& grid,
                                     const OperandMap& operands,
                                     Cycle start_cycle,
                                     double compute_scale)
{
    if (run_)
        fatal("beginLayer() while a layer is already in flight");
    run_ = std::make_unique<LayerRun>(cfg_, grid, operands,
                                      start_cycle, compute_scale);
    run_->statsBefore = memory_.stats();
    planFold();
    advance();
}

Cycle
DoubleBufferedScratchpad::nextEventCycle() const
{
    return run_ ? run_->burstAt : kNoEvent;
}

void
DoubleBufferedScratchpad::step()
{
    stepIssue();
    stepAdvance();
}

DoubleBufferedScratchpad::StepIssue
DoubleBufferedScratchpad::stepIssue()
{
    if (!run_ || run_->burstAt == kNoEvent)
        fatal("step() without a pending memory event");
    LayerRun& r = *run_;
    SIM_CHECK(!r.advancePending,
              "stepIssue() before the previous stepAdvance() completed");
    const bool reads = r.phase == LayerRun::Phase::FoldReads;
    RequestQueue& queue = reads ? r.readQueue : r.writeQueue;
    const Cycle slot = queue.reserve(r.burstWant);
    const Cycle at = std::max(slot, r.burstWant);
    if (reads) {
        const Cycle done = memory_.issueRead(r.burstAddr, r.burstWords,
                                             at);
        queue.push(done);
        r.ready = std::max(r.ready, done);
        ++r.timing.dramReadRequests;
        r.timing.dramReadWords += r.burstWords;
    } else {
        const Cycle accepted = memory_.issueWrite(r.burstAddr,
                                                  r.burstWords, at);
        queue.push(accepted);
        r.lastWriteIssue = std::max(r.lastWriteIssue, at);
        ++r.timing.dramWriteRequests;
        r.timing.dramWriteWords += r.burstWords;
    }
    r.nextIssue = static_cast<double>(at) + r.pace;
    r.burstAddr += r.burstWords;
    r.segRemaining -= r.burstWords;
    r.advancePending = true;

    // Classify what stepAdvance() will do and lower-bound every event
    // this engine can advertise afterwards. The bound must hold over
    // the *whole* chain the advance may run (span/fold transitions,
    // empty plans, writeback anchoring), because the co-simulation
    // scheduler keeps granting other engines while it is in flight.
    StepIssue out;
    const TileSpan& span =
        reads ? r.plan.reads[r.spanIdx] : r.pendingSpan;
    if (r.segRemaining > 0 || r.seg + 1 < span.segments) {
        // More bursts in this span: pacing advances one issue slot
        // (pace <= 1), so the next want-cycle is exactly at + 1 and
        // the queue can only delay it further.
        out.floorCycle = at + 1;
    } else if (reads && r.spanIdx + 1 < r.plan.reads.size()) {
        // Span transition: pacing restarts at the fold's issue base.
        out.floorCycle = r.issueBase;
    } else if (reads && r.pendingWriteback) {
        // The previous fold's writeback is anchored at
        // max(computeEnd - requests, prevComputeStart).
        out.floorCycle = r.prevComputeStart;
    } else if (r.phase == LayerRun::Phase::FinalWrites) {
        // closeWrites() + complete(): no further events at all.
        out.floorCycle = kNoEvent;
    } else {
        // foldWrapup() chain (possibly through several empty folds),
        // ending in the next fold's reads, a writeback, or Done.
        // Every anchor it can produce is >= ready: the next fold's
        // issueBase = max(prevPrefetchDone, buffer_free) with
        // prevPrefetchDone = ready; writeback bases are
        // >= prevComputeStart = max(computeEnd, ready) >= ready; and
        // ready never decreases across folds. This is also the
        // expensive case (stall attribution, tile-cache lookups,
        // next-fold planning), so it is the one worth offloading.
        out.floorCycle = r.ready;
        out.heavy = true;
    }
    return out;
}

void
DoubleBufferedScratchpad::stepAdvance()
{
    if (!run_ || !run_->advancePending)
        fatal("stepAdvance() without a pending stepIssue()");
    run_->advancePending = false;
    advance();
}

LayerTiming
DoubleBufferedScratchpad::finishLayer()
{
    if (!run_ || run_->phase != LayerRun::Phase::Done)
        fatal("finishLayer() before the layer completed");
    LayerRun& r = *run_;
    r.timing.totalCycles = r.computeEnd - r.startCycle;
    r.timing.stallCycles =
        r.timing.totalCycles > r.timing.computeCycles
        ? r.timing.totalCycles - r.timing.computeCycles : 0;
    r.timing.readQueueStalls = r.readQueue.fullStallCycles();
    r.timing.writeQueueStalls = r.writeQueue.fullStallCycles();
    SIM_CHECK_EQ(r.timing.prefetchStallCycles
                     + r.timing.drainStallCycles
                     + r.timing.bandwidthStallCycles,
                 r.timing.stallCycles,
                 "stall breakdown must cover the stall total");
    SIM_CHECK_EQ(r.timing.computeCycles + r.timing.stallCycles,
                 r.timing.totalCycles,
                 "compute + stall must cover the layer wall clock");

    const MemoryStats& stats_after = memory_.stats();
    const Count read_reqs = stats_after.readRequests
        - r.statsBefore.readRequests;
    if (read_reqs) {
        r.timing.avgReadLatency = static_cast<double>(
            stats_after.totalReadLatency
            - r.statsBefore.totalReadLatency)
            / read_reqs;
    }

    // CPI stack: compute/drain/bandwidth map 1:1 from the stall
    // breakdown; the prefetch stall is refined across the backend
    // using the memory model's read-latency components for this layer
    // as weights. Integer floor division keeps every bucket exact and
    // the remainder in prefetchMiss, so the stack always sums to
    // totalCycles — the auditor's cpi.conservation law.
    obs::CpiStack& cpi = r.timing.cpi;
    cpi.compute = r.timing.totalCycles - r.timing.stallCycles;
    cpi.drain = r.timing.drainStallCycles;
    cpi.bandwidth = r.timing.bandwidthStallCycles;
    const Cycle prefetch = r.timing.prefetchStallCycles;
    const Cycle w_port =
        stats_after.readPortWait - r.statsBefore.readPortWait;
    const Cycle w_queue =
        stats_after.readQueueWait - r.statsBefore.readQueueWait;
    const Cycle w_refresh =
        stats_after.readRefresh - r.statsBefore.readRefresh;
    const Cycle w_service =
        stats_after.readService - r.statsBefore.readService;
    const Cycle w_sum = w_port + w_queue + w_refresh + w_service;
    if (w_sum > 0 && prefetch > 0) {
        using u128 = unsigned __int128;
        auto share = [&](Cycle w) {
            return static_cast<Cycle>(
                static_cast<u128>(prefetch) * w / w_sum);
        };
        cpi.l2Wait = share(w_port);
        cpi.dramQueue = share(w_queue);
        cpi.refresh = share(w_refresh);
        cpi.dramService = share(w_service);
        cpi.prefetchMiss = prefetch - cpi.l2Wait - cpi.dramQueue
            - cpi.refresh - cpi.dramService;
    } else {
        cpi.prefetchMiss = prefetch;
    }
    SIM_CHECK_EQ(cpi.total(), r.timing.totalCycles,
                 "CPI stack must cover the layer wall clock");

    LayerTiming timing = std::move(r.timing);
    run_.reset();
    totals_.accumulate(timing);
    return timing;
}

LayerTiming
DoubleBufferedScratchpad::runLayer(const FoldGrid& grid,
                                   const OperandMap& operands,
                                   Cycle start_cycle,
                                   double compute_scale)
{
    beginLayer(grid, operands, start_cycle, compute_scale);
    while (nextEventCycle() != kNoEvent)
        step();
    return finishLayer();
}

void
DoubleBufferedScratchpad::registerStats(obs::StatsRegistry& reg,
                                        const std::string& prefix) const
{
    auto name = [&](const char* leaf) { return prefix + "." + leaf; };
    reg.addScalar(name("computeCycles"),
                  "ideal compute cycles across layers",
                  static_cast<double>(totals_.computeCycles));
    reg.addScalar(name("totalCycles"),
                  "wall-clock cycles incl. stalls across layers",
                  static_cast<double>(totals_.totalCycles));
    reg.addScalar(name("stallCycles"), "memory stall cycles",
                  static_cast<double>(totals_.stallCycles));
    reg.addScalar(name("folds"), "systolic folds executed",
                  static_cast<double>(totals_.folds));
    reg.addVectorElem(name("stallBreakdown"), "prefetchMiss",
                      "stall cycles by cause (sums to stallCycles)",
                      static_cast<double>(totals_.prefetchStallCycles));
    reg.addVectorElem(name("stallBreakdown"), "drain",
                      "stall cycles by cause (sums to stallCycles)",
                      static_cast<double>(totals_.drainStallCycles));
    reg.addVectorElem(
        name("stallBreakdown"), "bandwidth",
        "stall cycles by cause (sums to stallCycles)",
        static_cast<double>(totals_.bandwidthStallCycles));
    totals_.cpi.registerStats(
        reg, name("cpistack"),
        "per-cause cycle attribution (sums to totalCycles)");
    reg.addScalar(name("dramReadWords"), "main-memory words read",
                  static_cast<double>(totals_.dramReadWords));
    reg.addScalar(name("dramWriteWords"), "main-memory words written",
                  static_cast<double>(totals_.dramWriteWords));
    reg.addScalar(name("dramReadRequests"),
                  "main-memory read transactions",
                  static_cast<double>(totals_.dramReadRequests));
    reg.addScalar(name("dramWriteRequests"),
                  "main-memory write transactions",
                  static_cast<double>(totals_.dramWriteRequests));
    reg.addScalar(name("readQueueStalls"),
                  "cycles lost to a full read queue",
                  static_cast<double>(totals_.readQueueStalls));
    reg.addScalar(name("writeQueueStalls"),
                  "cycles lost to a full write queue",
                  static_cast<double>(totals_.writeQueueStalls));
    reg.addFormula(name("stallFraction"), "stallCycles / totalCycles",
                   {{{name("stallCycles"), 1.0}},
                    {{name("totalCycles"), 1.0}},
                    1.0});
}

} // namespace scalesim::systolic
