# Empty compiler generated dependencies file for multicore_explorer.
# This may be replaced when dependencies are built.
