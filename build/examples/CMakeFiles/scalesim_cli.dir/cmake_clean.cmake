file(REMOVE_RECURSE
  "CMakeFiles/scalesim_cli.dir/scalesim_cli.cpp.o"
  "CMakeFiles/scalesim_cli.dir/scalesim_cli.cpp.o.d"
  "scalesim_cli"
  "scalesim_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scalesim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
