/**
 * @file
 * Lint fixture for [locale-parse]. Never compiled — scanned by
 * tests/lint_test.cpp, which pins the exact findings expected here:
 * five firing lines (atoi, strtod, std::stoi, sscanf, stream
 * extraction into a double) and two suppressed atoi calls (directive
 * on the line above, and trailing on the same line).
 */

#include <cstdio>
#include <cstdlib>
#include <istream>
#include <string>

int
fixture_atoi(const char* text)
{
    return atoi(text); // finding: locale-parse
}

double
fixture_strtod(const char* text)
{
    return strtod(text, nullptr); // finding: locale-parse
}

int
fixture_stoi(const std::string& text)
{
    return std::stoi(text); // finding: locale-parse
}

void
fixture_sscanf(const char* text, int* value)
{
    std::sscanf(text, "%d", value); // finding: locale-parse
}

double
fixture_stream(std::istream& in)
{
    double value = 0.0;
    in >> value; // finding: locale-parse (extraction into a double)
    return value;
}

int
fixture_allowed_above(const char* text)
{
    // scalesim-lint: allow(locale-parse)
    return atoi(text); // suppressed: directive on the line above
}

int
fixture_allowed_trailing(const char* text)
{
    return atoi(text); // scalesim-lint: allow(locale-parse)
}
