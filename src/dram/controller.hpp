/**
 * @file
 * Single-channel DRAM controller: per-bank row-buffer state machine,
 * JEDEC timing enforcement (tRCD/tRP/tCL/tRAS/tRC/tRRD/tFAW/tCCD/tWR/
 * tRTP/tWTR), shared data-bus occupancy, and FR-FCFS scheduling with a
 * bounded reorder window and a row-hit streak cap.
 *
 * The controller is event-driven at request granularity: it never ticks
 * idle cycles, so million-request traces simulate in milliseconds while
 * every inter-command constraint is honored exactly.
 */

#ifndef SCALESIM_DRAM_CONTROLLER_HH
#define SCALESIM_DRAM_CONTROLLER_HH

#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "dram/timing.hpp"
#include "obs/stats.hpp"

namespace scalesim::dram
{

/** Channel-local coordinates of a transaction. */
struct DecodedAddr
{
    std::uint32_t rank = 0;
    std::uint32_t bank = 0;
    std::uint64_t row = 0;
    std::uint64_t col = 0;
};

/** Row-buffer outcome of one serviced transaction. */
enum class RowOutcome
{
    Hit,
    Miss,     ///< bank was closed (empty row buffer)
    Conflict, ///< different row was open
};

/**
 * Row-buffer management policy: open-page keeps rows open for locality
 * (hits cheap, conflicts expensive); closed-page auto-precharges after
 * every access (no hits, but no conflicts either — better for random
 * traffic).
 */
enum class PagePolicy
{
    Open,
    Closed,
};

/**
 * Controller scheduling engine. Both produce bit-identical schedules,
 * stats, and completions; EventSkip is the production engine and
 * Stepped the plain reference kept for A/B equivalence tests (the
 * same pattern as ContentionModel::Static for the multi-core model).
 *
 * EventSkip fast-forwards idle stretches: refresh catch-up after a
 * long gap is one closed-form division instead of a loop over every
 * elapsed tREFI window, and serviceUntil() drains straight to the
 * target request instead of re-probing the completion map after every
 * serviced burst.
 */
enum class DramEngine
{
    EventSkip,
    Stepped,
};

DramEngine dramEngineFromString(std::string_view text);
const char* toString(DramEngine engine);

/** Aggregate statistics of one channel (or summed across channels). */
struct DramStats
{
    Count reads = 0;
    Count writes = 0;
    Count rowHits = 0;
    Count rowMisses = 0;
    Count rowConflicts = 0;
    /** Per-rank all-bank refresh operations performed. */
    Count refreshes = 0;
    std::uint64_t readBytes = 0;
    std::uint64_t writeBytes = 0;
    /** Sum over reads of (data completion - arrival), memory clocks. */
    Cycle totalReadLatency = 0;
    /**
     * Exact component split of totalReadLatency (memory clocks):
     * readQueueWait (arrival until the controller turns to the
     * request) + readRefreshWait (waiting out an in-progress refresh
     * window) + readServiceTime (bank access + bus transfer) sum to
     * totalReadLatency for every read. Catch-up refreshes that closed
     * rows long before the request arrived surface as service time
     * (their cost is the row miss they cause), not refresh wait.
     */
    Cycle readQueueWait = 0;
    Cycle readRefreshWait = 0;
    Cycle readServiceTime = 0;
    Cycle firstArrival = ~static_cast<Cycle>(0);
    Cycle lastCompletion = 0;

    double
    rowHitRate() const
    {
        const Count total = rowHits + rowMisses + rowConflicts;
        return total ? static_cast<double>(rowHits) / total : 0.0;
    }
    double
    avgReadLatency() const
    {
        return reads ? static_cast<double>(totalReadLatency) / reads
                     : 0.0;
    }

    void merge(const DramStats& other);
};

/** Row-buffer outcome counters of one bank (observability). */
struct BankStats
{
    Count rowHits = 0;
    Count rowMisses = 0;
    Count rowConflicts = 0;
};

/**
 * One DRAM channel. Requests are enqueued with monotonically
 * non-decreasing arrival times; serviceUntil() drains the pending queue
 * until a given request completes. In the coupled (synchronous) flow
 * the queue holds at most the requests of one burst batch, making the
 * schedule FCFS; the trace-driven flow enqueues whole traces and gets
 * genuine FR-FCFS reordering.
 */
class Channel
{
  public:
    Channel(const DramTiming& timing, std::uint32_t ranks,
            std::uint32_t reorder_window = 32,
            std::uint32_t hit_streak_cap = 16,
            PagePolicy policy = PagePolicy::Open,
            DramEngine engine = DramEngine::EventSkip);

    /** Enqueue; returns the request's sequence handle. Arrivals may
     *  be out of order — the queue is kept sorted by arrival (ties
     *  keep enqueue order), so "oldest" always means earliest. */
    std::uint64_t enqueue(const DecodedAddr& addr, bool write,
                          Cycle arrival);

    /** nextEventCycle() value when nothing is pending. */
    static constexpr Cycle kNoEvent = ~static_cast<Cycle>(0);

    /**
     * Arrival of the earliest pending request, or kNoEvent when the
     * queue is empty — the channel's next natural service instant for
     * event-skipping co-simulation (the DRAM analogue of
     * DoubleBufferedScratchpad::nextEventCycle). Depends only on this
     * channel's own queue.
     */
    Cycle nextEventCycle() const
    {
        return pending_.empty() ? kNoEvent : pending_.front().arrival;
    }

    /** Service pending requests until `seq` completes; returns its
     *  completion time (data arrival for reads, column-command issue
     *  for writes), in memory clocks. */
    Cycle serviceUntil(std::uint64_t seq);

    /** Service everything currently pending. */
    void drainAll();

    const DramStats& stats() const { return stats_; }

    /** Earliest cycle the data bus frees up (for utilization calcs). */
    Cycle busFree() const { return busFree_; }

    /** Per-bank row-buffer outcome counters (rank-major). */
    const std::vector<BankStats>& bankStats() const
    {
        return bankStats_;
    }

    /** Request-queue depth histogram, sampled at each enqueue. */
    const obs::Histogram& queueOccupancy() const
    {
        return queueOccupancy_;
    }

    /** Per-read round-trip latency distribution (memory clocks). */
    const obs::Histogram& readLatency() const { return readLatency_; }

    /** Per-read queue-wait component distribution (memory clocks). */
    const obs::Histogram& readQueueWait() const
    {
        return readQueueWaitHist_;
    }

    /** Per-read service component (refresh wait included) dist. */
    const obs::Histogram& readService() const
    {
        return readServiceHist_;
    }

    /** Memory clocks the shared data bus spent transferring bursts. */
    Cycle busBusyCycles() const { return busBusyCycles_; }

    /**
     * Register this channel's stats under `prefix` (dotted group, e.g.
     * "dram.ch0"): request/outcome scalars, per-bank outcome vectors,
     * the queue-occupancy distribution, and derived formulas
     * (rowHitRate, avgReadLatency, busUtilization).
     */
    void registerStats(obs::StatsRegistry& reg,
                       const std::string& prefix) const;

  private:
    struct Pending
    {
        DecodedAddr addr;
        bool write = false;
        Cycle arrival = 0;
        std::uint64_t seq = 0;
        /** rank-major global bank index, precomputed at enqueue. */
        std::uint32_t gbank = 0;
    };

    struct Bank
    {
        bool open = false;
        std::uint64_t row = 0;
        Cycle rcdDone = 0;   ///< earliest column cmd to the open row
        Cycle preReady = 0;  ///< earliest legal precharge
        Cycle lastAct = 0;
    };

    /** Index into pending_ of the next request to service. */
    std::size_t pickNext(Cycle decision_time);

    /** Service one pending request; returns completion time. */
    Cycle serviceOne(const Pending& req);

    DramTiming timing_;
    std::uint32_t reorderWindow_;
    std::uint32_t hitStreakCap_;
    PagePolicy policy_;
    DramEngine engine_;

    std::deque<Pending> pending_;
    std::vector<Bank> banks_;
    DramStats stats_;
    std::vector<BankStats> bankStats_;
    obs::Histogram queueOccupancy_;
    obs::Histogram readLatency_;
    obs::Histogram readQueueWaitHist_;
    obs::Histogram readServiceHist_;
    Cycle busBusyCycles_ = 0;

    Cycle busFree_ = 0;
    Cycle lastColCmd_ = 0;
    bool lastWasWrite_ = false;
    Cycle lastWriteDataEnd_ = 0;
    Cycle lastActAny_ = 0;
    /**
     * Start of each rank's next due refresh window (tREFI cadence,
     * first due one tREFI after reset). tREFI/tRFC are per-rank: a
     * refresh closes only that rank's row buffers.
     */
    std::vector<Cycle> nextRefresh_;
    std::deque<Cycle> actWindow_;
    std::uint64_t nextSeq_ = 0;
    // Completions of serviced requests awaiting retrieval. Keyed
    // access only (erased by request id): hash order never decides
    // scheduling or stats (scalesim_lint unordered-iteration-to-output
    // would flag any iteration added here).
    std::unordered_map<std::uint64_t, Cycle> completed_;
    std::uint64_t hitStreak_ = 0;
    std::uint32_t streakBank_ = ~0u;
    std::uint64_t streakRow_ = 0;
};

} // namespace scalesim::dram

#endif // SCALESIM_DRAM_CONTROLLER_HH
