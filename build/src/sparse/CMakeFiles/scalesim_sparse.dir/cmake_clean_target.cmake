file(REMOVE_RECURSE
  "libscalesim_sparse.a"
)
