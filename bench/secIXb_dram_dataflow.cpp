/**
 * @file
 * Reproduces the §IX-B "DRAM" finding: on six ResNet-18 layers,
 * weight-stationary wins on pure compute cycles (v2's metric, ~21%
 * fewer than output-stationary), but once DRAM stalls are modeled the
 * ordering flips and OS finishes ~30% sooner — the paper's argument
 * for detailed main-memory analysis. Small request queues amplify the
 * effect.
 */

#include "bench_util.hpp"
#include "common/log.hpp"
#include "common/workloads.hpp"
#include "core/simulator.hpp"

using namespace scalesim;

namespace
{

core::RunResult
run(const Topology& topo, Dataflow df, bool dram)
{
    SimConfig cfg;
    cfg.arrayRows = cfg.arrayCols = 128;
    cfg.dataflow = df;
    cfg.mode = SimMode::Analytical;
    cfg.memory.ifmapSramKb = 256;
    cfg.memory.filterSramKb = 256;
    cfg.memory.ofmapSramKb = 128;
    if (dram) {
        cfg.dram.enabled = true;
        cfg.dram.tech = "DDR4_2400";
        cfg.dram.channels = 1;
        cfg.dram.readQueueSize = 32;
        cfg.dram.writeQueueSize = 32;
    } else {
        cfg.memory.bandwidthWordsPerCycle = 1e9; // v2 "free" memory
    }
    core::Simulator sim(cfg);
    return sim.run(topo);
}

} // namespace

int
main()
{
    setQuiet(true);
    std::printf("=== SecIX-B: WS vs OS with and without DRAM stalls, "
                "six ResNet-18 layers ===\n");
    const Topology topo = workloads::resnet18Prefix(6);

    const auto ws_ideal = run(topo, Dataflow::WeightStationary, false);
    const auto os_ideal = run(topo, Dataflow::OutputStationary, false);
    const auto ws_dram = run(topo, Dataflow::WeightStationary, true);
    const auto os_dram = run(topo, Dataflow::OutputStationary, true);

    benchutil::Table table({26, 16, 16});
    table.row({"metric", "ws", "os"});
    table.rule();
    table.row({"compute cycles (v2)",
               benchutil::num(ws_ideal.computeCycles),
               benchutil::num(os_ideal.computeCycles)});
    table.row({"total cycles w/ DRAM",
               benchutil::num(ws_dram.totalCycles),
               benchutil::num(os_dram.totalCycles)});
    table.row({"stall cycles w/ DRAM",
               benchutil::num(ws_dram.stallCycles),
               benchutil::num(os_dram.stallCycles)});
    table.row({"DRAM words (R+W)",
               benchutil::num(ws_dram.dramReadWords
                              + ws_dram.dramWriteWords),
               benchutil::num(os_dram.dramReadWords
                              + os_dram.dramWriteWords)});
    table.rule();

    const double compute_gain = 1.0
        - static_cast<double>(ws_ideal.computeCycles)
            / static_cast<double>(os_ideal.computeCycles);
    const double total_gain = 1.0
        - static_cast<double>(os_dram.totalCycles)
            / static_cast<double>(ws_dram.totalCycles);
    std::printf("WS compute-cycle reduction vs OS (no memory): %.1f%% "
                "(paper: 21%%)\n", 100.0 * compute_gain);
    std::printf("OS total-cycle reduction vs WS (with DRAM): %.1f%% "
                "(paper: 30.1%%)\n", 100.0 * total_gain);
    std::printf("ordering flips once DRAM stalls are modeled: %s\n",
                (ws_ideal.computeCycles < os_ideal.computeCycles
                 && os_dram.totalCycles < ws_dram.totalCycles)
                    ? "yes" : "NO");
    return 0;
}
