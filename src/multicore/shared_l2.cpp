#include "multicore/shared_l2.hpp"

#include <algorithm>
#include <cmath>

#include "common/log.hpp"

namespace scalesim::multicore
{

SharedL2::SharedL2(const SharedL2Config& cfg,
                   systolic::MainMemory& backing)
    : cfg_(cfg), backing_(backing),
      capacityLines_(cfg.capacityWords
                     / std::max<std::uint32_t>(1, cfg.lineWords))
{
    if (cfg_.lineWords == 0)
        fatal("L2 line size must be non-zero");
    if (capacityLines_ == 0)
        fatal("L2 capacity below one line");
    if (cfg_.wordsPerCycle <= 0.0)
        fatal("L2 bandwidth must be positive");
}

void
SharedL2::invalidate()
{
    lru_.clear();
    index_.clear();
}

bool
SharedL2::lookup(std::uint64_t line)
{
    auto it = index_.find(line);
    if (it != index_.end()) {
        lru_.splice(lru_.begin(), lru_, it->second);
        return true;
    }
    lru_.push_front(line);
    index_[line] = lru_.begin();
    if (lru_.size() > capacityLines_) {
        index_.erase(lru_.back());
        lru_.pop_back();
    }
    return false;
}

Cycle
SharedL2::busOccupy(Count words, Cycle now)
{
    const double start = std::max(static_cast<double>(now), busFree_);
    lastWait_ = static_cast<Cycle>(start) - now;
    busFree_ = start + static_cast<double>(words) / cfg_.wordsPerCycle;
    return static_cast<Cycle>(std::ceil(busFree_));
}

Cycle
SharedL2::issueRead(Addr addr, Count words, Cycle now)
{
    // Walk the lines the request covers; misses go to the backing
    // memory at line granularity (the L2 refill unit).
    const std::uint64_t first_line = addr / cfg_.lineWords;
    const std::uint64_t last_line = (addr + words - 1) / cfg_.lineWords;
    Cycle data_ready = now + cfg_.hitLatency;
    for (std::uint64_t line = first_line; line <= last_line; ++line) {
        ++l2Stats_.lookups;
        // Words of *this request* the line covers (so that hitWords +
        // missWords across requests sums to the words served to cores;
        // refill traffic is line-granular and counted by the backing).
        const std::uint64_t line_lo = line * cfg_.lineWords;
        const std::uint64_t overlap =
            std::min<std::uint64_t>(addr + words,
                                    line_lo + cfg_.lineWords)
            - std::max<std::uint64_t>(addr, line_lo);
        if (lookup(line)) {
            ++l2Stats_.hits;
            l2Stats_.hitWords += overlap;
        } else {
            l2Stats_.missWords += overlap;
            const Cycle fill = backing_.issueRead(
                line * cfg_.lineWords, cfg_.lineWords, now);
            data_ready = std::max(data_ready, fill + cfg_.hitLatency);
        }
    }
    const Cycle done = std::max(busOccupy(words, now),
                                data_ready);
    ++stats_.readRequests;
    stats_.readWords += words;
    stats_.totalReadLatency += done - now;
    return done;
}

Cycle
SharedL2::issueWrite(Addr addr, Count words, Cycle now)
{
    // Write-through at line granularity: the line is allocated in L2
    // (later partial-sum reloads hit) and the data drains to backing
    // memory in the background.
    const std::uint64_t first_line = addr / cfg_.lineWords;
    const std::uint64_t last_line = (addr + words - 1) / cfg_.lineWords;
    for (std::uint64_t line = first_line; line <= last_line; ++line)
        lookup(line);
    l2Stats_.writeWords += words;
    backing_.issueWrite(addr, words, now);
    const Cycle done = busOccupy(words, now);
    ++stats_.writeRequests;
    stats_.writeWords += words;
    stats_.totalWriteLatency += done - now;
    return done;
}

} // namespace scalesim::multicore
