# Empty dependencies file for ablation_conv_reuse.
# This may be replaced when dependencies are built.
