#include "multicore/arbiter.hpp"

#include "check/contract.hpp"
#include "common/log.hpp"

namespace scalesim::multicore
{

RoundRobinArbiter::RoundRobinArbiter(std::size_t ports,
                                     bool scan_reverse)
    : ports_(ports), scanReverse_(scan_reverse)
{
    if (ports_ == 0)
        fatal("arbiter needs at least one port");
}

std::size_t
RoundRobinArbiter::grant(const std::vector<Cycle>& next, Cycle none)
{
    std::size_t best = kNone;
    Cycle best_cycle = 0;
    std::size_t best_dist = 0;
    for (std::size_t s = 0; s < ports_; ++s) {
        const std::size_t i = scanReverse_ ? ports_ - 1 - s : s;
        if (next[i] == none)
            continue;
        const std::size_t dist = (i + ports_ - nextPriority_) % ports_;
        if (best == kNone || next[i] < best_cycle
            || (next[i] == best_cycle && dist < best_dist)) {
            best = i;
            best_cycle = next[i];
            best_dist = dist;
        }
    }
    if (best == kNone)
        return kNone;

    // Contenders = ports that wanted the granted cycle too.
    std::uint64_t waiting = 0;
    for (std::size_t i = 0; i < ports_; ++i) {
        if (i != best && next[i] != none && next[i] == best_cycle)
            ++waiting;
    }
    ++stats_.grants;
    stats_.arbConflicts += waiting;
    stats_.waiters.sample(static_cast<double>(waiting));
    SIM_CHECK_EQ(stats_.waiters.count, stats_.grants,
                 "exactly one contention sample per grant");

    nextPriority_ = (best + 1) % ports_;
    return best;
}

Cycle
MemoryPort::issueRead(Addr addr, Count words, Cycle now)
{
    // Delta-capture the shared model's latency components across the
    // call: the co-simulation scheduler runs one transaction at a
    // time, so the delta belongs entirely to this request. The issue
    // wait at the shared serialization point is reclassified from
    // queue wait to port wait — that is the cross-core contention the
    // CPI stack surfaces as l2Wait.
    const systolic::MemoryStats before = shared_.stats();
    const Cycle done = shared_.issueRead(addr, words, now);
    const systolic::MemoryStats after = shared_.stats();
    const Cycle wait = shared_.lastIssueWait();
    const Cycle latency = done - now;
    const Cycle queue_delta = after.readQueueWait - before.readQueueWait;
    const Cycle refresh_delta = after.readRefresh - before.readRefresh;
    const Cycle service_delta = after.readService - before.readService;
    // The issue wait is reclassified from queue wait to port wait, but
    // only the overlap actually present in the backend's queue
    // accounting: when the backend reports less queue wait than the
    // issue wait (SharedL2 reports none at all), reclassifying the
    // full `wait` would make cycles vanish from the split. Whatever
    // the backend left unattributed (L2 hit/fill/transfer time) lands
    // in readService, so the four components always sum to
    // totalReadLatency — the port-level cpi.conservation law.
    const Cycle reclass = std::min(wait, queue_delta);
    const Cycle queue_kept = queue_delta - reclass;
    const Cycle attributed =
        wait + queue_kept + refresh_delta + service_delta;
    const Cycle residual = latency > attributed ? latency - attributed
                                                : 0;
    ++portStats_.readRequests;
    portStats_.readWords += words;
    portStats_.waitCycles += wait;
    portStats_.totalReadLatency += latency;
    portStats_.readPortWait += wait;
    portStats_.readQueueWait += queue_kept;
    portStats_.readRefresh += refresh_delta;
    portStats_.readService += service_delta + residual;
    ++stats_.readRequests;
    stats_.readWords += words;
    stats_.totalReadLatency += latency;
    stats_.readPortWait += wait;
    stats_.readQueueWait += queue_kept;
    stats_.readRefresh += refresh_delta;
    stats_.readService += service_delta + residual;
    return done;
}

Cycle
MemoryPort::issueWrite(Addr addr, Count words, Cycle now)
{
    const Cycle done = shared_.issueWrite(addr, words, now);
    ++portStats_.writeRequests;
    portStats_.writeWords += words;
    portStats_.waitCycles += shared_.lastIssueWait();
    ++stats_.writeRequests;
    stats_.writeWords += words;
    stats_.totalWriteLatency += done - now;
    return done;
}

} // namespace scalesim::multicore
