#include "systolic/demand.hpp"

#include <vector>

#include "common/log.hpp"

namespace scalesim::systolic
{

namespace
{

GemmDims
effectiveGemm(const GemmDims& dense, const KGatherMap* gather)
{
    GemmDims eff = dense;
    if (gather) {
        eff.k = gather->compressedK();
        if (eff.k == 0 || eff.k > dense.k)
            fatal("sparse gather map has invalid compressed K %llu",
                  static_cast<unsigned long long>(eff.k));
    }
    return eff;
}

} // namespace

DemandGenerator::DemandGenerator(const GemmDims& gemm, Dataflow df,
                                 std::uint32_t array_rows,
                                 std::uint32_t array_cols,
                                 const OperandMap& operands,
                                 const KGatherMap* gather)
    : denseGemm_(gemm), effectiveGemm_(effectiveGemm(gemm, gather)),
      grid_(effectiveGemm_, df, array_rows, array_cols),
      operands_(operands), gather_(gather)
{
    if (gather_ && df != Dataflow::WeightStationary) {
        fatal("sparse trace simulation supports weight-stationary only "
              "(as in the paper's evaluations)");
    }
    // Operand addressing always uses the dense dimensions so gathered
    // ifmap reads land on real dense addresses.
    operands_.dims = denseGemm_;
}

void
DemandGenerator::run(DemandVisitor& visitor) const
{
    visitor.beginLayer(grid_, operands_);
    Cycle fold_start = 0;
    const Cycle fold_len = grid_.foldCycles();
    for (std::uint64_t rf = 0; rf < grid_.rowFolds(); ++rf) {
        for (std::uint64_t cf = 0; cf < grid_.colFolds(); ++cf) {
            visitor.beginFold(rf, cf, fold_start);
            switch (grid_.dataflow()) {
              case Dataflow::OutputStationary:
                runFoldOs(visitor, rf, cf, fold_start);
                break;
              case Dataflow::WeightStationary:
                runFoldWs(visitor, rf, cf, fold_start);
                break;
              case Dataflow::InputStationary:
                runFoldIs(visitor, rf, cf, fold_start);
                break;
            }
            fold_start += fold_len;
            visitor.endFold(rf, cf, fold_start);
        }
    }
    visitor.endLayer(fold_start);
}

void
DemandGenerator::runFoldOs(DemandVisitor& visitor, std::uint64_t rf,
                           std::uint64_t cf, Cycle fold_start) const
{
    const std::uint64_t tr = grid_.tileRows(rf);
    const std::uint64_t tc = grid_.tileCols(cf);
    const std::uint64_t rbase = rf * grid_.arrayRows();
    const std::uint64_t cbase = cf * grid_.arrayCols();
    const std::uint64_t t_extent = grid_.mapped().t; // == K
    const std::uint32_t rows = grid_.arrayRows();
    const Cycle fold_len = grid_.foldCycles();

    std::vector<Addr> ifmap, filter, writes;
    ifmap.reserve(tr);
    filter.reserve(tc);
    writes.reserve(std::min(tr, tc));

    for (Cycle clk = 0; clk < fold_len; ++clk) {
        ifmap.clear();
        filter.clear();
        writes.clear();
        // Skewed A stream: row r consumes A[rbase+r][clk - r].
        for (std::uint64_t r = 0; r < tr && r <= clk; ++r) {
            const std::uint64_t t = clk - r;
            if (t < t_extent)
                ifmap.push_back(operands_.ifmapAddr(rbase + r, t));
        }
        // Skewed B stream: column c consumes B[clk - c][cbase+c].
        for (std::uint64_t c = 0; c < tc && c <= clk; ++c) {
            const std::uint64_t t = clk - c;
            if (t < t_extent)
                filter.push_back(operands_.filterAddr(t, cbase + c));
        }
        // Diagonal drain after fill + stream: diagonal d = r + c leaves
        // at cycle (R + T - 1) + d.
        if (clk + 1 >= rows + t_extent) {
            const std::uint64_t d = clk - (rows + t_extent - 1);
            if (d <= tr + tc - 2) {
                const std::uint64_t r_lo = d >= tc ? d - (tc - 1) : 0;
                const std::uint64_t r_hi = std::min<std::uint64_t>(
                    tr - 1, d);
                for (std::uint64_t r = r_lo; r <= r_hi; ++r) {
                    writes.push_back(operands_.ofmapAddr(
                        rbase + r, cbase + (d - r)));
                }
            }
        }
        visitor.cycle(fold_start + clk, ifmap, filter, {}, writes);
    }
}

void
DemandGenerator::runFoldWs(DemandVisitor& visitor, std::uint64_t rf,
                           std::uint64_t cf, Cycle fold_start) const
{
    const std::uint64_t tr = grid_.tileRows(rf); // K-range (compressed)
    const std::uint64_t tc = grid_.tileCols(cf); // N-range
    const std::uint64_t kbase = rf * grid_.arrayRows();
    const std::uint64_t cbase = cf * grid_.arrayCols();
    const std::uint64_t t_extent = grid_.mapped().t; // == M
    const std::uint32_t rows = grid_.arrayRows();
    const Cycle fold_len = grid_.foldCycles();
    const bool accumulate = rf > 0;

    std::vector<Addr> ifmap, filter, oreads, writes;
    ifmap.reserve(tr);
    filter.reserve(tc);
    writes.reserve(tc);
    oreads.reserve(tc);

    for (Cycle clk = 0; clk < fold_len; ++clk) {
        ifmap.clear();
        filter.clear();
        oreads.clear();
        writes.clear();
        if (clk < rows) {
            // Weight preload, bottom row first so the tile settles as
            // values shift down the array.
            if (clk < tr) {
                const std::uint64_t k = kbase + (tr - 1 - clk);
                for (std::uint64_t c = 0; c < tc; ++c)
                    filter.push_back(operands_.filterAddr(k, cbase + c));
            }
        }
        // Skewed ifmap stream: row r consumes A[t][k(r)] at
        // clk = R + t + r; sparse runs gather the original K row.
        if (clk >= rows) {
            const Cycle s = clk - rows;
            for (std::uint64_t r = 0; r < tr && r <= s; ++r) {
                const std::uint64_t t = s - r;
                if (t < t_extent) {
                    const std::uint64_t k = gather_
                        ? gather_->origK(kbase + r) : kbase + r;
                    ifmap.push_back(operands_.ifmapAddr(t, k));
                }
            }
        }
        // Output drain: O[t][cbase+c] leaves column c at
        // clk = 2R - 1 + t + c.
        if (clk + 1 >= 2ull * rows) {
            const Cycle s = clk - (2ull * rows - 1);
            for (std::uint64_t c = 0; c < tc && c <= s; ++c) {
                const std::uint64_t t = s - c;
                if (t < t_extent) {
                    const Addr addr = operands_.ofmapAddr(t, cbase + c);
                    writes.push_back(addr);
                    if (accumulate)
                        oreads.push_back(addr);
                }
            }
        }
        visitor.cycle(fold_start + clk, ifmap, filter, oreads, writes);
    }
}

void
DemandGenerator::runFoldIs(DemandVisitor& visitor, std::uint64_t rf,
                           std::uint64_t cf, Cycle fold_start) const
{
    const std::uint64_t tr = grid_.tileRows(rf); // K-range
    const std::uint64_t tc = grid_.tileCols(cf); // M-range
    const std::uint64_t kbase = rf * grid_.arrayRows();
    const std::uint64_t mbase = cf * grid_.arrayCols();
    const std::uint64_t t_extent = grid_.mapped().t; // == N
    const std::uint32_t rows = grid_.arrayRows();
    const Cycle fold_len = grid_.foldCycles();
    const bool accumulate = rf > 0;

    std::vector<Addr> ifmap, filter, oreads, writes;
    ifmap.reserve(tc);
    filter.reserve(tr);
    writes.reserve(tc);
    oreads.reserve(tc);

    for (Cycle clk = 0; clk < fold_len; ++clk) {
        ifmap.clear();
        filter.clear();
        oreads.clear();
        writes.clear();
        if (clk < rows && clk < tr) {
            // Ifmap preload: stationary tile element (k, m) = A[m][k].
            const std::uint64_t k = kbase + (tr - 1 - clk);
            for (std::uint64_t c = 0; c < tc; ++c)
                ifmap.push_back(operands_.ifmapAddr(mbase + c, k));
        }
        if (clk >= rows) {
            // Skewed filter stream: row r consumes B[k(r)][t].
            const Cycle s = clk - rows;
            for (std::uint64_t r = 0; r < tr && r <= s; ++r) {
                const std::uint64_t t = s - r;
                if (t < t_extent)
                    filter.push_back(operands_.filterAddr(kbase + r, t));
            }
        }
        if (clk + 1 >= 2ull * rows) {
            // Output drain: O[mbase+c][t] at clk = 2R - 1 + t + c.
            const Cycle s = clk - (2ull * rows - 1);
            for (std::uint64_t c = 0; c < tc && c <= s; ++c) {
                const std::uint64_t t = s - c;
                if (t < t_extent) {
                    const Addr addr = operands_.ofmapAddr(mbase + c, t);
                    writes.push_back(addr);
                    if (accumulate)
                        oreads.push_back(addr);
                }
            }
        }
        visitor.cycle(fold_start + clk, ifmap, filter, oreads, writes);
    }
}

void
CountingVisitor::cycle(Cycle clk, std::span<const Addr> ifmap_reads,
                       std::span<const Addr> filter_reads,
                       std::span<const Addr> ofmap_reads,
                       std::span<const Addr> ofmap_writes)
{
    ifmapReads += ifmap_reads.size();
    filterReads += filter_reads.size();
    ofmapReads += ofmap_reads.size();
    ofmapWrites += ofmap_writes.size();
    lastCycle = clk;
    if (!ifmap_reads.empty() || !filter_reads.empty()
        || !ofmap_reads.empty() || !ofmap_writes.empty()) {
        ++activeCycles;
    }
}

} // namespace scalesim::systolic
