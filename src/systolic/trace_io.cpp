#include "systolic/trace_io.hpp"

#include <cstdlib>
#include <istream>
#include <ostream>

#include "common/csv.hpp"
#include "common/log.hpp"

namespace scalesim::systolic
{

SramTraceWriter::SramTraceWriter(std::ostream* ifmap_reads,
                                 std::ostream* filter_reads,
                                 std::ostream* ofmap_writes,
                                 std::ostream* ofmap_reads)
    : ifmap_(ifmap_reads), filter_(filter_reads), ofmap_(ofmap_writes),
      oread_(ofmap_reads)
{
}

void
SramTraceWriter::writeRow(std::ostream& out, Cycle clk,
                          std::span<const Addr> addrs)
{
    out << clk;
    for (Addr a : addrs)
        out << ", " << a;
    out << "\n";
}

void
SramTraceWriter::cycle(Cycle clk, std::span<const Addr> ifmap_reads,
                       std::span<const Addr> filter_reads,
                       std::span<const Addr> ofmap_reads,
                       std::span<const Addr> ofmap_writes)
{
    if (ifmap_ && !ifmap_reads.empty()) {
        writeRow(*ifmap_, clk, ifmap_reads);
        ++rows_;
    }
    if (filter_ && !filter_reads.empty()) {
        writeRow(*filter_, clk, filter_reads);
        ++rows_;
    }
    if (oread_ && !ofmap_reads.empty()) {
        writeRow(*oread_, clk, ofmap_reads);
        ++rows_;
        ++oreadRows_;
    }
    if (ofmap_ && !ofmap_writes.empty()) {
        writeRow(*ofmap_, clk, ofmap_writes);
        ++rows_;
    }
}

TracingMemory::TracingMemory(MainMemory& inner, std::uint32_t word_bytes)
    : inner_(inner), wordBytes_(word_bytes == 0 ? 1 : word_bytes)
{
}

Cycle
TracingMemory::issueRead(Addr addr, Count words, Cycle now)
{
    records_.push_back({now, addr * wordBytes_, words * wordBytes_,
                        false});
    const Cycle done = inner_.issueRead(addr, words, now);
    ++stats_.readRequests;
    stats_.readWords += words;
    stats_.totalReadLatency += done - now;
    return done;
}

Cycle
TracingMemory::issueWrite(Addr addr, Count words, Cycle now)
{
    records_.push_back({now, addr * wordBytes_, words * wordBytes_,
                        true});
    const Cycle done = inner_.issueWrite(addr, words, now);
    ++stats_.writeRequests;
    stats_.writeWords += words;
    stats_.totalWriteLatency += done - now;
    return done;
}

void
writeMemTrace(std::ostream& out,
              const std::vector<MemTraceRecord>& records)
{
    out << "# cycle, address, bytes, type\n";
    for (const auto& rec : records) {
        out << rec.cycle << ", " << rec.byteAddr << ", " << rec.bytes
            << ", " << (rec.write ? 'W' : 'R') << "\n";
    }
}

std::vector<MemTraceRecord>
readMemTrace(std::istream& in)
{
    std::vector<MemTraceRecord> records;
    std::string line;
    int line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        const std::string trimmed = trim(line);
        if (trimmed.empty() || trimmed[0] == '#')
            continue;
        const auto cells = splitCsvLine(trimmed);
        if (cells.size() < 4)
            fatal("memory trace line %d: expected 4 fields", line_no);
        MemTraceRecord rec;
        char* end = nullptr;
        rec.cycle = std::strtoull(cells[0].c_str(), &end, 0);
        if (*end != '\0')
            fatal("memory trace line %d: bad cycle '%s'", line_no,
                  cells[0].c_str());
        rec.byteAddr = std::strtoull(cells[1].c_str(), &end, 0);
        if (*end != '\0')
            fatal("memory trace line %d: bad address '%s'", line_no,
                  cells[1].c_str());
        rec.bytes = std::strtoull(cells[2].c_str(), &end, 0);
        if (*end != '\0')
            fatal("memory trace line %d: bad size '%s'", line_no,
                  cells[2].c_str());
        if (cells[3] == "W" || cells[3] == "w") {
            rec.write = true;
        } else if (cells[3] == "R" || cells[3] == "r") {
            rec.write = false;
        } else {
            fatal("memory trace line %d: bad type '%s'", line_no,
                  cells[3].c_str());
        }
        records.push_back(rec);
    }
    return records;
}

} // namespace scalesim::systolic
