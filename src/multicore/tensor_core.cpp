#include "multicore/tensor_core.hpp"

#include "common/log.hpp"

namespace scalesim::multicore
{

Cycle
simdCycles(const SimdConfig& simd, VectorOp op, std::uint64_t elements)
{
    if (simd.lanes == 0)
        fatal("SIMD unit needs at least one lane");
    if (op == VectorTail::None || elements == 0)
        return 0;
    const std::uint64_t vectors = ceilDiv(elements, simd.lanes);
    std::uint64_t passes = 1;
    if (op == VectorTail::Softmax)
        passes = simd.softmaxPasses;
    return vectors * passes * simd.latencyPerOp;
}

Cycle
tensorCoreCycles(const TensorCoreConfig& core, const GemmDims& gemm,
                 Dataflow df, VectorOp tail)
{
    const systolic::FoldGrid grid(gemm, df, core.arrayRows,
                                  core.arrayCols);
    return grid.totalCycles()
        + simdCycles(core.simd, tail, gemm.m * gemm.n);
}

} // namespace scalesim::multicore
