#include "layout/layout.hpp"

#include <algorithm>
#include <cmath>

#include "common/log.hpp"

namespace scalesim::layout
{

Layout2D
Layout2D::rowMajor(std::uint64_t rows, std::uint64_t cols,
                   std::uint64_t line_words)
{
    Layout2D l;
    l.rows = rows;
    l.cols = cols;
    l.rowStep = 1;
    l.colStep = std::max<std::uint64_t>(1, std::min(cols, line_words));
    return l;
}

Layout2D
Layout2D::colMajor(std::uint64_t rows, std::uint64_t cols,
                   std::uint64_t line_words)
{
    Layout2D l;
    l.rows = rows;
    l.cols = cols;
    l.rowStep = std::max<std::uint64_t>(1, std::min(rows, line_words));
    l.colStep = 1;
    return l;
}

Layout2D
Layout2D::tiled(std::uint64_t rows, std::uint64_t cols,
                std::uint64_t line_words)
{
    Layout2D l;
    l.rows = rows;
    l.cols = cols;
    const std::uint64_t side = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(std::sqrt(
               static_cast<double>(line_words))));
    l.rowStep = std::max<std::uint64_t>(1, std::min(rows, side));
    l.colStep = std::max<std::uint64_t>(
        1, std::min(cols, line_words / l.rowStep));
    return l;
}

OperandLayouts
OperandLayouts::forGemm(const GemmDims& gemm,
                        const LayoutModelConfig& cfg,
                        LayoutScheme scheme)
{
    const std::uint64_t line_words = std::max<std::uint32_t>(
        1, cfg.onChipBandwidth);
    auto build = [&](std::uint64_t rows, std::uint64_t cols) {
        switch (scheme) {
          case LayoutScheme::RowMajor:
            return Layout2D::rowMajor(rows, cols, line_words);
          case LayoutScheme::ColMajor:
            return Layout2D::colMajor(rows, cols, line_words);
          case LayoutScheme::Tiled:
            return Layout2D::tiled(rows, cols, line_words);
        }
        return Layout2D::rowMajor(rows, cols, line_words);
    };
    OperandLayouts layouts;
    layouts.ifmap = build(gemm.m, gemm.k);
    layouts.filter = build(gemm.k, gemm.n);
    layouts.ofmap = build(gemm.m, gemm.n);
    return layouts;
}

OperandLayouts
OperandLayouts::forOperands(const systolic::OperandMap& map,
                            const LayoutModelConfig& cfg,
                            LayoutScheme scheme)
{
    OperandLayouts layouts = forGemm(map.dims, cfg, scheme);
    if (map.conv) {
        const std::uint64_t line_words = std::max<std::uint32_t>(
            1, cfg.onChipBandwidth);
        switch (scheme) {
          case LayoutScheme::RowMajor:
            layouts.ifmap = Layout2D::rowMajor(map.ifmapRows(),
                                               map.ifmapRowWidth(),
                                               line_words);
            break;
          case LayoutScheme::ColMajor:
            layouts.ifmap = Layout2D::colMajor(map.ifmapRows(),
                                               map.ifmapRowWidth(),
                                               line_words);
            break;
          case LayoutScheme::Tiled:
            layouts.ifmap = Layout2D::tiled(map.ifmapRows(),
                                            map.ifmapRowWidth(),
                                            line_words);
            break;
        }
    }
    return layouts;
}

BankConflictEvaluator::BankConflictEvaluator(
    const LayoutModelConfig& cfg, const OperandLayouts& layouts)
    : cfg_(cfg), layouts_(layouts)
{
    if (cfg_.banks == 0 || cfg_.portsPerBank == 0)
        fatal("layout model needs non-zero banks and ports");
    bandwidthPerBank_ = std::max<std::uint64_t>(
        1, cfg_.onChipBandwidth / cfg_.banks);
}

void
BankConflictEvaluator::beginLayer(const systolic::FoldGrid& grid,
                                  const systolic::OperandMap& operands)
{
    operands_ = operands;
    idealCycles_ = grid.totalCycles();
    slowedCycles_ = 0;
    conflictCycles_ = 0;
}

std::uint64_t
BankConflictEvaluator::operandSlowdown(const Layout2D& layout,
                                       std::span<const Addr> reads,
                                       std::span<const Addr> extra,
                                       Addr base, std::uint64_t row_width)
{
    scratch_.clear();
    auto add = [&](Addr addr) {
        const std::uint64_t off = addr - base;
        const std::uint64_t r = off / row_width;
        const std::uint64_t c = off % row_width;
        const std::uint64_t line = layout.lineId(r, c);
        const std::uint64_t col = layout.colId(r, c);
        const std::uint32_t bank = static_cast<std::uint32_t>(
            (col / bandwidthPerBank_) % cfg_.banks);
        scratch_.emplace_back(bank, line);
    };
    for (Addr a : reads)
        add(a);
    for (Addr a : extra)
        add(a);
    if (scratch_.empty())
        return 0;
    std::sort(scratch_.begin(), scratch_.end());
    scratch_.erase(std::unique(scratch_.begin(), scratch_.end()),
                   scratch_.end());
    // Count distinct lines per bank; the busiest bank dominates.
    std::uint64_t worst = 0;
    std::size_t i = 0;
    while (i < scratch_.size()) {
        const std::uint32_t bank = scratch_[i].first;
        std::uint64_t lines = 0;
        while (i < scratch_.size() && scratch_[i].first == bank) {
            ++lines;
            ++i;
        }
        worst = std::max(worst, lines);
    }
    return ceilDiv(worst, cfg_.portsPerBank);
}

void
BankConflictEvaluator::cycle(Cycle /*clk*/,
                             std::span<const Addr> ifmap_reads,
                             std::span<const Addr> filter_reads,
                             std::span<const Addr> ofmap_reads,
                             std::span<const Addr> ofmap_writes)
{
    const std::uint64_t ifmap_cost = operandSlowdown(
        layouts_.ifmap, ifmap_reads, {}, operands_.ifmapBase,
        operands_.ifmapRowWidth());
    const std::uint64_t filter_cost = operandSlowdown(
        layouts_.filter, filter_reads, {}, operands_.filterBase,
        operands_.dims.n);
    const std::uint64_t ofmap_cost = operandSlowdown(
        layouts_.ofmap, ofmap_reads, ofmap_writes, operands_.ofmapBase,
        operands_.dims.n);

    // The three SRAMs are accessed in parallel; the slowest gates the
    // cycle. An idle cycle still takes one cycle.
    const std::uint64_t cost = std::max<std::uint64_t>(
        1, std::max({ifmap_cost, filter_cost, ofmap_cost}));
    slowedCycles_ += cost;
    if (cost > 1)
        ++conflictCycles_;
}

void
BankConflictEvaluator::endLayer(Cycle /*total_cycles*/)
{
}

double
BankConflictEvaluator::slowdown() const
{
    if (idealCycles_ == 0)
        return 1.0;
    return static_cast<double>(slowedCycles_)
        / static_cast<double>(idealCycles_);
}

} // namespace scalesim::layout
