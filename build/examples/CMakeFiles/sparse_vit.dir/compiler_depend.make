# Empty compiler generated dependencies file for sparse_vit.
# This may be replaced when dependencies are built.
