#include "common/topology.hpp"

#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <istream>
#include <limits>

#include "common/csv.hpp"
#include "common/log.hpp"

namespace scalesim
{

std::uint64_t
Topology::totalMacs() const
{
    std::uint64_t total = 0;
    for (const auto& layer : layers)
        total += layer.macs() * layer.repetitions;
    return total;
}

std::uint64_t
Topology::totalWeightWords() const
{
    std::uint64_t total = 0;
    for (const auto& layer : layers) {
        GemmDims g = layer.toGemm();
        total += g.k * g.n * layer.repetitions;
    }
    return total;
}

std::pair<std::uint32_t, std::uint32_t>
parseSparsityRatio(const std::string& text)
{
    if (text.empty() || text == "dense" || text == "-")
        return {0, 0};
    auto colon = text.find(':');
    if (colon == std::string::npos)
        fatal("malformed sparsity ratio '%s' (expected N:M)",
              text.c_str());
    char* end = nullptr;
    errno = 0;
    long n = std::strtol(text.c_str(), &end, 10);
    if (end != text.c_str() + colon)
        fatal("malformed sparsity ratio '%s'", text.c_str());
    long m = std::strtol(text.c_str() + colon + 1, &end, 10);
    if (*end != '\0' || errno == ERANGE || n < 0 || m <= 0 || n > m)
        fatal("malformed sparsity ratio '%s'", text.c_str());
    if (n > std::numeric_limits<std::uint32_t>::max()
        || m > std::numeric_limits<std::uint32_t>::max()) {
        fatal("sparsity ratio '%s' out of range", text.c_str());
    }
    return {static_cast<std::uint32_t>(n), static_cast<std::uint32_t>(m)};
}

namespace
{

std::uint64_t
parseDim(const std::string& cell, const char* what,
         const std::string& layer)
{
    if (cell.empty())
        fatal("layer %s: missing %s", layer.c_str(), what);
    char* end = nullptr;
    errno = 0;
    long long v = std::strtoll(cell.c_str(), &end, 10);
    if (end == cell.c_str() || *end != '\0' || v < 0)
        fatal("layer %s: bad %s value '%s'", layer.c_str(), what,
              cell.c_str());
    if (errno == ERANGE)
        fatal("layer %s: %s value '%s' overflows", layer.c_str(), what,
              cell.c_str());
    return static_cast<std::uint64_t>(v);
}

} // namespace

Topology
Topology::parseCsv(std::istream& in, std::string name)
{
    Topology topo;
    topo.name = std::move(name);
    CsvTable table = CsvTable::parse(in);

    const bool gemm_format = table.findColumn("M") >= 0
        && table.findColumn("N") >= 0 && table.findColumn("K") >= 0;
    const bool conv_format = table.findColumn("IFMAP Height") >= 0;
    if (!gemm_format && !conv_format)
        fatal("topology %s: unrecognized header", topo.name.c_str());

    for (std::size_t i = 0; i < table.numRows(); ++i) {
        std::string layer_name = table.cell(i, "Layer name");
        if (layer_name.empty())
            layer_name = table.cell(i, "Layer");
        if (layer_name.empty())
            layer_name = format("layer%zu", i);

        LayerSpec spec;
        if (gemm_format) {
            spec = LayerSpec::gemm(
                layer_name,
                parseDim(table.cell(i, "M"), "M", layer_name),
                parseDim(table.cell(i, "N"), "N", layer_name),
                parseDim(table.cell(i, "K"), "K", layer_name));
        } else {
            spec = LayerSpec::conv(
                layer_name,
                parseDim(table.cell(i, "IFMAP Height"), "ifmap height",
                         layer_name),
                parseDim(table.cell(i, "IFMAP Width"), "ifmap width",
                         layer_name),
                parseDim(table.cell(i, "Filter Height"), "filter height",
                         layer_name),
                parseDim(table.cell(i, "Filter Width"), "filter width",
                         layer_name),
                parseDim(table.cell(i, "Channels"), "channels",
                         layer_name),
                parseDim(table.cell(i, "Num Filter"), "num filter",
                         layer_name),
                parseDim(table.cell(i, "Strides"), "strides",
                         layer_name));
        }
        auto ratio = parseSparsityRatio(table.cell(i, "SparsitySupport"));
        spec.sparseN = ratio.first;
        spec.sparseM = ratio.second;
        const std::string tail = table.cell(i, "VectorTail");
        if (!tail.empty())
            spec.tail = vectorTailFromString(tail);
        topo.layers.push_back(std::move(spec));
    }
    if (topo.layers.empty())
        fatal("topology %s: no layers", topo.name.c_str());
    return topo;
}

Topology
Topology::load(const std::string& path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open topology file: %s", path.c_str());
    // Use the basename (without extension) as the topology name.
    std::string name = path;
    auto slash = name.find_last_of('/');
    if (slash != std::string::npos)
        name = name.substr(slash + 1);
    auto dot = name.find_last_of('.');
    if (dot != std::string::npos)
        name = name.substr(0, dot);
    return parseCsv(in, name);
}

} // namespace scalesim
