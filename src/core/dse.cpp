#include "core/dse.hpp"

#include <algorithm>
#include <limits>
#include <ostream>

#include "common/csv.hpp"
#include "common/log.hpp"
#include "common/parallel.hpp"

namespace scalesim::core
{

SramSplit
splitSramKb(std::uint64_t totalKb)
{
    SramSplit split;
    split.filterKb = totalKb / 4;
    split.ofmapKb = totalKb / 4;
    // Remainder to the ifmap partition: the split must conserve the
    // labeled total (totalKb % 4 != 0 would otherwise sweep a smaller
    // memory than the point claims).
    split.ifmapKb = totalKb - split.filterKb - split.ofmapKb;
    return split;
}

std::vector<DseDetailedPoint>
runSweepDetailed(const DseSweep& sweep, const Topology& topology)
{
    if (sweep.arraySizes.empty() || sweep.dataflows.empty()
        || sweep.sramKbTotals.empty()) {
        fatal("DSE sweep has an empty axis");
    }
    // Flatten the axes into an index space so candidates can run on
    // any thread while results land at their sequential-order slot.
    struct Candidate
    {
        std::uint32_t array;
        Dataflow dataflow;
        std::uint64_t sramKb;
    };
    std::vector<Candidate> candidates;
    candidates.reserve(sweep.arraySizes.size() * sweep.dataflows.size()
                       * sweep.sramKbTotals.size());
    for (std::uint32_t array : sweep.arraySizes)
        for (Dataflow df : sweep.dataflows)
            for (std::uint64_t sram_kb : sweep.sramKbTotals)
                candidates.push_back({array, df, sram_kb});

    std::vector<DseDetailedPoint> points(candidates.size());
    parallelFor(candidates.size(), sweep.jobs, [&](std::uint64_t i) {
        const Candidate& cand = candidates[i];
        SimConfig cfg = sweep.base;
        cfg.arrayRows = cfg.arrayCols = cand.array;
        cfg.dataflow = cand.dataflow;
        cfg.energy.enabled = true;
        const SramSplit split = splitSramKb(cand.sramKb);
        cfg.memory.ifmapSramKb = split.ifmapKb;
        cfg.memory.filterSramKb = split.filterKb;
        cfg.memory.ofmapSramKb = split.ofmapKb;
        // Worker-private Simulator/DramMemory: per-layer timeline_
        // coupling behaves exactly as in the sequential run.
        Simulator sim(cfg);
        RunResult run = sim.run(topology);
        DsePoint point;
        point.array = cand.array;
        point.dataflow = cand.dataflow;
        point.sramKb = cand.sramKb;
        point.cycles = run.totalCycles;
        point.energyMj = run.totalEnergy.totalMj();
        point.edp = run.edp;
        // The worker's registry moves into the candidate's index slot:
        // no shared state, and identical output for every jobs value.
        points[i].point = point;
        points[i].stats = std::move(run.stats);
        points[i].intervals = std::move(run.intervals);
    });
    return points;
}

std::vector<DsePoint>
runSweep(const DseSweep& sweep, const Topology& topology)
{
    std::vector<DseDetailedPoint> detailed =
        runSweepDetailed(sweep, topology);
    std::vector<DsePoint> points;
    points.reserve(detailed.size());
    for (const auto& d : detailed)
        points.push_back(d.point);
    return points;
}

obs::StatsRegistry
mergeSweepStats(const std::vector<DseDetailedPoint>& points)
{
    obs::StatsRegistry merged;
    merged.addScalar("sweep.points", "design points evaluated",
                     static_cast<double>(points.size()));
    for (const auto& p : points)
        merged.merge(p.stats);
    return merged;
}

namespace
{

template <typename Key>
DsePoint
bestBy(const std::vector<DsePoint>& points, Key key)
{
    if (points.empty())
        fatal("no DSE points to rank");
    return *std::min_element(points.begin(), points.end(),
                             [&](const DsePoint& a, const DsePoint& b) {
                                 return key(a) < key(b);
                             });
}

} // namespace

DsePoint
bestByLatency(const std::vector<DsePoint>& points)
{
    return bestBy(points, [](const DsePoint& p) {
        return static_cast<double>(p.cycles);
    });
}

DsePoint
bestByEnergy(const std::vector<DsePoint>& points)
{
    return bestBy(points, [](const DsePoint& p) { return p.energyMj; });
}

DsePoint
bestByEdp(const std::vector<DsePoint>& points)
{
    return bestBy(points, [](const DsePoint& p) { return p.edp; });
}

std::vector<DsePoint>
paretoFrontier(std::vector<DsePoint> points)
{
    // Sort by cycles, then sweep keeping strictly improving energy.
    std::sort(points.begin(), points.end(),
              [](const DsePoint& a, const DsePoint& b) {
                  if (a.cycles != b.cycles)
                      return a.cycles < b.cycles;
                  return a.energyMj < b.energyMj;
              });
    std::vector<DsePoint> frontier;
    double best_energy = std::numeric_limits<double>::max();
    for (const auto& point : points) {
        if (point.energyMj < best_energy) {
            frontier.push_back(point);
            best_energy = point.energyMj;
        }
    }
    return frontier;
}

void
writeDseReport(std::ostream& out, const std::vector<DsePoint>& points)
{
    const auto frontier = paretoFrontier(points);
    auto on_frontier = [&](const DsePoint& p) {
        for (const auto& f : frontier) {
            if (f.array == p.array && f.dataflow == p.dataflow
                && f.sramKb == p.sramKb) {
                return true;
            }
        }
        return false;
    };
    CsvWriter csv(out);
    csv.writeRow({"Array", "Dataflow", "SramKB", "Cycles", "Energy_mJ",
                  "EdP", "Pareto"});
    for (const auto& p : points) {
        csv.writeRow({std::to_string(p.array), toString(p.dataflow),
                      std::to_string(p.sramKb),
                      std::to_string(p.cycles),
                      format("%.4f", p.energyMj),
                      format("%.4g", p.edp),
                      on_frontier(p) ? "yes" : "no"});
    }
}

} // namespace scalesim::core
