#include "dram/timing.hpp"

#include <algorithm>
#include <cctype>

#include "common/log.hpp"

namespace scalesim::dram
{

namespace
{

std::string
canonical(std::string_view name)
{
    std::string out;
    for (char c : name) {
        if (c == '-' || c == '_' || c == ' ')
            continue;
        out.push_back(static_cast<char>(
            std::toupper(static_cast<unsigned char>(c))));
    }
    return out;
}

DramTiming
ddr3_1600()
{
    DramTiming t;
    t.name = "DDR3_1600";
    t.clockMhz = 800.0;
    t.burstBytes = 64;
    t.tBurst = 4;
    t.tRCD = 11; t.tRP = 11; t.tCL = 11; t.tCWL = 8;
    t.tRAS = 28; t.tRC = 39; t.tRRD = 5; t.tFAW = 24;
    t.tWR = 12; t.tRTP = 6; t.tCCD = 4; t.tWTR = 6;
    t.banksPerRank = 8;
    t.rowBytes = 8192;
    t.tREFI = 6240; t.tRFC = 128;
    return t;
}

DramTiming
ddr4_2400()
{
    DramTiming t;
    t.name = "DDR4_2400";
    t.clockMhz = 1200.0;
    t.burstBytes = 64;
    t.tBurst = 4;
    t.tRCD = 16; t.tRP = 16; t.tCL = 16; t.tCWL = 12;
    t.tRAS = 39; t.tRC = 55; t.tRRD = 6; t.tFAW = 26;
    t.tWR = 18; t.tRTP = 9; t.tCCD = 6; t.tWTR = 9;
    t.banksPerRank = 16;
    t.rowBytes = 8192;
    t.tREFI = 9360; t.tRFC = 420;
    return t;
}

DramTiming
ddr4_3200()
{
    DramTiming t;
    t.name = "DDR4_3200";
    t.clockMhz = 1600.0;
    t.burstBytes = 64;
    t.tBurst = 4;
    t.tRCD = 22; t.tRP = 22; t.tCL = 22; t.tCWL = 16;
    t.tRAS = 52; t.tRC = 74; t.tRRD = 8; t.tFAW = 34;
    t.tWR = 24; t.tRTP = 12; t.tCCD = 8; t.tWTR = 12;
    t.banksPerRank = 16;
    t.rowBytes = 8192;
    t.tREFI = 12480; t.tRFC = 560;
    return t;
}

DramTiming
lpddr4_3200()
{
    DramTiming t;
    t.name = "LPDDR4_3200";
    t.clockMhz = 1600.0;
    t.burstBytes = 64; // BL16 on a x32 channel
    t.tBurst = 8;
    t.tRCD = 29; t.tRP = 29; t.tCL = 28; t.tCWL = 14;
    t.tRAS = 67; t.tRC = 96; t.tRRD = 16; t.tFAW = 64;
    t.tWR = 29; t.tRTP = 12; t.tCCD = 8; t.tWTR = 16;
    t.banksPerRank = 8;
    t.rowBytes = 4096;
    t.tREFI = 6240; t.tRFC = 448;
    return t;
}

DramTiming
gddr5_6000()
{
    DramTiming t;
    t.name = "GDDR5_6000";
    t.clockMhz = 1500.0;
    t.burstBytes = 64; // BL8 on a x32 channel... 2 channels ganged
    t.tBurst = 2;
    t.tRCD = 18; t.tRP = 18; t.tCL = 18; t.tCWL = 6;
    t.tRAS = 42; t.tRC = 60; t.tRRD = 9; t.tFAW = 34;
    t.tWR = 18; t.tRTP = 3; t.tCCD = 3; t.tWTR = 8;
    t.banksPerRank = 16;
    t.rowBytes = 8192;
    t.tREFI = 2850; t.tRFC = 165;
    return t;
}

DramTiming
hbm2()
{
    DramTiming t;
    t.name = "HBM2";
    t.clockMhz = 1000.0;
    t.burstBytes = 64; // BL4 on a 128-bit pseudo-channel
    t.tBurst = 2;
    t.tRCD = 14; t.tRP = 14; t.tCL = 14; t.tCWL = 4;
    t.tRAS = 34; t.tRC = 48; t.tRRD = 4; t.tFAW = 16;
    t.tWR = 16; t.tRTP = 4; t.tCCD = 2; t.tWTR = 8;
    t.banksPerRank = 16;
    t.rowBytes = 2048;
    t.tREFI = 3900; t.tRFC = 260;
    return t;
}

} // namespace

DramTiming
timingPreset(std::string_view name)
{
    const std::string c = canonical(name);
    if (c == "DDR31600" || c == "DDR3")
        return ddr3_1600();
    if (c == "DDR42400" || c == "DDR4")
        return ddr4_2400();
    if (c == "DDR43200")
        return ddr4_3200();
    if (c == "LPDDR43200" || c == "LPDDR4")
        return lpddr4_3200();
    if (c == "GDDR56000" || c == "GDDR5")
        return gddr5_6000();
    if (c == "HBM2" || c == "HBM")
        return hbm2();
    fatal("unknown DRAM timing preset '%.*s'",
          static_cast<int>(name.size()), name.data());
}

std::vector<std::string>
timingPresetNames()
{
    return {"DDR3_1600", "DDR4_2400", "DDR4_3200", "LPDDR4_3200",
            "GDDR5_6000", "HBM2"};
}

} // namespace scalesim::dram
