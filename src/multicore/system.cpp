#include "multicore/system.hpp"

#include <algorithm>
#include <numeric>

#include "common/log.hpp"

namespace scalesim::multicore
{

MultiCoreConfig
MultiCoreConfig::homogeneous(const TensorCoreConfig& core,
                             std::uint64_t pr, std::uint64_t pc,
                             PartitionScheme scheme)
{
    MultiCoreConfig cfg;
    cfg.pr = pr;
    cfg.pc = pc;
    cfg.scheme = scheme;
    cfg.cores.assign(pr * pc, core);
    return cfg;
}

MultiCoreSimulator::MultiCoreSimulator(const MultiCoreConfig& cfg)
    : cfg_(cfg)
{
    if (cfg_.pr == 0 || cfg_.pc == 0)
        fatal("multi-core grid must be non-zero");
    if (cfg_.cores.size() != cfg_.pr * cfg_.pc)
        fatal("expected %llu core configs, got %zu",
              static_cast<unsigned long long>(cfg_.pr * cfg_.pc),
              cfg_.cores.size());
    // A wrong-sized hop profile used to wrap silently via modulo,
    // mis-assigning NoP latencies; reject it up front instead.
    if (!cfg_.nop.hops.empty()
        && cfg_.nop.hops.size() != cfg_.pr * cfg_.pc)
        fatal("NoP hop profile has %zu entries for a %llu-core grid "
              "(must be empty or pr*pc)",
              cfg_.nop.hops.size(),
              static_cast<unsigned long long>(cfg_.pr * cfg_.pc));
}

namespace
{

/** Balanced integer split of `total` into `parts` shares. */
std::vector<std::uint64_t>
balancedSplit(std::uint64_t total, std::uint64_t parts)
{
    std::vector<std::uint64_t> shares(parts, total / parts);
    std::uint64_t rem = total % parts;
    for (std::uint64_t i = 0; i < rem; ++i)
        ++shares[i];
    return shares;
}

} // namespace

Cycle
MultiCoreSimulator::coreTime(std::uint64_t core_index,
                             std::uint64_t sr_part,
                             std::uint64_t sc_part,
                             std::uint64_t t_part,
                             std::uint64_t tail_elements,
                             VectorOp tail, CoreResult* detail) const
{
    const TensorCoreConfig& core = cfg_.cores[core_index];
    if (sr_part == 0 || sc_part == 0 || t_part == 0) {
        if (detail)
            *detail = {};
        return 0;
    }
    const std::uint64_t rows = core.arrayRows;
    const std::uint64_t cols = core.arrayCols;
    const Cycle fold_cycles = 2 * rows + cols + t_part - 2;
    const std::uint64_t folds = ceilDiv(sr_part, rows)
        * ceilDiv(sc_part, cols);
    const Cycle compute = fold_cycles * folds;
    const Cycle simd = simdCycles(core.simd, tail, tail_elements);

    // NoP: fixed hop latency plus streaming the core's partitions over
    // its hop path (§III-D).
    const std::uint32_t hops = cfg_.nop.hopsFor(core_index);
    const std::uint64_t partition_words = sr_part * t_part
        + sc_part * t_part + sr_part * sc_part;
    const Cycle nop = static_cast<Cycle>(hops) * cfg_.nop.latencyPerHop
        + static_cast<Cycle>(static_cast<double>(partition_words) * hops
                             / cfg_.nop.wordsPerCycle);
    if (detail) {
        detail->computeCycles = compute;
        detail->simdCycles = simd;
        detail->nopCycles = nop;
        detail->rowShare = sr_part;
        detail->colShare = sc_part;
    }
    return compute + simd + nop;
}

MultiCoreResult
MultiCoreSimulator::runGemm(const GemmDims& gemm, Dataflow df,
                            VectorOp tail) const
{
    const MappedDims mapped = systolic::mapGemmConventional(gemm, df);

    // Which mapped dimension each grid axis splits (§III-A).
    std::uint64_t pr_dim = mapped.sr;
    std::uint64_t pc_dim = mapped.sc;
    switch (cfg_.scheme) {
      case PartitionScheme::Spatial:
        break;
      case PartitionScheme::SpatioTemporal1:
        pc_dim = mapped.t;
        break;
      case PartitionScheme::SpatioTemporal2:
        pr_dim = mapped.t;
        pc_dim = mapped.sc;
        break;
    }

    std::vector<std::uint64_t> pr_shares = balancedSplit(pr_dim,
                                                         cfg_.pr);
    const std::vector<std::uint64_t> pc_shares = balancedSplit(pc_dim,
                                                               cfg_.pc);
    const std::uint64_t tail_elements = ceilDiv(gemm.m * gemm.n,
                                                cfg_.pr * cfg_.pc);

    auto assemble = [&](const std::vector<std::uint64_t>& row_shares,
                        std::vector<CoreResult>* out) {
        Cycle makespan = 0;
        for (std::uint64_t i = 0; i < cfg_.pr; ++i) {
            for (std::uint64_t j = 0; j < cfg_.pc; ++j) {
                std::uint64_t sr_part = mapped.sr;
                std::uint64_t sc_part = mapped.sc;
                std::uint64_t t_part = mapped.t;
                switch (cfg_.scheme) {
                  case PartitionScheme::Spatial:
                    sr_part = row_shares[i];
                    sc_part = pc_shares[j];
                    break;
                  case PartitionScheme::SpatioTemporal1:
                    sr_part = row_shares[i];
                    t_part = pc_shares[j];
                    break;
                  case PartitionScheme::SpatioTemporal2:
                    t_part = row_shares[i];
                    sc_part = pc_shares[j];
                    break;
                }
                const std::uint64_t idx = i * cfg_.pc + j;
                CoreResult detail;
                const Cycle t = coreTime(idx, sr_part, sc_part, t_part,
                                         tail_elements, tail, &detail);
                makespan = std::max(makespan, t);
                if (out)
                    (*out)[idx] = detail;
            }
        }
        return makespan;
    };

    if (cfg_.nonUniform && cfg_.pr > 1) {
        // Greedy rebalance: shift one array-height of work from the
        // slowest row group to the fastest while the makespan improves.
        const std::uint64_t grain = std::max<std::uint64_t>(
            1, cfg_.cores.front().arrayRows);
        Cycle best = assemble(pr_shares, nullptr);
        for (int iter = 0; iter < 256; ++iter) {
            // Row-group times under the current shares.
            std::vector<CoreResult> scratch(cfg_.cores.size());
            assemble(pr_shares, &scratch);
            std::uint64_t slow = 0;
            std::uint64_t fast = 0;
            Cycle slow_t = 0;
            Cycle fast_t = ~static_cast<Cycle>(0);
            for (std::uint64_t i = 0; i < cfg_.pr; ++i) {
                Cycle group = 0;
                for (std::uint64_t j = 0; j < cfg_.pc; ++j)
                    group = std::max(group,
                                     scratch[i * cfg_.pc + j].total());
                if (group > slow_t) {
                    slow_t = group;
                    slow = i;
                }
                if (group < fast_t) {
                    fast_t = group;
                    fast = i;
                }
            }
            if (slow == fast || pr_shares[slow] <= grain)
                break;
            auto trial = pr_shares;
            const std::uint64_t moved = std::min(grain,
                                                 trial[slow] - 1);
            trial[slow] -= moved;
            trial[fast] += moved;
            const Cycle t = assemble(trial, nullptr);
            if (t >= best)
                break;
            best = t;
            pr_shares = std::move(trial);
        }
    }

    MultiCoreResult result;
    result.perCore.resize(cfg_.cores.size());
    result.makespan = assemble(pr_shares, &result.perCore);

    double sum = 0.0;
    for (const auto& core : result.perCore)
        sum += static_cast<double>(core.total());
    const double mean = sum / static_cast<double>(result.perCore.size());
    result.imbalance = mean > 0.0
        ? static_cast<double>(result.makespan) / mean : 1.0;

    // Footprints via the uniform partition formulas (§III-B).
    const PartitionEval eval = evaluatePartition(
        gemm, df, cfg_.cores.front().arrayRows,
        cfg_.cores.front().arrayCols, cfg_.pr, cfg_.pc, cfg_.scheme);
    result.l1FootprintWords = eval.footprintWords;
    result.l2FootprintWords = eval.l2FootprintWords;
    return result;
}

MultiCoreResult
MultiCoreSimulator::runLayer(const LayerSpec& layer, Dataflow df,
                             VectorOp tail) const
{
    return runGemm(layer.toGemm(), df, tail);
}

void
MultiCoreResult::registerStats(obs::StatsRegistry& reg,
                               const std::string& prefix) const
{
    reg.addScalar(prefix + ".layers", "layers accumulated", 1.0);
    reg.addScalar(prefix + ".makespanCycles",
                  "summed slowest-core latency",
                  static_cast<double>(makespan));
    reg.addScalar(prefix + ".cores", "tensor cores in the grid",
                  static_cast<double>(perCore.size()));
    reg.addScalar(prefix + ".l1FootprintWords",
                  "per-core private footprint (words)",
                  static_cast<double>(l1FootprintWords));
    reg.addScalar(prefix + ".l2FootprintWords",
                  "shared-L2 deduplicated footprint (words)",
                  static_cast<double>(l2FootprintWords));
    reg.addScalar(prefix + ".dedupSavedWords",
                  "words saved by the shared L2",
                  static_cast<double>(dedupSavedWords()));
    // Summed over registered layers; divide by .layers for the mean.
    reg.addScalar(prefix + ".imbalance",
                  "summed makespan / mean-core-time ratio", imbalance);
    const std::string compute = prefix + ".core.computeCycles";
    const std::string simd = prefix + ".core.simdCycles";
    const std::string nop = prefix + ".core.nopCycles";
    for (std::size_t c = 0; c < perCore.size(); ++c) {
        const std::string elem = format("core%zu", c);
        reg.addVectorElem(compute, elem, "per-core compute cycles",
                          static_cast<double>(perCore[c].computeCycles));
        reg.addVectorElem(simd, elem, "per-core vector-tail cycles",
                          static_cast<double>(perCore[c].simdCycles));
        reg.addVectorElem(nop, elem, "per-core NoP transfer cycles",
                          static_cast<double>(perCore[c].nopCycles));
    }
}

} // namespace scalesim::multicore
