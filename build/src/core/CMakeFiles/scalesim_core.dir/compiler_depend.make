# Empty compiler generated dependencies file for scalesim_core.
# This may be replaced when dependencies are built.
