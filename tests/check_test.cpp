/**
 * @file
 * Tests of the correctness-tooling layer: per-law fault-injection on
 * the invariant auditor (corrupt exactly one counter, assert exactly
 * the targeted law trips), the audited end-to-end runs (golden
 * workloads must come back clean), and the SIM_CHECK contract macros.
 */

#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "check/audit.hpp"
#include "check/contract.hpp"
#include "common/workloads.hpp"
#include "core/simulator.hpp"
#include "energy/action_counts.hpp"
#include "systolic/demand.hpp"

using namespace scalesim;
using namespace scalesim::check;
using namespace scalesim::core;

namespace
{

/** All violations must name `law`; returns the count. */
std::size_t
violationsOf(const AuditReport& report, const std::string& law)
{
    std::size_t n = 0;
    for (const auto& v : report.violations()) {
        EXPECT_EQ(v.law, law) << v.scope << ": " << v.message;
        if (v.law == law)
            ++n;
    }
    return n;
}

systolic::OperandMap
gemmOperands(const GemmDims& gemm)
{
    systolic::OperandMap operands;
    operands.dims = gemm;
    return operands;
}

/** Per-layer action counts of a real trace pass over `gemm`. */
energy::ActionCounts
traceActionCounts(const GemmDims& gemm, Dataflow df,
                  std::uint32_t rows, std::uint32_t cols)
{
    systolic::DemandGenerator generator(gemm, df, rows, cols,
                                        gemmOperands(gemm));
    energy::ActionCountVisitor visitor{EnergyConfig{}};
    generator.run(visitor);
    return visitor.counts();
}

} // namespace

TEST(AuditReport, LawTableIsStableAndUnique)
{
    const auto& laws = InvariantAuditor::laws();
    EXPECT_EQ(laws.size(), 12u);
    std::set<std::string> names;
    for (const auto& law : laws) {
        EXPECT_FALSE(law.description.empty()) << law.name;
        names.insert(law.name);
    }
    EXPECT_EQ(names.size(), laws.size());
    EXPECT_TRUE(names.count("spad.stallAccounting"));
    EXPECT_TRUE(names.count("foldCache.replayFidelity"));
    EXPECT_TRUE(names.count("run.totalsAccounting"));
    EXPECT_TRUE(names.count("cpi.conservation"));
}

TEST(AuditReport, RegisterStatsIsSchemaStable)
{
    AuditReport report;
    report.recordCheck("spad.stallAccounting");
    report.recordViolation("spad.stallAccounting", "conv1", "broken");
    obs::StatsRegistry reg;
    report.registerStats(reg);
    std::ostringstream out;
    reg.dump(out);
    const std::string text = out.str();
    EXPECT_NE(text.find("sim.audit.checks"), std::string::npos);
    EXPECT_NE(text.find("sim.audit.violations"), std::string::npos);
    // Every law appears in the vectors even when never checked.
    EXPECT_NE(text.find("mc.arbConservation"), std::string::npos);
}

TEST(Auditor, StallAccountingFaultInjection)
{
    systolic::LayerTiming timing;
    timing.computeCycles = 100;
    timing.stallCycles = 20;
    timing.totalCycles = 120;
    timing.prefetchStallCycles = 12;
    timing.drainStallCycles = 5;
    timing.bandwidthStallCycles = 3;

    InvariantAuditor clean;
    clean.auditStallAccounting(timing, "l0");
    EXPECT_TRUE(clean.report().clean());
    EXPECT_EQ(clean.report().checksForLaw("spad.stallAccounting"), 2u);

    timing.prefetchStallCycles = 13; // corrupt one bucket
    InvariantAuditor faulty;
    faulty.auditStallAccounting(timing, "l0");
    EXPECT_EQ(violationsOf(faulty.report(), "spad.stallAccounting"),
              1u);
    EXPECT_EQ(faulty.report().violations()[0].scope, "l0");
}

TEST(Auditor, RuntimeEnvelopeFaultInjection)
{
    const GemmDims gemm{12, 9, 7};
    const systolic::FoldGrid grid(gemm, Dataflow::WeightStationary, 4,
                                  4);
    systolic::LayerTiming timing;
    timing.computeCycles = grid.totalCycles();
    timing.totalCycles = timing.computeCycles + 5;
    timing.stallCycles = 5;
    timing.folds = grid.numFolds();

    InvariantAuditor clean;
    clean.auditRuntimeEnvelope(timing, grid, 1.0, "l0");
    EXPECT_TRUE(clean.report().clean());

    timing.computeCycles += 1; // drift off the analytical envelope
    InvariantAuditor faulty;
    faulty.auditRuntimeEnvelope(timing, grid, 1.0, "l0");
    EXPECT_EQ(violationsOf(faulty.report(), "runtime.envelope"), 1u);
}

TEST(Auditor, FoldCacheConservationFaultInjection)
{
    systolic::FoldCacheStats stats;
    stats.foldsTotal = 10;
    stats.foldsReplayed = 4;
    stats.foldsLive = 6;
    stats.addrsReplayed = 128;

    InvariantAuditor clean;
    clean.auditFoldCacheConservation(stats, "run");
    EXPECT_TRUE(clean.report().clean());

    stats.foldsLive = 5; // lose a fold
    InvariantAuditor faulty;
    faulty.auditFoldCacheConservation(stats, "run");
    EXPECT_EQ(violationsOf(faulty.report(), "foldCache.conservation"),
              1u);

    stats.foldsLive = 6;
    stats.foldsReplayed = 4;
    stats.foldsTotal = 10;
    stats.addrsReplayed = 0; // replayed folds but no replayed addrs
    InvariantAuditor faulty2;
    faulty2.auditFoldCacheConservation(stats, "run");
    EXPECT_EQ(violationsOf(faulty2.report(), "foldCache.conservation"),
              1u);
}

TEST(Auditor, FoldReplayFidelityCleanAcrossDataflows)
{
    const GemmDims gemm{33, 17, 21};
    for (Dataflow df : {Dataflow::OutputStationary,
                        Dataflow::WeightStationary,
                        Dataflow::InputStationary}) {
        InvariantAuditor auditor;
        auditor.auditFoldReplayFidelity(gemm, df, 8, 8,
                                        gemmOperands(gemm), "l0");
        EXPECT_TRUE(auditor.report().clean());
        EXPECT_EQ(auditor.report().checksForLaw(
                      "foldCache.replayFidelity"),
                  2u);
    }
}

TEST(Auditor, FoldReplayFidelitySkipsOversizedLayers)
{
    const GemmDims gemm{64, 64, 64};
    InvariantAuditor auditor;
    auditor.setReplayCheckMaxCycles(1);
    auditor.auditFoldReplayFidelity(gemm, Dataflow::WeightStationary,
                                    8, 8, gemmOperands(gemm), "l0");
    EXPECT_EQ(auditor.report().checks(), 0u);
}

TEST(Auditor, DramBankConservationFaultInjection)
{
    dram::DramTiming timing;
    dram::DramStats ch;
    ch.reads = 6;
    ch.writes = 2;
    ch.rowHits = 5;
    ch.rowMisses = 2;
    ch.rowConflicts = 1;
    ch.readBytes = 6ull * timing.burstBytes;
    ch.writeBytes = 2ull * timing.burstBytes;
    ch.lastCompletion = 500; // well inside the first tREFI interval
    std::vector<dram::BankStats> banks(2);
    banks[0] = {3, 1, 1};
    banks[1] = {2, 1, 0};

    InvariantAuditor clean;
    clean.auditDramChannel(ch, banks, timing, 1, "ch0");
    EXPECT_TRUE(clean.report().clean());

    banks[1].rowHits = 3; // a bank invents an outcome
    InvariantAuditor faulty;
    faulty.auditDramChannel(ch, banks, timing, 1, "ch0");
    EXPECT_EQ(violationsOf(faulty.report(), "dram.bankConservation"),
              1u);

    banks[1].rowHits = 2;
    ch.readBytes += 1; // bytes no longer requests * burstBytes
    InvariantAuditor faulty2;
    faulty2.auditDramChannel(ch, banks, timing, 1, "ch0");
    EXPECT_EQ(violationsOf(faulty2.report(), "dram.bankConservation"),
              1u);
}

TEST(Auditor, DramRefreshBoundFaultInjection)
{
    dram::DramTiming timing;
    dram::DramStats idle; // no requests at all
    idle.refreshes = 3;
    InvariantAuditor faulty;
    faulty.auditDramChannel(idle, {}, timing, 1, "ch0");
    EXPECT_EQ(violationsOf(faulty.report(), "dram.refreshBound"), 1u);

    // Busy channel claiming far more refreshes than the tREFI cadence
    // of its active window allows.
    dram::DramStats ch;
    ch.reads = 1;
    ch.rowMisses = 1;
    ch.readBytes = timing.burstBytes;
    ch.lastCompletion = 100;
    ch.refreshes = 50;
    std::vector<dram::BankStats> banks(1);
    banks[0] = {0, 1, 0};
    InvariantAuditor faulty2;
    faulty2.auditDramChannel(ch, banks, timing, 1, "ch0");
    EXPECT_EQ(violationsOf(faulty2.report(), "dram.refreshBound"), 1u);
}

TEST(Auditor, DramTotalsFaultInjection)
{
    dram::DramStats ch0;
    ch0.reads = 4;
    ch0.rowHits = 4;
    dram::DramStats ch1;
    ch1.writes = 3;
    ch1.rowMisses = 3;
    dram::DramStats total;
    total.reads = 4;
    total.writes = 3;
    total.rowHits = 4;
    total.rowMisses = 3;

    InvariantAuditor clean;
    clean.auditDramTotals(total, {ch0, ch1}, "dram");
    EXPECT_TRUE(clean.report().clean());

    total.writes = 2; // system total loses a write
    InvariantAuditor faulty;
    faulty.auditDramTotals(total, {ch0, ch1}, "dram");
    EXPECT_EQ(violationsOf(faulty.report(), "dram.bankConservation"),
              1u);
}

TEST(Auditor, EnergyActionAccountingFaultInjection)
{
    const GemmDims gemm{12, 9, 7};
    const systolic::FoldGrid grid(gemm, Dataflow::WeightStationary, 4,
                                  4);
    energy::ActionCounts counts =
        traceActionCounts(gemm, Dataflow::WeightStationary, 4, 4);

    InvariantAuditor clean;
    clean.auditEnergyActions(counts, grid, true, "l0");
    EXPECT_TRUE(clean.report().clean());
    EXPECT_EQ(clean.report().checksForLaw("energy.demandAgreement"),
              4u);

    counts.macGated += 1; // MAC classes no longer partition PE-cycles
    InvariantAuditor faulty;
    faulty.auditEnergyActions(counts, grid, true, "l0");
    EXPECT_EQ(violationsOf(faulty.report(), "energy.actionAccounting"),
              1u);
}

TEST(Auditor, EnergyDemandAgreementFaultInjection)
{
    const GemmDims gemm{12, 9, 7};
    const systolic::FoldGrid grid(gemm, Dataflow::WeightStationary, 4,
                                  4);
    energy::ActionCounts counts =
        traceActionCounts(gemm, Dataflow::WeightStationary, 4, 4);

    // Invent one ifmap read while keeping the port-cycle partition and
    // the NoC word count balanced, so only the closed-form agreement
    // law can notice.
    counts.ifmapSram.readRandom += 1;
    counts.ifmapSram.idle -= 1;
    counts.nocWords += 1;
    InvariantAuditor faulty;
    faulty.auditEnergyActions(counts, grid, true, "l0");
    EXPECT_EQ(violationsOf(faulty.report(), "energy.demandAgreement"),
              1u);

    // The same corruption goes unreported when agreement checking is
    // off (sparse layers, where compression changes edge traffic).
    InvariantAuditor lenient;
    lenient.auditEnergyActions(counts, grid, false, "l0");
    EXPECT_TRUE(lenient.report().clean());
}

TEST(Auditor, MemoryTrafficFaultInjection)
{
    systolic::LayerTiming spad;
    spad.dramReadWords = 1000;
    spad.dramWriteWords = 400;
    spad.dramReadRequests = 20;
    spad.dramWriteRequests = 8;
    systolic::MemoryStats mem;
    mem.readWords = 1000;
    mem.writeWords = 400;
    mem.readRequests = 20;
    mem.writeRequests = 8;

    InvariantAuditor clean;
    clean.auditMemoryTraffic(spad, mem, "run");
    EXPECT_TRUE(clean.report().clean());

    mem.writeWords = 399; // memory model drops a word
    InvariantAuditor faulty;
    faulty.auditMemoryTraffic(spad, mem, "run");
    EXPECT_EQ(violationsOf(faulty.report(), "mem.trafficConservation"),
              1u);
}

TEST(Auditor, ArbiterConservationFaultInjection)
{
    multicore::MultiCoreTraceResult result;
    result.ports.resize(2);
    result.ports[0].readRequests = 5;
    result.ports[0].writeRequests = 1;
    result.ports[1].readRequests = 3;
    result.ports[1].writeRequests = 1;
    result.arb.grants = 10;
    for (int i = 0; i < 10; ++i)
        result.arb.waiters.sample(0.0);
    result.l1FillWords = 640;
    result.l2.hitWords = 500;
    result.l2.missWords = 140;

    InvariantAuditor clean;
    clean.auditArbiter(result, true, "mc.l0");
    EXPECT_TRUE(clean.report().clean());

    result.ports[1].writeRequests = 2; // port admits an extra txn
    InvariantAuditor faulty;
    faulty.auditArbiter(result, true, "mc.l0");
    EXPECT_EQ(violationsOf(faulty.report(), "mc.arbConservation"), 1u);

    result.ports[1].writeRequests = 1;
    result.l2.missWords = 139; // L2 word leak
    InvariantAuditor faulty2;
    faulty2.auditArbiter(result, true, "mc.l0");
    EXPECT_EQ(violationsOf(faulty2.report(), "mc.arbConservation"),
              1u);
}

TEST(Auditor, RunTotalsFaultInjection)
{
    InvariantAuditor clean;
    clean.auditRunTotals(100, 80, 20, 5000, 1000, 100, 80, 20, 5000,
                         1000, "run");
    EXPECT_TRUE(clean.report().clean());

    InvariantAuditor faulty;
    faulty.auditRunTotals(101, 80, 20, 5000, 1000, 100, 80, 20, 5000,
                          1000, "run");
    EXPECT_EQ(violationsOf(faulty.report(), "run.totalsAccounting"),
              1u);
}

TEST(AuditReport, MergeAndClear)
{
    AuditReport a;
    a.recordCheck("spad.stallAccounting");
    AuditReport b;
    b.recordCheck("spad.stallAccounting");
    b.recordViolation("runtime.envelope", "l1", "off by one");
    a.merge(b);
    EXPECT_EQ(a.checks(), 2u);
    EXPECT_EQ(a.checksForLaw("spad.stallAccounting"), 2u);
    EXPECT_EQ(a.violations().size(), 1u);
    EXPECT_FALSE(a.clean());
    a.clear();
    EXPECT_TRUE(a.clean());
    EXPECT_EQ(a.checks(), 0u);
}

TEST(AuditedRun, TraceRunOnGoldenWorkloadIsClean)
{
    SimConfig cfg;
    cfg.arrayRows = 16;
    cfg.arrayCols = 16;
    cfg.dataflow = Dataflow::WeightStationary;
    cfg.mode = SimMode::Trace;
    cfg.audit = true;
    cfg.energy.enabled = true;
    Simulator sim(cfg);
    ASSERT_NE(sim.auditor(), nullptr);
    const RunResult run = sim.run(workloads::resnet18Prefix(4));
    ASSERT_TRUE(run.audited);
    EXPECT_TRUE(run.audit.clean())
        << [&] {
               std::ostringstream out;
               run.audit.writeReport(out);
               return out.str();
           }();
    EXPECT_GT(run.audit.checks(), 0u);
    // Per-layer laws must have fired for every layer.
    EXPECT_GE(run.audit.checksForLaw("spad.stallAccounting"),
              run.layers.size());
    EXPECT_GE(run.audit.checksForLaw("energy.actionAccounting"),
              run.layers.size());
    EXPECT_GT(run.audit.checksForLaw("run.totalsAccounting"), 0u);

    std::ostringstream stats;
    run.writeStats(stats);
    EXPECT_NE(stats.str().find("sim.audit.checks"), std::string::npos);
    std::ostringstream json;
    run.writeJson(json);
    EXPECT_NE(json.str().find("\"audit\""), std::string::npos);
}

TEST(AuditedRun, DramAndSparseRunIsClean)
{
    SimConfig cfg;
    cfg.arrayRows = 8;
    cfg.arrayCols = 8;
    cfg.dataflow = Dataflow::OutputStationary;
    cfg.mode = SimMode::Trace;
    cfg.audit = true;
    cfg.dram.enabled = true;
    cfg.sparsity.enabled = true;
    Simulator sim(cfg);
    Topology topo;
    topo.name = "mixed";
    topo.layers.push_back(LayerSpec::gemm("dense", 24, 24, 24));
    auto sparse_layer = LayerSpec::gemm("sparse", 24, 24, 24);
    sparse_layer.sparseN = 2;
    sparse_layer.sparseM = 4;
    topo.layers.push_back(sparse_layer);
    topo.layers.back().repetitions = 3;
    const RunResult run = sim.run(topo);
    ASSERT_TRUE(run.audited);
    EXPECT_TRUE(run.audit.clean())
        << [&] {
               std::ostringstream out;
               run.audit.writeReport(out);
               return out.str();
           }();
    EXPECT_GT(run.audit.checksForLaw("dram.bankConservation"), 0u);
    EXPECT_GT(run.audit.checksForLaw("mem.trafficConservation"), 0u);
}

TEST(AuditedRun, AnalyticalModeIsClean)
{
    SimConfig cfg;
    cfg.arrayRows = 16;
    cfg.arrayCols = 16;
    cfg.mode = SimMode::Analytical;
    cfg.audit = true;
    cfg.energy.enabled = true;
    Simulator sim(cfg);
    const RunResult run = sim.run(workloads::resnet18Prefix(4));
    ASSERT_TRUE(run.audited);
    EXPECT_TRUE(run.audit.clean())
        << [&] {
               std::ostringstream out;
               run.audit.writeReport(out);
               return out.str();
           }();
}

TEST(AuditedRun, UnauditedRunStaysUnaudited)
{
    SimConfig cfg;
    cfg.arrayRows = 8;
    cfg.arrayCols = 8;
    cfg.mode = SimMode::Trace;
    Simulator sim(cfg);
    EXPECT_EQ(sim.auditor(), nullptr);
    Topology topo;
    topo.name = "tiny";
    topo.layers.push_back(LayerSpec::gemm("g", 8, 8, 8));
    const RunResult run = sim.run(topo);
    EXPECT_FALSE(run.audited);
    EXPECT_EQ(run.audit.checks(), 0u);
}

#if SIM_CHECKS_ENABLED
TEST(Contract, PassingChecksAreSilent)
{
    SIM_CHECK(1 + 1 == 2);
    SIM_CHECK_EQ(4, 4, "fours agree");
    SIM_CHECK_NE(1, 2);
    SIM_CHECK_LE(1, 1);
    SIM_CHECK_LT(1, 2);
}

TEST(ContractDeathTest, FailingCheckAborts)
{
    EXPECT_DEATH(SIM_CHECK(false, "injected failure"),
                 "SIM_CHECK");
    EXPECT_DEATH(SIM_CHECK_EQ(2, 3, "injected mismatch"),
                 "SIM_CHECK_EQ");
}
#else
TEST(Contract, DisabledChecksCompileToNothing)
{
    // The operand expressions must not be evaluated at all when
    // checks are compiled out (zero cost in Release).
    int evaluations = 0;
    SIM_CHECK(++evaluations > 0);
    SIM_CHECK_EQ(++evaluations, 1);
    EXPECT_EQ(evaluations, 0);
}
#endif
