#include "multicore/nop.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace scalesim::multicore
{

MeshNop::MeshNop(std::uint64_t pr, std::uint64_t pc,
                 std::uint64_t mc_row, std::uint64_t mc_col)
    : pr_(pr), pc_(pc), mcRow_(mc_row), mcCol_(mc_col)
{
    if (pr_ == 0 || pc_ == 0)
        fatal("mesh NoP needs a non-empty grid");
    if (mcRow_ >= pr_ || mcCol_ >= pc_)
        fatal("memory-controller position outside the mesh");
}

MeshNop
MeshNop::cornerAttached(std::uint64_t pr, std::uint64_t pc)
{
    return MeshNop(pr, pc, 0, 0);
}

MeshNop
MeshNop::edgeCenterAttached(std::uint64_t pr, std::uint64_t pc)
{
    return MeshNop(pr, pc, 0, pc / 2);
}

std::uint32_t
MeshNop::hops(std::uint64_t i, std::uint64_t j) const
{
    const std::uint64_t dr = i > mcRow_ ? i - mcRow_ : mcRow_ - i;
    const std::uint64_t dc = j > mcCol_ ? j - mcCol_ : mcCol_ - j;
    return static_cast<std::uint32_t>(dr + dc + 1);
}

std::vector<std::uint32_t>
MeshNop::hopVector() const
{
    std::vector<std::uint32_t> out;
    out.reserve(pr_ * pc_);
    for (std::uint64_t i = 0; i < pr_; ++i)
        for (std::uint64_t j = 0; j < pc_; ++j)
            out.push_back(hops(i, j));
    return out;
}

std::uint32_t
MeshNop::maxHops() const
{
    const auto v = hopVector();
    return *std::max_element(v.begin(), v.end());
}

NopConfig
MeshNop::toNopConfig(Cycle latency_per_hop,
                     double words_per_cycle) const
{
    NopConfig cfg;
    cfg.latencyPerHop = latency_per_hop;
    cfg.wordsPerCycle = words_per_cycle;
    cfg.hops = hopVector();
    return cfg;
}

} // namespace scalesim::multicore
