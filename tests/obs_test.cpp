/**
 * @file
 * Tests for the observability substrate: the stats registry (scalar /
 * vector / distribution / formula semantics, merging, deterministic
 * dumps), the streaming JSON writer, the Chrome-trace builder, and the
 * determinism contract of detailed DSE sweeps (parallel stats dumps
 * byte-identical to sequential ones).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

#include "common/workloads.hpp"
#include "core/dse.hpp"
#include "obs/json.hpp"
#include "obs/stats.hpp"
#include "obs/trace.hpp"

#include "json_check.hpp"

using namespace scalesim;

TEST(Histogram, BucketsByPowerOfTwo)
{
    obs::Histogram h;
    h.sample(0.0);
    h.sample(1.0);
    h.sample(2.0);
    h.sample(3.0);
    h.sample(1000.0);
    EXPECT_EQ(h.count, 5u);
    EXPECT_EQ(h.buckets[0], 1u); // zero
    EXPECT_EQ(h.buckets[1], 1u); // [1, 2)
    EXPECT_EQ(h.buckets[2], 2u); // [2, 4)
    EXPECT_DOUBLE_EQ(h.minSample, 0.0);
    EXPECT_DOUBLE_EQ(h.maxSample, 1000.0);
    EXPECT_DOUBLE_EQ(h.mean(), 1006.0 / 5.0);
}

TEST(Histogram, MergeAddsCountsAndMoments)
{
    obs::Histogram a, b;
    a.sample(1.0);
    a.sample(2.0);
    b.sample(8.0);
    a.merge(b);
    EXPECT_EQ(a.count, 3u);
    EXPECT_DOUBLE_EQ(a.sum, 11.0);
    EXPECT_DOUBLE_EQ(a.maxSample, 8.0);
    EXPECT_DOUBLE_EQ(a.minSample, 1.0);
}

TEST(Histogram, EmptyHasNoNan)
{
    obs::Histogram h;
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_DOUBLE_EQ(h.stdev(), 0.0);
}

TEST(StatsRegistry, ScalarsAccumulate)
{
    obs::StatsRegistry reg;
    reg.addScalar("a.x", "x", 2.0);
    reg.addScalar("a.x", "x", 3.0);
    EXPECT_DOUBLE_EQ(reg.scalarValue("a.x"), 5.0);
    EXPECT_DOUBLE_EQ(reg.scalarValue("absent"), 0.0);
}

TEST(StatsRegistry, VectorElementsAccumulateAndTotal)
{
    obs::StatsRegistry reg;
    reg.addVectorElem("v", "e0", "v", 1.0);
    reg.addVectorElem("v", "e1", "v", 2.0);
    reg.addVectorElem("v", "e0", "v", 10.0);
    EXPECT_DOUBLE_EQ(reg.evaluate("v"), 13.0); // vector total
}

TEST(StatsRegistry, FormulaEvaluatesAgainstRegistry)
{
    obs::StatsRegistry reg;
    reg.addScalar("hits", "h", 30.0);
    reg.addScalar("misses", "m", 10.0);
    obs::FormulaSpec rate;
    rate.numerator = {{"hits", 1.0}};
    rate.denominator = {{"hits", 1.0}, {"misses", 1.0}};
    reg.addFormula("hitRate", "hits / accesses", rate);
    EXPECT_DOUBLE_EQ(reg.evaluate("hitRate"), 0.75);
}

TEST(StatsRegistry, FormulaZeroDenominatorIsZeroNotNan)
{
    obs::StatsRegistry reg;
    reg.addScalar("num", "n", 5.0);
    obs::FormulaSpec f;
    f.numerator = {{"num", 1.0}};
    f.denominator = {{"absent", 1.0}};
    reg.addFormula("ratio", "r", f);
    const double v = reg.evaluate("ratio");
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(StatsRegistry, MergeAddsAndDumpIsDeterministic)
{
    obs::StatsRegistry a, b;
    a.addScalar("s", "s", 1.0);
    a.addVectorElem("v", "e", "v", 2.0);
    obs::Histogram h;
    h.sample(4.0);
    a.addDistribution("d", "d", h);

    b.addScalar("s", "s", 9.0);
    b.addVectorElem("v", "e", "v", 3.0);
    b.addDistribution("d", "d", h);

    obs::StatsRegistry ab = a;
    ab.merge(b);
    obs::StatsRegistry ba = b;
    ba.merge(a);
    EXPECT_DOUBLE_EQ(ab.scalarValue("s"), 10.0);

    std::ostringstream out_ab, out_ba;
    ab.dump(out_ab);
    ba.dump(out_ba);
    EXPECT_EQ(out_ab.str(), out_ba.str());
    EXPECT_NE(out_ab.str().find("Begin Simulation Statistics"),
              std::string::npos);
}

TEST(StatsRegistry, DumpJsonParses)
{
    obs::StatsRegistry reg;
    reg.addScalar("sim.cycles", "cycles", 42.0);
    reg.addVectorElem("spad.stallBreakdown", "drain", "stalls", 7.0);
    obs::Histogram h;
    h.sample(3.0);
    reg.addDistribution("dram.queueOccupancy", "occupancy", h);
    obs::FormulaSpec f;
    f.numerator = {{"sim.cycles", 1.0}};
    reg.addFormula("sim.rate", "rate", f);

    std::ostringstream out;
    reg.dumpJson(out);
    jsoncheck::Value doc;
    ASSERT_TRUE(jsoncheck::valid(out.str(), doc));
    ASSERT_EQ(doc.kind, jsoncheck::Value::Kind::Object);
    const jsoncheck::Value* cycles = doc.find("sim.cycles");
    ASSERT_NE(cycles, nullptr);
    const jsoncheck::Value* value = cycles->find("value");
    ASSERT_NE(value, nullptr);
    EXPECT_DOUBLE_EQ(value->number, 42.0);
}

TEST(JsonWriter, ProducesValidNestedDocument)
{
    std::ostringstream out;
    obs::JsonWriter json(out);
    json.beginObject();
    json.field("name", "run \"x\" \n tab\t");
    json.field("count", static_cast<std::uint64_t>(7));
    json.key("list").beginArray();
    json.value(1.5);
    json.value(true);
    json.null();
    json.endArray();
    json.key("nested").beginObject();
    json.field("deep", -3);
    json.endObject();
    json.endObject();

    jsoncheck::Value doc;
    ASSERT_TRUE(jsoncheck::valid(out.str(), doc));
    EXPECT_EQ(doc.find("count")->number, 7.0);
    EXPECT_EQ(doc.find("list")->items.size(), 3u);
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull)
{
    std::ostringstream out;
    obs::JsonWriter json(out);
    json.beginObject();
    json.field("a", std::numeric_limits<double>::quiet_NaN());
    json.field("b", std::numeric_limits<double>::infinity());
    json.endObject();
    const std::string text = out.str();
    EXPECT_EQ(text.find("nan"), std::string::npos);
    EXPECT_EQ(text.find("inf"), std::string::npos);
    jsoncheck::Value doc;
    ASSERT_TRUE(jsoncheck::valid(text, doc));
    EXPECT_EQ(doc.find("a")->kind, jsoncheck::Value::Kind::Null);
    EXPECT_EQ(doc.find("b")->kind, jsoncheck::Value::Kind::Null);
}

TEST(TraceBuilder, EmitsValidChromeTraceJson)
{
    obs::TraceBuilder trace;
    trace.setProcessName(0, "accelerator");
    trace.setThreadName(0, 0, "layers");
    trace.addSpan(0, 0, "conv1", "layer", 0, 100,
                  {{"utilization", 0.5}});
    trace.addCounter(0, "power_W", 0, "power", 1.25);
    trace.addMetadata("workload", "tiny");

    std::ostringstream out;
    trace.write(out);
    jsoncheck::Value doc;
    ASSERT_TRUE(jsoncheck::valid(out.str(), doc));
    const jsoncheck::Value* events = doc.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_EQ(events->kind, jsoncheck::Value::Kind::Array);
    // 2 metadata + 1 span + 1 counter.
    EXPECT_EQ(events->items.size(), 4u);
    bool saw_span = false, saw_counter = false;
    for (const auto& ev : events->items) {
        const jsoncheck::Value* ph = ev.find("ph");
        ASSERT_NE(ph, nullptr);
        saw_span = saw_span || ph->text == "X";
        saw_counter = saw_counter || ph->text == "C";
    }
    EXPECT_TRUE(saw_span);
    EXPECT_TRUE(saw_counter);
}

namespace
{

Topology
tinyTopology()
{
    Topology topo;
    topo.name = "tiny";
    topo.layers.push_back(LayerSpec::conv("conv", 14, 14, 3, 3, 8, 16,
                                          1));
    topo.layers.push_back(LayerSpec::gemm("fc", 4, 32, 64));
    return topo;
}

core::DseSweep
smallSweep(unsigned jobs)
{
    core::DseSweep sweep;
    sweep.arraySizes = {8, 16};
    sweep.dataflows = {Dataflow::OutputStationary,
                       Dataflow::WeightStationary};
    sweep.sramKbTotals = {256};
    sweep.base.mode = SimMode::Analytical;
    sweep.jobs = jobs;
    return sweep;
}

} // namespace

TEST(DseDetailed, ParallelStatsDumpsMatchSequential)
{
    const Topology topo = tinyTopology();
    const auto seq = core::runSweepDetailed(smallSweep(1), topo);
    const auto par = core::runSweepDetailed(smallSweep(4), topo);
    ASSERT_EQ(seq.size(), par.size());

    // Per-point dumps are byte-identical regardless of jobs.
    for (std::size_t i = 0; i < seq.size(); ++i) {
        std::ostringstream s, p;
        seq[i].stats.dump(s);
        par[i].stats.dump(p);
        EXPECT_EQ(s.str(), p.str()) << "point " << i;
        EXPECT_FALSE(seq[i].stats.empty());
    }

    // And so is the index-order merged aggregate.
    std::ostringstream s, p;
    core::mergeSweepStats(seq).dump(s);
    core::mergeSweepStats(par).dump(p);
    EXPECT_EQ(s.str(), p.str());
}

TEST(DseDetailed, RunSweepMatchesDetailedPoints)
{
    const Topology topo = tinyTopology();
    const auto points = core::runSweep(smallSweep(1), topo);
    const auto detailed = core::runSweepDetailed(smallSweep(1), topo);
    ASSERT_EQ(points.size(), detailed.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
        EXPECT_EQ(points[i].cycles, detailed[i].point.cycles);
        EXPECT_DOUBLE_EQ(points[i].energyMj,
                         detailed[i].point.energyMj);
    }
}
