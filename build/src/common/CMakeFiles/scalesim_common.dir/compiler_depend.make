# Empty compiler generated dependencies file for scalesim_common.
# This may be replaced when dependencies are built.
