#include "obs/interval.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <ostream>
#include <set>

#include "common/csv.hpp"
#include "common/log.hpp"
#include "obs/json.hpp"
#include "obs/stats.hpp"
#include "obs/trace.hpp"

namespace scalesim::obs
{

namespace
{

/** Match the stats.txt value formatting (gem5 integral style). */
std::string
fmtValue(double value)
{
    if (std::floor(value) == value && std::abs(value) < 1e15)
        return format("%.0f", value);
    return format("%.6f", value);
}

} // namespace

void
IntervalSeries::append(const IntervalSeries& other)
{
    if (interval == 0)
        interval = other.interval;
    rows.insert(rows.end(), other.rows.begin(), other.rows.end());
}

void
IntervalSeries::writeStatsText(std::ostream& out) const
{
    for (const auto& row : rows) {
        out << format("---------- Begin Interval Statistics "
                      "(cycle %llu) ----------\n",
                      static_cast<unsigned long long>(row.cycle));
        for (const auto& [name, delta] : row.deltas) {
            out << format("%-44s %18s  # delta over interval\n",
                          name.c_str(), fmtValue(delta).c_str());
        }
        out << "---------- End Interval Statistics   ----------\n";
    }
}

void
IntervalSeries::writeCsv(std::ostream& out) const
{
    // The schema can widen over a run (vector elements appear on first
    // touch), so the header is the sorted union across all rows.
    std::set<std::string> names;
    for (const auto& row : rows)
        for (const auto& [name, delta] : row.deltas)
            names.insert(name);

    CsvWriter csv(out);
    std::vector<std::string> header;
    header.reserve(names.size() + 1);
    header.emplace_back("cycle");
    header.insert(header.end(), names.begin(), names.end());
    csv.writeRow(header);

    for (const auto& row : rows) {
        std::map<std::string_view, double> present;
        for (const auto& [name, delta] : row.deltas)
            present.emplace(name, delta);
        std::vector<std::string> cells;
        cells.reserve(header.size());
        cells.push_back(std::to_string(row.cycle));
        for (const auto& name : names) {
            const auto it = present.find(name);
            cells.push_back(
                fmtValue(it == present.end() ? 0.0 : it->second));
        }
        csv.writeRow(cells);
    }
}

void
IntervalSeries::writeJson(std::ostream& out) const
{
    JsonWriter json(out);
    json.beginObject();
    json.field("interval", interval);
    json.key("rows").beginArray();
    for (const auto& row : rows) {
        json.beginObject();
        json.field("cycle", row.cycle);
        json.key("stats").beginObject();
        for (const auto& [name, delta] : row.deltas)
            json.field(name, delta);
        json.endObject();
        json.endObject();
    }
    json.endArray();
    json.endObject();
    out << '\n';
}

void
IntervalSeries::toCounterTracks(TraceBuilder& trace, std::uint32_t pid,
                                std::string_view prefix,
                                std::string_view track) const
{
    for (const auto& row : rows) {
        for (const auto& [name, delta] : row.deltas) {
            if (name.size() < prefix.size()
                || std::string_view(name).substr(0, prefix.size())
                       != prefix) {
                continue;
            }
            // Strip the shared prefix so the track legend stays short.
            std::string_view series(name);
            series.remove_prefix(prefix.size());
            while (!series.empty()
                   && (series.front() == '.' || series.front() == ':'))
                series.remove_prefix(1);
            trace.addCounter(pid, track, row.cycle,
                             series.empty() ? std::string_view(name)
                                            : series,
                             delta);
        }
    }
}

IntervalSampler::IntervalSampler(std::uint64_t interval)
    : interval_(interval), nextBoundary_(interval)
{
    series_.interval = interval;
}

void
IntervalSampler::emitRow(std::uint64_t cycle, const StatsRegistry& reg)
{
    auto flat = reg.flatten();
    IntervalRow row;
    row.cycle = cycle;
    row.deltas.reserve(flat.size());
    // Two-pointer walk over name-sorted snapshots: stats only ever
    // appear (the registry is append-only), never vanish.
    std::size_t j = 0;
    for (const auto& [name, value] : flat) {
        double prev = 0.0;
        while (j < last_.size() && last_[j].first < name)
            ++j;
        if (j < last_.size() && last_[j].first == name)
            prev = last_[j].second;
        row.deltas.emplace_back(name, value - prev);
    }
    last_ = std::move(flat);
    lastCycle_ = cycle;
    series_.rows.push_back(std::move(row));
}

void
IntervalSampler::sample(std::uint64_t now, const StatsRegistry& reg)
{
    if (!enabled() || now < nextBoundary_)
        return;
    emitRow(now, reg);
    nextBoundary_ = (now / interval_ + 1) * interval_;
}

void
IntervalSampler::finish(std::uint64_t now, const StatsRegistry& reg)
{
    if (!enabled())
        return;
    // A tail shorter than one interval still holds real work; close it
    // out so the series' column sums equal the run totals.
    if (now > lastCycle_ || series_.rows.empty())
        emitRow(now, reg);
}

} // namespace scalesim::obs
