file(REMOVE_RECURSE
  "CMakeFiles/fig08_block_size.dir/fig08_block_size.cpp.o"
  "CMakeFiles/fig08_block_size.dir/fig08_block_size.cpp.o.d"
  "fig08_block_size"
  "fig08_block_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_block_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
