#include "sparse/formats.hpp"

#include "common/log.hpp"

namespace scalesim::sparse
{

std::uint32_t
indexBits(std::uint64_t x)
{
    std::uint32_t bits = 1;
    while ((1ull << bits) < x)
        ++bits;
    return bits;
}

StorageReport
storageFor(SparseRep rep, const SparsityPattern& pattern,
           std::uint64_t n_cols, std::uint32_t word_bits)
{
    if (n_cols == 0)
        fatal("storageFor: filter needs at least one column");
    StorageReport report;
    report.rep = rep;
    report.originalBits = pattern.denseK() * n_cols * word_bits;

    const std::uint64_t nnz = pattern.nnzElements(n_cols);
    switch (rep) {
      case SparseRep::Dense:
        report.valueBits = report.originalBits;
        report.metadataBits = 0;
        break;
      case SparseRep::EllpackBlock: {
        // Fig. 6: per-nonzero value plus a log2(BlockSize)-bit
        // intra-block index.
        const std::uint32_t meta = pattern.blockSize() > 1
            ? indexBits(pattern.blockSize()) : 1;
        report.valueBits = nnz * word_bits;
        report.metadataBits = nnz * meta;
        break;
      }
      case SparseRep::Csr: {
        const std::uint32_t col_bits = indexBits(n_cols);
        const std::uint32_t ptr_bits = indexBits(nnz + 1);
        report.valueBits = nnz * word_bits;
        report.metadataBits = nnz * col_bits
            + (pattern.denseK() + 1) * ptr_bits;
        break;
      }
      case SparseRep::Csc: {
        const std::uint32_t row_bits = indexBits(pattern.denseK());
        const std::uint32_t ptr_bits = indexBits(nnz + 1);
        report.valueBits = nnz * word_bits;
        report.metadataBits = nnz * row_bits + (n_cols + 1) * ptr_bits;
        break;
      }
    }
    return report;
}

} // namespace scalesim::sparse
