/**
 * @file
 * Small CSV reader/writer used by the topology front-end and the report
 * writers. Handles comments (#), blank lines, and whitespace trimming;
 * quoting is not needed for SCALE-Sim style files.
 */

#ifndef SCALESIM_COMMON_CSV_HH
#define SCALESIM_COMMON_CSV_HH

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace scalesim
{

/** Trim ASCII whitespace from both ends. */
std::string trim(std::string_view text);

/** Split one CSV line into trimmed cells; trailing empty cell dropped. */
std::vector<std::string> splitCsvLine(std::string_view line);

/**
 * Parsed CSV table: a header row plus data rows. Rows shorter than the
 * header are padded with empty cells.
 */
class CsvTable
{
  public:
    /** Parse from an input stream. First non-comment row is the header. */
    static CsvTable parse(std::istream& in);

    /** Parse a file on disk; fatal() if unreadable. */
    static CsvTable load(const std::string& path);

    const std::vector<std::string>& header() const { return header_; }
    std::size_t numRows() const { return rows_.size(); }
    const std::vector<std::string>& row(std::size_t i) const
    {
        return rows_[i];
    }

    /**
     * Column index whose header matches `name` case-insensitively and
     * ignoring spaces/underscores, or -1 when absent ("IFMAP Height"
     * matches "ifmap_height").
     */
    int findColumn(std::string_view name) const;

    /** Cell accessor by row index and column name; "" when missing. */
    std::string cell(std::size_t row, std::string_view column) const;

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/**
 * Incremental CSV writer for the report files (COMPUTE_REPORT.csv etc.).
 */
class CsvWriter
{
  public:
    explicit CsvWriter(std::ostream& out) : out_(out) {}

    /** Write one row from string cells. */
    void writeRow(const std::vector<std::string>& cells);

  private:
    std::ostream& out_;
};

} // namespace scalesim

#endif // SCALESIM_COMMON_CSV_HH
