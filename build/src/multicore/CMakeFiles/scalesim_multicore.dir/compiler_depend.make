# Empty compiler generated dependencies file for scalesim_multicore.
# This may be replaced when dependencies are built.
