file(REMOVE_RECURSE
  "libscalesim_common.a"
)
