/**
 * @file
 * Thin test-side adapter over obs::JsonValue / obs::parseJson (the
 * in-tree JSON reader that trace_report also uses), preserving the
 * historical `jsoncheck::` spelling of the observability tests. The
 * actual parser lives in src/obs/json_read.* so tests and tools
 * exercise the same code.
 */

#ifndef SCALESIM_TESTS_JSON_CHECK_HH
#define SCALESIM_TESTS_JSON_CHECK_HH

#include <string>

#include "obs/json_read.hpp"

namespace jsoncheck
{

using Value = scalesim::obs::JsonValue;

/** Convenience: parse text, returning success. */
inline bool
valid(const std::string& text, Value& out)
{
    return scalesim::obs::parseJson(text, out);
}

} // namespace jsoncheck

#endif // SCALESIM_TESTS_JSON_CHECK_HH
