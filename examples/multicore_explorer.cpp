/**
 * @file
 * Multi-core exploration: partition a large GEMM across a 4x4 grid of
 * tensor cores under the three partitioning schemes (§III-A), show the
 * shared-L2 deduplication savings (§III-B), add heterogeneous cores
 * with SIMD tails (§III-C), and demonstrate non-uniform NoP-aware
 * workload partitioning (§III-D).
 */

#include <cstdio>

#include "common/log.hpp"
#include "multicore/system.hpp"
#include "multicore/trace_sim.hpp"

using namespace scalesim;
using namespace scalesim::multicore;

int
main()
{
    setQuiet(true);
    const GemmDims gemm{4096, 4096, 1024};
    std::printf("GEMM %llux%llux%llu on 16 cores of 32x32\n\n",
                static_cast<unsigned long long>(gemm.m), static_cast<unsigned long long>(gemm.n),
                static_cast<unsigned long long>(gemm.k));

    // 1. Partitioning schemes and the (Pr, Pc) search.
    std::printf("%-20s %6s %14s %12s %12s\n", "scheme", "PrxPc",
                "cycles", "L1 MB", "L2 MB");
    for (auto scheme : {PartitionScheme::Spatial,
                        PartitionScheme::SpatioTemporal1,
                        PartitionScheme::SpatioTemporal2}) {
        const auto best = bestByCycles(enumeratePartitions(
            gemm, Dataflow::OutputStationary, 32, 32, 16, scheme));
        std::printf("%-20s %2llux%-3llu %14llu %12.1f %12.1f\n",
                    toString(scheme).c_str(),
                    static_cast<unsigned long long>(best.pr),
                    static_cast<unsigned long long>(best.pc),
                    static_cast<unsigned long long>(best.cycles),
                    best.footprintWords / 1048576.0,
                    best.l2FootprintWords / 1048576.0);
    }

    // 2. Homogeneous grid with a softmax vector tail.
    TensorCoreConfig core;
    core.arrayRows = core.arrayCols = 32;
    core.simd.lanes = 32;
    MultiCoreSimulator homogeneous(
        MultiCoreConfig::homogeneous(core, 4, 4));
    const auto homo = homogeneous.runGemm(
        gemm, Dataflow::OutputStationary, VectorOp::Softmax);
    std::printf("\nhomogeneous 4x4 + softmax tail: makespan %llu, "
                "imbalance %.3f, L2 saves %.1f MB\n",
                static_cast<unsigned long long>(homo.makespan), homo.imbalance,
                homo.dedupSavedWords() / 1048576.0);

    // 3. Heterogeneous cores: one row of 64x64, three rows of 32x32.
    MultiCoreConfig hetero = MultiCoreConfig::homogeneous(core, 4, 4);
    for (int j = 0; j < 4; ++j) {
        hetero.cores[static_cast<std::size_t>(j)].arrayRows = 64;
        hetero.cores[static_cast<std::size_t>(j)].arrayCols = 64;
    }
    MultiCoreSimulator hetero_sim(hetero);
    const auto het = hetero_sim.runGemm(gemm,
                                        Dataflow::OutputStationary);
    std::printf("heterogeneous (row of 64x64): makespan %llu, "
                "imbalance %.3f\n",
                static_cast<unsigned long long>(het.makespan), het.imbalance);

    // 4. Non-uniform partitioning on a Simba-like distance profile.
    MultiCoreConfig skewed = MultiCoreConfig::homogeneous(core, 4, 4);
    skewed.nop.latencyPerHop = 40;
    skewed.nop.wordsPerCycle = 8.0;
    skewed.nop.hops = {1, 1, 1, 1, 2, 2, 2, 2,
                       4, 4, 4, 4, 8, 8, 8, 8};
    MultiCoreSimulator uniform_sim(skewed);
    const auto uniform = uniform_sim.runGemm(
        gemm, Dataflow::OutputStationary);
    skewed.nonUniform = true;
    MultiCoreSimulator nonuniform_sim(skewed);
    const auto nonuniform = nonuniform_sim.runGemm(
        gemm, Dataflow::OutputStationary);
    std::printf("\nNoP-skewed grid: uniform makespan %llu -> "
                "non-uniform %llu (%.1f%% better)\n",
                static_cast<unsigned long long>(uniform.makespan),
                static_cast<unsigned long long>(nonuniform.makespan),
                100.0
                    * (1.0
                       - static_cast<double>(nonuniform.makespan)
                           / static_cast<double>(uniform.makespan)));
    std::printf("row shares (near -> far): ");
    for (std::uint64_t i = 0; i < 4; ++i) {
        std::printf("%llu ",
                    static_cast<unsigned long long>(
                        nonuniform.perCore[i * 4].rowShare));
    }
    std::printf("\n");

    // 5. Trace-level run through the shared L2 (§III-B): measure the
    //    DRAM traffic the deduplication actually removes.
    MultiCoreTraceConfig trace_cfg;
    trace_cfg.pr = trace_cfg.pc = 4;
    trace_cfg.arrayRows = trace_cfg.arrayCols = 32;
    trace_cfg.dataflow = Dataflow::OutputStationary;
    trace_cfg.l1.ifmapWords = 32 * 1024;
    trace_cfg.l1.filterWords = 32 * 1024;
    MultiCoreTraceConfig no_l2_cfg = trace_cfg;
    no_l2_cfg.useL2 = false;
    MultiCoreTraceSimulator with_l2(trace_cfg);
    MultiCoreTraceSimulator without_l2(no_l2_cfg);
    const LayerSpec big = LayerSpec::gemm("gemm", 4096, 4096, 1024);
    const auto l2_run = with_l2.runLayer(big);
    const auto no_l2_run = without_l2.runLayer(big);
    std::printf("\ntrace-level shared L2: DRAM reads %llu -> %llu "
                "(%.0f%% saved), L2 hit rate %.2f, makespan %llu -> "
                "%llu\n",
                static_cast<unsigned long long>(no_l2_run.dramReadWords),
                static_cast<unsigned long long>(l2_run.dramReadWords),
                100.0 * (1.0 - static_cast<double>(
                                   l2_run.dramReadWords)
                             / no_l2_run.dramReadWords),
                l2_run.l2.hitRate(),
                static_cast<unsigned long long>(no_l2_run.makespan),
                static_cast<unsigned long long>(l2_run.makespan));

    // 6. Contention models: the static 1/N bandwidth split versus the
    //    cycle-interleaved shared timeline on a bandwidth-starved bus.
    MultiCoreTraceConfig cont_cfg;
    cont_cfg.pr = cont_cfg.pc = 2;
    cont_cfg.arrayRows = cont_cfg.arrayCols = 16;
    cont_cfg.dataflow = Dataflow::OutputStationary;
    cont_cfg.useL2 = false;
    cont_cfg.dramWordsPerCycle = 4.0;
    cont_cfg.contention = ContentionModel::Static;
    MultiCoreTraceSimulator static_sim(cont_cfg);
    cont_cfg.contention = ContentionModel::Shared;
    MultiCoreTraceSimulator shared_sim(cont_cfg);
    const LayerSpec small = LayerSpec::gemm("gemm", 96, 64, 48);
    const auto static_run = static_sim.runLayer(small);
    const auto shared_run = shared_sim.runLayer(small);
    std::uint64_t queue_delay = 0;
    for (const auto& port : shared_run.ports)
        queue_delay += port.waitCycles;
    std::printf("contention (4 words/cycle bus): static %llu vs "
                "shared %llu cycles (%+.1f%%), %llu arb conflicts, "
                "aggregate port queueing delay %llu cycles\n",
                static_cast<unsigned long long>(static_run.makespan),
                static_cast<unsigned long long>(shared_run.makespan),
                100.0 * (static_cast<double>(shared_run.makespan)
                             / static_run.makespan
                         - 1.0),
                static_cast<unsigned long long>(shared_run.arb.arbConflicts),
                static_cast<unsigned long long>(queue_delay));
    return 0;
}
