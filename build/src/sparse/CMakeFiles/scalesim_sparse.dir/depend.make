# Empty dependencies file for scalesim_sparse.
# This may be replaced when dependencies are built.
