/**
 * @file
 * Epoch-parallel co-simulation tests: golden A/B bit-identity of the
 * epoch engine against the serial reference for every worker count
 * (makespan, per-core timings, arbiter grant/conflict/waiter stats,
 * CPI stacks — compared as byte-exact stats dumps), determinism across
 * repeats, zero-share-core coverage on grids wider than the mapped
 * dims, the port-level cpi.conservation read-latency split, and the
 * static-contention fractional L2 share.
 */

#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "check/audit.hpp"
#include "common/log.hpp"
#include "multicore/trace_sim.hpp"
#include "obs/stats.hpp"

using namespace scalesim;
using namespace scalesim::multicore;

namespace
{

/** WS 2x2 grid behind the shared L2 (config A of the golden set). */
MultiCoreTraceConfig
configA()
{
    MultiCoreTraceConfig cfg;
    cfg.pr = cfg.pc = 2;
    cfg.arrayRows = cfg.arrayCols = 16;
    cfg.dataflow = Dataflow::WeightStationary;
    cfg.l1.ifmapWords = 4096;
    cfg.l1.filterWords = 4096;
    return cfg;
}

/** OS 2x2, no L2, bandwidth-starved DRAM (config B). */
MultiCoreTraceConfig
configB()
{
    MultiCoreTraceConfig cfg;
    cfg.pr = cfg.pc = 2;
    cfg.arrayRows = cfg.arrayCols = 16;
    cfg.dataflow = Dataflow::OutputStationary;
    cfg.useL2 = false;
    cfg.dramWordsPerCycle = 4.0;
    return cfg;
}

/** IS 1x4 on a conv layer, with L2 (config C). */
MultiCoreTraceConfig
configC()
{
    MultiCoreTraceConfig cfg;
    cfg.pr = 1;
    cfg.pc = 4;
    cfg.arrayRows = cfg.arrayCols = 8;
    cfg.dataflow = Dataflow::InputStationary;
    cfg.l1.ifmapWords = 2048;
    cfg.l1.filterWords = 2048;
    cfg.dramWordsPerCycle = 8.0;
    return cfg;
}

/** WS 4x4 wide grid — the scaling case the epoch engine targets. */
MultiCoreTraceConfig
configD()
{
    MultiCoreTraceConfig cfg;
    cfg.pr = cfg.pc = 4;
    cfg.arrayRows = cfg.arrayCols = 16;
    cfg.dataflow = Dataflow::WeightStationary;
    cfg.l1.ifmapWords = 4096;
    cfg.l1.filterWords = 4096;
    cfg.dramWordsPerCycle = 16.0;
    return cfg;
}

const LayerSpec&
layerA()
{
    static const LayerSpec layer = LayerSpec::gemm("g", 256, 128, 128);
    return layer;
}

const LayerSpec&
layerB()
{
    static const LayerSpec layer = LayerSpec::gemm("g", 96, 64, 48);
    return layer;
}

const LayerSpec&
layerC()
{
    static const LayerSpec layer = LayerSpec::conv("c", 14, 14, 3, 3,
                                                   32, 64, 1);
    return layer;
}

MultiCoreTraceResult
run(MultiCoreTraceConfig cfg, const LayerSpec& layer,
    MultiCoreEngine engine, unsigned jobs = 0,
    bool scan_reverse = false)
{
    cfg.contention = ContentionModel::Shared;
    cfg.engine = engine;
    cfg.jobs = jobs;
    cfg.arbScanReverse = scan_reverse;
    MultiCoreTraceSimulator sim(cfg);
    return sim.runLayer(layer);
}

/** Byte-exact stats dump of one result. */
std::string
statsDump(const MultiCoreTraceResult& result)
{
    obs::StatsRegistry reg;
    result.registerStats(reg);
    std::ostringstream out;
    reg.dump(out);
    return out.str();
}

} // namespace

// ---------------------------------------------------------------------
// Golden A/B: the epoch engine must be bit-identical to the serial
// reference — same makespan, per-core timings, mc.arb.* grant stats
// and CPI stacks — for every worker count, because grants depend only
// on advertised events and floors, never on worker scheduling.

TEST(EpochEngine, MatchesSerialOnEveryConfigAndJobsCount)
{
    struct Case
    {
        MultiCoreTraceConfig cfg;
        const LayerSpec* layer;
    };
    const std::vector<Case> cases = {{configA(), &layerA()},
                                     {configB(), &layerB()},
                                     {configC(), &layerC()},
                                     {configD(), &layerA()}};
    for (std::size_t c = 0; c < cases.size(); ++c) {
        const std::string serial = statsDump(run(
            cases[c].cfg, *cases[c].layer, MultiCoreEngine::Serial));
        for (unsigned jobs : {1u, 2u, 4u}) {
            const std::string epoch = statsDump(run(
                cases[c].cfg, *cases[c].layer, MultiCoreEngine::Epoch,
                jobs));
            EXPECT_EQ(epoch, serial)
                << "case " << c << " diverged at jobs=" << jobs;
        }
    }
}

TEST(EpochEngine, MatchesSerialUnderReverseArbiterScan)
{
    const std::string serial = statsDump(run(
        configD(), layerA(), MultiCoreEngine::Serial, 0, true));
    const std::string epoch = statsDump(run(
        configD(), layerA(), MultiCoreEngine::Epoch, 4, true));
    EXPECT_EQ(epoch, serial);
}

TEST(EpochEngine, DeterministicAcrossRepeats)
{
    const std::string first = statsDump(run(
        configD(), layerA(), MultiCoreEngine::Epoch, 4));
    for (int rep = 0; rep < 3; ++rep) {
        EXPECT_EQ(statsDump(run(configD(), layerA(),
                                MultiCoreEngine::Epoch, 4)),
                  first);
    }
}

TEST(EpochEngine, MultiLayerRunReusesThePool)
{
    // Several layers through one simulator (the pool persists across
    // layers) must match per-layer serial runs exactly.
    MultiCoreTraceConfig serial_cfg = configA();
    serial_cfg.contention = ContentionModel::Shared;
    MultiCoreTraceConfig epoch_cfg = serial_cfg;
    epoch_cfg.engine = MultiCoreEngine::Epoch;
    epoch_cfg.jobs = 4;
    MultiCoreTraceSimulator serial_sim(serial_cfg);
    MultiCoreTraceSimulator epoch_sim(epoch_cfg);
    for (const LayerSpec* layer : {&layerA(), &layerB(), &layerA()}) {
        EXPECT_EQ(statsDump(epoch_sim.runLayer(*layer)),
                  statsDump(serial_sim.runLayer(*layer)));
    }
}

TEST(EpochEngine, KnobParses)
{
    EXPECT_EQ(multiCoreEngineFromString("serial"),
              MultiCoreEngine::Serial);
    EXPECT_EQ(multiCoreEngineFromString("EPOCH"),
              MultiCoreEngine::Epoch);
    EXPECT_STREQ(toString(MultiCoreEngine::Epoch), "epoch");
    EXPECT_STREQ(toString(MultiCoreEngine::Serial), "serial");
    EXPECT_THROW(multiCoreEngineFromString("turbo"), FatalError);
}

// ---------------------------------------------------------------------
// Zero-share cores: a grid wider than the mapped dims leaves
// default-constructed perCore/ports slots. Stats registration, the
// arbiter port count, and the conservation laws must all stay correct
// with idle cores — serial and parallel.

namespace
{

/** OS 4x4 grid on a 2-row GEMM: row shares {1,1,0,0} leave cores
    8..15 with nothing mapped. */
MultiCoreTraceConfig
zeroShareConfig()
{
    MultiCoreTraceConfig cfg;
    cfg.pr = cfg.pc = 4;
    cfg.arrayRows = cfg.arrayCols = 8;
    cfg.dataflow = Dataflow::OutputStationary;
    return cfg;
}

const LayerSpec&
zeroShareLayer()
{
    static const LayerSpec layer = LayerSpec::gemm("thin", 2, 64, 64);
    return layer;
}

} // namespace

TEST(ZeroShareCores, StatsAndConservationLawsHold)
{
    for (const MultiCoreEngine engine :
         {MultiCoreEngine::Serial, MultiCoreEngine::Epoch}) {
        const auto r = run(zeroShareConfig(), zeroShareLayer(), engine,
                           4);
        ASSERT_EQ(r.perCore.size(), 16u);
        ASSERT_EQ(r.ports.size(), 16u);
        EXPECT_GT(r.makespan, 0u);
        EXPECT_GT(r.arb.grants, 0u);
        // Rows 2 and 3 of the grid get a zero share of the 2-row GEMM:
        // their slots stay default-constructed.
        for (std::size_t core = 8; core < 16; ++core) {
            EXPECT_EQ(r.perCore[core].totalCycles, 0u) << core;
            EXPECT_EQ(r.ports[core].readRequests, 0u) << core;
            EXPECT_EQ(r.ports[core].totalReadLatency, 0u) << core;
        }
        // Registration covers every slot, idle ones included.
        const std::string dump = statsDump(r);
        EXPECT_NE(dump.find("mc.core0.totalCycles"),
                  std::string::npos);
        EXPECT_NE(dump.find("mc.core15.totalCycles"),
                  std::string::npos);

        check::InvariantAuditor auditor;
        auditor.auditArbiter(r, true, "zeroShare");
        for (std::size_t core = 0; core < r.perCore.size(); ++core) {
            auditor.auditStallAccounting(r.perCore[core], "zeroShare");
            auditor.auditCpiStack(r.perCore[core].cpi,
                                  r.perCore[core].totalCycles,
                                  "zeroShare");
        }
        EXPECT_TRUE(auditor.report().clean())
            << "engine " << toString(engine);
    }
}

TEST(ZeroShareCores, EpochMatchesSerial)
{
    const std::string serial = statsDump(run(
        zeroShareConfig(), zeroShareLayer(), MultiCoreEngine::Serial));
    for (unsigned jobs : {2u, 4u}) {
        EXPECT_EQ(statsDump(run(zeroShareConfig(), zeroShareLayer(),
                                MultiCoreEngine::Epoch, jobs)),
                  serial);
    }
}

// ---------------------------------------------------------------------
// Port-level cpi.conservation: the read-latency split must cover the
// total exactly — the residual the backend leaves unattributed (all of
// the L2's hit/fill/transfer time) is folded into readService instead
// of silently vanishing from the queue/port split.

TEST(PortLatencySplit, ConservesTotalReadLatencyWithL2)
{
    const auto r = run(configA(), layerA(), MultiCoreEngine::Serial);
    ASSERT_EQ(r.ports.size(), 4u);
    for (std::size_t i = 0; i < r.ports.size(); ++i) {
        const auto& port = r.ports[i];
        ASSERT_GT(port.readRequests, 0u) << i;
        EXPECT_EQ(port.readPortWait + port.readQueueWait
                      + port.readRefresh + port.readService,
                  port.totalReadLatency)
            << i;
        // SharedL2 reports no component stats at all, so everything
        // beyond the issue wait must have landed in readService.
        EXPECT_EQ(port.readQueueWait, 0u) << i;
        EXPECT_GT(port.readService, 0u) << i;
        // waitCycles also accumulates write-issue waits, so it bounds
        // the read-only portWait component from above.
        EXPECT_LE(port.readPortWait, port.waitCycles) << i;
    }
}

TEST(PortLatencySplit, ConservesTotalReadLatencyWithoutL2)
{
    const auto r = run(configB(), layerB(), MultiCoreEngine::Serial);
    ASSERT_EQ(r.ports.size(), 4u);
    for (std::size_t i = 0; i < r.ports.size(); ++i) {
        const auto& port = r.ports[i];
        EXPECT_EQ(port.readPortWait + port.readQueueWait
                      + port.readRefresh + port.readService,
                  port.totalReadLatency)
            << i;
        // The bandwidth model's queue wait equals the issue wait, so
        // the reclassification absorbs it completely.
        EXPECT_EQ(port.readQueueWait, 0u) << i;
        EXPECT_GT(port.readService, 0u) << i;
    }
}

// ---------------------------------------------------------------------
// Static-contention fractional L2 share: a grid wider than the L2 port
// must not be silently granted a full word per cycle per core.

TEST(StaticContention, FractionalL2ShareIsRespected)
{
    // 4 cores on a 2-words/cycle port leave each core 0.5 words/cycle;
    // on a 4-words/cycle port exactly 1.0. The old clamp raised both
    // to 1.0, making the two makespans equal and the aggregate modeled
    // bandwidth exceed the configured port width.
    MultiCoreTraceConfig narrow = configA();
    narrow.contention = ContentionModel::Static;
    narrow.l2.wordsPerCycle = 2.0;
    MultiCoreTraceConfig full = narrow;
    full.l2.wordsPerCycle = 4.0;
    MultiCoreTraceSimulator narrow_sim(narrow);
    MultiCoreTraceSimulator full_sim(full);
    const auto narrow_res = narrow_sim.runLayer(layerA());
    const auto full_res = full_sim.runLayer(layerA());
    EXPECT_GT(narrow_res.makespan, full_res.makespan);
}

TEST(StaticContention, DivergenceDirectionOnNarrowPort)
{
    // Pin the static-vs-shared divergence direction on a port narrower
    // than the grid. The static model assumes perfectly even
    // time-sharing (each core streams at its fractional share, never
    // colliding), while the shared timeline charges real burst
    // collisions — so on this config the honest-collision makespan
    // exceeds the optimistic static split. The old clamp hid the
    // divergence entirely by handing every core a full word per cycle.
    MultiCoreTraceConfig cfg = configA();
    cfg.l2.wordsPerCycle = 2.0;
    MultiCoreTraceConfig static_cfg = cfg;
    static_cfg.contention = ContentionModel::Static;
    MultiCoreTraceSimulator static_sim(static_cfg);
    const auto static_res = static_sim.runLayer(layerB());
    const auto shared_res = run(cfg, layerB(),
                                MultiCoreEngine::Serial);
    EXPECT_LT(static_res.makespan, shared_res.makespan);
    // And the epoch engine agrees with serial here too.
    EXPECT_EQ(statsDump(run(cfg, layerB(), MultiCoreEngine::Epoch, 4)),
              statsDump(shared_res));
}
