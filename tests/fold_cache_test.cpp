/**
 * @file
 * Golden A/B equivalence tests for the fold-replay demand cache: for a
 * matrix of shapes (ragged GEMMs, im2col convolutions, batched conv,
 * sparse-WS gathering) and all three dataflows, a cached run must be
 * byte-identical to an uncached run through every consumer — SRAM trace
 * text (all four streams), CountingVisitor totals, and the trace-driven
 * energy action counts. Also pins that the replay path actually fires
 * on the shapes designed to hit it.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "common/types.hpp"
#include "energy/action_counts.hpp"
#include "sparse/pattern.hpp"
#include "systolic/demand.hpp"
#include "systolic/trace_io.hpp"

using namespace scalesim;
using namespace scalesim::systolic;

namespace
{

/** Everything one demand pass produces, captured for comparison. */
struct PassResult
{
    std::string ifmapTrace;
    std::string filterTrace;
    std::string ofmapTrace;
    std::string oreadTrace;
    Count ifmapReads = 0;
    Count filterReads = 0;
    Count ofmapReads = 0;
    Count ofmapWrites = 0;
    Cycle lastCycle = 0;
    energy::ActionCounts actions;
    FoldCacheStats cache;
};

PassResult
runPass(const GemmDims& gemm, Dataflow df, std::uint32_t rows,
        std::uint32_t cols, const OperandMap& operands, bool cached,
        const KGatherMap* gather = nullptr)
{
    DemandGenerator gen(gemm, df, rows, cols, operands, gather);
    gen.setFoldCache(cached);

    std::ostringstream ifmap, filter, ofmap, oread;
    SramTraceWriter writer(&ifmap, &filter, &ofmap, &oread);
    CountingVisitor counter;
    EnergyConfig ecfg;
    energy::ActionCountVisitor actions(ecfg);
    TeeVisitor tee({&writer, &counter, &actions});
    gen.run(tee);

    PassResult r;
    r.ifmapTrace = ifmap.str();
    r.filterTrace = filter.str();
    r.ofmapTrace = ofmap.str();
    r.oreadTrace = oread.str();
    r.ifmapReads = counter.ifmapReads;
    r.filterReads = counter.filterReads;
    r.ofmapReads = counter.ofmapReads;
    r.ofmapWrites = counter.ofmapWrites;
    r.lastCycle = counter.lastCycle;
    r.actions = actions.counts();
    r.cache = gen.foldCacheStats();
    return r;
}

void
expectSramEqual(const energy::SramActionCounts& a,
                const energy::SramActionCounts& b, const char* what)
{
    EXPECT_EQ(a.readRandom, b.readRandom) << what;
    EXPECT_EQ(a.readRepeat, b.readRepeat) << what;
    EXPECT_EQ(a.writeRandom, b.writeRandom) << what;
    EXPECT_EQ(a.writeRepeat, b.writeRepeat) << what;
    EXPECT_EQ(a.idle, b.idle) << what;
}

/** Field-by-field ActionCounts comparison (no operator==). */
void
expectActionsEqual(const energy::ActionCounts& a,
                   const energy::ActionCounts& b)
{
    EXPECT_EQ(a.macRandom, b.macRandom);
    EXPECT_EQ(a.macConstant, b.macConstant);
    EXPECT_EQ(a.macGated, b.macGated);
    EXPECT_EQ(a.ifmapSpadRead, b.ifmapSpadRead);
    EXPECT_EQ(a.ifmapSpadWrite, b.ifmapSpadWrite);
    EXPECT_EQ(a.weightSpadRead, b.weightSpadRead);
    EXPECT_EQ(a.weightSpadWrite, b.weightSpadWrite);
    EXPECT_EQ(a.psumSpadRead, b.psumSpadRead);
    EXPECT_EQ(a.psumSpadWrite, b.psumSpadWrite);
    expectSramEqual(a.ifmapSram, b.ifmapSram, "ifmapSram");
    expectSramEqual(a.filterSram, b.filterSram, "filterSram");
    expectSramEqual(a.ofmapSram, b.ofmapSram, "ofmapSram");
    EXPECT_EQ(a.vectorOps, b.vectorOps);
    EXPECT_EQ(a.cycles, b.cycles);
}

/** Run cached vs uncached and demand bit-identical observations. */
void
expectEquivalent(const PassResult& cached, const PassResult& live)
{
    EXPECT_EQ(cached.ifmapTrace, live.ifmapTrace);
    EXPECT_EQ(cached.filterTrace, live.filterTrace);
    EXPECT_EQ(cached.ofmapTrace, live.ofmapTrace);
    EXPECT_EQ(cached.oreadTrace, live.oreadTrace);
    EXPECT_EQ(cached.ifmapReads, live.ifmapReads);
    EXPECT_EQ(cached.filterReads, live.filterReads);
    EXPECT_EQ(cached.ofmapReads, live.ofmapReads);
    EXPECT_EQ(cached.ofmapWrites, live.ofmapWrites);
    EXPECT_EQ(cached.lastCycle, live.lastCycle);
    expectActionsEqual(cached.actions, live.actions);
    // The uncached pass must never replay; both walk the same folds.
    EXPECT_EQ(live.cache.foldsReplayed, 0u);
    EXPECT_EQ(cached.cache.foldsTotal, live.cache.foldsTotal);
}

OperandMap
makeOperands(const GemmDims& gemm)
{
    MemoryConfig mem;
    return OperandMap(gemm, mem);
}

} // namespace

class FoldCacheAb : public ::testing::TestWithParam<Dataflow>
{
};

TEST_P(FoldCacheAb, RaggedGemmIsEquivalent)
{
    // 27x19x13 on an 8x8 array: ragged edge folds in both directions.
    const GemmDims gemm{27, 19, 13};
    const OperandMap operands = makeOperands(gemm);
    const auto cached = runPass(gemm, GetParam(), 8, 8, operands, true);
    const auto live = runPass(gemm, GetParam(), 8, 8, operands, false);
    expectEquivalent(cached, live);
}

TEST_P(FoldCacheAb, FullFoldGemmReplays)
{
    // 32x16x24: every fold is full-shaped, so after the one canonical
    // capture all remaining full folds must replay.
    const GemmDims gemm{32, 16, 24};
    const OperandMap operands = makeOperands(gemm);
    const auto cached = runPass(gemm, GetParam(), 8, 8, operands, true);
    const auto live = runPass(gemm, GetParam(), 8, 8, operands, false);
    expectEquivalent(cached, live);
    EXPECT_GT(cached.cache.foldsReplayed, 0u);
    EXPECT_GT(cached.cache.addrsReplayed, 0u);
    EXPECT_EQ(cached.cache.foldsTotal,
              cached.cache.foldsReplayed + cached.cache.foldsLive);
}

TEST_P(FoldCacheAb, ConvImToColIsEquivalent)
{
    // 14x14 conv, 3x3x8 -> 12 filters: M = 144, K = 72, N = 12.
    // im2col ifmap addressing is non-affine across row folds, so the
    // conv congruence classes must carry the replays.
    const LayerSpec layer = LayerSpec::conv("c", 14, 14, 3, 3, 8, 12, 1);
    const MemoryConfig mem;
    const OperandMap operands = OperandMap::forLayer(layer, mem);
    const GemmDims gemm = layer.toGemm();
    for (const Dataflow df : {GetParam()}) {
        const auto cached = runPass(gemm, df, 8, 8, operands, true);
        const auto live = runPass(gemm, df, 8, 8, operands, false);
        expectEquivalent(cached, live);
        EXPECT_GT(cached.cache.foldsReplayed, 0u)
            << "conv congruence classes should replay on " << toString(df);
    }
}

TEST_P(FoldCacheAb, BatchedConvIsEquivalent)
{
    // Batch 2 makes some fold m-ranges span the image boundary; those
    // must fall back to live generation without breaking equivalence.
    const LayerSpec layer =
        LayerSpec::conv("c", 10, 10, 3, 3, 4, 8, 1).withBatch(2);
    const MemoryConfig mem;
    const OperandMap operands = OperandMap::forLayer(layer, mem);
    const GemmDims gemm = layer.toGemm();
    const auto cached = runPass(gemm, GetParam(), 8, 8, operands, true);
    const auto live = runPass(gemm, GetParam(), 8, 8, operands, false);
    expectEquivalent(cached, live);
}

TEST_P(FoldCacheAb, StridedConvIsEquivalent)
{
    const LayerSpec layer = LayerSpec::conv("c", 16, 16, 3, 3, 4, 8, 2);
    const MemoryConfig mem;
    const OperandMap operands = OperandMap::forLayer(layer, mem);
    const GemmDims gemm = layer.toGemm();
    const auto cached = runPass(gemm, GetParam(), 8, 8, operands, true);
    const auto live = runPass(gemm, GetParam(), 8, 8, operands, false);
    expectEquivalent(cached, live);
}

INSTANTIATE_TEST_SUITE_P(
    AllDataflows, FoldCacheAb,
    ::testing::Values(Dataflow::OutputStationary,
                      Dataflow::WeightStationary,
                      Dataflow::InputStationary),
    [](const auto& tpi) { return toString(tpi.param); });

TEST(FoldCacheSparse, GatheredWsIsEquivalent)
{
    // 2:4 layer-wise sparsity: WS row folds gather original K rows, so
    // the ifmap stream is not shift-affine across row folds. Column
    // folds within a row fold still share a per-row-fold cache.
    const GemmDims dense{48, 24, 32};
    const OperandMap operands = makeOperands(dense);
    const auto pattern = sparse::SparsityPattern::layerWise(dense.k, 2, 4);
    const auto cached = runPass(dense, Dataflow::WeightStationary, 8, 8,
                                operands, true, &pattern);
    const auto live = runPass(dense, Dataflow::WeightStationary, 8, 8,
                              operands, false, &pattern);
    expectEquivalent(cached, live);
    EXPECT_GT(cached.cache.foldsReplayed, 0u)
        << "column folds should replay within each sparse row fold";
}

TEST(FoldCacheStatsTest, DisabledRunsEverythingLive)
{
    const GemmDims gemm{32, 16, 24};
    const OperandMap operands = makeOperands(gemm);
    const auto live =
        runPass(gemm, Dataflow::OutputStationary, 8, 8, operands, false);
    EXPECT_GT(live.cache.foldsTotal, 0u);
    EXPECT_EQ(live.cache.foldsLive, live.cache.foldsTotal);
    EXPECT_EQ(live.cache.foldsReplayed, 0u);
    EXPECT_EQ(live.cache.addrsReplayed, 0u);
    EXPECT_EQ(live.cache.bytesSaved(), 0u);
}
