# Empty dependencies file for fig10_request_queues.
# This may be replaced when dependencies are built.
