file(REMOVE_RECURSE
  "CMakeFiles/scalesim_core.dir/dse.cpp.o"
  "CMakeFiles/scalesim_core.dir/dse.cpp.o.d"
  "CMakeFiles/scalesim_core.dir/simulator.cpp.o"
  "CMakeFiles/scalesim_core.dir/simulator.cpp.o.d"
  "libscalesim_core.a"
  "libscalesim_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scalesim_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
