/**
 * @file
 * Built-in workload topologies used throughout the paper's evaluation:
 * AlexNet, ResNet-18, ResNet-50, an R-CNN (VGG16 backbone + detection
 * head), and the ViT family expressed as encoder GEMM sequences.
 *
 * Layer dimensions come from the public model definitions; the R-CNN
 * head is a representative Fast-R-CNN-style head (see DESIGN.md,
 * substitutions).
 */

#ifndef SCALESIM_COMMON_WORKLOADS_HH
#define SCALESIM_COMMON_WORKLOADS_HH

#include <string>
#include <vector>

#include "common/topology.hpp"

namespace scalesim::workloads
{

/** ViT model size variants. */
enum class VitVariant
{
    Small,
    Base,
    Large,
};

/** AlexNet: 5 conv layers + 3 FC layers. */
Topology alexnet();

/** ResNet-18, all conv layers expanded + final FC. */
Topology resnet18();

/**
 * The first `count` ResNet-18 layers (the paper's DRAM study uses six
 * ResNet-18 layers).
 */
Topology resnet18Prefix(std::size_t count);

/** ResNet-50 bottleneck network + final FC. */
Topology resnet50();

/** Fast-R-CNN-style detector: VGG16 backbone + per-ROI head. */
Topology rcnn();

/**
 * MobileNetV1 (1.0, 224): depthwise-separable convolutions, expressed
 * as per-channel depthwise planes (repetitions = channel count) plus
 * 1x1 pointwise convolutions.
 */
Topology mobilenetV1();

/** Full ViT encoder (patch embed + blocks + classifier) as GEMMs. */
Topology vit(VitVariant variant);

/** Only the feed-forward (MLP) GEMMs of a ViT encoder (Fig. 8). */
Topology vitFeedForward(VitVariant variant);

/**
 * Look up a workload by name: "alexnet", "resnet18", "resnet50",
 * "rcnn", "vit_small"/"vit_s", "vit_base"/"vit_b", "vit_large"/"vit_l".
 * fatal() on unknown names.
 */
Topology byName(const std::string& name);

/** All names accepted by byName(), canonical spellings. */
std::vector<std::string> names();

/**
 * Return a copy of `topo` with every layer annotated with the same N:M
 * sparsity ratio (layer-wise sparsity sweeps).
 */
Topology withUniformSparsity(Topology topo, std::uint32_t n,
                             std::uint32_t m);

/** Return a copy of `topo` with every layer's batch size set. */
Topology withBatch(Topology topo, std::uint64_t batch);

} // namespace scalesim::workloads

#endif // SCALESIM_COMMON_WORKLOADS_HH
