/**
 * @file
 * libFuzzer harness for the INI config front-end: feeds arbitrary
 * bytes through IniFile::parseString and SimConfig::fromIni. Any
 * outcome other than a parsed config or a clean FatalError (crash,
 * UB caught by ASan, uncaught exception) is a finding.
 */

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/config.hpp"
#include "common/log.hpp"

extern "C" int
LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size)
{
    scalesim::setQuiet(true);
    const std::string text(reinterpret_cast<const char*>(data), size);
    try {
        scalesim::IniFile ini;
        ini.parseString(text, "fuzz.cfg");
        const scalesim::SimConfig cfg = scalesim::SimConfig::fromIni(ini);
        (void)cfg;
    } catch (const scalesim::FatalError&) {
        // Malformed input rejected with a clean diagnostic: expected.
    }
    return 0;
}
