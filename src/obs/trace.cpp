#include "obs/trace.hpp"

#include <ostream>

#include "obs/json.hpp"

namespace scalesim::obs
{

void
TraceBuilder::setProcessName(std::uint32_t pid, std::string_view name)
{
    Event ev;
    ev.phase = 'M';
    ev.pid = pid;
    ev.name = "process_name";
    ev.stringArg = std::string(name);
    events_.push_back(std::move(ev));
}

void
TraceBuilder::setThreadName(std::uint32_t pid, std::uint32_t tid,
                            std::string_view name)
{
    Event ev;
    ev.phase = 'M';
    ev.pid = pid;
    ev.tid = tid;
    ev.name = "thread_name";
    ev.stringArg = std::string(name);
    events_.push_back(std::move(ev));
}

void
TraceBuilder::addSpan(std::uint32_t pid, std::uint32_t tid,
                      std::string_view name, std::string_view category,
                      std::uint64_t ts, std::uint64_t dur,
                      std::vector<std::pair<std::string, double>> args)
{
    Event ev;
    ev.phase = 'X';
    ev.pid = pid;
    ev.tid = tid;
    ev.name = std::string(name);
    ev.category = std::string(category);
    ev.ts = ts;
    // chrome://tracing drops zero-duration complete events; clamp to 1.
    ev.dur = dur > 0 ? dur : 1;
    ev.args = std::move(args);
    events_.push_back(std::move(ev));
}

void
TraceBuilder::addCounter(std::uint32_t pid, std::string_view track,
                         std::uint64_t ts, std::string_view series,
                         double value)
{
    Event ev;
    ev.phase = 'C';
    ev.pid = pid;
    ev.name = std::string(track);
    ev.ts = ts;
    ev.args.emplace_back(std::string(series), value);
    events_.push_back(std::move(ev));
}

void
TraceBuilder::addMetadata(std::string_view key, std::string_view value)
{
    otherData_.emplace_back(std::string(key), std::string(value));
}

void
TraceBuilder::write(std::ostream& out) const
{
    JsonWriter json(out);
    json.beginObject();
    json.field("displayTimeUnit", "ms");
    json.key("otherData").beginObject();
    for (const auto& [key, value] : otherData_)
        json.field(key, std::string_view(value));
    json.endObject();
    json.key("traceEvents").beginArray();
    for (const Event& ev : events_) {
        json.beginObject();
        json.field("ph", std::string_view(&ev.phase, 1));
        json.field("pid", ev.pid);
        json.field("name", std::string_view(ev.name));
        switch (ev.phase) {
          case 'M':
            json.field("tid", ev.tid);
            json.key("args").beginObject();
            json.field("name", std::string_view(ev.stringArg));
            json.endObject();
            break;
          case 'C':
            json.field("ts", ev.ts);
            json.key("args").beginObject();
            for (const auto& [series, value] : ev.args)
                json.field(series, value);
            json.endObject();
            break;
          default: // 'X'
            json.field("tid", ev.tid);
            json.field("cat", std::string_view(ev.category));
            json.field("ts", ev.ts);
            json.field("dur", ev.dur);
            if (!ev.args.empty()) {
                json.key("args").beginObject();
                for (const auto& [key, value] : ev.args)
                    json.field(key, value);
                json.endObject();
            }
            break;
        }
        json.endObject();
    }
    json.endArray();
    json.endObject();
    out << '\n';
}

} // namespace scalesim::obs
