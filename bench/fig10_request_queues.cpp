/**
 * @file
 * Reproduces Fig. 10: memory-stall fraction of total execution cycles
 * for read/write request queues of 32, 128 and 512 entries across
 * several workloads (TPU config + DDR4). The paper reports the mean
 * total cycles dropping 3.76x from 32 to 128 entries and a further
 * ~38% with 512 entries.
 */

#include "bench_util.hpp"
#include "common/log.hpp"
#include "common/workloads.hpp"
#include "core/simulator.hpp"

using namespace scalesim;

namespace
{

core::RunResult
runWith(const Topology& topo, std::uint32_t queue_size)
{
    SimConfig cfg = SimConfig::tpuMemoryStudy();
    cfg.mode = SimMode::Analytical;
    cfg.dram.readQueueSize = queue_size;
    cfg.dram.writeQueueSize = queue_size;
    // Plenty of channel-level parallelism: sustaining it needs more
    // requests in flight than a small queue can hold (Little's law),
    // which is exactly the effect the paper's study isolates.
    cfg.dram.channels = 16;
    // Word-granular demand requests (as in the paper's §V model):
    // sustaining the needed bandwidth requires latency x bandwidth
    // requests in flight, so a 32-entry queue throttles hard.
    cfg.memory.issuePerCycle = 16;
    cfg.memory.burstWords = 4;
    // A 2 GHz core doubles DRAM round-trips in core cycles, so deep
    // queues matter more (as on real accelerators).
    cfg.dram.coreClockMhz = 2000.0;
    core::Simulator sim(cfg);
    return sim.run(topo);
}

} // namespace

int
main(int argc, char** argv)
{
    setQuiet(true);
    const unsigned jobs = benchutil::jobsFromArgs(argc, argv, 1);
    std::printf("=== Fig. 10: memory stalls vs request queue size "
                "(32 / 128 / 512) ===\n");
    const char* names[] = {"alexnet", "resnet18", "vit_small"};
    constexpr std::uint32_t queue_sizes[] = {32, 128, 512};
    constexpr int kWorkloads = 3;
    constexpr int kQueues = 3;

    // 3 workloads x 3 queue sizes = 9 independent config points.
    std::vector<core::RunResult> results(
        static_cast<std::size_t>(kWorkloads) * kQueues);
    benchutil::forEachPoint(results.size(), jobs,
                            [&](std::uint64_t i) {
        const Topology topo = workloads::byName(
            names[i / kQueues]);
        results[i] = runWith(topo, queue_sizes[i % kQueues]);
    });

    benchutil::Table table({10, 22, 22, 22});
    table.row({"workload", "q32 total(stall%)", "q128 total(stall%)",
               "q512 total(stall%)"});
    table.rule();
    double ratio_32_128 = 0.0;
    double gain_128_512 = 0.0;
    for (int w = 0; w < kWorkloads; ++w) {
        const char* name = names[w];
        const auto& r32 = results[static_cast<std::size_t>(w) * kQueues];
        const auto& r128 = results[
            static_cast<std::size_t>(w) * kQueues + 1];
        const auto& r512 = results[
            static_cast<std::size_t>(w) * kQueues + 2];
        auto cell = [](const core::RunResult& r) {
            const double stall_pct = 100.0
                * static_cast<double>(r.stallCycles)
                / static_cast<double>(r.totalCycles);
            return format("%llu (%.1f%%)",
                          static_cast<unsigned long long>(
                              r.totalCycles),
                          stall_pct);
        };
        table.row({name, cell(r32), cell(r128), cell(r512)});
        ratio_32_128 += static_cast<double>(r32.totalCycles)
            / static_cast<double>(r128.totalCycles);
        gain_128_512 += static_cast<double>(r128.totalCycles)
                / static_cast<double>(r512.totalCycles)
            - 1.0;
    }
    table.rule();
    const int n = sizeof(names) / sizeof(names[0]);
    std::printf("mean total-cycle reduction 32 -> 128 entries: %.2fx "
                "(paper: 3.76x)\n",
                ratio_32_128 / n);
    std::printf("mean further improvement 128 -> 512 entries: %.1f%% "
                "(paper: 38%%)\n",
                100.0 * gain_128_512 / n);
    return 0;
}
