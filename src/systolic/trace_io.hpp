/**
 * @file
 * Cycle-accurate trace emission — SCALE-Sim's signature output files.
 *
 * SramTraceWriter taps the demand stream and writes the classic
 * per-cycle SRAM traces ("cycle, addr, addr, ..."), one stream per
 * operand. TracingMemory decorates any MainMemory and logs every
 * main-memory transaction in the paper's §V-B format (request cycle,
 * byte address, R/W), which readTrace/writeTrace round-trip to files
 * for the Ramulator-style standalone flow (generate a trace once,
 * replay it against many memory configurations).
 */

#ifndef SCALESIM_SYSTOLIC_TRACE_IO_HH
#define SCALESIM_SYSTOLIC_TRACE_IO_HH

#include <iosfwd>
#include <vector>

#include "systolic/demand.hpp"
#include "systolic/memory.hpp"

namespace scalesim::systolic
{

/**
 * Writes per-cycle SRAM demand traces; null streams are skipped.
 * `ofmap_reads` carries the partial-sum fetches of accumulating WS/IS
 * row folds (rf > 0) as a fourth stream so replayed traces account
 * for the full OFMAP SRAM traffic.
 */
class SramTraceWriter : public DemandVisitor
{
  public:
    SramTraceWriter(std::ostream* ifmap_reads,
                    std::ostream* filter_reads,
                    std::ostream* ofmap_writes,
                    std::ostream* ofmap_reads = nullptr);

    void cycle(Cycle clk, std::span<const Addr> ifmap_reads,
               std::span<const Addr> filter_reads,
               std::span<const Addr> ofmap_reads,
               std::span<const Addr> ofmap_writes) override;

    Count rowsWritten() const { return rows_; }
    /** Rows of the ofmap accumulate-read stream alone. */
    Count ofmapReadRows() const { return oreadRows_; }

  private:
    static void writeRow(std::ostream& out, Cycle clk,
                         std::span<const Addr> addrs);

    std::ostream* ifmap_;
    std::ostream* filter_;
    std::ostream* ofmap_;
    std::ostream* oread_;
    Count rows_ = 0;
    Count oreadRows_ = 0;
};

/** One §V-B main-memory trace record. */
struct MemTraceRecord
{
    Cycle cycle = 0;   ///< request (issue) cycle, core clock
    Addr byteAddr = 0; ///< byte address
    Count bytes = 0;   ///< transaction size
    bool write = false;

    bool operator==(const MemTraceRecord&) const = default;
};

/** MainMemory decorator that records every transaction it forwards. */
class TracingMemory : public MainMemory
{
  public:
    TracingMemory(MainMemory& inner, std::uint32_t word_bytes = 1);

    Cycle issueRead(Addr addr, Count words, Cycle now) override;
    Cycle issueWrite(Addr addr, Count words, Cycle now) override;

    const std::vector<MemTraceRecord>& records() const
    {
        return records_;
    }
    void clearRecords() { records_.clear(); }

  private:
    MainMemory& inner_;
    std::uint32_t wordBytes_;
    std::vector<MemTraceRecord> records_;
};

/** Write records as "cycle, address, bytes, R|W" CSV lines. */
void writeMemTrace(std::ostream& out,
                   const std::vector<MemTraceRecord>& records);

/** Parse a trace written by writeMemTrace; fatal() on bad rows. */
std::vector<MemTraceRecord> readMemTrace(std::istream& in);

} // namespace scalesim::systolic

#endif // SCALESIM_SYSTOLIC_TRACE_IO_HH
