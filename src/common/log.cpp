#include "common/log.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <vector>

namespace scalesim
{

namespace
{
// Read from parallel sweep workers while e.g. a test harness toggles
// it; relaxed atomic accesses keep that race benign (it only gates
// diagnostics, so no ordering is needed).
std::atomic<bool> g_quiet{false};
} // namespace

void
setQuiet(bool quiet)
{
    g_quiet.store(quiet, std::memory_order_relaxed);
}

bool
quiet()
{
    return g_quiet.load(std::memory_order_relaxed);
}

std::string
vformat(const char* fmt, std::va_list args)
{
    std::va_list args_copy;
    va_copy(args_copy, args);
    int needed = std::vsnprintf(nullptr, 0, fmt, args_copy);
    va_end(args_copy);
    if (needed < 0)
        return fmt;
    std::vector<char> buf(static_cast<std::size_t>(needed) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args);
    return std::string(buf.data(), static_cast<std::size_t>(needed));
}

std::string
format(const char* fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string out = vformat(fmt, args);
    va_end(args);
    return out;
}

void
inform(const char* fmt, ...)
{
    if (quiet())
        return;
    std::va_list args;
    va_start(args, fmt);
    std::string msg = vformat(fmt, args);
    va_end(args);
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

void
warn(const char* fmt, ...)
{
    if (quiet())
        return;
    std::va_list args;
    va_start(args, fmt);
    std::string msg = vformat(fmt, args);
    va_end(args);
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
fatal(const char* fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string msg = vformat(fmt, args);
    va_end(args);
    // Quiet mode still throws: the message travels in the exception,
    // so embedders (and the fuzz harnesses) can silence the console.
    if (!quiet())
        std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    throw FatalError(msg);
}

void
panic(const char* fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string msg = vformat(fmt, args);
    va_end(args);
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

} // namespace scalesim
