/**
 * @file
 * Sparse-accelerator walk-through: run ViT-base dense, with 2:4
 * layer-wise sparsity, and with randomized row-wise N:M sparsity
 * (VEGETA-style OptimizedMapping), comparing cycles and compressed
 * filter storage across CSR / CSC / Blocked-ELLPACK representations.
 */

#include <cstdio>

#include "common/log.hpp"
#include "common/workloads.hpp"
#include "core/simulator.hpp"

using namespace scalesim;

namespace
{

core::RunResult
runVit(const SparsityConfig& sparsity, const Topology& topo)
{
    SimConfig cfg;
    cfg.arrayRows = cfg.arrayCols = 64;
    cfg.dataflow = Dataflow::WeightStationary;
    cfg.mode = SimMode::Analytical;
    cfg.sparsity = sparsity;
    core::Simulator sim(cfg);
    return sim.run(topo);
}

} // namespace

int
main()
{
    setQuiet(true);
    const Topology dense_topo = workloads::vit(
        workloads::VitVariant::Base);
    const Topology sparse_topo = workloads::withUniformSparsity(
        dense_topo, 2, 4);

    SparsityConfig off;
    const auto dense = runVit(off, dense_topo);

    SparsityConfig layerwise;
    layerwise.enabled = true;
    const auto lw = runVit(layerwise, sparse_topo);

    SparsityConfig rowwise;
    rowwise.enabled = true;
    rowwise.optimizedMapping = true;
    rowwise.blockSize = 8;
    // Row-wise mapping applies only to sparse-annotated layers.
    const auto rw = runVit(rowwise, sparse_topo);

    std::printf("ViT-base on 64x64 WS array\n");
    std::printf("%-24s %14s %10s\n", "mode", "total cycles",
                "vs dense");
    auto row = [&](const char* label, const core::RunResult& r) {
        std::printf("%-24s %14llu %9.2fx\n", label,
                    static_cast<unsigned long long>(r.totalCycles),
                    static_cast<double>(dense.totalCycles)
                        / static_cast<double>(r.totalCycles));
    };
    row("dense", dense);
    row("layer-wise 2:4", lw);
    row("row-wise N:8 (random)", rw);

    // Storage comparison across representations for one big layer.
    const LayerSpec& fc1 = sparse_topo.layers[5]; // mlp_fc1
    std::printf("\ncompressed storage of %s (K=%llu, N=%llu), 2:4:\n",
                fc1.name.c_str(),
                static_cast<unsigned long long>(fc1.toGemm().k),
                static_cast<unsigned long long>(fc1.toGemm().n));
    for (SparseRep rep : {SparseRep::Dense, SparseRep::Csr,
                          SparseRep::Csc, SparseRep::EllpackBlock}) {
        SparsityConfig cfg = layerwise;
        cfg.rep = rep;
        sparse::SparseLayerModel model(fc1, cfg);
        const auto storage = model.storage(8);
        std::printf("  %-14s %8.3f MB (values %.3f + metadata %.3f), "
                    "%.2fx compression\n",
                    toString(rep).c_str(), storage.totalMB(),
                    storage.valueBits / 8.0 / 1024 / 1024,
                    storage.metadataBits / 8.0 / 1024 / 1024,
                    storage.compressionRatio());
    }
    return 0;
}
