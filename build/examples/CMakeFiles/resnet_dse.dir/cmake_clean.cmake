file(REMOVE_RECURSE
  "CMakeFiles/resnet_dse.dir/resnet_dse.cpp.o"
  "CMakeFiles/resnet_dse.dir/resnet_dse.cpp.o.d"
  "resnet_dse"
  "resnet_dse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resnet_dse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
