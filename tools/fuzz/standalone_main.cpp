/**
 * @file
 * Corpus replay driver used when libFuzzer is unavailable (non-Clang
 * builds): runs every file — or every file under every directory —
 * named on the command line through the harness's
 * LLVMFuzzerTestOneInput, so the seed corpus doubles as a regression
 * test on any toolchain. With Clang the harnesses link against
 * -fsanitize=fuzzer instead and this file is not compiled.
 */

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

namespace
{

int
runFile(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::fprintf(stderr, "cannot open %s\n", path.c_str());
        return -1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string data = buf.str();
    LLVMFuzzerTestOneInput(
        reinterpret_cast<const std::uint8_t*>(data.data()),
        data.size());
    return 0;
}

} // namespace

int
main(int argc, char** argv)
{
    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: %s <corpus-file-or-dir>...\n", argv[0]);
        return 1;
    }
    int ran = 0;
    for (int i = 1; i < argc; ++i) {
        const std::filesystem::path arg(argv[i]);
        std::vector<std::string> files;
        if (std::filesystem::is_directory(arg)) {
            for (const auto& entry :
                 std::filesystem::recursive_directory_iterator(arg)) {
                if (entry.is_regular_file())
                    files.push_back(entry.path().string());
            }
        } else {
            files.push_back(arg.string());
        }
        for (const std::string& file : files) {
            if (runFile(file) != 0)
                return 1;
            ++ran;
        }
    }
    std::printf("replayed %d corpus inputs, no crashes\n", ran);
    return 0;
}
