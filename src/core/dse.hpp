/**
 * @file
 * Design-space exploration driver — the workflow the paper's §IX
 * motivates (a latency-optimal design is rarely the energy- or
 * EdP-optimal one, and v3's full-system metrics change the winner).
 * Sweeps array size x dataflow x on-chip memory, collects latency /
 * energy / EdP per design, and extracts the latency-energy Pareto
 * frontier.
 */

#ifndef SCALESIM_CORE_DSE_HH
#define SCALESIM_CORE_DSE_HH

#include <iosfwd>
#include <vector>

#include "core/simulator.hpp"

namespace scalesim::core
{

/** One evaluated design point. */
struct DsePoint
{
    std::uint32_t array = 32;
    Dataflow dataflow = Dataflow::OutputStationary;
    std::uint64_t sramKb = 512; ///< total on-chip SRAM

    Cycle cycles = 0;
    double energyMj = 0.0;
    double edp = 0.0;

    /** True if `other` is at least as good on both axes and better
     *  on one (latency-energy dominance). */
    bool
    dominatedBy(const DsePoint& other) const
    {
        const bool no_worse = other.cycles <= cycles
            && other.energyMj <= energyMj;
        const bool better = other.cycles < cycles
            || other.energyMj < energyMj;
        return no_worse && better;
    }
};

/**
 * 2:1:1 ifmap:filter:ofmap partition of a total SRAM budget. Integer
 * division drops the remainder KB (a 6 KB budget would sweep as
 * 3+1+1 = 5 KB, mislabeling the point); the remainder is assigned to
 * the ifmap partition so the three parts always sum to `totalKb`.
 */
struct SramSplit
{
    std::uint64_t ifmapKb = 0;
    std::uint64_t filterKb = 0;
    std::uint64_t ofmapKb = 0;
};
SramSplit splitSramKb(std::uint64_t totalKb);

/** Sweep definition; the base config supplies every other knob. */
struct DseSweep
{
    std::vector<std::uint32_t> arraySizes = {16, 32, 64, 128};
    std::vector<Dataflow> dataflows = {Dataflow::OutputStationary,
                                       Dataflow::WeightStationary,
                                       Dataflow::InputStationary};
    /** Total on-chip SRAM budgets (split 2:1:1 ifmap:filter:ofmap). */
    std::vector<std::uint64_t> sramKbTotals = {1024};
    SimConfig base;

    /**
     * Worker threads evaluating candidates (1 = sequential, 0 = auto
     * via SCALESIM_JOBS / hardware concurrency). Each worker owns its
     * own Simulator, and results are stored by candidate index, so the
     * output is bit-identical for every jobs value.
     */
    unsigned jobs = 1;
};

/** One evaluated design point plus its full stats registry. */
struct DseDetailedPoint
{
    DsePoint point;
    /** The point's RunResult stats (sim.*, spad.*, dram.*, ...). */
    obs::StatsRegistry stats;
    /**
     * The point's interval time-series (empty unless the sweep's base
     * config sets intervalCycles). Stored by candidate index like
     * `stats`, so serialized series are byte-identical for every jobs
     * value.
     */
    obs::IntervalSeries intervals;
};

/** Evaluate every point of the sweep on a workload. */
std::vector<DsePoint> runSweep(const DseSweep& sweep,
                               const Topology& topology);

/**
 * Like runSweep, but each point also carries the run's stats
 * registry. Workers write their private registry into the point's
 * index slot, so the output — including every stats dump — is
 * byte-identical for every jobs value.
 */
std::vector<DseDetailedPoint> runSweepDetailed(const DseSweep& sweep,
                                               const Topology& topology);

/**
 * Fold every point's registry into one sweep-aggregate registry in
 * index (= sequential candidate) order: scalars and vectors sum
 * across points, distributions merge, and a `sweep.points` scalar
 * records how many designs contributed. Deterministic byte-for-byte
 * regardless of the jobs count used to produce the points.
 */
obs::StatsRegistry mergeSweepStats(
    const std::vector<DseDetailedPoint>& points);

DsePoint bestByLatency(const std::vector<DsePoint>& points);
DsePoint bestByEnergy(const std::vector<DsePoint>& points);
DsePoint bestByEdp(const std::vector<DsePoint>& points);

/**
 * Latency-energy Pareto frontier, sorted by ascending cycles. Every
 * returned point is non-dominated; every extreme (min-latency,
 * min-energy) is included.
 */
std::vector<DsePoint> paretoFrontier(std::vector<DsePoint> points);

/** CSV report of all points, flagging the Pareto-optimal ones. */
void writeDseReport(std::ostream& out,
                    const std::vector<DsePoint>& points);

} // namespace scalesim::core

#endif // SCALESIM_CORE_DSE_HH
