file(REMOVE_RECURSE
  "CMakeFiles/fig05_sparse_memory.dir/fig05_sparse_memory.cpp.o"
  "CMakeFiles/fig05_sparse_memory.dir/fig05_sparse_memory.cpp.o.d"
  "fig05_sparse_memory"
  "fig05_sparse_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_sparse_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
