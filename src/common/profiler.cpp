#include "common/profiler.hpp"

#include <ostream>

#include "common/log.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace scalesim
{

const char*
toString(SimPhase phase)
{
    switch (phase) {
      case SimPhase::Sparsity: return "sparsity";
      case SimPhase::DemandGen: return "demandGen";
      case SimPhase::Scratchpad: return "scratchpad";
      case SimPhase::Dram: return "dram";
      case SimPhase::Energy: return "energy";
    }
    return "unknown";
}

std::uint64_t
peakRssKb()
{
#if defined(__unix__) || defined(__APPLE__)
    struct rusage usage{};
    if (getrusage(RUSAGE_SELF, &usage) == 0) {
        // ru_maxrss is KiB on Linux, bytes on macOS.
#if defined(__APPLE__)
        return static_cast<std::uint64_t>(usage.ru_maxrss) / 1024;
#else
        return static_cast<std::uint64_t>(usage.ru_maxrss);
#endif
    }
#endif
    return 0;
}

void
SimProfile::writeReport(std::ostream& out) const
{
    auto stat = [&](const char* name, const std::string& value,
                    const char* desc) {
        out << format("%-32s %20s  # %s\n", name, value.c_str(), desc);
    };
    out << "---------- SIM_OVERHEAD ----------\n";
    stat("sim.overhead.totalSeconds", format("%.6f", totalSeconds),
         "wall-clock spent simulating");
    for (unsigned p = 0; p < kNumSimPhases; ++p) {
        const auto phase = static_cast<SimPhase>(p);
        stat(format("sim.overhead.%s", toString(phase)).c_str(),
             format("%.6f", phaseSeconds[p]), "phase seconds");
    }
    stat("sim.overhead.other", format("%.6f", otherSeconds()),
         "unattributed seconds");
    stat("sim.overhead.layers", std::to_string(layersProfiled),
         "layers profiled");
    stat("sim.overhead.peakRssKb", std::to_string(peakRssKb),
         "process peak resident set");
}

} // namespace scalesim
