file(REMOVE_RECURSE
  "CMakeFiles/scalesim_layout.dir/layout.cpp.o"
  "CMakeFiles/scalesim_layout.dir/layout.cpp.o.d"
  "libscalesim_layout.a"
  "libscalesim_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scalesim_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
