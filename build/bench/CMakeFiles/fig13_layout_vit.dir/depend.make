# Empty dependencies file for fig13_layout_vit.
# This may be replaced when dependencies are built.
