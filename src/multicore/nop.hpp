/**
 * @file
 * Network-on-Package topology model (paper §III-D, Simba-style
 * multi-chip modules): a 2D mesh of chiplets with the main-memory
 * controller attached at a configurable edge position. Provides the
 * per-core hop counts the non-uniform partitioner consumes and a
 * simple link-serialization transfer model.
 */

#ifndef SCALESIM_MULTICORE_NOP_HH
#define SCALESIM_MULTICORE_NOP_HH

#include <vector>

#include "common/types.hpp"
#include "multicore/system.hpp"

namespace scalesim::multicore
{

/** 2D-mesh NoP: chiplet (i, j) sits at row i, column j. */
class MeshNop
{
  public:
    /**
     * @param pr, pc       grid dimensions
     * @param mc_row/col   mesh position of the memory-controller
     *                     attach point
     */
    MeshNop(std::uint64_t pr, std::uint64_t pc, std::uint64_t mc_row,
            std::uint64_t mc_col);

    /** Mesh with the controller at the (0, 0) corner. */
    static MeshNop cornerAttached(std::uint64_t pr, std::uint64_t pc);

    /** Mesh with the controller at the middle of the top edge. */
    static MeshNop edgeCenterAttached(std::uint64_t pr,
                                      std::uint64_t pc);

    std::uint64_t pr() const { return pr_; }
    std::uint64_t pc() const { return pc_; }

    /** Manhattan hops from the controller to core (i, j), plus the
     *  ingress hop (so the nearest core still pays one hop). */
    std::uint32_t hops(std::uint64_t i, std::uint64_t j) const;

    /** Row-major hop vector, ready for NopConfig::hops. */
    std::vector<std::uint32_t> hopVector() const;

    /** Largest hop count in the mesh. */
    std::uint32_t maxHops() const;

    /**
     * Build a NopConfig for the analytical multi-core simulator from
     * this mesh and the link parameters.
     */
    NopConfig toNopConfig(Cycle latency_per_hop,
                          double words_per_cycle) const;

  private:
    std::uint64_t pr_;
    std::uint64_t pc_;
    std::uint64_t mcRow_;
    std::uint64_t mcCol_;
};

} // namespace scalesim::multicore

#endif // SCALESIM_MULTICORE_NOP_HH
