/**
 * @file
 * Main-memory exploration: run the first half of ResNet-18 against
 * every DRAM technology preset and compare total cycles, stalls, row
 * hit rate and mean round-trip latency — the §V workflow for choosing
 * a memory system.
 */

#include <cstdio>

#include "common/log.hpp"
#include "common/workloads.hpp"
#include "core/simulator.hpp"
#include "dram/timing.hpp"

using namespace scalesim;

int
main()
{
    setQuiet(true);
    const Topology topo = workloads::resnet18Prefix(10);
    std::printf("ResNet-18 (first 10 layers) on a 32x32 WS array, "
                "2-channel main memory\n\n");
    std::printf("%-12s %12s %10s %10s %12s\n", "tech", "cycles",
                "stall%", "rowhit%", "rd lat(cyc)");

    for (const auto& tech : dram::timingPresetNames()) {
        SimConfig cfg;
        cfg.arrayRows = cfg.arrayCols = 32;
        cfg.dataflow = Dataflow::WeightStationary;
        cfg.mode = SimMode::Analytical;
        cfg.dram.enabled = true;
        cfg.dram.tech = tech;
        cfg.dram.channels = 2;
        core::Simulator sim(cfg);
        const core::RunResult run = sim.run(topo);
        double lat_sum = 0.0;
        for (const auto& layer : run.layers)
            lat_sum += layer.timing.avgReadLatency;
        std::printf("%-12s %12llu %9.1f%% %9.1f%% %12.1f\n",
                    tech.c_str(),
                    static_cast<unsigned long long>(run.totalCycles),
                    100.0 * static_cast<double>(run.stallCycles)
                        / static_cast<double>(run.totalCycles),
                    100.0 * run.dramStats.rowHitRate(),
                    lat_sum / static_cast<double>(run.layers.size()));
    }

    // Trace-driven use (Ramulator-style): feed an explicit trace and
    // read back per-request latencies.
    std::printf("\ntrace-driven API: 1k-request strided read trace on "
                "HBM2\n");
    dram::DramSystemConfig sys_cfg;
    sys_cfg.timing = dram::timingPreset("HBM2");
    sys_cfg.channels = 4;
    dram::DramSystem system(sys_cfg);
    std::vector<dram::TraceEntry> trace;
    for (int i = 0; i < 1000; ++i) {
        trace.push_back({static_cast<Cycle>(i),
                         static_cast<Addr>(i) * 4096, i % 5 == 0});
    }
    const auto result = system.runTrace(trace);
    Cycle worst = 0;
    for (Cycle lat : result.latency)
        worst = std::max(worst, lat);
    std::printf("  bandwidth %.1f B/clk, row hit rate %.2f, worst "
                "latency %llu clk\n",
                result.bytesPerClock(), result.stats.rowHitRate(),
                static_cast<unsigned long long>(worst));
    return 0;
}
