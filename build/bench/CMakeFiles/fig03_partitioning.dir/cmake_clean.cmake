file(REMOVE_RECURSE
  "CMakeFiles/fig03_partitioning.dir/fig03_partitioning.cpp.o"
  "CMakeFiles/fig03_partitioning.dir/fig03_partitioning.cpp.o.d"
  "fig03_partitioning"
  "fig03_partitioning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_partitioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
