file(REMOVE_RECURSE
  "CMakeFiles/scalesim_energy.dir/action_counts.cpp.o"
  "CMakeFiles/scalesim_energy.dir/action_counts.cpp.o.d"
  "CMakeFiles/scalesim_energy.dir/ert.cpp.o"
  "CMakeFiles/scalesim_energy.dir/ert.cpp.o.d"
  "CMakeFiles/scalesim_energy.dir/model.cpp.o"
  "CMakeFiles/scalesim_energy.dir/model.cpp.o.d"
  "libscalesim_energy.a"
  "libscalesim_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scalesim_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
