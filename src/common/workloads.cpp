#include "common/workloads.hpp"

#include <algorithm>
#include <cctype>

#include "common/log.hpp"

namespace scalesim::workloads
{

namespace
{

struct VitParams
{
    std::uint64_t seq;      // sequence length (patches + CLS)
    std::uint64_t hidden;   // embedding dimension
    std::uint64_t heads;    // attention heads
    std::uint64_t mlp;      // MLP hidden dimension
    std::uint32_t blocks;   // encoder depth
    const char* tag;
};

VitParams
vitParams(VitVariant variant)
{
    switch (variant) {
      case VitVariant::Small:
        return {197, 384, 6, 1536, 12, "vit_small"};
      case VitVariant::Base:
        return {197, 768, 12, 3072, 12, "vit_base"};
      case VitVariant::Large:
        return {197, 1024, 16, 4096, 24, "vit_large"};
    }
    return {197, 768, 12, 3072, 12, "vit_base"};
}

} // namespace

Topology
alexnet()
{
    Topology topo;
    topo.name = "alexnet";
    auto& l = topo.layers;
    l.push_back(LayerSpec::conv("conv1", 227, 227, 11, 11, 3, 96, 4));
    l.push_back(LayerSpec::conv("conv2", 31, 31, 5, 5, 96, 256, 1));
    l.push_back(LayerSpec::conv("conv3", 15, 15, 3, 3, 256, 384, 1));
    l.push_back(LayerSpec::conv("conv4", 15, 15, 3, 3, 384, 384, 1));
    l.push_back(LayerSpec::conv("conv5", 15, 15, 3, 3, 384, 256, 1));
    l.push_back(LayerSpec::gemm("fc6", 1, 4096, 9216));
    l.push_back(LayerSpec::gemm("fc7", 1, 4096, 4096));
    l.push_back(LayerSpec::gemm("fc8", 1, 1000, 4096));
    return topo;
}

Topology
resnet18()
{
    Topology topo;
    topo.name = "resnet18";
    auto& l = topo.layers;
    l.push_back(LayerSpec::conv("conv1", 224, 224, 7, 7, 3, 64, 2));
    // Stage 2: 56x56, 64 channels, two basic blocks.
    l.push_back(LayerSpec::conv("conv2_1a", 56, 56, 3, 3, 64, 64, 1));
    l.push_back(LayerSpec::conv("conv2_1b", 56, 56, 3, 3, 64, 64, 1));
    l.push_back(LayerSpec::conv("conv2_2a", 56, 56, 3, 3, 64, 64, 1));
    l.push_back(LayerSpec::conv("conv2_2b", 56, 56, 3, 3, 64, 64, 1));
    // Stage 3: downsample to 28x28, 128 channels.
    l.push_back(LayerSpec::conv("conv3_1a", 56, 56, 3, 3, 64, 128, 2));
    l.push_back(LayerSpec::conv("conv3_1b", 28, 28, 3, 3, 128, 128, 1));
    l.push_back(LayerSpec::conv("conv3_ds", 56, 56, 1, 1, 64, 128, 2));
    l.push_back(LayerSpec::conv("conv3_2a", 28, 28, 3, 3, 128, 128, 1));
    l.push_back(LayerSpec::conv("conv3_2b", 28, 28, 3, 3, 128, 128, 1));
    // Stage 4: 14x14, 256 channels.
    l.push_back(LayerSpec::conv("conv4_1a", 28, 28, 3, 3, 128, 256, 2));
    l.push_back(LayerSpec::conv("conv4_1b", 14, 14, 3, 3, 256, 256, 1));
    l.push_back(LayerSpec::conv("conv4_ds", 28, 28, 1, 1, 128, 256, 2));
    l.push_back(LayerSpec::conv("conv4_2a", 14, 14, 3, 3, 256, 256, 1));
    l.push_back(LayerSpec::conv("conv4_2b", 14, 14, 3, 3, 256, 256, 1));
    // Stage 5: 7x7, 512 channels.
    l.push_back(LayerSpec::conv("conv5_1a", 14, 14, 3, 3, 256, 512, 2));
    l.push_back(LayerSpec::conv("conv5_1b", 7, 7, 3, 3, 512, 512, 1));
    l.push_back(LayerSpec::conv("conv5_ds", 14, 14, 1, 1, 256, 512, 2));
    l.push_back(LayerSpec::conv("conv5_2a", 7, 7, 3, 3, 512, 512, 1));
    l.push_back(LayerSpec::conv("conv5_2b", 7, 7, 3, 3, 512, 512, 1));
    l.push_back(LayerSpec::gemm("fc", 1, 1000, 512));
    return topo;
}

Topology
resnet18Prefix(std::size_t count)
{
    Topology topo = resnet18();
    if (count < topo.layers.size())
        topo.layers.resize(count);
    topo.name = format("resnet18_first%zu", topo.layers.size());
    return topo;
}

Topology
resnet50()
{
    Topology topo;
    topo.name = "resnet50";
    auto& l = topo.layers;
    l.push_back(LayerSpec::conv("conv1", 224, 224, 7, 7, 3, 64, 2));

    // Stage 2: 56x56, bottleneck 64-64-256, 3 blocks.
    l.push_back(LayerSpec::conv("conv2_1r", 56, 56, 1, 1, 64, 64, 1));
    l.push_back(LayerSpec::conv("conv2_1m", 56, 56, 3, 3, 64, 64, 1));
    l.push_back(LayerSpec::conv("conv2_1e", 56, 56, 1, 1, 64, 256, 1));
    l.push_back(LayerSpec::conv("conv2_ds", 56, 56, 1, 1, 64, 256, 1));
    l.push_back(LayerSpec::conv("conv2_xr", 56, 56, 1, 1, 256, 64, 1, 2));
    l.push_back(LayerSpec::conv("conv2_xm", 56, 56, 3, 3, 64, 64, 1, 2));
    l.push_back(LayerSpec::conv("conv2_xe", 56, 56, 1, 1, 64, 256, 1, 2));

    // Stage 3: 28x28, bottleneck 128-128-512, 4 blocks.
    l.push_back(LayerSpec::conv("conv3_1r", 56, 56, 1, 1, 256, 128, 2));
    l.push_back(LayerSpec::conv("conv3_1m", 28, 28, 3, 3, 128, 128, 1));
    l.push_back(LayerSpec::conv("conv3_1e", 28, 28, 1, 1, 128, 512, 1));
    l.push_back(LayerSpec::conv("conv3_ds", 56, 56, 1, 1, 256, 512, 2));
    l.push_back(LayerSpec::conv("conv3_xr", 28, 28, 1, 1, 512, 128, 1, 3));
    l.push_back(LayerSpec::conv("conv3_xm", 28, 28, 3, 3, 128, 128, 1, 3));
    l.push_back(LayerSpec::conv("conv3_xe", 28, 28, 1, 1, 128, 512, 1, 3));

    // Stage 4: 14x14, bottleneck 256-256-1024, 6 blocks.
    l.push_back(LayerSpec::conv("conv4_1r", 28, 28, 1, 1, 512, 256, 2));
    l.push_back(LayerSpec::conv("conv4_1m", 14, 14, 3, 3, 256, 256, 1));
    l.push_back(LayerSpec::conv("conv4_1e", 14, 14, 1, 1, 256, 1024, 1));
    l.push_back(LayerSpec::conv("conv4_ds", 28, 28, 1, 1, 512, 1024, 2));
    l.push_back(LayerSpec::conv("conv4_xr", 14, 14, 1, 1, 1024, 256, 1,
                                5));
    l.push_back(LayerSpec::conv("conv4_xm", 14, 14, 3, 3, 256, 256, 1,
                                5));
    l.push_back(LayerSpec::conv("conv4_xe", 14, 14, 1, 1, 256, 1024, 1,
                                5));

    // Stage 5: 7x7, bottleneck 512-512-2048, 3 blocks.
    l.push_back(LayerSpec::conv("conv5_1r", 14, 14, 1, 1, 1024, 512, 2));
    l.push_back(LayerSpec::conv("conv5_1m", 7, 7, 3, 3, 512, 512, 1));
    l.push_back(LayerSpec::conv("conv5_1e", 7, 7, 1, 1, 512, 2048, 1));
    l.push_back(LayerSpec::conv("conv5_ds", 14, 14, 1, 1, 1024, 2048, 2));
    l.push_back(LayerSpec::conv("conv5_xr", 7, 7, 1, 1, 2048, 512, 1, 2));
    l.push_back(LayerSpec::conv("conv5_xm", 7, 7, 3, 3, 512, 512, 1, 2));
    l.push_back(LayerSpec::conv("conv5_xe", 7, 7, 1, 1, 512, 2048, 1, 2));

    l.push_back(LayerSpec::gemm("fc", 1, 1000, 2048));
    return topo;
}

Topology
rcnn()
{
    // Fast-R-CNN-style: VGG16 conv backbone + per-ROI detection head
    // (128 ROIs per image). See DESIGN.md (substitutions).
    Topology topo;
    topo.name = "rcnn";
    auto& l = topo.layers;
    l.push_back(LayerSpec::conv("conv1_1", 224, 224, 3, 3, 3, 64, 1));
    l.push_back(LayerSpec::conv("conv1_2", 224, 224, 3, 3, 64, 64, 1));
    l.push_back(LayerSpec::conv("conv2_1", 112, 112, 3, 3, 64, 128, 1));
    l.push_back(LayerSpec::conv("conv2_2", 112, 112, 3, 3, 128, 128, 1));
    l.push_back(LayerSpec::conv("conv3_1", 56, 56, 3, 3, 128, 256, 1));
    l.push_back(LayerSpec::conv("conv3_2", 56, 56, 3, 3, 256, 256, 1, 2));
    l.push_back(LayerSpec::conv("conv4_1", 28, 28, 3, 3, 256, 512, 1));
    l.push_back(LayerSpec::conv("conv4_2", 28, 28, 3, 3, 512, 512, 1, 2));
    l.push_back(LayerSpec::conv("conv5_1", 14, 14, 3, 3, 512, 512, 1, 3));
    // Detection head over 128 region proposals.
    l.push_back(LayerSpec::gemm("roi_fc6", 128, 4096, 25088));
    l.push_back(LayerSpec::gemm("roi_fc7", 128, 4096, 4096));
    l.push_back(LayerSpec::gemm("roi_cls", 128, 21, 4096));
    l.push_back(LayerSpec::gemm("roi_bbox", 128, 84, 4096));
    return topo;
}

Topology
mobilenetV1()
{
    Topology topo;
    topo.name = "mobilenet_v1";
    auto& l = topo.layers;
    l.push_back(LayerSpec::conv("conv1", 224, 224, 3, 3, 3, 32, 2));
    // Each depthwise stage: one 3x3 plane per channel (reps = C),
    // followed by a 1x1 pointwise conv.
    struct Stage
    {
        std::uint64_t size;
        std::uint64_t in;
        std::uint64_t out;
        std::uint64_t stride;
        std::uint32_t reps;
    };
    const Stage stages[] = {
        {112, 32, 64, 1, 1},   {112, 64, 128, 2, 1},
        {56, 128, 128, 1, 1},  {56, 128, 256, 2, 1},
        {28, 256, 256, 1, 1},  {28, 256, 512, 2, 1},
        {14, 512, 512, 1, 5},  {14, 512, 1024, 2, 1},
        {7, 1024, 1024, 1, 1},
    };
    int idx = 0;
    for (const auto& st : stages) {
        for (std::uint32_t r = 0; r < st.reps; ++r) {
            ++idx;
            l.push_back(LayerSpec::conv(
                format("dw%d", idx), st.size, st.size, 3, 3, 1, 1,
                st.stride, static_cast<std::uint32_t>(st.in)));
            const std::uint64_t out_size = st.stride == 2
                ? st.size / 2 : st.size;
            l.push_back(LayerSpec::conv(
                format("pw%d", idx), out_size, out_size, 1, 1, st.in,
                st.out, 1));
        }
    }
    l.push_back(LayerSpec::gemm("fc", 1, 1000, 1024));
    return topo;
}

Topology
vit(VitVariant variant)
{
    const VitParams p = vitParams(variant);
    Topology topo;
    topo.name = p.tag;
    auto& l = topo.layers;
    const std::uint64_t head_dim = p.hidden / p.heads;

    l.push_back(LayerSpec::gemm("patch_embed", p.seq - 1, p.hidden,
                                3 * 16 * 16));
    // Encoder blocks all share the same GEMM shapes; use repetitions.
    const std::uint32_t blocks = p.blocks;
    const std::uint32_t heads = static_cast<std::uint32_t>(p.heads);
    l.push_back(LayerSpec::gemm("attn_qkv", p.seq, 3 * p.hidden, p.hidden,
                                blocks));
    l.push_back(LayerSpec::gemm("attn_scores", p.seq, p.seq, head_dim,
                                blocks * heads)
                    .withTail(VectorTail::Softmax));
    l.push_back(LayerSpec::gemm("attn_context", p.seq, head_dim, p.seq,
                                blocks * heads));
    l.push_back(LayerSpec::gemm("attn_proj", p.seq, p.hidden, p.hidden,
                                blocks));
    l.push_back(LayerSpec::gemm("mlp_fc1", p.seq, p.mlp, p.hidden,
                                blocks)
                    .withTail(VectorTail::Activation));
    l.push_back(LayerSpec::gemm("mlp_fc2", p.seq, p.hidden, p.mlp,
                                blocks));
    l.push_back(LayerSpec::gemm("classifier", 1, 1000, p.hidden)
                    .withTail(VectorTail::Softmax));
    return topo;
}

Topology
vitFeedForward(VitVariant variant)
{
    const VitParams p = vitParams(variant);
    Topology topo;
    topo.name = std::string(p.tag) + "_ff";
    topo.layers.push_back(LayerSpec::gemm("mlp_fc1", p.seq, p.mlp,
                                          p.hidden, p.blocks));
    topo.layers.push_back(LayerSpec::gemm("mlp_fc2", p.seq, p.hidden,
                                          p.mlp, p.blocks));
    return topo;
}

Topology
byName(const std::string& name)
{
    std::string lower = name;
    std::transform(lower.begin(), lower.end(), lower.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    if (lower == "alexnet")
        return alexnet();
    if (lower == "resnet18")
        return resnet18();
    if (lower == "resnet50")
        return resnet50();
    if (lower == "rcnn")
        return rcnn();
    if (lower == "mobilenet" || lower == "mobilenet_v1")
        return mobilenetV1();
    if (lower == "vit_small" || lower == "vit_s")
        return vit(VitVariant::Small);
    if (lower == "vit_base" || lower == "vit_b")
        return vit(VitVariant::Base);
    if (lower == "vit_large" || lower == "vit_l")
        return vit(VitVariant::Large);
    fatal("unknown workload '%s'", name.c_str());
}

std::vector<std::string>
names()
{
    return {"alexnet", "resnet18", "resnet50", "rcnn", "mobilenet_v1",
            "vit_small", "vit_base", "vit_large"};
}

Topology
withUniformSparsity(Topology topo, std::uint32_t n, std::uint32_t m)
{
    for (auto& layer : topo.layers) {
        layer.sparseN = n;
        layer.sparseM = m;
    }
    topo.name += format("_%u_%u", n, m);
    return topo;
}

Topology
withBatch(Topology topo, std::uint64_t batch)
{
    for (auto& layer : topo.layers)
        layer.batch = batch;
    topo.name += format("_b%llu", static_cast<unsigned long long>(batch));
    return topo;
}

} // namespace scalesim::workloads
