#include "energy/ert.hpp"

#include <algorithm>
#include <cctype>

#include "common/log.hpp"

namespace scalesim::energy
{

Ert
Ert::node65nm()
{
    return Ert{};
}

Ert
Ert::forNode(std::string_view node)
{
    std::string c;
    for (char ch : node) {
        if (ch == ' ' || ch == '_')
            continue;
        c.push_back(static_cast<char>(
            std::tolower(static_cast<unsigned char>(ch))));
    }
    double scale = 1.0;
    if (c == "65nm" || c.empty()) {
        scale = 1.0;
    } else if (c == "45nm") {
        scale = 0.55;
    } else if (c == "28nm") {
        scale = 0.30;
    } else if (c == "16nm") {
        scale = 0.16;
    } else {
        fatal("unknown technology node '%.*s'",
              static_cast<int>(node.size()), node.data());
    }
    Ert ert = node65nm();
    ert.node = c;
    ert.macRandom *= scale;
    ert.macConstant *= scale;
    ert.macGated *= scale;
    ert.spadRead *= scale;
    ert.spadWrite *= scale;
    ert.vectorOpPj *= scale;
    ert.sramReadRandom *= scale;
    ert.sramReadRepeat *= scale;
    ert.sramWriteRandom *= scale;
    ert.sramWriteRepeat *= scale;
    ert.sramIdle *= scale;
    ert.nocPerWordPerDim8 *= scale;
    // DRAM interface energy scales much more slowly with logic node.
    const double dram_scale = 0.5 + 0.5 * scale;
    ert.dramPerWord *= dram_scale;
    ert.dramActPj *= dram_scale;
    ert.dramReadBurstPj *= dram_scale;
    ert.dramWriteBurstPj *= dram_scale;
    ert.dramRefreshPj *= dram_scale;
    ert.peClockPerCycle *= scale;
    ert.peLeakPerCycle *= scale;
    ert.sramStaticPerKbCycle *= scale;
    return ert;
}

} // namespace scalesim::energy
