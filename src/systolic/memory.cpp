#include "systolic/memory.hpp"

#include <algorithm>
#include <cmath>

#include "common/log.hpp"

namespace scalesim::systolic
{

BandwidthMemory::BandwidthMemory(double words_per_cycle,
                                 Cycle base_latency)
    : wordsPerCycle_(words_per_cycle), baseLatency_(base_latency)
{
    if (words_per_cycle <= 0.0)
        fatal("bandwidth must be positive (got %f)", words_per_cycle);
}

Cycle
BandwidthMemory::busOccupy(Count words, Cycle now)
{
    const double start = std::max(static_cast<double>(now), busFree_);
    lastWait_ = static_cast<Cycle>(start) - now;
    busFree_ = start + static_cast<double>(words) / wordsPerCycle_;
    return static_cast<Cycle>(std::ceil(busFree_));
}

Cycle
BandwidthMemory::issueRead(Addr /*addr*/, Count words, Cycle now)
{
    const Cycle done = busOccupy(words, now) + baseLatency_;
    ++stats_.readRequests;
    stats_.readWords += words;
    stats_.totalReadLatency += done - now;
    // Serialization behind earlier transfers is queueing; the rest of
    // the round trip (transfer time + base latency) is service.
    stats_.readQueueWait += lastWait_;
    stats_.readService += (done - now) - lastWait_;
    return done;
}

Cycle
BandwidthMemory::issueWrite(Addr /*addr*/, Count words, Cycle now)
{
    const Cycle done = busOccupy(words, now) + baseLatency_;
    ++stats_.writeRequests;
    stats_.writeWords += words;
    stats_.totalWriteLatency += done - now;
    return done;
}

RequestQueue::RequestQueue(std::uint32_t capacity)
    : capacity_(capacity)
{
    if (capacity_ == 0)
        fatal("request queue capacity must be non-zero");
}

void
RequestQueue::drain(Cycle now)
{
    while (!inflight_.empty() && inflight_.top() <= now)
        inflight_.pop();
}

Cycle
RequestQueue::slotAvailable(Cycle now)
{
    drain(now);
    if (inflight_.size() < capacity_)
        return now;
    return inflight_.top();
}

Cycle
RequestQueue::reserve(Cycle now)
{
    const Cycle at = slotAvailable(now);
    fullStalls_ += at - now;
    return at;
}

void
RequestQueue::push(Cycle completion)
{
    inflight_.push(completion);
}

} // namespace scalesim::systolic
