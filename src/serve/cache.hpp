/**
 * @file
 * Content-addressed per-layer result cache backing the sweep server
 * (ROADMAP item 2). Entries are keyed on an FNV-1a hash of (canonical
 * layer shape, config slice that affects timing/energy) — see
 * cached_runner.hpp for what goes into the key — and hold the opaque
 * serialized payload of one layer's isolated evaluation. DSE sweeps
 * share most layers across design points, so a warm sweep is served
 * almost entirely from here.
 *
 * The cache is thread-safe (one mutex; payload encode/decode happens
 * outside it), evicts least-recently-used entries against a byte
 * budget, and can persist to disk in a versioned format whose loader
 * tolerates truncation and corruption: a bad tail is dropped with a
 * warning, never a crash. The locking discipline is annotated for
 * clang's thread-safety analysis (check/thread_safety.hpp): every
 * mutable member is SIM_GUARDED_BY(mutex_) and every public method
 * acquires the mutex internally (SIM_EXCLUDES).
 *
 * Determinism note: entries_ is an unordered_map but is only ever
 * accessed by key — anything order-dependent (LRU eviction, disk
 * persistence) walks the lru_ list, so hash-table iteration order can
 * never leak into persisted bytes or responses (pinned by
 * tests/determinism_test.cpp; the scalesim_lint
 * `unordered-iteration-to-output` check keeps it that way).
 */

#ifndef SCALESIM_SERVE_CACHE_HH
#define SCALESIM_SERVE_CACHE_HH

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>

#include "check/thread_safety.hpp"

namespace scalesim::obs
{
class StatsRegistry;
}

namespace scalesim::serve
{

/** Monotonic counters describing cache behavior (sim.cache.*). */
struct CacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t inserts = 0;
    std::uint64_t evictions = 0;
    /** Entries accepted from a persisted cache file. */
    std::uint64_t loadedEntries = 0;
    /** Persisted entries rejected (bad checksum, truncation, ...). */
    std::uint64_t loadRejected = 0;
    /** Current payload bytes held (excludes per-entry overhead). */
    std::uint64_t bytes = 0;
    std::uint64_t entries = 0;

    double
    hitRate() const
    {
        const std::uint64_t lookups = hits + misses;
        return lookups ? static_cast<double>(hits) / lookups : 0.0;
    }
};

/** Thread-safe LRU byte-budget cache; see file comment. */
class LayerResultCache
{
  public:
    /** `budgetBytes` caps held payload bytes; 0 means unlimited. */
    explicit LayerResultCache(std::uint64_t budgetBytes = 0)
        : budgetBytes_(budgetBytes)
    {
    }

    /**
     * Look up a key; on hit, copies the payload into `payload`,
     * refreshes LRU order, and counts a hit. Counts a miss otherwise.
     */
    bool lookup(std::uint64_t key, std::string& payload)
        SIM_EXCLUDES(mutex_);

    /**
     * Insert (or refresh) a payload. An entry larger than the whole
     * budget is not inserted (it would immediately evict everything);
     * otherwise LRU entries are evicted until the budget holds.
     */
    void insert(std::uint64_t key, std::string payload)
        SIM_EXCLUDES(mutex_);

    CacheStats stats() const SIM_EXCLUDES(mutex_);

    /**
     * Register sim.cache.* counters into a registry. Deliberately NOT
     * part of any run/sweep result registry: hit/miss counts differ
     * between cold and warm evaluation of the same request, and result
     * registries are required to be byte-identical either way.
     */
    void registerStats(obs::StatsRegistry& reg,
                       const std::string& prefix = "sim.cache") const;

    /**
     * Persist every entry to `path` (atomic: temp file + rename).
     * Format: magic + version, then per-entry [key, size, payload,
     * FNV-1a(payload)]. Returns false on I/O failure.
     */
    bool save(const std::string& path) const SIM_EXCLUDES(mutex_);

    /**
     * Load entries persisted by save() on top of the current contents.
     * Corruption-tolerant: stops at the first short read, checksum
     * mismatch, or absurd size, keeping the valid prefix and counting
     * the rest as loadRejected. A missing file is just a cold start.
     */
    bool load(const std::string& path) SIM_EXCLUDES(mutex_);

    void clear() SIM_EXCLUDES(mutex_);

  private:
    struct Entry
    {
        std::string payload;
        /** Position in lru_ (front = most recently used). */
        std::list<std::uint64_t>::iterator lruPos;
    };

    /** Evict LRU entries until bytes_ fits the budget (lock held). */
    void evictToBudget() SIM_REQUIRES(mutex_);

    mutable CheckedMutex mutex_;
    /** Immutable after construction, so safely read without the lock. */
    std::uint64_t budgetBytes_;
    std::uint64_t bytes_ SIM_GUARDED_BY(mutex_) = 0;
    std::list<std::uint64_t> lru_ SIM_GUARDED_BY(mutex_);
    std::unordered_map<std::uint64_t, Entry> entries_
        SIM_GUARDED_BY(mutex_);
    CacheStats stats_ SIM_GUARDED_BY(mutex_);
};

} // namespace scalesim::serve

#endif // SCALESIM_SERVE_CACHE_HH
