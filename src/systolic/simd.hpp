/**
 * @file
 * Runtime-dispatched SIMD kernels for the trace hot path. The fold
 * cache replays a fold by adding one constant delta to a flat Addr
 * arena — a pure streaming add that vectorizes perfectly. The kernel
 * is selected once at startup: AVX2 (4 x 64-bit lanes) when the CPU
 * supports it, otherwise a portable scalar loop. Both produce
 * bit-identical results (unsigned wraparound addition), which the
 * fold-cache golden tests pin by running each backend explicitly.
 */

#ifndef SCALESIM_SYSTOLIC_SIMD_HH
#define SCALESIM_SYSTOLIC_SIMD_HH

#include <cstddef>

#include "common/types.hpp"

namespace scalesim::systolic::simd
{

/** Available add-constant kernel implementations. */
enum class Backend
{
    Scalar,
    Avx2,
};

/** Backend the next addConstant() call will use. */
Backend activeBackend();

/** Human-readable name of the active backend ("scalar"/"avx2"). */
const char* backendName();

/** True when `backend` can run on this machine. */
bool backendSupported(Backend backend);

/**
 * Force a specific backend (tests / --no-simd style overrides).
 * fatal() when the backend is not supported on this machine.
 */
void setBackend(Backend backend);

/** Re-run CPU detection and select the best supported backend. */
void resetBackend();

/**
 * dst[i] = src[i] + delta for i in [0, n). Two's-complement Addr
 * wraparound realizes signed shifts. `src == dst` is allowed; other
 * overlap is not.
 */
void addConstant(const Addr* src, Addr* dst, std::size_t n, Addr delta);

} // namespace scalesim::systolic::simd

#endif // SCALESIM_SYSTOLIC_SIMD_HH
