/**
 * @file
 * Quickstart: simulate one convolution layer on a 32x32 weight-
 * stationary systolic array with every v3 feature enabled, and print
 * the four report files to stdout. Start here to learn the API.
 */

#include <iostream>

#include "common/workloads.hpp"
#include "core/simulator.hpp"

using namespace scalesim;

int
main()
{
    // 1. Describe the accelerator. Everything here can also come from
    //    an INI file via SimConfig::load("scale.cfg").
    SimConfig cfg;
    cfg.runName = "quickstart";
    cfg.arrayRows = 32;
    cfg.arrayCols = 32;
    cfg.dataflow = Dataflow::WeightStationary;
    cfg.mode = SimMode::Trace;       // per-cycle demand generation
    cfg.memory.ifmapSramKb = 256;
    cfg.memory.filterSramKb = 256;
    cfg.memory.ofmapSramKb = 128;
    cfg.sparsity.enabled = true;     // honor N:M layer annotations
    cfg.dram.enabled = true;         // detailed DDR4 model
    cfg.dram.tech = "DDR4_2400";
    cfg.dram.channels = 2;
    cfg.layout.enabled = true;       // bank-conflict modeling
    cfg.energy.enabled = true;       // Accelergy-style energy
    core::Simulator sim(cfg);

    // 2. Describe the workload: one ResNet-style conv layer (dense)
    //    and one 2:4-sparse GEMM layer.
    Topology topo;
    topo.name = "quickstart";
    topo.layers.push_back(
        LayerSpec::conv("conv3x3", 56, 56, 3, 3, 64, 64, 1));
    LayerSpec fc = LayerSpec::gemm("fc_sparse", 64, 256, 512);
    fc.sparseN = 2;
    fc.sparseM = 4;
    topo.layers.push_back(fc);

    // 3. Run and inspect.
    const core::RunResult run = sim.run(topo);
    std::cout << "== " << run.runName << " on " << run.workload
              << " ==\n"
              << "total cycles:   " << run.totalCycles << "\n"
              << "compute cycles: " << run.computeCycles << "\n"
              << "stall cycles:   " << run.stallCycles << "\n"
              << "DRAM row hit rate: " << run.dramStats.rowHitRate()
              << "\n"
              << "energy (uJ):    " << run.totalEnergy.totalUj()
              << "\n"
              << "avg power (W):  " << run.avgPowerW << "\n\n";

    std::cout << "-- COMPUTE_REPORT.csv --\n";
    run.writeComputeReport(std::cout);
    std::cout << "\n-- BANDWIDTH_REPORT.csv --\n";
    run.writeBandwidthReport(std::cout);
    std::cout << "\n-- SPARSE_REPORT.csv --\n";
    run.writeSparseReport(std::cout);
    std::cout << "\n-- ENERGY_REPORT.csv --\n";
    run.writeEnergyReport(std::cout);
    return 0;
}
