/**
 * @file
 * scalesim_lint — the repo's domain-specific determinism linter.
 *
 * The simulator's standing invariant is bit-identical, cycle-accurate
 * results on every host, under every locale, for every worker count.
 * Generic tooling (clang-tidy, TSan, fuzzers) catches pieces of that
 * probabilistically; this tool encodes the repo's own determinism
 * rules as named, suppressible, compile-free checks that run over the
 * source text in CI and as a ctest:
 *
 *   locale-parse
 *       atoi/atof/strtod/sto{i,d,...}/sscanf and stream-extraction
 *       into a double honor LC_NUMERIC; under de_DE "0.125" parses
 *       as 0 (the PR 9 strtod bug). All number parsing outside
 *       src/common/parse.* must go through scalesim::parse*.
 *   unordered-iteration-to-output
 *       range-for / .begin() iteration over a std::unordered_map/set
 *       in a file that writes stats, traces, JSON, or persisted bytes
 *       — hash iteration order is implementation-defined and leaks
 *       into "byte-identical" outputs.
 *   raw-time-or-rand
 *       rand()/srand(), time(nullptr), std::random_device: wall-clock
 *       and hardware entropy have no place in simulation results; use
 *       scalesim::Rng (seeded xoshiro256**) and simulated cycles.
 *   pointer-order
 *       ordering containers keyed on pointers or casting pointers to
 *       uintptr_t: allocation addresses differ run to run, so any
 *       pointer-derived order is nondeterministic.
 *   naked-mutex
 *       a std::mutex/CheckedMutex member with no SIM_GUARDED_BY /
 *       SIM_PT_GUARDED_BY / SIM_REQUIRES user in the same file: either
 *       the mutex guards nothing (delete it) or the guarded state is
 *       not annotated for clang's thread-safety analysis (annotate
 *       it — see src/check/thread_safety.hpp).
 *
 * Suppression: a comment `// scalesim-lint: allow(check-name)` (or
 * `allow(a, b)`) suppresses those checks on its own line and on the
 * line directly below — so both trailing and line-above placement
 * work. Comments and string literals are scrubbed before matching, so
 * patterns inside them never fire.
 *
 * Exit codes: 0 clean, 1 findings reported, 2 usage error.
 */

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iostream>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace
{

namespace fs = std::filesystem;

constexpr const char* kCheckNames[] = {
    "locale-parse",
    "unordered-iteration-to-output",
    "raw-time-or-rand",
    "pointer-order",
    "naked-mutex",
};

struct Finding
{
    std::string file;
    std::size_t line = 0;
    std::string check;
    std::string message;

    bool
    operator<(const Finding& o) const
    {
        if (file != o.file)
            return file < o.file;
        if (line != o.line)
            return line < o.line;
        return check < o.check;
    }
};

/** One source file with comments/literals blanked out. */
struct ScrubbedFile
{
    std::string path;
    /** Scrubbed source, 0-indexed by line. */
    std::vector<std::string> lines;
    /** line (1-based) -> checks allowed on that line. */
    std::map<std::size_t, std::set<std::string>> allow;

    bool
    suppressed(std::size_t line, const std::string& check) const
    {
        auto it = allow.find(line);
        return it != allow.end()
            && (it->second.count(check) || it->second.count("*"));
    }

    /** Whole scrubbed text joined back (for multi-line matching). */
    std::string
    joined() const
    {
        std::string out;
        for (const auto& l : lines) {
            out += l;
            out += '\n';
        }
        return out;
    }

    /** 1-based line of a byte offset into joined(). */
    std::size_t
    lineOfOffset(std::size_t offset) const
    {
        std::size_t line = 1, pos = 0;
        for (const auto& l : lines) {
            pos += l.size() + 1;
            if (offset < pos)
                return line;
            ++line;
        }
        return lines.empty() ? 1 : lines.size();
    }
};

/**
 * Record an `allow(...)` directive found in a comment: it covers the
 * comment's own line and the line directly below it.
 */
void
recordAllows(ScrubbedFile& file, const std::string& comment,
             std::size_t line)
{
    static const std::regex directive(
        R"(scalesim-lint\s*:\s*allow\s*\(([^)]*)\))");
    std::smatch m;
    if (!std::regex_search(comment, m, directive))
        return;
    std::stringstream names(m[1].str());
    std::string name;
    while (std::getline(names, name, ',')) {
        const auto first = name.find_first_not_of(" \t");
        if (first == std::string::npos)
            continue;
        const auto last = name.find_last_not_of(" \t");
        const std::string trimmed = name.substr(first, last - first + 1);
        file.allow[line].insert(trimmed);
        file.allow[line + 1].insert(trimmed);
    }
}

/**
 * Blank comments, string literals, and char literals (keeping line
 * structure) so checks only see code. Comments are parsed for
 * suppression directives on the way out.
 */
ScrubbedFile
scrub(const std::string& path, const std::string& text)
{
    ScrubbedFile out;
    out.path = path;

    enum class State
    {
        Code,
        LineComment,
        BlockComment,
        String,
        Char,
        RawString,
    };
    State state = State::Code;
    std::string scrubbed;
    scrubbed.reserve(text.size());
    std::string comment;       // text of the comment in progress
    std::size_t commentLine = 1;
    std::string rawDelim;      // )delim" terminator of a raw string
    std::size_t line = 1;

    auto flushComment = [&] {
        recordAllows(out, comment, commentLine);
        comment.clear();
    };

    for (std::size_t i = 0; i < text.size(); ++i) {
        const char c = text[i];
        const char next = i + 1 < text.size() ? text[i + 1] : '\0';
        switch (state) {
        case State::Code:
            if (c == '/' && next == '/') {
                state = State::LineComment;
                comment.clear();
                commentLine = line;
                scrubbed += "  ";
                ++i;
            } else if (c == '/' && next == '*') {
                state = State::BlockComment;
                comment.clear();
                commentLine = line;
                scrubbed += "  ";
                ++i;
            } else if (c == 'R' && next == '"'
                       && (i == 0
                           || (!std::isalnum(
                                   static_cast<unsigned char>(
                                       text[i - 1]))
                               && text[i - 1] != '_'))) {
                // Raw string R"delim( ... )delim"
                const std::size_t open = text.find('(', i + 2);
                if (open == std::string::npos) {
                    scrubbed += c;
                    break;
                }
                rawDelim = ")" + text.substr(i + 2, open - (i + 2))
                    + "\"";
                state = State::RawString;
                // Blank the whole R"delim( intro (same byte count).
                scrubbed.append(open - i + 1, ' ');
                i = open; // consumed through the '('
            } else if (c == '"') {
                state = State::String;
                scrubbed += '"';
            } else if (c == '\'') {
                // A quote directly between digits/hex is a C++14
                // digit separator (1'000'000), not a char literal.
                const bool separator = i > 0
                    && std::isalnum(
                        static_cast<unsigned char>(text[i - 1]))
                    && std::isalnum(static_cast<unsigned char>(next));
                if (separator) {
                    scrubbed += '\'';
                } else {
                    state = State::Char;
                    scrubbed += '\'';
                }
            } else {
                scrubbed += c;
            }
            break;
        case State::LineComment:
            if (c == '\n') {
                flushComment();
                state = State::Code;
                scrubbed += '\n';
            } else {
                comment += c;
                scrubbed += ' ';
            }
            break;
        case State::BlockComment:
            if (c == '*' && next == '/') {
                flushComment();
                state = State::Code;
                scrubbed += "  ";
                ++i;
            } else if (c == '\n') {
                // Multi-line comment: directives bind to the line
                // they are written on, so flush per line.
                flushComment();
                commentLine = line + 1;
                scrubbed += '\n';
            } else {
                comment += c;
                scrubbed += ' ';
            }
            break;
        case State::String:
            if (c == '\\' && next != '\0') {
                scrubbed += "  ";
                ++i;
            } else if (c == '"') {
                state = State::Code;
                scrubbed += '"';
            } else if (c == '\n') {
                scrubbed += '\n'; // unterminated; keep lines aligned
                state = State::Code;
            } else {
                scrubbed += ' ';
            }
            break;
        case State::Char:
            if (c == '\\' && next != '\0') {
                scrubbed += "  ";
                ++i;
            } else if (c == '\'') {
                state = State::Code;
                scrubbed += '\'';
            } else if (c == '\n') {
                scrubbed += '\n';
                state = State::Code;
            } else {
                scrubbed += ' ';
            }
            break;
        case State::RawString:
            if (text.compare(i, rawDelim.size(), rawDelim) == 0) {
                state = State::Code;
                scrubbed.append(rawDelim.size(), ' ');
                i += rawDelim.size() - 1;
            } else if (c == '\n') {
                scrubbed += '\n';
            } else {
                scrubbed += ' ';
            }
            break;
        }
        if (c == '\n')
            ++line;
    }
    if (state == State::LineComment || state == State::BlockComment)
        flushComment();

    std::stringstream ss(scrubbed);
    std::string one;
    while (std::getline(ss, one))
        out.lines.push_back(one);
    return out;
}

void
forEachMatch(const ScrubbedFile& file, const std::regex& re,
             const std::function<void(std::size_t line,
                                      const std::smatch&)>& fn)
{
    for (std::size_t i = 0; i < file.lines.size(); ++i) {
        auto begin = std::sregex_iterator(file.lines[i].begin(),
                                          file.lines[i].end(), re);
        for (auto it = begin; it != std::sregex_iterator(); ++it)
            fn(i + 1, *it);
    }
}

void
addFinding(std::vector<Finding>& findings, const ScrubbedFile& file,
           std::size_t line, const std::string& check,
           const std::string& message)
{
    if (file.suppressed(line, check))
        return;
    findings.push_back({file.path, line, check, message});
}

// --------------------------------------------------------------------
// Check: locale-parse
// --------------------------------------------------------------------

void
checkLocaleParse(const ScrubbedFile& file,
                 std::vector<Finding>& findings)
{
    const std::string check = "locale-parse";
    // common/parse.* is the blessed locale-free implementation.
    if (file.path.find("common/parse.") != std::string::npos)
        return;

    static const std::regex call(
        R"((?:^|[^\w.:>])((?:std\s*::\s*)?)"
        R"((atoi|atol|atoll|atof|strtod|strtof|strtold|sscanf|vsscanf)"
        R"(|stoi|stol|stoll|stoul|stoull|stof|stod|stold))\s*\()");
    forEachMatch(file, call, [&](std::size_t line,
                                 const std::smatch& m) {
        addFinding(findings, file, line, check,
                   m[2].str()
                       + "() honors LC_NUMERIC; use scalesim::parse* "
                         "(common/parse.hpp) for locale-independent "
                         "parsing");
    });

    // Stream extraction into a floating variable also honors the
    // locale. Heuristic: names declared double/float in this file,
    // appearing as the target of operator>>.
    static const std::regex floatDecl(
        R"(\b(?:double|float)\s+([A-Za-z_]\w*)\s*(?:[=;,)\]]|$))");
    std::set<std::string> floatVars;
    forEachMatch(file, floatDecl,
                 [&](std::size_t, const std::smatch& m) {
                     floatVars.insert(m[1].str());
                 });
    if (floatVars.empty())
        return;
    static const std::regex extract(R"(>>\s*([A-Za-z_]\w*))");
    forEachMatch(file, extract, [&](std::size_t line,
                                    const std::smatch& m) {
        if (!floatVars.count(m[1].str()))
            return;
        addFinding(findings, file, line, check,
                   "stream extraction into floating-point variable '"
                       + m[1].str()
                       + "' honors LC_NUMERIC; use "
                         "scalesim::parseDouble instead");
    });
}

// --------------------------------------------------------------------
// Check: unordered-iteration-to-output
// --------------------------------------------------------------------

/**
 * Names of variables/members declared as std::unordered_{map,set} in
 * this file, found by matching the template argument brackets.
 */
std::set<std::string>
unorderedNames(const std::string& text)
{
    std::set<std::string> names;
    static const std::regex decl(R"(\bunordered_(?:map|set)\s*<)");
    for (auto it = std::sregex_iterator(text.begin(), text.end(), decl);
         it != std::sregex_iterator(); ++it) {
        std::size_t pos = static_cast<std::size_t>(it->position())
            + it->length();
        int depth = 1;
        while (pos < text.size() && depth > 0) {
            if (text[pos] == '<')
                ++depth;
            else if (text[pos] == '>')
                --depth;
            ++pos;
        }
        // Skip whitespace, then expect the declared name.
        while (pos < text.size()
               && std::isspace(static_cast<unsigned char>(text[pos])))
            ++pos;
        std::size_t start = pos;
        while (pos < text.size()
               && (std::isalnum(static_cast<unsigned char>(text[pos]))
                   || text[pos] == '_'))
            ++pos;
        if (pos > start)
            names.insert(text.substr(start, pos - start));
    }
    return names;
}

void
checkUnorderedIteration(const ScrubbedFile& file,
                        std::vector<Finding>& findings)
{
    const std::string check = "unordered-iteration-to-output";
    const std::string text = file.joined();

    // Only files that produce ordered artifacts (stats, traces, JSON,
    // persisted bytes) can leak hash order into outputs.
    static const std::regex outputMarker(
        R"(\b(?:ofstream|fopen|fprintf|fputs|fwrite|JsonWriter)"
        R"(|StatsRegistry|registerStats|writeStats|writeJson)"
        R"(|writeChromeTrace|save|dump)\w*\b)");
    if (!std::regex_search(text, outputMarker))
        return;

    const std::set<std::string> names = unorderedNames(text);
    if (names.empty())
        return;

    for (const std::string& name : names) {
        const std::regex iter(
            R"(\bfor\s*\([^;()]*:\s*(?:this->)?()" + name
            + R"()\s*\)|\b()" + name
            + R"()\s*\.\s*c?r?begin\s*\(\s*\))");
        forEachMatch(file, iter, [&](std::size_t line,
                                     const std::smatch&) {
            addFinding(findings, file, line, check,
                       "iteration over unordered container '" + name
                           + "' in an output-writing file: hash order "
                             "is nondeterministic; iterate a sorted "
                             "or insertion-order structure instead");
        });
    }
}

// --------------------------------------------------------------------
// Check: raw-time-or-rand
// --------------------------------------------------------------------

void
checkRawTimeOrRand(const ScrubbedFile& file,
                   std::vector<Finding>& findings)
{
    const std::string check = "raw-time-or-rand";
    static const std::regex randCall(
        R"((?:^|[^\w.:>])(?:std\s*::\s*)?(s?rand)\s*\()");
    forEachMatch(file, randCall, [&](std::size_t line,
                                     const std::smatch& m) {
        addFinding(findings, file, line, check,
                   m[1].str()
                       + "() is unseeded global state; use "
                         "scalesim::Rng (common/rng.hpp) for "
                         "reproducible streams");
    });
    static const std::regex timeCall(
        R"((?:^|[^\w.:>])(?:std\s*::\s*)?time\s*\()"
        R"(\s*(?:nullptr|NULL|0)\s*\))");
    forEachMatch(file, timeCall, [&](std::size_t line,
                                     const std::smatch&) {
        addFinding(findings, file, line, check,
                   "wall-clock time(...) in a simulation path breaks "
                   "reproducibility; derive timestamps from simulated "
                   "cycles or take them as input");
    });
    static const std::regex randomDevice(R"(\brandom_device\b)");
    forEachMatch(file, randomDevice, [&](std::size_t line,
                                         const std::smatch&) {
        addFinding(findings, file, line, check,
                   "std::random_device is hardware entropy; seed "
                   "scalesim::Rng with a fixed or configured seed "
                   "instead");
    });
}

// --------------------------------------------------------------------
// Check: pointer-order
// --------------------------------------------------------------------

void
checkPointerOrder(const ScrubbedFile& file,
                  std::vector<Finding>& findings)
{
    const std::string check = "pointer-order";
    static const std::regex ptrKey(
        R"(\b(?:unordered_)?(?:multi)?(?:map|set)\s*<\s*)"
        R"((?:const\s+)?[A-Za-z_][\w:]*\s*\*)");
    forEachMatch(file, ptrKey, [&](std::size_t line,
                                   const std::smatch&) {
        addFinding(findings, file, line, check,
                   "container keyed on a pointer: allocation addresses "
                   "differ run to run, so iteration/ordering is "
                   "nondeterministic; key on a stable id instead");
    });
    static const std::regex ptrCast(
        R"(reinterpret_cast\s*<\s*(?:std\s*::\s*)?u?intptr_t\s*>)");
    forEachMatch(file, ptrCast, [&](std::size_t line,
                                    const std::smatch&) {
        addFinding(findings, file, line, check,
                   "pointer-to-integer cast: address-derived values "
                   "(hashes, sort keys) are nondeterministic across "
                   "runs");
    });
    static const std::regex ptrLess(R"(\bless\s*<[^<>]*\*\s*>)");
    forEachMatch(file, ptrLess, [&](std::size_t line,
                                    const std::smatch&) {
        addFinding(findings, file, line, check,
                   "std::less over pointers orders by address; use a "
                   "stable key");
    });
}

// --------------------------------------------------------------------
// Check: naked-mutex
// --------------------------------------------------------------------

void
checkNakedMutex(const ScrubbedFile& file,
                std::vector<Finding>& findings)
{
    const std::string check = "naked-mutex";
    const std::string text = file.joined();
    static const std::regex decl(
        R"(\b(?:mutable\s+)?(?:std\s*::\s*mutex|(?:scalesim\s*::\s*)?)"
        R"(CheckedMutex)\s+([A-Za-z_]\w*)\s*;)");
    forEachMatch(file, decl, [&](std::size_t line,
                                 const std::smatch& m) {
        const std::string name = m[1].str();
        const std::regex user(
            R"(SIM_(?:PT_)?(?:GUARDED_BY|REQUIRES)\s*\(\s*)"
            R"((?:this->)?)"
            + name + R"(\b)");
        if (std::regex_search(text, user))
            return;
        addFinding(findings, file, line, check,
                   "mutex '" + name
                       + "' has no SIM_GUARDED_BY/SIM_REQUIRES user "
                         "in this file: annotate the state it guards "
                         "(check/thread_safety.hpp) or delete it");
    });
}

// --------------------------------------------------------------------
// Driver
// --------------------------------------------------------------------

bool
lintableFile(const fs::path& path)
{
    static const std::set<std::string> exts = {".hpp", ".cpp", ".h",
                                               ".cc",  ".hh",  ".cxx"};
    return exts.count(path.extension().string()) != 0;
}

void
printUsage(std::ostream& out)
{
    out << "usage: scalesim_lint [--list-checks] [--check NAME]... "
           "[--exclude SUBSTR]... <path>...\n"
           "  paths are files or directories (recursed for "
           ".hpp/.cpp/.h/.cc/.hh/.cxx)\n"
           "  'fixtures', 'corpus', and 'build' path components are "
           "excluded by default when recursing\n"
           "  suppress one line with: // scalesim-lint: "
           "allow(check-name)\n"
           "exit codes: 0 clean, 1 findings, 2 usage error\n";
}

int
usageError(const std::string& message)
{
    std::cerr << "scalesim_lint: " << message << "\n";
    printUsage(std::cerr);
    return 2;
}

} // namespace

int
main(int argc, char** argv)
{
    std::set<std::string> enabled;
    std::vector<std::string> excludes = {"fixtures", "corpus", "build"};
    std::vector<std::string> roots;
    const std::set<std::string> known(std::begin(kCheckNames),
                                      std::end(kCheckNames));

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char* {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        if (arg == "--list-checks") {
            for (const char* name : kCheckNames)
                std::cout << name << "\n";
            return 0;
        } else if (arg == "--check") {
            const char* name = value();
            if (name == nullptr || !known.count(name))
                return usageError("--check expects one of the names "
                                  "from --list-checks");
            enabled.insert(name);
        } else if (arg == "--exclude") {
            const char* sub = value();
            if (sub == nullptr)
                return usageError("--exclude expects a substring");
            excludes.push_back(sub);
        } else if (arg == "-h" || arg == "--help") {
            printUsage(std::cout);
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            return usageError("unknown option " + arg);
        } else {
            roots.push_back(arg);
        }
    }
    if (roots.empty())
        return usageError("no paths given");
    if (enabled.empty())
        enabled = known;

    // Excludes apply while recursing directories only: a file named
    // explicitly on the command line is always scanned (that is how
    // the self-tests point the tool at its own fixtures).
    const auto excluded = [&](const std::string& path) {
        return std::any_of(excludes.begin(), excludes.end(),
                           [&](const std::string& sub) {
                               return path.find(sub)
                                   != std::string::npos;
                           });
    };
    std::vector<std::string> files;
    for (const std::string& root : roots) {
        std::error_code ec;
        const fs::file_status st = fs::status(root, ec);
        if (ec || !fs::exists(st))
            return usageError("no such path: " + root);
        if (fs::is_directory(st)) {
            for (fs::recursive_directory_iterator it(root, ec), end;
                 !ec && it != end; it.increment(ec)) {
                if (it->is_regular_file() && lintableFile(it->path())
                    && !excluded(it->path().generic_string()))
                    files.push_back(it->path().generic_string());
            }
        } else {
            files.push_back(fs::path(root).generic_string());
        }
    }
    // Directory iteration order is unspecified; sort so output (and
    // this tool's own exit status narration) is deterministic.
    std::sort(files.begin(), files.end());
    files.erase(std::unique(files.begin(), files.end()), files.end());

    std::vector<Finding> findings;
    std::size_t scanned = 0;
    for (const std::string& path : files) {
        std::ifstream in(path, std::ios::binary);
        if (!in) {
            std::cerr << "scalesim_lint: cannot read " << path << "\n";
            return 2;
        }
        std::stringstream buffer;
        buffer << in.rdbuf();
        const ScrubbedFile scrubbed = scrub(path, buffer.str());
        ++scanned;
        if (enabled.count("locale-parse"))
            checkLocaleParse(scrubbed, findings);
        if (enabled.count("unordered-iteration-to-output"))
            checkUnorderedIteration(scrubbed, findings);
        if (enabled.count("raw-time-or-rand"))
            checkRawTimeOrRand(scrubbed, findings);
        if (enabled.count("pointer-order"))
            checkPointerOrder(scrubbed, findings);
        if (enabled.count("naked-mutex"))
            checkNakedMutex(scrubbed, findings);
    }

    std::sort(findings.begin(), findings.end());
    for (const Finding& f : findings) {
        std::cout << f.file << ":" << f.line << ": [" << f.check
                  << "] " << f.message << "\n";
    }
    std::cerr << "scalesim_lint: " << findings.size()
              << " finding(s) in " << scanned << " file(s) scanned\n";
    return findings.empty() ? 0 : 1;
}
