/**
 * @file
 * Ablation: prefetch depth in the double-buffered scratchpad. Depth 1
 * is SCALE-Sim's classic double buffering; deeper prefetch trades
 * resident SRAM share (1/(depth+1)) for more latency hiding. Swept
 * against DRAM latency via the core:memory clock ratio.
 */

#include <algorithm>

#include "bench_util.hpp"
#include "common/log.hpp"
#include "common/workloads.hpp"
#include "core/simulator.hpp"

using namespace scalesim;

namespace
{

Cycle
run(std::uint32_t depth, double core_mhz)
{
    SimConfig cfg;
    cfg.arrayRows = cfg.arrayCols = 32;
    cfg.dataflow = Dataflow::WeightStationary;
    cfg.mode = SimMode::Analytical;
    cfg.memory.prefetchDepth = depth;
    cfg.dram.enabled = true;
    cfg.dram.channels = 4;
    cfg.dram.coreClockMhz = core_mhz;
    cfg.memory.issuePerCycle = 4;
    core::Simulator sim(cfg);
    return sim.run(workloads::resnet18Prefix(10)).totalCycles;
}

} // namespace

int
main()
{
    setQuiet(true);
    std::printf("=== Ablation: prefetch depth (double-buffering "
                "generalization) ===\n");
    benchutil::Table table({12, 14, 14, 14, 14});
    table.row({"core clock", "depth 1", "depth 2", "depth 4",
               "best gain"});
    table.rule();
    bool double_buffering_sufficient = true;
    for (double mhz : {1000.0, 2000.0, 4000.0}) {
        const Cycle d1 = run(1, mhz);
        const Cycle d2 = run(2, mhz);
        const Cycle d4 = run(4, mhz);
        const Cycle best = std::min({d1, d2, d4});
        if (best + best / 100 < d1)
            double_buffering_sufficient = false;
        table.row({benchutil::fmt("%.0f MHz", mhz),
                   benchutil::num(d1), benchutil::num(d2),
                   benchutil::num(d4),
                   benchutil::fmt("%.1f%%",
                                  100.0 * (1.0 - static_cast<double>(
                                               best) / d1))});
    }
    table.rule();
    std::printf("classic double buffering (depth 1) is within 1%% of "
                "the best depth everywhere: %s\n",
                double_buffering_sufficient ? "yes" : "NO");
    std::printf("finding: with fold-uniform prefetch times the "
                "prefetcher is serialized on memory bandwidth, so "
                "extra depth only shrinks the resident SRAM share — "
                "the design choice SCALE-Sim's double-buffered "
                "scratchpad bakes in is justified.\n");
    return 0;
}
