/**
 * @file
 * Unit tests for the common substrate: types, Table-II mapping, CSV
 * and INI parsing, topology loading, built-in workloads, and the RNG.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/config.hpp"
#include "common/csv.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"
#include "common/topology.hpp"
#include "systolic/mapping.hpp"
#include "common/types.hpp"
#include "common/workloads.hpp"

using namespace scalesim;

TEST(CeilDiv, Basics)
{
    EXPECT_EQ(ceilDiv(10, 2), 5u);
    EXPECT_EQ(ceilDiv(11, 2), 6u);
    EXPECT_EQ(ceilDiv(1, 7), 1u);
    EXPECT_EQ(ceilDiv(0, 7), 0u);
    EXPECT_EQ(ceilDiv(7, 7), 1u);
    EXPECT_EQ(ceilDiv(8, 7), 2u);
}

TEST(Dataflow, RoundTrip)
{
    for (auto df : {Dataflow::OutputStationary,
                    Dataflow::WeightStationary,
                    Dataflow::InputStationary}) {
        EXPECT_EQ(dataflowFromString(toString(df)), df);
    }
    EXPECT_EQ(dataflowFromString("OS"), Dataflow::OutputStationary);
    EXPECT_EQ(dataflowFromString("Ws"), Dataflow::WeightStationary);
    EXPECT_THROW(dataflowFromString("xx"), std::invalid_argument);
}

TEST(Dataflow, TableTwoMapping)
{
    const GemmDims gemm{100, 200, 300};
    // Paper Table II: IS = (K, N, M), WS = (K, M, N), OS = (M, N, K).
    const MappedDims is = mapGemm(gemm, Dataflow::InputStationary);
    EXPECT_EQ(is.sr, 300u);
    EXPECT_EQ(is.sc, 200u);
    EXPECT_EQ(is.t, 100u);
    const MappedDims ws = mapGemm(gemm, Dataflow::WeightStationary);
    EXPECT_EQ(ws.sr, 300u);
    EXPECT_EQ(ws.sc, 100u);
    EXPECT_EQ(ws.t, 200u);
    const MappedDims os = mapGemm(gemm, Dataflow::OutputStationary);
    EXPECT_EQ(os.sr, 100u);
    EXPECT_EQ(os.sc, 200u);
    EXPECT_EQ(os.t, 300u);
}

TEST(LayerSpec, ConvToGemm)
{
    // 56x56 ifmap, 3x3 filter, 64 channels, 128 filters, stride 1.
    const LayerSpec conv = LayerSpec::conv("c", 56, 56, 3, 3, 64, 128,
                                           1);
    EXPECT_EQ(conv.ofmapH(), 54u);
    EXPECT_EQ(conv.ofmapW(), 54u);
    const GemmDims g = conv.toGemm();
    EXPECT_EQ(g.m, 54u * 54u);
    EXPECT_EQ(g.k, 3u * 3u * 64u);
    EXPECT_EQ(g.n, 128u);
    EXPECT_EQ(conv.macs(), g.m * g.n * g.k);
}

TEST(LayerSpec, StridedConv)
{
    const LayerSpec conv = LayerSpec::conv("c", 224, 224, 7, 7, 3, 64,
                                           2);
    EXPECT_EQ(conv.ofmapH(), (224u - 7u) / 2u + 1u);
    EXPECT_EQ(conv.ofmapW(), 109u);
}

TEST(LayerSpec, GemmLayer)
{
    const LayerSpec fc = LayerSpec::gemm("fc", 1, 1000, 512);
    EXPECT_EQ(fc.toGemm(), (GemmDims{1, 1000, 512}));
    EXPECT_EQ(fc.macs(), 512000u);
}

TEST(Csv, SplitAndTrim)
{
    auto cells = splitCsvLine(" a , b,c ,");
    ASSERT_EQ(cells.size(), 3u);
    EXPECT_EQ(cells[0], "a");
    EXPECT_EQ(cells[1], "b");
    EXPECT_EQ(cells[2], "c");
    EXPECT_EQ(trim("  x  "), "x");
    EXPECT_EQ(trim(""), "");
}

TEST(Csv, TableParsing)
{
    std::istringstream in(
        "# comment\n"
        "Layer name, IFMAP Height, IFMAP Width\n"
        "conv1, 224, 224,\n"
        "\n"
        "conv2, 56, 56\n");
    CsvTable table = CsvTable::parse(in);
    ASSERT_EQ(table.numRows(), 2u);
    EXPECT_EQ(table.cell(0, "layer_name"), "conv1");
    EXPECT_EQ(table.cell(1, "ifmap height"), "56");
    EXPECT_EQ(table.cell(0, "missing"), "");
    EXPECT_LT(table.findColumn("nope"), 0);
}

TEST(Ini, ParseTypedValues)
{
    IniFile ini = IniFile::parseString(
        "[general]\n"
        "run_name = test_run\n"
        "; comment\n"
        "[architecture]\n"
        "ArrayHeight: 16\n"
        "ArrayWidth = 8\n"
        "Dataflow = ws\n"
        "Bandwidth = 12.5\n"
        "[sparsity]\n"
        "SparsitySupport = true\n");
    EXPECT_EQ(ini.getString("general", "run_name"), "test_run");
    EXPECT_EQ(ini.getInt("architecture", "arrayheight"), 16);
    EXPECT_EQ(ini.getInt("ARCHITECTURE", "Array_Width"), 8);
    EXPECT_DOUBLE_EQ(ini.getDouble("architecture", "Bandwidth"), 12.5);
    EXPECT_TRUE(ini.getBool("sparsity", "SparsitySupport"));
    EXPECT_FALSE(ini.has("general", "missing"));
    EXPECT_EQ(ini.getInt("nope", "nope", 42), 42);
}

TEST(Ini, MalformedLinesAreFatal)
{
    EXPECT_THROW(IniFile::parseString("[unterminated\n"), FatalError);
    EXPECT_THROW(IniFile::parseString("keywithoutvalue\n"), FatalError);
}

namespace
{

/** Expect `fn` to throw a FatalError whose message contains `needle`. */
template <typename Fn>
void
expectFatalContaining(Fn&& fn, const std::string& needle)
{
    try {
        fn();
        FAIL() << "expected FatalError mentioning '" << needle << "'";
    } catch (const FatalError& err) {
        EXPECT_NE(std::string(err.what()).find(needle),
                  std::string::npos)
            << "actual message: " << err.what();
    }
}

} // namespace

TEST(Ini, RejectsTrailingGarbageWithFileAndLine)
{
    IniFile ini = IniFile::parseString(
        "[architecture]\nArrayHeight = 32x\n", "bad.cfg");
    expectFatalContaining(
        [&] { (void)ini.getInt("architecture", "ArrayHeight"); },
        "is not an integer");
    expectFatalContaining(
        [&] { (void)ini.getInt("architecture", "ArrayHeight"); },
        "bad.cfg:2");
}

TEST(Ini, RejectsOverflowNegativeAndBadFloats)
{
    IniFile ini = IniFile::parseString(
        "[architecture]\n"
        "ArrayHeight = 99999999999999999999999\n"
        "ArrayWidth = -4\n"
        "Bandwidth = 1e999999\n"
        "IfmapSramSzkB = 5000000000\n",
        "bad.cfg");
    expectFatalContaining(
        [&] { (void)ini.getInt("architecture", "ArrayHeight"); },
        "overflows a 64-bit integer");
    expectFatalContaining(
        [&] { (void)ini.getUint("architecture", "ArrayWidth", 1); },
        "must not be negative");
    expectFatalContaining(
        [&] { (void)ini.getDouble("architecture", "Bandwidth"); },
        "is out of double range");
    expectFatalContaining(
        [&] { (void)ini.getUint32("architecture", "IfmapSramSzkB",
                                  1); },
        "overflows a 32-bit integer");
    // The same malformed values must be rejected on the fromIni path.
    EXPECT_THROW((void)SimConfig::fromIni(ini), FatalError);
}

TEST(Topology, RejectsMalformedDimensions)
{
    const auto parse = [](const char* text) {
        std::istringstream in(text);
        return Topology::parseCsv(in, "bad");
    };
    expectFatalContaining(
        [&] { parse("Layer, M, N, K,\nl0, 12, 12junk, 7,\n"); },
        "bad N value");
    expectFatalContaining(
        [&] {
            parse("Layer, M, N, K,\n"
                  "l0, 12, 99999999999999999999999, 7,\n");
        },
        "overflows");
    expectFatalContaining(
        [&] { parse("Layer, M, N, K,\nl0, -3, 4, 7,\n"); },
        "bad M value");
    expectFatalContaining(
        [&] { parse("Layer, M, N, K,\nl0, , 4, 7,\n"); },
        "missing M");
    expectFatalContaining(
        [&] {
            parse("Layer, M, N, K, SparsitySupport,\n"
                  "l0, 4, 4, 4, 9:4,\n");
        },
        "malformed sparsity ratio");
    expectFatalContaining(
        [&] {
            parse("Layer, M, N, K, SparsitySupport,\n"
                  "l0, 4, 4, 4, 1:99999999999,\n");
        },
        "out of range");
}

TEST(SimConfig, FromIniDefaultsAndOverrides)
{
    IniFile ini = IniFile::parseString(
        "[general]\nrun_name = x\nmode = analytical\n"
        "[architecture]\nArrayHeight = 64\nArrayWidth = 32\n"
        "Dataflow = os\nIfmapSramSzkB = 512\n"
        "[memory]\nDramModel = true\nTech = HBM2\nChannels = 4\n"
        "ReadQueueSize = 32\n"
        "[multicore]\nEngine = epoch\nJobs = 4\n"
        "[layout]\nLayoutModel = true\nBanks = 8\n"
        "[energy]\nEnergyModel = true\nRowSize = 16\n");
    SimConfig cfg = SimConfig::fromIni(ini);
    EXPECT_EQ(cfg.runName, "x");
    EXPECT_EQ(cfg.mode, SimMode::Analytical);
    EXPECT_EQ(cfg.arrayRows, 64u);
    EXPECT_EQ(cfg.arrayCols, 32u);
    EXPECT_EQ(cfg.numPes(), 2048u);
    EXPECT_EQ(cfg.memory.ifmapSramKb, 512u);
    EXPECT_TRUE(cfg.dram.enabled);
    EXPECT_EQ(cfg.dram.tech, "HBM2");
    EXPECT_EQ(cfg.dram.channels, 4u);
    EXPECT_EQ(cfg.dram.readQueueSize, 32u);
    EXPECT_TRUE(cfg.layout.enabled);
    EXPECT_EQ(cfg.layout.banks, 8u);
    EXPECT_TRUE(cfg.energy.enabled);
    EXPECT_EQ(cfg.energy.rowSize, 16u);
    EXPECT_EQ(cfg.multicore.engine, "epoch");
    EXPECT_EQ(cfg.multicore.jobs, 4u);
}

TEST(SimConfig, RejectsUnknownMulticoreEngine)
{
    SimConfig cfg;
    cfg.multicore.engine = "turbo";
    expectFatalContaining([&] { cfg.validate(); },
                          "Engine must be serial or epoch");
    cfg.multicore.engine = "Epoch"; // canonicalized like other knobs
    cfg.validate();
}

TEST(SparseRatio, Parsing)
{
    EXPECT_EQ(parseSparsityRatio("2:4"), std::make_pair(2u, 4u));
    EXPECT_EQ(parseSparsityRatio(""), std::make_pair(0u, 0u));
    EXPECT_EQ(parseSparsityRatio("dense"), std::make_pair(0u, 0u));
    EXPECT_THROW(parseSparsityRatio("4:2"), FatalError);
    EXPECT_THROW(parseSparsityRatio("abc"), FatalError);
}

TEST(Topology, ParseConvFormat)
{
    std::istringstream in(
        "Layer name, IFMAP Height, IFMAP Width, Filter Height, "
        "Filter Width, Channels, Num Filter, Strides, SparsitySupport\n"
        "conv1, 224, 224, 7, 7, 3, 64, 2, 2:4\n"
        "conv2, 56, 56, 3, 3, 64, 64, 1,\n");
    Topology topo = Topology::parseCsv(in, "t");
    ASSERT_EQ(topo.layers.size(), 2u);
    EXPECT_EQ(topo.layers[0].name, "conv1");
    EXPECT_EQ(topo.layers[0].sparseN, 2u);
    EXPECT_EQ(topo.layers[0].sparseM, 4u);
    EXPECT_TRUE(topo.layers[0].isSparse());
    EXPECT_FALSE(topo.layers[1].isSparse());
    EXPECT_GT(topo.totalMacs(), 0u);
}

TEST(Topology, ParseGemmFormat)
{
    std::istringstream in(
        "Layer, M, N, K\n"
        "fc1, 197, 3072, 768\n");
    Topology topo = Topology::parseCsv(in, "g");
    ASSERT_EQ(topo.layers.size(), 1u);
    EXPECT_EQ(topo.layers[0].type, LayerType::Gemm);
    EXPECT_EQ(topo.layers[0].gemmDims.n, 3072u);
}

TEST(Topology, EmptyIsFatal)
{
    std::istringstream in("Layer, M, N, K\n");
    EXPECT_THROW(Topology::parseCsv(in, "e"), FatalError);
}

TEST(Workloads, AllNamesResolve)
{
    for (const auto& name : workloads::names()) {
        Topology topo = workloads::byName(name);
        EXPECT_FALSE(topo.layers.empty()) << name;
        EXPECT_GT(topo.totalMacs(), 0u) << name;
    }
    EXPECT_THROW(workloads::byName("bogus"), FatalError);
}

TEST(Workloads, ResNet18Shape)
{
    Topology topo = workloads::resnet18();
    EXPECT_EQ(topo.layers.size(), 21u); // 20 convs + fc
    // Roughly 1.8 GMACs for ResNet-18 at 224x224.
    EXPECT_GT(topo.totalMacs(), 1'000'000'000u);
    EXPECT_LT(topo.totalMacs(), 3'000'000'000u);
}

TEST(Workloads, ResNet50LargerThanResNet18)
{
    EXPECT_GT(workloads::resnet50().totalMacs(),
              workloads::resnet18().totalMacs());
}

TEST(Workloads, VitVariantsOrdered)
{
    const auto s = workloads::vit(workloads::VitVariant::Small);
    const auto b = workloads::vit(workloads::VitVariant::Base);
    const auto l = workloads::vit(workloads::VitVariant::Large);
    EXPECT_LT(s.totalMacs(), b.totalMacs());
    EXPECT_LT(b.totalMacs(), l.totalMacs());
}

TEST(Workloads, VitFeedForwardSubset)
{
    const auto ff = workloads::vitFeedForward(
        workloads::VitVariant::Base);
    ASSERT_EQ(ff.layers.size(), 2u);
    for (const auto& layer : ff.layers)
        EXPECT_EQ(layer.repetitions, 12u);
}

TEST(Workloads, UniformSparsityAnnotation)
{
    auto topo = workloads::withUniformSparsity(workloads::resnet18(), 2,
                                               4);
    for (const auto& layer : topo.layers) {
        EXPECT_EQ(layer.sparseN, 2u);
        EXPECT_EQ(layer.sparseM, 4u);
    }
}

TEST(Workloads, ResNet18Prefix)
{
    auto topo = workloads::resnet18Prefix(6);
    EXPECT_EQ(topo.layers.size(), 6u);
}

TEST(Rng, DeterministicAndBounded)
{
    Rng a(123), b(123), c(321);
    bool diverged = false;
    for (int i = 0; i < 1000; ++i) {
        const auto va = a.next();
        EXPECT_EQ(va, b.next());
        if (va != c.next())
            diverged = true;
    }
    EXPECT_TRUE(diverged);
    Rng r(7);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_LT(r.below(17), 17u);
        const auto v = r.range(3, 9);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 9u);
        const double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Log, FormatAndFatal)
{
    EXPECT_EQ(format("x=%d y=%s", 3, "z"), "x=3 y=z");
    EXPECT_THROW(fatal("boom %d", 1), FatalError);
}

TEST(DataFiles, ShippedConfigsLoad)
{
    const std::string dir = SCALESIM_SOURCE_DIR "/configs/";
    const SimConfig example = SimConfig::load(dir
                                              + "scale_example.cfg");
    EXPECT_EQ(example.runName, "scale_example");
    EXPECT_TRUE(example.sparsity.enabled);
    EXPECT_TRUE(example.dram.enabled);
    EXPECT_TRUE(example.layout.enabled);
    EXPECT_TRUE(example.energy.enabled);
    EXPECT_EQ(example.dram.channels, 2u);

    const SimConfig tpu = SimConfig::load(dir + "google_tpu_v1.cfg");
    EXPECT_EQ(tpu.arrayRows, 256u);
    EXPECT_EQ(tpu.dataflow, Dataflow::WeightStationary);

    const SimConfig eyeriss = SimConfig::load(dir + "eyeriss.cfg");
    EXPECT_EQ(eyeriss.arrayRows, 12u);
    EXPECT_EQ(eyeriss.arrayCols, 14u);
}

TEST(DataFiles, ShippedTopologiesLoad)
{
    const std::string dir = SCALESIM_SOURCE_DIR "/topologies/";
    const Topology conv = Topology::load(dir + "conv_example.csv");
    ASSERT_EQ(conv.layers.size(), 3u);
    EXPECT_EQ(conv.layers[1].sparseN, 2u);
    EXPECT_EQ(conv.layers[1].sparseM, 4u);
    EXPECT_EQ(conv.layers[1].stride, 2u);
    EXPECT_EQ(conv.name, "conv_example");

    const Topology gemm = Topology::load(dir + "gemm_example.csv");
    ASSERT_EQ(gemm.layers.size(), 3u);
    EXPECT_EQ(gemm.layers[2].sparseM, 8u);
    EXPECT_EQ(gemm.layers[0].gemmDims.n, 2304u);
}

TEST(VectorTail, RoundTripAndParsing)
{
    for (auto tail : {VectorTail::None, VectorTail::Activation,
                      VectorTail::Softmax, VectorTail::Quantize}) {
        EXPECT_EQ(vectorTailFromString(toString(tail)), tail);
    }
    EXPECT_EQ(vectorTailFromString("relu"), VectorTail::Activation);
    EXPECT_EQ(vectorTailFromString(""), VectorTail::None);
    EXPECT_THROW(vectorTailFromString("tanhx"), std::invalid_argument);
}

TEST(Topology, VectorTailColumn)
{
    std::istringstream in(
        "Layer, M, N, K, VectorTail\n"
        "scores, 197, 197, 64, softmax\n"
        "fc, 197, 768, 3072,\n");
    Topology topo = Topology::parseCsv(in, "t");
    EXPECT_EQ(topo.layers[0].tail, VectorTail::Softmax);
    EXPECT_EQ(topo.layers[1].tail, VectorTail::None);
}

TEST(Workloads, VitCarriesVectorTails)
{
    const Topology topo = workloads::vit(workloads::VitVariant::Base);
    bool softmax_found = false;
    bool activation_found = false;
    for (const auto& layer : topo.layers) {
        if (layer.tail == VectorTail::Softmax)
            softmax_found = true;
        if (layer.tail == VectorTail::Activation)
            activation_found = true;
    }
    EXPECT_TRUE(softmax_found);
    EXPECT_TRUE(activation_found);
}

TEST(Workloads, MobileNetDepthwiseStructure)
{
    const Topology topo = workloads::mobilenetV1();
    // 1 stem + 13 dw/pw pairs + fc.
    EXPECT_EQ(topo.layers.size(), 1u + 26u + 1u);
    // MobileNetV1 is ~0.57 GMACs.
    EXPECT_GT(topo.totalMacs(), 400'000'000u);
    EXPECT_LT(topo.totalMacs(), 800'000'000u);
    // Depthwise layers are per-channel planes.
    const auto& dw1 = topo.layers[1];
    EXPECT_EQ(dw1.channels, 1u);
    EXPECT_EQ(dw1.numFilters, 1u);
    EXPECT_EQ(dw1.repetitions, 32u);
}

TEST(Batch, ScalesGemmMOnly)
{
    LayerSpec gemm = LayerSpec::gemm("g", 100, 50, 25).withBatch(4);
    EXPECT_EQ(gemm.toGemm().m, 400u);
    EXPECT_EQ(gemm.toGemm().n, 50u);
    EXPECT_EQ(gemm.toGemm().k, 25u);
    LayerSpec conv = LayerSpec::conv("c", 10, 10, 3, 3, 4, 8, 1)
                         .withBatch(3);
    EXPECT_EQ(conv.toGemm().m, 8u * 8u * 3u);
    EXPECT_EQ(conv.macs(), 3u * 64u * 36u * 8u);
}

TEST(Batch, AmortizesWeightStationaryLoads)
{
    // WS fold count is batch-independent (K x N tiles); only the
    // temporal extent grows, so batch-b cycles < b x batch-1 cycles.
    const LayerSpec layer = LayerSpec::gemm("g", 64, 128, 256);
    LayerSpec batched = layer;
    batched.batch = 8;
    const systolic::FoldGrid one(layer.toGemm(),
                                 Dataflow::WeightStationary, 32, 32);
    const systolic::FoldGrid eight(batched.toGemm(),
                                   Dataflow::WeightStationary, 32, 32);
    EXPECT_EQ(one.numFolds(), eight.numFolds());
    EXPECT_LT(eight.totalCycles(), 8 * one.totalCycles());
}

TEST(Batch, WorkloadHelperAnnotatesEveryLayer)
{
    const Topology topo = workloads::withBatch(workloads::resnet18(),
                                               4);
    for (const auto& layer : topo.layers)
        EXPECT_EQ(layer.batch, 4u);
    EXPECT_EQ(topo.totalMacs(),
              4 * workloads::resnet18().totalMacs());
}
