#include "obs/json_read.hpp"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/parse.hpp"

namespace scalesim::obs
{

const JsonValue*
JsonValue::find(const std::string& key) const
{
    if (kind != Kind::Object)
        return nullptr;
    const auto it = members.find(key);
    return it == members.end() ? nullptr : &it->second;
}

const JsonValue*
JsonValue::findPath(const std::string& path) const
{
    const JsonValue* node = this;
    std::size_t start = 0;
    while (node && start <= path.size()) {
        const std::size_t dot = path.find('.', start);
        const std::string key =
            path.substr(start, dot == std::string::npos
                                   ? std::string::npos
                                   : dot - start);
        node = node->find(key);
        if (dot == std::string::npos)
            break;
        start = dot + 1;
    }
    return node;
}

double
JsonValue::numberAt(const std::string& key, double fallback) const
{
    const JsonValue* v = find(key);
    return v && v->kind == Kind::Number ? v->number : fallback;
}

std::string
JsonValue::stringAt(const std::string& key,
                    const std::string& fallback) const
{
    const JsonValue* v = find(key);
    return v && v->kind == Kind::String ? v->text : fallback;
}

namespace
{

class Parser
{
  public:
    explicit Parser(const std::string& text) : text_(text) {}

    bool
    parse(JsonValue& out)
    {
        pos_ = 0;
        if (!parseValue(out))
            return false;
        skipWs();
        return pos_ == text_.size();
    }

  private:
    void
    skipWs()
    {
        while (pos_ < text_.size()
               && std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    bool
    consume(char c)
    {
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool
    literal(const char* word)
    {
        const std::size_t len = std::string(word).size();
        if (text_.compare(pos_, len, word) == 0) {
            pos_ += len;
            return true;
        }
        return false;
    }

    bool
    parseString(std::string& out)
    {
        skipWs();
        if (pos_ >= text_.size() || text_[pos_] != '"')
            return false;
        ++pos_;
        out.clear();
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"')
                return true;
            if (c == '\\') {
                if (pos_ >= text_.size())
                    return false;
                const char esc = text_[pos_++];
                switch (esc) {
                  case '"': out += '"'; break;
                  case '\\': out += '\\'; break;
                  case '/': out += '/'; break;
                  case 'b': out += '\b'; break;
                  case 'f': out += '\f'; break;
                  case 'n': out += '\n'; break;
                  case 'r': out += '\r'; break;
                  case 't': out += '\t'; break;
                  case 'u': {
                      for (int i = 0; i < 4; ++i) {
                          if (pos_ >= text_.size()
                              || !std::isxdigit(static_cast<unsigned char>(
                                     text_[pos_])))
                              return false;
                          ++pos_;
                      }
                      out += '?'; // placeholder; consumers don't need it
                      break;
                  }
                  default: return false;
                }
            } else if (static_cast<unsigned char>(c) < 0x20) {
                return false; // raw control characters are invalid
            } else {
                out += c;
            }
        }
        return false;
    }

    bool
    parseNumber(JsonValue& out)
    {
        const std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        if (pos_ >= text_.size()
            || !std::isdigit(static_cast<unsigned char>(text_[pos_])))
            return false;
        while (pos_ < text_.size()
               && std::isdigit(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
        if (pos_ < text_.size() && text_[pos_] == '.') {
            ++pos_;
            if (pos_ >= text_.size()
                || !std::isdigit(static_cast<unsigned char>(text_[pos_])))
                return false;
            while (pos_ < text_.size()
                   && std::isdigit(static_cast<unsigned char>(
                          text_[pos_])))
                ++pos_;
        }
        if (pos_ < text_.size()
            && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < text_.size()
                && (text_[pos_] == '+' || text_[pos_] == '-'))
                ++pos_;
            if (pos_ >= text_.size()
                || !std::isdigit(static_cast<unsigned char>(text_[pos_])))
                return false;
            while (pos_ < text_.size()
                   && std::isdigit(static_cast<unsigned char>(
                          text_[pos_])))
                ++pos_;
        }
        out.kind = JsonValue::Kind::Number;
        // The grammar above already validated the slice; parseDouble is
        // locale-independent where strtod would honor LC_NUMERIC and
        // silently mis-read "0.5" under a comma-decimal locale. An
        // out-of-range literal keeps the saturated value (±inf / ±0).
        const std::string_view slice(text_.data() + start, pos_ - start);
        parseDouble(slice, out.number);
        return true;
    }

    bool
    parseValue(JsonValue& out)
    {
        skipWs();
        if (pos_ >= text_.size())
            return false;
        const char c = text_[pos_];
        if (c == '{') {
            ++pos_;
            out.kind = JsonValue::Kind::Object;
            skipWs();
            if (consume('}'))
                return true;
            while (true) {
                std::string key;
                if (!parseString(key) || !consume(':'))
                    return false;
                JsonValue member;
                if (!parseValue(member))
                    return false;
                out.members[key] = std::move(member);
                if (consume('}'))
                    return true;
                if (!consume(','))
                    return false;
            }
        }
        if (c == '[') {
            ++pos_;
            out.kind = JsonValue::Kind::Array;
            skipWs();
            if (consume(']'))
                return true;
            while (true) {
                JsonValue item;
                if (!parseValue(item))
                    return false;
                out.items.push_back(std::move(item));
                if (consume(']'))
                    return true;
                if (!consume(','))
                    return false;
            }
        }
        if (c == '"') {
            out.kind = JsonValue::Kind::String;
            return parseString(out.text);
        }
        if (c == 't') {
            out.kind = JsonValue::Kind::Bool;
            out.boolean = true;
            return literal("true");
        }
        if (c == 'f') {
            out.kind = JsonValue::Kind::Bool;
            out.boolean = false;
            return literal("false");
        }
        if (c == 'n') {
            out.kind = JsonValue::Kind::Null;
            return literal("null");
        }
        return parseNumber(out);
    }

    const std::string& text_;
    std::size_t pos_ = 0;
};

} // namespace

bool
parseJson(const std::string& text, JsonValue& out)
{
    return Parser(text).parse(out);
}

bool
parseJsonFile(const std::string& path, JsonValue& out)
{
    std::ifstream in(path);
    if (!in)
        return false;
    std::stringstream buffer;
    buffer << in.rdbuf();
    return parseJson(buffer.str(), out);
}

} // namespace scalesim::obs
