/**
 * @file
 * Reproduces Fig. 5: total compute cycles (including memory stalls) vs
 * on-chip memory size for ResNet-18 under 1:4, 2:4 and 4:4 sparsity
 * (weight-stationary, as in the paper). Also reproduces the §IX-B
 * "Sparsity" finding: the on-chip memory a latency-constrained design
 * needs shrinks dramatically with a sparse core.
 */

#include "bench_util.hpp"
#include "common/log.hpp"
#include "common/workloads.hpp"
#include "core/simulator.hpp"

using namespace scalesim;

namespace
{

Cycle
totalCycles(std::uint64_t sram_kb, std::uint32_t n, std::uint32_t m)
{
    SimConfig cfg;
    cfg.arrayRows = 32;
    cfg.arrayCols = 32;
    cfg.dataflow = Dataflow::WeightStationary;
    cfg.mode = SimMode::Analytical;
    cfg.memory.ifmapSramKb = sram_kb / 2;
    cfg.memory.filterSramKb = sram_kb / 4;
    cfg.memory.ofmapSramKb = sram_kb / 4;
    cfg.memory.bandwidthWordsPerCycle = 16.0;
    cfg.sparsity.enabled = n != 0;
    core::Simulator sim(cfg);
    Topology topo = workloads::resnet18();
    if (n != 0)
        topo = workloads::withUniformSparsity(std::move(topo), n, m);
    return sim.run(topo).totalCycles;
}

} // namespace

int
main()
{
    setQuiet(true);
    std::printf("=== Fig. 5: total cycles (incl. stalls) vs on-chip "
                "memory, ResNet-18, WS ===\n");
    const std::uint64_t sizes_kb[] = {192, 384, 768, 1536, 3072, 6144};
    benchutil::Table table({12, 16, 16, 16});
    table.row({"SRAM", "cycles(1:4)", "cycles(2:4)", "cycles(4:4)"});
    table.rule();
    std::vector<std::vector<Cycle>> results;
    for (std::uint64_t kb : sizes_kb) {
        const Cycle c14 = totalCycles(kb, 1, 4);
        const Cycle c24 = totalCycles(kb, 2, 4);
        const Cycle c44 = totalCycles(kb, 4, 4);
        results.push_back({c14, c24, c44});
        table.row({format("%llu kB", static_cast<unsigned long long>(kb)),
                   benchutil::num(c14), benchutil::num(c24),
                   benchutil::num(c44)});
    }
    table.rule();

    // Shape checks the paper reports: more SRAM -> fewer cycles; more
    // sparsity -> fewer cycles at fixed SRAM.
    bool sram_monotone = true;
    bool sparsity_ordered = true;
    for (std::size_t i = 0; i < results.size(); ++i) {
        if (i > 0 && results[i][2] > results[i - 1][2])
            sram_monotone = false;
        if (!(results[i][0] <= results[i][1]
              && results[i][1] <= results[i][2]))
            sparsity_ordered = false;
    }
    std::printf("more SRAM never slower (4:4 column): %s\n",
                sram_monotone ? "yes" : "NO");
    std::printf("sparser is never slower at fixed SRAM: %s\n",
                sparsity_ordered ? "yes" : "NO");

    // §IX-B Sparsity: on-chip memory needed to meet a latency budget.
    const Cycle budget = results.back()[2] * 5 / 4; // 25% over best
    auto needed = [&](std::size_t col) -> std::uint64_t {
        for (std::size_t i = 0; i < results.size(); ++i) {
            if (results[i][col] <= budget)
                return sizes_kb[i];
        }
        return sizes_kb[sizeof(sizes_kb) / sizeof(sizes_kb[0]) - 1];
    };
    std::printf("SecIXb: latency budget %llu cycles -> dense(4:4) "
                "needs %llu kB, 2:4 needs %llu kB, 1:4 needs %llu kB "
                "(paper: 3 MB dense vs 768 kB with 2:4)\n",
                static_cast<unsigned long long>(budget),
                static_cast<unsigned long long>(needed(2)),
                static_cast<unsigned long long>(needed(1)),
                static_cast<unsigned long long>(needed(0)));
    return 0;
}
