/**
 * @file
 * Reproduces Fig. 3 of the paper: compute cycles vs memory footprint
 * trade-off for spatial and the two spatio-temporal partitioning
 * schemes (Eqs. 1-3) on 27 GEMM workloads (M, N, K from {1000, 5000,
 * 10000}), array sizes {8, 16, 32}^2 and core counts {16, 32, 64}.
 *
 * (a) compute-optimized Pr x Pc per scheme: report the footprint the
 *     compute-optimal choice pays — spatio-temporal should win (be
 *     smaller) on a sizable fraction of configurations.
 * (b) memory-footprint-optimized Pr x Pc: spatial should win on most.
 */

#include "bench_util.hpp"
#include "common/log.hpp"
#include "multicore/partition.hpp"

using namespace scalesim;
using namespace scalesim::multicore;

int
main()
{
    setQuiet(true);
    std::printf("=== Fig. 3: spatial vs spatio-temporal partitioning "
                "===\n");
    const std::uint64_t dims[] = {1000, 5000, 10000};
    const std::uint32_t arrays[] = {8, 16, 32};
    const std::uint64_t core_counts[] = {16, 32, 64};
    const PartitionScheme schemes[] = {
        PartitionScheme::Spatial, PartitionScheme::SpatioTemporal1,
        PartitionScheme::SpatioTemporal2};

    std::uint64_t configs = 0;
    std::uint64_t st_wins_compute_opt = 0; // Fig. 3a metric
    std::uint64_t spatial_wins_mem_opt = 0; // Fig. 3b metric

    benchutil::Table table({26, 10, 14, 14, 14, 14});
    table.row({"workload(M,N,K)/arr/cores", "scheme", "cyc(c-opt)",
               "MB(c-opt)", "cyc(m-opt)", "MB(m-opt)"});
    table.rule();

    for (std::uint64_t m : dims) {
        for (std::uint64_t n : dims) {
            for (std::uint64_t k : dims) {
                const GemmDims gemm{m, n, k};
                for (std::uint32_t arr : arrays) {
                    for (std::uint64_t cores : core_counts) {
                        ++configs;
                        PartitionEval copt[3], mopt[3];
                        for (int s = 0; s < 3; ++s) {
                            const auto evals = enumeratePartitions(
                                gemm, Dataflow::OutputStationary, arr,
                                arr, cores, schemes[s]);
                            copt[s] = bestByCycles(evals);
                            mopt[s] = bestByFootprint(evals);
                        }
                        // Fig. 3a: among the compute-optimal points of
                        // the three schemes, does a spatio-temporal one
                        // offer the least footprint?
                        std::uint64_t best_fp = copt[0].footprintWords;
                        int best_scheme = 0;
                        for (int s = 1; s < 3; ++s) {
                            if (copt[s].cycles
                                    <= copt[best_scheme].cycles
                                && copt[s].footprintWords < best_fp) {
                                best_fp = copt[s].footprintWords;
                                best_scheme = s;
                            }
                        }
                        if (best_scheme != 0)
                            ++st_wins_compute_opt;
                        // Fig. 3b: among footprint-optimal points, does
                        // spatial have the fewest cycles?
                        bool spatial_best = true;
                        for (int s = 1; s < 3; ++s) {
                            if (mopt[s].footprintWords
                                        <= mopt[0].footprintWords
                                    && mopt[s].cycles < mopt[0].cycles)
                                spatial_best = false;
                        }
                        if (spatial_best)
                            ++spatial_wins_mem_opt;

                        // Print a representative slice to keep the
                        // output readable.
                        const bool print = m == 10000 && n == 5000
                            && k == 1000 && arr == 16;
                        if (print) {
                            for (int s = 0; s < 3; ++s) {
                                table.row({format(
                                               "(%llu,%llu,%llu)/%u/%llu",
                                               static_cast<unsigned long long>(m),
                                               static_cast<unsigned long long>(n),
                                               static_cast<unsigned long long>(k),
                                               arr,
                                               static_cast<unsigned long long>(
                                                   cores)),
                                           toString(schemes[s]).substr(
                                               0, 9),
                                           benchutil::num(
                                               copt[s].cycles),
                                           benchutil::fmt(
                                               "%.1f",
                                               copt[s].footprintWords
                                                   / 1048576.0),
                                           benchutil::num(
                                               mopt[s].cycles),
                                           benchutil::fmt(
                                               "%.1f",
                                               mopt[s].footprintWords
                                                   / 1048576.0)});
                            }
                        }
                    }
                }
            }
        }
    }
    table.rule();
    std::printf("configs: %llu\n",
                static_cast<unsigned long long>(configs));
    std::printf("Fig3a: compute-optimal points where a spatio-temporal "
                "scheme strictly reduces footprint: %llu/%llu "
                "(paper: 'multiple examples')\n",
                static_cast<unsigned long long>(st_wins_compute_opt),
                static_cast<unsigned long long>(configs));
    std::printf("Fig3b: footprint-optimal points where spatial is "
                "best: %llu/%llu (paper: 'most cases')\n",
                static_cast<unsigned long long>(spatial_wins_mem_opt),
                static_cast<unsigned long long>(configs));
    return 0;
}
