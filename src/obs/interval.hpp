/**
 * @file
 * Interval time-series telemetry: gem5-style periodic statistics.
 * An IntervalSampler snapshots a cumulative StatsRegistry whenever the
 * simulated clock crosses an N-cycle boundary and stores the *delta*
 * of every additive stat since the previous snapshot, producing an
 * IntervalSeries — a value type that renders as repeated stats.txt
 * sections, a time-series CSV/JSON, or Chrome/Perfetto counter tracks,
 * and merges deterministically across parallel sweep workers.
 *
 * Components are simulated a layer at a time, so the sampler is fed at
 * layer boundaries: rows land on the first sample at-or-after each
 * boundary and are spaced at least N cycles apart (a layer longer than
 * N cycles yields one row covering the whole layer, not fabricated
 * sub-layer rows).
 */

#ifndef SCALESIM_OBS_INTERVAL_HH
#define SCALESIM_OBS_INTERVAL_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace scalesim::obs
{

class StatsRegistry;
class TraceBuilder;

/** One interval: every additive stat's delta since the previous row. */
struct IntervalRow
{
    /** Simulated cycle at which this snapshot was taken. */
    std::uint64_t cycle = 0;

    /** Name-sorted (stat, delta) pairs; zero deltas are kept so the
     *  schema is identical across rows. */
    std::vector<std::pair<std::string, double>> deltas;
};

/** An ordered list of interval rows plus its sampling period. */
struct IntervalSeries
{
    std::uint64_t interval = 0;
    std::vector<IntervalRow> rows;

    bool empty() const { return rows.empty(); }

    /** Append another series' rows (deterministic in call order). */
    void append(const IntervalSeries& other);

    /** Repeated gem5-style "Begin/End" sections, one per row. */
    void writeStatsText(std::ostream& out) const;

    /** Wide CSV: `cycle` column + the sorted union of stat names. */
    void writeCsv(std::ostream& out) const;

    /** JSON: {"interval": N, "rows": [{"cycle": c, "stats": {...}}]}. */
    void writeJson(std::ostream& out) const;

    /**
     * Emit one Perfetto counter sample per row for every stat whose
     * name starts with `prefix`, on counter track `track` of process
     * `pid` (1 cycle = 1 µs, matching the simulator's span traces).
     */
    void toCounterTracks(TraceBuilder& trace, std::uint32_t pid,
                         std::string_view prefix,
                         std::string_view track) const;
};

/**
 * Boundary-crossing sampler; see file comment. Feed it monotonically
 * increasing (cycle, cumulative-registry) observations; it emits one
 * IntervalRow per crossed boundary batch.
 */
class IntervalSampler
{
  public:
    /** `interval` == 0 disables sampling entirely. */
    explicit IntervalSampler(std::uint64_t interval);

    bool enabled() const { return interval_ != 0; }

    /**
     * Observe the cumulative registry at simulated cycle `now`.
     * Emits a row iff `now` has reached the next interval boundary.
     */
    void sample(std::uint64_t now, const StatsRegistry& reg);

    /** Emit a final partial row if anything accrued past the last
     *  boundary row (so series totals match run totals). */
    void finish(std::uint64_t now, const StatsRegistry& reg);

    const IntervalSeries& series() const { return series_; }
    IntervalSeries takeSeries() { return std::move(series_); }

  private:
    void emitRow(std::uint64_t cycle, const StatsRegistry& reg);

    std::uint64_t interval_;
    std::uint64_t nextBoundary_;
    std::uint64_t lastCycle_ = 0;
    /** Flattened snapshot at the previous emitted row. */
    std::vector<std::pair<std::string, double>> last_;
    IntervalSeries series_;
};

} // namespace scalesim::obs

#endif // SCALESIM_OBS_INTERVAL_HH
