#include "energy/action_counts.hpp"

#include <algorithm>
#include <bit>

#include "common/log.hpp"

namespace scalesim::energy
{

namespace
{

/** Number of banked row-buffer trackers in the repeat lookup. */
constexpr std::uint32_t kTrackerBanks = 32;

} // namespace

void
ActionCounts::merge(const ActionCounts& other)
{
    macRandom += other.macRandom;
    macConstant += other.macConstant;
    macGated += other.macGated;
    vectorOps += other.vectorOps;
    ifmapSpadRead += other.ifmapSpadRead;
    ifmapSpadWrite += other.ifmapSpadWrite;
    weightSpadRead += other.weightSpadRead;
    weightSpadWrite += other.weightSpadWrite;
    psumSpadRead += other.psumSpadRead;
    psumSpadWrite += other.psumSpadWrite;
    ifmapSram.merge(other.ifmapSram);
    filterSram.merge(other.filterSram);
    ofmapSram.merge(other.ofmapSram);
    dramReadWords += other.dramReadWords;
    dramWriteWords += other.dramWriteWords;
    nocWords += other.nocWords;
    cycles += other.cycles;
}

void
ActionCountVisitor::RowTrackerSet::reset(std::uint32_t banks,
                                         std::uint32_t cap)
{
    capacity = cap;
    rows.assign(static_cast<std::size_t>(banks) * cap, 0);
    sizes.assign(banks, 0);
}

bool
ActionCountVisitor::RowTrackerSet::access(std::uint64_t bank,
                                          std::uint64_t row)
{
    std::uint64_t* const base = rows.data() + bank * capacity;
    const std::uint32_t n = sizes[bank];
    std::uint32_t i = 0;
    while (i < n && base[i] != row)
        ++i;
    if (i < n) {
        // Hit: rotate [0, i] right by one, row becomes MRU.
        std::copy_backward(base, base + i, base + i + 1);
        base[0] = row;
        return true;
    }
    // Miss: push to MRU, evicting the LRU entry when full.
    const std::uint32_t keep = std::min(n, capacity - 1);
    std::copy_backward(base, base + keep, base + keep + 1);
    base[0] = row;
    sizes[bank] = std::min(n + 1, capacity);
    return false;
}

ActionCountVisitor::ActionCountVisitor(const EnergyConfig& cfg,
                                       bool clock_gating)
    : cfg_(cfg), clockGating_(clock_gating)
{
    if (cfg_.rowSize == 0)
        fatal("energy RowSize must be non-zero");
    if (cfg_.bankSize == 0)
        fatal("energy BankSize must be non-zero");
    // The per-address row lookup runs once per trace address; a
    // power-of-two row size (the default and every preset) turns the
    // division into a shift.
    rowShift_ = std::has_single_bit(cfg_.rowSize)
        ? static_cast<std::uint32_t>(std::countr_zero(cfg_.rowSize))
        : kNoRowShift;
}

void
ActionCountVisitor::beginLayer(const systolic::FoldGrid& grid,
                               const systolic::OperandMap& /*operands*/)
{
    utilization_ = grid.utilization();
    numPes_ = static_cast<std::uint64_t>(grid.arrayRows())
        * grid.arrayCols();
    arrayRows_ = grid.arrayRows();
    arrayCols_ = grid.arrayCols();
    ifmapRows_.reset(kTrackerBanks, cfg_.bankSize);
    filterRows_.reset(kTrackerBanks, cfg_.bankSize);
    ofmapReadRows_.reset(kTrackerBanks, cfg_.bankSize);
    ofmapWriteRows_.reset(kTrackerBanks, cfg_.bankSize);
    layerStart_ = counts_;
}

void
ActionCountVisitor::countAccesses(RowTrackerSet& trackers,
                                  std::span<const Addr> addrs,
                                  Count& random, Count& repeat)
{
    const std::uint64_t row_size = cfg_.rowSize;
    const std::uint32_t shift = rowShift_;
    const std::uint32_t cap = trackers.capacity;
    std::uint64_t* const rows = trackers.rows.data();
    std::uint32_t* const sizes = trackers.sizes.data();
    Count repeats = 0;
    if (cap == 4) {
        // Hot path for the default bank size. Systolic lanes stride
        // across tracker banks, so hit depth (and hit/miss itself) is
        // data-dependent and unpredictable — a branchy MRU walk eats
        // a mispredict per address. Instead compute the hit mask and
        // the rotated bank state unconditionally; everything lowers
        // to conditional moves.
        for (Addr addr : addrs) {
            const std::uint64_t row =
                shift != kNoRowShift ? addr >> shift : addr / row_size;
            const std::uint64_t bank = row % kTrackerBanks;
            std::uint64_t* const b = rows + bank * 4;
            const std::uint64_t r0 = b[0];
            const std::uint64_t r1 = b[1];
            const std::uint64_t r2 = b[2];
            const std::uint64_t r3 = b[3];
            const std::uint32_t n = sizes[bank];
            const bool h0 = r0 == row && n > 0;
            const bool h1 = r1 == row && n > 1;
            const bool h2 = r2 == row && n > 2;
            const bool h3 = r3 == row && n > 3;
            const bool hit = h0 | h1 | h2 | h3;
            // MRU rotate-to-front (or insert-evict on a miss): slot i
            // keeps its value when the hit was above it, else takes
            // its predecessor's.
            b[0] = row;
            b[1] = h0 ? r1 : r0;
            b[2] = (h0 | h1) ? r2 : r1;
            b[3] = (h0 | h1 | h2) ? r3 : r2;
            sizes[bank] = hit ? n : (n < 4 ? n + 1 : 4);
            repeats += hit;
        }
    } else {
        for (Addr addr : addrs) {
            const std::uint64_t row =
                shift != kNoRowShift ? addr >> shift : addr / row_size;
            const std::uint64_t bank = row % kTrackerBanks;
            if (trackers.access(bank, row))
                ++repeats;
        }
    }
    repeat += repeats;
    random += addrs.size() - repeats;
}

void
ActionCountVisitor::cycle(Cycle /*clk*/,
                          std::span<const Addr> ifmap_reads,
                          std::span<const Addr> filter_reads,
                          std::span<const Addr> ofmap_reads,
                          std::span<const Addr> ofmap_writes)
{
    countAccesses(ifmapRows_, ifmap_reads, counts_.ifmapSram.readRandom,
                  counts_.ifmapSram.readRepeat);
    countAccesses(filterRows_, filter_reads,
                  counts_.filterSram.readRandom,
                  counts_.filterSram.readRepeat);
    countAccesses(ofmapReadRows_, ofmap_reads,
                  counts_.ofmapSram.readRandom,
                  counts_.ofmapSram.readRepeat);
    countAccesses(ofmapWriteRows_, ofmap_writes,
                  counts_.ofmapSram.writeRandom,
                  counts_.ofmapSram.writeRepeat);
}

void
ActionCountVisitor::endLayer(Cycle total_cycles)
{
    counts_.cycles += total_cycles;

    // MAC action counts: PEs x cycles x utilization are real MACs; the
    // remainder is constant (clocked) or gated (§VII-E).
    const std::uint64_t pe_cycles = numPes_ * total_cycles;
    const Count macs = static_cast<Count>(
        static_cast<double>(pe_cycles) * utilization_ + 0.5);
    counts_.macRandom += macs;
    const Count idle_macs = pe_cycles > macs ? pe_cycles - macs : 0;
    if (clockGating_)
        counts_.macGated += idle_macs;
    else
        counts_.macConstant += idle_macs;

    // Per-layer SRAM access deltas (the visitor may span many layers).
    const Count ifmap_layer_reads = counts_.ifmapSram.reads()
        - layerStart_.ifmapSram.reads();
    const Count filter_layer_reads = counts_.filterSram.reads()
        - layerStart_.filterSram.reads();

    // PE scratchpads follow §VII-E's dataflow-sensitive rules: writes
    // track the SRAM reads that deliver new data, reads track MACs.
    counts_.ifmapSpadWrite += ifmap_layer_reads;
    counts_.ifmapSpadRead += macs;
    counts_.weightSpadWrite += filter_layer_reads;
    counts_.weightSpadRead += macs;
    counts_.psumSpadRead += macs;
    counts_.psumSpadWrite += macs;

    // Idle port-cycles: ifmap SRAM feeds R ports, filter and ofmap C.
    const Count ifmap_ports = static_cast<Count>(arrayRows_)
        * total_cycles;
    const Count filter_ports = static_cast<Count>(arrayCols_)
        * total_cycles;
    const Count ofmap_ports = static_cast<Count>(arrayCols_)
        * total_cycles;
    const Count ifmap_used = ifmap_layer_reads;
    const Count filter_used = filter_layer_reads;
    const Count ofmap_used = counts_.ofmapSram.reads()
        + counts_.ofmapSram.writes() - layerStart_.ofmapSram.reads()
        - layerStart_.ofmapSram.writes();
    counts_.ifmapSram.idle += ifmap_ports > ifmap_used
        ? ifmap_ports - ifmap_used : 0;
    counts_.filterSram.idle += filter_ports > filter_used
        ? filter_ports - filter_used : 0;
    counts_.ofmapSram.idle += ofmap_ports > ofmap_used
        ? ofmap_ports - ofmap_used : 0;

    // Every SRAM<->array word traverses the array-edge NoC.
    counts_.nocWords += ifmap_used + filter_used + ofmap_used;
}

ActionCounts
analyticalActionCounts(const systolic::FoldGrid& grid,
                       const EnergyConfig& cfg, bool clock_gating)
{
    if (cfg.rowSize == 0)
        fatal("energy RowSize must be non-zero");
    ActionCounts counts;
    counts.cycles = grid.totalCycles();

    const std::uint64_t pe_cycles = static_cast<std::uint64_t>(
        grid.arrayRows()) * grid.arrayCols() * counts.cycles;
    const Count macs = grid.gemm().macs();
    counts.macRandom = macs;
    const Count idle_macs = pe_cycles > macs ? pe_cycles - macs : 0;
    if (clock_gating)
        counts.macGated = idle_macs;
    else
        counts.macConstant = idle_macs;

    const auto sram = grid.sramAccessCounts();
    // Every systolic access stream walks row buffers in a structured
    // way: even skewed streams revisit the block a neighboring feeder
    // touched one cycle earlier (see ActionCountVisitor), so the
    // repeat fraction of a `rowSize`-word row buffer approaches
    // (rowSize - 1) / rowSize for reads and writes alike. The trace
    // path measures the exact split; this closed form estimates it.
    const double seq = 1.0
        - 1.0 / static_cast<double>(cfg.rowSize);
    auto split = [&](Count total, double repeat_fraction, Count& random,
                     Count& repeat) {
        repeat = static_cast<Count>(
            static_cast<double>(total) * repeat_fraction + 0.5);
        random = total - repeat;
    };
    split(sram.ifmapReads, seq, counts.ifmapSram.readRandom,
          counts.ifmapSram.readRepeat);
    split(sram.filterReads, seq, counts.filterSram.readRandom,
          counts.filterSram.readRepeat);
    split(sram.ofmapWrites, seq, counts.ofmapSram.writeRandom,
          counts.ofmapSram.writeRepeat);
    split(sram.ofmapReads, seq, counts.ofmapSram.readRandom,
          counts.ofmapSram.readRepeat);

    counts.ifmapSpadWrite = counts.ifmapSram.reads();
    counts.ifmapSpadRead = macs;
    counts.weightSpadWrite = counts.filterSram.reads();
    counts.weightSpadRead = macs;
    counts.psumSpadRead = macs;
    counts.psumSpadWrite = macs;

    const Count ifmap_ports = static_cast<Count>(grid.arrayRows())
        * counts.cycles;
    const Count filter_ports = static_cast<Count>(grid.arrayCols())
        * counts.cycles;
    const Count ofmap_ports = filter_ports;
    const Count ifmap_used = counts.ifmapSram.reads();
    const Count filter_used = counts.filterSram.reads();
    const Count ofmap_used = counts.ofmapSram.reads()
        + counts.ofmapSram.writes();
    counts.ifmapSram.idle = ifmap_ports > ifmap_used
        ? ifmap_ports - ifmap_used : 0;
    counts.filterSram.idle = filter_ports > filter_used
        ? filter_ports - filter_used : 0;
    counts.ofmapSram.idle = ofmap_ports > ofmap_used
        ? ofmap_ports - ofmap_used : 0;
    counts.nocWords = ifmap_used + filter_used + ofmap_used;
    return counts;
}

} // namespace scalesim::energy
