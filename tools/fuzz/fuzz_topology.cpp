/**
 * @file
 * libFuzzer harness for the topology CSV front-end: feeds arbitrary
 * bytes through Topology::parseCsv (which exercises CsvTable, the
 * dimension parser, sparsity ratios, and vector-tail names). Any
 * outcome other than a parsed topology or a clean FatalError is a
 * finding.
 */

#include <cstddef>
#include <cstdint>
#include <sstream>
#include <string>

#include "common/log.hpp"
#include "common/topology.hpp"

extern "C" int
LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size)
{
    scalesim::setQuiet(true);
    std::istringstream in(
        std::string(reinterpret_cast<const char*>(data), size));
    try {
        const scalesim::Topology topo =
            scalesim::Topology::parseCsv(in, "fuzz");
        (void)topo.totalMacs();
        (void)topo.totalWeightWords();
    } catch (const scalesim::FatalError&) {
        // Malformed input rejected with a clean diagnostic: expected.
    }
    return 0;
}
