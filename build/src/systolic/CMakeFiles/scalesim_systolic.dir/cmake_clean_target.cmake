file(REMOVE_RECURSE
  "libscalesim_systolic.a"
)
