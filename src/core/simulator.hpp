/**
 * @file
 * SCALE-Sim v3's end-to-end simulator: per-layer runs combining the
 * systolic compute model, sparsity, the detailed DRAM model, on-chip
 * data layout, and energy/power estimation, driven by one SimConfig.
 * This is the public entry point library users should start from.
 */

#ifndef SCALESIM_CORE_SIMULATOR_HH
#define SCALESIM_CORE_SIMULATOR_HH

#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "check/audit.hpp"
#include "common/config.hpp"
#include "common/profiler.hpp"
#include "common/topology.hpp"
#include "dram/system.hpp"
#include "energy/action_counts.hpp"
#include "energy/model.hpp"
#include "layout/layout.hpp"
#include "obs/cpi.hpp"
#include "obs/interval.hpp"
#include "obs/stats.hpp"
#include "sparse/model.hpp"
#include "systolic/scratchpad.hpp"

namespace scalesim::core
{

/** Everything the simulator learns about one layer. */
struct LayerResult
{
    std::string name;
    std::uint32_t repetitions = 1;
    GemmDims denseGemm;
    GemmDims effectiveGemm; ///< after sparsity compression

    /** Ideal compute cycles of one instance (incl. layout slowdown). */
    Cycle computeCycles = 0;
    /** Vector-unit cycles of the layer's element-wise tail (§III-C). */
    Cycle simdCycles = 0;
    /** Wall-clock cycles of one instance, incl. memory stalls. */
    Cycle totalCycles = 0;
    Cycle stallCycles = 0;
    /** Useful-MAC fraction of the *effective* (post-sparsity) run. */
    double utilization = 0.0;
    /** Dense-over-effective compute-cycle ratio (1.0 when dense). */
    double speedup = 1.0;
    double mappingEfficiency = 0.0;
    double layoutSlowdown = 1.0;

    /**
     * CPI stack of one instance: timing.cpi plus the vector-unit tail
     * bucket, so cpi.total() == totalCycles (which includes
     * simdCycles). Audited as `cpi.conservation`.
     */
    obs::CpiStack cpi;

    systolic::LayerTiming timing;
    std::optional<sparse::SparseLayerReport> sparse;
    energy::ActionCounts actions;
    energy::EnergyBreakdown energyBreakdown;

    /** Average power of the layer in watts (0 if energy disabled). */
    double powerW = 0.0;
};

/** Whole-run results plus report writers. */
struct RunResult
{
    std::string runName;
    std::string workload;
    std::vector<LayerResult> layers;

    /** Totals across layers, weighted by repetitions. */
    Cycle totalCycles = 0;
    Cycle computeCycles = 0;
    Cycle stallCycles = 0;
    std::uint64_t dramReadWords = 0;
    std::uint64_t dramWriteWords = 0;
    energy::EnergyBreakdown totalEnergy;
    double avgPowerW = 0.0;
    /** Energy-delay product: totalCycles x total mJ. */
    double edp = 0.0;
    /** Detailed DRAM stats (meaningful when the DRAM model ran). */
    dram::DramStats dramStats;

    /**
     * Run-level CPI stack: repetition-weighted sum of the per-layer
     * stacks; cpiTotals.total() == totalCycles. `sim.cpistack` in the
     * stats output.
     */
    obs::CpiStack cpiTotals;

    /**
     * Periodic stats snapshots (deltas every SimConfig::intervalCycles
     * cycles of the simulated timeline; empty when disabled). Write
     * with intervals.writeStatsText/writeCsv/writeJson; Chrome traces
     * get them as counter tracks automatically.
     */
    obs::IntervalSeries intervals;

    /**
     * Instantaneous power profile (paper Table I: "Instantaneous +
     * Average"): one sample per layer instance, in execution order.
     */
    std::vector<energy::PowerSample> powerTrace;

    /** Self-profiling data of the simulation itself (Table IV). */
    SimProfile profile;

    /** True when the invariant auditor ran (SimConfig::audit). */
    bool audited = false;
    /** Conservation-law audit outcome (empty unless `audited`). */
    check::AuditReport audit;

    /**
     * Hierarchical stats of this run: sim.* run totals plus every
     * component's registered counters (dram.*, spad.*, sparse.*,
     * energy.*). Populated by Simulator::run; deterministic for a
     * given (config, topology) so parallel-sweep dumps are
     * byte-identical to sequential ones.
     */
    obs::StatsRegistry stats;

    /**
     * gem5-style human-readable stats summary, including the
     * SIM_OVERHEAD self-profiling section.
     */
    void writeSummary(std::ostream& out) const;
    void writeComputeReport(std::ostream& out) const;
    void writePowerReport(std::ostream& out) const;
    void writeBandwidthReport(std::ostream& out) const;
    void writeSparseReport(std::ostream& out) const;
    void writeEnergyReport(std::ostream& out) const;

    /** gem5-format text dump of `stats` (stats.txt). */
    void writeStats(std::ostream& out) const;
    /** Machine-readable dump of `stats` (stats.json). */
    void writeStatsJson(std::ostream& out) const;

    /**
     * Machine-readable run report: everything the five text reports
     * print, as one JSON document (totals, per-layer results, DRAM
     * stats, energy breakdowns, power trace, self-profile).
     */
    void writeJson(std::ostream& out) const;

    /**
     * Chrome trace-event (Perfetto-compatible) timeline: spans per
     * layer instance, per phase (matrix/vector tail), and per fold
     * (when fold spans were recorded), plus power and utilization
     * counter tracks. Open in chrome://tracing or ui.perfetto.dev;
     * one accelerator cycle maps to one trace microsecond.
     */
    void writeChromeTrace(std::ostream& out) const;

    /**
     * Register run-derived stats (sim.*, sparse.*, energy.*) into a
     * registry. Component-state stats are registered by
     * Simulator::registerStats; Simulator::run does both.
     */
    void registerStats(obs::StatsRegistry& reg) const;
};

/** The v3 simulator. One instance per accelerator configuration. */
class Simulator
{
  public:
    explicit Simulator(const SimConfig& cfg);
    ~Simulator();

    const SimConfig& config() const { return cfg_; }

    /**
     * Return the instance to its just-constructed state: memory
     * models, scratchpad, timeline, fold-cache counters, auditor, and
     * self-profiler are all rebuilt from the config. run() calls this
     * automatically before a second run, making back-to-back runs
     * bit-identical to fresh-object runs; callers driving runLayer
     * directly can reset between logical runs themselves.
     */
    void reset();

    /** Simulate one layer (one instance; callers scale repetitions). */
    LayerResult runLayer(const LayerSpec& layer,
                         std::uint64_t layer_index = 0);

    /** Simulate a whole topology. */
    RunResult run(const Topology& topology);

    /** Access the DRAM system (null unless the DRAM model is on). */
    const dram::DramMemory* dramMemory() const { return dram_.get(); }

    /** Self-profiling counters accumulated across runLayer calls. */
    SimProfile profile() const { return profiler_.snapshot(); }

    /** Fold-cache counters accumulated across runLayer calls. */
    const systolic::FoldCacheStats& foldCacheStats() const
    {
        return foldCacheStats_;
    }

    /** The invariant auditor (null unless SimConfig::audit). */
    const check::InvariantAuditor* auditor() const
    {
        return auditor_.get();
    }

    /**
     * Register component-state stats (dram.*, spad.*, mem.*) into a
     * registry. Called by run() on the result's registry; exposed for
     * callers driving runLayer directly.
     */
    void registerStats(obs::StatsRegistry& reg) const;

  private:
    std::uint64_t sramWords(std::uint64_t kb) const;
    /** Build all stateful components from cfg_ (ctor + reset body). */
    void init();

    SimConfig cfg_;
    std::unique_ptr<systolic::BandwidthMemory> bandwidthMemory_;
    std::unique_ptr<dram::DramMemory> dram_;
    systolic::MainMemory* memory_; // non-owning view of the active one
    std::unique_ptr<systolic::DoubleBufferedScratchpad> scratchpad_;
    std::unique_ptr<energy::EnergyModel> energyModel_;
    /** Running clock across layers (keeps memory time aligned). */
    Cycle timeline_ = 0;
    /** Demand-generation fold-cache counters across layers. */
    systolic::FoldCacheStats foldCacheStats_;
    /** Conservation-law auditor (only when SimConfig::audit). */
    std::unique_ptr<check::InvariantAuditor> auditor_;
    /** Wall-clock/RSS self-measurement of this instance's runs. */
    SimProfiler profiler_;
    /** Set by run(); triggers a reset() at the next run() call. */
    bool ranOnce_ = false;
};

} // namespace scalesim::core

#endif // SCALESIM_CORE_SIMULATOR_HH
