/**
 * @file
 * Minimal gem5-style status/error reporting: inform(), warn(), fatal(),
 * panic(). fatal() is for user errors (bad config/topology) and throws a
 * FatalError so library embedders can catch it; panic() is for internal
 * invariant violations and aborts.
 */

#ifndef SCALESIM_COMMON_LOG_HH
#define SCALESIM_COMMON_LOG_HH

#include <cstdarg>
#include <stdexcept>
#include <string>

namespace scalesim
{

/** Raised by fatal(); message carries the formatted reason. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string& what)
        : std::runtime_error(what)
    {}
};

/** printf-style formatting into a std::string. */
std::string vformat(const char* fmt, std::va_list args);
std::string format(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Informational message to stderr (prefixed "info:"). */
void inform(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/** Warning message to stderr (prefixed "warn:"). */
void warn(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * User-caused unrecoverable condition: prints "fatal:" and throws
 * FatalError.
 */
[[noreturn]] void fatal(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Internal invariant violation: prints "panic:" and aborts. */
[[noreturn]] void panic(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Globally silence inform()/warn() (used by benches for clean tables). */
void setQuiet(bool quiet);
bool quiet();

} // namespace scalesim

#endif // SCALESIM_COMMON_LOG_HH
