/**
 * @file
 * Cycle-accurate trace emission — SCALE-Sim's signature output files.
 *
 * SramTraceWriter taps the demand stream and writes the classic
 * per-cycle SRAM traces ("cycle, addr, addr, ..."), one stream per
 * operand. TracingMemory decorates any MainMemory and logs every
 * main-memory transaction in the paper's §V-B format (request cycle,
 * byte address, R/W), which readTrace/writeTrace round-trip to files
 * for the Ramulator-style standalone flow (generate a trace once,
 * replay it against many memory configurations).
 */

#ifndef SCALESIM_SYSTOLIC_TRACE_IO_HH
#define SCALESIM_SYSTOLIC_TRACE_IO_HH

#include <iosfwd>
#include <vector>

#include "systolic/demand.hpp"
#include "systolic/memory.hpp"

namespace scalesim::systolic
{

/**
 * Writes per-cycle SRAM demand traces; null streams are skipped.
 * `ofmap_reads` carries the partial-sum fetches of accumulating WS/IS
 * row folds (rf > 0) as a fourth stream so replayed traces account
 * for the full OFMAP SRAM traffic.
 *
 * Rows are formatted with std::to_chars into per-stream staging
 * buffers and handed to the ostream in large blocks, bypassing the
 * per-value iostream machinery that dominated trace-mode wall clock.
 * Systolic demand is highly structured: consecutive rows of a stream
 * are usually the previous row shifted by one constant (ifmap walks
 * +1, filter strides by the tile width), so the writer keeps the text
 * of the previous row and, when the constant-delta pattern holds,
 * copies each number's digits and decimal-adds the delta in place —
 * cheaper than re-deriving every digit with to_chars. Buffers drain
 * at endLayer(), flush(), and destruction; read the target streams
 * only after one of those points.
 */
class SramTraceWriter : public DemandVisitor
{
  public:
    SramTraceWriter(std::ostream* ifmap_reads,
                    std::ostream* filter_reads,
                    std::ostream* ofmap_writes,
                    std::ostream* ofmap_reads = nullptr);
    ~SramTraceWriter() override;

    void cycle(Cycle clk, std::span<const Addr> ifmap_reads,
               std::span<const Addr> filter_reads,
               std::span<const Addr> ofmap_reads,
               std::span<const Addr> ofmap_writes) override;

    void endLayer(Cycle total_cycles) override;

    /** Drain every staging buffer into its stream. */
    void flush();

    Count rowsWritten() const { return rows_; }
    /** Rows of the ofmap accumulate-read stream alone. */
    Count ofmapReadRows() const { return oreadRows_; }

  private:
    /**
     * One output stream plus its staging buffer and the location of
     * the previous row's digits inside it (for the constant-delta
     * patch fast path). Offsets rather than pointers: the buffer may
     * be resized, and a flush invalidates the row wholesale via
     * `havePrev`.
     */
    struct Sink
    {
        std::ostream* out = nullptr;
        std::vector<char> buf;
        std::size_t used = 0;
        std::vector<Addr> baseVals; ///< last slow-path row's values
        Addr accum = 0; ///< delta sum applied since baseVals was set
        std::vector<std::uint32_t> prevOff;
        std::vector<std::uint8_t> prevLen;
        bool havePrev = false;
    };

    static void writeRow(Sink& sink, Cycle clk,
                         std::span<const Addr> addrs);
    static void patchRow(Sink& sink, char*& p,
                         std::span<const Addr> addrs, Addr delta);
    static void flushSink(Sink& sink);

    Sink ifmap_;
    Sink filter_;
    Sink ofmap_;
    Sink oread_;
    Count rows_ = 0;
    Count oreadRows_ = 0;
};

/** One §V-B main-memory trace record. */
struct MemTraceRecord
{
    Cycle cycle = 0;   ///< request (issue) cycle, core clock
    Addr byteAddr = 0; ///< byte address
    Count bytes = 0;   ///< transaction size
    bool write = false;

    bool operator==(const MemTraceRecord&) const = default;
};

/** MainMemory decorator that records every transaction it forwards. */
class TracingMemory : public MainMemory
{
  public:
    TracingMemory(MainMemory& inner, std::uint32_t word_bytes = 1);

    Cycle issueRead(Addr addr, Count words, Cycle now) override;
    Cycle issueWrite(Addr addr, Count words, Cycle now) override;

    const std::vector<MemTraceRecord>& records() const
    {
        return records_;
    }
    void clearRecords() { records_.clear(); }

  private:
    MainMemory& inner_;
    std::uint32_t wordBytes_;
    std::vector<MemTraceRecord> records_;
};

/** Write records as "cycle, address, bytes, R|W" CSV lines. */
void writeMemTrace(std::ostream& out,
                   const std::vector<MemTraceRecord>& records);

/** Parse a trace written by writeMemTrace; fatal() on bad rows. */
std::vector<MemTraceRecord> readMemTrace(std::istream& in);

} // namespace scalesim::systolic

#endif // SCALESIM_SYSTOLIC_TRACE_IO_HH
