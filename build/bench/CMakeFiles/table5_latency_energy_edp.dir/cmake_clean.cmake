file(REMOVE_RECURSE
  "CMakeFiles/table5_latency_energy_edp.dir/table5_latency_energy_edp.cpp.o"
  "CMakeFiles/table5_latency_energy_edp.dir/table5_latency_energy_edp.cpp.o.d"
  "table5_latency_energy_edp"
  "table5_latency_energy_edp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_latency_energy_edp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
