# Empty dependencies file for fig15_energy_dataflow.
# This may be replaced when dependencies are built.
