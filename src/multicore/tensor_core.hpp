/**
 * @file
 * Heterogeneous tensor cores (paper §III-C): each TensorCore couples a
 * matrix-multiply unit (systolic array) with a SIMD/vector unit of
 * configurable length and per-operation latency, following the
 * TPU/MTIA naming. The vector unit handles the element-wise tail of a
 * layer (activation, softmax, quantization), serialized after the
 * matrix part.
 */

#ifndef SCALESIM_MULTICORE_TENSOR_CORE_HH
#define SCALESIM_MULTICORE_TENSOR_CORE_HH

#include <string>

#include "common/types.hpp"
#include "systolic/mapping.hpp"

namespace scalesim::multicore
{

/** Element-wise operation classes handled by the vector unit. */
using VectorOp = VectorTail;

/** SIMD/vector unit configuration (length and latency are knobs). */
struct SimdConfig
{
    std::uint32_t lanes = 16;
    /** Cycles per vector instruction (customizable, §III-C). */
    Cycle latencyPerOp = 1;
    /** Extra per-element passes for Softmax-class ops. */
    std::uint32_t softmaxPasses = 3;
};

/** One tensor core: MXU dimensions plus its vector unit. */
struct TensorCoreConfig
{
    std::string name = "core";
    std::uint32_t arrayRows = 32;
    std::uint32_t arrayCols = 32;
    SimdConfig simd;

    std::uint64_t
    pes() const
    {
        return static_cast<std::uint64_t>(arrayRows) * arrayCols;
    }
};

/** Cycles the vector unit needs for `elements` under `op`. */
Cycle simdCycles(const SimdConfig& simd, VectorOp op,
                 std::uint64_t elements);

/**
 * Analytical cycles for one GEMM (+ vector tail) on one tensor core.
 */
Cycle tensorCoreCycles(const TensorCoreConfig& core, const GemmDims& gemm,
                       Dataflow df, VectorOp tail = VectorOp::None);

} // namespace scalesim::multicore

#endif // SCALESIM_MULTICORE_TENSOR_CORE_HH
