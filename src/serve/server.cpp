#include "serve/server.hpp"

#include <cmath>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/log.hpp"
#include "common/workloads.hpp"
#include "obs/json.hpp"
#include "obs/json_read.hpp"
#include "serve/cached_runner.hpp"

namespace scalesim::serve
{

namespace
{

/** Render a JSON scalar as an INI value string. */
std::string
iniValue(const obs::JsonValue& v)
{
    switch (v.kind) {
      case obs::JsonValue::Kind::String:
        return v.text;
      case obs::JsonValue::Kind::Bool:
        return v.boolean ? "true" : "false";
      case obs::JsonValue::Kind::Number:
        if (std::floor(v.number) == v.number
            && std::abs(v.number) < 1e15) {
            return format("%.0f", v.number);
        }
        return format("%.17g", v.number);
      default:
        throw std::runtime_error(
            "config values must be strings, numbers, or booleans");
    }
}

/** Base config + request {section: {key: value}} overlay. */
SimConfig
configFromRequest(const IniFile& base, const obs::JsonValue& req)
{
    IniFile ini = base;
    if (const obs::JsonValue* overlay = req.find("config")) {
        if (overlay->kind != obs::JsonValue::Kind::Object)
            throw std::runtime_error("'config' must be an object");
        for (const auto& [section, keys] : overlay->members) {
            if (keys.kind != obs::JsonValue::Kind::Object) {
                throw std::runtime_error(
                    "config section '" + section
                    + "' must be an object");
            }
            for (const auto& [key, value] : keys.members)
                ini.set(section, key, iniValue(value));
        }
    }
    return SimConfig::fromIni(ini);
}

LayerSpec
layerFromJson(const obs::JsonValue& v, std::size_t index)
{
    if (v.kind != obs::JsonValue::Kind::Object)
        throw std::runtime_error("each layer must be an object");
    const std::string type = v.stringAt("type", "conv");
    LayerSpec layer;
    if (type == "gemm") {
        layer = LayerSpec::gemm(
            v.stringAt("name", "layer" + std::to_string(index)),
            static_cast<std::uint64_t>(v.numberAt("m")),
            static_cast<std::uint64_t>(v.numberAt("n")),
            static_cast<std::uint64_t>(v.numberAt("k")));
    } else if (type == "conv") {
        layer = LayerSpec::conv(
            v.stringAt("name", "layer" + std::to_string(index)),
            static_cast<std::uint64_t>(v.numberAt("ifmapH")),
            static_cast<std::uint64_t>(v.numberAt("ifmapW")),
            static_cast<std::uint64_t>(v.numberAt("filterH")),
            static_cast<std::uint64_t>(v.numberAt("filterW")),
            static_cast<std::uint64_t>(v.numberAt("channels")),
            static_cast<std::uint64_t>(v.numberAt("numFilters")),
            static_cast<std::uint64_t>(v.numberAt("stride", 1.0)));
    } else {
        throw std::runtime_error("unknown layer type '" + type + "'");
    }
    layer.repetitions =
        static_cast<std::uint32_t>(v.numberAt("repetitions", 1.0));
    layer.batch = static_cast<std::uint64_t>(v.numberAt("batch", 1.0));
    layer.sparseN =
        static_cast<std::uint32_t>(v.numberAt("sparseN", 0.0));
    layer.sparseM =
        static_cast<std::uint32_t>(v.numberAt("sparseM", 0.0));
    const std::string tail = v.stringAt("tail");
    if (!tail.empty())
        layer.tail = vectorTailFromString(tail);
    return layer;
}

/** "workload": built-in name, or "topology": inline layer list. */
Topology
topologyFromRequest(const obs::JsonValue& req)
{
    if (const obs::JsonValue* inline_topo = req.find("topology")) {
        if (inline_topo->kind != obs::JsonValue::Kind::Object)
            throw std::runtime_error("'topology' must be an object");
        Topology topo;
        topo.name = inline_topo->stringAt("name", "inline");
        const obs::JsonValue* layers = inline_topo->find("layers");
        if (!layers || layers->kind != obs::JsonValue::Kind::Array
            || layers->items.empty()) {
            throw std::runtime_error(
                "'topology.layers' must be a non-empty array");
        }
        for (std::size_t i = 0; i < layers->items.size(); ++i)
            topo.layers.push_back(layerFromJson(layers->items[i], i));
        return topo;
    }
    const std::string workload = req.stringAt("workload");
    if (workload.empty()) {
        throw std::runtime_error(
            "request needs 'workload' or 'topology'");
    }
    return workloads::byName(workload);
}

/** Echo the request's "id" member, whatever scalar kind it was. */
void
writeId(obs::JsonWriter& json, const obs::JsonValue* id)
{
    if (!id)
        return;
    json.key("id");
    switch (id->kind) {
      case obs::JsonValue::Kind::Number:
        json.value(id->number);
        break;
      case obs::JsonValue::Kind::String:
        json.value(id->text);
        break;
      case obs::JsonValue::Kind::Bool:
        json.value(id->boolean);
        break;
      default:
        json.null();
        break;
    }
}

void
writeFlatStats(obs::JsonWriter& json, const obs::StatsRegistry& stats)
{
    json.key("stats").beginObject();
    for (const auto& [name, value] : stats.flatten())
        json.field(name, value);
    json.endObject();
}

/**
 * Run/sweep result writers. Deliberately free of cache counters and
 * wall-clock self-profiling: identical requests must yield
 * byte-identical response lines whether served cold or warm.
 */
void
writeRunResult(obs::JsonWriter& json, const core::RunResult& run)
{
    json.field("workload", run.workload);
    json.key("totals").beginObject();
    json.field("totalCycles", run.totalCycles);
    json.field("computeCycles", run.computeCycles);
    json.field("stallCycles", run.stallCycles);
    json.field("dramReadWords", run.dramReadWords);
    json.field("dramWriteWords", run.dramWriteWords);
    json.endObject();
    if (run.totalEnergy.totalPj() > 0.0) {
        json.key("energy").beginObject();
        json.field("total_mJ", run.totalEnergy.totalMj());
        json.field("onChip_mJ", run.totalEnergy.onChipMj());
        json.field("avgPower_W", run.avgPowerW);
        json.field("edp", run.edp);
        json.endObject();
    }
    json.key("layers").beginArray();
    for (const auto& l : run.layers) {
        json.beginObject();
        json.field("name", l.name);
        json.field("repetitions", l.repetitions);
        json.field("computeCycles", l.computeCycles);
        json.field("simdCycles", l.simdCycles);
        json.field("totalCycles", l.totalCycles);
        json.field("stallCycles", l.stallCycles);
        json.field("utilization", l.utilization);
        json.endObject();
    }
    json.endArray();
    writeFlatStats(json, run.stats);
}

void
writeSweepResult(obs::JsonWriter& json,
                 const std::vector<core::DseDetailedPoint>& detailed)
{
    std::vector<core::DsePoint> points;
    points.reserve(detailed.size());
    for (const auto& d : detailed)
        points.push_back(d.point);
    const auto frontier = core::paretoFrontier(points);
    auto on_frontier = [&](const core::DsePoint& p) {
        for (const auto& f : frontier) {
            if (f.array == p.array && f.dataflow == p.dataflow
                && f.sramKb == p.sramKb) {
                return true;
            }
        }
        return false;
    };
    json.key("points").beginArray();
    for (const auto& p : points) {
        json.beginObject();
        json.field("array", p.array);
        json.field("dataflow", toString(p.dataflow));
        json.field("sramKb", p.sramKb);
        json.field("cycles", p.cycles);
        json.field("energy_mJ", p.energyMj);
        json.field("edp", p.edp);
        json.field("pareto", on_frontier(p));
        json.endObject();
    }
    json.endArray();
    writeFlatStats(json, core::mergeSweepStats(detailed));
}

} // namespace

Server::Server(Options options)
    : options_(std::move(options)),
      cache_(options_.cacheBudgetBytes)
{
    if (!options_.cacheFile.empty())
        cache_.load(options_.cacheFile);
}

bool
Server::saveCache() const
{
    if (options_.cacheFile.empty())
        return false;
    return cache_.save(options_.cacheFile);
}

std::string
Server::handleRequest(const std::string& line)
{
    ++requests_;
    std::ostringstream out;
    obs::JsonWriter json(out, /*pretty=*/false);

    obs::JsonValue req;
    if (!obs::parseJson(line, req)
        || req.kind != obs::JsonValue::Kind::Object) {
        ++errors_;
        json.beginObject();
        json.field("ok", false);
        json.field("error", "malformed JSON request");
        json.endObject();
        return out.str();
    }

    const obs::JsonValue* id = req.find("id");
    const std::string type = req.stringAt("type");
    try {
        json.beginObject();
        writeId(json, id);
        if (type == "ping") {
            json.field("ok", true);
            json.key("result").beginObject();
            json.field("pong", true);
            json.endObject();
        } else if (type == "stats") {
            const CacheStats snap = cache_.stats();
            json.field("ok", true);
            json.key("result").beginObject();
            json.field("requests",
                       static_cast<std::uint64_t>(requests_.load()));
            json.field("errors",
                       static_cast<std::uint64_t>(errors_.load()));
            json.key("cache").beginObject();
            json.field("hits", snap.hits);
            json.field("misses", snap.misses);
            json.field("hitRate", snap.hitRate());
            json.field("inserts", snap.inserts);
            json.field("evictions", snap.evictions);
            json.field("loadedEntries", snap.loadedEntries);
            json.field("loadRejected", snap.loadRejected);
            json.field("bytes", snap.bytes);
            json.field("entries", snap.entries);
            json.endObject();
            json.endObject();
        } else if (type == "shutdown") {
            shutdown_.store(true);
            json.field("ok", true);
            json.key("result").beginObject();
            json.field("shutdown", true);
            json.endObject();
        } else if (type == "run") {
            const SimConfig cfg =
                configFromRequest(options_.baseConfig, req);
            const Topology topo = topologyFromRequest(req);
            const bool use_cache = req.find("cache") == nullptr
                || req.find("cache")->boolean;
            json.field("ok", true);
            json.key("result").beginObject();
            if (options_.dryRun) {
                json.field("dryRun", true);
                json.field("workload", topo.name);
                json.field("layers", static_cast<std::uint64_t>(
                                         topo.layers.size()));
            } else {
                const core::RunResult run = runTopologyCached(
                    cfg, topo, use_cache ? &cache_ : nullptr);
                writeRunResult(json, run);
            }
            json.endObject();
        } else if (type == "sweep") {
            core::DseSweep sweep;
            sweep.base = configFromRequest(options_.baseConfig, req);
            // Axes may sit at the top level or under a "sweep" object.
            const obs::JsonValue* nested = req.find("sweep");
            const obs::JsonValue& axes = nested ? *nested : req;
            sweep.jobs = static_cast<unsigned>(axes.numberAt(
                "jobs",
                req.numberAt(
                    "jobs", static_cast<double>(options_.defaultJobs))));
            if (const obs::JsonValue* arrays = axes.find("arrays")) {
                sweep.arraySizes.clear();
                for (const auto& a : arrays->items) {
                    sweep.arraySizes.push_back(
                        static_cast<std::uint32_t>(a.number));
                }
            }
            if (const obs::JsonValue* dfs = axes.find("dataflows")) {
                sweep.dataflows.clear();
                for (const auto& d : dfs->items)
                    sweep.dataflows.push_back(dataflowFromString(d.text));
            }
            if (const obs::JsonValue* srams = axes.find("sramKb")) {
                sweep.sramKbTotals.clear();
                for (const auto& s : srams->items) {
                    sweep.sramKbTotals.push_back(
                        static_cast<std::uint64_t>(s.number));
                }
            }
            const Topology topo = topologyFromRequest(req);
            const bool use_cache = req.find("cache") == nullptr
                || req.find("cache")->boolean;
            json.field("ok", true);
            json.key("result").beginObject();
            if (options_.dryRun) {
                json.field("dryRun", true);
                json.field("workload", topo.name);
                json.field(
                    "candidates",
                    static_cast<std::uint64_t>(
                        sweep.arraySizes.size()
                        * sweep.dataflows.size()
                        * sweep.sramKbTotals.size()));
            } else {
                const auto detailed = runSweepCachedDetailed(
                    sweep, topo, use_cache ? &cache_ : nullptr);
                writeSweepResult(json, detailed);
            }
            json.endObject();
        } else {
            throw std::runtime_error(
                type.empty() ? "request has no 'type'"
                             : "unknown request type '" + type + "'");
        }
        json.endObject();
        return out.str();
    } catch (const std::exception& e) {
        ++errors_;
        // The writer may hold a half-built document; start over.
        std::ostringstream err;
        obs::JsonWriter ejson(err, /*pretty=*/false);
        ejson.beginObject();
        writeId(ejson, id);
        ejson.field("ok", false);
        ejson.field("error", e.what());
        ejson.endObject();
        return err.str();
    }
}

int
Server::serve(std::istream& in, std::ostream& out)
{
    std::string line;
    while (!shutdown_.load() && std::getline(in, line)) {
        if (line.empty())
            continue;
        out << handleRequest(line) << '\n' << std::flush;
    }
    if (!options_.cacheFile.empty() && !saveCache())
        warn("failed to persist cache to %s",
             options_.cacheFile.c_str());
    return 0;
}

} // namespace scalesim::serve
