file(REMOVE_RECURSE
  "CMakeFiles/ablation_conv_reuse.dir/ablation_conv_reuse.cpp.o"
  "CMakeFiles/ablation_conv_reuse.dir/ablation_conv_reuse.cpp.o.d"
  "ablation_conv_reuse"
  "ablation_conv_reuse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_conv_reuse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
