/**
 * @file
 * Tests for the parallel execution engine and the simulator's
 * self-profiling layer: thread-pool/parallelFor semantics, the
 * determinism contract (parallel sweeps byte-identical to sequential
 * ones), and SimProfiler instrumentation in the run report.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <vector>

#include "common/parallel.hpp"
#include "common/profiler.hpp"
#include "common/workloads.hpp"
#include "core/dse.hpp"
#include "core/simulator.hpp"
#include "multicore/partition.hpp"

using namespace scalesim;

namespace
{

Topology
tinyTopology()
{
    Topology topo;
    topo.name = "tiny";
    topo.layers.push_back(LayerSpec::conv("conv", 14, 14, 3, 3, 16, 32,
                                          1));
    topo.layers.push_back(LayerSpec::gemm("fc", 4, 64, 128));
    return topo;
}

core::DseSweep
smallSweep(unsigned jobs)
{
    core::DseSweep sweep;
    sweep.arraySizes = {8, 16};
    sweep.sramKbTotals = {256, 1024};
    sweep.base.mode = SimMode::Analytical;
    sweep.jobs = jobs;
    return sweep;
}

std::string
dseReportText(const std::vector<core::DsePoint>& points)
{
    std::ostringstream out;
    core::writeDseReport(out, points);
    return out.str();
}

} // namespace

TEST(ParallelFor, VisitsEveryIndexExactlyOnce)
{
    constexpr std::uint64_t n = 1000;
    std::vector<std::atomic<int>> visits(n);
    parallelFor(n, 4, [&](std::uint64_t i) { ++visits[i]; });
    for (std::uint64_t i = 0; i < n; ++i)
        EXPECT_EQ(visits[i].load(), 1) << "index " << i;
}

TEST(ParallelFor, SequentialFallbackRunsInline)
{
    const auto caller = std::this_thread::get_id();
    std::vector<std::thread::id> seen(3);
    parallelFor(seen.size(), 1, [&](std::uint64_t i) {
        seen[i] = std::this_thread::get_id();
    });
    for (const auto& id : seen)
        EXPECT_EQ(id, caller);
}

TEST(ParallelFor, PropagatesFirstException)
{
    EXPECT_THROW(
        parallelFor(64, 4,
                    [](std::uint64_t i) {
                        if (i == 17)
                            throw std::runtime_error("boom");
                    }),
        std::runtime_error);
}

TEST(ParallelFor, HandlesZeroAndTinyRanges)
{
    std::atomic<int> calls{0};
    parallelFor(0, 4, [&](std::uint64_t) { ++calls; });
    EXPECT_EQ(calls.load(), 0);
    parallelFor(1, 8, [&](std::uint64_t) { ++calls; });
    EXPECT_EQ(calls.load(), 1);
}

TEST(ThreadPool, DrainsAllSubmittedTasks)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.threadCount(), 4u);
    std::atomic<int> done{0};
    for (int i = 0; i < 256; ++i)
        pool.submit([&] { ++done; });
    pool.wait();
    EXPECT_EQ(done.load(), 256);
    // The pool stays usable after a wait().
    pool.submit([&] { ++done; });
    pool.wait();
    EXPECT_EQ(done.load(), 257);
}

TEST(ResolveJobs, ExplicitValuesPassThrough)
{
    EXPECT_EQ(resolveJobs(1), 1u);
    EXPECT_EQ(resolveJobs(7), 7u);
    EXPECT_GE(resolveJobs(0), 1u);
}

TEST(ParallelDeterminism, DseSweepMatchesSequentialByteForByte)
{
    const Topology topo = tinyTopology();
    const auto sequential = core::runSweep(smallSweep(1), topo);
    const auto parallel = core::runSweep(smallSweep(4), topo);
    ASSERT_EQ(sequential.size(), parallel.size());
    for (std::size_t i = 0; i < sequential.size(); ++i) {
        EXPECT_EQ(sequential[i].array, parallel[i].array);
        EXPECT_EQ(sequential[i].dataflow, parallel[i].dataflow);
        EXPECT_EQ(sequential[i].sramKb, parallel[i].sramKb);
        EXPECT_EQ(sequential[i].cycles, parallel[i].cycles);
        EXPECT_EQ(sequential[i].energyMj, parallel[i].energyMj);
        EXPECT_EQ(sequential[i].edp, parallel[i].edp);
    }
    EXPECT_EQ(dseReportText(sequential), dseReportText(parallel));
}

TEST(ParallelDeterminism, TraceModeSweepAlsoMatches)
{
    // Trace mode exercises the scratchpad/timeline coupling each
    // worker-private Simulator must preserve.
    const Topology topo = tinyTopology();
    auto sweep1 = smallSweep(1);
    sweep1.base.mode = SimMode::Trace;
    auto sweep4 = smallSweep(4);
    sweep4.base.mode = SimMode::Trace;
    EXPECT_EQ(dseReportText(core::runSweep(sweep1, topo)),
              dseReportText(core::runSweep(sweep4, topo)));
}

TEST(ParallelDeterminism, PartitionSearchMatchesSequential)
{
    const GemmDims gemm{512, 256, 384};
    for (auto scheme : {multicore::PartitionScheme::Spatial,
                        multicore::PartitionScheme::SpatioTemporal1,
                        multicore::PartitionScheme::SpatioTemporal2}) {
        const auto sequential = multicore::enumeratePartitions(
            gemm, Dataflow::WeightStationary, 32, 32, 64, scheme, 1);
        const auto parallel = multicore::enumeratePartitions(
            gemm, Dataflow::WeightStationary, 32, 32, 64, scheme, 4);
        ASSERT_EQ(sequential.size(), parallel.size());
        for (std::size_t i = 0; i < sequential.size(); ++i) {
            EXPECT_EQ(sequential[i].pr, parallel[i].pr);
            EXPECT_EQ(sequential[i].pc, parallel[i].pc);
            EXPECT_EQ(sequential[i].cycles, parallel[i].cycles);
            EXPECT_EQ(sequential[i].footprintWords,
                      parallel[i].footprintWords);
            EXPECT_EQ(sequential[i].l2FootprintWords,
                      parallel[i].l2FootprintWords);
        }
    }
}

TEST(SimProfiler, RunReportCarriesOverheadSection)
{
    SimConfig cfg;
    cfg.arrayRows = cfg.arrayCols = 16;
    cfg.mode = SimMode::Trace;
    cfg.energy.enabled = true;
    core::Simulator sim(cfg);
    const core::RunResult run = sim.run(tinyTopology());

    EXPECT_EQ(run.profile.layersProfiled, 2u);
    EXPECT_GT(run.profile.totalSeconds, 0.0);
    EXPECT_GT(run.profile.seconds(SimPhase::Energy), 0.0);
    EXPECT_GT(run.profile.peakRssKb, 0u);

    std::ostringstream out;
    run.writeSummary(out);
    const std::string text = out.str();
    EXPECT_NE(text.find("SIM_OVERHEAD"), std::string::npos);
    EXPECT_NE(text.find("sim.overhead.totalSeconds"),
              std::string::npos);
    EXPECT_NE(text.find("sim.overhead.energy"), std::string::npos);
    EXPECT_NE(text.find("sim.overhead.peakRssKb"), std::string::npos);
}

TEST(SimProfiler, DramPhaseChargedWhenDramModelActive)
{
    SimConfig cfg;
    cfg.arrayRows = cfg.arrayCols = 16;
    cfg.mode = SimMode::Trace;
    cfg.dram.enabled = true;
    core::Simulator sim(cfg);
    const core::RunResult run = sim.run(tinyTopology());
    EXPECT_GT(run.profile.seconds(SimPhase::Dram), 0.0);
    EXPECT_EQ(run.profile.seconds(SimPhase::Scratchpad), 0.0);
}

TEST(SimProfiler, ExternalChargesLandInPhaseAndTotal)
{
    SimProfiler profiler;
    profiler.chargeExternal(SimPhase::DemandGen, 0.25);
    profiler.chargeOther(0.5);
    const SimProfile profile = profiler.snapshot();
    EXPECT_DOUBLE_EQ(profile.seconds(SimPhase::DemandGen), 0.25);
    EXPECT_DOUBLE_EQ(profile.totalSeconds, 0.75);
    EXPECT_DOUBLE_EQ(profile.otherSeconds(), 0.5);
}

TEST(SimProfiler, MergeAccumulatesAndKeepsPeakRss)
{
    SimProfile a;
    a.phaseSeconds[0] = 1.0;
    a.totalSeconds = 2.0;
    a.layersProfiled = 3;
    a.peakRssKb = 100;
    SimProfile b;
    b.phaseSeconds[0] = 0.5;
    b.totalSeconds = 1.0;
    b.layersProfiled = 1;
    b.peakRssKb = 400;
    a.merge(b);
    EXPECT_DOUBLE_EQ(a.phaseSeconds[0], 1.5);
    EXPECT_DOUBLE_EQ(a.totalSeconds, 3.0);
    EXPECT_EQ(a.layersProfiled, 4u);
    EXPECT_EQ(a.peakRssKb, 400u);
}

TEST(SparsitySpeedup, UtilizationStaysBoundedAndSpeedupReported)
{
    // With 1:4 row sparsity the effective K shrinks ~4x; the old
    // utilization metric (dense MACs / effective cycles) exceeded 1.0.
    SimConfig cfg;
    cfg.arrayRows = cfg.arrayCols = 16;
    cfg.dataflow = Dataflow::WeightStationary;
    cfg.mode = SimMode::Analytical;
    cfg.sparsity.enabled = true;
    Topology topo;
    topo.name = "sparse";
    topo.layers.push_back(LayerSpec::gemm("g", 256, 256, 256));
    topo = workloads::withUniformSparsity(topo, 1, 4);
    core::Simulator sim(cfg);
    const core::RunResult run = sim.run(topo);
    ASSERT_EQ(run.layers.size(), 1u);
    const auto& layer = run.layers[0];
    ASSERT_LT(layer.effectiveGemm.k, layer.denseGemm.k);
    EXPECT_GT(layer.utilization, 0.0);
    EXPECT_LE(layer.utilization, 1.0);
    EXPECT_GT(layer.speedup, 1.0);
    // Dense runs keep speedup at exactly 1.
    SimConfig dense_cfg = cfg;
    dense_cfg.sparsity.enabled = false;
    core::Simulator dense_sim(dense_cfg);
    Topology dense_topo;
    dense_topo.name = "dense";
    dense_topo.layers.push_back(LayerSpec::gemm("g", 256, 256, 256));
    const core::RunResult dense_run = dense_sim.run(dense_topo);
    EXPECT_DOUBLE_EQ(dense_run.layers[0].speedup, 1.0);
}

TEST(CompletionQueue, PollAndWaitAnyDrainFinishedIndices)
{
    CompletionQueue queue;
    EXPECT_TRUE(queue.poll().empty());
    queue.finish(3);
    queue.finish(7);
    std::vector<std::size_t> done = queue.poll();
    ASSERT_EQ(done.size(), 2u);
    EXPECT_EQ(done[0], 3u);
    EXPECT_EQ(done[1], 7u);
    EXPECT_TRUE(queue.poll().empty());
    // waitAny blocks until a completion arrives from another thread.
    ThreadPool pool(2);
    pool.submit([&queue] { queue.finish(11); });
    done = queue.waitAny();
    ASSERT_EQ(done.size(), 1u);
    EXPECT_EQ(done[0], 11u);
    EXPECT_EQ(queue.error(), nullptr);
    pool.wait();
}

TEST(CompletionQueue, KeepsFirstErrorAcrossCompletions)
{
    CompletionQueue queue;
    queue.finish(0, std::make_exception_ptr(
                        std::runtime_error("first")));
    queue.finish(1, std::make_exception_ptr(
                        std::runtime_error("second")));
    queue.finish(2);
    EXPECT_EQ(queue.poll().size(), 3u);
    const std::exception_ptr error = queue.error();
    ASSERT_NE(error, nullptr);
    try {
        std::rethrow_exception(error);
    } catch (const std::runtime_error& e) {
        EXPECT_STREQ(e.what(), "first");
    }
}
