file(REMOVE_RECURSE
  "CMakeFiles/dram_explorer.dir/dram_explorer.cpp.o"
  "CMakeFiles/dram_explorer.dir/dram_explorer.cpp.o.d"
  "dram_explorer"
  "dram_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dram_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
