/**
 * @file
 * DRAM device timing and geometry presets. Values are JEDEC-style
 * datasheet numbers expressed in memory-controller clock cycles; the
 * preset list covers the technologies the paper's Ramulator integration
 * advertises (DDR3/DDR4/LPDDR4/GDDR5/HBM).
 */

#ifndef SCALESIM_DRAM_TIMING_HH
#define SCALESIM_DRAM_TIMING_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"

namespace scalesim::dram
{

/** Device timing/geometry for one DRAM technology speed bin. */
struct DramTiming
{
    std::string name;

    /** Controller command clock in MHz. */
    double clockMhz = 1200.0;

    /** Bytes moved per column burst (bus width x burst length). */
    std::uint32_t burstBytes = 64;
    /** Data-bus occupancy of one burst, in clocks (BL/2 for DDR). */
    Cycle tBurst = 4;

    Cycle tRCD = 16;  ///< ACT to column command
    Cycle tRP = 16;   ///< PRE to ACT
    Cycle tCL = 16;   ///< read column to first data
    Cycle tCWL = 12;  ///< write column to first data
    Cycle tRAS = 39;  ///< ACT to PRE
    Cycle tRC = 55;   ///< ACT to ACT, same bank
    Cycle tRRD = 6;   ///< ACT to ACT, different banks
    Cycle tFAW = 26;  ///< four-activate window
    Cycle tWR = 18;   ///< write recovery before PRE
    Cycle tRTP = 9;   ///< read to PRE
    Cycle tCCD = 4;   ///< column to column
    Cycle tWTR = 9;   ///< write to read turnaround
    Cycle tREFI = 9360; ///< refresh interval (7.8 us)
    Cycle tRFC = 420;   ///< refresh cycle time

    std::uint32_t banksPerRank = 16;
    std::uint32_t rowsPerBank = 65536;
    /** Row-buffer (page) size in bytes per bank. */
    std::uint64_t rowBytes = 8192;

    /** Columns (bursts) per row. */
    std::uint64_t colsPerRow() const { return rowBytes / burstBytes; }

    /** Peak data bandwidth in bytes per controller clock. */
    double
    peakBytesPerClock() const
    {
        return static_cast<double>(burstBytes) / tBurst;
    }
};

/**
 * Look up a preset by name: DDR3_1600, DDR4_2400, DDR4_3200,
 * LPDDR4_3200, GDDR5_6000, HBM2. Matching is case-insensitive and
 * ignores '-'/'_'. fatal() on unknown names.
 */
DramTiming timingPreset(std::string_view name);

/** Names of all available presets. */
std::vector<std::string> timingPresetNames();

} // namespace scalesim::dram

#endif // SCALESIM_DRAM_TIMING_HH
