/**
 * @file
 * Minimal parallel-execution engine for embarrassingly-parallel sweep
 * loops (DSE candidates, partition searches, bench config points).
 * C++20 std::jthread only — no external dependencies.
 *
 * Determinism contract: parallelFor hands each worker indices from a
 * shared atomic counter, so the *order* of execution is nondeterministic
 * but the mapping index -> work item is fixed. Callers store results by
 * index into a pre-sized vector, making parallel output bit-identical to
 * the sequential run (enforced by tests/parallel_test.cpp). Workers must
 * not share mutable state; each owns its own Simulator/DramMemory.
 *
 * Locking discipline (statically enforced under clang's thread-safety
 * analysis, see check/thread_safety.hpp): every mutable member of
 * ThreadPool and CompletionQueue is guarded by the instance's one
 * mutex; all public entry points acquire it internally and must be
 * called without it held (SIM_EXCLUDES).
 */

#ifndef SCALESIM_COMMON_PARALLEL_HH
#define SCALESIM_COMMON_PARALLEL_HH

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "check/thread_safety.hpp"

namespace scalesim
{

/**
 * Resolve a jobs request to a concrete worker count.
 *  - 0 means "auto": the SCALESIM_JOBS environment variable if set,
 *    otherwise std::thread::hardware_concurrency().
 *  - Any other value is used as-is (clamped to >= 1).
 */
unsigned resolveJobs(unsigned requested);

/**
 * Fixed-size pool of std::jthread workers draining a task queue.
 * Tasks may be submitted from any thread; wait() blocks until the
 * queue is empty and every in-flight task has finished.
 */
class ThreadPool
{
  public:
    /** Spawn `threads` workers (resolved via resolveJobs). */
    explicit ThreadPool(unsigned threads = 0);

    /** Drains outstanding work, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    unsigned threadCount() const { return threadCount_; }

    /** Enqueue one task. */
    void submit(std::function<void()> task) SIM_EXCLUDES(mutex_);

    /** Block until all submitted tasks have completed. */
    void wait() SIM_EXCLUDES(mutex_);

  private:
    void workerLoop(std::stop_token stop) SIM_EXCLUDES(mutex_);

    unsigned threadCount_;
    CheckedMutex mutex_;
    std::condition_variable_any taskReady_;
    std::condition_variable_any allDone_;
    std::deque<std::function<void()>> tasks_ SIM_GUARDED_BY(mutex_);
    std::uint64_t inFlight_ SIM_GUARDED_BY(mutex_) = 0;
    std::vector<std::jthread> workers_; // last: joins before members die
};

/**
 * Single-consumer completion channel for tracking *individual* tasks
 * submitted to a ThreadPool (whose wait() only knows "all done").
 * Each task calls finish(index) when it completes — from any thread —
 * and the consumer collects finished indices with poll() (non-blocking)
 * or waitAny() (blocks until at least one task has finished).
 *
 * Memory-visibility contract: every write a task performed before
 * finish(i) is visible to the consumer once poll()/waitAny() has
 * returned i (both sides synchronize on the internal mutex), so the
 * consumer may freely read the task's results afterwards.
 *
 * A task that failed reports its exception via finish(i, eptr); the
 * index is still delivered (so in-flight accounting stays exact) and
 * the first reported exception is kept for the consumer to rethrow
 * via error() once it has drained everything it is waiting on.
 */
class CompletionQueue
{
  public:
    /** Mark task `index` finished; safe from any thread. */
    void finish(std::size_t index,
                std::exception_ptr error = nullptr)
        SIM_EXCLUDES(mutex_);

    /** Collect finished indices without blocking (may be empty). */
    std::vector<std::size_t> poll() SIM_EXCLUDES(mutex_);

    /** Block until at least one task finishes, then collect. */
    std::vector<std::size_t> waitAny() SIM_EXCLUDES(mutex_);

    /** First exception reported by finish(), or nullptr. */
    std::exception_ptr error() SIM_EXCLUDES(mutex_);

  private:
    CheckedMutex mutex_;
    std::condition_variable_any ready_;
    std::vector<std::size_t> done_ SIM_GUARDED_BY(mutex_);
    std::exception_ptr error_ SIM_GUARDED_BY(mutex_);
};

/**
 * Run body(i) for every i in [0, n) on up to `jobs` threads.
 * jobs <= 1 (after resolveJobs for jobs == 1; pass 0 for auto) runs
 * inline on the calling thread, byte-identical to a plain loop. The
 * first exception thrown by any body is rethrown on the caller after
 * all workers stop.
 */
void parallelFor(std::uint64_t n, unsigned jobs,
                 const std::function<void(std::uint64_t)>& body);

} // namespace scalesim

#endif // SCALESIM_COMMON_PARALLEL_HH
