/**
 * @file
 * Reproduces Table V: latency (cycles/layer), energy (mJ) and EdP
 * (cycles x mJ / layer) for 32x32, 64x64 and 128x128 arrays on
 * ResNet-50, R-CNN and ViT-base, plus the paper's headline: the big
 * array wins latency by ~6.5x on ViT-base while the small array is
 * ~2.9x more energy-efficient, and 64x64 wins EdP for ViT-base.
 */

#include "bench_util.hpp"
#include "common/log.hpp"
#include "common/workloads.hpp"
#include "core/simulator.hpp"

using namespace scalesim;

namespace
{

struct Cell
{
    double cyclesPerLayer = 0.0;
    double energyMj = 0.0;
    double edp = 0.0;
};

Cell
evaluate(const Topology& topo, std::uint32_t array)
{
    SimConfig cfg;
    cfg.arrayRows = array;
    cfg.arrayCols = array;
    cfg.dataflow = Dataflow::WeightStationary;
    cfg.mode = SimMode::Analytical;
    cfg.energy.enabled = true;
    cfg.memory.bandwidthWordsPerCycle = 100.0;
    // TPU-like on-chip buffers (the paper's energy studies assume the
    // working set is on-chip; tiny SRAMs would make DRAM spill energy
    // dominate instead of the dataflow's action counts).
    cfg.memory.ifmapSramKb = 6144;
    cfg.memory.filterSramKb = 6144;
    cfg.memory.ofmapSramKb = 2048;
    core::Simulator sim(cfg);
    const core::RunResult run = sim.run(topo);
    std::uint64_t instances = 0;
    for (const auto& layer : run.layers)
        instances += layer.repetitions;
    Cell cell;
    cell.cyclesPerLayer = static_cast<double>(run.totalCycles)
        / static_cast<double>(instances);
    cell.energyMj = run.totalEnergy.onChipMj();
    cell.edp = cell.cyclesPerLayer * cell.energyMj;
    return cell;
}

} // namespace

int
main()
{
    setQuiet(true);
    std::printf("=== Table V: latency / energy / EdP for 32^2, 64^2, "
                "128^2 arrays ===\n");
    const char* names[] = {"resnet50", "rcnn", "vit_base"};
    const std::uint32_t arrays[] = {32, 64, 128};

    Cell cells[3][3];
    for (int w = 0; w < 3; ++w) {
        const Topology topo = workloads::byName(names[w]);
        for (int a = 0; a < 3; ++a)
            cells[w][a] = evaluate(topo, arrays[a]);
    }

    for (int w = 0; w < 3; ++w) {
        std::printf("--- %s ---\n", names[w]);
        benchutil::Table table({24, 14, 14, 14});
        table.row({"metric", "32x32", "64x64", "128x128"});
        table.rule();
        table.row({"Latency (cycles/layer)",
                   benchutil::fmt("%.0f", cells[w][0].cyclesPerLayer),
                   benchutil::fmt("%.0f", cells[w][1].cyclesPerLayer),
                   benchutil::fmt("%.0f", cells[w][2].cyclesPerLayer)});
        table.row({"Energy (mJ)",
                   benchutil::fmt("%.2f", cells[w][0].energyMj),
                   benchutil::fmt("%.2f", cells[w][1].energyMj),
                   benchutil::fmt("%.2f", cells[w][2].energyMj)});
        table.row({"EdP (cycles x mJ/layer)",
                   benchutil::fmt("%.0f", cells[w][0].edp),
                   benchutil::fmt("%.0f", cells[w][1].edp),
                   benchutil::fmt("%.0f", cells[w][2].edp)});
        table.rule();
    }

    // Headline shape checks (ViT-base is row 2).
    const double speedup = cells[2][0].cyclesPerLayer
        / cells[2][2].cyclesPerLayer;
    const double efficiency = cells[2][2].energyMj
        / cells[2][0].energyMj;
    std::printf("ViT-base: 128^2 latency speedup over 32^2 = %.2fx "
                "(paper: 6.53x)\n", speedup);
    std::printf("ViT-base: 32^2 energy efficiency over 128^2 = %.2fx "
                "(paper: 2.86x)\n", efficiency);
    const char* edp_best = cells[2][1].edp <= cells[2][0].edp
            && cells[2][1].edp <= cells[2][2].edp
        ? "64x64" : (cells[2][0].edp <= cells[2][2].edp ? "32x32"
                                                        : "128x128");
    std::printf("ViT-base EdP winner: %s (paper: 64x64)\n", edp_best);
    return 0;
}
