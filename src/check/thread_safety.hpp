/**
 * @file
 * Clang Thread Safety Analysis surface for the simulator's concurrent
 * code (ThreadPool sweeps, the epoch-parallel multi-core engine, the
 * serve-mode result cache). The repo's standing invariant is
 * *bit-identical* results under any worker count; the locking
 * discipline that invariant rests on is encoded here as compile-time
 * capability annotations instead of runtime-TSan-maybe-catches.
 *
 * Under clang the SIM_* macros expand to the thread-safety attributes
 * and the `static-analysis` CI lane compiles with
 * `-Wthread-safety -Wthread-safety-beta` promoted to errors, so an
 * unguarded access to shared state no longer compiles. Everywhere else
 * (gcc, MSVC) they expand to nothing.
 *
 * std::mutex is not an annotated capability type, so lock-protected
 * classes use the CheckedMutex wrapper below (a std::mutex that clang
 * can reason about) together with the MutexLock RAII guard.
 * condition-variable waits go through std::condition_variable_any,
 * which accepts MutexLock as its BasicLockable; wait predicates that
 * touch guarded members call CheckedMutex::assertHeld() first, telling
 * the analysis the capability is held inside the predicate lambda.
 *
 * Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html
 */

#ifndef SCALESIM_CHECK_THREAD_SAFETY_HH
#define SCALESIM_CHECK_THREAD_SAFETY_HH

#include <mutex>

#if defined(__clang__)
#define SIM_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define SIM_THREAD_ANNOTATION(x) // no-op off clang
#endif

/** Mark a class as a lockable capability ("mutex", "role", ...). */
#define SIM_CAPABILITY(x) SIM_THREAD_ANNOTATION(capability(x))

/** Mark a RAII guard class whose ctor acquires and dtor releases. */
#define SIM_SCOPED_CAPABILITY SIM_THREAD_ANNOTATION(scoped_lockable)

/** A data member readable/writable only with the capability held. */
#define SIM_GUARDED_BY(x) SIM_THREAD_ANNOTATION(guarded_by(x))

/** A pointer member whose *pointee* is protected by the capability. */
#define SIM_PT_GUARDED_BY(x) SIM_THREAD_ANNOTATION(pt_guarded_by(x))

/** The caller must hold the capability (and does not release it). */
#define SIM_REQUIRES(...) \
    SIM_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/** The function acquires the capability (caller must not hold it). */
#define SIM_ACQUIRE(...) \
    SIM_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/** The function releases the capability (caller must hold it). */
#define SIM_RELEASE(...) \
    SIM_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/** The function acquires the capability iff it returns `value`. */
#define SIM_TRY_ACQUIRE(...) \
    SIM_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/** The caller must NOT hold the capability (anti-deadlock). */
#define SIM_EXCLUDES(...) SIM_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/** Assert (to the analysis only) that the capability is held. */
#define SIM_ASSERT_CAPABILITY(x) \
    SIM_THREAD_ANNOTATION(assert_capability(x))

/** The function returns a reference to the given capability. */
#define SIM_RETURN_CAPABILITY(x) SIM_THREAD_ANNOTATION(lock_returned(x))

/** Escape hatch: disable the analysis for one function body. */
#define SIM_NO_THREAD_SAFETY_ANALYSIS \
    SIM_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace scalesim
{

/**
 * std::mutex annotated as a clang capability. Same semantics and cost
 * (the wrapper is empty); only the type carries the attribute the
 * analysis needs. Use with SIM_GUARDED_BY on every member the mutex
 * protects — the scalesim_lint `naked-mutex` check enforces that no
 * mutex member goes without at least one SIM_GUARDED_BY user.
 */
class SIM_CAPABILITY("mutex") CheckedMutex
{
  public:
    CheckedMutex() = default;
    CheckedMutex(const CheckedMutex&) = delete;
    CheckedMutex& operator=(const CheckedMutex&) = delete;

    void lock() SIM_ACQUIRE() { mutex_.lock(); }
    void unlock() SIM_RELEASE() { mutex_.unlock(); }
    bool try_lock() SIM_TRY_ACQUIRE(true) { return mutex_.try_lock(); }

    /**
     * Tell the analysis the mutex is held without touching it. For
     * contexts the analysis cannot see through — chiefly
     * condition-variable wait predicates, which run as separate
     * lambdas while the wait holds the lock.
     */
    void assertHeld() const SIM_ASSERT_CAPABILITY(this) {}

  private:
    // The wrapper *is* the annotated capability; the raw mutex under
    // it is the implementation detail.
    std::mutex mutex_; // scalesim-lint: allow(naked-mutex)
};

/**
 * RAII guard for CheckedMutex (the annotated std::lock_guard). Also
 * satisfies BasicLockable, so std::condition_variable_any can wait on
 * it directly: `cv.wait(lock, pred)` unlocks/relocks through the
 * annotated methods below.
 */
class SIM_SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(CheckedMutex& mutex) SIM_ACQUIRE(mutex)
        : mutex_(mutex)
    {
        mutex_.lock();
    }

    ~MutexLock() SIM_RELEASE() { mutex_.unlock(); }

    MutexLock(const MutexLock&) = delete;
    MutexLock& operator=(const MutexLock&) = delete;

    /** Relock after a condition-variable wait cycle. */
    void lock() SIM_ACQUIRE() { mutex_.lock(); }
    /** Unlock for a condition-variable wait cycle. */
    void unlock() SIM_RELEASE() { mutex_.unlock(); }

  private:
    CheckedMutex& mutex_;
};

} // namespace scalesim

#endif // SCALESIM_CHECK_THREAD_SAFETY_HH
