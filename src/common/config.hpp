/**
 * @file
 * Run configuration: an INI-style parser mirroring SCALE-Sim's .cfg
 * format plus the typed SimConfig consumed by every module. New v3
 * sections ([sparsity], [memory], [layout], [energy]) extend the v2
 * [architecture] section, as described in the paper.
 */

#ifndef SCALESIM_COMMON_CONFIG_HH
#define SCALESIM_COMMON_CONFIG_HH

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "common/types.hpp"

namespace scalesim
{

/**
 * Minimal INI file: [section] headers, key = value pairs, '#'/';'
 * comments. Section and key lookups are case-insensitive. Every entry
 * remembers its source line, so typed getters report malformed values
 * as `file:line: section.key: ...` instead of silently truncating.
 */
class IniFile
{
  public:
    /** Parse INI text; malformed lines trigger fatal(). */
    static IniFile parseString(const std::string& text,
                               const std::string& name = "<string>");

    /** Load and parse a file; fatal() when unreadable. */
    static IniFile load(const std::string& path);

    bool has(std::string_view section, std::string_view key) const;

    std::string getString(std::string_view section, std::string_view key,
                          const std::string& fallback = "") const;
    /** Parse as integer; trailing garbage and overflow are fatal(). */
    std::int64_t getInt(std::string_view section, std::string_view key,
                        std::int64_t fallback = 0) const;
    /** getInt that additionally rejects negative values. */
    std::uint64_t getUint(std::string_view section, std::string_view key,
                          std::uint64_t fallback = 0) const;
    /** getUint bounded to 32 bits (array dims, queue sizes, ...). */
    std::uint32_t getUint32(std::string_view section,
                            std::string_view key,
                            std::uint32_t fallback = 0) const;
    double getDouble(std::string_view section, std::string_view key,
                     double fallback = 0.0) const;
    bool getBool(std::string_view section, std::string_view key,
                 bool fallback = false) const;

    void set(std::string_view section, std::string_view key,
             const std::string& value);

    /** Source label used in error messages (path or "<string>"). */
    const std::string& source() const { return name_; }

  private:
    struct Entry
    {
        std::string value;
        int line = 0; ///< 0 when set programmatically
    };

    const Entry* find(std::string_view section,
                      std::string_view key) const;
    [[noreturn]] void badValue(std::string_view section,
                               std::string_view key, const Entry& entry,
                               const char* what) const;

    std::string name_ = "<string>";
    // canonical(section) -> canonical(key) -> entry
    std::map<std::string, std::map<std::string, Entry>> sections_;
};

/** How the compute engine is evaluated. */
enum class SimMode
{
    /** Closed-form runtime and access counts (fast sweeps). */
    Analytical,
    /** Fold-by-fold per-cycle demand streaming (stall-accurate). */
    Trace,
};

/** Double-buffered on-chip SRAM sizes and operand address regions. */
struct MemoryConfig
{
    std::uint64_t ifmapSramKb = 256;
    std::uint64_t filterSramKb = 256;
    std::uint64_t ofmapSramKb = 128;

    /** Base address of each operand region (word addresses). */
    Addr ifmapOffset = 0;
    Addr filterOffset = 10'000'000;
    Addr ofmapOffset = 20'000'000;

    /** Element size in bytes (affects DRAM traffic and storage). */
    std::uint32_t wordBytes = 1;

    /**
     * v2-style "pure bandwidth" main-memory model: words per compute
     * cycle available when the detailed DRAM model is disabled.
     */
    double bandwidthWordsPerCycle = 10.0;

    /** Words per main-memory transaction issued by the scratchpad. */
    std::uint32_t burstWords = 64;

    /** Demand requests the memory front-end can issue per cycle. */
    std::uint32_t issuePerCycle = 1;

    /** Folds the prefetcher may run ahead (1 = double buffering). */
    std::uint32_t prefetchDepth = 1;

    /**
     * Address convolution ifmaps through the real (H, W, C) tensor
     * with overlapping-window reuse (default). false reverts to
     * SCALE-Sim v2's im2col-expanded M x K accounting, where every
     * window element is a distinct address (more DRAM traffic).
     */
    bool im2colAddressing = true;

    /**
     * Record per-fold compute spans for timeline (Chrome trace)
     * export. Off by default — large layers have many folds.
     */
    bool recordFoldSpans = false;
};

/** Sparse-filter representation (paper §IV-C). */
enum class SparseRep
{
    Dense,
    Csr,
    Csc,
    EllpackBlock,
};

std::string toString(SparseRep rep);
SparseRep sparseRepFromString(std::string_view text);

/** [sparsity] section knobs (paper §IV-B Step 1). */
struct SparsityConfig
{
    /** SparsitySupport knob: enables layer-wise sparsity. */
    bool enabled = false;
    /** OptimizedMapping knob: enables row-wise N:M sparsity. */
    bool optimizedMapping = false;
    /** Storage representation; paper evaluations use ellpack_block. */
    SparseRep rep = SparseRep::EllpackBlock;
    /** BlockSize knob: the M of the N:M ratio for row-wise sparsity. */
    std::uint32_t blockSize = 4;
    /** Seed for randomized per-row N values. */
    std::uint64_t seed = 0xC0FFEEull;
};

/** [memory]/[dram] section knobs (paper §V). */
struct DramConfig
{
    /** Enables the detailed DRAM model (Ramulator substitute). */
    bool enabled = false;
    /** Technology preset name, e.g. DDR4_2400, LPDDR4_3200, HBM2. */
    std::string tech = "DDR4_2400";
    /** Controller engine: "eventskip" (default) or "stepped" (the
     *  bit-identical reference used by the A/B equivalence tests). */
    std::string engine = "eventskip";
    std::uint32_t channels = 1;
    std::uint32_t ranksPerChannel = 1;
    /** Finite request queues; the accelerator stalls when full. */
    std::uint32_t readQueueSize = 128;
    std::uint32_t writeQueueSize = 128;
    /** Compute-clock frequency in MHz, for clock-domain crossing. */
    double coreClockMhz = 1000.0;
};

/** [multicore] section knobs (trace-level multi-core runs). */
struct MultiCoreEngineConfig
{
    /**
     * Co-step engine for the shared-timeline contention model:
     * "serial" (single-threaded reference) or "epoch" (epoch-parallel,
     * bit-identical to serial for every worker count — golden A/B
     * enforced). `--mc-jobs N` on the CLI selects epoch with N
     * workers.
     */
    std::string engine = "serial";
    /** Worker threads for the epoch engine (0 = auto). */
    std::uint32_t jobs = 0;
};

/** [layout] section knobs (paper §VI). */
struct LayoutModelConfig
{
    /** Enables bank-conflict (data layout) modeling. */
    bool enabled = false;
    std::uint32_t banks = 16;
    std::uint32_t portsPerBank = 2;
    /** Total on-chip words deliverable per cycle across all banks. */
    std::uint32_t onChipBandwidth = 128;
};

/** [energy] section knobs (paper §VII). */
struct EnergyConfig
{
    /** Enables Accelergy-style energy/power estimation. */
    bool enabled = false;
    /** 'row size': words fetched per SRAM access (repeat lookup). */
    std::uint32_t rowSize = 32;
    /** 'bank size': row buffers per SRAM bank (reuse across cycles). */
    std::uint32_t bankSize = 4;
    /** Clock for power = energy / time. */
    double frequencyGhz = 1.0;
    /** Technology node tag used to select the energy table. */
    std::string node = "65nm";
};

/** Complete simulator configuration. */
struct SimConfig
{
    std::string runName = "scale_sim_v3";
    std::uint32_t arrayRows = 32;
    std::uint32_t arrayCols = 32;
    Dataflow dataflow = Dataflow::OutputStationary;
    SimMode mode = SimMode::Trace;

    /**
     * Fold-replay demand cache for trace mode: generate each fold
     * equivalence class once and replay shifted copies. Identical
     * output either way; off trades speed for simpler debugging.
     */
    bool foldCache = true;

    /**
     * Audit cross-module conservation laws after every layer and at
     * end of run (check::InvariantAuditor); violations surface through
     * sim.audit.* stats and the JSON report. `--audit` on the CLI.
     */
    bool audit = false;

    /**
     * Emit a time-series stats snapshot every N simulated cycles
     * (RunResult::intervals; gem5-style repeated stats sections, CSV/
     * JSON series, Perfetto counter tracks). 0 disables sampling.
     * `--interval N` on the CLI, `IntervalCycles` in [general].
     */
    std::uint64_t intervalCycles = 0;

    /** Vector/SIMD unit next to the array (§III-C). */
    std::uint32_t simdLanes = 16;
    /** Cycles per vector instruction (customizable latency). */
    std::uint32_t simdLatencyPerOp = 1;

    MemoryConfig memory;
    SparsityConfig sparsity;
    DramConfig dram;
    MultiCoreEngineConfig multicore;
    LayoutModelConfig layout;
    EnergyConfig energy;

    /** Number of PEs in the array. */
    std::uint64_t numPes() const
    {
        return static_cast<std::uint64_t>(arrayRows) * arrayCols;
    }

    /**
     * Check the configuration for inconsistencies (zero dimensions,
     * empty queues, bad clocks, ...); fatal() with a precise message
     * on the first violation.
     */
    void validate() const;

    /** Build a typed config from a parsed INI file. */
    static SimConfig fromIni(const IniFile& ini);

    /** Load from a .cfg path. */
    static SimConfig load(const std::string& path);

    /** TPU-v2-like preset used by the paper's overhead study. */
    static SimConfig tpuV2Like();

    /** Google-TPU-like preset used by the paper's memory study (§V-C). */
    static SimConfig tpuMemoryStudy();
};

} // namespace scalesim

#endif // SCALESIM_COMMON_CONFIG_HH
