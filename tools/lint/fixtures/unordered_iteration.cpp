/**
 * @file
 * Lint fixture for [unordered-iteration-to-output]. Never compiled —
 * scanned by tests/lint_test.cpp. The ofstream below marks this file
 * as output-writing, so iterating the unordered member leaks hash
 * order into the artifact: two firing lines (range-for, .begin()) and
 * one suppressed range-for.
 */

#include <fstream>
#include <string>
#include <unordered_map>

struct FixtureStats
{
    std::unordered_map<std::string, int> counters;

    void
    dump(std::ofstream& out) const
    {
        for (const auto& kv : counters) // finding: hash order leaks
            out << kv.first << " " << kv.second << "\n";
        auto it = counters.begin(); // finding: hash order leaks
        if (it != counters.end())
            out << it->first << "\n";
    }

    void
    dumpAllowed(std::ofstream& out) const
    {
        // scalesim-lint: allow(unordered-iteration-to-output)
        for (const auto& kv : counters) // suppressed
            out << kv.first << "\n";
    }
};
