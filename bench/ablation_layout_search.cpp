/**
 * @file
 * Ablation: per-layer data-layout search (§VI; FEATHER-style layout
 * flexibility). For each layer and dataflow, evaluate every layout
 * scheme (row-major / column-major / tiled) and report the best
 * scheme's slowdown vs always-row-major — quantifying how much a
 * layout-aware compiler recovers.
 */

#include <limits>

#include "bench_util.hpp"
#include "common/log.hpp"
#include "common/workloads.hpp"
#include "layout/layout.hpp"

using namespace scalesim;
using namespace scalesim::layout;
using namespace scalesim::systolic;

namespace
{

double
evaluate(const LayerSpec& layer, Dataflow df, LayoutScheme scheme,
         const LayoutModelConfig& cfg)
{
    MemoryConfig mem;
    const OperandMap operands = OperandMap::forLayer(layer, mem);
    DemandGenerator gen(layer.toGemm(), df, 32, 32, operands);
    BankConflictEvaluator eval(
        cfg, OperandLayouts::forOperands(operands, cfg, scheme));
    gen.run(eval);
    return eval.slowdown();
}

const char*
schemeName(LayoutScheme s)
{
    switch (s) {
      case LayoutScheme::RowMajor: return "row";
      case LayoutScheme::ColMajor: return "col";
      case LayoutScheme::Tiled: return "tiled";
    }
    return "?";
}

} // namespace

int
main()
{
    setQuiet(true);
    std::printf("=== Ablation: per-layer layout search vs fixed "
                "row-major (§VI) ===\n");
    LayoutModelConfig cfg;
    cfg.enabled = true;
    cfg.banks = 8;
    cfg.portsPerBank = 1;
    cfg.onChipBandwidth = 64;

    const Topology topo = workloads::resnet18Prefix(6);
    benchutil::Table table({10, 6, 12, 12, 12, 8});
    table.row({"layer", "df", "row-major", "best", "gain", "scheme"});
    table.rule();
    double total_gain = 0.0;
    int rows = 0;
    for (const auto& layer : topo.layers) {
        for (auto df : {Dataflow::OutputStationary,
                        Dataflow::WeightStationary,
                        Dataflow::InputStationary}) {
            const double rm = evaluate(layer, df,
                                       LayoutScheme::RowMajor, cfg);
            double best = std::numeric_limits<double>::max();
            LayoutScheme best_scheme = LayoutScheme::RowMajor;
            for (auto scheme : {LayoutScheme::RowMajor,
                                LayoutScheme::ColMajor,
                                LayoutScheme::Tiled}) {
                const double s = evaluate(layer, df, scheme, cfg);
                if (s < best) {
                    best = s;
                    best_scheme = scheme;
                }
            }
            const double gain = rm / best;
            total_gain += gain;
            ++rows;
            table.row({layer.name, toString(df),
                       benchutil::fmt("%.2fx", rm),
                       benchutil::fmt("%.2fx", best),
                       benchutil::fmt("%.2fx", gain),
                       schemeName(best_scheme)});
        }
    }
    table.rule();
    std::printf("mean slowdown recovered by layout search: %.2fx "
                "(>= 1 by construction; FEATHER motivates exactly "
                "this reconfigurability)\n",
                total_gain / rows);
    return 0;
}
