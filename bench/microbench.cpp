/**
 * @file
 * google-benchmark microbenchmarks of the simulator's hot paths:
 * analytical layer evaluation, per-cycle demand generation, the DRAM
 * controller under streaming and row-thrashing patterns, the
 * scratchpad scheduler, and a full end-to-end layer with every
 * feature enabled. Useful for tracking simulator performance itself
 * (the quantity Table IV reports).
 */

#include <benchmark/benchmark.h>

#include "common/log.hpp"
#include "common/workloads.hpp"
#include "core/simulator.hpp"
#include "dram/system.hpp"
#include "energy/action_counts.hpp"
#include "layout/layout.hpp"
#include "systolic/demand.hpp"

using namespace scalesim;

namespace
{

const GemmDims kGemm{512, 256, 384};

void
BM_AnalyticalLayer(benchmark::State& state)
{
    for (auto _ : state) {
        systolic::FoldGrid grid(kGemm, Dataflow::WeightStationary, 32,
                                32);
        benchmark::DoNotOptimize(grid.totalCycles());
        benchmark::DoNotOptimize(grid.sramAccessCounts());
    }
}
BENCHMARK(BM_AnalyticalLayer);

void
BM_DemandGeneration(benchmark::State& state)
{
    MemoryConfig mem;
    const systolic::OperandMap operands(kGemm, mem);
    for (auto _ : state) {
        systolic::DemandGenerator gen(
            kGemm, Dataflow::OutputStationary,
            static_cast<std::uint32_t>(state.range(0)),
            static_cast<std::uint32_t>(state.range(0)), operands);
        systolic::CountingVisitor counter;
        gen.run(counter);
        benchmark::DoNotOptimize(counter.ifmapReads);
    }
    state.SetItemsProcessed(state.iterations() * kGemm.macs());
}
BENCHMARK(BM_DemandGeneration)->Arg(16)->Arg(32)->Arg(64);

void
BM_DramStreaming(benchmark::State& state)
{
    for (auto _ : state) {
        dram::DramSystemConfig cfg;
        cfg.timing = dram::timingPreset("DDR4_2400");
        cfg.channels = static_cast<std::uint32_t>(state.range(0));
        dram::DramSystem sys(cfg);
        Cycle last = 0;
        for (int i = 0; i < 4096; ++i) {
            last = std::max(last, sys.request(
                static_cast<Addr>(i) * 64, 64, false, 0));
        }
        benchmark::DoNotOptimize(last);
    }
    state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_DramStreaming)->Arg(1)->Arg(4);

void
BM_DramRowThrash(benchmark::State& state)
{
    const dram::DramTiming timing = dram::timingPreset("DDR4_2400");
    for (auto _ : state) {
        dram::DramSystemConfig cfg;
        cfg.timing = timing;
        dram::DramSystem sys(cfg);
        Cycle last = 0;
        const Addr stride = timing.rowBytes * timing.banksPerRank;
        for (int i = 0; i < 4096; ++i) {
            last = std::max(last, sys.request(
                static_cast<Addr>(i) * stride, 64, false, 0));
        }
        benchmark::DoNotOptimize(last);
    }
    state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_DramRowThrash);

void
BM_ScratchpadLayer(benchmark::State& state)
{
    MemoryConfig mem;
    const systolic::OperandMap operands(kGemm, mem);
    for (auto _ : state) {
        systolic::BandwidthMemory memory(16.0);
        systolic::DoubleBufferedScratchpad spad(
            systolic::ScratchpadConfig{}, memory);
        systolic::FoldGrid grid(kGemm, Dataflow::WeightStationary, 32,
                                32);
        benchmark::DoNotOptimize(spad.runLayer(grid, operands));
    }
}
BENCHMARK(BM_ScratchpadLayer);

void
BM_EndToEndLayerAllFeatures(benchmark::State& state)
{
    setQuiet(true);
    Topology topo;
    topo.name = "bench";
    LayerSpec layer = LayerSpec::gemm("g", kGemm.m, kGemm.n, kGemm.k);
    layer.sparseN = 2;
    layer.sparseM = 4;
    topo.layers.push_back(layer);
    for (auto _ : state) {
        SimConfig cfg;
        cfg.arrayRows = cfg.arrayCols = 32;
        cfg.dataflow = Dataflow::WeightStationary;
        cfg.sparsity.enabled = true;
        cfg.dram.enabled = true;
        cfg.layout.enabled = true;
        cfg.energy.enabled = true;
        core::Simulator sim(cfg);
        benchmark::DoNotOptimize(sim.run(topo));
    }
}
BENCHMARK(BM_EndToEndLayerAllFeatures);

void
BM_ActionCounting(benchmark::State& state)
{
    MemoryConfig mem;
    const systolic::OperandMap operands(kGemm, mem);
    EnergyConfig ecfg;
    for (auto _ : state) {
        systolic::DemandGenerator gen(kGemm,
                                      Dataflow::WeightStationary, 32,
                                      32, operands);
        energy::ActionCountVisitor visitor(ecfg);
        gen.run(visitor);
        benchmark::DoNotOptimize(visitor.counts());
    }
}
BENCHMARK(BM_ActionCounting);

} // namespace

BENCHMARK_MAIN();
