#include "obs/cpi.hpp"

#include "common/log.hpp"
#include "obs/stats.hpp"

namespace scalesim::obs
{

const char*
CpiStack::bucketName(unsigned i)
{
    switch (i) {
      case 0: return "compute";
      case 1: return "vector";
      case 2: return "drain";
      case 3: return "bandwidth";
      case 4: return "prefetchMiss";
      case 5: return "l2Wait";
      case 6: return "dramQueue";
      case 7: return "dramService";
      case 8: return "refresh";
    }
    panic("CpiStack bucket index %u out of range", i);
}

std::uint64_t
CpiStack::bucketValue(unsigned i) const
{
    switch (i) {
      case 0: return compute;
      case 1: return vectorUnit;
      case 2: return drain;
      case 3: return bandwidth;
      case 4: return prefetchMiss;
      case 5: return l2Wait;
      case 6: return dramQueue;
      case 7: return dramService;
      case 8: return refresh;
    }
    panic("CpiStack bucket index %u out of range", i);
}

std::uint64_t
CpiStack::total() const
{
    std::uint64_t sum = 0;
    for (unsigned i = 0; i < kBucketCount; ++i)
        sum += bucketValue(i);
    return sum;
}

void
CpiStack::accumulate(const CpiStack& other, std::uint64_t reps)
{
    compute += other.compute * reps;
    vectorUnit += other.vectorUnit * reps;
    drain += other.drain * reps;
    bandwidth += other.bandwidth * reps;
    prefetchMiss += other.prefetchMiss * reps;
    l2Wait += other.l2Wait * reps;
    dramQueue += other.dramQueue * reps;
    dramService += other.dramService * reps;
    refresh += other.refresh * reps;
}

void
CpiStack::registerStats(StatsRegistry& reg, std::string_view name,
                        std::string_view desc) const
{
    for (unsigned i = 0; i < kBucketCount; ++i) {
        reg.addVectorElem(name, bucketName(i), desc,
                          static_cast<double>(bucketValue(i)));
    }
}

} // namespace scalesim::obs
