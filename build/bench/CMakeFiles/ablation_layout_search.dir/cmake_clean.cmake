file(REMOVE_RECURSE
  "CMakeFiles/ablation_layout_search.dir/ablation_layout_search.cpp.o"
  "CMakeFiles/ablation_layout_search.dir/ablation_layout_search.cpp.o.d"
  "ablation_layout_search"
  "ablation_layout_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_layout_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
