/**
 * @file
 * Minimal streaming JSON writer used by every machine-readable output
 * of the observability layer (stats.json, run reports, Chrome traces).
 * Keeps a nesting stack so emitted documents are well-formed by
 * construction; non-finite doubles are emitted as null so downstream
 * parsers never see bare `nan`/`inf` tokens.
 */

#ifndef SCALESIM_OBS_JSON_HH
#define SCALESIM_OBS_JSON_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace scalesim::obs
{

/** Escape a string for inclusion in a JSON document (no quotes). */
std::string jsonEscape(std::string_view text);

/**
 * Streaming writer. Usage:
 *
 *   JsonWriter w(out);
 *   w.beginObject();
 *   w.key("cycles").value(42);
 *   w.key("layers").beginArray();
 *   ...
 *   w.endArray();
 *   w.endObject();
 *
 * Commas and indentation are handled internally.
 */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream& out, bool pretty = true);

    JsonWriter& beginObject();
    JsonWriter& endObject();
    JsonWriter& beginArray();
    JsonWriter& endArray();

    /** Emit an object key; must be followed by a value or container. */
    JsonWriter& key(std::string_view name);

    JsonWriter& value(std::string_view text);
    JsonWriter& value(const char* text);
    JsonWriter& value(double number);
    JsonWriter& value(std::uint64_t number);
    JsonWriter& value(std::int64_t number);
    JsonWriter& value(std::uint32_t number);
    JsonWriter& value(int number);
    JsonWriter& value(bool flag);
    JsonWriter& null();

    /** key() + value() in one call. */
    template <typename T>
    JsonWriter&
    field(std::string_view name, T v)
    {
        key(name);
        return value(v);
    }

  private:
    void beforeValue();
    void indent();

    std::ostream& out_;
    bool pretty_;
    /** One entry per open container: true = object, false = array. */
    std::vector<bool> containers_;
    /** Whether the current container already holds an element. */
    std::vector<bool> hasElement_;
    bool pendingKey_ = false;
};

} // namespace scalesim::obs

#endif // SCALESIM_OBS_JSON_HH
