/**
 * @file
 * SCALE-Sim-style command-line front-end:
 *
 *   scalesim_cli [-c config.cfg] [-t topology.csv | -w workload]
 *                [-o output_dir] [-s]
 *
 * -s additionally writes the cycle-accurate SRAM demand traces
 * (IFMAP_SRAM_TRACE.csv etc.) and the main-memory request trace
 * (MEM_TRACE.csv, §V-B format) into the output directory.
 *
 * Mirrors the original tool's flow: parse the .cfg, parse the topology
 * CSV (conv or GEMM format, with the v3 SparsitySupport column), run,
 * and write COMPUTE_REPORT.csv / BANDWIDTH_REPORT.csv /
 * SPARSE_REPORT.csv / ENERGY_REPORT.csv into the output directory.
 * With no arguments it runs ResNet-18 on the default configuration.
 */

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <limits>
#include <string>
#include <string_view>

#include "check/audit.hpp"
#include "common/log.hpp"
#include "common/parse.hpp"
#include "common/workloads.hpp"
#include "core/simulator.hpp"
#include "multicore/trace_sim.hpp"
#include "obs/stats.hpp"
#include "systolic/trace_io.hpp"

using namespace scalesim;

namespace
{

void
usage()
{
    std::cerr <<
        "usage: scalesim_cli [-c config.cfg] [-t topology.csv]\n"
        "                    [-w workload] [-o output_dir] [-s]\n"
        "                    [--stats file] [--stats-json file]\n"
        "                    [--trace file] [--json file]\n"
        "                    [--no-fold-cache] [--audit]\n"
        "                    [--interval N]\n"
        "                    [--multicore PRxPC] [--contention MODEL]\n"
        "                    [--mc-jobs N]\n"
        "  --no-fold-cache disable the fold-replay demand cache\n"
        "               (same outputs, slower trace mode)\n"
        "  --audit      audit cross-module conservation laws after\n"
        "               every layer; exit 2 on any violation\n"
        "  --interval   sample the stats registry every N simulated\n"
        "               cycles; writes INTERVAL_STATS.txt and\n"
        "               INTERVAL_SERIES.{csv,json} into the output\n"
        "               dir and adds counter tracks to --trace\n"
        "  --stats      gem5-format stats.txt dump\n"
        "  --stats-json machine-readable stats dump\n"
        "  --json       full run report as one JSON document\n"
        "  --trace      Chrome trace-event timeline (chrome://tracing\n"
        "               or ui.perfetto.dev); enables fold spans\n"
        "  --multicore  run the trace-level multi-core system on a\n"
        "               PRxPC grid (e.g. 2x2) instead of one core\n"
        "  --contention shared (cycle-interleaved co-simulation,\n"
        "               default) | static (sequential 1/N split)\n"
        "  --mc-jobs    co-step the shared-contention cores with the\n"
        "               epoch-parallel engine on N worker threads\n"
        "               (0 = auto; bit-identical to the serial\n"
        "               engine); [multicore] Engine/Jobs in the\n"
        "               config file select the same\n"
        "workloads: ";
    for (const auto& name : workloads::names())
        std::cerr << name << " ";
    std::cerr << "\n";
}

} // namespace

int
main(int argc, char** argv)
{
    std::string config_path;
    std::string topology_path;
    std::string workload = "resnet18";
    std::string out_dir = ".";
    std::string stats_path;
    std::string stats_json_path;
    std::string json_path;
    std::string trace_path;
    bool write_traces = false;
    bool fold_cache = true;
    bool audit = false;
    std::string interval_arg;
    std::string multicore_grid;
    std::string contention_name = "shared";
    std::string mc_jobs_arg;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                usage();
                std::exit(1);
            }
            return argv[++i];
        };
        if (arg == "-c") {
            config_path = next();
        } else if (arg == "-t") {
            topology_path = next();
        } else if (arg == "-w") {
            workload = next();
        } else if (arg == "-o") {
            out_dir = next();
        } else if (arg == "-s") {
            write_traces = true;
        } else if (arg == "--stats") {
            stats_path = next();
        } else if (arg == "--stats-json") {
            stats_json_path = next();
        } else if (arg == "--json") {
            json_path = next();
        } else if (arg == "--trace") {
            trace_path = next();
        } else if (arg == "--no-fold-cache") {
            fold_cache = false;
        } else if (arg == "--audit") {
            audit = true;
        } else if (arg == "--interval") {
            interval_arg = next();
        } else if (arg == "--multicore") {
            multicore_grid = next();
        } else if (arg == "--contention") {
            contention_name = next();
        } else if (arg == "--mc-jobs") {
            mc_jobs_arg = next();
        } else {
            usage();
            return arg == "-h" || arg == "--help" ? 0 : 1;
        }
    }

    try {
        SimConfig cfg = config_path.empty()
            ? SimConfig{} : SimConfig::load(config_path);
        if (config_path.empty()) {
            cfg.energy.enabled = true;
            cfg.sparsity.enabled = true;
        }
        const Topology topo = topology_path.empty()
            ? workloads::byName(workload)
            : Topology::load(topology_path);
        if (!trace_path.empty())
            cfg.memory.recordFoldSpans = true;
        if (!fold_cache)
            cfg.foldCache = false;
        if (audit)
            cfg.audit = true;
        if (!interval_arg.empty()) {
            std::uint64_t interval = 0;
            if (parseUint64(interval_arg, interval)
                != NumberParse::Ok) {
                fatal("--interval expects a cycle count, got '%s'",
                      interval_arg.c_str());
            }
            cfg.intervalCycles = interval;
        }

        if (!multicore_grid.empty()) {
            // Trace-level multi-core path: partition each layer over a
            // PrxPc grid of arrays sharing an L2 and the DRAM bus.
            std::uint64_t pr = 0, pc = 0;
            const std::string_view grid = multicore_grid;
            const std::size_t cross = grid.find('x');
            if (cross == std::string_view::npos
                || parseUint64(grid.substr(0, cross), pr)
                       != NumberParse::Ok
                || parseUint64(grid.substr(cross + 1), pc)
                       != NumberParse::Ok
                || pr == 0 || pc == 0) {
                fatal("--multicore expects PRxPC (e.g. 2x2), got '%s'",
                      multicore_grid.c_str());
            }
            const multicore::ContentionModel contention
                = multicore::contentionModelFromString(
                    contention_name);
            multicore::MultiCoreTraceConfig mc;
            mc.pr = pr;
            mc.pc = pc;
            mc.arrayRows = cfg.arrayRows;
            mc.arrayCols = cfg.arrayCols;
            mc.dataflow = cfg.dataflow;
            mc.dramWordsPerCycle = cfg.memory.bandwidthWordsPerCycle;
            mc.contention = contention;
            mc.engine = multicore::multiCoreEngineFromString(
                cfg.multicore.engine);
            mc.jobs = cfg.multicore.jobs;
            if (!mc_jobs_arg.empty()) {
                std::uint64_t jobs = 0;
                if (parseUint64(mc_jobs_arg, jobs) != NumberParse::Ok
                    || jobs > std::numeric_limits<unsigned>::max()) {
                    fatal("--mc-jobs expects a worker count, got '%s'",
                          mc_jobs_arg.c_str());
                }
                mc.jobs = static_cast<unsigned>(jobs);
                mc.engine = multicore::MultiCoreEngine::Epoch;
            }
            const std::uint32_t word
                = std::max<std::uint32_t>(1, cfg.memory.wordBytes);
            mc.l1.ifmapWords = cfg.memory.ifmapSramKb * 1024 / word;
            mc.l1.filterWords = cfg.memory.filterSramKb * 1024 / word;
            mc.l1.ofmapWords = cfg.memory.ofmapSramKb * 1024 / word;

            inform("running %s (%zu layers) on a %llux%llu grid of "
                   "%ux%u %s arrays, %s contention, %s engine",
                   topo.name.c_str(), topo.layers.size(),
                   static_cast<unsigned long long>(pr),
                   static_cast<unsigned long long>(pc),
                   cfg.arrayRows, cfg.arrayCols,
                   toString(cfg.dataflow).c_str(),
                   multicore::toString(contention),
                   multicore::toString(mc.engine));

            multicore::MultiCoreTraceSimulator mcs(mc);
            obs::StatsRegistry reg;
            check::InvariantAuditor auditor;
            Cycle makespan = 0;
            std::uint64_t conflicts = 0;
            std::uint64_t dram_read = 0;
            std::uint64_t dram_write = 0;
            for (std::size_t li = 0; li < topo.layers.size(); ++li) {
                const auto& layer = topo.layers[li];
                const auto res = mcs.runLayer(layer);
                res.registerStats(reg,
                                  "mc.l" + std::to_string(li));
                if (audit) {
                    const std::string scope = "mc.l"
                        + std::to_string(li);
                    auditor.auditArbiter(res, mc.useL2, scope);
                    for (std::size_t c = 0; c < res.perCore.size();
                         ++c) {
                        const std::string core_scope = scope
                            + ".core" + std::to_string(c);
                        auditor.auditStallAccounting(res.perCore[c],
                                                     core_scope);
                        auditor.auditCpiStack(
                            res.perCore[c].cpi,
                            res.perCore[c].totalCycles, core_scope);
                    }
                }
                makespan += res.makespan;
                conflicts += res.arb.arbConflicts;
                dram_read += res.dramReadWords;
                dram_write += res.dramWriteWords;
                std::cout << layer.name << ": makespan "
                          << res.makespan << " cycles, dram "
                          << res.dramReadWords << "r/"
                          << res.dramWriteWords << "w words";
                if (mc.contention
                    == multicore::ContentionModel::Shared) {
                    std::cout << ", arb conflicts "
                              << res.arb.arbConflicts;
                }
                std::cout << "\n";
            }
            std::cout << "total makespan:   " << makespan
                      << " cycles\n"
                      << "dram read words:  " << dram_read << "\n"
                      << "dram write words: " << dram_write << "\n";
            if (mc.contention == multicore::ContentionModel::Shared)
                std::cout << "arb conflicts:    " << conflicts
                          << "\n";
            if (audit) {
                auditor.report().registerStats(reg);
                std::cout << "audit checks:     "
                          << auditor.report().checks() << ", "
                          << auditor.report().violations().size()
                          << " violation(s)\n";
                auditor.report().writeReport(std::cerr);
            }

            auto dump_to = [&](const std::string& path,
                               auto writer) {
                std::ofstream out(path);
                if (!out)
                    fatal("cannot write %s", path.c_str());
                (reg.*writer)(out);
                inform("wrote %s", path.c_str());
            };
            if (!stats_path.empty())
                dump_to(stats_path, &obs::StatsRegistry::dump);
            if (!stats_json_path.empty())
                dump_to(stats_json_path,
                        &obs::StatsRegistry::dumpJson);
            if (!json_path.empty() || !trace_path.empty()
                || write_traces || cfg.intervalCycles > 0) {
                warn("--json/--trace/-s/--interval are single-core "
                     "outputs; ignored with --multicore");
            }
            return audit && !auditor.report().clean() ? 2 : 0;
        }

        inform("running %s (%zu layers) on a %ux%u %s array",
               topo.name.c_str(), topo.layers.size(), cfg.arrayRows,
               cfg.arrayCols, toString(cfg.dataflow).c_str());
        core::Simulator sim(cfg);
        const core::RunResult run = sim.run(topo);

        std::filesystem::create_directories(out_dir);
        auto write = [&](const char* name, auto writer) {
            const std::string path = out_dir + "/" + name;
            std::ofstream out(path);
            if (!out)
                fatal("cannot write %s", path.c_str());
            (run.*writer)(out);
            inform("wrote %s", path.c_str());
        };
        write("COMPUTE_REPORT.csv", &core::RunResult::writeComputeReport);
        write("BANDWIDTH_REPORT.csv",
              &core::RunResult::writeBandwidthReport);
        if (cfg.sparsity.enabled || cfg.sparsity.optimizedMapping) {
            write("SPARSE_REPORT.csv",
                  &core::RunResult::writeSparseReport);
        }
        if (cfg.energy.enabled) {
            write("ENERGY_REPORT.csv",
                  &core::RunResult::writeEnergyReport);
            write("POWER_REPORT.csv", &core::RunResult::writePowerReport);
        }

        // Observability outputs go to explicit paths (not out_dir).
        auto write_to = [&](const std::string& path, auto writer) {
            std::ofstream out(path);
            if (!out)
                fatal("cannot write %s", path.c_str());
            (run.*writer)(out);
            inform("wrote %s", path.c_str());
        };
        if (!stats_path.empty())
            write_to(stats_path, &core::RunResult::writeStats);
        if (!stats_json_path.empty())
            write_to(stats_json_path, &core::RunResult::writeStatsJson);
        if (!json_path.empty())
            write_to(json_path, &core::RunResult::writeJson);
        if (!trace_path.empty())
            write_to(trace_path, &core::RunResult::writeChromeTrace);

        if (!run.intervals.empty()) {
            auto write_series = [&](const char* name, auto method) {
                const std::string path = out_dir + "/" + name;
                std::ofstream out(path);
                if (!out)
                    fatal("cannot write %s", path.c_str());
                (run.intervals.*method)(out);
                inform("wrote %s", path.c_str());
            };
            write_series("INTERVAL_STATS.txt",
                         &obs::IntervalSeries::writeStatsText);
            write_series("INTERVAL_SERIES.csv",
                         &obs::IntervalSeries::writeCsv);
            write_series("INTERVAL_SERIES.json",
                         &obs::IntervalSeries::writeJson);
        }

        if (write_traces) {
            // Cycle-accurate SRAM traces from one demand pass per
            // layer, plus the §V-B main-memory request trace.
            std::ofstream ifmap_out(out_dir + "/IFMAP_SRAM_TRACE.csv");
            std::ofstream filter_out(out_dir
                                     + "/FILTER_SRAM_TRACE.csv");
            std::ofstream ofmap_out(out_dir + "/OFMAP_SRAM_TRACE.csv");
            std::ofstream oread_out(out_dir
                                    + "/OFMAP_READ_SRAM_TRACE.csv");
            systolic::BandwidthMemory inner(
                cfg.memory.bandwidthWordsPerCycle);
            systolic::TracingMemory tracer(inner,
                                           cfg.memory.wordBytes);
            systolic::ScratchpadConfig spad_cfg;
            spad_cfg.ifmapWords = cfg.memory.ifmapSramKb * 1024
                / std::max<std::uint32_t>(1, cfg.memory.wordBytes);
            spad_cfg.filterWords = cfg.memory.filterSramKb * 1024
                / std::max<std::uint32_t>(1, cfg.memory.wordBytes);
            spad_cfg.ofmapWords = cfg.memory.ofmapSramKb * 1024
                / std::max<std::uint32_t>(1, cfg.memory.wordBytes);
            systolic::DoubleBufferedScratchpad spad(spad_cfg, tracer);
            for (const auto& layer : topo.layers) {
                const auto operands = systolic::OperandMap::forLayer(
                    layer, cfg.memory);
                systolic::DemandGenerator gen(
                    layer.toGemm(), cfg.dataflow, cfg.arrayRows,
                    cfg.arrayCols, operands);
                gen.setFoldCache(cfg.foldCache);
                systolic::SramTraceWriter writer(&ifmap_out,
                                                 &filter_out,
                                                 &ofmap_out,
                                                 &oread_out);
                gen.run(writer);
                spad.reset();
                spad.runLayer(gen.grid(), operands);
            }
            std::ofstream mem_out(out_dir + "/MEM_TRACE.csv");
            systolic::writeMemTrace(mem_out, tracer.records());
            inform("wrote SRAM and memory traces to %s",
                   out_dir.c_str());
        }

        run.writeSummary(std::cout);
        std::cout << "total cycles:   " << run.totalCycles << "\n"
                  << "compute cycles: " << run.computeCycles << "\n"
                  << "stall cycles:   " << run.stallCycles << "\n";
        if (cfg.energy.enabled) {
            std::cout << "energy (mJ):    "
                      << run.totalEnergy.totalMj() << "\n"
                      << "avg power (W):  " << run.avgPowerW << "\n"
                      << "EdP:            " << run.edp << "\n";
        }
        if (run.audited && !run.audit.clean()) {
            run.audit.writeReport(std::cerr);
            return 2;
        }
    } catch (const FatalError& err) {
        std::cerr << "error: " << err.what() << "\n";
        return 1;
    }
    return 0;
}
