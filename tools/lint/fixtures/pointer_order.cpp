/**
 * @file
 * Lint fixture for [pointer-order]. Never compiled — scanned by
 * tests/lint_test.cpp: four firing lines (pointer-keyed map, pointer
 * set, reinterpret_cast to uintptr_t, std::less over pointers) and
 * one suppressed pointer-keyed map.
 */

#include <cstdint>
#include <functional>
#include <map>
#include <set>

struct FixtureNode
{
    int id = 0;
};

std::map<FixtureNode*, int> fixture_by_address; // finding

std::set<const FixtureNode*> fixture_visited; // finding

std::uintptr_t
fixture_key(const FixtureNode* node)
{
    return reinterpret_cast<std::uintptr_t>(node); // finding
}

bool
fixture_compare(FixtureNode* a, FixtureNode* b)
{
    return std::less<FixtureNode*>()(a, b); // finding
}

// scalesim-lint: allow(pointer-order)
std::map<FixtureNode*, int> fixture_allowed; // suppressed
