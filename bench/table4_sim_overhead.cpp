/**
 * @file
 * Reproduces Table IV: simulation-time overhead of each v3 feature
 * relative to the v2-equivalent baseline on a TPU-v2-like
 * configuration, for AlexNet, ResNet-18, ViT-L and ViT-S.
 *
 * Baseline = trace-driven demand generation + scratchpad/bandwidth
 * timing (what SCALE-Sim v2 does). Features measured: multi-core
 * partition exploration, 2:4 and 1:4 sparsity, energy (Accelergy
 * substitute), detailed DRAM (Ramulator substitute), and layout.
 * Expected shape: sparsity < 1x (compressed runs are faster),
 * DRAM/multi-core/energy >= ~1x, layout the largest.
 *
 * Times come from the simulator's own SimProfiler instrumentation
 * (per-phase wall-clock threaded through Simulator::runLayer), not
 * from external stopwatches. Pass `--jobs N` to spread the
 * (workload x feature) config points over N worker threads — each
 * point owns its Simulator, so the measured ratios are unchanged
 * while the bench's wall-clock shrinks.
 */

#include "bench_util.hpp"
#include "common/log.hpp"
#include "common/profiler.hpp"
#include "common/workloads.hpp"
#include "core/simulator.hpp"
#include "multicore/system.hpp"
#include "systolic/demand.hpp"

using namespace scalesim;

namespace
{

SimConfig
tpuConfig()
{
    SimConfig cfg = SimConfig::tpuV2Like();
    cfg.mode = SimMode::Trace;
    return cfg;
}

/** v2-equivalent baseline: demand generation + timing, no features. */
SimProfile
baselineProfile(const Topology& topo)
{
    SimProfiler profiler;
    const SimConfig cfg = tpuConfig();
    // The plain simulator skips the demand pass without consumers;
    // drive it explicitly to mirror v2's trace generation.
    benchutil::Timer demand_timer;
    for (const auto& layer : topo.layers) {
        const GemmDims gemm = layer.toGemm();
        const systolic::OperandMap operands(gemm, cfg.memory);
        systolic::DemandGenerator gen(gemm, cfg.dataflow, cfg.arrayRows,
                                      cfg.arrayCols, operands);
        systolic::CountingVisitor counter;
        gen.run(counter);
    }
    profiler.chargeExternal(SimPhase::DemandGen,
                            demand_timer.seconds());
    core::Simulator timing_sim(cfg);
    profiler.merge(timing_sim.run(topo).profile);
    return profiler.snapshot();
}

SimProfile
featureProfile(const Topology& topo, const char* feature)
{
    SimProfiler profiler;
    const std::string what(feature);
    if (what == "multicore") {
        benchutil::Timer search_timer;
        multicore::TensorCoreConfig core;
        core.arrayRows = core.arrayCols = 32;
        for (auto scheme : {multicore::PartitionScheme::Spatial,
                            multicore::PartitionScheme::SpatioTemporal1,
                            multicore::PartitionScheme::SpatioTemporal2
                           }) {
            auto cfg = multicore::MultiCoreConfig::homogeneous(
                core, 4, 4, scheme);
            multicore::MultiCoreSimulator sim(cfg);
            for (const auto& layer : topo.layers) {
                const GemmDims gemm = layer.toGemm();
                multicore::enumeratePartitions(gemm,
                                               Dataflow::
                                                   WeightStationary,
                                               32, 32, 16, scheme);
                sim.runGemm(gemm, Dataflow::WeightStationary);
            }
        }
        profiler.chargeOther(search_timer.seconds());
        // Plus the baseline timing pass the run still performs.
        core::Simulator sim(tpuConfig());
        profiler.merge(sim.run(topo).profile);
        return profiler.snapshot();
    }
    SimConfig cfg = tpuConfig();
    if (what == "sparse24" || what == "sparse14") {
        cfg.sparsity.enabled = true;
        Topology annotated = workloads::withUniformSparsity(
            topo, what == "sparse24" ? 2 : 1, 4);
        benchutil::Timer demand_timer;
        for (const auto& layer : annotated.layers) {
            sparse::SparseLayerModel model(layer, cfg.sparsity);
            const systolic::OperandMap operands(layer.toGemm(),
                                                cfg.memory);
            systolic::DemandGenerator gen(
                layer.toGemm(), cfg.dataflow, cfg.arrayRows,
                cfg.arrayCols, operands,
                model.active() ? &model.pattern() : nullptr);
            systolic::CountingVisitor counter;
            gen.run(counter);
        }
        profiler.chargeExternal(SimPhase::DemandGen,
                                demand_timer.seconds());
        core::Simulator sim(cfg);
        profiler.merge(sim.run(annotated).profile);
        return profiler.snapshot();
    }
    if (what == "energy") {
        cfg.energy.enabled = true;
    } else if (what == "dram") {
        cfg.dram.enabled = true;
        // DRAM runs atop the baseline's demand generation.
        benchutil::Timer demand_timer;
        for (const auto& layer : topo.layers) {
            const GemmDims gemm = layer.toGemm();
            const systolic::OperandMap operands(gemm, cfg.memory);
            systolic::DemandGenerator gen(gemm, cfg.dataflow,
                                          cfg.arrayRows, cfg.arrayCols,
                                          operands);
            systolic::CountingVisitor counter;
            gen.run(counter);
        }
        profiler.chargeExternal(SimPhase::DemandGen,
                                demand_timer.seconds());
    } else if (what == "layout") {
        cfg.layout.enabled = true;
        cfg.layout.banks = 32;
        cfg.layout.onChipBandwidth = 256;
    }
    core::Simulator sim(cfg);
    profiler.merge(sim.run(topo).profile);
    return profiler.snapshot();
}

} // namespace

int
main(int argc, char** argv)
{
    setQuiet(true);
    const unsigned jobs = benchutil::jobsFromArgs(argc, argv, 1);
    std::printf("=== Table IV: simulation-time overhead vs v2-style "
                "baseline (TPU-v2-like config, jobs=%u) ===\n",
                resolveJobs(jobs));
    const char* workload_names[] = {"alexnet", "resnet18", "vit_large",
                                    "vit_small"};
    const char* features[] = {"multicore", "sparse24", "sparse14",
                              "energy", "dram", "layout"};
    constexpr int kWorkloads = 4;
    constexpr int kFeatures = 6;

    // One config point per (workload, baseline-or-feature) pair; each
    // point measures itself through SimProfiler and stores its profile
    // by index, so any --jobs value prints the same table rows.
    constexpr int kPerWorkload = 1 + kFeatures;
    benchutil::Timer wall;
    std::vector<SimProfile> profiles(
        static_cast<std::size_t>(kWorkloads) * kPerWorkload);
    benchutil::forEachPoint(profiles.size(), jobs,
                            [&](std::uint64_t i) {
        const int w = static_cast<int>(i) / kPerWorkload;
        const int f = static_cast<int>(i) % kPerWorkload;
        const Topology topo = workloads::byName(workload_names[w]);
        profiles[i] = f == 0 ? baselineProfile(topo)
                             : featureProfile(topo, features[f - 1]);
    });
    const double wall_seconds = wall.seconds();

    benchutil::Table table({10, 11, 13, 13, 11, 11, 8});
    table.row({"Workload", "Multi-core", "Sparse 2:4", "Sparse 1:4",
               "Energy", "DRAM", "Layout"});
    table.rule();
    double mean[kFeatures] = {};
    SimProfile aggregate;
    for (int w = 0; w < kWorkloads; ++w) {
        const SimProfile& base = profiles[
            static_cast<std::size_t>(w) * kPerWorkload];
        std::vector<std::string> row = {workload_names[w]};
        for (int f = 0; f < kFeatures; ++f) {
            const SimProfile& feat = profiles[
                static_cast<std::size_t>(w) * kPerWorkload + 1 + f];
            const double overhead = feat.totalSeconds
                / std::max(base.totalSeconds, 1e-9);
            mean[f] += overhead;
            row.push_back(benchutil::fmt("%.2fx", overhead));
            aggregate.merge(feat);
        }
        aggregate.merge(base);
        table.row(row);
    }
    std::vector<std::string> mean_row = {"Mean"};
    for (int f = 0; f < kFeatures; ++f)
        mean_row.push_back(benchutil::fmt("%.2fx", mean[f] / 4.0));
    table.rule();
    table.row(mean_row);
    std::printf("(paper means: multi-core 2.29x, 2:4 0.42x, 1:4 "
                "0.29x, Accelergy 1.19x, Ramulator 2.13x, Layout "
                "16.03x; %s)\n",
                "shape target: sparsity < 1x, layout largest");

    std::printf("\nself-profiled phase totals across all %zu points "
                "(SimProfiler):\n", profiles.size());
    for (unsigned p = 0; p < kNumSimPhases; ++p) {
        const auto phase = static_cast<SimPhase>(p);
        std::printf("  %-12s %10.3f s\n", toString(phase),
                    aggregate.seconds(phase));
    }
    std::printf("  %-12s %10.3f s\n", "other", aggregate.otherSeconds());
    std::printf("  %-12s %10.3f s  (sum of per-point simulate time)\n",
                "total", aggregate.totalSeconds);
    std::printf("  %-12s %10llu KiB (process peak RSS)\n", "peakRss",
                static_cast<unsigned long long>(aggregate.peakRssKb));
    std::printf("bench wall-clock: %.3f s at jobs=%u\n", wall_seconds,
                resolveJobs(jobs));
    return 0;
}
