file(REMOVE_RECURSE
  "CMakeFiles/scalesim_multicore.dir/nop.cpp.o"
  "CMakeFiles/scalesim_multicore.dir/nop.cpp.o.d"
  "CMakeFiles/scalesim_multicore.dir/partition.cpp.o"
  "CMakeFiles/scalesim_multicore.dir/partition.cpp.o.d"
  "CMakeFiles/scalesim_multicore.dir/shared_l2.cpp.o"
  "CMakeFiles/scalesim_multicore.dir/shared_l2.cpp.o.d"
  "CMakeFiles/scalesim_multicore.dir/system.cpp.o"
  "CMakeFiles/scalesim_multicore.dir/system.cpp.o.d"
  "CMakeFiles/scalesim_multicore.dir/tensor_core.cpp.o"
  "CMakeFiles/scalesim_multicore.dir/tensor_core.cpp.o.d"
  "CMakeFiles/scalesim_multicore.dir/trace_sim.cpp.o"
  "CMakeFiles/scalesim_multicore.dir/trace_sim.cpp.o.d"
  "libscalesim_multicore.a"
  "libscalesim_multicore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scalesim_multicore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
