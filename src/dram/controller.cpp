#include "dram/controller.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace scalesim::dram
{

void
DramStats::merge(const DramStats& other)
{
    reads += other.reads;
    writes += other.writes;
    rowHits += other.rowHits;
    refreshes += other.refreshes;
    rowMisses += other.rowMisses;
    rowConflicts += other.rowConflicts;
    readBytes += other.readBytes;
    writeBytes += other.writeBytes;
    totalReadLatency += other.totalReadLatency;
    firstArrival = std::min(firstArrival, other.firstArrival);
    lastCompletion = std::max(lastCompletion, other.lastCompletion);
}

Channel::Channel(const DramTiming& timing, std::uint32_t ranks,
                 std::uint32_t reorder_window,
                 std::uint32_t hit_streak_cap, PagePolicy policy)
    : timing_(timing), reorderWindow_(reorder_window),
      hitStreakCap_(hit_streak_cap), policy_(policy),
      banks_(static_cast<std::size_t>(ranks) * timing.banksPerRank)
{
    if (ranks == 0)
        fatal("channel must have at least one rank");
    if (reorderWindow_ == 0)
        reorderWindow_ = 1;
}

std::uint64_t
Channel::enqueue(const DecodedAddr& addr, bool write, Cycle arrival)
{
    const std::size_t gbank = static_cast<std::size_t>(addr.rank)
        * timing_.banksPerRank + addr.bank;
    if (gbank >= banks_.size())
        fatal("decoded bank %zu out of range (%zu banks)", gbank,
              banks_.size());
    if (!pending_.empty() && arrival < pending_.back().arrival)
        arrival = pending_.back().arrival; // enforce monotone arrivals
    Pending req;
    req.addr = addr;
    req.write = write;
    req.arrival = arrival;
    req.seq = nextSeq_++;
    pending_.push_back(req);
    stats_.firstArrival = std::min(stats_.firstArrival, arrival);
    return req.seq;
}

std::size_t
Channel::pickNext(Cycle decision_time)
{
    // FR-FCFS over the reorder window: oldest row-hit first, bounded by
    // the hit-streak cap to prevent starvation; otherwise the oldest.
    const std::size_t window = std::min<std::size_t>(pending_.size(),
                                                     reorderWindow_);
    std::size_t oldest_arrived = pending_.size();
    for (std::size_t i = 0; i < window; ++i) {
        const Pending& req = pending_[i];
        if (req.arrival > decision_time)
            break;
        if (oldest_arrived == pending_.size())
            oldest_arrived = i;
        const std::size_t gbank = static_cast<std::size_t>(req.addr.rank)
            * timing_.banksPerRank + req.addr.bank;
        const Bank& bank = banks_[gbank];
        const bool hit = bank.open && bank.row == req.addr.row;
        if (hit) {
            const bool capped = hitStreak_ >= hitStreakCap_
                && streakBank_ == gbank && streakRow_ == req.addr.row;
            if (!capped)
                return i;
        }
    }
    // No hit available (or streak capped): oldest arrived request, or
    // the overall oldest if nothing has arrived yet.
    return oldest_arrived < pending_.size() ? oldest_arrived : 0;
}

Cycle
Channel::serviceOne(const Pending& req)
{
    const std::size_t gbank = static_cast<std::size_t>(req.addr.rank)
        * timing_.banksPerRank + req.addr.bank;
    Bank& bank = banks_[gbank];
    Cycle dt = std::max(req.arrival, lastColCmd_);

    // All-bank refresh: every tREFI the rank precharges and refreshes
    // for tRFC; requests due during the window wait for it, and every
    // row buffer comes back closed.
    if (timing_.tREFI > 0) {
        while (nextRefresh_ + timing_.tREFI <= dt) {
            nextRefresh_ += timing_.tREFI;
            ++stats_.refreshes;
        }
        const Cycle refresh_end = nextRefresh_ + timing_.tRFC;
        if (dt >= nextRefresh_ && dt < refresh_end) {
            // Refresh in progress: banks close, request waits.
            for (Bank& b : banks_) {
                b.open = false;
                b.preReady = std::max(b.preReady, refresh_end);
            }
            ++stats_.refreshes;
            nextRefresh_ += timing_.tREFI;
            dt = refresh_end;
        }
    }

    Cycle col_ready;
    RowOutcome outcome;
    if (bank.open && bank.row == req.addr.row) {
        outcome = RowOutcome::Hit;
        col_ready = std::max(dt, bank.rcdDone);
    } else {
        Cycle act_start;
        if (bank.open) {
            outcome = RowOutcome::Conflict;
            const Cycle pre = std::max(dt, bank.preReady);
            act_start = pre + timing_.tRP;
        } else {
            outcome = RowOutcome::Miss;
            act_start = std::max(dt, bank.preReady);
        }
        act_start = std::max(act_start, lastActAny_ + timing_.tRRD);
        act_start = std::max(act_start, bank.lastAct + timing_.tRC);
        if (actWindow_.size() >= 4) {
            act_start = std::max(act_start,
                                 actWindow_.front() + timing_.tFAW);
        }
        bank.lastAct = act_start;
        lastActAny_ = act_start;
        actWindow_.push_back(act_start);
        if (actWindow_.size() > 4)
            actWindow_.pop_front();
        bank.rcdDone = act_start + timing_.tRCD;
        bank.open = true;
        bank.row = req.addr.row;
        col_ready = bank.rcdDone;
    }

    Cycle col_cmd = std::max(col_ready, lastColCmd_ + timing_.tCCD);
    if (!req.write && lastWasWrite_) {
        // Write-to-read turnaround on the shared bus.
        col_cmd = std::max(col_cmd, lastWriteDataEnd_ + timing_.tWTR);
    }
    const Cycle access_lat = req.write ? timing_.tCWL : timing_.tCL;
    Cycle data_start = col_cmd + access_lat;
    if (data_start < busFree_) {
        col_cmd += busFree_ - data_start;
        data_start = busFree_;
    }
    const Cycle data_end = data_start + timing_.tBurst;
    busFree_ = data_end;
    lastColCmd_ = col_cmd;
    lastWasWrite_ = req.write;
    if (req.write)
        lastWriteDataEnd_ = data_end;

    bank.preReady = std::max(bank.lastAct + timing_.tRAS,
                             req.write ? data_end + timing_.tWR
                                       : col_cmd + timing_.tRTP);
    if (policy_ == PagePolicy::Closed) {
        // Auto-precharge: the row closes as soon as it legally can;
        // the next access to this bank is a plain miss.
        bank.open = false;
        bank.preReady += timing_.tRP;
    }

    // Row-hit streak bookkeeping.
    if (outcome == RowOutcome::Hit && streakBank_ == gbank
        && streakRow_ == req.addr.row) {
        ++hitStreak_;
    } else {
        hitStreak_ = outcome == RowOutcome::Hit ? 1 : 0;
        streakBank_ = static_cast<std::uint32_t>(gbank);
        streakRow_ = req.addr.row;
    }

    switch (outcome) {
      case RowOutcome::Hit: ++stats_.rowHits; break;
      case RowOutcome::Miss: ++stats_.rowMisses; break;
      case RowOutcome::Conflict: ++stats_.rowConflicts; break;
    }
    Cycle completion;
    if (req.write) {
        ++stats_.writes;
        stats_.writeBytes += timing_.burstBytes;
        completion = col_cmd; // posted: accepted at column command
    } else {
        ++stats_.reads;
        stats_.readBytes += timing_.burstBytes;
        completion = data_end;
        stats_.totalReadLatency += data_end - req.arrival;
    }
    stats_.lastCompletion = std::max(stats_.lastCompletion, data_end);
    return completion;
}

Cycle
Channel::serviceUntil(std::uint64_t seq)
{
    for (;;) {
        auto done = completed_.find(seq);
        if (done != completed_.end()) {
            const Cycle completion = done->second;
            completed_.erase(done);
            return completion;
        }
        if (pending_.empty())
            panic("serviceUntil(%llu): request not pending",
                  static_cast<unsigned long long>(seq));
        const Cycle decision_time = std::max(pending_.front().arrival,
                                             lastColCmd_);
        const std::size_t idx = pickNext(decision_time);
        const Pending req = pending_[idx];
        pending_.erase(pending_.begin()
                       + static_cast<std::ptrdiff_t>(idx));
        completed_[req.seq] = serviceOne(req);
    }
}

void
Channel::drainAll()
{
    while (!pending_.empty()) {
        const Cycle decision_time = std::max(pending_.front().arrival,
                                             lastColCmd_);
        const std::size_t idx = pickNext(decision_time);
        const Pending req = pending_[idx];
        pending_.erase(pending_.begin()
                       + static_cast<std::ptrdiff_t>(idx));
        completed_[req.seq] = serviceOne(req);
    }
}

} // namespace scalesim::dram
