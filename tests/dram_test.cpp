/**
 * @file
 * Unit tests for the DRAM substrate: timing presets, row-buffer
 * outcomes and their latency ordering, bank-level parallelism, channel
 * scaling, FR-FCFS reordering, address mapping, and the clock-domain
 * adapter.
 */

#include <gtest/gtest.h>

#include "common/log.hpp"
#include "dram/system.hpp"

using namespace scalesim;
using namespace scalesim::dram;

namespace
{

DramSystemConfig
config(std::uint32_t channels = 1, const char* tech = "DDR4_2400")
{
    DramSystemConfig cfg;
    cfg.timing = timingPreset(tech);
    cfg.channels = channels;
    return cfg;
}

} // namespace

TEST(Timing, AllPresetsResolve)
{
    for (const auto& name : timingPresetNames()) {
        const DramTiming t = timingPreset(name);
        EXPECT_EQ(t.name, name);
        EXPECT_GT(t.clockMhz, 0.0);
        EXPECT_GT(t.tRCD, 0u);
        EXPECT_GT(t.tRP, 0u);
        EXPECT_GT(t.tCL, 0u);
        // JEDEC invariants.
        EXPECT_GE(t.tRAS, t.tRCD);
        EXPECT_GE(t.tRC, t.tRAS);
        EXPECT_GE(t.rowBytes, t.burstBytes);
        EXPECT_GT(t.colsPerRow(), 0u);
    }
    EXPECT_THROW(timingPreset("DDR9"), FatalError);
}

TEST(Timing, CaseInsensitiveLookup)
{
    EXPECT_EQ(timingPreset("ddr4-2400").name, "DDR4_2400");
    EXPECT_EQ(timingPreset("hbm2").name, "HBM2");
}

TEST(Channel, FirstAccessPaysActivateAndCas)
{
    DramSystem sys(config());
    const DramTiming& t = sys.config().timing;
    const Cycle done = sys.request(0, 64, false, 0);
    // Closed bank: ACT + tRCD + tCL + tBurst lower bound.
    EXPECT_GE(done, t.tRCD + t.tCL + t.tBurst);
    const DramStats stats = sys.totalStats();
    EXPECT_EQ(stats.reads, 1u);
    EXPECT_EQ(stats.rowMisses, 1u);
}

TEST(Channel, RowHitFasterThanConflict)
{
    // Same row twice -> second is a hit.
    DramSystem sys_hit(config());
    sys_hit.request(0, 64, false, 0);
    const Cycle hit_done = sys_hit.request(64, 64, false, 1000);
    EXPECT_EQ(sys_hit.totalStats().rowHits, 1u);

    // Same bank, different row -> conflict (row stride apart).
    DramSystem sys_conf(config());
    const DramTiming& t = sys_conf.config().timing;
    sys_conf.request(0, 64, false, 0);
    // With RoBaRaCoCh and 1 channel, addresses one full row apart in
    // the same bank differ by rowBytes * 1 (col bits exhausted).
    const Addr same_bank_other_row = t.rowBytes
        * t.banksPerRank; // advance past the bank bits
    const Cycle conf_done = sys_conf.request(same_bank_other_row, 64,
                                             false, 1000);
    EXPECT_EQ(sys_conf.totalStats().rowConflicts, 1u);
    EXPECT_LT(hit_done - 1000, conf_done - 1000);
}

TEST(Channel, SequentialStreamMostlyHits)
{
    DramSystem sys(config());
    const DramTiming& t = sys.config().timing;
    for (int i = 0; i < 64; ++i)
        sys.request(static_cast<Addr>(i) * t.burstBytes, t.burstBytes,
                    false, 0);
    const DramStats stats = sys.totalStats();
    EXPECT_GT(stats.rowHitRate(), 0.9);
}

TEST(Channel, RandomRowsMostlyMiss)
{
    DramSystem sys(config());
    const DramTiming& t = sys.config().timing;
    // Stride one full bank's row so each access opens a new row in the
    // same bank.
    const Addr stride = t.rowBytes * t.banksPerRank;
    for (int i = 0; i < 64; ++i)
        sys.request(static_cast<Addr>(i) * stride, 64, false, 0);
    const DramStats stats = sys.totalStats();
    EXPECT_LT(stats.rowHitRate(), 0.1);
    EXPECT_GE(stats.rowConflicts, 60u);
}

TEST(Channel, ReadLatencyDecompositionConserves)
{
    // Queue wait + refresh wait + service time must account for every
    // read-latency cycle — the component split is exact, not sampled.
    DramSystem sys(config());
    const DramTiming& t = sys.config().timing;
    const Addr stride = t.rowBytes * t.banksPerRank;
    for (int i = 0; i < 256; ++i) {
        // Mix row hits (sequential) with conflicts (bank-row stride)
        // and bursts arriving at the same cycle to exercise queueing.
        const Addr addr = (i % 2 == 0)
            ? static_cast<Addr>(i) * t.burstBytes
            : static_cast<Addr>(i) * stride;
        sys.request(addr, t.burstBytes, false,
                    static_cast<Cycle>(i / 8));
    }
    const DramStats stats = sys.totalStats();
    ASSERT_EQ(stats.reads, 256u);
    EXPECT_GT(stats.totalReadLatency, 0u);
    EXPECT_GT(stats.readServiceTime, 0u);
    EXPECT_EQ(stats.readQueueWait + stats.readRefreshWait
                  + stats.readServiceTime,
              stats.totalReadLatency);
}

TEST(Channel, BankParallelismBeatsSameBank)
{
    // N requests spread over banks finish sooner than N conflicts in
    // one bank.
    auto run = [](bool spread) {
        DramSystem sys(config());
        const DramTiming& t = sys.config().timing;
        Cycle last = 0;
        for (int i = 0; i < 16; ++i) {
            const Addr addr = spread
                ? static_cast<Addr>(i) * t.rowBytes // distinct banks
                : static_cast<Addr>(i) * t.rowBytes * t.banksPerRank;
            last = std::max(last, sys.request(addr, 64, false, 0));
        }
        return last;
    };
    EXPECT_LT(run(true), run(false));
}

TEST(System, ChannelScalingIncreasesThroughput)
{
    auto makespan = [](std::uint32_t channels) {
        DramSystem sys(config(channels));
        const DramTiming& t = sys.config().timing;
        Cycle last = 0;
        for (int i = 0; i < 512; ++i) {
            last = std::max(last,
                            sys.request(static_cast<Addr>(i)
                                            * t.burstBytes,
                                        t.burstBytes, false, 0));
        }
        return last;
    };
    const Cycle one = makespan(1);
    const Cycle four = makespan(4);
    EXPECT_LT(four, one);
    // Should be roughly proportional for a streaming pattern.
    EXPECT_LT(four, one / 2);
}

TEST(System, DecodeRoundTripsDistinctly)
{
    DramSystem sys(config(2));
    const DramTiming& t = sys.config().timing;
    std::uint32_t ch0 = 99, ch1 = 99;
    const DecodedAddr a = sys.decode(0, ch0);
    const DecodedAddr b = sys.decode(t.burstBytes, ch1);
    // Consecutive bursts interleave channels under RoBaRaCoCh.
    EXPECT_NE(ch0, ch1);
    EXPECT_EQ(a.row, b.row);
}

TEST(System, MappingVariants)
{
    for (auto name : {"RoBaRaCoCh", "RoRaCoBaCh", "RoRaBaChCo"}) {
        DramSystemConfig cfg = config(2);
        cfg.mapping = addressMappingFromString(name);
        DramSystem sys(cfg);
        std::uint32_t ch = 0;
        const DecodedAddr d = sys.decode(123456, ch);
        EXPECT_LT(ch, 2u);
        EXPECT_LT(d.bank, cfg.timing.banksPerRank);
    }
    EXPECT_THROW(addressMappingFromString("bogus"), FatalError);
}

TEST(Trace, FrFcfsReorderingHelpsInterleavedRows)
{
    // Two interleaved row streams: reordering services row hits first.
    const DramTiming t = timingPreset("DDR4_2400");
    auto run = [&](std::uint32_t window) {
        DramSystemConfig cfg = config();
        cfg.reorderWindow = window;
        DramSystem sys(cfg);
        std::vector<TraceEntry> trace;
        const Addr row_a = 0;
        const Addr row_b = t.rowBytes * t.banksPerRank; // same bank
        for (int i = 0; i < 32; ++i) {
            trace.push_back({0, row_a + static_cast<Addr>(i) * 64,
                             false});
            trace.push_back({0, row_b + static_cast<Addr>(i) * 64,
                             false});
        }
        return sys.runTrace(trace);
    };
    const TraceResult fcfs = run(1);
    const TraceResult frfcfs = run(64);
    EXPECT_GT(frfcfs.stats.rowHits, fcfs.stats.rowHits);
    EXPECT_LE(frfcfs.makespan, fcfs.makespan);
}

TEST(Trace, LatenciesReportedPerRequest)
{
    DramSystem sys(config());
    std::vector<TraceEntry> trace;
    for (int i = 0; i < 8; ++i)
        trace.push_back({static_cast<Cycle>(i * 100),
                         static_cast<Addr>(i) * 64, i % 2 == 1});
    const TraceResult result = sys.runTrace(trace);
    ASSERT_EQ(result.latency.size(), trace.size());
    for (std::size_t i = 0; i < trace.size(); ++i) {
        if (trace[i].write) {
            // Posted writes may be accepted instantly.
            EXPECT_GE(result.latency[i], 0u);
        } else {
            EXPECT_GT(result.latency[i], 0u);
        }
    }
    EXPECT_EQ(result.stats.reads + result.stats.writes, 8u);
    EXPECT_GT(result.bytesPerClock(), 0.0);
}

TEST(Trace, WritesArePosted)
{
    DramSystem sys(config());
    std::vector<TraceEntry> trace = {{0, 0, true}, {0, 64, false}};
    const TraceResult result = sys.runTrace(trace);
    // The write completes at its column command; the read carries the
    // full data latency.
    EXPECT_LT(result.latency[0], result.latency[1] + 1000);
    EXPECT_EQ(result.stats.writes, 1u);
}

TEST(DramMemory, ClockDomainConversion)
{
    DramConfig cfg;
    cfg.tech = "DDR4_2400"; // 1200 MHz controller
    cfg.coreClockMhz = 600.0;
    DramMemory mem(cfg, 1);
    EXPECT_EQ(mem.toMem(100), 200u);
    EXPECT_EQ(mem.toCore(200), 100u);
    const Cycle done = mem.issueRead(0, 64, 10);
    EXPECT_GT(done, 10u);
    EXPECT_EQ(mem.stats().readRequests, 1u);
}

TEST(DramMemory, MultiburstRequestsSplit)
{
    DramConfig cfg;
    DramMemory mem(cfg, 1);
    mem.issueRead(0, 256, 0); // 256 bytes = 4 bursts of 64
    EXPECT_EQ(mem.system().totalStats().reads, 4u);
}

TEST(DramStats, MergeAccumulates)
{
    DramStats a, b;
    a.reads = 3;
    a.rowHits = 2;
    a.lastCompletion = 10;
    b.reads = 4;
    b.rowConflicts = 1;
    b.lastCompletion = 20;
    a.merge(b);
    EXPECT_EQ(a.reads, 7u);
    EXPECT_EQ(a.rowHits, 2u);
    EXPECT_EQ(a.rowConflicts, 1u);
    EXPECT_EQ(a.lastCompletion, 20u);
}

TEST(Refresh, PeriodicRefreshesAreCounted)
{
    DramSystem sys(config());
    const DramTiming& t = sys.config().timing;
    // Requests spread far beyond several tREFI periods.
    for (int i = 0; i < 10; ++i) {
        sys.request(static_cast<Addr>(i) * 64, 64, false,
                    static_cast<Cycle>(i) * t.tREFI * 2);
    }
    EXPECT_GE(sys.totalStats().refreshes, 10u);
}

TEST(Refresh, RequestDuringRefreshWaits)
{
    DramSystem sys(config());
    const DramTiming& t = sys.config().timing;
    // Land a request exactly at the start of the first refresh window.
    const Cycle done = sys.request(0, 64, false, t.tREFI);
    // It cannot complete before the refresh finishes plus a full
    // closed-bank access.
    EXPECT_GE(done, t.tREFI + t.tRFC + t.tRCD + t.tCL + t.tBurst);
}

TEST(Refresh, ClosesOpenRows)
{
    DramSystem sys(config());
    const DramTiming& t = sys.config().timing;
    sys.request(0, 64, false, 0);
    // Same row, but after a refresh window: must not be a row hit.
    sys.request(64, 64, false, t.tREFI + 1);
    const DramStats stats = sys.totalStats();
    EXPECT_EQ(stats.rowHits, 0u);
    EXPECT_EQ(stats.rowMisses, 2u);
}

TEST(Refresh, TwoRanksRefreshIndependently)
{
    // tREFI/tRFC are per-rank: each rank follows its own cadence and a
    // refresh closes only that rank's row buffers. The old channel-wide
    // nextRefresh_ both undercounted (one shared cadence for two
    // ranks) and closed every rank's rows on each refresh. Both
    // engines must pin the same count — the closed-form catch-up of
    // EventSkip is exact, not approximate.
    DramTiming t = timingPreset("DDR4_2400");
    t.tREFI = 1000;
    t.tRFC = 100;
    for (const DramEngine eng :
         {DramEngine::EventSkip, DramEngine::Stepped}) {
        Channel ch(t, 2, 32, 16, PagePolicy::Open, eng);
        auto read = [&](std::uint32_t rank, Cycle arrival) {
            DecodedAddr a;
            a.rank = rank;
            return ch.serviceUntil(ch.enqueue(a, false, arrival));
        };
        read(0, 1000); // lands in rank 0's first window: 1 refresh
        read(1, 1500); // rank 1 catches up its own missed window: +1
        read(0, 3500); // rank 0 catches up the 2000/3000 windows: +2
        read(1, 3600); // rank 1 catches up the same two windows: +2
        EXPECT_EQ(ch.stats().refreshes, 6u) << toString(eng);
        // Every access found its bank closed (first touch or
        // refreshed).
        EXPECT_EQ(ch.stats().rowMisses, 4u) << toString(eng);
        EXPECT_EQ(ch.stats().rowHits, 0u) << toString(eng);
    }
}

TEST(Refresh, ClosedFormCatchUpCountIsExact)
{
    // One request after a gap spanning many tREFI windows: the
    // event-skipping engine must fold the missed windows into exactly
    // floor((dt - tRFC - next) / tREFI) + 1 refreshes — the count the
    // stepped loop produces one iteration at a time.
    DramTiming t = timingPreset("DDR4_2400");
    t.tREFI = 1000;
    t.tRFC = 100;
    for (const DramEngine eng :
         {DramEngine::EventSkip, DramEngine::Stepped}) {
        Channel ch(t, 1, 32, 16, PagePolicy::Open, eng);
        DecodedAddr a;
        // Windows start at 1000; ends 1100, 2100, ..., 57100 <= 57321.
        ch.serviceUntil(ch.enqueue(a, false, 57'321));
        EXPECT_EQ(ch.stats().refreshes, 57u) << toString(eng);
    }
}

// ---------------------------------------------------------------------
// Engine A/B equivalence: EventSkip (production) vs Stepped
// (reference). Identical completions, stats, and makespans on every
// traffic shape, exactly like the ContentionModel::Static switch.
// ---------------------------------------------------------------------

namespace
{

void
expectStatsEqual(const DramStats& a, const DramStats& b,
                 const char* what)
{
    EXPECT_EQ(a.reads, b.reads) << what;
    EXPECT_EQ(a.writes, b.writes) << what;
    EXPECT_EQ(a.rowHits, b.rowHits) << what;
    EXPECT_EQ(a.rowMisses, b.rowMisses) << what;
    EXPECT_EQ(a.rowConflicts, b.rowConflicts) << what;
    EXPECT_EQ(a.refreshes, b.refreshes) << what;
    EXPECT_EQ(a.readBytes, b.readBytes) << what;
    EXPECT_EQ(a.writeBytes, b.writeBytes) << what;
    EXPECT_EQ(a.totalReadLatency, b.totalReadLatency) << what;
    EXPECT_EQ(a.firstArrival, b.firstArrival) << what;
    EXPECT_EQ(a.lastCompletion, b.lastCompletion) << what;
}

/** Run `trace` through both engines and demand bit-identity. */
void
expectEnginesAgree(DramSystemConfig cfg,
                   const std::vector<TraceEntry>& trace,
                   const char* what)
{
    cfg.engine = DramEngine::EventSkip;
    DramSystem skip(cfg);
    const TraceResult a = skip.runTrace(trace);
    cfg.engine = DramEngine::Stepped;
    DramSystem step(cfg);
    const TraceResult b = step.runTrace(trace);
    ASSERT_EQ(a.latency.size(), b.latency.size());
    for (std::size_t i = 0; i < a.latency.size(); ++i)
        EXPECT_EQ(a.latency[i], b.latency[i]) << what << " req " << i;
    EXPECT_EQ(a.makespan, b.makespan) << what;
    expectStatsEqual(a.stats, b.stats, what);
}

} // namespace

TEST(Engine, FromStringAndToString)
{
    EXPECT_EQ(dramEngineFromString("eventskip"), DramEngine::EventSkip);
    EXPECT_EQ(dramEngineFromString("Event-Skip"), DramEngine::EventSkip);
    EXPECT_EQ(dramEngineFromString("event_skip"), DramEngine::EventSkip);
    EXPECT_EQ(dramEngineFromString("STEPPED"), DramEngine::Stepped);
    EXPECT_THROW(dramEngineFromString("turbo"), FatalError);
    EXPECT_STREQ(toString(DramEngine::EventSkip), "eventskip");
    EXPECT_STREQ(toString(DramEngine::Stepped), "stepped");
}

TEST(Engine, AbStreamingIdentical)
{
    const DramTiming t = timingPreset("DDR4_2400");
    std::vector<TraceEntry> trace;
    for (int i = 0; i < 256; ++i)
        trace.push_back({static_cast<Cycle>(i) * 2,
                         static_cast<Addr>(i) * t.burstBytes, false});
    expectEnginesAgree(config(), trace, "streaming");
}

TEST(Engine, AbRowThrashIdentical)
{
    const DramTiming t = timingPreset("DDR4_2400");
    const Addr stride = t.rowBytes * t.banksPerRank;
    std::vector<TraceEntry> trace;
    for (int i = 0; i < 128; ++i)
        trace.push_back({static_cast<Cycle>(i) * 7,
                         static_cast<Addr>(i % 3) * stride, false});
    expectEnginesAgree(config(), trace, "row thrash");
}

TEST(Engine, AbMixedReadWriteIdentical)
{
    const DramTiming t = timingPreset("DDR4_2400");
    std::vector<TraceEntry> trace;
    for (int i = 0; i < 128; ++i) {
        // Pseudo-random bank/row walk with read/write turnarounds.
        const Addr addr = static_cast<Addr>((i * 2654435761u) % 4096)
            * t.burstBytes;
        trace.push_back({static_cast<Cycle>(i) * 5, addr, i % 3 == 0});
    }
    expectEnginesAgree(config(), trace, "mixed rw");
}

TEST(Engine, AbLongIdleGapsIdentical)
{
    // Idle stretches spanning 1, 40, and 500 tREFI windows between
    // bursts of traffic: the closed-form refresh catch-up and the
    // stepped per-window loop must land on identical bank state.
    const DramTiming t = timingPreset("DDR4_2400");
    std::vector<TraceEntry> trace;
    Cycle now = 0;
    const Cycle gaps[] = {t.tREFI + 3, 40 * t.tREFI + 17,
                          500 * t.tREFI + 1};
    for (const Cycle gap : gaps) {
        for (int i = 0; i < 16; ++i)
            trace.push_back({now + static_cast<Cycle>(i),
                             static_cast<Addr>(i) * t.burstBytes,
                             false});
        now += gap;
    }
    expectEnginesAgree(config(), trace, "idle gaps");
}

TEST(Engine, AbTwoRanksFourChannelsIdentical)
{
    const DramTiming t = timingPreset("DDR4_2400");
    DramSystemConfig cfg = config(4);
    cfg.ranks = 2;
    std::vector<TraceEntry> trace;
    for (int i = 0; i < 256; ++i) {
        const Addr addr = static_cast<Addr>((i * 40503u) % 16384)
            * t.burstBytes;
        trace.push_back({static_cast<Cycle>(i) * 3, addr, i % 4 == 0});
    }
    expectEnginesAgree(cfg, trace, "two ranks four channels");
}

TEST(Engine, AbClosedPageIdentical)
{
    const DramTiming t = timingPreset("DDR4_2400");
    DramSystemConfig cfg = config();
    cfg.pagePolicy = PagePolicy::Closed;
    std::vector<TraceEntry> trace;
    for (int i = 0; i < 128; ++i)
        trace.push_back({static_cast<Cycle>(i) * 11,
                         static_cast<Addr>(i) * t.burstBytes, false});
    expectEnginesAgree(cfg, trace, "closed page");
}

TEST(Engine, AbOutOfOrderArrivalsIdentical)
{
    // Arrival times deliberately not monotone in enqueue order — the
    // ordered-insert queue must give both engines the same earliest-
    // first service order.
    const DramTiming t = timingPreset("DDR4_2400");
    std::vector<TraceEntry> trace;
    for (int i = 0; i < 64; ++i) {
        const Cycle arrival = static_cast<Cycle>((i * 37) % 64) * 50;
        trace.push_back({arrival, static_cast<Addr>(i) * t.burstBytes,
                         false});
    }
    expectEnginesAgree(config(), trace, "out-of-order arrivals");
}

TEST(Engine, AbCoupledRequestFlowIdentical)
{
    // The synchronous request() path (scratchpad flow) drains after
    // each enqueue; both engines must return identical completions.
    const DramTiming t = timingPreset("DDR4_2400");
    auto run = [&](DramEngine eng) {
        DramSystemConfig cfg = config();
        cfg.engine = eng;
        DramSystem sys(cfg);
        std::vector<Cycle> done;
        for (int i = 0; i < 96; ++i) {
            const Addr addr = static_cast<Addr>((i * 131) % 1024)
                * t.burstBytes;
            done.push_back(sys.request(addr, 3 * t.burstBytes,
                                       i % 5 == 0,
                                       static_cast<Cycle>(i) * 20));
        }
        return std::make_pair(done, sys.totalStats());
    };
    const auto [skip_done, skip_stats] = run(DramEngine::EventSkip);
    const auto [step_done, step_stats] = run(DramEngine::Stepped);
    EXPECT_EQ(skip_done, step_done);
    expectStatsEqual(skip_stats, step_stats, "coupled flow");
}

TEST(Channel, NextEventCycleTracksEarliestArrival)
{
    const DramTiming t = timingPreset("DDR4_2400");
    Channel ch(t, 1);
    EXPECT_EQ(ch.nextEventCycle(), Channel::kNoEvent);
    DecodedAddr a;
    ch.enqueue(a, false, 5000);
    EXPECT_EQ(ch.nextEventCycle(), 5000u);
    // An earlier arrival enqueued later must surface at the front.
    a.col = 1;
    ch.enqueue(a, false, 200);
    EXPECT_EQ(ch.nextEventCycle(), 200u);
    ch.drainAll();
    EXPECT_EQ(ch.nextEventCycle(), Channel::kNoEvent);
}

TEST(Channel, GappedArrivalsServiceEarliestFirst)
{
    // Regression for the pickNext fallback: when no pending request
    // has arrived yet, the scheduler must jump to the earliest
    // arrival — not whichever request happened to be enqueued first.
    const DramTiming t = timingPreset("DDR4_2400");
    Channel ch(t, 1);
    DecodedAddr late; // same bank, row 1
    late.row = 1;
    DecodedAddr early; // same bank, row 0
    const std::uint64_t late_seq = ch.enqueue(late, false, 9'000);
    const std::uint64_t early_seq = ch.enqueue(early, false, 1'000);
    const Cycle late_done = ch.serviceUntil(late_seq);
    const Cycle early_done = ch.serviceUntil(early_seq);
    EXPECT_LT(early_done, late_done);
    // The early request opened the bank (miss); the late one then
    // conflicted — service order row 0 before row 1.
    EXPECT_EQ(ch.stats().rowMisses, 1u);
    EXPECT_EQ(ch.stats().rowConflicts, 1u);
}

TEST(Refresh, AllPresetsHaveRefreshTiming)
{
    for (const auto& name : timingPresetNames()) {
        const DramTiming t = timingPreset(name);
        EXPECT_GT(t.tREFI, t.tRFC) << name;
        EXPECT_GT(t.tRFC, 0u) << name;
    }
}

/** Property sweep over every DRAM technology preset. */
class PresetSweep : public ::testing::TestWithParam<std::string>
{
};

TEST_P(PresetSweep, FirstAccessLatencyLowerBound)
{
    DramSystem sys(config(1, GetParam().c_str()));
    const DramTiming& t = sys.config().timing;
    const Cycle done = sys.request(0, t.burstBytes, false, 0);
    EXPECT_GE(done, t.tRCD + t.tCL + t.tBurst);
    EXPECT_LE(done, t.tRC + t.tCL + t.tBurst + t.tRFC);
}

TEST_P(PresetSweep, StreamingHitsRows)
{
    DramSystem sys(config(1, GetParam().c_str()));
    const DramTiming& t = sys.config().timing;
    for (int i = 0; i < 32; ++i)
        sys.request(static_cast<Addr>(i) * t.burstBytes, t.burstBytes,
                    false, 0);
    EXPECT_GT(sys.totalStats().rowHitRate(), 0.8);
}

TEST_P(PresetSweep, WritesThenReadsHonorTurnaround)
{
    DramSystem sys(config(1, GetParam().c_str()));
    const DramTiming& t = sys.config().timing;
    const Cycle w = sys.request(0, t.burstBytes, true, 0);
    const Cycle r = sys.request(t.burstBytes, t.burstBytes, false, w);
    // The read's data cannot arrive before write data + tWTR + tCL.
    EXPECT_GE(r, w + t.tWTR);
}

INSTANTIATE_TEST_SUITE_P(
    AllPresets, PresetSweep,
    ::testing::Values("DDR3_1600", "DDR4_2400", "DDR4_3200",
                      "LPDDR4_3200", "GDDR5_6000", "HBM2"),
    [](const auto& tpi) { return tpi.param; });

TEST(Channel, FawThrottlesActivationBursts)
{
    // Five activations to distinct banks: the fifth waits for tFAW.
    DramSystem sys(config());
    const DramTiming& t = sys.config().timing;
    Cycle completions[5];
    for (int i = 0; i < 5; ++i) {
        completions[i] = sys.request(
            static_cast<Addr>(i) * t.rowBytes, 64, false, 0);
    }
    // Lower bound: the fifth ACT waits until first ACT + tFAW.
    EXPECT_GE(completions[4], t.tFAW + t.tRCD + t.tCL + t.tBurst);
}

TEST(PagePolicy, ClosedPageNeverHitsNorConflicts)
{
    DramSystemConfig cfg = config();
    cfg.pagePolicy = PagePolicy::Closed;
    DramSystem sys(cfg);
    const DramTiming& t = sys.config().timing;
    for (int i = 0; i < 32; ++i)
        sys.request(static_cast<Addr>(i) * t.burstBytes, 64, false, 0);
    const DramStats stats = sys.totalStats();
    EXPECT_EQ(stats.rowHits, 0u);
    EXPECT_EQ(stats.rowConflicts, 0u);
    EXPECT_EQ(stats.rowMisses, 32u);
}

TEST(PagePolicy, ClosedBeatsOpenOnRowThrash)
{
    // Alternating rows in one bank with idle gaps: open-page exposes
    // the precharge (tRP) on every access's critical path; closed-page
    // precharges during the gap, paying only ACT + CAS.
    const DramTiming t = timingPreset("DDR4_2400");
    auto total_latency = [&](PagePolicy policy) {
        DramSystemConfig cfg = config();
        cfg.pagePolicy = policy;
        DramSystem sys(cfg);
        const Addr stride = t.rowBytes * t.banksPerRank;
        Cycle total = 0;
        for (int i = 0; i < 64; ++i) {
            const Cycle arrival = static_cast<Cycle>(i) * 200;
            const Cycle done = sys.request(
                (i % 2) ? stride : 0, 64, false, arrival);
            total += done - arrival;
        }
        return total;
    };
    EXPECT_LT(total_latency(PagePolicy::Closed),
              total_latency(PagePolicy::Open));
}

TEST(PagePolicy, OpenBeatsClosedOnStreaming)
{
    const DramTiming t = timingPreset("DDR4_2400");
    auto makespan = [&](PagePolicy policy) {
        DramSystemConfig cfg = config();
        cfg.pagePolicy = policy;
        DramSystem sys(cfg);
        Cycle last = 0;
        for (int i = 0; i < 64; ++i) {
            last = std::max(last, sys.request(
                static_cast<Addr>(i) * t.burstBytes, 64, false, 0));
        }
        return last;
    };
    EXPECT_LT(makespan(PagePolicy::Open), makespan(PagePolicy::Closed));
}
