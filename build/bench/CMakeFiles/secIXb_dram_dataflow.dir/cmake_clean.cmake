file(REMOVE_RECURSE
  "CMakeFiles/secIXb_dram_dataflow.dir/secIXb_dram_dataflow.cpp.o"
  "CMakeFiles/secIXb_dram_dataflow.dir/secIXb_dram_dataflow.cpp.o.d"
  "secIXb_dram_dataflow"
  "secIXb_dram_dataflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secIXb_dram_dataflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
