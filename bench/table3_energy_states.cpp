/**
 * @file
 * Reproduces Table III: validation of the Accelergy-style energy model
 * across system states (idle with clock gating, active, power-gated)
 * against the paper's post-place-and-route reference numbers (65 nm,
 * 8x8 array, OS dataflow, quantized CNN workload).
 *
 * We cannot run PnR here; the paper's PnR column is kept as reference
 * constants (see DESIGN.md, substitutions). The model's active-state
 * power calibrates one global scale factor; idle and power-gated
 * values are then model predictions and their error against the PnR
 * reference is reported, mirroring the table's structure.
 */

#include "bench_util.hpp"
#include "common/log.hpp"
#include "common/workloads.hpp"
#include "core/simulator.hpp"

using namespace scalesim;

int
main()
{
    setQuiet(true);
    std::printf("=== Table III: energy-model validation across system "
                "states ===\n");

    // Paper's PnR reference column (65 nm).
    const double pnr_idle = 12.3;
    const double pnr_active = 315.8;
    const double pnr_gated = 4.7;

    // Active state: the §VIII validation setup — 8x8 array, OS
    // dataflow, quantized CNN layers.
    SimConfig cfg;
    cfg.arrayRows = 8;
    cfg.arrayCols = 8;
    cfg.dataflow = Dataflow::OutputStationary;
    cfg.mode = SimMode::Trace;
    cfg.energy.enabled = true;
    cfg.memory.ifmapSramKb = 64;
    cfg.memory.filterSramKb = 64;
    cfg.memory.ofmapSramKb = 64;
    core::Simulator sim(cfg);
    const core::RunResult run = sim.run(workloads::resnet18Prefix(4));
    // PnR covers the chip itself; exclude main-memory energy.
    const double active_model = run.totalEnergy.onChipPj()
        / static_cast<double>(run.totalCycles);

    // Idle state (clock gating): the clock tree is stopped, so only
    // true leakage (PEs + SRAM) and the gated MACs' residual remain.
    const energy::Ert ert = energy::Ert::forNode(cfg.energy.node);
    const double pes = 64.0;
    const double sram_kb = 192.0;
    const double leak_per_cycle = pes * ert.peLeakPerCycle
        + sram_kb * ert.sramStaticPerKbCycle;
    const double idle_model = pes * ert.macGated
        + 3.0 * 8.0 * ert.sramIdle + leak_per_cycle;

    // Power gating: supply cut; only retention leakage remains.
    const double gated_model = ert.powerGateRetention * leak_per_cycle;

    // One-point calibration on the active state.
    const double scale = pnr_active / active_model;
    const double active = active_model * scale;
    const double idle = idle_model * scale;
    const double gated = gated_model * scale;

    benchutil::Table table({20, 12, 24, 10});
    table.row({"System State", "PnR Energy", "SCALE-Sim v3+Energy",
               "Error"});
    table.rule();
    auto err = [](double model, double ref) {
        return benchutil::fmt("%+.1f%%", 100.0 * (model - ref) / ref);
    };
    table.row({"Idle (clk gating)", benchutil::fmt("%.1f", pnr_idle),
               benchutil::fmt("%.1f", idle), err(idle, pnr_idle)});
    table.row({"Active", benchutil::fmt("%.1f", pnr_active),
               benchutil::fmt("%.1f", active),
               err(active, pnr_active)});
    table.row({"Power gating", benchutil::fmt("%.1f", pnr_gated),
               benchutil::fmt("%.1f", gated), err(gated, pnr_gated)});
    table.rule();
    std::printf("(paper: +2.4%% / -2.3%% / +4.3%%; active state "
                "calibrates the global scale, idle and power-gated are "
                "model predictions)\n");
    std::printf("state ordering gated < idle << active: %s\n",
                (gated < idle && idle < active / 5.0) ? "yes" : "NO");
    return 0;
}
