/**
 * @file
 * Lint fixture with zero findings: the patterns the checks hunt for
 * appear only inside this comment and the string literals below, both
 * of which the scrubber blanks before matching — atoi(x), rand(),
 * time(nullptr), std::less<int*>, for (auto& kv : counters).
 */

#include <string>

namespace fixture
{

inline std::string
innocuous()
{
    // Strings and raw strings are scrubbed: none of these fire.
    std::string a = "atoi(text) strtod(text, nullptr) rand()";
    std::string b = R"(time(nullptr) reinterpret_cast<uintptr_t>(p))";
    std::string c = "std::mutex lock_; unordered_map<int, int> m;";
    return a + b + c;
}

} // namespace fixture
