file(REMOVE_RECURSE
  "CMakeFiles/fig10_request_queues.dir/fig10_request_queues.cpp.o"
  "CMakeFiles/fig10_request_queues.dir/fig10_request_queues.cpp.o.d"
  "fig10_request_queues"
  "fig10_request_queues.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_request_queues.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
