/**
 * @file
 * Trace-mode demand-generation speed microbenchmark for the
 * fold-replay cache. Two parts:
 *
 *  1. Timed: the per-cycle demand pass itself (DemandGenerator +
 *     CountingVisitor — the v2-equivalent trace generation that
 *     bench/table4_sim_overhead uses as its baseline), cached vs
 *     uncached, best-of-N. This is the work the cache replaces, and
 *     the `speedup` the JSON records.
 *  2. Untimed, once per mode: the full trace-mode visitor stack
 *     (SramTraceWriter + CountingVisitor + ActionCountVisitor, what
 *     scalesim_cli -s drives) to verify cached and uncached runs
 *     agree on every access total and trace row count. The wall
 *     times of these verification passes are reported too
 *     (`fullStack*Seconds`) — visitor-side costs are identical in
 *     both modes, so the end-to-end win shrinks as consumers grow.
 *
 *   trace_speed [workload] [output.json] [reps]
 *
 * Defaults: resnet50, BENCH_trace_speed.json, 3 repetitions.
 */

#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "bench_util.hpp"
#include "common/log.hpp"
#include "common/parse.hpp"
#include "common/workloads.hpp"
#include "energy/action_counts.hpp"
#include "systolic/demand.hpp"
#include "systolic/simd.hpp"
#include "systolic/trace_io.hpp"

using namespace scalesim;
using namespace scalesim::systolic;

namespace
{

struct PassTotals
{
    Count ifmapReads = 0;
    Count filterReads = 0;
    Count ofmapReads = 0;
    Count ofmapWrites = 0;
    Count traceRows = 0;
    Count macRandom = 0;
    FoldCacheStats cache;

    bool
    agrees(const PassTotals& o) const
    {
        return ifmapReads == o.ifmapReads && filterReads == o.filterReads
               && ofmapReads == o.ofmapReads
               && ofmapWrites == o.ofmapWrites && traceRows == o.traceRows
               && macRandom == o.macRandom;
    }
};

/** Discards everything written to it, cheaply. */
class NullBuffer : public std::streambuf
{
  protected:
    std::streamsize
    xsputn(const char*, std::streamsize n) override
    {
        return n;
    }
    int overflow(int c) override { return c; }
};

/** The timed kernel: the demand pass with a counting consumer. */
PassTotals
runDemandPass(const Topology& topo, const SimConfig& cfg, bool cached)
{
    PassTotals totals;
    for (const auto& layer : topo.layers) {
        const auto operands = OperandMap::forLayer(layer, cfg.memory);
        DemandGenerator gen(layer.toGemm(), cfg.dataflow, cfg.arrayRows,
                            cfg.arrayCols, operands);
        gen.setFoldCache(cached);
        CountingVisitor counter;
        gen.run(counter);
        totals.ifmapReads += counter.ifmapReads;
        totals.filterReads += counter.filterReads;
        totals.ofmapReads += counter.ofmapReads;
        totals.ofmapWrites += counter.ofmapWrites;
        totals.cache.merge(gen.foldCacheStats());
    }
    return totals;
}

/** The verification pass: full scalesim_cli -s visitor stack. */
PassTotals
runFullStack(const Topology& topo, const SimConfig& cfg, bool cached)
{
    PassTotals totals;
    NullBuffer sink;
    std::ostream ifmap(&sink), filter(&sink), ofmap(&sink), oread(&sink);
    for (const auto& layer : topo.layers) {
        const auto operands = OperandMap::forLayer(layer, cfg.memory);
        DemandGenerator gen(layer.toGemm(), cfg.dataflow, cfg.arrayRows,
                            cfg.arrayCols, operands);
        gen.setFoldCache(cached);
        SramTraceWriter writer(&ifmap, &filter, &ofmap, &oread);
        CountingVisitor counter;
        energy::ActionCountVisitor actions(cfg.energy);
        TeeVisitor tee({&writer, &counter, &actions});
        gen.run(tee);
        totals.ifmapReads += counter.ifmapReads;
        totals.filterReads += counter.filterReads;
        totals.ofmapReads += counter.ofmapReads;
        totals.ofmapWrites += counter.ofmapWrites;
        totals.traceRows += writer.rowsWritten();
        totals.macRandom += actions.counts().macRandom;
        totals.cache.merge(gen.foldCacheStats());
    }
    return totals;
}

} // namespace

int
main(int argc, char** argv)
{
    const std::string workload = argc > 1 ? argv[1] : "resnet50";
    const std::string out_path =
        argc > 2 ? argv[2] : "BENCH_trace_speed.json";
    std::int64_t reps = 3;
    if (argc > 3
        && (parseInt64(argv[3], reps) != NumberParse::Ok || reps < 1)) {
        std::cerr << "trace_speed: bad rep count '" << argv[3]
                  << "'\nusage: trace_speed [workload] [out.json]"
                     " [reps >= 1]\n";
        return 2;
    }

    const Topology topo = workloads::byName(workload);
    SimConfig cfg;
    cfg.arrayRows = 32;
    cfg.arrayCols = 32;

    std::cout << "trace_speed: " << topo.name << " ("
              << topo.layers.size() << " layers) on " << cfg.arrayRows
              << "x" << cfg.arrayCols << " "
              << toString(cfg.dataflow) << "\n";

    // Timed: the demand pass the cache accelerates.
    double best_live = 1e30;
    double best_cached = 1e30;
    PassTotals live, cached;
    for (std::int64_t rep = 0; rep < reps; ++rep) {
        benchutil::Timer t;
        live = runDemandPass(topo, cfg, false);
        best_live = std::min(best_live, t.seconds());
        t.reset();
        cached = runDemandPass(topo, cfg, true);
        best_cached = std::min(best_cached, t.seconds());
    }
    if (!cached.agrees(live)) {
        std::cerr << "FAIL: cached and uncached demand passes disagree "
                     "on access totals\n";
        return 1;
    }

    // Untimed equivalence check through every trace-mode consumer.
    benchutil::Timer t;
    const PassTotals full_live = runFullStack(topo, cfg, false);
    const double full_live_s = t.seconds();
    t.reset();
    const PassTotals full_cached = runFullStack(topo, cfg, true);
    const double full_cached_s = t.seconds();
    if (!full_cached.agrees(full_live)) {
        std::cerr << "FAIL: cached and uncached full-stack runs "
                     "disagree\n";
        return 1;
    }

    const double speedup = best_live / best_cached;
    const double replay_rate = cached.cache.foldsTotal
        ? static_cast<double>(cached.cache.foldsReplayed)
              / static_cast<double>(cached.cache.foldsTotal)
        : 0.0;
    std::cout << "  demand pass uncached: "
              << benchutil::fmt("%.3f", best_live)
              << " s\n  demand pass cached:   "
              << benchutil::fmt("%.3f", best_cached)
              << " s\n  speedup:              "
              << benchutil::fmt("%.2f", speedup) << "x\n  full stack:           "
              << benchutil::fmt("%.3f", full_live_s) << " s -> "
              << benchutil::fmt("%.3f", full_cached_s)
              << " s (visitor costs dominate)\n  replayed:             "
              << cached.cache.foldsReplayed << "/"
              << cached.cache.foldsTotal << " folds ("
              << benchutil::fmt("%.1f", 100.0 * replay_rate)
              << "%), " << cached.cache.bytesSaved() / (1024 * 1024)
              << " MiB of addresses served from cache\n";

    std::ofstream out(out_path);
    if (!out)
        fatal("cannot write %s", out_path.c_str());
    out << "{\n"
        << "  \"benchmark\": \"trace_speed\",\n"
        << "  \"workload\": \"" << topo.name << "\",\n"
        << "  \"arrayRows\": " << cfg.arrayRows << ",\n"
        << "  \"arrayCols\": " << cfg.arrayCols << ",\n"
        << "  \"dataflow\": \"" << toString(cfg.dataflow) << "\",\n"
        << "  \"reps\": " << reps << ",\n"
        << "  \"simdBackend\": \"" << simd::backendName() << "\",\n"
        << "  \"uncachedSeconds\": "
        << benchutil::fmt("%.6f", best_live) << ",\n"
        << "  \"cachedSeconds\": "
        << benchutil::fmt("%.6f", best_cached) << ",\n"
        << "  \"speedup\": " << benchutil::fmt("%.3f", speedup) << ",\n"
        << "  \"fullStackUncachedSeconds\": "
        << benchutil::fmt("%.6f", full_live_s) << ",\n"
        << "  \"fullStackCachedSeconds\": "
        << benchutil::fmt("%.6f", full_cached_s) << ",\n"
        << "  \"foldsTotal\": " << cached.cache.foldsTotal << ",\n"
        << "  \"foldsReplayed\": " << cached.cache.foldsReplayed << ",\n"
        << "  \"foldsLive\": " << cached.cache.foldsLive << ",\n"
        << "  \"addrsReplayed\": " << cached.cache.addrsReplayed << ",\n"
        << "  \"bytesSaved\": " << cached.cache.bytesSaved() << "\n"
        << "}\n";
    std::cout << "wrote " << out_path << "\n";
    return speedup >= 1.0 ? 0 : 1;
}
