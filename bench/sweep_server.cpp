/**
 * @file
 * Cold-vs-warm throughput benchmark for the sweep server's
 * content-addressed per-layer result cache. Drives an in-process
 * serve::Server with the same sweep request twice:
 *
 *  1. Cold: empty cache, every layer of every sweep point simulated.
 *  2. Warm: identical request, every layer served from the cache.
 *
 * The two response lines must be byte-identical (the cache is a pure
 * memoization of layer evaluation), the warm pass must hit on >= 90%
 * of its lookups, and the cold/warm throughput ratio must be >= 5x.
 * Any violation exits nonzero so CI can gate on it.
 *
 *   sweep_server [workload] [output.json] [warm_reps]
 *
 * Defaults: resnet18, BENCH_sweep_server.json, 3 warm repetitions
 * (best warm time is reported; each repetition re-verifies byte
 * identity).
 */

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>

#include "bench_util.hpp"
#include "common/log.hpp"
#include "common/parse.hpp"
#include "common/workloads.hpp"
#include "serve/server.hpp"

using namespace scalesim;

int
main(int argc, char** argv)
{
    const std::string workload = argc > 1 ? argv[1] : "resnet18";
    const std::string out_path =
        argc > 2 ? argv[2] : "BENCH_sweep_server.json";
    std::int64_t warm_reps = 3;
    if (argc > 3
        && (parseInt64(argv[3], warm_reps) != NumberParse::Ok
            || warm_reps < 1)) {
        std::cerr << "sweep_server: bad rep count '" << argv[3]
                  << "'\nusage: sweep_server [workload] [out.json]"
                     " [warm reps >= 1]\n";
        return 2;
    }

    const Topology topo = workloads::byName(workload);
    const std::string request =
        "{\"id\": 1, \"type\": \"sweep\", \"workload\": \"" + topo.name
        + "\", \"sweep\": {\"arrays\": [16, 32], "
          "\"dataflows\": [\"os\", \"ws\"], \"sramKb\": [512], "
          "\"jobs\": 1}}";
    const int points = 2 * 2 * 1;

    serve::Server server({});
    std::cout << "sweep_server: " << topo.name << " ("
              << topo.layers.size() << " layers x " << points
              << " sweep points)\n";

    benchutil::Timer t;
    const std::string cold = server.handleRequest(request);
    const double cold_s = t.seconds();
    const auto cold_stats = server.cache().stats();

    double warm_s = 1e30;
    bool identical = true;
    for (std::int64_t rep = 0; rep < warm_reps; ++rep) {
        t.reset();
        const std::string warm = server.handleRequest(request);
        warm_s = std::min(warm_s, t.seconds());
        identical = identical && warm == cold;
    }
    const auto warm_stats = server.cache().stats();

    const std::uint64_t warm_hits = warm_stats.hits - cold_stats.hits;
    const std::uint64_t warm_lookups =
        warm_hits + (warm_stats.misses - cold_stats.misses);
    const double warm_hit_rate = warm_lookups
        ? static_cast<double>(warm_hits)
              / static_cast<double>(warm_lookups)
        : 0.0;
    const double ratio = warm_s > 0.0 ? cold_s / warm_s : 0.0;

    std::cout << "  cold sweep: " << benchutil::fmt("%.3f", cold_s)
              << " s\n  warm sweep: " << benchutil::fmt("%.3f", warm_s)
              << " s (best of " << warm_reps
              << ")\n  throughput: " << benchutil::fmt("%.1f", ratio)
              << "x\n  warm hits:  " << warm_hits << "/" << warm_lookups
              << " (" << benchutil::fmt("%.1f", 100.0 * warm_hit_rate)
              << "%)\n  identical:  " << (identical ? "yes" : "NO")
              << "\n  cache:      " << warm_stats.entries
              << " entries, " << warm_stats.bytes << " bytes\n";

    std::ofstream out(out_path);
    if (!out)
        fatal("cannot write %s", out_path.c_str());
    out << "{\n"
        << "  \"benchmark\": \"sweep_server\",\n"
        << "  \"workload\": \"" << topo.name << "\",\n"
        << "  \"points\": " << points << ",\n"
        << "  \"layers\": " << topo.layers.size() << ",\n"
        << "  \"warmReps\": " << warm_reps << ",\n"
        << "  \"coldSeconds\": " << benchutil::fmt("%.6f", cold_s)
        << ",\n"
        << "  \"warmSeconds\": " << benchutil::fmt("%.6f", warm_s)
        << ",\n"
        << "  \"throughputRatio\": " << benchutil::fmt("%.3f", ratio)
        << ",\n"
        << "  \"warmHitRate\": "
        << benchutil::fmt("%.6f", warm_hit_rate) << ",\n"
        << "  \"byteIdentical\": " << (identical ? "true" : "false")
        << ",\n"
        << "  \"cacheEntries\": " << warm_stats.entries << ",\n"
        << "  \"cacheBytes\": " << warm_stats.bytes << "\n"
        << "}\n";
    std::cout << "wrote " << out_path << "\n";

    if (!identical) {
        std::cerr << "FAIL: warm response differs from cold response\n";
        return 1;
    }
    if (warm_hit_rate < 0.9) {
        std::cerr << "FAIL: warm hit rate "
                  << benchutil::fmt("%.3f", warm_hit_rate) << " < 0.9\n";
        return 1;
    }
    if (ratio < 5.0) {
        std::cerr << "FAIL: cold/warm throughput ratio "
                  << benchutil::fmt("%.2f", ratio) << " < 5\n";
        return 1;
    }
    return 0;
}
