/**
 * @file
 * Tests for the runtime-dispatched SIMD add-constant kernel and its
 * integration in fold replay: every backend supported on this machine
 * must produce bit-identical address streams — tails of every length,
 * negative (wrapping) deltas, in-place operation — and a cached demand
 * pass replayed under forced-scalar must match the auto-dispatched one
 * byte for byte.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "common/log.hpp"
#include "systolic/demand.hpp"
#include "systolic/simd.hpp"
#include "systolic/trace_io.hpp"

using namespace scalesim;
using namespace scalesim::systolic;

namespace
{

/** Restore CPU-detected dispatch no matter how the test exits. */
struct BackendGuard
{
    ~BackendGuard() { simd::resetBackend(); }
};

std::vector<Addr>
reference(const std::vector<Addr>& src, Addr delta)
{
    std::vector<Addr> out = src;
    for (Addr& v : out)
        v += delta;
    return out;
}

std::vector<Addr>
makeInput(std::size_t n)
{
    std::vector<Addr> v(n);
    for (std::size_t i = 0; i < n; ++i)
        v[i] = 1'000'003 * static_cast<Addr>(i) + 17;
    return v;
}

/** All four SRAM trace streams of one cached demand pass. */
std::string
cachedPassTraces(simd::Backend backend)
{
    BackendGuard guard;
    simd::setBackend(backend);
    const GemmDims gemm{32, 16, 24}; // every fold full-shaped: replays
    MemoryConfig mem;
    const OperandMap operands(gemm, mem);
    DemandGenerator gen(gemm, Dataflow::OutputStationary, 8, 8,
                        operands);
    gen.setFoldCache(true);
    std::ostringstream ifmap, filter, ofmap, oread;
    SramTraceWriter writer(&ifmap, &filter, &ofmap, &oread);
    gen.run(writer);
    writer.flush();
    EXPECT_GT(gen.foldCacheStats().foldsReplayed, 0u);
    return ifmap.str() + "|" + filter.str() + "|" + ofmap.str() + "|"
        + oread.str();
}

} // namespace

TEST(Simd, ScalarAlwaysSupported)
{
    EXPECT_TRUE(simd::backendSupported(simd::Backend::Scalar));
    // The dispatcher picked something runnable.
    EXPECT_TRUE(simd::backendSupported(simd::activeBackend()));
    const std::string name = simd::backendName();
    EXPECT_TRUE(name == "scalar" || name == "avx2") << name;
}

TEST(Simd, SetBackendSwitchesDispatch)
{
    BackendGuard guard;
    simd::setBackend(simd::Backend::Scalar);
    EXPECT_EQ(simd::activeBackend(), simd::Backend::Scalar);
    EXPECT_STREQ(simd::backendName(), "scalar");
    simd::resetBackend();
    EXPECT_TRUE(simd::backendSupported(simd::activeBackend()));
}

TEST(Simd, AddConstantAllLengthsAndDeltas)
{
    BackendGuard guard;
    const Addr deltas[] = {0, 1, 512,
                           static_cast<Addr>(-1),   // wraps like signed
                           static_cast<Addr>(-64),
                           Addr{1} << 40};
    for (const simd::Backend b :
         {simd::Backend::Scalar, simd::Backend::Avx2}) {
        if (!simd::backendSupported(b))
            continue;
        simd::setBackend(b);
        // Lengths straddling every vector-width boundary and tail.
        for (const std::size_t n : {0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16,
                                    17, 31, 32, 33, 100, 257}) {
            const std::vector<Addr> src = makeInput(n);
            for (const Addr delta : deltas) {
                std::vector<Addr> dst(n, 0xDEAD);
                simd::addConstant(src.data(), dst.data(), n, delta);
                EXPECT_EQ(dst, reference(src, delta))
                    << simd::backendName() << " n=" << n;
            }
        }
    }
}

TEST(Simd, AddConstantInPlace)
{
    BackendGuard guard;
    for (const simd::Backend b :
         {simd::Backend::Scalar, simd::Backend::Avx2}) {
        if (!simd::backendSupported(b))
            continue;
        simd::setBackend(b);
        std::vector<Addr> buf = makeInput(133);
        const std::vector<Addr> want = reference(buf, 4096);
        simd::addConstant(buf.data(), buf.data(), buf.size(), 4096);
        EXPECT_EQ(buf, want) << simd::backendName();
    }
}

TEST(Simd, BackendsBitIdentical)
{
    if (!simd::backendSupported(simd::Backend::Avx2))
        GTEST_SKIP() << "no AVX2 on this machine";
    BackendGuard guard;
    const std::vector<Addr> src = makeInput(1027);
    const Addr delta = static_cast<Addr>(-12'345);
    std::vector<Addr> scalar(src.size()), avx2(src.size());
    simd::setBackend(simd::Backend::Scalar);
    simd::addConstant(src.data(), scalar.data(), src.size(), delta);
    simd::setBackend(simd::Backend::Avx2);
    simd::addConstant(src.data(), avx2.data(), src.size(), delta);
    EXPECT_EQ(scalar, avx2);
}

TEST(Simd, FoldReplayIdenticalAcrossBackends)
{
    // The satellite guarantee: the SIMD fold replay changes nothing
    // observable. Same GEMM, same cache, forced-scalar vs the
    // dispatcher's pick — all four trace streams byte-identical.
    const std::string scalar = cachedPassTraces(simd::Backend::Scalar);
    const std::string native = cachedPassTraces(simd::activeBackend());
    EXPECT_EQ(scalar, native);
    if (simd::backendSupported(simd::Backend::Avx2)) {
        const std::string avx2 = cachedPassTraces(simd::Backend::Avx2);
        EXPECT_EQ(scalar, avx2);
    }
}
