file(REMOVE_RECURSE
  "CMakeFiles/ablation_frfcfs.dir/ablation_frfcfs.cpp.o"
  "CMakeFiles/ablation_frfcfs.dir/ablation_frfcfs.cpp.o.d"
  "ablation_frfcfs"
  "ablation_frfcfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_frfcfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
