/**
 * @file
 * Unit tests for the sparsity module: N:M pattern construction,
 * gather-map invariants, storage models for Blocked ELLPACK / CSR /
 * CSC, and the per-layer sparse model.
 */

#include <gtest/gtest.h>

#include "common/log.hpp"
#include "sparse/model.hpp"

using namespace scalesim;
using namespace scalesim::sparse;

TEST(Pattern, LayerWiseCompression)
{
    const auto p = SparsityPattern::layerWise(64, 2, 4);
    EXPECT_EQ(p.denseK(), 64u);
    EXPECT_EQ(p.compressedK(), 32u);
    EXPECT_DOUBLE_EQ(p.density(), 0.5);
    EXPECT_EQ(p.blockSize(), 4u);
}

TEST(Pattern, LayerWiseDenseRatio)
{
    const auto p = SparsityPattern::layerWise(64, 4, 4);
    EXPECT_EQ(p.compressedK(), 64u);
    EXPECT_DOUBLE_EQ(p.density(), 1.0);
}

TEST(Pattern, LayerWiseRaggedTail)
{
    // K = 10, blocks of 4 -> last block has only 2 rows; keeping 3
    // per block caps at the block's real size.
    const auto p = SparsityPattern::layerWise(10, 3, 4);
    EXPECT_EQ(p.compressedK(), 3u + 3u + 2u);
}

TEST(Pattern, OrigKMonotoneAndKept)
{
    const auto p = SparsityPattern::layerWise(32, 1, 4);
    std::uint64_t prev = 0;
    for (std::uint64_t i = 0; i < p.compressedK(); ++i) {
        const std::uint64_t k = p.origK(i);
        if (i > 0) {
            EXPECT_GT(k, prev);
        }
        EXPECT_EQ(k % 4, 0u); // first row of each block
        prev = k;
    }
}

TEST(Pattern, RowWiseRespectsHalfBound)
{
    Rng rng(42);
    const auto p = SparsityPattern::rowWise(256, 8, rng);
    for (std::uint32_t nnz : p.blockNnz()) {
        EXPECT_GE(nnz, 1u);
        EXPECT_LE(nnz, 4u); // M/2
    }
    EXPECT_LE(p.density(), 0.5 + 1e-9);
    EXPECT_GT(p.density(), 0.0);
}

TEST(Pattern, RowWiseDeterministicPerSeed)
{
    Rng a(7), b(7), c(8);
    const auto pa = SparsityPattern::rowWise(128, 4, a);
    const auto pb = SparsityPattern::rowWise(128, 4, b);
    const auto pc = SparsityPattern::rowWise(128, 4, c);
    EXPECT_EQ(pa.blockNnz(), pb.blockNnz());
    EXPECT_NE(pa.blockNnz(), pc.blockNnz());
}

TEST(Pattern, InvalidRatiosRejected)
{
    EXPECT_THROW(SparsityPattern::layerWise(16, 5, 4), FatalError);
    EXPECT_THROW(SparsityPattern::layerWise(16, 0, 4), FatalError);
    Rng rng(1);
    EXPECT_THROW(SparsityPattern::rowWise(16, 1, rng), FatalError);
}

TEST(Formats, IndexBits)
{
    EXPECT_EQ(indexBits(1), 1u);
    EXPECT_EQ(indexBits(2), 1u);
    EXPECT_EQ(indexBits(4), 2u);
    EXPECT_EQ(indexBits(5), 3u);
    EXPECT_EQ(indexBits(1024), 10u);
}

TEST(Formats, EllpackBlockStorage)
{
    // Fig. 6: one value + log2(M)-bit index per nonzero.
    const auto p = SparsityPattern::layerWise(64, 2, 4);
    const auto r = storageFor(SparseRep::EllpackBlock, p, 16, 8);
    const std::uint64_t nnz = 32u * 16u;
    EXPECT_EQ(r.originalBits, 64u * 16u * 8u);
    EXPECT_EQ(r.valueBits, nnz * 8u);
    EXPECT_EQ(r.metadataBits, nnz * 2u); // log2(4) = 2
    EXPECT_GT(r.compressionRatio(), 1.0);
}

TEST(Formats, DenseStorageHasNoMetadata)
{
    const auto p = SparsityPattern::dense(64);
    const auto r = storageFor(SparseRep::Dense, p, 16, 8);
    EXPECT_EQ(r.totalBits(), r.originalBits);
    EXPECT_EQ(r.metadataBits, 0u);
}

TEST(Formats, CsrAndCscStructure)
{
    const auto p = SparsityPattern::layerWise(64, 1, 4);
    const std::uint64_t nnz = 16u * 32u;
    const auto csr = storageFor(SparseRep::Csr, p, 32, 8);
    EXPECT_EQ(csr.valueBits, nnz * 8u);
    // column indices (log2(32) = 5) + 65 row pointers.
    EXPECT_EQ(csr.metadataBits, nnz * 5u + 65u * indexBits(nnz + 1));
    const auto csc = storageFor(SparseRep::Csc, p, 32, 8);
    EXPECT_EQ(csc.valueBits, nnz * 8u);
    EXPECT_EQ(csc.metadataBits, nnz * indexBits(64) + 33u
              * indexBits(nnz + 1));
}

TEST(Formats, HigherSparsityShrinksStorage)
{
    const auto p14 = SparsityPattern::layerWise(256, 1, 4);
    const auto p24 = SparsityPattern::layerWise(256, 2, 4);
    const auto p34 = SparsityPattern::layerWise(256, 3, 4);
    const auto s14 = storageFor(SparseRep::EllpackBlock, p14, 64);
    const auto s24 = storageFor(SparseRep::EllpackBlock, p24, 64);
    const auto s34 = storageFor(SparseRep::EllpackBlock, p34, 64);
    EXPECT_LT(s14.totalBits(), s24.totalBits());
    EXPECT_LT(s24.totalBits(), s34.totalBits());
    EXPECT_LT(s34.totalBits(), s34.originalBits);
}

TEST(Model, LayerWiseFromAnnotation)
{
    LayerSpec layer = LayerSpec::gemm("l", 64, 32, 128);
    layer.sparseN = 1;
    layer.sparseM = 4;
    SparsityConfig cfg;
    cfg.enabled = true;
    SparseLayerModel model(layer, cfg);
    EXPECT_TRUE(model.active());
    EXPECT_EQ(model.effectiveGemm().k, 32u);
    EXPECT_EQ(model.effectiveGemm().m, 64u);
    const auto report = model.report();
    EXPECT_EQ(report.ratioN, 1u);
    EXPECT_EQ(report.ratioM, 4u);
    EXPECT_EQ(report.denseK, 128u);
    EXPECT_EQ(report.compressedK, 32u);
    EXPECT_LT(report.newFilterBits, report.originalFilterBits);
}

TEST(Model, DisabledConfigIgnoresAnnotation)
{
    LayerSpec layer = LayerSpec::gemm("l", 64, 32, 128);
    layer.sparseN = 1;
    layer.sparseM = 4;
    SparsityConfig cfg; // enabled = false
    SparseLayerModel model(layer, cfg);
    EXPECT_FALSE(model.active());
    EXPECT_EQ(model.effectiveGemm().k, 128u);
}

TEST(Model, RowWiseVariesAcrossLayers)
{
    LayerSpec layer = LayerSpec::gemm("l", 64, 32, 256);
    layer.sparseN = 4; // sparse-annotated layer opts into row-wise
    layer.sparseM = 8;
    SparsityConfig cfg;
    cfg.enabled = true;
    cfg.optimizedMapping = true;
    cfg.blockSize = 8;
    SparseLayerModel m0(layer, cfg, 0);
    SparseLayerModel m1(layer, cfg, 1);
    EXPECT_TRUE(m0.active());
    EXPECT_TRUE(m1.active());
    EXPECT_NE(m0.pattern().blockNnz(), m1.pattern().blockNnz());
    // Same layer index reproduces the same pattern.
    SparseLayerModel m0b(layer, cfg, 0);
    EXPECT_EQ(m0.pattern().blockNnz(), m0b.pattern().blockNnz());
}

TEST(Model, RowWiseLeavesDenseLayersDense)
{
    // A layer the topology marks dense (sparseN/M == 0) must stay
    // dense even with optimizedMapping on — the row-wise branch used
    // to compress every layer regardless of annotation or `enabled`.
    LayerSpec dense_layer = LayerSpec::gemm("l", 64, 32, 256);
    SparsityConfig cfg;
    cfg.enabled = true;
    cfg.optimizedMapping = true;
    cfg.blockSize = 8;
    SparseLayerModel dense_model(dense_layer, cfg, 0);
    EXPECT_FALSE(dense_model.active());
    EXPECT_EQ(dense_model.effectiveGemm().k, 256u);
    EXPECT_EQ(dense_model.report().representation, "dense");

    // Disabled sparsity must also override the mapping flag, even on
    // an annotated layer.
    LayerSpec annotated = dense_layer;
    annotated.sparseN = 2;
    annotated.sparseM = 4;
    SparsityConfig off;
    off.optimizedMapping = true; // enabled stays false
    SparseLayerModel off_model(annotated, off, 0);
    EXPECT_FALSE(off_model.active());
    EXPECT_EQ(off_model.effectiveGemm().k, 256u);
}

TEST(Model, ReportHasRepresentationName)
{
    LayerSpec layer = LayerSpec::gemm("l", 4, 4, 16);
    layer.sparseN = 2;
    layer.sparseM = 4;
    SparsityConfig cfg;
    cfg.enabled = true;
    cfg.rep = SparseRep::EllpackBlock;
    SparseLayerModel model(layer, cfg);
    EXPECT_EQ(model.report().representation, "ellpack_block");
}

class SparsitySweep
    : public ::testing::TestWithParam<std::pair<std::uint32_t,
                                                std::uint32_t>>
{
};

TEST_P(SparsitySweep, CompressionMatchesRatio)
{
    const auto [n, m] = GetParam();
    const std::uint64_t k = 4096; // divisible by all tested M
    const auto p = SparsityPattern::layerWise(k, n, m);
    EXPECT_EQ(p.compressedK(), k * n / m);
    const auto storage = storageFor(SparseRep::EllpackBlock, p, 128, 8);
    const double expected_value_ratio = static_cast<double>(n) / m;
    EXPECT_NEAR(static_cast<double>(storage.valueBits)
                    / static_cast<double>(storage.originalBits),
                expected_value_ratio, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Ratios, SparsitySweep,
    ::testing::Values(std::make_pair(1u, 4u), std::make_pair(2u, 4u),
                      std::make_pair(3u, 4u), std::make_pair(4u, 4u),
                      std::make_pair(1u, 8u), std::make_pair(4u, 8u),
                      std::make_pair(8u, 16u),
                      std::make_pair(16u, 32u)),
    [](const auto& tpi) {
        return format("r%u_%u", tpi.param.first, tpi.param.second);
    });
