file(REMOVE_RECURSE
  "libscalesim_core.a"
)
