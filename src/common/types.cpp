#include "common/types.hpp"

#include <algorithm>
#include <cctype>
#include <stdexcept>

#include "common/log.hpp"

namespace scalesim
{

std::string
toString(Dataflow df)
{
    switch (df) {
      case Dataflow::OutputStationary: return "os";
      case Dataflow::WeightStationary: return "ws";
      case Dataflow::InputStationary: return "is";
    }
    return "os";
}

Dataflow
dataflowFromString(std::string_view text)
{
    std::string lower(text);
    std::transform(lower.begin(), lower.end(), lower.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    if (lower == "os" || lower == "output_stationary")
        return Dataflow::OutputStationary;
    if (lower == "ws" || lower == "weight_stationary")
        return Dataflow::WeightStationary;
    if (lower == "is" || lower == "input_stationary")
        return Dataflow::InputStationary;
    throw std::invalid_argument("unknown dataflow: " + std::string(text));
}

MappedDims
mapGemm(const GemmDims& gemm, Dataflow df)
{
    // Table II of the paper.
    switch (df) {
      case Dataflow::InputStationary:
        return {gemm.k, gemm.n, gemm.m};
      case Dataflow::WeightStationary:
        return {gemm.k, gemm.m, gemm.n};
      case Dataflow::OutputStationary:
        return {gemm.m, gemm.n, gemm.k};
    }
    return {gemm.m, gemm.n, gemm.k};
}

std::string
toString(VectorTail tail)
{
    switch (tail) {
      case VectorTail::None: return "none";
      case VectorTail::Activation: return "activation";
      case VectorTail::Softmax: return "softmax";
      case VectorTail::Quantize: return "quantize";
    }
    return "none";
}

VectorTail
vectorTailFromString(std::string_view text)
{
    std::string lower(text);
    std::transform(lower.begin(), lower.end(), lower.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    if (lower.empty() || lower == "none" || lower == "-")
        return VectorTail::None;
    if (lower == "activation" || lower == "relu" || lower == "gelu")
        return VectorTail::Activation;
    if (lower == "softmax")
        return VectorTail::Softmax;
    if (lower == "quantize" || lower == "dequantize")
        return VectorTail::Quantize;
    throw std::invalid_argument("unknown vector tail: "
                                + std::string(text));
}

std::uint64_t
LayerSpec::ofmapH() const
{
    if (type != LayerType::Conv || ifmapH < filterH)
        return 1;
    return (ifmapH - filterH) / stride + 1;
}

std::uint64_t
LayerSpec::ofmapW() const
{
    if (type != LayerType::Conv || ifmapW < filterW)
        return 1;
    return (ifmapW - filterW) / stride + 1;
}

GemmDims
LayerSpec::toGemm() const
{
    const std::uint64_t b = batch == 0 ? 1 : batch;
    if (type == LayerType::Gemm) {
        GemmDims dims = gemmDims;
        dims.m *= b;
        return dims;
    }
    GemmDims dims;
    dims.m = ofmapH() * ofmapW() * b;
    dims.k = filterH * filterW * channels;
    dims.n = numFilters;
    return dims;
}

LayerSpec
LayerSpec::conv(std::string name, std::uint64_t ifmap_h,
                std::uint64_t ifmap_w, std::uint64_t filter_h,
                std::uint64_t filter_w, std::uint64_t channels,
                std::uint64_t num_filters, std::uint64_t stride,
                std::uint32_t repetitions)
{
    LayerSpec spec;
    spec.name = std::move(name);
    spec.type = LayerType::Conv;
    spec.ifmapH = ifmap_h;
    spec.ifmapW = ifmap_w;
    spec.filterH = filter_h;
    spec.filterW = filter_w;
    spec.channels = channels;
    spec.numFilters = num_filters;
    spec.stride = stride;
    spec.repetitions = repetitions;
    if (stride == 0)
        fatal("layer %s: stride must be non-zero", spec.name.c_str());
    return spec;
}

LayerSpec
LayerSpec::gemm(std::string name, std::uint64_t m, std::uint64_t n,
                std::uint64_t k, std::uint32_t repetitions)
{
    LayerSpec spec;
    spec.name = std::move(name);
    spec.type = LayerType::Gemm;
    spec.gemmDims = {m, n, k};
    spec.repetitions = repetitions;
    return spec;
}

} // namespace scalesim
