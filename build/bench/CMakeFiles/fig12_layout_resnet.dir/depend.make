# Empty dependencies file for fig12_layout_resnet.
# This may be replaced when dependencies are built.
