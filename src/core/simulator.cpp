#include "core/simulator.hpp"

#include <algorithm>
#include <ostream>

#include "common/csv.hpp"
#include "common/log.hpp"
#include "multicore/tensor_core.hpp"
#include "obs/json.hpp"
#include "obs/trace.hpp"
#include "systolic/demand.hpp"

namespace scalesim::core
{

Simulator::Simulator(const SimConfig& cfg)
    : cfg_(cfg)
{
    cfg_.validate();
    init();
}

void
Simulator::init()
{
    if (cfg_.dram.enabled) {
        dram_ = std::make_unique<dram::DramMemory>(cfg_.dram,
                                                   cfg_.memory.wordBytes);
        memory_ = dram_.get();
    } else {
        bandwidthMemory_ = std::make_unique<systolic::BandwidthMemory>(
            cfg_.memory.bandwidthWordsPerCycle);
        memory_ = bandwidthMemory_.get();
    }

    systolic::ScratchpadConfig spad;
    spad.ifmapWords = sramWords(cfg_.memory.ifmapSramKb);
    spad.filterWords = sramWords(cfg_.memory.filterSramKb);
    spad.ofmapWords = sramWords(cfg_.memory.ofmapSramKb);
    spad.readQueueSize = cfg_.dram.readQueueSize;
    spad.writeQueueSize = cfg_.dram.writeQueueSize;
    spad.burstWords = cfg_.memory.burstWords;
    spad.issuePerCycle = cfg_.memory.issuePerCycle;
    spad.prefetchDepth = cfg_.memory.prefetchDepth;
    spad.recordFoldSpans = cfg_.memory.recordFoldSpans;
    scratchpad_ = std::make_unique<systolic::DoubleBufferedScratchpad>(
        spad, *memory_);

    if (cfg_.energy.enabled) {
        const double sram_kb = static_cast<double>(
            cfg_.memory.ifmapSramKb + cfg_.memory.filterSramKb
            + cfg_.memory.ofmapSramKb);
        energyModel_ = std::make_unique<energy::EnergyModel>(
            energy::Ert::forNode(cfg_.energy.node), cfg_.energy,
            cfg_.numPes(), sram_kb);
    }
    if (cfg_.audit)
        auditor_ = std::make_unique<check::InvariantAuditor>();
}

Simulator::~Simulator() = default;

void
Simulator::reset()
{
    // Rebuild every stateful component from the config, exactly as the
    // constructor does: the memory models carry row-buffer, refresh,
    // and bus-occupancy state, the scratchpad holds queue/prefetch
    // state, and the auditor accumulates checks. Dropping them first
    // releases the scratchpad's reference into the old memory model.
    scratchpad_.reset();
    dram_.reset();
    bandwidthMemory_.reset();
    memory_ = nullptr;
    energyModel_.reset();
    auditor_.reset();
    init();
    timeline_ = 0;
    foldCacheStats_ = {};
    profiler_.reset();
    ranOnce_ = false;
}

std::uint64_t
Simulator::sramWords(std::uint64_t kb) const
{
    const std::uint32_t word_bytes = std::max<std::uint32_t>(
        1, cfg_.memory.wordBytes);
    return kb * 1024 / word_bytes;
}

LayerResult
Simulator::runLayer(const LayerSpec& layer, std::uint64_t layer_index)
{
    const SimProfiler::clock::time_point layer_start =
        SimProfiler::clock::now();
    const dram::DramStats dram_before = dram_
        ? dram_->system().totalStats() : dram::DramStats{};
    LayerResult result;
    result.name = layer.name;
    result.repetitions = layer.repetitions;
    result.denseGemm = layer.toGemm();

    // 1. Sparsity resolution (§IV).
    std::optional<sparse::SparseLayerModel> sparse_model_storage;
    {
        const auto prof = profiler_.scope(SimPhase::Sparsity);
        sparse_model_storage.emplace(layer, cfg_.sparsity, layer_index);
    }
    sparse::SparseLayerModel& sparse_model = *sparse_model_storage;
    result.effectiveGemm = sparse_model.effectiveGemm();
    if (sparse_model.active())
        result.sparse = sparse_model.report(cfg_.memory.wordBytes * 8);

    const systolic::OperandMap operands = cfg_.memory.im2colAddressing
        ? systolic::OperandMap::forLayer(layer, cfg_.memory)
        : systolic::OperandMap(result.denseGemm, cfg_.memory);
    const systolic::FoldGrid grid(result.effectiveGemm, cfg_.dataflow,
                                  cfg_.arrayRows, cfg_.arrayCols);
    // Compute utilization of the run that actually executes (the
    // effective, post-sparsity GEMM); the dense/effective gain is
    // reported separately as `speedup` so utilization stays <= 1.
    const double pe_cycles = static_cast<double>(grid.totalCycles())
        * static_cast<double>(cfg_.numPes());
    result.utilization = pe_cycles > 0.0
        ? static_cast<double>(result.effectiveGemm.macs()) / pe_cycles
        : 0.0;
    if (result.effectiveGemm.k != result.denseGemm.k
        && grid.totalCycles() > 0) {
        const systolic::FoldGrid dense_grid(result.denseGemm,
                                            cfg_.dataflow,
                                            cfg_.arrayRows,
                                            cfg_.arrayCols);
        result.speedup = static_cast<double>(dense_grid.totalCycles())
            / static_cast<double>(grid.totalCycles());
    }
    result.mappingEfficiency = grid.mappingEfficiency();

    // 2. Demand-driven passes (trace mode): layout slowdown and exact
    //    energy action counts share one generation pass.
    const bool want_trace = cfg_.mode == SimMode::Trace
        && (cfg_.layout.enabled || cfg_.energy.enabled);
    const bool sparse_trace_ok = !sparse_model.active()
        || cfg_.dataflow == Dataflow::WeightStationary;
    std::optional<layout::BankConflictEvaluator> layout_eval;
    std::optional<energy::ActionCountVisitor> action_visitor;
    if (want_trace && sparse_trace_ok) {
        const sparse::SparsityPattern* gather = sparse_model.active()
            ? &sparse_model.pattern() : nullptr;
        systolic::DemandGenerator generator(
            result.denseGemm, cfg_.dataflow, cfg_.arrayRows,
            cfg_.arrayCols, operands, gather);
        generator.setFoldCache(cfg_.foldCache);
        std::vector<systolic::DemandVisitor*> sinks;
        if (cfg_.layout.enabled) {
            layout_eval.emplace(
                cfg_.layout,
                layout::OperandLayouts::forOperands(
                    operands, cfg_.layout,
                    layout::LayoutScheme::RowMajor));
            sinks.push_back(&*layout_eval);
        }
        if (cfg_.energy.enabled) {
            action_visitor.emplace(cfg_.energy);
            sinks.push_back(&*action_visitor);
        }
        systolic::TeeVisitor tee(std::move(sinks));
        {
            const auto prof = profiler_.scope(SimPhase::DemandGen);
            generator.run(tee);
        }
        foldCacheStats_.merge(generator.foldCacheStats());
        if (auditor_ && action_visitor) {
            // Audit the raw per-layer counts before stall/SIMD cycles
            // and sparse-metadata reads are folded in below; the
            // demand-agreement half only holds for the dense stream.
            auditor_->auditEnergyActions(action_visitor->counts(),
                                         generator.grid(),
                                         !sparse_model.active(),
                                         result.name);
        }
    }
    if (layout_eval)
        result.layoutSlowdown = layout_eval->slowdown();

    // 3. Memory-system timing (§V): fold-level prefetch scheduling
    //    against the configured main memory through finite queues. The
    //    running timeline keeps the memory model's clock aligned with
    //    compute across layers.
    scratchpad_->reset();
    {
        // The detailed DRAM model runs inside the timing pass; charge
        // the pass to whichever memory model is driving it.
        const auto prof = profiler_.scope(
            dram_ ? SimPhase::Dram : SimPhase::Scratchpad);
        result.timing = scratchpad_->runLayer(grid, operands, timeline_,
                                              result.layoutSlowdown);
    }
    result.computeCycles = result.timing.computeCycles;
    result.totalCycles = result.timing.totalCycles;
    result.stallCycles = result.timing.stallCycles;
    if (auditor_) {
        auditor_->auditStallAccounting(result.timing, result.name);
        auditor_->auditRuntimeEnvelope(result.timing, grid,
                                       result.layoutSlowdown,
                                       result.name);
        if (cfg_.mode == SimMode::Trace && !sparse_model.active()) {
            const auto prof = profiler_.scope(SimPhase::DemandGen);
            auditor_->auditFoldReplayFidelity(
                result.denseGemm, cfg_.dataflow, cfg_.arrayRows,
                cfg_.arrayCols, operands, result.name);
        }
    }

    // Element-wise tail on the vector unit, serialized after the
    // matrix part (§III-C).
    if (layer.tail != VectorTail::None) {
        multicore::SimdConfig simd;
        simd.lanes = cfg_.simdLanes;
        simd.latencyPerOp = cfg_.simdLatencyPerOp;
        result.simdCycles = multicore::simdCycles(
            simd, layer.tail, result.denseGemm.m * result.denseGemm.n);
        result.totalCycles += result.simdCycles;
    }
    // Finalize the layer's CPI stack: the scratchpad attributed every
    // matrix-phase cycle; the serialized vector tail is its own
    // bucket, keeping cpi.total() == totalCycles.
    result.cpi = result.timing.cpi;
    result.cpi.vectorUnit = result.simdCycles;
    if (auditor_)
        auditor_->auditCpiStack(result.cpi, result.totalCycles,
                                result.name);
    timeline_ += result.timing.totalCycles
        * std::max<std::uint32_t>(1, layer.repetitions);

    // 4. Energy (§VII).
    if (cfg_.energy.enabled) {
        const auto prof = profiler_.scope(SimPhase::Energy);
        if (action_visitor) {
            result.actions = action_visitor->counts();
        } else {
            result.actions = energy::analyticalActionCounts(grid,
                                                            cfg_.energy);
            if (auditor_) {
                auditor_->auditEnergyActions(result.actions, grid, true,
                                             result.name);
            }
        }
        // Stall and vector-tail cycles burn static + idle energy too.
        result.actions.cycles += result.stallCycles
            + result.simdCycles;
        if (result.sparse) {
            // Compressed-format metadata (intra-block indices /
            // pointers) is read alongside the filter values (§IV-C).
            const std::uint64_t word_bits = std::max<std::uint32_t>(
                1, cfg_.memory.wordBytes) * 8;
            result.actions.filterSram.readRandom +=
                ceilDiv(result.sparse->metadataBits, word_bits);
        }
        if (layer.tail != VectorTail::None) {
            std::uint64_t passes = 1;
            if (layer.tail == VectorTail::Softmax)
                passes = 3;
            result.actions.vectorOps = result.denseGemm.m
                * result.denseGemm.n * passes;
        }
        result.actions.dramReadWords = result.timing.dramReadWords;
        result.actions.dramWriteWords = result.timing.dramWriteWords;
        result.energyBreakdown = energyModel_->energy(result.actions);
        if (dram_) {
            // Replace the flat per-word DRAM estimate with the
            // command-granular one derived from the controller stats.
            const dram::DramStats after = dram_->system().totalStats();
            result.energyBreakdown.dram =
                energyModel_->dramCommandEnergyPj(
                    after.rowMisses + after.rowConflicts
                        - dram_before.rowMisses
                        - dram_before.rowConflicts,
                    after.reads - dram_before.reads,
                    after.writes - dram_before.writes,
                    after.refreshes - dram_before.refreshes);
        }
        result.powerW = energyModel_->averagePowerW(
            result.energyBreakdown, result.totalCycles);
    }
    profiler_.chargeLayer(std::chrono::duration<double>(
                              SimProfiler::clock::now() - layer_start)
                              .count());
    return result;
}

RunResult
Simulator::run(const Topology& topology)
{
    // A second run() on the same object must be bit-identical to a run
    // on a freshly constructed Simulator: without this, DRAM stats and
    // row-buffer state, the running timeline, and fold-cache counters
    // all leak from the first run into the second.
    if (ranOnce_)
        reset();
    ranOnce_ = true;
    RunResult run;
    run.runName = cfg_.runName;
    run.workload = topology.name;
    run.layers.reserve(topology.layers.size());

    // Periodic registry snapshots along the simulated timeline. The
    // snapshot combines the run-level partial totals with the
    // cumulative component state, under the same names the final
    // registry uses, so time-series columns line up with stats.json.
    obs::IntervalSampler sampler(cfg_.intervalCycles);
    auto snapshot = [&](obs::StatsRegistry& snap) {
        snap.addScalar("sim.totalCycles",
                       "wall-clock cycles incl. stalls",
                       static_cast<double>(run.totalCycles));
        snap.addScalar("sim.computeCycles", "ideal compute cycles",
                       static_cast<double>(run.computeCycles));
        snap.addScalar("sim.stallCycles", "memory stall cycles",
                       static_cast<double>(run.stallCycles));
        snap.addScalar("sim.dramReadWords", "main-memory words read",
                       static_cast<double>(run.dramReadWords));
        snap.addScalar("sim.dramWriteWords",
                       "main-memory words written",
                       static_cast<double>(run.dramWriteWords));
        run.cpiTotals.registerStats(
            snap, "sim.cpistack",
            "per-cause cycle attribution (sums to totalCycles)");
        registerStats(snap);
    };

    for (std::size_t i = 0; i < topology.layers.size(); ++i) {
        LayerResult layer = runLayer(topology.layers[i], i);
        const std::uint64_t reps = layer.repetitions;
        run.totalCycles += layer.totalCycles * reps;
        run.computeCycles += layer.computeCycles * reps;
        run.stallCycles += layer.stallCycles * reps;
        run.dramReadWords += layer.timing.dramReadWords * reps;
        run.dramWriteWords += layer.timing.dramWriteWords * reps;
        run.cpiTotals.accumulate(layer.cpi, reps);
        if (cfg_.energy.enabled) {
            energy::EnergyBreakdown scaled = layer.energyBreakdown;
            scaled.peArray *= static_cast<double>(reps);
            scaled.glb *= static_cast<double>(reps);
            scaled.noc *= static_cast<double>(reps);
            scaled.dram *= static_cast<double>(reps);
            scaled.staticE *= static_cast<double>(reps);
            run.totalEnergy.merge(scaled);
            // One instantaneous-power sample per layer instance.
            for (std::uint64_t r = 0; r < reps; ++r) {
                run.powerTrace.push_back({layer.name,
                                          layer.totalCycles,
                                          layer.powerW});
            }
        }
        run.layers.push_back(std::move(layer));
        if (sampler.enabled()) {
            obs::StatsRegistry snap;
            snapshot(snap);
            sampler.sample(timeline_, snap);
        }
    }
    if (sampler.enabled()) {
        obs::StatsRegistry snap;
        snapshot(snap);
        sampler.finish(timeline_, snap);
        run.intervals = sampler.takeSeries();
    }
    if (cfg_.energy.enabled && energyModel_) {
        run.avgPowerW = energyModel_->averagePowerW(run.totalEnergy,
                                                    run.totalCycles);
        run.edp = energyModel_->edp(run.totalEnergy, run.totalCycles);
    }
    if (dram_)
        run.dramStats = dram_->system().totalStats();
    run.profile = profiler_.snapshot();
    if (auditor_) {
        // Re-sum the per-layer results independently of the running
        // accumulation above, so drift between the two bookkeeping
        // paths is caught.
        Cycle sum_total = 0, sum_compute = 0, sum_stall = 0;
        std::uint64_t sum_read = 0, sum_write = 0;
        for (const auto& l : run.layers) {
            const std::uint64_t reps = l.repetitions;
            sum_total += l.totalCycles * reps;
            sum_compute += l.computeCycles * reps;
            sum_stall += l.stallCycles * reps;
            sum_read += l.timing.dramReadWords * reps;
            sum_write += l.timing.dramWriteWords * reps;
        }
        auditor_->auditRunTotals(run.totalCycles, run.computeCycles,
                                 run.stallCycles, run.dramReadWords,
                                 run.dramWriteWords, sum_total,
                                 sum_compute, sum_stall, sum_read,
                                 sum_write, "run");
        auditor_->auditCpiStack(run.cpiTotals, run.totalCycles, "run");
        auditor_->auditFoldCacheConservation(foldCacheStats_, "run");
        auditor_->auditMemoryTraffic(scratchpad_->totals(),
                                     memory_->stats(), "run");
        if (dram_)
            auditor_->auditDramSystem(dram_->system(), "dram");
        run.audited = true;
        run.audit = auditor_->report();
    }
    run.registerStats(run.stats);
    registerStats(run.stats);
    return run;
}

void
Simulator::registerStats(obs::StatsRegistry& reg) const
{
    if (dram_)
        dram_->system().registerStats(reg, "dram");
    scratchpad_->registerStats(reg, "spad");

    // Fold-replay demand cache. These counters describe the
    // simulator's own work, not the modeled hardware: they are the
    // only stats allowed to differ between foldCache on/off runs.
    reg.addScalar("sim.foldCache.folds", "demand folds generated",
                  static_cast<double>(foldCacheStats_.foldsTotal));
    reg.addScalar("sim.foldCache.replayed",
                  "folds replayed from a cached canonical fold",
                  static_cast<double>(foldCacheStats_.foldsReplayed));
    reg.addScalar("sim.foldCache.live",
                  "folds generated live (captures + fallbacks)",
                  static_cast<double>(foldCacheStats_.foldsLive));
    reg.addScalar("sim.foldCache.addrsReplayed",
                  "addresses emitted from cache arenas",
                  static_cast<double>(foldCacheStats_.addrsReplayed));
    reg.addScalar("sim.foldCache.bytesSaved",
                  "address bytes that skipped live generation",
                  static_cast<double>(foldCacheStats_.bytesSaved()));
    obs::FormulaSpec hit_rate;
    hit_rate.numerator = {{"sim.foldCache.replayed", 1.0}};
    hit_rate.denominator = {{"sim.foldCache.folds", 1.0}};
    reg.addFormula("sim.foldCache.hitRate",
                   "replayed / folds", hit_rate);

    const systolic::MemoryStats& mem = memory_->stats();
    reg.addScalar("mem.readRequests", "main-memory read requests",
                  static_cast<double>(mem.readRequests));
    reg.addScalar("mem.writeRequests", "main-memory write requests",
                  static_cast<double>(mem.writeRequests));
    reg.addScalar("mem.readWords", "main-memory words read",
                  static_cast<double>(mem.readWords));
    reg.addScalar("mem.writeWords", "main-memory words written",
                  static_cast<double>(mem.writeWords));
    reg.addScalar("mem.totalReadLatency",
                  "summed read round-trips (core cycles)",
                  static_cast<double>(mem.totalReadLatency));
    obs::FormulaSpec read_lat;
    read_lat.numerator = {{"mem.totalReadLatency", 1.0}};
    read_lat.denominator = {{"mem.readRequests", 1.0}};
    reg.addFormula("mem.avgReadLatency",
                   "mean read round-trip (core cycles)", read_lat);
}

namespace
{

std::string
fmtDouble(double v)
{
    return format("%.4f", v);
}

} // namespace

void
RunResult::writeSummary(std::ostream& out) const
{
    auto stat = [&](const char* name, const std::string& value,
                    const char* desc) {
        out << format("%-32s %20s  # %s\n", name, value.c_str(), desc);
    };
    out << "---------- " << runName << " on " << workload
        << " ----------\n";
    stat("sim.layers", std::to_string(layers.size()),
         "distinct layers simulated");
    stat("sim.totalCycles", std::to_string(totalCycles),
         "wall-clock cycles incl. stalls");
    stat("sim.computeCycles", std::to_string(computeCycles),
         "ideal compute cycles");
    stat("sim.stallCycles", std::to_string(stallCycles),
         "memory stall cycles");
    stat("sim.stallFraction",
         format("%.4f", totalCycles ? static_cast<double>(stallCycles)
                    / totalCycles : 0.0),
         "stalls / total");
    stat("mem.dramReadWords", std::to_string(dramReadWords),
         "main-memory words read");
    stat("mem.dramWriteWords", std::to_string(dramWriteWords),
         "main-memory words written");
    if (dramStats.reads + dramStats.writes > 0) {
        stat("dram.rowHitRate", format("%.4f", dramStats.rowHitRate()),
             "row-buffer hit rate");
        stat("dram.avgReadLatency",
             format("%.2f", dramStats.avgReadLatency()),
             "memory clocks");
        stat("dram.refreshes", std::to_string(dramStats.refreshes),
             "all-bank refreshes");
    }
    if (totalEnergy.totalPj() > 0.0) {
        stat("energy.total_mJ", format("%.4f", totalEnergy.totalMj()),
             "total incl. DRAM");
        stat("energy.onChip_mJ",
             format("%.4f", totalEnergy.onChipMj()),
             "PE + GLB + NoC + static");
        stat("energy.avgPower_W", format("%.4f", avgPowerW),
             "average power");
        stat("energy.edp", format("%.4g", edp), "cycles x mJ");
    }
    if (audited) {
        stat("sim.audit.checks", std::to_string(audit.checks()),
             "invariant relations evaluated");
        stat("sim.audit.violations",
             std::to_string(audit.violations().size()),
             "conservation laws found broken");
        audit.writeReport(out);
    }
    if (profile.layersProfiled > 0)
        profile.writeReport(out);
}

void
RunResult::writeComputeReport(std::ostream& out) const
{
    CsvWriter csv(out);
    csv.writeRow({"LayerID", "LayerName", "Reps", "M", "N", "K",
                  "EffK", "ComputeCycles", "StallCycles", "SimdCycles",
                  "TotalCycles", "Utilization", "Speedup",
                  "MappingEfficiency", "LayoutSlowdown"});
    for (std::size_t i = 0; i < layers.size(); ++i) {
        const auto& l = layers[i];
        csv.writeRow({std::to_string(i), l.name,
                      std::to_string(l.repetitions),
                      std::to_string(l.denseGemm.m),
                      std::to_string(l.denseGemm.n),
                      std::to_string(l.denseGemm.k),
                      std::to_string(l.effectiveGemm.k),
                      std::to_string(l.computeCycles),
                      std::to_string(l.stallCycles),
                      std::to_string(l.simdCycles),
                      std::to_string(l.totalCycles),
                      fmtDouble(l.utilization),
                      fmtDouble(l.speedup),
                      fmtDouble(l.mappingEfficiency),
                      fmtDouble(l.layoutSlowdown)});
    }
}

void
RunResult::writePowerReport(std::ostream& out) const
{
    CsvWriter csv(out);
    csv.writeRow({"Epoch", "Layer", "StartCycle", "Cycles", "Power_W"});
    Cycle start = 0;
    for (std::size_t i = 0; i < powerTrace.size(); ++i) {
        const auto& sample = powerTrace[i];
        csv.writeRow({std::to_string(i), sample.label,
                      std::to_string(start),
                      std::to_string(sample.cycles),
                      fmtDouble(sample.powerW)});
        start += sample.cycles;
    }
    csv.writeRow({"AVG", "", "", std::to_string(totalCycles),
                  fmtDouble(avgPowerW)});
}

void
RunResult::writeBandwidthReport(std::ostream& out) const
{
    CsvWriter csv(out);
    csv.writeRow({"LayerID", "LayerName", "DramReadWords",
                  "DramWriteWords", "AvgReadBW_words_per_cycle",
                  "AvgWriteBW_words_per_cycle", "AvgReadLatency",
                  "ReadQueueStalls", "WriteQueueStalls"});
    for (std::size_t i = 0; i < layers.size(); ++i) {
        const auto& l = layers[i];
        csv.writeRow({std::to_string(i), l.name,
                      std::to_string(l.timing.dramReadWords),
                      std::to_string(l.timing.dramWriteWords),
                      fmtDouble(l.timing.readBandwidth()),
                      fmtDouble(l.timing.writeBandwidth()),
                      fmtDouble(l.timing.avgReadLatency),
                      std::to_string(l.timing.readQueueStalls),
                      std::to_string(l.timing.writeQueueStalls)});
    }
}

void
RunResult::writeSparseReport(std::ostream& out) const
{
    CsvWriter csv(out);
    csv.writeRow({"LayerName", "SparsityRep", "RatioN", "RatioM",
                  "DenseK", "CompressedK", "OriginalFilterBits",
                  "NewFilterBits", "MetadataBits"});
    for (const auto& l : layers) {
        if (!l.sparse)
            continue;
        const auto& s = *l.sparse;
        csv.writeRow({s.layerName, s.representation,
                      std::to_string(s.ratioN), std::to_string(s.ratioM),
                      std::to_string(s.denseK),
                      std::to_string(s.compressedK),
                      std::to_string(s.originalFilterBits),
                      std::to_string(s.newFilterBits),
                      std::to_string(s.metadataBits)});
    }
}

void
RunResult::writeEnergyReport(std::ostream& out) const
{
    CsvWriter csv(out);
    csv.writeRow({"LayerName", "PEArray_pJ", "GLB_pJ", "NoC_pJ",
                  "DRAM_pJ", "Static_pJ", "Total_pJ", "Power_W"});
    for (const auto& l : layers) {
        const auto& e = l.energyBreakdown;
        csv.writeRow({l.name, fmtDouble(e.peArray), fmtDouble(e.glb),
                      fmtDouble(e.noc), fmtDouble(e.dram),
                      fmtDouble(e.staticE), fmtDouble(e.totalPj()),
                      fmtDouble(l.powerW)});
    }
    csv.writeRow({"TOTAL", fmtDouble(totalEnergy.peArray),
                  fmtDouble(totalEnergy.glb), fmtDouble(totalEnergy.noc),
                  fmtDouble(totalEnergy.dram),
                  fmtDouble(totalEnergy.staticE),
                  fmtDouble(totalEnergy.totalPj()),
                  fmtDouble(avgPowerW)});
}

void
RunResult::registerStats(obs::StatsRegistry& reg) const
{
    reg.addScalar("sim.layers", "distinct layers simulated",
                  static_cast<double>(layers.size()));
    reg.addScalar("sim.totalCycles", "wall-clock cycles incl. stalls",
                  static_cast<double>(totalCycles));
    reg.addScalar("sim.computeCycles", "ideal compute cycles",
                  static_cast<double>(computeCycles));
    reg.addScalar("sim.stallCycles", "memory stall cycles",
                  static_cast<double>(stallCycles));
    reg.addScalar("sim.dramReadWords", "main-memory words read",
                  static_cast<double>(dramReadWords));
    reg.addScalar("sim.dramWriteWords", "main-memory words written",
                  static_cast<double>(dramWriteWords));
    obs::FormulaSpec stall_frac;
    stall_frac.numerator = {{"sim.stallCycles", 1.0}};
    stall_frac.denominator = {{"sim.totalCycles", 1.0}};
    reg.addFormula("sim.stallFraction", "stalls / total", stall_frac);
    cpiTotals.registerStats(
        reg, "sim.cpistack",
        "per-cause cycle attribution (sums to totalCycles)");

    if (audited)
        audit.registerStats(reg);

    std::uint64_t sparse_layers = 0, dense_k = 0, compressed_k = 0;
    std::uint64_t original_bits = 0, new_bits = 0, metadata_bits = 0;
    for (const auto& l : layers) {
        if (!l.sparse)
            continue;
        ++sparse_layers;
        dense_k += l.sparse->denseK;
        compressed_k += l.sparse->compressedK;
        original_bits += l.sparse->originalFilterBits;
        new_bits += l.sparse->newFilterBits;
        metadata_bits += l.sparse->metadataBits;
    }
    if (sparse_layers > 0) {
        reg.addScalar("sparse.layers", "layers with sparse filters",
                      static_cast<double>(sparse_layers));
        reg.addScalar("sparse.denseK", "summed dense K",
                      static_cast<double>(dense_k));
        reg.addScalar("sparse.compressedK", "summed compressed K",
                      static_cast<double>(compressed_k));
        reg.addScalar("sparse.originalFilterBits",
                      "dense filter storage (bits)",
                      static_cast<double>(original_bits));
        reg.addScalar("sparse.newFilterBits",
                      "compressed values + metadata (bits)",
                      static_cast<double>(new_bits));
        reg.addScalar("sparse.metadataBits", "metadata storage (bits)",
                      static_cast<double>(metadata_bits));
        obs::FormulaSpec compression;
        compression.numerator = {{"sparse.originalFilterBits", 1.0}};
        compression.denominator = {{"sparse.newFilterBits", 1.0}};
        reg.addFormula("sparse.compressionRatio",
                       "dense / compressed filter bits", compression);
    }

    if (totalEnergy.totalPj() > 0.0) {
        const char* desc = "energy by component (pJ)";
        reg.addVectorElem("energy.breakdown_pJ", "peArray", desc,
                          totalEnergy.peArray);
        reg.addVectorElem("energy.breakdown_pJ", "glb", desc,
                          totalEnergy.glb);
        reg.addVectorElem("energy.breakdown_pJ", "noc", desc,
                          totalEnergy.noc);
        reg.addVectorElem("energy.breakdown_pJ", "dram", desc,
                          totalEnergy.dram);
        reg.addVectorElem("energy.breakdown_pJ", "static", desc,
                          totalEnergy.staticE);
        reg.addScalar("energy.avgPower_W", "average power (W)",
                      avgPowerW);
        reg.addScalar("energy.edp", "energy-delay product (cycles x mJ)",
                      edp);
    }
}

void
RunResult::writeStats(std::ostream& out) const
{
    stats.dump(out);
}

void
RunResult::writeStatsJson(std::ostream& out) const
{
    stats.dumpJson(out);
}

namespace
{

void
writeTimingJson(obs::JsonWriter& json, const systolic::LayerTiming& t)
{
    json.beginObject();
    json.field("folds", static_cast<std::uint64_t>(t.folds));
    json.field("prefetchStallCycles", t.prefetchStallCycles);
    json.field("drainStallCycles", t.drainStallCycles);
    json.field("bandwidthStallCycles", t.bandwidthStallCycles);
    json.field("dramReadWords", t.dramReadWords);
    json.field("dramWriteWords", t.dramWriteWords);
    json.field("dramReadRequests", static_cast<std::uint64_t>(
        t.dramReadRequests));
    json.field("dramWriteRequests", static_cast<std::uint64_t>(
        t.dramWriteRequests));
    json.field("avgReadLatency", t.avgReadLatency);
    json.field("readQueueStalls", t.readQueueStalls);
    json.field("writeQueueStalls", t.writeQueueStalls);
    json.field("readBandwidth", t.readBandwidth());
    json.field("writeBandwidth", t.writeBandwidth());
    json.endObject();
}

void
writeCpiJson(obs::JsonWriter& json, const obs::CpiStack& cpi)
{
    json.beginObject();
    for (unsigned i = 0; i < obs::CpiStack::kBucketCount; ++i)
        json.field(obs::CpiStack::bucketName(i), cpi.bucketValue(i));
    json.field("total", cpi.total());
    json.endObject();
}

void
writeEnergyJson(obs::JsonWriter& json,
                const energy::EnergyBreakdown& e)
{
    json.beginObject();
    json.field("peArray_pJ", e.peArray);
    json.field("glb_pJ", e.glb);
    json.field("noc_pJ", e.noc);
    json.field("dram_pJ", e.dram);
    json.field("static_pJ", e.staticE);
    json.field("total_pJ", e.totalPj());
    json.endObject();
}

} // namespace

void
RunResult::writeJson(std::ostream& out) const
{
    obs::JsonWriter json(out);
    json.beginObject();
    json.field("runName", runName);
    json.field("workload", workload);

    json.key("totals").beginObject();
    json.field("totalCycles", totalCycles);
    json.field("computeCycles", computeCycles);
    json.field("stallCycles", stallCycles);
    json.field("stallFraction",
               totalCycles ? static_cast<double>(stallCycles)
                   / static_cast<double>(totalCycles) : 0.0);
    json.field("dramReadWords", dramReadWords);
    json.field("dramWriteWords", dramWriteWords);
    json.key("cpiStack");
    writeCpiJson(json, cpiTotals);
    json.endObject();

    const bool dram_active = dramStats.reads + dramStats.writes > 0;
    json.key("dram").beginObject();
    json.field("modeled", dram_active);
    json.field("reads", static_cast<std::uint64_t>(dramStats.reads));
    json.field("writes", static_cast<std::uint64_t>(dramStats.writes));
    json.field("rowHits", static_cast<std::uint64_t>(dramStats.rowHits));
    json.field("rowMisses", static_cast<std::uint64_t>(
        dramStats.rowMisses));
    json.field("rowConflicts", static_cast<std::uint64_t>(
        dramStats.rowConflicts));
    json.field("refreshes", static_cast<std::uint64_t>(
        dramStats.refreshes));
    json.field("readBytes", dramStats.readBytes);
    json.field("writeBytes", dramStats.writeBytes);
    json.field("rowHitRate", dramStats.rowHitRate());
    json.field("avgReadLatency", dramStats.avgReadLatency());
    json.endObject();

    if (totalEnergy.totalPj() > 0.0) {
        json.key("energy").beginObject();
        json.key("breakdown");
        writeEnergyJson(json, totalEnergy);
        json.field("total_mJ", totalEnergy.totalMj());
        json.field("onChip_mJ", totalEnergy.onChipMj());
        json.field("avgPower_W", avgPowerW);
        json.field("edp", edp);
        json.endObject();
    }

    if (audited) {
        json.key("audit").beginObject();
        json.field("checks", audit.checks());
        json.field("clean", audit.clean());
        json.key("violations").beginArray();
        for (const auto& v : audit.violations()) {
            json.beginObject();
            json.field("law", v.law);
            json.field("scope", v.scope);
            json.field("message", v.message);
            json.endObject();
        }
        json.endArray();
        json.endObject();
    }

    json.key("layers").beginArray();
    for (const auto& l : layers) {
        json.beginObject();
        json.field("name", l.name);
        json.field("repetitions", l.repetitions);
        json.key("gemm").beginObject();
        json.field("m", l.denseGemm.m);
        json.field("n", l.denseGemm.n);
        json.field("k", l.denseGemm.k);
        json.field("effectiveK", l.effectiveGemm.k);
        json.endObject();
        json.field("computeCycles", l.computeCycles);
        json.field("simdCycles", l.simdCycles);
        json.field("totalCycles", l.totalCycles);
        json.field("stallCycles", l.stallCycles);
        json.field("utilization", l.utilization);
        json.field("speedup", l.speedup);
        json.field("mappingEfficiency", l.mappingEfficiency);
        json.field("layoutSlowdown", l.layoutSlowdown);
        json.key("cpiStack");
        writeCpiJson(json, l.cpi);
        json.key("timing");
        writeTimingJson(json, l.timing);
        if (l.sparse) {
            const auto& s = *l.sparse;
            json.key("sparse").beginObject();
            json.field("representation", s.representation);
            json.field("ratioN", s.ratioN);
            json.field("ratioM", s.ratioM);
            json.field("denseK", s.denseK);
            json.field("compressedK", s.compressedK);
            json.field("originalFilterBits", s.originalFilterBits);
            json.field("newFilterBits", s.newFilterBits);
            json.field("metadataBits", s.metadataBits);
            json.endObject();
        }
        if (l.energyBreakdown.totalPj() > 0.0) {
            json.key("energy");
            writeEnergyJson(json, l.energyBreakdown);
            json.field("power_W", l.powerW);
        }
        json.endObject();
    }
    json.endArray();

    if (!powerTrace.empty()) {
        json.key("powerTrace").beginArray();
        for (const auto& sample : powerTrace) {
            json.beginObject();
            json.field("layer", sample.label);
            json.field("cycles", sample.cycles);
            json.field("power_W", sample.powerW);
            json.endObject();
        }
        json.endArray();
    }

    json.key("profile").beginObject();
    json.field("layersProfiled", profile.layersProfiled);
    json.field("totalSeconds", profile.totalSeconds);
    json.field("peakRssKb", profile.peakRssKb);
    json.key("phaseSeconds").beginObject();
    for (unsigned p = 0; p < kNumSimPhases; ++p) {
        json.field(toString(static_cast<SimPhase>(p)),
                   profile.phaseSeconds[p]);
    }
    json.field("other", profile.otherSeconds());
    json.endObject();
    json.endObject();

    json.endObject();
    out << '\n';
}

void
RunResult::writeChromeTrace(std::ostream& out) const
{
    obs::TraceBuilder trace;
    trace.setProcessName(0, runName.empty() ? "accelerator" : runName);
    trace.setThreadName(0, 0, "layers");
    trace.setThreadName(0, 1, "phases");
    bool any_folds = false;
    for (const auto& l : layers)
        any_folds = any_folds || !l.timing.foldSpans.empty();
    if (any_folds)
        trace.setThreadName(0, 2, "folds");
    trace.addMetadata("workload", workload);
    trace.addMetadata("timeUnit", "1 trace us = 1 accelerator cycle");

    Cycle now = 0;
    for (const auto& l : layers) {
        const std::uint64_t reps = std::max<std::uint32_t>(
            1, l.repetitions);
        const Cycle all_reps = l.totalCycles * reps;
        trace.addSpan(0, 0, l.name, "layer", now,
                      std::max<Cycle>(1, all_reps),
                      {{"repetitions", static_cast<double>(reps)},
                       {"utilization", l.utilization},
                       {"stallCycles",
                        static_cast<double>(l.stallCycles * reps)}});
        // Phase spans cover the first instance only; repetitions
        // replay the same schedule.
        const Cycle matrix = l.timing.totalCycles;
        trace.addSpan(0, 1, "matrix", "phase", now,
                      std::max<Cycle>(1, matrix),
                      {{"computeCycles",
                        static_cast<double>(l.computeCycles)},
                       {"stallCycles",
                        static_cast<double>(l.stallCycles)}});
        if (l.simdCycles > 0) {
            trace.addSpan(0, 1, "vector_tail", "phase", now + matrix,
                          std::max<Cycle>(1, l.simdCycles));
        }
        for (const auto& span : l.timing.foldSpans) {
            trace.addSpan(0, 2, "fold", "fold", now + span.start,
                          std::max<Cycle>(1, span.end - span.start),
                          {{"rowFold", static_cast<double>(
                                span.rowFold)},
                           {"colFold", static_cast<double>(
                                span.colFold)}});
        }
        trace.addCounter(0, "utilization", now, "util", l.utilization);
        if (l.powerW > 0.0)
            trace.addCounter(0, "power_W", now, "power", l.powerW);
        now += all_reps;
    }
    // Close every counter track at the end of the run.
    trace.addCounter(0, "utilization", now, "util", 0.0);
    if (avgPowerW > 0.0)
        trace.addCounter(0, "power_W", now, "power", 0.0);
    if (!intervals.empty()) {
        // Per-interval deltas as Perfetto counter tracks: the CPI
        // stack (where did this window's cycles go), main-memory
        // traffic, and DRAM activity (row outcomes, queue occupancy
        // samples) when the detailed model ran.
        intervals.toCounterTracks(trace, 0, "sim.cpistack", "cpistack");
        intervals.toCounterTracks(trace, 0, "mem", "mem");
        intervals.toCounterTracks(trace, 0, "dram.reads", "dram");
        intervals.toCounterTracks(trace, 0, "dram.rowHits", "dram");
        intervals.toCounterTracks(trace, 0, "dram.rowConflicts",
                                  "dram");
    }
    trace.write(out);
}

} // namespace scalesim::core
