/**
 * @file
 * Compressed sparse filter storage models (paper §IV-C): Blocked
 * ELLPACK (the format used by all the paper's evaluations), CSR, and
 * CSC. Reports original vs compressed storage, split into value data
 * and metadata, for the SPARSE_REPORT and the Fig. 7 storage study.
 */

#ifndef SCALESIM_SPARSE_FORMATS_HH
#define SCALESIM_SPARSE_FORMATS_HH

#include "common/config.hpp"
#include "sparse/pattern.hpp"

namespace scalesim::sparse
{

/** Storage accounting for one compressed filter matrix. */
struct StorageReport
{
    SparseRep rep = SparseRep::Dense;
    /** Dense K x N storage, bits. */
    std::uint64_t originalBits = 0;
    /** Compressed value storage, bits. */
    std::uint64_t valueBits = 0;
    /** Index/pointer metadata, bits. */
    std::uint64_t metadataBits = 0;

    std::uint64_t totalBits() const { return valueBits + metadataBits; }
    double
    compressionRatio() const
    {
        return totalBits()
            ? static_cast<double>(originalBits) / totalBits() : 0.0;
    }
    double originalMB() const
    {
        return static_cast<double>(originalBits) / 8.0 / 1024.0 / 1024.0;
    }
    double totalMB() const
    {
        return static_cast<double>(totalBits()) / 8.0 / 1024.0 / 1024.0;
    }
};

/** ceil(log2(x)), with log2(1) = 1 bit minimum for a stored index. */
std::uint32_t indexBits(std::uint64_t x);

/**
 * Compute the storage of a K x N filter compressed with `rep` under
 * `pattern`. `word_bits` is the element width (the paper's validations
 * use 16-bit quantized weights; SCALE-Sim defaults to 8).
 *
 * Blocked ELLPACK: one value + one log2(M)-bit intra-block index per
 * nonzero (Fig. 6). CSR: values + column indices + row pointers.
 * CSC: values + row indices + column pointers.
 */
StorageReport storageFor(SparseRep rep, const SparsityPattern& pattern,
                         std::uint64_t n_cols,
                         std::uint32_t word_bits = 8);

} // namespace scalesim::sparse

#endif // SCALESIM_SPARSE_FORMATS_HH
