/**
 * @file
 * Tiny binary serialization substrate for cache payloads and their disk
 * persistence: a ByteWriter appending fixed-width little-endian fields
 * to a byte string, and a bounds-checked ByteReader that *never* reads
 * past the end — a truncated or corrupted buffer flips ok() to false
 * and every subsequent read returns a zero value, so callers can
 * validate once at the end instead of guarding every field.
 */

#ifndef SCALESIM_COMMON_SERIALIZE_HH
#define SCALESIM_COMMON_SERIALIZE_HH

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <type_traits>

namespace scalesim
{

/** Append-only binary encoder (host-endian fixed-width fields). */
class ByteWriter
{
  public:
    template <typename T>
    void
    put(T value)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        const auto* bytes = reinterpret_cast<const char*>(&value);
        buffer_.append(bytes, sizeof(T));
    }

    void
    putString(std::string_view text)
    {
        put(static_cast<std::uint64_t>(text.size()));
        buffer_.append(text.data(), text.size());
    }

    void
    putBytes(const void* data, std::size_t size)
    {
        buffer_.append(static_cast<const char*>(data), size);
    }

    const std::string& buffer() const { return buffer_; }
    std::string take() { return std::move(buffer_); }
    std::size_t size() const { return buffer_.size(); }

  private:
    std::string buffer_;
};

/** Bounds-checked binary decoder; see file comment. */
class ByteReader
{
  public:
    explicit ByteReader(std::string_view buffer) : buffer_(buffer) {}

    template <typename T>
    T
    get()
    {
        static_assert(std::is_trivially_copyable_v<T>);
        T value{};
        if (!ok_ || buffer_.size() - pos_ < sizeof(T)) {
            ok_ = false;
            return value;
        }
        std::memcpy(&value, buffer_.data() + pos_, sizeof(T));
        pos_ += sizeof(T);
        return value;
    }

    std::string
    getString()
    {
        const std::uint64_t size = get<std::uint64_t>();
        if (!ok_ || buffer_.size() - pos_ < size) {
            ok_ = false;
            return {};
        }
        std::string out(buffer_.data() + pos_,
                        static_cast<std::size_t>(size));
        pos_ += static_cast<std::size_t>(size);
        return out;
    }

    /** False once any read ran past the end of the buffer. */
    bool ok() const { return ok_; }
    /** True when every byte has been consumed (and no read failed). */
    bool atEnd() const { return ok_ && pos_ == buffer_.size(); }
    std::size_t remaining() const { return buffer_.size() - pos_; }

  private:
    std::string_view buffer_;
    std::size_t pos_ = 0;
    bool ok_ = true;
};

} // namespace scalesim

#endif // SCALESIM_COMMON_SERIALIZE_HH
