# Empty dependencies file for table4_sim_overhead.
# This may be replaced when dependencies are built.
