/**
 * @file
 * Sweep-as-a-service front end (the ROADMAP item 2 "shareable engine"):
 * a long-running server speaking newline-delimited JSON (one request
 * object per line, one response object per line) over stdin/stdout —
 * trivially bridged to a Unix socket with `socat UNIX-LISTEN:... EXEC:`.
 * Requests schedule on the existing ThreadPool via the sweep runner and
 * share one content-addressed per-layer result cache, so re-submitted
 * or overlapping sweeps are served from memory.
 *
 * Protocol (all requests may carry an "id" echoed in the response):
 *
 *   {"id":1,"type":"ping"}
 *   {"id":2,"type":"run","workload":"resnet18",
 *    "config":{"architecture":{"ArrayHeight":"16"}}}
 *   {"id":3,"type":"run","topology":{"name":"t","layers":[
 *      {"name":"g0","type":"gemm","m":64,"n":64,"k":64}]}}
 *   {"id":4,"type":"sweep","workload":"alexnet","arrays":[8,16],
 *    "dataflows":["os","ws"],"sramKb":[256],"jobs":4}
 *   {"id":5,"type":"stats"}
 *   {"id":6,"type":"shutdown"}
 *
 * Responses: {"id":...,"ok":true,"result":{...}} or
 * {"id":...,"ok":false,"error":"..."}. Run and sweep results carry no
 * cache counters and no wall-clock, so identical requests produce
 * byte-identical response lines whether served cold or warm; cache
 * behavior is observable through the separate "stats" request.
 *
 * "config" is a {section: {key: value}} overlay applied on top of the
 * server's base INI config; values may be JSON strings, numbers, or
 * booleans. "cache":false on a run/sweep bypasses the result cache.
 */

#ifndef SCALESIM_SERVE_SERVER_HH
#define SCALESIM_SERVE_SERVER_HH

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>

#include "common/config.hpp"
#include "serve/cache.hpp"

namespace scalesim::serve
{

/** ndjson request server; see file comment. */
class Server
{
  public:
    struct Options
    {
        /** Base INI config; request overlays apply on top. */
        IniFile baseConfig;
        /** Cache persistence path; empty disables persistence. */
        std::string cacheFile;
        /** LRU byte budget for the cache (0 = unlimited). */
        std::uint64_t cacheBudgetBytes = 0;
        /** Worker threads for sweeps not specifying "jobs". */
        unsigned defaultJobs = 1;
        /**
         * Parse and validate run/sweep requests fully (config
         * overlay, topology, axes) but skip the simulation itself,
         * answering with a summary of what would run. The fuzz
         * harness drives the whole request parser through this.
         */
        bool dryRun = false;
    };

    explicit Server(Options options);

    /**
     * Handle one request line, returning one response line (no
     * trailing newline). Never throws; malformed input yields an
     * ok:false response. Thread-safe: concurrent callers share the
     * cache and counters.
     */
    std::string handleRequest(const std::string& line);

    /**
     * Serve requests from `in` until EOF or a shutdown request, then
     * persist the cache (when configured). Returns a process exit
     * code (0 on clean shutdown or EOF).
     */
    int serve(std::istream& in, std::ostream& out);

    LayerResultCache& cache() { return cache_; }

    /** Persist the cache now (no-op without a cache file). */
    bool saveCache() const;

  private:
    // Thread-safety story (checked under clang's thread-safety
    // analysis via the members' own types): options_ is immutable
    // after construction, cache_ serializes internally on its
    // SIM_GUARDED_BY-annotated mutex (see cache.hpp), and the three
    // counters are atomics — the Server itself needs no mutex, which
    // is why none is declared here (scalesim_lint's `naked-mutex`
    // check would demand annotations for one).
    Options options_;
    LayerResultCache cache_;
    std::atomic<std::uint64_t> requests_{0};
    std::atomic<std::uint64_t> errors_{0};
    std::atomic<bool> shutdown_{false};
};

} // namespace scalesim::serve

#endif // SCALESIM_SERVE_SERVER_HH
