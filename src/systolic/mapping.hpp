/**
 * @file
 * GEMM-to-array mapping: operand address spaces, dataflow-dependent
 * fold geometry, and the SCALE-Sim analytical runtime building blocks.
 *
 * A GEMM O[M,N] = A[M,K] * B[K,N] is mapped onto an R x C array under a
 * dataflow as (Sr, Sc, T): the Sr and Sc dimensions fold spatially over
 * rows and columns while T streams temporally. One fold takes
 * `2R + C + T - 2` cycles (fill + stream + drain), so a layer takes
 * `(2R + C + T - 2) * ceil(Sr/R) * ceil(Sc/C)` cycles — Eq. (1) of the
 * paper with a single partition.
 *
 * Note on Table II: the paper's IS and WS rows are swapped relative to
 * SCALE-Sim's conventional operand semantics (its §VII-E uses the
 * conventional ones). We implement the conventional mapping —
 * WS = (K, N, M) with the filter stationary, IS = (K, M, N) with the
 * ifmap stationary, OS = (M, N, K) with outputs stationary. The runtime
 * equations are symmetric under the relabeling, so every paper result
 * is unaffected.
 */

#ifndef SCALESIM_SYSTOLIC_MAPPING_HH
#define SCALESIM_SYSTOLIC_MAPPING_HH

#include <cstdint>

#include "common/config.hpp"
#include "common/types.hpp"

namespace scalesim::systolic
{

/**
 * Word addresses of the three operands in their linear regions:
 * filter row-major K x N, ofmap row-major M x N. The ifmap is either a
 * plain row-major M x K matrix (GEMM layers) or — for convolution
 * layers — the real (H, W, C) feature-map tensor addressed through the
 * im2col window equations, so overlapping windows genuinely reuse the
 * same addresses (as SCALE-Sim's operand matrices do).
 */
struct OperandMap
{
    GemmDims dims;
    Addr ifmapBase = 0;
    Addr filterBase = 10'000'000;
    Addr ofmapBase = 20'000'000;

    /** Convolution geometry; conv == false for plain GEMM layers. */
    bool conv = false;
    std::uint64_t ifmapH = 0;
    std::uint64_t ifmapW = 0;
    std::uint64_t channels = 0;
    std::uint64_t filterH = 0;
    std::uint64_t filterW = 0;
    std::uint64_t stride = 1;
    std::uint64_t ofmapW = 0;
    /** Images in the batch (each a separate (H, W, C) tensor). */
    std::uint64_t batch = 1;

    OperandMap() = default;
    OperandMap(const GemmDims& d, const MemoryConfig& mem)
        : dims(d), ifmapBase(mem.ifmapOffset),
          filterBase(mem.filterOffset), ofmapBase(mem.ofmapOffset)
    {}

    /** Build from a layer, enabling im2col addressing for convs. */
    static OperandMap forLayer(const LayerSpec& layer,
                               const MemoryConfig& mem);

    Addr
    ifmapAddr(std::uint64_t m, std::uint64_t k) const
    {
        if (!conv)
            return ifmapBase + m * dims.k + k;
        // im2col: output pixel m = (img, oh, ow); reduction index
        // k = (kh, kw, c); the window element lives at
        // (oh*stride + kh, ow*stride + kw, c) of image img.
        const std::uint64_t pixels = dims.m / batch;
        const std::uint64_t img = m / pixels;
        const std::uint64_t m_im = m % pixels;
        const std::uint64_t oh = m_im / ofmapW;
        const std::uint64_t ow = m_im % ofmapW;
        const std::uint64_t kh = k / (filterW * channels);
        const std::uint64_t rem = k % (filterW * channels);
        const std::uint64_t kw = rem / channels;
        const std::uint64_t c = rem % channels;
        const std::uint64_t h = oh * stride + kh;
        const std::uint64_t w = ow * stride + kw;
        return ifmapBase + img * ifmapH * ifmapW * channels
            + (h * ifmapW + w) * channels + c;
    }
    Addr filterAddr(std::uint64_t k, std::uint64_t n) const
    {
        return filterBase + k * dims.n + n;
    }
    Addr ofmapAddr(std::uint64_t m, std::uint64_t n) const
    {
        return ofmapBase + m * dims.n + n;
    }

    /** Words per addressed ifmap row (for coordinate recovery). */
    std::uint64_t
    ifmapRowWidth() const
    {
        return conv ? ifmapW * channels : dims.k;
    }
    /** Rows of the addressed ifmap (batch*H for convs, M for GEMMs). */
    std::uint64_t
    ifmapRows() const
    {
        return conv ? batch * ifmapH : dims.m;
    }
    /** Unique ifmap footprint in words. */
    std::uint64_t
    ifmapWords() const
    {
        return conv ? batch * ifmapH * ifmapW * channels
                    : dims.m * dims.k;
    }

    /**
     * Unique ifmap rows (in the addressed tensor) touched by output
     * pixels [m_lo, m_hi] x reduction range [k_lo, k_hi]; returns the
     * inclusive [h_lo, h_hi] row range for convs or [m_lo, m_hi] for
     * GEMMs.
     */
    std::pair<std::uint64_t, std::uint64_t>
    ifmapRowRange(std::uint64_t m_lo, std::uint64_t m_hi,
                  std::uint64_t k_lo, std::uint64_t k_hi) const
    {
        if (!conv)
            return {m_lo, m_hi};
        const std::uint64_t pixels = dims.m / batch;
        const std::uint64_t kh_lo = k_lo / (filterW * channels);
        const std::uint64_t kh_hi = k_hi / (filterW * channels);
        const std::uint64_t img_lo = m_lo / pixels;
        const std::uint64_t img_hi = m_hi / pixels;
        const std::uint64_t h_lo = img_lo * ifmapH
            + ((m_lo % pixels) / ofmapW) * stride + kh_lo;
        std::uint64_t h_in_img = ((m_hi % pixels) / ofmapW) * stride
            + kh_hi;
        if (h_in_img >= ifmapH)
            h_in_img = ifmapH - 1;
        const std::uint64_t h_hi = img_hi * ifmapH + h_in_img;
        return {h_lo, h_hi};
    }
};

/** Conventional (Sr, Sc, T) mapping used by the demand engine. */
MappedDims mapGemmConventional(const GemmDims& gemm, Dataflow df);

/** Which operand each mapped dimension pair addresses. */
struct FoldTraffic
{
    /** Unique ifmap words this fold touches. */
    std::uint64_t ifmapWords = 0;
    /** Unique filter words this fold touches. */
    std::uint64_t filterWords = 0;
    /** Ofmap words written by this fold. */
    std::uint64_t ofmapWriteWords = 0;
    /** Ofmap words re-read for partial-sum accumulation. */
    std::uint64_t ofmapReadWords = 0;
};

/**
 * Fold geometry for a (GEMM, dataflow, array) triple. Fold (rf, cf)
 * covers rows [rf*R, rf*R + tileRows) of Sr and columns
 * [cf*C, cf*C + tileCols) of Sc.
 */
class FoldGrid
{
  public:
    FoldGrid(const GemmDims& gemm, Dataflow df, std::uint32_t rows,
             std::uint32_t cols);

    Dataflow dataflow() const { return df_; }
    const GemmDims& gemm() const { return gemm_; }
    const MappedDims& mapped() const { return mapped_; }
    std::uint32_t arrayRows() const { return rows_; }
    std::uint32_t arrayCols() const { return cols_; }

    std::uint64_t rowFolds() const { return rowFolds_; }
    std::uint64_t colFolds() const { return colFolds_; }
    std::uint64_t numFolds() const { return rowFolds_ * colFolds_; }

    /** Rows of Sr actually used by row-fold rf (edge folds shrink). */
    std::uint64_t tileRows(std::uint64_t rf) const;
    /** Columns of Sc actually used by column-fold cf. */
    std::uint64_t tileCols(std::uint64_t cf) const;

    /**
     * Cycles of one fold: 2R + C + T - 2 (uniform across folds, as in
     * SCALE-Sim). `t` defaults to the mapped temporal extent; sparse
     * runs pass a compressed value.
     */
    Cycle foldCycles() const { return foldCycles(mapped_.t); }
    Cycle foldCycles(std::uint64_t t) const
    {
        return 2ull * rows_ + cols_ + t - 2;
    }

    /** Total layer compute cycles (dense). */
    Cycle totalCycles() const { return foldCycles() * numFolds(); }

    /**
     * Fraction of PE-cycles doing useful MACs:
     * macs / (totalCycles * R * C).
     */
    double utilization() const;

    /**
     * Average fraction of the array covered by mapped tiles (spatial
     * mapping efficiency).
     */
    double mappingEfficiency() const;

    /** Unique DRAM-side words each fold touches per operand. */
    FoldTraffic foldTraffic(std::uint64_t rf, std::uint64_t cf) const;

    /**
     * Per-operand SRAM access counts over the whole layer, as seen at
     * the array edge (one read per feeder per active cycle).
     */
    struct SramAccessCounts
    {
        Count ifmapReads = 0;
        Count filterReads = 0;
        Count ofmapWrites = 0;
        Count ofmapReads = 0;
    };
    SramAccessCounts sramAccessCounts() const;

  private:
    GemmDims gemm_;
    Dataflow df_;
    MappedDims mapped_;
    std::uint32_t rows_;
    std::uint32_t cols_;
    std::uint64_t rowFolds_;
    std::uint64_t colFolds_;
};

} // namespace scalesim::systolic

#endif // SCALESIM_SYSTOLIC_MAPPING_HH
