# Empty compiler generated dependencies file for fig03_partitioning.
# This may be replaced when dependencies are built.
