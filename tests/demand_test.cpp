/**
 * @file
 * Property tests for the per-cycle demand generator: conservation
 * against the closed-form access counts, address-range validity,
 * write-once semantics, skew timing, and sparse gathering.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/log.hpp"
#include "sparse/pattern.hpp"
#include "systolic/demand.hpp"

using namespace scalesim;
using namespace scalesim::systolic;

namespace
{

OperandMap
makeOperands(const GemmDims& gemm)
{
    MemoryConfig mem;
    return OperandMap(gemm, mem);
}

/** Collects every address with its cycle for detailed checks. */
class CollectingVisitor : public DemandVisitor
{
  public:
    void
    cycle(Cycle clk, std::span<const Addr> ifmap_reads,
          std::span<const Addr> filter_reads,
          std::span<const Addr> ofmap_reads,
          std::span<const Addr> ofmap_writes) override
    {
        for (Addr a : ifmap_reads)
            ifmap.emplace_back(clk, a);
        for (Addr a : filter_reads)
            filter.emplace_back(clk, a);
        for (Addr a : ofmap_reads)
            oreads.emplace_back(clk, a);
        for (Addr a : ofmap_writes)
            owrites.emplace_back(clk, a);
    }

    std::vector<std::pair<Cycle, Addr>> ifmap, filter, oreads, owrites;
};

} // namespace

class DemandCountsMatchClosedForm
    : public ::testing::TestWithParam<Dataflow>
{
};

TEST_P(DemandCountsMatchClosedForm, Conservation)
{
    const GemmDims gemm{37, 23, 51};
    DemandGenerator gen(gemm, GetParam(), 8, 4, makeOperands(gemm));
    CountingVisitor counter;
    gen.run(counter);
    const auto expect = gen.grid().sramAccessCounts();
    EXPECT_EQ(counter.ifmapReads, expect.ifmapReads);
    EXPECT_EQ(counter.filterReads, expect.filterReads);
    EXPECT_EQ(counter.ofmapWrites, expect.ofmapWrites);
    EXPECT_EQ(counter.ofmapReads, expect.ofmapReads);
    EXPECT_EQ(counter.lastCycle + 1, gen.grid().totalCycles());
}

INSTANTIATE_TEST_SUITE_P(
    AllDataflows, DemandCountsMatchClosedForm,
    ::testing::Values(Dataflow::OutputStationary,
                      Dataflow::WeightStationary,
                      Dataflow::InputStationary),
    [](const auto& tpi) { return toString(tpi.param); });

class DemandAddressesInRange : public ::testing::TestWithParam<Dataflow>
{
};

TEST_P(DemandAddressesInRange, Bounds)
{
    const GemmDims gemm{19, 13, 29};
    const OperandMap operands = makeOperands(gemm);
    DemandGenerator gen(gemm, GetParam(), 8, 8, operands);
    CollectingVisitor collect;
    gen.run(collect);
    for (const auto& [clk, a] : collect.ifmap) {
        EXPECT_GE(a, operands.ifmapBase);
        EXPECT_LT(a, operands.ifmapBase + gemm.m * gemm.k);
    }
    for (const auto& [clk, a] : collect.filter) {
        EXPECT_GE(a, operands.filterBase);
        EXPECT_LT(a, operands.filterBase + gemm.k * gemm.n);
    }
    for (const auto& [clk, a] : collect.owrites) {
        EXPECT_GE(a, operands.ofmapBase);
        EXPECT_LT(a, operands.ofmapBase + gemm.m * gemm.n);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllDataflows, DemandAddressesInRange,
    ::testing::Values(Dataflow::OutputStationary,
                      Dataflow::WeightStationary,
                      Dataflow::InputStationary),
    [](const auto& tpi) { return toString(tpi.param); });

TEST(DemandOs, EveryOutputWrittenExactlyOnce)
{
    const GemmDims gemm{20, 12, 15};
    const OperandMap operands = makeOperands(gemm);
    DemandGenerator gen(gemm, Dataflow::OutputStationary, 8, 8,
                        operands);
    CollectingVisitor collect;
    gen.run(collect);
    std::map<Addr, int> writes;
    for (const auto& [clk, a] : collect.owrites)
        ++writes[a];
    EXPECT_EQ(writes.size(), gemm.m * gemm.n);
    for (const auto& [addr, count] : writes)
        EXPECT_EQ(count, 1) << "address " << addr;
}

TEST(DemandOs, EveryOperandElementCovered)
{
    const GemmDims gemm{20, 12, 15};
    const OperandMap operands = makeOperands(gemm);
    DemandGenerator gen(gemm, Dataflow::OutputStationary, 8, 8,
                        operands);
    CollectingVisitor collect;
    gen.run(collect);
    std::set<Addr> ifmap_addrs;
    for (const auto& [clk, a] : collect.ifmap)
        ifmap_addrs.insert(a);
    EXPECT_EQ(ifmap_addrs.size(), gemm.m * gemm.k);
    std::set<Addr> filter_addrs;
    for (const auto& [clk, a] : collect.filter)
        filter_addrs.insert(a);
    EXPECT_EQ(filter_addrs.size(), gemm.k * gemm.n);
}

/**
 * Partial-fold edge cases for the OS drain: the drain schedule uses
 * the full physical arrayRows() for its timing but tile-local tr/tc
 * bounds, so ragged folds must still emit every output exactly once
 * within the fold. Each shape asserts total ofmap writes == M*N over
 * the whole fold grid, with no duplicates.
 */
struct OsFoldShape
{
    const char* label;
    GemmDims gemm;
    std::uint32_t rows;
    std::uint32_t cols;
};

class DemandOsPartialFold
    : public ::testing::TestWithParam<OsFoldShape>
{
};

TEST_P(DemandOsPartialFold, DrainCoversAllOutputsOnce)
{
    const OsFoldShape& shape = GetParam();
    const GemmDims gemm = shape.gemm;
    const OperandMap operands = makeOperands(gemm);
    DemandGenerator gen(gemm, Dataflow::OutputStationary, shape.rows,
                        shape.cols, operands);
    CollectingVisitor collect;
    gen.run(collect);

    std::map<Addr, int> writes;
    for (const auto& [clk, a] : collect.owrites)
        ++writes[a];
    EXPECT_EQ(collect.owrites.size(), gemm.m * gemm.n);
    EXPECT_EQ(writes.size(), gemm.m * gemm.n);
    for (const auto& [addr, count] : writes)
        EXPECT_EQ(count, 1) << "address " << addr;
    for (const auto& [addr, count] : writes) {
        EXPECT_GE(addr, operands.ofmapBase);
        EXPECT_LT(addr, operands.ofmapBase + gemm.m * gemm.n);
    }
    // Every write lands inside the generated schedule.
    const auto& grid = gen.grid();
    for (const auto& [clk, a] : collect.owrites)
        EXPECT_LT(clk, grid.totalCycles());
}

INSTANTIATE_TEST_SUITE_P(
    PartialFolds, DemandOsPartialFold,
    ::testing::Values(
        // Ragged last fold on both axes: 10 = 8 + 2, 12 = 8 + 4.
        OsFoldShape{"ragged_last_fold", {10, 12, 16}, 8, 8},
        // Whole layer narrower than the array: tr = 3 < R = 8.
        OsFoldShape{"tr_lt_rows", {3, 16, 16}, 8, 8},
        // Whole layer shorter than the array: tc = 5 < C = 8.
        OsFoldShape{"tc_lt_cols", {16, 5, 16}, 8, 8},
        // Temporal extent shorter than the fill: K = 4 < R = 8.
        OsFoldShape{"k_lt_rows", {16, 16, 4}, 8, 8},
        // Everything at once: single partial fold, tiny K.
        OsFoldShape{"all_partial", {5, 3, 2}, 8, 8},
        // 1x1 fold grid edge with exactly full tiles.
        OsFoldShape{"exact_tiles", {8, 8, 8}, 8, 8},
        // Single row/column degenerate shapes.
        OsFoldShape{"m_is_one", {1, 9, 7}, 8, 8},
        OsFoldShape{"n_is_one", {9, 1, 7}, 8, 8}),
    [](const auto& tpi) { return std::string(tpi.param.label); });

TEST(DemandOs, SkewTiming)
{
    // Row r's first ifmap read happens at fold-local cycle r.
    const GemmDims gemm{8, 8, 10};
    const OperandMap operands = makeOperands(gemm);
    DemandGenerator gen(gemm, Dataflow::OutputStationary, 8, 8,
                        operands);
    CollectingVisitor collect;
    gen.run(collect);
    std::map<std::uint64_t, Cycle> first_read; // row -> cycle
    for (const auto& [clk, a] : collect.ifmap) {
        const std::uint64_t row = (a - operands.ifmapBase) / gemm.k;
        auto it = first_read.find(row);
        if (it == first_read.end() || clk < it->second)
            first_read[row] = clk;
    }
    for (const auto& [row, clk] : first_read)
        EXPECT_EQ(clk, row);
}

TEST(DemandWs, AccumulationReadsOnlyAfterFirstRowFold)
{
    const GemmDims gemm{10, 6, 40}; // K = 40 -> several row folds at R=8
    const OperandMap operands = makeOperands(gemm);
    DemandGenerator gen(gemm, Dataflow::WeightStationary, 8, 8,
                        operands);
    CountingVisitor counter;
    gen.run(counter);
    const auto& grid = gen.grid();
    ASSERT_GT(grid.rowFolds(), 1u);
    EXPECT_EQ(counter.ofmapWrites,
              gemm.m * gemm.n * grid.rowFolds());
    EXPECT_EQ(counter.ofmapReads,
              gemm.m * gemm.n * (grid.rowFolds() - 1));
}

TEST(DemandWs, FilterLoadedExactlyOnce)
{
    const GemmDims gemm{10, 12, 20};
    const OperandMap operands = makeOperands(gemm);
    DemandGenerator gen(gemm, Dataflow::WeightStationary, 8, 8,
                        operands);
    CollectingVisitor collect;
    gen.run(collect);
    std::map<Addr, int> loads;
    for (const auto& [clk, a] : collect.filter)
        ++loads[a];
    EXPECT_EQ(loads.size(), gemm.k * gemm.n);
    for (const auto& [addr, count] : loads)
        EXPECT_EQ(count, 1);
}

TEST(DemandSparse, GatherSkipsPrunedRows)
{
    const GemmDims gemm{16, 8, 32};
    const OperandMap operands = makeOperands(gemm);
    const auto pattern = sparse::SparsityPattern::layerWise(gemm.k, 1,
                                                            4);
    ASSERT_EQ(pattern.compressedK(), 8u);
    DemandGenerator gen(gemm, Dataflow::WeightStationary, 8, 8,
                        operands, &pattern);
    CollectingVisitor collect;
    gen.run(collect);
    // Ifmap reads may only touch kept (first-of-four) K columns.
    for (const auto& [clk, a] : collect.ifmap) {
        const std::uint64_t k = (a - operands.ifmapBase) % gemm.k;
        EXPECT_EQ(k % 4, 0u) << "read pruned k column " << k;
    }
    // Compressed run is shorter than the dense run.
    DemandGenerator dense(gemm, Dataflow::WeightStationary, 8, 8,
                          operands);
    EXPECT_LT(gen.totalCycles(), dense.totalCycles());
}

TEST(DemandSparse, NonWsIsRejected)
{
    const GemmDims gemm{16, 8, 32};
    const auto pattern = sparse::SparsityPattern::layerWise(gemm.k, 2,
                                                            4);
    EXPECT_THROW(DemandGenerator(gemm, Dataflow::OutputStationary, 8, 8,
                                 makeOperands(gemm), &pattern),
                 FatalError);
}

TEST(Demand, TeeVisitorFansOut)
{
    const GemmDims gemm{12, 8, 10};
    DemandGenerator gen(gemm, Dataflow::OutputStationary, 4, 4,
                        makeOperands(gemm));
    CountingVisitor a, b;
    TeeVisitor tee({&a, &b});
    gen.run(tee);
    EXPECT_GT(a.ifmapReads, 0u);
    EXPECT_EQ(a.ifmapReads, b.ifmapReads);
    EXPECT_EQ(a.ofmapWrites, b.ofmapWrites);
}

TEST(Demand, ActiveCyclesNeverExceedTotal)
{
    const GemmDims gemm{30, 20, 25};
    for (auto df : {Dataflow::OutputStationary,
                    Dataflow::WeightStationary,
                    Dataflow::InputStationary}) {
        DemandGenerator gen(gemm, df, 8, 8, makeOperands(gemm));
        CountingVisitor counter;
        gen.run(counter);
        EXPECT_LE(counter.activeCycles, gen.totalCycles());
        EXPECT_GT(counter.activeCycles, 0u);
    }
}

TEST(DemandConv, ImcolAddressesReuseWindows)
{
    // 8x8 ifmap, 3x3 filter, 2 channels, stride 1 -> 6x6 outputs.
    const LayerSpec layer = LayerSpec::conv("c", 8, 8, 3, 3, 2, 4, 1);
    MemoryConfig mem;
    const OperandMap operands = OperandMap::forLayer(layer, mem);
    ASSERT_TRUE(operands.conv);
    const GemmDims gemm = layer.toGemm();
    DemandGenerator gen(gemm, Dataflow::OutputStationary, 8, 4,
                        operands);
    CollectingVisitor collect;
    gen.run(collect);
    std::set<Addr> unique;
    for (const auto& [clk, a] : collect.ifmap) {
        EXPECT_GE(a, operands.ifmapBase);
        EXPECT_LT(a, operands.ifmapBase + 8 * 8 * 2);
        unique.insert(a);
    }
    // Every ifmap word is touched (3x3/stride-1 covers all pixels),
    // and the unique footprint is the real tensor, far below the
    // im2col-expanded M*K.
    EXPECT_EQ(unique.size(), 8u * 8u * 2u);
    EXPECT_LT(unique.size(), gemm.m * gemm.k);
    // Interior pixels are read multiple times (window overlap).
    EXPECT_GT(collect.ifmap.size(), unique.size());
}

TEST(DemandConv, StridedWindowsSkipPixels)
{
    // 3x3 filter with stride 3: windows tile without overlap, so the
    // read count equals the footprint exactly.
    const LayerSpec layer = LayerSpec::conv("c", 9, 9, 3, 3, 1, 2, 3);
    MemoryConfig mem;
    const OperandMap operands = OperandMap::forLayer(layer, mem);
    const GemmDims gemm = layer.toGemm();
    DemandGenerator gen(gemm, Dataflow::OutputStationary, 16, 2,
                        operands);
    CollectingVisitor collect;
    gen.run(collect);
    std::set<Addr> unique;
    for (const auto& [clk, a] : collect.ifmap)
        unique.insert(a);
    EXPECT_EQ(unique.size(), 9u * 9u);
    // colFolds = 1, so each element is streamed exactly once.
    EXPECT_EQ(collect.ifmap.size(), unique.size());
}

TEST(DemandConv, OneByOneConvMatchesGemm)
{
    // A 1x1 convolution is exactly a GEMM; the conv addressing must
    // produce the same unique footprint.
    const LayerSpec layer = LayerSpec::conv("c", 6, 6, 1, 1, 8, 4, 1);
    MemoryConfig mem;
    const OperandMap operands = OperandMap::forLayer(layer, mem);
    const GemmDims gemm = layer.toGemm();
    EXPECT_EQ(operands.ifmapWords(), gemm.m * gemm.k);
    DemandGenerator gen(gemm, Dataflow::WeightStationary, 8, 4,
                        operands);
    CollectingVisitor collect;
    gen.run(collect);
    std::set<Addr> unique;
    for (const auto& [clk, a] : collect.ifmap)
        unique.insert(a);
    EXPECT_EQ(unique.size(), gemm.m * gemm.k);
}

TEST(DemandConv, RowRangeHelper)
{
    const LayerSpec layer = LayerSpec::conv("c", 16, 16, 3, 3, 4, 8,
                                            1);
    MemoryConfig mem;
    const OperandMap operands = OperandMap::forLayer(layer, mem);
    // First output row, full K: ifmap rows 0..2.
    const auto [h0, h1] = operands.ifmapRowRange(0, 13, 0,
                                                 3 * 3 * 4 - 1);
    EXPECT_EQ(h0, 0u);
    EXPECT_EQ(h1, 2u);
    // All outputs: full ifmap height.
    const auto [a0, a1] = operands.ifmapRowRange(
        0, 14 * 14 - 1, 0, 3 * 3 * 4 - 1);
    EXPECT_EQ(a0, 0u);
    EXPECT_EQ(a1, 15u);
}

/** Conv demand conservation across dataflow x array shape. */
class ConvDemandSweep
    : public ::testing::TestWithParam<
          std::tuple<Dataflow, std::uint32_t, std::uint32_t>>
{
};

TEST_P(ConvDemandSweep, CountsMatchClosedFormOnConvLayers)
{
    const auto [df, rows, cols] = GetParam();
    const LayerSpec layer = LayerSpec::conv("c", 12, 12, 3, 3, 6, 10,
                                            1);
    MemoryConfig mem;
    const OperandMap operands = OperandMap::forLayer(layer, mem);
    DemandGenerator gen(layer.toGemm(), df, rows, cols, operands);
    CountingVisitor counter;
    gen.run(counter);
    const auto expect = gen.grid().sramAccessCounts();
    EXPECT_EQ(counter.ifmapReads, expect.ifmapReads);
    EXPECT_EQ(counter.filterReads, expect.filterReads);
    EXPECT_EQ(counter.ofmapWrites, expect.ofmapWrites);
    EXPECT_EQ(counter.ofmapReads, expect.ofmapReads);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ConvDemandSweep,
    ::testing::Combine(
        ::testing::Values(Dataflow::OutputStationary,
                          Dataflow::WeightStationary,
                          Dataflow::InputStationary),
        ::testing::Values(4u, 8u, 16u), ::testing::Values(4u, 8u)),
    [](const auto& tpi) {
        return toString(std::get<0>(tpi.param))
            + format("_r%u_c%u", std::get<1>(tpi.param),
                     std::get<2>(tpi.param));
    });

/** Sparse gather conservation across ratios. */
class SparseGatherSweep
    : public ::testing::TestWithParam<std::pair<std::uint32_t,
                                                std::uint32_t>>
{
};

TEST_P(SparseGatherSweep, CompressedRunsConserveCounts)
{
    const auto [n, m] = GetParam();
    const GemmDims gemm{24, 12, 48};
    const OperandMap operands = makeOperands(gemm);
    const auto pattern = sparse::SparsityPattern::layerWise(gemm.k, n,
                                                            m);
    DemandGenerator gen(gemm, Dataflow::WeightStationary, 8, 8,
                        operands, &pattern);
    CountingVisitor counter;
    gen.run(counter);
    const auto expect = gen.grid().sramAccessCounts();
    EXPECT_EQ(counter.ifmapReads, expect.ifmapReads);
    EXPECT_EQ(counter.filterReads, expect.filterReads);
    EXPECT_EQ(counter.lastCycle + 1, gen.grid().totalCycles());
    // Compressed K governs the fold grid.
    EXPECT_EQ(gen.grid().gemm().k, pattern.compressedK());
}

INSTANTIATE_TEST_SUITE_P(
    Ratios, SparseGatherSweep,
    ::testing::Values(std::make_pair(1u, 4u), std::make_pair(2u, 4u),
                      std::make_pair(3u, 4u), std::make_pair(1u, 8u),
                      std::make_pair(3u, 8u), std::make_pair(2u, 16u)),
    [](const auto& tpi) {
        return format("r%u_%u", tpi.param.first, tpi.param.second);
    });

TEST(DemandConv, BatchedImagesAddressDistinctTensors)
{
    LayerSpec layer = LayerSpec::conv("c", 6, 6, 3, 3, 2, 4, 1)
                          .withBatch(2);
    MemoryConfig mem;
    const OperandMap operands = OperandMap::forLayer(layer, mem);
    EXPECT_EQ(operands.batch, 2u);
    EXPECT_EQ(operands.ifmapWords(), 2u * 6u * 6u * 2u);
    const GemmDims gemm = layer.toGemm();
    DemandGenerator gen(gemm, Dataflow::OutputStationary, 8, 4,
                        operands);
    CollectingVisitor collect;
    gen.run(collect);
    std::set<Addr> unique;
    for (const auto& [clk, a] : collect.ifmap) {
        EXPECT_LT(a, operands.ifmapBase + operands.ifmapWords());
        unique.insert(a);
    }
    // Both images' tensors are fully touched.
    EXPECT_EQ(unique.size(), operands.ifmapWords());
}
